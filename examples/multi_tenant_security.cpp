// Multi-tenant security demo: three applications — an honest writer, an honest reader,
// and a malicious tenant — share one Trio deployment. The malicious LibFS corrupts every
// piece of metadata it can legally write to; the integrity verifier catches each attack
// when write access transfers, and the kernel controller rolls the file back to its
// checkpoint, so the honest tenants never observe corrupted state (§3.2's guarantee:
// corruption is confined to the application that caused it).
//
//   $ ./multi_tenant_security

#include <cstdio>
#include <string>

#include "src/attacks/attacks.h"
#include "src/core/core_state.h"
#include "src/kernel/controller.h"
#include "src/libfs/arckfs.h"

using namespace trio;

int main() {
  NvmPool pool(1 << 15);
  TRIO_CHECK_OK(Format(pool, FormatOptions{}));
  KernelController kernel(pool);
  TRIO_CHECK_OK(kernel.Mount());

  ArckFs alice(kernel);   // Honest writer.
  ArckFs bob(kernel);     // Honest reader.
  MaliciousLibFs eve(kernel);  // Controls her own LibFS end to end.

  // Alice publishes a document and releases it.
  {
    Result<Fd> fd = alice.Open("/report.txt", OpenFlags::CreateTrunc());
    TRIO_CHECK(fd.ok());
    const std::string body = "Q3 numbers: all good.";
    TRIO_CHECK(alice.Pwrite(*fd, body.data(), body.size(), 0).ok());
    TRIO_CHECK_OK(alice.Close(*fd));
    TRIO_CHECK_OK(alice.ReleaseFile("/report.txt"));
    TRIO_CHECK_OK(alice.ReleaseFile("/"));
    std::printf("alice published /report.txt\n");
  }

  // Eve cannot touch pages she was never granted: the MMU simply faults.
  std::printf("eve probes an unmapped kernel page: %s\n",
              eve.ProbeUnmappedPageFaults() ? "MMU FAULT (blocked)" : "!!writable!!");

  // Eve legally write-maps the file (the ACL allows it) and then corrupts its metadata:
  // a size beyond the index chain and an index pointer aimed outside the file.
  TRIO_CHECK_OK(eve.AttackSizeBeyondCapacity("/report.txt"));
  TRIO_CHECK_OK(eve.AttackPointIndexOutside("/report.txt"));
  std::printf("eve corrupted /report.txt's metadata inside her own mapping\n");

  // Bob asks to read. The kernel revokes Eve's grant; verification fails; Eve gets a
  // chance to fix (she does not); the kernel quarantines her image and rolls the file
  // back to the checkpoint — and only then maps it for Bob.
  Result<Fd> fd = bob.Open("/report.txt", OpenFlags::ReadOnly());
  TRIO_CHECK(fd.ok());
  char buffer[64] = {};
  Result<size_t> n = bob.Pread(*fd, buffer, sizeof(buffer) - 1, 0);
  TRIO_CHECK(n.ok());
  TRIO_CHECK_OK(bob.Close(*fd));

  std::printf("bob reads: \"%s\"\n", buffer);
  std::printf("kernel stats: verifications=%llu failures=%llu rollbacks=%llu\n",
              static_cast<unsigned long long>(kernel.stats().verifications.load()),
              static_cast<unsigned long long>(kernel.stats().verify_failures.load()),
              static_cast<unsigned long long>(
                  kernel.stats().corruptions_rolled_back.load()));
  TRIO_CHECK(std::string(buffer) == "Q3 numbers: all good.");
  std::printf("corruption was confined to eve; honest tenants unaffected.\n");
  return 0;
}
