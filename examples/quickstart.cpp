// Quickstart: bring up a Trio stack (emulated NVM pool + kernel controller + ArckFS
// LibFS), do ordinary POSIX-style file work, share a file with a second LibFS across the
// trust boundary, and survive a crash.
//
//   $ ./quickstart

#include <cstdio>
#include <memory>
#include <string>

#include "src/core/core_state.h"
#include "src/kernel/controller.h"
#include "src/libfs/arckfs.h"

using namespace trio;

int main() {
  // 1. An emulated NVM pool (64 MiB) with crash tracking on, formatted with the Trio
  //    core-state layout.
  NvmPool pool(16384, NvmMode::kTracking);
  TRIO_CHECK_OK(Format(pool, FormatOptions{}));

  // 2. The trusted entities: the kernel controller (access control, leases, checkpoints)
  //    owns the pool; the integrity verifier lives inside it.
  auto kernel = std::make_unique<KernelController>(pool);
  TRIO_CHECK_OK(kernel->Mount());

  // 3. An application links its own LibFS. Everything after Open() below runs as plain
  //    loads/stores on the mapped core state — no kernel involvement.
  auto fs = std::make_unique<ArckFs>(*kernel);
  TRIO_CHECK_OK(fs->Mkdir("/projects"));

  Result<Fd> fd = fs->Open("/projects/notes.txt", OpenFlags::CreateRw());
  TRIO_CHECK(fd.ok());
  const std::string text = "Trio: direct access, private customization, verified sharing.";
  TRIO_CHECK(fs->Pwrite(*fd, text.data(), text.size(), 0).ok());
  TRIO_CHECK_OK(fs->Close(*fd));

  Result<StatInfo> info = fs->Stat("/projects/notes.txt");
  std::printf("created %s: %llu bytes, mode %o\n", "/projects/notes.txt",
              static_cast<unsigned long long>(info->size), info->mode & kModePermMask);

  // 4. A second application (its own LibFS) reads the file. The kernel revokes the
  //    writer's grant, the verifier checks the core state, and only then is it mapped.
  {
    ArckFs other(*kernel);
    Result<Fd> other_fd = other.Open("/projects/notes.txt", OpenFlags::ReadOnly());
    TRIO_CHECK(other_fd.ok());
    std::string read_back(text.size(), '\0');
    TRIO_CHECK(other.Pread(*other_fd, read_back.data(), read_back.size(), 0).ok());
    TRIO_CHECK_OK(other.Close(*other_fd));
    std::printf("second LibFS read: \"%s\"\n", read_back.c_str());
    std::printf("verifications so far: %llu (failures: %llu)\n",
                static_cast<unsigned long long>(kernel->stats().verifications.load()),
                static_cast<unsigned long long>(kernel->stats().verify_failures.load()));
  }

  // 5. Crash! Only persisted state survives; remount recovers and re-verifies everything
  //    that was write-mapped (§4.4).
  const std::vector<PageNumber> journal_pages = fs->JournalPages();
  fs.reset();
  kernel.reset();
  pool.SimulateCrash();

  kernel = std::make_unique<KernelController>(pool);
  TRIO_CHECK_OK(kernel->Mount());
  ArckFsConfig config;
  config.recover_journal_pages = journal_pages;
  fs = std::make_unique<ArckFs>(*kernel, config);
  if (kernel->NeedsRecovery()) {
    TRIO_CHECK_OK(kernel->RunRecovery());
  }
  Result<StatInfo> after = fs->Stat("/projects/notes.txt");
  std::printf("after crash+recovery: notes.txt %s (%llu bytes)\n",
              after.ok() ? "intact" : "missing",
              after.ok() ? static_cast<unsigned long long>(after->size) : 0ull);

  fs.reset();
  TRIO_CHECK_OK(kernel->Unmount());
  std::printf("clean unmount. done.\n");
  return 0;
}
