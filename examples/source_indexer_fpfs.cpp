// A source-tree indexer on FPFS — the paper's deep-directory workload (§5). The tool lays
// out a synthetic project tree (depth ~20, like vendored monorepos), then stats and reads
// files by full path. FPFS's global full-path hash table turns every resolution into one
// lookup instead of a 20-step walk; the example prints the cache hit rate and the
// wall-clock advantage over a generic ArckFS LibFS on the same tree.
//
//   $ ./source_indexer_fpfs

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/core_state.h"
#include "src/fpfs/fpfs.h"
#include "src/kernel/controller.h"

using namespace trio;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Builds a 20-deep chain with a handful of source files at every level.
std::vector<std::string> BuildTree(FsInterface& fs) {
  std::vector<std::string> files;
  std::string dir;
  for (int depth = 0; depth < 20; ++depth) {
    dir += "/pkg" + std::to_string(depth);
    TRIO_CHECK_OK(fs.Mkdir(dir));
    for (int f = 0; f < 4; ++f) {
      const std::string path = dir + "/mod" + std::to_string(f) + ".cc";
      Result<Fd> fd = fs.Open(path, OpenFlags::CreateTrunc());
      TRIO_CHECK(fd.ok());
      const std::string body = "// " + path + "\nint f() { return " +
                               std::to_string(depth * 4 + f) + "; }\n";
      TRIO_CHECK(fs.Pwrite(*fd, body.data(), body.size(), 0).ok());
      TRIO_CHECK_OK(fs.Close(*fd));
    }
    files.push_back(dir + "/mod0.cc");
  }
  return files;
}

double IndexPass(FsInterface& fs, const std::vector<std::string>& files, int rounds) {
  const double start = NowSeconds();
  uint64_t bytes = 0;
  char buffer[256];
  for (int r = 0; r < rounds; ++r) {
    for (const std::string& path : files) {
      Result<StatInfo> info = fs.Stat(path);
      TRIO_CHECK(info.ok());
      Result<Fd> fd = fs.Open(path, OpenFlags::ReadOnly());
      TRIO_CHECK(fd.ok());
      Result<size_t> n = fs.Pread(*fd, buffer, sizeof(buffer), 0);
      TRIO_CHECK(n.ok());
      bytes += *n;
      TRIO_CHECK_OK(fs.Close(*fd));
    }
  }
  (void)bytes;
  return NowSeconds() - start;
}

}  // namespace

int main() {
  constexpr int kRounds = 300;

  double generic_seconds;
  {
    NvmPool pool(1 << 15);
    TRIO_CHECK_OK(Format(pool, FormatOptions{}));
    KernelController kernel(pool);
    TRIO_CHECK_OK(kernel.Mount());
    ArckFs fs(kernel);
    std::vector<std::string> files = BuildTree(fs);
    generic_seconds = IndexPass(fs, files, kRounds);
    std::printf("generic ArckFS : indexed %zu deep files x%d in %.3fs\n", files.size(),
                kRounds, generic_seconds);
  }

  {
    NvmPool pool(1 << 15);
    TRIO_CHECK_OK(Format(pool, FormatOptions{}));
    KernelController kernel(pool);
    TRIO_CHECK_OK(kernel.Mount());
    FpFs fs(kernel);
    std::vector<std::string> files = BuildTree(fs);
    const double fpfs_seconds = IndexPass(fs, files, kRounds);
    std::printf("FPFS           : indexed %zu deep files x%d in %.3fs (%.2fx)\n",
                files.size(), kRounds, fpfs_seconds, generic_seconds / fpfs_seconds);
    std::printf("FPFS path cache: %zu entries, %llu hits, %llu misses\n",
                fs.PathCacheSize(),
                static_cast<unsigned long long>(fs.path_cache_hits()),
                static_cast<unsigned long long>(fs.path_cache_misses()));
  }
  return 0;
}
