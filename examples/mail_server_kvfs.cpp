// A toy mail spool on KVFS — the paper's motivating small-file workload (§5: "email
// clients ... operate on many small files"). Messages are keyed blobs; KVFS's get/set
// interface skips file descriptors entirely and indexes each message with a fixed array
// instead of a radix tree. A generic ArckFS LibFS then reads the same mailbox through the
// shared core state, demonstrating interoperability between customized LibFSes.
//
//   $ ./mail_server_kvfs

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/core_state.h"
#include "src/kernel/controller.h"
#include "src/kvfs/kvfs.h"

using namespace trio;

namespace {

std::string MakeMessage(int n) {
  return "From: user" + std::to_string(n % 7) + "@example.com\n" +
         "Subject: message " + std::to_string(n) + "\n\n" +
         std::string(256 + (n * 37) % 2048, 'm');
}

}  // namespace

int main() {
  NvmPool pool(1 << 15);
  TRIO_CHECK_OK(Format(pool, FormatOptions{}));
  KernelController kernel(pool);
  TRIO_CHECK_OK(kernel.Mount());

  constexpr int kMessages = 500;
  {
    KvFs mailbox(kernel, ArckFsConfig{}, "/spool");

    // Deliver.
    for (int i = 0; i < kMessages; ++i) {
      const std::string body = MakeMessage(i);
      TRIO_CHECK_OK(mailbox.Set("msg" + std::to_string(i), body.data(), body.size()));
    }
    std::printf("delivered %d messages into /spool via KVFS set()\n", kMessages);

    // Serve a few reads.
    std::string buffer(KvFs::kMaxValueSize, '\0');
    for (int i : {0, 123, 499}) {
      Result<size_t> n = mailbox.Get("msg" + std::to_string(i), buffer.data(),
                                     buffer.size());
      TRIO_CHECK(n.ok());
      std::printf("msg%-3d  %4zu bytes  %.30s...\n", i, *n, buffer.c_str());
    }

    // Expunge every third message.
    int expunged = 0;
    for (int i = 0; i < kMessages; i += 3) {
      TRIO_CHECK_OK(mailbox.Delete("msg" + std::to_string(i)));
      ++expunged;
    }
    std::printf("expunged %d messages\n", expunged);
  }  // The KVFS LibFS unregisters; its writes are verified and reconciled.

  // A completely generic LibFS sees the same mailbox: the customization changed only
  // auxiliary state, never the shared core state (§5).
  ArckFs generic(kernel);
  Result<std::vector<DirEntryInfo>> entries = generic.ReadDir("/spool");
  TRIO_CHECK(entries.ok());
  std::printf("generic ArckFS sees %zu messages in /spool; sample:\n", entries->size());
  Result<Fd> fd = generic.Open("/spool/msg1", OpenFlags::ReadOnly());
  TRIO_CHECK(fd.ok());
  char head[32] = {};
  TRIO_CHECK(generic.Pread(*fd, head, sizeof(head) - 1, 0).ok());
  std::printf("  msg1 starts: %s\n", head);
  TRIO_CHECK_OK(generic.Close(*fd));
  return 0;
}
