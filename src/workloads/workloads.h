// Workload generators reproducing the paper's benchmarks (§6.1):
//
//   FioWorkload       — fio [8]: per-thread private file, sequential/random 4 KiB or
//                       2 MiB reads/writes ("each thread accesses a 1 GiB private file").
//   FxMarkWorkload    — FxMark [39] microbenchmarks; Table 2's metadata set (DWTL,
//                       MRP{L,M,H}, MRD{L,M}, MWC{L,M}, MWU{L,M}, MWRL, MWRM) plus the
//                       DRBL/DRBM data ops used in §6.4's data-scalability summary.
//   FilebenchWorkload — Filebench [7] personalities with Table 4's configurations:
//                       Fileserver, Webserver, Webproxy, Varmail (+ the Webproxy KV
//                       variant for KVFS and the depth-20 Varmail variant for FPFS).
//
// Every generator runs real operations against any FsInterface; sizes scale down by
// `scale` so functional runs fit the emulated pool (the sim layer uses the paper's full
// parameters — see bench/).

#ifndef SRC_WORKLOADS_WORKLOADS_H_
#define SRC_WORKLOADS_WORKLOADS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/libfs/fs_interface.h"

namespace trio {

class OpRingEngine;
class ArckFs;
class KernelController;

struct WorkloadStats {
  uint64_t ops = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

// ---------------------------------------------------------------------------
// fio
// ---------------------------------------------------------------------------

struct FioConfig {
  uint64_t file_size = 4 << 20;  // Paper: 1 GiB; scaled for the emulated pool.
  size_t block_size = 4096;      // 4 KiB or 2 MiB.
  bool is_read = true;
  bool random = false;
  uint64_t seed = 1;
  // Route writes through the async op ring in bursts of `ring_burst` SQEs (one drainer
  // wake per burst). Reads stay synchronous — the ring has no read op. `ring` must be
  // the engine of the same LibFS instance as `fs_` and outlive the workload.
  bool use_ring = false;
  size_t ring_burst = 16;
  OpRingEngine* ring = nullptr;
};

class FioWorkload {
 public:
  FioWorkload(FsInterface& fs, FioConfig config) : fs_(fs), config_(config) {}

  // Creates and fills each thread's private file.
  Status Prepare(int threads);
  // Executes `ops` block operations on thread `thread`'s file.
  Result<WorkloadStats> Run(int thread, uint64_t ops);

 private:
  std::string PathFor(int thread) const { return "/fio_t" + std::to_string(thread); }

  FsInterface& fs_;
  FioConfig config_;
};

// ---------------------------------------------------------------------------
// FxMark
// ---------------------------------------------------------------------------

enum class FxMarkBench {
  kDWTL,  // Reduce a private file's size by 4K.
  kMRPL,  // Open a private file in five-depth dirs.
  kMRPM,  // Open a random file in a shared five-depth dir.
  kMRPH,  // Open the same file.
  kMRDL,  // Enumerate a private directory.
  kMRDM,  // Enumerate a shared directory.
  kMWCL,  // Create an empty file in a private dir.
  kMWCM,  // Create in a shared dir.
  kMWUL,  // Unlink in a private dir.
  kMWUM,  // Unlink in a shared dir.
  kMWRL,  // Rename a private file in a private dir.
  kMWRM,  // Move a private file to a shared dir.
  kDRBL,  // Read a private block (data scalability).
  kDRBM,  // Read a block of a shared file.
};

const char* FxMarkBenchName(FxMarkBench bench);
// Is this a "shared resource" benchmark (the -M/-H variants)?
bool FxMarkShared(FxMarkBench bench);

class FxMarkWorkload {
 public:
  FxMarkWorkload(FsInterface& fs, FxMarkBench bench, uint64_t seed = 7)
      : fs_(fs), bench_(bench), seed_(seed) {}

  Status Prepare(int threads);
  // One benchmark iteration on behalf of `thread`; `i` is the iteration number.
  Status Op(int thread, uint64_t i);

 private:
  std::string PrivateDir(int thread) const { return "/fx_p" + std::to_string(thread); }

  FsInterface& fs_;
  FxMarkBench bench_;
  uint64_t seed_;
  int threads_ = 0;
  std::vector<uint64_t> truncate_sizes_;   // DWTL state per thread.
  std::vector<std::string> deep_private_;  // Per-thread five-depth target (MRPL).
  std::string shared_deep_;                // Shared five-depth directory (MRPM/MRPH).
};

// ---------------------------------------------------------------------------
// Filebench
// ---------------------------------------------------------------------------

enum class FilebenchPersonality { kFileserver, kWebserver, kWebproxy, kVarmail };

const char* FilebenchName(FilebenchPersonality personality);

// Table 4 configuration, with a linear scale factor applied to file counts and sizes so
// functional runs fit the pool. Paper values (scale = 1.0): Fileserver 10K x 2MB 1:2 R/W;
// Webserver 20K x 4MB(sic; modeled as 64KB medium files) 10:1; Webproxy 100K small files
// 5:1; Varmail 100K x 16KB 1:1 with fsync.
struct FilebenchConfig {
  FilebenchPersonality personality = FilebenchPersonality::kFileserver;
  double scale = 0.01;
  int dir_depth = 1;  // Varmail's FPFS variant uses 20 (§6.6).
  uint64_t seed = 11;

  int FileCount() const;
  uint64_t AvgFileSize() const;
  size_t ReadIoSize() const;
  size_t WriteIoSize() const;
};

class FilebenchWorkload {
 public:
  // Each thread gets a private fileset (the paper's fix for Filebench's fileset-lock
  // scalability bug, §6.6).
  FilebenchWorkload(FsInterface& fs, FilebenchConfig config) : fs_(fs), config_(config) {}

  Status Prepare(int threads);
  // One personality "transaction" for `thread`. Returns bytes moved.
  Result<WorkloadStats> Op(int thread, uint64_t i);

 private:
  std::string FilesetDir(int thread) const;
  std::string FilePath(int thread, uint64_t index) const;

  FsInterface& fs_;
  FilebenchConfig config_;
  int threads_ = 0;
  std::vector<Rng> rngs_;
  std::vector<uint64_t> next_new_file_;
  std::vector<std::string> deep_dirs_;  // dir_depth > 1 variant.
};

// ---------------------------------------------------------------------------
// Fleet
// ---------------------------------------------------------------------------

// Multi-tenant fleet over ONE kernel controller: `tenants` LibFS instances sharing a
// Zipfian-skewed pool of read-mostly files, each tenant also owning a private working
// file, with occasional renames between the private and shared namespaces. Built to
// drive the sharded controller: shared-file reads hit the lock-free grant fast path,
// private writes churn leases in the owner's shard, and the renames force two-phase
// cross-shard acquisitions plus write-map revocation of every reader of the shared
// directory. Per-shard costs measured under this workload feed sim::ExtrapolateFleet.
struct FleetConfig {
  int tenants = 64;
  int shared_files = 128;   // Zipfian-shared pool under /fleet_shared.
  double zipf_theta = 0.99;
  uint64_t file_size = 8192;  // Bytes per file (shared and private).
  size_t io_size = 4096;
  // Op mix, per mille: remainder is Zipfian shared-file reads.
  int write_permille = 100;   // Pwrite into the tenant's private file.
  int rename_permille = 20;   // Move the private file across the shared/private boundary.
  uint64_t seed = 17;
  uint32_t uid = 0;           // All tenants share a uid so shared files stay readable.
  // Route private writes through each tenant's op ring (SubmitBurst of ring_burst
  // pwrites per op) instead of synchronous Pwrite.
  bool use_ring = false;
  size_t ring_burst = 8;
};

class FleetWorkload {
 public:
  FleetWorkload(KernelController& kernel, FleetConfig config = {});
  ~FleetWorkload();  // Unregisters every tenant.

  // Registers the tenants and builds the shared + private trees.
  Status Prepare();
  // One fleet operation on behalf of `tenant` (0-based). Thread-safe across distinct
  // tenants; a single tenant must be driven from one thread at a time.
  Status Op(int tenant, uint64_t i);

  int tenants() const { return config_.tenants; }
  ArckFs& tenant(int t) { return *tenants_[static_cast<size_t>(t)]; }
  const WorkloadStats& stats(int t) const { return per_tenant_[static_cast<size_t>(t)].stats; }

 private:
  struct TenantState {
    Rng rng{0};
    WorkloadStats stats;
    bool private_in_shared = false;  // Where the rename left the private file.
  };

  std::string SharedPath(uint64_t rank) const;
  std::string PrivateHome(int tenant) const;

  KernelController& kernel_;
  FleetConfig config_;
  std::vector<std::unique_ptr<ArckFs>> tenants_;
  std::vector<TenantState> per_tenant_;
  std::unique_ptr<Zipfian> zipf_;
};

}  // namespace trio

#endif  // SRC_WORKLOADS_WORKLOADS_H_
