#include "src/workloads/workloads.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/libfs/arckfs.h"
#include "src/libfs/op_ring.h"

namespace trio {

namespace {

std::string Payload(size_t n, char fill = 'w') { return std::string(n, fill); }

Status WriteWhole(FsInterface& fs, const std::string& path, uint64_t size,
                  size_t io_size) {
  TRIO_ASSIGN_OR_RETURN(Fd fd, fs.Open(path, OpenFlags::CreateTrunc()));
  const std::string block = Payload(std::min<uint64_t>(io_size, size));
  uint64_t offset = 0;
  Status status = OkStatus();
  while (offset < size && status.ok()) {
    const size_t chunk = std::min<uint64_t>(block.size(), size - offset);
    Result<size_t> n = fs.Pwrite(fd, block.data(), chunk, offset);
    status = n.ok() ? OkStatus() : n.status();
    offset += chunk;
  }
  Status closed = fs.Close(fd);
  return status.ok() ? closed : status;
}

}  // namespace

// ---------------------------------------------------------------------------
// fio
// ---------------------------------------------------------------------------

Status FioWorkload::Prepare(int threads) {
  for (int t = 0; t < threads; ++t) {
    TRIO_RETURN_IF_ERROR(WriteWhole(fs_, PathFor(t), config_.file_size, 1 << 20));
  }
  return OkStatus();
}

Result<WorkloadStats> FioWorkload::Run(int thread, uint64_t ops) {
  WorkloadStats stats;
  Rng rng(config_.seed + thread);
  OpenFlags flags = config_.is_read ? OpenFlags::ReadOnly() : OpenFlags::ReadWrite();
  TRIO_ASSIGN_OR_RETURN(Fd fd, fs_.Open(PathFor(thread), flags));
  std::vector<char> buffer(config_.block_size, 'f');
  const uint64_t blocks = std::max<uint64_t>(1, config_.file_size / config_.block_size);
  if (config_.use_ring && !config_.is_read) {
    if (config_.ring == nullptr) {
      (void)fs_.Close(fd);
      return InvalidArgument("use_ring set but FioConfig::ring is null");
    }
    // All SQEs of a burst share one payload buffer: the ring only reads it, and it stays
    // live until every CQE of the burst has been reaped below.
    const size_t burst = std::max<size_t>(1, config_.ring_burst);
    std::vector<Sqe> sqes(burst);
    for (uint64_t done = 0; done < ops;) {
      const size_t n = static_cast<size_t>(std::min<uint64_t>(burst, ops - done));
      for (size_t j = 0; j < n; ++j) {
        const uint64_t block = config_.random ? rng.Below(blocks) : (done + j) % blocks;
        Sqe& sqe = sqes[j];
        sqe = Sqe{};
        sqe.op = Sqe::Op::kPwrite;
        sqe.fd = fd;
        sqe.buf = buffer.data();
        sqe.len = static_cast<uint32_t>(buffer.size());
        sqe.offset = block * config_.block_size;
      }
      config_.ring->SubmitBurst(sqes.data(), n);
      for (size_t j = 0; j < n; ++j) {
        const Cqe cqe = config_.ring->WaitCompletion();
        if (!cqe.ok()) {
          (void)fs_.Close(fd);
          return Status(cqe.code(), "ring pwrite failed");
        }
        stats.bytes_written += static_cast<uint64_t>(cqe.result);
        ++stats.ops;
      }
      done += n;
    }
    TRIO_RETURN_IF_ERROR(fs_.Close(fd));
    return stats;
  }
  for (uint64_t i = 0; i < ops; ++i) {
    const uint64_t block = config_.random ? rng.Below(blocks) : i % blocks;
    const uint64_t offset = block * config_.block_size;
    if (config_.is_read) {
      TRIO_ASSIGN_OR_RETURN(size_t n, fs_.Pread(fd, buffer.data(), buffer.size(), offset));
      stats.bytes_read += n;
    } else {
      TRIO_ASSIGN_OR_RETURN(size_t n,
                            fs_.Pwrite(fd, buffer.data(), buffer.size(), offset));
      stats.bytes_written += n;
    }
    ++stats.ops;
  }
  TRIO_RETURN_IF_ERROR(fs_.Close(fd));
  return stats;
}

// ---------------------------------------------------------------------------
// FxMark
// ---------------------------------------------------------------------------

const char* FxMarkBenchName(FxMarkBench bench) {
  switch (bench) {
    case FxMarkBench::kDWTL:
      return "DWTL";
    case FxMarkBench::kMRPL:
      return "MRPL";
    case FxMarkBench::kMRPM:
      return "MRPM";
    case FxMarkBench::kMRPH:
      return "MRPH";
    case FxMarkBench::kMRDL:
      return "MRDL";
    case FxMarkBench::kMRDM:
      return "MRDM";
    case FxMarkBench::kMWCL:
      return "MWCL";
    case FxMarkBench::kMWCM:
      return "MWCM";
    case FxMarkBench::kMWUL:
      return "MWUL";
    case FxMarkBench::kMWUM:
      return "MWUM";
    case FxMarkBench::kMWRL:
      return "MWRL";
    case FxMarkBench::kMWRM:
      return "MWRM";
    case FxMarkBench::kDRBL:
      return "DRBL";
    case FxMarkBench::kDRBM:
      return "DRBM";
  }
  return "?";
}

bool FxMarkShared(FxMarkBench bench) {
  switch (bench) {
    case FxMarkBench::kMRPM:
    case FxMarkBench::kMRPH:
    case FxMarkBench::kMRDM:
    case FxMarkBench::kMWCM:
    case FxMarkBench::kMWUM:
    case FxMarkBench::kMWRM:
    case FxMarkBench::kDRBM:
      return true;
    default:
      return false;
  }
}

Status FxMarkWorkload::Prepare(int threads) {
  threads_ = threads;
  truncate_sizes_.assign(threads, 0);

  // Shared resources: /fx_shared five-deep, populated with files.
  TRIO_RETURN_IF_ERROR(fs_.Mkdir("/fx_shared"));
  std::string deep = "/fx_shared";
  for (int d = 0; d < 4; ++d) {
    deep += "/d" + std::to_string(d);
    TRIO_RETURN_IF_ERROR(fs_.Mkdir(deep));
  }
  shared_deep_ = deep;
  for (int i = 0; i < 64; ++i) {
    TRIO_ASSIGN_OR_RETURN(Fd fd, fs_.Open(deep + "/s" + std::to_string(i),
                                          OpenFlags::CreateRw()));
    TRIO_RETURN_IF_ERROR(fs_.Close(fd));
  }
  TRIO_RETURN_IF_ERROR(WriteWhole(fs_, "/fx_shared/bulk", 1 << 20, 1 << 20));

  for (int t = 0; t < threads; ++t) {
    const std::string dir = PrivateDir(t);
    TRIO_RETURN_IF_ERROR(fs_.Mkdir(dir));
    // Five-depth private tree with one file at the bottom (MRPL).
    std::string path = dir;
    for (int d = 0; d < 4; ++d) {
      path += "/d" + std::to_string(d);
      TRIO_RETURN_IF_ERROR(fs_.Mkdir(path));
    }
    TRIO_ASSIGN_OR_RETURN(Fd fd, fs_.Open(path + "/target", OpenFlags::CreateRw()));
    TRIO_RETURN_IF_ERROR(fs_.Close(fd));
    deep_private_.push_back(path + "/target");
    // Files to enumerate (MRDL) and a large file to truncate (DWTL) / read (DRBL).
    for (int i = 0; i < 16; ++i) {
      TRIO_ASSIGN_OR_RETURN(Fd f, fs_.Open(dir + "/e" + std::to_string(i),
                                           OpenFlags::CreateRw()));
      TRIO_RETURN_IF_ERROR(fs_.Close(f));
    }
    TRIO_RETURN_IF_ERROR(WriteWhole(fs_, dir + "/big", 1 << 20, 1 << 20));
    truncate_sizes_[t] = 1 << 20;
  }
  return OkStatus();
}

Status FxMarkWorkload::Op(int thread, uint64_t i) {
  Rng rng(seed_ * 1000003 + thread * 131 + i);
  char buffer[4096];
  switch (bench_) {
    case FxMarkBench::kDWTL: {
      uint64_t& size = truncate_sizes_[thread];
      if (size < 4096) {
        TRIO_RETURN_IF_ERROR(
            fs_.Truncate(PrivateDir(thread) + "/big", 1 << 20));
        size = 1 << 20;
      }
      size -= 4096;
      return fs_.Truncate(PrivateDir(thread) + "/big", size);
    }
    case FxMarkBench::kMRPL: {
      TRIO_ASSIGN_OR_RETURN(Fd fd,
                            fs_.Open(deep_private_[thread], OpenFlags::ReadOnly()));
      return fs_.Close(fd);
    }
    case FxMarkBench::kMRPM: {
      const std::string path = shared_deep_ + "/s" + std::to_string(rng.Below(64));
      TRIO_ASSIGN_OR_RETURN(Fd fd, fs_.Open(path, OpenFlags::ReadOnly()));
      return fs_.Close(fd);
    }
    case FxMarkBench::kMRPH: {
      TRIO_ASSIGN_OR_RETURN(Fd fd, fs_.Open(shared_deep_ + "/s0", OpenFlags::ReadOnly()));
      return fs_.Close(fd);
    }
    case FxMarkBench::kMRDL: {
      Result<std::vector<DirEntryInfo>> entries = fs_.ReadDir(PrivateDir(thread));
      return entries.ok() ? OkStatus() : entries.status();
    }
    case FxMarkBench::kMRDM: {
      Result<std::vector<DirEntryInfo>> entries = fs_.ReadDir(shared_deep_);
      return entries.ok() ? OkStatus() : entries.status();
    }
    case FxMarkBench::kMWCL:
    case FxMarkBench::kMWCM: {
      const std::string dir =
          bench_ == FxMarkBench::kMWCL ? PrivateDir(thread) : std::string("/fx_shared");
      const std::string path =
          dir + "/c" + std::to_string(thread) + "_" + std::to_string(i);
      TRIO_ASSIGN_OR_RETURN(Fd fd, fs_.Open(path, OpenFlags::CreateRw()));
      return fs_.Close(fd);
    }
    case FxMarkBench::kMWUL:
    case FxMarkBench::kMWUM: {
      const std::string dir =
          bench_ == FxMarkBench::kMWUL ? PrivateDir(thread) : std::string("/fx_shared");
      const std::string path =
          dir + "/u" + std::to_string(thread) + "_" + std::to_string(i);
      TRIO_ASSIGN_OR_RETURN(Fd fd, fs_.Open(path, OpenFlags::CreateRw()));
      TRIO_RETURN_IF_ERROR(fs_.Close(fd));
      return fs_.Unlink(path);
    }
    case FxMarkBench::kMWRL: {
      const std::string dir = PrivateDir(thread);
      const std::string a = dir + "/r" + std::to_string(thread);
      const std::string b = dir + "/r" + std::to_string(thread) + "x";
      if (i == 0) {
        TRIO_ASSIGN_OR_RETURN(Fd fd, fs_.Open(a, OpenFlags::CreateRw()));
        TRIO_RETURN_IF_ERROR(fs_.Close(fd));
      }
      return i % 2 == 0 ? fs_.Rename(a, b) : fs_.Rename(b, a);
    }
    case FxMarkBench::kMWRM: {
      const std::string src =
          PrivateDir(thread) + "/m" + std::to_string(thread) + "_" + std::to_string(i);
      TRIO_ASSIGN_OR_RETURN(Fd fd, fs_.Open(src, OpenFlags::CreateRw()));
      TRIO_RETURN_IF_ERROR(fs_.Close(fd));
      return fs_.Rename(src, "/fx_shared/m" + std::to_string(thread) + "_" +
                                 std::to_string(i));
    }
    case FxMarkBench::kDRBL: {
      TRIO_ASSIGN_OR_RETURN(Fd fd,
                            fs_.Open(PrivateDir(thread) + "/big", OpenFlags::ReadOnly()));
      Result<size_t> n = fs_.Pread(fd, buffer, sizeof(buffer),
                                   rng.Below(256) * 4096);
      TRIO_RETURN_IF_ERROR(fs_.Close(fd));
      return n.ok() ? OkStatus() : n.status();
    }
    case FxMarkBench::kDRBM: {
      TRIO_ASSIGN_OR_RETURN(Fd fd, fs_.Open("/fx_shared/bulk", OpenFlags::ReadOnly()));
      Result<size_t> n = fs_.Pread(fd, buffer, sizeof(buffer), rng.Below(256) * 4096);
      TRIO_RETURN_IF_ERROR(fs_.Close(fd));
      return n.ok() ? OkStatus() : n.status();
    }
  }
  return InvalidArgument("unknown benchmark");
}

// ---------------------------------------------------------------------------
// Filebench
// ---------------------------------------------------------------------------

const char* FilebenchName(FilebenchPersonality personality) {
  switch (personality) {
    case FilebenchPersonality::kFileserver:
      return "Fileserver";
    case FilebenchPersonality::kWebserver:
      return "Webserver";
    case FilebenchPersonality::kWebproxy:
      return "Webproxy";
    case FilebenchPersonality::kVarmail:
      return "Varmail";
  }
  return "?";
}

int FilebenchConfig::FileCount() const {
  double count;
  switch (personality) {
    case FilebenchPersonality::kFileserver:
      count = 10000;
      break;
    case FilebenchPersonality::kWebserver:
      count = 20000;
      break;
    default:
      count = 100000;
      break;
  }
  return std::max(4, static_cast<int>(count * scale));
}

uint64_t FilebenchConfig::AvgFileSize() const {
  switch (personality) {
    case FilebenchPersonality::kFileserver:
      return 2 << 20;
    case FilebenchPersonality::kWebserver:
      return 64 << 10;
    case FilebenchPersonality::kWebproxy:
    case FilebenchPersonality::kVarmail:
      return 16 << 10;
  }
  return 16 << 10;
}

size_t FilebenchConfig::ReadIoSize() const { return 1 << 20; }

size_t FilebenchConfig::WriteIoSize() const {
  switch (personality) {
    case FilebenchPersonality::kFileserver:
      return 512 << 10;
    case FilebenchPersonality::kWebserver:
      return 256 << 10;
    default:
      return 16 << 10;
  }
}

std::string FilebenchWorkload::FilesetDir(int thread) const {
  return "/fb_" + std::string(FilebenchName(config_.personality)) + "_t" +
         std::to_string(thread);
}

std::string FilebenchWorkload::FilePath(int thread, uint64_t index) const {
  return FilesetDir(thread) + "/f" + std::to_string(index);
}

Status FilebenchWorkload::Prepare(int threads) {
  threads_ = threads;
  rngs_.clear();
  next_new_file_.assign(threads, 1u << 20);
  const int files = config_.FileCount();
  const uint64_t size = std::max<uint64_t>(4096, config_.AvgFileSize() * config_.scale * 4);
  for (int t = 0; t < threads; ++t) {
    rngs_.emplace_back(config_.seed + t);
    std::string dir;
    if (config_.dir_depth > 1) {
      // The FPFS variant: filesets at the bottom of a deep hierarchy (§6.6).
      dir = "/fbdeep_t" + std::to_string(t);
      TRIO_RETURN_IF_ERROR(fs_.Mkdir(dir));
      for (int d = 1; d < config_.dir_depth; ++d) {
        dir += "/l" + std::to_string(d);
        TRIO_RETURN_IF_ERROR(fs_.Mkdir(dir));
      }
      deep_dirs_.push_back(dir);
    } else {
      dir = FilesetDir(t);
      TRIO_RETURN_IF_ERROR(fs_.Mkdir(dir));
    }
    for (int f = 0; f < files; ++f) {
      const std::string path =
          (config_.dir_depth > 1 ? dir : FilesetDir(t)) + "/f" + std::to_string(f);
      TRIO_RETURN_IF_ERROR(WriteWhole(fs_, path, size, config_.WriteIoSize()));
    }
  }
  return OkStatus();
}

Result<WorkloadStats> FilebenchWorkload::Op(int thread, uint64_t i) {
  WorkloadStats stats;
  Rng& rng = rngs_[thread];
  const int files = config_.FileCount();
  const std::string dir =
      config_.dir_depth > 1 ? deep_dirs_[thread] : FilesetDir(thread);
  auto path_of = [&](uint64_t index) { return dir + "/f" + std::to_string(index); };
  const uint64_t file_size =
      std::max<uint64_t>(4096, config_.AvgFileSize() * config_.scale * 4);
  std::vector<char> buffer(std::max(config_.ReadIoSize(), config_.WriteIoSize()), 'b');

  auto read_whole = [&](const std::string& path) -> Status {
    TRIO_ASSIGN_OR_RETURN(Fd fd, fs_.Open(path, OpenFlags::ReadOnly()));
    uint64_t offset = 0;
    while (true) {
      Result<size_t> n = fs_.Pread(fd, buffer.data(), config_.ReadIoSize(), offset);
      if (!n.ok()) {
        (void)fs_.Close(fd);
        return n.status();
      }
      stats.bytes_read += *n;
      offset += *n;
      if (*n < config_.ReadIoSize()) {
        break;
      }
    }
    ++stats.ops;
    return fs_.Close(fd);
  };
  auto append = [&](const std::string& path, size_t n) -> Status {
    OpenFlags flags = OpenFlags::ReadWrite();
    flags.append = true;
    flags.create = true;
    TRIO_ASSIGN_OR_RETURN(Fd fd, fs_.Open(path, flags));
    Result<size_t> wrote = fs_.Write(fd, buffer.data(), n);
    if (!wrote.ok()) {
      (void)fs_.Close(fd);
      return wrote.status();
    }
    stats.bytes_written += *wrote;
    ++stats.ops;
    TRIO_RETURN_IF_ERROR(fs_.Fsync(fd));
    return fs_.Close(fd);
  };
  auto create_file = [&]() -> Status {
    const std::string path = dir + "/n" + std::to_string(next_new_file_[thread]++);
    TRIO_RETURN_IF_ERROR(WriteWhole(fs_, path, file_size, config_.WriteIoSize()));
    stats.bytes_written += file_size;
    ++stats.ops;
    // Keep the fileset bounded: delete it again.
    return fs_.Unlink(path);
  };

  switch (config_.personality) {
    case FilebenchPersonality::kFileserver:
      // create+write, append, read-whole, delete(recreated), stat. R:W = 1:2.
      TRIO_RETURN_IF_ERROR(create_file());
      TRIO_RETURN_IF_ERROR(append(path_of(rng.Below(files)), config_.WriteIoSize()));
      TRIO_RETURN_IF_ERROR(read_whole(path_of(rng.Below(files))));
      {
        Result<StatInfo> info = fs_.Stat(path_of(rng.Below(files)));
        TRIO_RETURN_IF_ERROR(info.ok() ? OkStatus() : info.status());
        ++stats.ops;
      }
      break;
    case FilebenchPersonality::kWebserver:
      // 10 whole-file reads + 1 log append (10:1).
      for (int r = 0; r < 10; ++r) {
        TRIO_RETURN_IF_ERROR(read_whole(path_of(rng.Below(files))));
      }
      TRIO_RETURN_IF_ERROR(append(dir + "/weblog", 16 << 10));
      break;
    case FilebenchPersonality::kWebproxy:
      // delete+create+append, then 5 small-file reads (5:1).
      TRIO_RETURN_IF_ERROR(create_file());
      for (int r = 0; r < 5; ++r) {
        TRIO_RETURN_IF_ERROR(read_whole(path_of(rng.Below(files))));
      }
      break;
    case FilebenchPersonality::kVarmail:
      // Mail pattern: delete, create+fsync, read, append+fsync, read (1:1).
      TRIO_RETURN_IF_ERROR(create_file());
      TRIO_RETURN_IF_ERROR(read_whole(path_of(rng.Below(files))));
      TRIO_RETURN_IF_ERROR(append(path_of(rng.Below(files)), 16 << 10));
      TRIO_RETURN_IF_ERROR(read_whole(path_of(rng.Below(files))));
      break;
  }
  return stats;
}


// ---------------------------------------------------------------------------
// Fleet
// ---------------------------------------------------------------------------

FleetWorkload::FleetWorkload(KernelController& kernel, FleetConfig config)
    : kernel_(kernel), config_(config) {}

FleetWorkload::~FleetWorkload() = default;

std::string FleetWorkload::SharedPath(uint64_t rank) const {
  return "/fleet_shared/f" + std::to_string(rank);
}

std::string FleetWorkload::PrivateHome(int tenant) const {
  return "/fleet_t" + std::to_string(tenant);
}

Status FleetWorkload::Prepare() {
  tenants_.clear();
  per_tenant_.clear();
  zipf_ = std::make_unique<Zipfian>(static_cast<uint64_t>(config_.shared_files),
                                    config_.zipf_theta);
  ArckFsConfig fs_config;
  fs_config.uid = config_.uid;
  fs_config.gid = config_.uid;
  fs_config.ring.enabled = config_.use_ring;
  // Default lease batches (64 inos / 64 pages) are sized for a handful of tenants; a
  // fleet of 64+ would exhaust the inode space and page pool on first allocation before
  // doing any work. Scale the batch down so aggregate reservations stay a fraction of
  // the pool — small batches are the realistic fleet configuration anyway.
  if (config_.tenants >= 16) {
    fs_config.ino_batch = 8;
    fs_config.page_batch = 16;
  }
  for (int t = 0; t < config_.tenants; ++t) {
    tenants_.push_back(std::make_unique<ArckFs>(kernel_, fs_config));
    TenantState state;
    state.rng = Rng(config_.seed + 1000003ull * static_cast<uint64_t>(t));
    per_tenant_.push_back(std::move(state));
  }
  // Tenant 0 provisions the shared pool; every tenant builds its own private home so the
  // private files' write leases start in the owning tenant.
  ArckFs& provisioner = *tenants_[0];
  TRIO_RETURN_IF_ERROR(provisioner.Mkdir("/fleet_shared"));
  for (int f = 0; f < config_.shared_files; ++f) {
    TRIO_RETURN_IF_ERROR(WriteWhole(provisioner, SharedPath(static_cast<uint64_t>(f)),
                                    config_.file_size, config_.io_size));
  }
  // Release the write maps taken while provisioning so reader tenants do not begin by
  // revoking tenant 0 on every shared file. Directory FIRST: committing it hands the
  // kernel the records (and tenant 0's implicit write grants) for the freshly created
  // children, which the per-file releases below then relinquish. File-first would make
  // those releases kernel-side no-ops and leave the implicit grants standing.
  (void)provisioner.ReleaseFile("/fleet_shared");
  for (int f = 0; f < config_.shared_files; ++f) {
    (void)provisioner.ReleaseFile(SharedPath(static_cast<uint64_t>(f)));
  }
  for (int t = 0; t < config_.tenants; ++t) {
    ArckFs& fs = *tenants_[static_cast<size_t>(t)];
    TRIO_RETURN_IF_ERROR(fs.Mkdir(PrivateHome(t)));
    TRIO_RETURN_IF_ERROR(WriteWhole(fs, PrivateHome(t) + "/work", config_.file_size,
                                    config_.io_size));
  }
  return OkStatus();
}

Status FleetWorkload::Op(int tenant, uint64_t i) {
  (void)i;
  TenantState& state = per_tenant_[static_cast<size_t>(tenant)];
  ArckFs& fs = *tenants_[static_cast<size_t>(tenant)];
  const uint64_t pick = state.rng.Below(1000);
  const uint64_t blocks =
      std::max<uint64_t>(1, config_.file_size / config_.io_size);

  if (pick < static_cast<uint64_t>(config_.rename_permille)) {
    // Cross-shard churn: shuttle the private file between the tenant's home directory
    // and the shared directory (FxMark MWRM's move-to-shared, fleet-wide). The two
    // directories' inodes land in different controller shards for most tenants, so this
    // is the two-phase ordered-acquire path; renaming into /fleet_shared also write-maps
    // the shared directory, revoking every reader.
    const std::string home = PrivateHome(tenant) + "/work";
    const std::string away = "/fleet_shared/t" + std::to_string(tenant) + "_work";
    Status moved = state.private_in_shared ? fs.Rename(away, home)
                                           : fs.Rename(home, away);
    TRIO_RETURN_IF_ERROR(moved);
    state.private_in_shared = !state.private_in_shared;
    ++state.stats.ops;
    return OkStatus();
  }

  if (pick < static_cast<uint64_t>(config_.rename_permille + config_.write_permille)) {
    const std::string path = state.private_in_shared
                                 ? "/fleet_shared/t" + std::to_string(tenant) + "_work"
                                 : PrivateHome(tenant) + "/work";
    TRIO_ASSIGN_OR_RETURN(Fd fd, fs.Open(path, OpenFlags::ReadWrite()));
    const std::string block = Payload(config_.io_size, 'F');
    Status write_status = OkStatus();
    if (config_.use_ring && fs.ring_engine() != nullptr) {
      // Async path: a burst of positional writes through the tenant's own ring, reaped
      // in the same op so the payload buffer stays live across the burst.
      const size_t burst = std::max<size_t>(1, config_.ring_burst);
      std::vector<Sqe> sqes(burst);
      for (size_t b = 0; b < burst; ++b) {
        Sqe& sqe = sqes[b];
        sqe.op = Sqe::Op::kPwrite;
        sqe.fd = fd;
        sqe.buf = block.data();
        sqe.len = static_cast<uint32_t>(block.size());
        sqe.offset = state.rng.Below(blocks) * config_.io_size;
      }
      fs.ring_engine()->SubmitBurst(sqes.data(), sqes.size());
      for (size_t b = 0; b < burst; ++b) {
        const Cqe cqe = fs.ring_engine()->WaitCompletion();
        if (!cqe.ok()) {
          write_status = Status(cqe.code(), "fleet ring pwrite failed");
          continue;  // Keep reaping: every submitted CQE must be consumed.
        }
        state.stats.bytes_written += static_cast<uint64_t>(cqe.result);
      }
    } else {
      const uint64_t offset = state.rng.Below(blocks) * config_.io_size;
      Result<size_t> n = fs.Pwrite(fd, block.data(), block.size(), offset);
      if (n.ok()) {
        state.stats.bytes_written += n.value();
      }
      write_status = n.status();
    }
    Status closed = fs.Close(fd);
    TRIO_RETURN_IF_ERROR(write_status);
    TRIO_RETURN_IF_ERROR(closed);
    ++state.stats.ops;
    return OkStatus();
  }

  // Zipfian shared read: the read-mostly path the lock-free grant lookup serves.
  const uint64_t rank = zipf_->Next(state.rng);
  TRIO_ASSIGN_OR_RETURN(Fd fd, fs.Open(SharedPath(rank), OpenFlags::ReadOnly()));
  std::vector<char> buffer(config_.io_size);
  const uint64_t offset = state.rng.Below(blocks) * config_.io_size;
  Result<size_t> n = fs.Pread(fd, buffer.data(), buffer.size(), offset);
  Status closed = fs.Close(fd);
  TRIO_RETURN_IF_ERROR(n.status());
  TRIO_RETURN_IF_ERROR(closed);
  state.stats.bytes_read += n.value();
  ++state.stats.ops;
  return OkStatus();
}

}  // namespace trio
