#include "src/kernel/delegation.h"

#include <algorithm>

#include "src/obs/persist_span.h"
#include "src/sim/fault_injector.h"

namespace trio {

namespace {
// How many requests a worker pops (and a drain loop executes) per ring pass. Draining a
// small burst per pass amortizes the pop CAS without hoarding work other nodes could steal.
constexpr size_t kWorkerPopBatch = 8;
// Requests never exceed this, so uint32_t len always fits even for giant batch spans.
constexpr size_t kMaxRequestBytes = size_t{1} << 30;
}  // namespace

// ---------------------------------------------------------------------------
// DelegationPool
// ---------------------------------------------------------------------------

DelegationPool::DelegationPool(NvmPool& pool, DelegationConfig config)
    : pool_(pool), config_(config), num_nodes_(pool.topology().num_nodes) {
  threads_per_node_ = config_.threads_per_node > 0
                          ? config_.threads_per_node
                          : pool.topology().delegation_threads_per_node;
  nodes_.reserve(num_nodes_);
  for (int n = 0; n < num_nodes_; ++n) {
    nodes_.push_back(std::make_unique<NodeState>(config_.ring_capacity));
  }
  workers_.reserve(static_cast<size_t>(num_nodes_) * threads_per_node_);
  for (int n = 0; n < num_nodes_; ++n) {
    for (int t = 0; t < threads_per_node_; ++t) {
      workers_.emplace_back([this, n] { WorkerLoop(n); });
    }
  }
}

DelegationPool::~DelegationPool() { Stop(); }

void DelegationPool::Stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true, std::memory_order_seq_cst)) {
    return;
  }
  // Wake every parked worker; their loops observe stopped_ and exit.
  for (auto& node : nodes_) {
    {
      std::lock_guard<std::mutex> guard(node->mutex);
    }
    node->cv.notify_all();
  }
  for (auto& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  // Final drain: a Submit that pushed concurrently with the workers' exit may have left
  // requests behind. Executing them here (and inline in Submit once stopped_ is visible)
  // guarantees no waiter ever hangs across a stop.
  for (int n = 0; n < num_nodes_; ++n) {
    DrainInline(n);
  }
  WakeWaiters();
}

void DelegationPool::Submit(const DelegationRequest& request) {
  const int node = pool_.NodeOfAddress(request.nvm);
  SubmitSpan(node, &request, 1);
}

void DelegationPool::SubmitSpan(int node, const DelegationRequest* requests, size_t count) {
  if (count == 0) {
    return;
  }
  NodeState& state = *nodes_[node];
  for (size_t i = 0; i < count; ++i) {
    // Miscomputed splits must fail loudly: a request crossing a node-stripe boundary
    // would silently copy on the wrong node's ring.
    TRIO_DCHECK(requests[i].len > 0);
    TRIO_DCHECK(pool_.NodeOfAddress(requests[i].nvm) == node);
    TRIO_DCHECK(pool_.NodeOfAddress(requests[i].nvm + requests[i].len - 1) == node);
  }
  state.stats.submitted.fetch_add(count, std::memory_order_relaxed);

  size_t pushed = 0;
  while (pushed < count) {
    if (stopped_.load(std::memory_order_acquire)) {
      // Stopped (or stopping): workers may be gone. Drain whatever is queued and run the
      // rest of this span on the submitting thread so no completion is ever lost.
      DrainInline(node);
      for (size_t i = pushed; i < count; ++i) {
        Execute(requests[i], node);
      }
      return;
    }
    const size_t now = state.ring.TryPushBatch(requests + pushed, count - pushed);
    pushed += now;
    if (now == 0) {
      WakeNode(state, /*wake_all=*/true);  // Full ring: make sure consumers are running.
      CpuRelax();
    }
  }

  // Pair with the fence after a worker registers as a sleeper: either the worker's
  // post-registration ring check sees our push, or we see its sleepers increment.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (stopped_.load(std::memory_order_seq_cst)) {
    DrainInline(node);  // Stop raced with the push; its final drain may already be done.
  }
  WakeNode(state, count > 1);
  if (config_.steal && count >= config_.steal_wake_threshold) {
    // Large burst: wake one parked worker on every other node to steal into it.
    for (int n = 0; n < num_nodes_; ++n) {
      if (n != node) {
        WakeNode(*nodes_[n], /*wake_all=*/false);
      }
    }
  }
}

void DelegationPool::WakeNode(NodeState& node, bool wake_all) {
  if (node.sleepers.load(std::memory_order_seq_cst) == 0) {
    return;
  }
  {
    std::lock_guard<std::mutex> guard(node.mutex);
  }
  if (wake_all) {
    node.cv.notify_all();
  } else {
    node.cv.notify_one();
  }
}

void DelegationPool::Execute(const DelegationRequest& request, int executing_node) {
  FaultInjector* injector = pool_.fault_injector();
  if (injector != nullptr && injector->ShouldFire(kFaultDelegationWorker)) {
    DelegationNodeStats& stats = nodes_[executing_node]->stats;
    stats.faults.fetch_add(1, std::memory_order_relaxed);
    if (request.attempts < config_.fault_max_retries &&
        !stopped_.load(std::memory_order_acquire)) {
      DelegationRequest retry = request;
      ++retry.attempts;
      // Exponential backoff before the chunk re-enters the ring.
      const uint32_t spins = config_.fault_backoff_spins << retry.attempts;
      for (uint32_t i = 0; i < spins; ++i) {
        CpuRelax();
      }
      if (nodes_[executing_node]->ring.TryPush(retry)) {
        stats.fault_retries.fetch_add(1, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (stopped_.load(std::memory_order_seq_cst)) {
          // Stop raced with the re-queue; its final drain may already have run.
          DrainInline(executing_node);
        } else {
          WakeNode(*nodes_[executing_node], /*wake_all=*/false);
        }
        return;  // The retried copy completes (and decrements pending) later.
      }
      // Ring full: fall through and complete inline right now.
    }
    stats.inline_fallbacks.fetch_add(1, std::memory_order_relaxed);
    // Fall through: retries exhausted (or no room to retry) — the faulting thread
    // completes the chunk inline below, with no further injection on this execution.
  }
  switch (request.op) {
    case DelegationRequest::Op::kRead:
      pool_.Read(request.dram, request.nvm, request.len);
      break;
    case DelegationRequest::Op::kWrite:
      pool_.Write(request.nvm, request.dram, request.len);
      if (request.persist) {
        obs::PersistSpan span(pool_, &persist_stats_);
        span.Persist(request.nvm, request.len);
        if (request.group == nullptr) {
          span.Fence();  // Standalone request: self-fencing (the pre-batch behavior).
        } else {
          span.Disarm();  // The group's last completer fences for the whole node share.
        }
      }
      break;
  }
  if (request.group != nullptr) {
    // The acq_rel RMW chain makes every earlier chunk's Persist happen-before the single
    // fence the last completer issues.
    if (request.group->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        request.group->fence) {
      obs::PersistSpan(pool_, &persist_stats_).ForceFence();
    }
  }
  nodes_[executing_node]->stats.completed.fetch_add(1, std::memory_order_relaxed);
  if (request.pending != nullptr) {
    // The final decrement is the last touch of batch-owned memory (the waiter may free
    // the batch as soon as it observes zero); waking goes through pool-owned state only.
    if (request.pending->fetch_sub(1, std::memory_order_seq_cst) == 1) {
      WakeWaiters();
    }
  }
}

void DelegationPool::WorkerLoop(int node) {
  NodeState& state = *nodes_[node];
  DelegationRequest batch[kWorkerPopBatch];
  while (true) {
    const size_t popped = state.ring.TryPopBatch(batch, kWorkerPopBatch);
    if (popped > 0) {
      for (size_t i = 0; i < popped; ++i) {
        Execute(batch[i], node);
      }
      continue;
    }
    if (stopped_.load(std::memory_order_acquire)) {
      return;  // Ring observed empty; Stop()'s final drain handles racing pushes.
    }
    if (config_.steal && TrySteal(node)) {
      continue;
    }
    // Adaptive spin: stay hot through short gaps without holding the CPU forever.
    bool retry = false;
    for (uint32_t i = 0; i < config_.worker_spin; ++i) {
      CpuRelax();
      if (!state.ring.ApproxEmpty() || stopped_.load(std::memory_order_relaxed)) {
        retry = true;
        break;
      }
    }
    if (retry) {
      continue;
    }
    // Park. Register as a sleeper, then re-check the ring behind a seq_cst fence: a
    // submitter either sees sleepers > 0 (and notifies under our mutex) or pushed early
    // enough that this re-check sees the request. No lost wakeups either way.
    {
      std::unique_lock<std::mutex> lock(state.mutex);
      state.sleepers.fetch_add(1, std::memory_order_seq_cst);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (!stopped_.load(std::memory_order_seq_cst) && state.ring.ApproxEmpty()) {
        state.stats.parks.fetch_add(1, std::memory_order_relaxed);
        state.cv.wait(lock);  // Single wait: wakers may want us to steal, so rescan.
        state.stats.wakeups.fetch_add(1, std::memory_order_relaxed);
      }
      state.sleepers.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

bool DelegationPool::TrySteal(int home) {
  for (int i = 1; i < num_nodes_; ++i) {
    const int victim = (home + i) % num_nodes_;
    DelegationRequest request;
    if (nodes_[victim]->ring.TryPop(request)) {
      nodes_[home]->stats.steals.fetch_add(1, std::memory_order_relaxed);
      Execute(request, home);
      return true;
    }
  }
  return false;
}

void DelegationPool::DrainInline(int node) {
  DelegationRequest request;
  while (nodes_[node]->ring.TryPop(request)) {
    Execute(request, node);
  }
}

void DelegationPool::Wait(std::atomic<uint32_t>& pending) {
  for (uint32_t i = 0; i < config_.waiter_spin; ++i) {
    if (pending.load(std::memory_order_acquire) == 0) {
      return;
    }
    CpuRelax();
  }
  std::unique_lock<std::mutex> lock(waiter_mutex_);
  waiters_parked_.fetch_add(1, std::memory_order_seq_cst);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  while (pending.load(std::memory_order_seq_cst) != 0) {
    waiter_cv_.wait(lock);
  }
  waiters_parked_.fetch_sub(1, std::memory_order_relaxed);
}

void DelegationPool::WakeWaiters() {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (waiters_parked_.load(std::memory_order_seq_cst) == 0) {
    return;
  }
  {
    std::lock_guard<std::mutex> guard(waiter_mutex_);
  }
  waiter_cv_.notify_all();
}

uint32_t DelegationPool::parked_workers() const {
  uint32_t parked = 0;
  for (const auto& node : nodes_) {
    parked += node->sleepers.load(std::memory_order_acquire);
  }
  return parked;
}

// ---------------------------------------------------------------------------
// DelegationBatch
// ---------------------------------------------------------------------------

DelegationBatch::DelegationBatch(DelegationPool& pool)
    : pool_(pool),
      per_node_(static_cast<size_t>(pool.num_nodes())),
      groups_(static_cast<size_t>(pool.num_nodes())) {}

DelegationBatch::~DelegationBatch() {
  if (submitted_) {
    Wait();
  }
}

void DelegationBatch::Add(DelegationRequest::Op op, char* nvm, char* dram, size_t len,
                          bool persist) {
  TRIO_DCHECK(!submitted_);
  NvmPool& nvm_pool = pool_.pool_;
  char* nvm_cursor = nvm;
  char* dram_cursor = dram;
  size_t remaining = len;
  while (remaining > 0) {
    const int node = nvm_pool.NodeOfAddress(nvm_cursor);
    // The split happens here, once per operation: cut at the node-stripe boundary so
    // every request is node-contained.
    char* stripe_end =
        nvm_pool.base() + static_cast<size_t>(nvm_pool.NodeLastPage(node)) * kPageSize;
    const size_t chunk = std::min(
        {remaining, static_cast<size_t>(stripe_end - nvm_cursor), kMaxRequestBytes});
    if (groups_[node] == nullptr) {
      groups_[node] = std::make_unique<BatchNodeState>();
    }
    DelegationRequest request;
    request.op = op;
    request.nvm = nvm_cursor;
    request.dram = dram_cursor;
    request.len = static_cast<uint32_t>(chunk);
    request.persist = persist;
    request.group = groups_[node].get();
    request.pending = &pending_;
    if (persist && op == DelegationRequest::Op::kWrite) {
      groups_[node]->fence = true;
    }
    per_node_[node].push_back(request);
    ++total_requests_;
    nvm_cursor += chunk;
    dram_cursor += chunk;
    remaining -= chunk;
  }
}

void DelegationBatch::AddWrite(char* nvm, const char* dram, size_t len, bool persist) {
  Add(DelegationRequest::Op::kWrite, nvm, const_cast<char*>(dram), len, persist);
}

void DelegationBatch::AddRead(char* dram, const char* nvm, size_t len) {
  Add(DelegationRequest::Op::kRead, const_cast<char*>(nvm), dram, len, /*persist=*/false);
}

void DelegationBatch::Submit() {
  TRIO_DCHECK(!submitted_);
  submitted_ = true;
  if (total_requests_ == 0) {
    return;
  }
  if (auto* op = obs::OpContext::Current()) {
    op->counters.delegated_chunks.fetch_add(total_requests_, std::memory_order_relaxed);
  }
  // Completion counters are armed before anything is visible to workers.
  pending_.store(static_cast<uint32_t>(total_requests_), std::memory_order_relaxed);
  for (size_t node = 0; node < per_node_.size(); ++node) {
    const auto& requests = per_node_[node];
    if (requests.empty()) {
      continue;
    }
    groups_[node]->remaining.store(static_cast<uint32_t>(requests.size()),
                                   std::memory_order_relaxed);
    pool_.nodes_[node]->stats.batches.fetch_add(1, std::memory_order_relaxed);
    pool_.SubmitSpan(static_cast<int>(node), requests.data(), requests.size());
  }
}

void DelegationBatch::Reset() {
  TRIO_DCHECK(!submitted_ || pending_.load(std::memory_order_acquire) == 0)
      << "Reset with requests outstanding";
  for (auto& requests : per_node_) {
    requests.clear();
  }
  // Groups stay allocated (workers are done with them once pending_ reached 0); only
  // their per-round state resets.
  for (auto& group : groups_) {
    if (group != nullptr) {
      group->remaining.store(0, std::memory_order_relaxed);
      group->fence = false;
    }
  }
  pending_.store(0, std::memory_order_relaxed);
  total_requests_ = 0;
  submitted_ = false;
}

void DelegationBatch::Wait() {
  if (!submitted_ || total_requests_ == 0) {
    return;
  }
  pool_.Wait(pending_);
  if (auto* op = obs::OpContext::Current()) {
    // The workers issued one fence per fencing node on this op's behalf; the per-layer
    // count lives in the pool's PersistStats, the per-op share is attributed here.
    uint64_t node_fences = 0;
    for (const auto& group : groups_) {
      node_fences += (group != nullptr && group->fence) ? 1 : 0;
    }
    op->counters.fences.fetch_add(node_fences, std::memory_order_relaxed);
  }
}

int DelegationBatch::nodes_touched() const {
  int touched = 0;
  for (const auto& requests : per_node_) {
    touched += requests.empty() ? 0 : 1;
  }
  return touched;
}

}  // namespace trio
