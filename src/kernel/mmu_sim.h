// MMU emulation. On real hardware the kernel controller programs page tables so that each
// application's loads/stores can only reach the NVM pages it was granted (§3.2). In this
// single-process emulation, each LibFS carries an MmuSim map of page -> permission that the
// kernel controller programs on map/unmap/alloc/free, and LibFS code checks before touching
// NVM. A *malicious* LibFS (src/attacks) skips its own checks — but the attack tests only
// let it scribble on pages where MmuSim says it holds write permission, which is exactly
// what the hardware MMU would permit; everything else "faults" (test failure).

#ifndef SRC_KERNEL_MMU_SIM_H_
#define SRC_KERNEL_MMU_SIM_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "src/core/ownership.h"
#include "src/nvm/nvm.h"

namespace trio {

enum class PagePerm : uint8_t { kNone = 0, kRead = 1, kReadWrite = 3 };

class MmuSim {
 public:
  MmuSim() = default;

  void Grant(LibFsId libfs, PageNumber page, PagePerm perm) {
    std::lock_guard<std::mutex> guard(mutex_);
    if (perm == PagePerm::kNone) {
      tables_[libfs].erase(page);
    } else {
      tables_[libfs][page] = perm;
    }
  }

  void Revoke(LibFsId libfs, PageNumber page) { Grant(libfs, page, PagePerm::kNone); }

  void RevokeAll(LibFsId libfs) {
    std::lock_guard<std::mutex> guard(mutex_);
    tables_.erase(libfs);
  }

  // Would a load (write=false) or store (write=true) to this page fault?
  bool Check(LibFsId libfs, PageNumber page, bool write) const {
    std::lock_guard<std::mutex> guard(mutex_);
    auto table = tables_.find(libfs);
    if (table == tables_.end()) {
      return false;
    }
    auto it = table->second.find(page);
    if (it == table->second.end()) {
      return false;
    }
    return !write || it->second == PagePerm::kReadWrite;
  }

  bool CheckRange(LibFsId libfs, const NvmPool& pool, const void* addr, size_t len,
                  bool write) const {
    if (len == 0) {
      return true;
    }
    const PageNumber first = pool.PageOf(addr);
    const PageNumber last = pool.PageOf(static_cast<const char*>(addr) + len - 1);
    for (PageNumber p = first; p <= last; ++p) {
      if (!Check(libfs, p, write)) {
        return false;
      }
    }
    return true;
  }

  size_t MappedPageCount(LibFsId libfs) const {
    std::lock_guard<std::mutex> guard(mutex_);
    auto table = tables_.find(libfs);
    return table == tables_.end() ? 0 : table->second.size();
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<LibFsId, std::unordered_map<PageNumber, PagePerm>> tables_;
};

}  // namespace trio

#endif  // SRC_KERNEL_MMU_SIM_H_
