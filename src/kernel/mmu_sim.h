// MMU emulation. On real hardware the kernel controller programs page tables so that each
// application's loads/stores can only reach the NVM pages it was granted (§3.2). In this
// single-process emulation, each LibFS carries an MmuSim map of page -> permission that the
// kernel controller programs on map/unmap/alloc/free, and LibFS code checks before touching
// NVM. A *malicious* LibFS (src/attacks) skips its own checks — but the attack tests only
// let it scribble on pages where MmuSim says it holds write permission, which is exactly
// what the hardware MMU would permit; everything else "faults" (test failure).
//
// Grants are REFERENCE COUNTED per (libfs, page, strength): a page reachable through both
// a file mapping and the parent directory's data pages (the co-located inode design, §4.1)
// holds one reference per justification, and the effective permission is the strongest
// with a nonzero count. This makes revocation shard-local for the sharded controller — a
// mapping teardown releases exactly its own references instead of rescanning every other
// mapping of the tenant to recompute the strongest surviving permission.

#ifndef SRC_KERNEL_MMU_SIM_H_
#define SRC_KERNEL_MMU_SIM_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "src/core/ownership.h"
#include "src/nvm/nvm.h"

namespace trio {

enum class PagePerm : uint8_t { kNone = 0, kRead = 1, kReadWrite = 3 };

class MmuSim {
 public:
  MmuSim() = default;

  // Add one reference of strength `perm` (kNone is a no-op).
  void Grant(LibFsId libfs, PageNumber page, PagePerm perm) {
    if (perm == PagePerm::kNone) {
      return;
    }
    std::lock_guard<std::mutex> guard(mutex_);
    Ref& ref = tables_[libfs][page];
    if (perm == PagePerm::kReadWrite) {
      ++ref.rw;
    } else {
      ++ref.ro;
    }
  }

  // Release one reference of strength `perm` (floors at zero: a forgiving release of an
  // unheld reference must not strip somebody else's justification).
  void Revoke(LibFsId libfs, PageNumber page, PagePerm perm) {
    if (perm == PagePerm::kNone) {
      return;
    }
    std::lock_guard<std::mutex> guard(mutex_);
    auto table = tables_.find(libfs);
    if (table == tables_.end()) {
      return;
    }
    auto it = table->second.find(page);
    if (it == table->second.end()) {
      return;
    }
    Ref& ref = it->second;
    if (perm == PagePerm::kReadWrite) {
      ref.rw -= ref.rw > 0 ? 1 : 0;
    } else {
      ref.ro -= ref.ro > 0 ? 1 : 0;
    }
    if (ref.rw == 0 && ref.ro == 0) {
      table->second.erase(it);
    }
  }

  void RevokeAll(LibFsId libfs) {
    std::lock_guard<std::mutex> guard(mutex_);
    tables_.erase(libfs);
  }

  // Would a load (write=false) or store (write=true) to this page fault?
  bool Check(LibFsId libfs, PageNumber page, bool write) const {
    std::lock_guard<std::mutex> guard(mutex_);
    auto table = tables_.find(libfs);
    if (table == tables_.end()) {
      return false;
    }
    auto it = table->second.find(page);
    if (it == table->second.end()) {
      return false;
    }
    return !write || it->second.rw > 0;
  }

  bool CheckRange(LibFsId libfs, const NvmPool& pool, const void* addr, size_t len,
                  bool write) const {
    if (len == 0) {
      return true;
    }
    const PageNumber first = pool.PageOf(addr);
    const PageNumber last = pool.PageOf(static_cast<const char*>(addr) + len - 1);
    for (PageNumber p = first; p <= last; ++p) {
      if (!Check(libfs, p, write)) {
        return false;
      }
    }
    return true;
  }

  size_t MappedPageCount(LibFsId libfs) const {
    std::lock_guard<std::mutex> guard(mutex_);
    auto table = tables_.find(libfs);
    return table == tables_.end() ? 0 : table->second.size();
  }

 private:
  struct Ref {
    uint32_t rw = 0;
    uint32_t ro = 0;
  };
  mutable std::mutex mutex_;
  std::unordered_map<LibFsId, std::unordered_map<PageNumber, Ref>> tables_;
};

}  // namespace trio

#endif  // SRC_KERNEL_MMU_SIM_H_
