// Sharding primitives for the kernel controller scale-out (DESIGN.md §4.10):
//
//  * SeqlockCache — a fixed-size, direct-mapped, seqlock-published cache giving the
//    syscall boundary LOCK-FREE reads of read-mostly ownership and grant state. Writers
//    (who hold the authoritative shard/stripe lock for the key they publish) win a slot
//    by CAS-ing its sequence odd, store the payload, and release it even; readers retry
//    on a torn sequence and fall back to the locked slow path on a miss. Collisions
//    simply evict (the cache may forget, it must never lie).
//  * ShardRank — an always-on, thread-local lock-order guard. Shard mutexes are plain
//    (non-recursive) std::mutex; the one legal order is ascending shard index, and any
//    acquisition that would violate it aborts immediately instead of deadlocking later.
//    This is what makes the "*Locked requires the lock" discipline enforceable — the
//    recursive mutex it replaces silently forgave both reentry and order inversions.
//  * OrderedShardSpan — the two-phase cross-shard acquire: collect the shard set, sort
//    ascending, take every lock, then mutate (rename across shards, ownership transfer
//    reconciliation, global scans). Deadlock-free by construction against every other
//    single- or multi-shard acquisition.

#ifndef SRC_KERNEL_SHARD_H_
#define SRC_KERNEL_SHARD_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/logging.h"
#include "src/obs/stats.h"

namespace trio {

// ---------------------------------------------------------------------------
// Lock-order guard
// ---------------------------------------------------------------------------

// Thread-local set of held shard ranks (bit i = shard i held). Acquire order must be
// strictly ascending, so taking rank i with any rank >= i already held is a latent ABBA
// deadlock — crash loudly at the acquisition site instead of hanging in production.
class ShardRank {
 public:
  static constexpr size_t kMaxShards = 64;

  static void Acquire(size_t rank) {
    TRIO_CHECK(rank < kMaxShards);
    const uint64_t held = held_mask_;
    TRIO_CHECK((held >> rank) == 0 &&
               "shard lock order violation: acquiring a shard with an equal or higher "
               "shard already held (take shards in ascending index order)");
    held_mask_ = held | (1ull << rank);
  }

  static void Release(size_t rank) { held_mask_ &= ~(1ull << rank); }

  static bool AnyHeld() { return held_mask_ != 0; }

  // LibFS callbacks and the integrity verifier must run with no shard held: a callback
  // that re-enters the controller would otherwise self-deadlock on a plain mutex.
  static void AssertNoneHeld() {
    TRIO_CHECK(held_mask_ == 0 &&
               "controller invoked untrusted code / blocking wait with a shard held");
  }

 private:
  static thread_local uint64_t held_mask_;
};

// One shard's mutex: a plain std::mutex plus a contention probe (try_lock first so the
// bench gates can observe how often the 1-shard configuration serializes).
class ShardMutex {
 public:
  std::mutex& raw() { return mu_; }
  uint64_t contended() const { return contended_.load(std::memory_order_relaxed); }
  void CountContended() { contended_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::mutex mu_;
  std::atomic<uint64_t> contended_{0};
};

// RAII single-shard acquisition with rank checking. Exposes the underlying
// std::unique_lock so condition variables can wait on it (the rank set is unchanged by a
// cv wait: the same lock is released and reacquired).
class ShardLock {
 public:
  ShardLock(ShardMutex& mu, size_t rank, obs::Counter* contended = nullptr)
      : mu_(&mu), rank_(rank) {
    ShardRank::Acquire(rank_);
    if (!mu.raw().try_lock()) {
      mu.CountContended();
      if (contended != nullptr) {
        contended->fetch_add(1, std::memory_order_relaxed);
      }
      mu.raw().lock();
    }
    lock_ = std::unique_lock<std::mutex>(mu.raw(), std::adopt_lock);
  }

  ~ShardLock() {
    if (lock_.owns_lock()) {
      lock_.unlock();
    }
    ShardRank::Release(rank_);
  }

  std::unique_lock<std::mutex>& lock() { return lock_; }

  ShardLock(const ShardLock&) = delete;
  ShardLock& operator=(const ShardLock&) = delete;

 private:
  ShardMutex* mu_;
  size_t rank_;
  std::unique_lock<std::mutex> lock_;
};

// Phase one of the two-phase cross-shard protocol: dedupe + sort the shard set. Phase
// two (OrderedShardSpan) then acquires strictly ascending.
inline std::vector<size_t> SortedShardSet(std::vector<size_t> shards) {
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

// RAII ordered multi-shard acquisition over externally owned ShardMutexes.
class OrderedShardSpan {
 public:
  OrderedShardSpan(std::vector<ShardMutex*> mutexes, std::vector<size_t> ranks,
                   obs::Counter* contended = nullptr)
      : mutexes_(std::move(mutexes)), ranks_(std::move(ranks)) {
    for (size_t i = 0; i < mutexes_.size(); ++i) {
      ShardRank::Acquire(ranks_[i]);
      if (!mutexes_[i]->raw().try_lock()) {
        mutexes_[i]->CountContended();
        if (contended != nullptr) {
          contended->fetch_add(1, std::memory_order_relaxed);
        }
        mutexes_[i]->raw().lock();
      }
    }
  }

  ~OrderedShardSpan() {
    for (size_t i = mutexes_.size(); i-- > 0;) {
      mutexes_[i]->raw().unlock();
      ShardRank::Release(ranks_[i]);
    }
  }

  OrderedShardSpan(const OrderedShardSpan&) = delete;
  OrderedShardSpan& operator=(const OrderedShardSpan&) = delete;

 private:
  std::vector<ShardMutex*> mutexes_;
  std::vector<size_t> ranks_;
};

// ---------------------------------------------------------------------------
// SeqlockCache
// ---------------------------------------------------------------------------

// Direct-mapped cache of key -> kWords-word payload with lock-free readers.
//
// Memory ordering: a writer CAS-es `seq` from even to odd (acquire), stores key and
// payload with relaxed stores, then publishes with a release store of seq+2 (even). A
// reader loads seq (acquire), the fields (relaxed), issues an acquire fence, and re-reads
// seq: any concurrent writer moves seq, so a stable pair of reads brackets an untorn
// snapshot. Every access is an atomic, so the scheme is exactly representable to TSan.
//
// Eviction: a colliding insert simply takes over the slot; the evicted key misses and
// its readers fall back to the authoritative (locked) tables. The ONE coherence rule is
// that every mutation of authoritative state writes through (Store of the new value, or
// Erase) before the shard/stripe lock protecting that mutation is released.
template <size_t kWords>
class SeqlockCache {
 public:
  // slots is rounded up to a power of two; 0 disables the cache entirely (every Lookup
  // misses), which is the "legacy one-big-mutex read path" configuration benches compare
  // against.
  explicit SeqlockCache(size_t slots = 0) { Reset(slots); }

  void Reset(size_t slots) {
    size_t cap = 1;
    while (cap < slots) {
      cap <<= 1;
    }
    slots_.clear();
    if (slots != 0) {
      slots_ = std::vector<Slot>(cap);
    }
    mask_ = slots == 0 ? 0 : cap - 1;
  }

  bool enabled() const { return !slots_.empty(); }

  // Lock-free. Returns false on miss (absent, torn too many times, or disabled).
  bool Lookup(uint64_t key, uint64_t out[kWords]) const {
    if (slots_.empty()) {
      return false;
    }
    const Slot& slot = slots_[Index(key)];
    for (int attempt = 0; attempt < 4; ++attempt) {
      const uint64_t s0 = slot.seq.load(std::memory_order_acquire);
      if (s0 & 1) {
        continue;  // Mid-write; retry.
      }
      const uint64_t k = slot.key.load(std::memory_order_relaxed);
      uint64_t v[kWords];
      for (size_t w = 0; w < kWords; ++w) {
        v[w] = slot.words[w].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s0) {
        continue;  // Torn by a concurrent writer; retry.
      }
      if (k != key + 1) {  // +1 so an all-zero slot is unambiguously empty.
        return false;
      }
      for (size_t w = 0; w < kWords; ++w) {
        out[w] = v[w];
      }
      return true;
    }
    return false;
  }

  // Publish `key -> words`. Caller holds the authoritative lock for `key`; writers for
  // DIFFERENT keys colliding on the slot are excluded by the seq CAS spin.
  void Store(uint64_t key, const uint64_t words[kWords]) {
    if (slots_.empty()) {
      return;
    }
    Slot& slot = slots_[Index(key)];
    const uint64_t seq = LockSlot(slot);
    slot.key.store(key + 1, std::memory_order_relaxed);
    for (size_t w = 0; w < kWords; ++w) {
      slot.words[w].store(words[w], std::memory_order_relaxed);
    }
    slot.seq.store(seq + 2, std::memory_order_release);
  }

  // Drop `key` if the slot still holds it (a collision may already have evicted it).
  void Erase(uint64_t key) {
    if (slots_.empty()) {
      return;
    }
    Slot& slot = slots_[Index(key)];
    if (slot.key.load(std::memory_order_relaxed) != key + 1) {
      return;
    }
    const uint64_t seq = LockSlot(slot);
    if (slot.key.load(std::memory_order_relaxed) == key + 1) {
      slot.key.store(0, std::memory_order_relaxed);
    }
    slot.seq.store(seq + 2, std::memory_order_release);
  }

  // Invalidate everything (mount/recovery table rebuild). Not lock-free; callers hold
  // every shard.
  void Clear() {
    for (Slot& slot : slots_) {
      const uint64_t seq = LockSlot(slot);
      slot.key.store(0, std::memory_order_relaxed);
      slot.seq.store(seq + 2, std::memory_order_release);
    }
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> key{0};  // 0 = empty; otherwise stored key + 1.
    std::atomic<uint64_t> words[kWords];
  };

  size_t Index(uint64_t key) const {
    // Fibonacci hashing spreads sequential inos/pages across slots.
    return (key * 0x9e3779b97f4a7c15ull >> 32) & mask_;
  }

  // Win the slot: CAS seq even -> odd, spinning out a colliding writer (their critical
  // section is a handful of relaxed stores, so the spin is short and never blocks on a
  // lock — safe at any rank).
  static uint64_t LockSlot(Slot& slot) {
    for (;;) {
      uint64_t seq = slot.seq.load(std::memory_order_relaxed);
      if ((seq & 1) == 0 &&
          slot.seq.compare_exchange_weak(seq, seq + 1, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        return seq;
      }
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
};

}  // namespace trio

#endif  // SRC_KERNEL_SHARD_H_
