// KernelController mapping and sharing: file record lookup, page-permission grants and
// revocation, MapFile/UnmapFile with lease-based revocation of conflicting holders, and
// forced release of unresponsive LibFSes. Part of the KernelController split; see
// controller.cc for the TU map.

#include "src/kernel/controller.h"

#include "src/kernel/controller_internal.h"
#include "src/kernel/syscall_boundary.h"

namespace trio {

using controller_internal::AccessAllowed;

KernelController::FileRecord* KernelController::RecordOf(Ino ino) {
  auto it = records_.find(ino);
  return it == records_.end() ? nullptr : &it->second;
}

const KernelController::FileRecord* KernelController::RecordOf(Ino ino) const {
  auto it = records_.find(ino);
  return it == records_.end() ? nullptr : &it->second;
}

DirentBlock* KernelController::DirentOfLocked(const FileRecord& record) {
  if (record.dirent_page == 0) {
    return &SuperblockOf(pool_)->root;
  }
  auto* page = reinterpret_cast<DirDataPage*>(pool_.PageAddress(record.dirent_page));
  return &page->slots[record.dirent_slot];
}

void KernelController::GrantFilePagesLocked(LibFsId libfs, const FileRecord& record,
                                            bool write) {
  const PagePerm perm = write ? PagePerm::kReadWrite : PagePerm::kRead;
  for (PageNumber page : record.pages) {
    mmu_.Grant(libfs, page, perm);
  }
  if (record.dirent_page != 0) {
    // The co-located inode lives in the parent's data page (§4.1): stat needs read, size /
    // metadata updates need write. Page-granularity is the documented caveat here.
    mmu_.Grant(libfs, record.dirent_page, perm);
  }
}

void KernelController::RevokeFilePagesLocked(LibFsId libfs, const FileRecord& record) {
  for (PageNumber page : record.pages) {
    // Leave leased pages mapped; only revoke the file's own pages.
    auto it = page_states_.find(page);
    if (it != page_states_.end() && it->second.state == ResourceState::kLeased &&
        it->second.lessee == libfs) {
      continue;
    }
    mmu_.Revoke(libfs, page);
  }
  if (record.dirent_page == 0) {
    return;
  }
  // The dirent page is shared with the parent directory and sibling files; recompute the
  // strongest permission still justified by this LibFS's other mappings.
  auto libfs_it = libfses_.find(libfs);
  if (libfs_it == libfses_.end()) {
    mmu_.Revoke(libfs, record.dirent_page);
    return;
  }
  const LibFsRecord& lr = *libfs_it->second;
  PagePerm perm = PagePerm::kNone;
  auto consider = [&](Ino ino, PagePerm candidate) {
    const FileRecord* other = RecordOf(ino);
    if (other == nullptr || other->ino == record.ino) {
      return;
    }
    const bool touches = other->pages.count(record.dirent_page) != 0 ||
                         other->dirent_page == record.dirent_page;
    if (touches && static_cast<int>(candidate) > static_cast<int>(perm)) {
      perm = candidate;
    }
  };
  for (Ino ino : lr.write_mapped) {
    consider(ino, PagePerm::kReadWrite);
  }
  for (Ino ino : lr.read_mapped) {
    consider(ino, PagePerm::kRead);
  }
  mmu_.Grant(libfs, record.dirent_page, perm);  // kNone erases.
}

Result<MapInfo> KernelController::MapRoot(LibFsId libfs, bool write) {
  return MapFile(libfs, kInvalidIno, kRootIno, write);
}

Result<MapInfo> KernelController::MapFile(LibFsId libfs, Ino parent, Ino ino, bool write) {
  SyscallScope syscall(stats_, "MapFile");
  const uint64_t t0 = NowNs();
  std::unique_lock<std::recursive_mutex> lock(mutex_);

  auto libfs_it = libfses_.find(libfs);
  if (libfs_it == libfses_.end()) {
    return InvalidArgument("unknown LibFS");
  }

  while (true) {
    FileRecord* record = RecordOf(ino);
    if (record == nullptr) {
      return NotFound("no such file");
    }
    LibFsRecord* me = libfses_.find(libfs)->second.get();

    // Permission check against the shadow inode (ground truth).
    const ShadowInode* shadow = ShadowInodeOf(pool_, ino);
    if (shadow == nullptr || !shadow->Exists()) {
      return NotFound("file has no shadow inode");
    }
    if (!AccessAllowed(*shadow, me->uid, me->gid, write)) {
      return PermissionDenied("access denied by shadow inode");
    }

    // Already mapped suitably?
    if (record->writer == libfs) {
      record->lease_deadline_ns = NowNs() + config_.lease_ms * 1000000ull;
      MapInfo info{record->dirent_page, record->dirent_slot, true, record->lease_deadline_ns,
                   DirentOfLocked(*record)->first_index_page};
      stats_.map_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
      return info;
    }
    if (!write && record->readers.count(libfs) != 0 && record->writer == kNoLibFs) {
      MapInfo info{record->dirent_page, record->dirent_slot, false, 0,
                   DirentOfLocked(*record)->first_index_page};
      stats_.map_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
      return info;
    }

    // Conflicts: a writer blocks everyone; readers block a writer (§3.2: concurrent read
    // XOR exclusive write). Leases bound how long a holder can stall us; the holder is
    // asked to release via its revoke callback.
    LibFsId conflict = kNoLibFs;
    if (record->writer != kNoLibFs && record->writer != libfs) {
      conflict = record->writer;
    } else if (write) {
      for (LibFsId reader : record->readers) {
        if (reader != libfs) {
          conflict = reader;
          break;
        }
      }
    }

    if (conflict != kNoLibFs) {
      auto holder_it = libfses_.find(conflict);
      if (holder_it == libfses_.end() || !holder_it->second->callbacks.revoke) {
        // Dead or unresponsive holder: force the release ourselves.
        if (record->writer == conflict) {
          (void)VerifyAndReconcileLocked(lock, record);
          record->writer = kNoLibFs;
          record->checkpoint.reset();
          WmapLogRemove(ino);
          if (holder_it != libfses_.end()) {
            holder_it->second->write_mapped.erase(ino);
          }
        } else {
          record->readers.erase(conflict);
          if (holder_it != libfses_.end()) {
            holder_it->second->read_mapped.erase(ino);
          }
        }
        continue;
      }
      stats_.revocations.fetch_add(1, std::memory_order_relaxed);
      auto revoke = holder_it->second->callbacks.revoke;
      // Transfers triggered by this revocation (the holder unmaps; verify-and-reconcile
      // runs) count as contended while we wait — the canary hook keys off this depth.
      ++contended_transfer_depth_;
      if (!config_.guard_callbacks) {
        lock.unlock();
        revoke(ino);  // Synchronous: the holder unmaps (verify runs on this path).
        lock.lock();
        --contended_transfer_depth_;
        continue;  // Re-evaluate from scratch; records may have been reclaimed.
      }
      // Lease enforcement: the holder is trusted to cooperate only until its lease
      // expires. Wait for the revoke callback at most until the lease deadline (plus
      // grace), then reclaim the mapping by force — an unresponsive holder cannot stall
      // a conflicting mapper beyond its lease.
      const uint64_t now = NowNs();
      const uint64_t lease_end = record->lease_deadline_ns;
      const uint64_t remaining_ms =
          lease_end > now ? (lease_end - now + 999999ull) / 1000000ull : 0;
      const uint64_t budget_ms = remaining_ms + config_.revoke_grace_ms;
      lock.unlock();
      const bool completed = callback_guard_.Run(budget_ms, [revoke, ino] { revoke(ino); });
      lock.lock();
      --contended_transfer_depth_;
      if (!completed) {
        stats_.callback_timeouts.fetch_add(1, std::memory_order_relaxed);
        TRIO_LOG(kWarn) << "revoke of ino " << ino << " from LibFS " << conflict
                        << " overran the lease deadline; forcing release";
        ForceReleaseLocked(lock, ino, conflict);
      }
      continue;  // Re-evaluate from scratch; records may have been reclaimed.
    }

    // Grant.
    if (write) {
      // Readers of this same LibFS upgrading: drop the read mapping.
      record->readers.erase(libfs);
      me->read_mapped.erase(ino);
      const uint64_t c0 = NowNs();
      Status checkpoint_status = TakeCheckpointLocked(record);
      stats_.checkpoint_ns.fetch_add(NowNs() - c0, std::memory_order_relaxed);
      if (!checkpoint_status.ok()) {
        return checkpoint_status;
      }
      record->writer = libfs;
      record->lease_deadline_ns = NowNs() + config_.lease_ms * 1000000ull;
      me->write_mapped.insert(ino);
      WmapLogAdd(ino);
    } else {
      record->readers.insert(libfs);
      me->read_mapped.insert(ino);
    }
    GrantFilePagesLocked(libfs, *record, write);
    stats_.maps.fetch_add(1, std::memory_order_relaxed);
    MapInfo info{record->dirent_page, record->dirent_slot, write,
                 write ? record->lease_deadline_ns : 0,
                 DirentOfLocked(*record)->first_index_page};
    stats_.map_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
    return info;
  }
}

void KernelController::ForceReleaseLocked(std::unique_lock<std::recursive_mutex>& lock,
                                          Ino ino, LibFsId holder) {
  FileRecord* record = RecordOf(ino);
  if (record == nullptr) {
    return;
  }
  auto holder_it = libfses_.find(holder);
  if (record->writer == holder) {
    // Same teardown as a cooperative unmap: the holder's work is verified (and rolled
    // back if corrupt) before the lease is handed on. The holder itself gets no say.
    (void)VerifyAndReconcileLocked(lock, record);
    record = RecordOf(ino);
    if (record != nullptr) {
      record->writer = kNoLibFs;
      record->checkpoint.reset();
      if (holder_it != libfses_.end()) {
        RevokeFilePagesLocked(holder, *record);
      }
    }
    WmapLogRemove(ino);
    if (holder_it != libfses_.end()) {
      holder_it->second->write_mapped.erase(ino);
      if (holder_it->second->write_mapped.empty()) {
        ResolveOrphansLocked(holder_it->second.get());
      }
    }
  } else if (record->readers.erase(holder) > 0) {
    if (holder_it != libfses_.end()) {
      holder_it->second->read_mapped.erase(ino);
    }
    RevokeFilePagesLocked(holder, *record);
  }
  stats_.forced_releases.fetch_add(1, std::memory_order_relaxed);
}

Status KernelController::UnmapFile(LibFsId libfs, Ino ino) {
  SyscallScope syscall(stats_, "UnmapFile");
  const uint64_t t0 = NowNs();
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  auto libfs_it = libfses_.find(libfs);
  if (libfs_it == libfses_.end()) {
    return InvalidArgument("unknown LibFS");
  }
  LibFsRecord* me = libfs_it->second.get();
  FileRecord* record = RecordOf(ino);
  if (record == nullptr) {
    me->write_mapped.erase(ino);
    me->read_mapped.erase(ino);
    return NotFound("no such file");
  }

  Status result = OkStatus();
  if (record->writer == libfs) {
    result = VerifyAndReconcileLocked(lock, record);
    record = RecordOf(ino);  // Reconciliation/rollback never erases it, but be safe.
    if (record != nullptr) {
      record->writer = kNoLibFs;
      record->checkpoint.reset();
      RevokeFilePagesLocked(libfs, *record);
    }
    me->write_mapped.erase(ino);
    WmapLogRemove(ino);
    if (me->write_mapped.empty()) {
      ResolveOrphansLocked(me);
    }
  } else if (record->readers.erase(libfs) > 0) {
    me->read_mapped.erase(ino);
    RevokeFilePagesLocked(libfs, *record);
  } else {
    return InvalidArgument("file not mapped by caller");
  }
  stats_.unmaps.fetch_add(1, std::memory_order_relaxed);
  stats_.unmap_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
  return result;
}

}  // namespace trio
