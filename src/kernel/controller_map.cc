// KernelController mapping and sharing: file record lookup, page-permission grants and
// revocation (reference counted in MmuSim), MapFile/UnmapFile with lease-based revocation
// of conflicting holders, the lock-free LookupGrant fast path, and forced release of
// unresponsive LibFSes. Part of the KernelController split; see controller.cc for the TU
// map.
//
// Grant/revoke pairing (the refcount contract with MmuSim):
//   AllocPages          +RW per leased page      FreePages(leased)      -RW
//   MapFile(write)      +RW per owned page       FinishWriteRelease     -RW per owned page
//                       +RW dirent page                                 -RW dirent page
//   MapFile(read)       +RO per owned page       UnmapFile(read)        -RO per owned page
//                       +RO dirent page                                 -RO dirent page
//   reconcile: leased page becomes owned — its lease ref is CONSUMED by the write
//   teardown's per-page release (the page is in record.pages by then); new children's
//   implicit write grants add +RW on their dirent page (their pages carry lease refs).
// A read mapping upgraded to write releases its RO refs before the RW grant.

#include "src/kernel/controller.h"

#include "src/kernel/controller_internal.h"
#include "src/kernel/syscall_boundary.h"

namespace trio {

using controller_internal::AccessAllowed;
using controller_internal::PackGrantWord;
using controller_internal::UnpackGrantWord;

KernelController::FileRecord* KernelController::FindRecordLocked(Shard& shard, Ino ino) {
  auto it = shard.records.find(ino);
  return it == shard.records.end() ? nullptr : &it->second;
}

DirentBlock* KernelController::DirentOfLocked(const FileRecord& record) const {
  if (record.dirent_page == 0) {
    return &SuperblockOf(pool_)->root;
  }
  auto* page = reinterpret_cast<DirDataPage*>(pool_.PageAddress(record.dirent_page));
  return &page->slots[record.dirent_slot];
}

void KernelController::GrantFilePagesLocked(LibFsId libfs, const FileRecord& record,
                                            bool write) {
  const PagePerm perm = write ? PagePerm::kReadWrite : PagePerm::kRead;
  for (PageNumber page : record.pages) {
    mmu_.Grant(libfs, page, perm);
  }
  if (record.dirent_page != 0) {
    // The co-located inode lives in the parent's data page (§4.1): stat needs read, size /
    // metadata updates need write. Page-granularity is the documented caveat here.
    mmu_.Grant(libfs, record.dirent_page, perm);
  }
}

void KernelController::RevokeFilePagesLocked(LibFsId libfs, const FileRecord& record,
                                             bool write) {
  const PagePerm perm = write ? PagePerm::kReadWrite : PagePerm::kRead;
  for (PageNumber page : record.pages) {
    // Leave leased pages mapped; only release the file's own pages.
    const PageState state = page_table_.Get(page);
    if (state.state == ResourceState::kLeased && state.lessee == libfs) {
      continue;
    }
    mmu_.Revoke(libfs, page, perm);
  }
  if (record.dirent_page != 0) {
    // Refcounted: dropping THIS mapping's dirent reference cannot strip a sibling
    // mapping's justification, so the old cross-file "strongest surviving permission"
    // rescan (which read every other record this LibFS had mapped — a cross-shard walk
    // the one-big-mutex silently permitted) is gone.
    mmu_.Revoke(libfs, record.dirent_page, perm);
  }
}

void KernelController::PublishGrantLocked(const FileRecord& record, LibFsId holder,
                                          bool writable) {
  const uint64_t words[3] = {record.dirent_page,
                             PackGrantWord(holder, record.dirent_slot, writable),
                             record.lease_deadline_ns};
  grant_cache_.Store(record.ino, words);
}

std::optional<MapInfo> KernelController::TryFastGrant(LibFsId libfs, Ino ino, bool write) {
  uint64_t w[3];
  if (!grant_cache_.Lookup(ino, w)) {
    return std::nullopt;
  }
  LibFsId holder;
  size_t dirent_slot;
  bool writable;
  UnpackGrantWord(w[1], &holder, &dirent_slot, &writable);
  if (holder != libfs) {
    return std::nullopt;
  }
  if (write && !writable) {
    return std::nullopt;
  }
  // Write grants are leases: past the deadline the holder may have been revoked, so only
  // the locked path (which renews) may answer. Read grants don't expire.
  if (writable && NowNs() >= w[2]) {
    return std::nullopt;
  }
  MapInfo info;
  info.dirent_page = static_cast<PageNumber>(w[0]);
  info.dirent_slot = dirent_slot;
  info.writable = writable;
  info.lease_deadline_ns = writable ? w[2] : 0;
  // first_index_page is read fresh from the NVM dirent (it moves on reconcile; the cache
  // word would go stale). Lock-free NVM reads are the LibFS's normal operating condition.
  const DirentBlock* dirent =
      info.dirent_page == 0
          ? &SuperblockOf(pool_)->root
          : &reinterpret_cast<DirDataPage*>(pool_.PageAddress(info.dirent_page))
                 ->slots[dirent_slot];
  info.first_index_page = dirent->first_index_page;
  return info;
}

Result<MapInfo> KernelController::LookupGrant(LibFsId libfs, Ino ino) {
  SyscallScope syscall(stats_, "LookupGrant");
  const uint64_t t0 = NowNs();
  // Fast path: lock-free revalidation against the seqlock grant cache. Asking for the
  // strength we already hold: try write first (a write grant also satisfies reads).
  if (std::optional<MapInfo> fast = TryFastGrant(libfs, ino, /*write=*/false)) {
    stats_.grant_fast_hits.fetch_add(1, std::memory_order_relaxed);
    stats_.map_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
    return *fast;
  }
  stats_.grant_fast_misses.fetch_add(1, std::memory_order_relaxed);

  std::shared_ptr<LibFsRecord> me = FindLibFs(libfs);
  if (me == nullptr) {
    return InvalidArgument("unknown LibFS");
  }
  const size_t si = ShardIndexOf(ino);
  ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
  FileRecord* record = FindRecordLocked(*shards_[si], ino);
  if (record == nullptr) {
    return NotFound("no such file");
  }
  // Shadow-inode re-check: permissions may have changed since the grant (Chmod/Chown
  // invalidate the cache precisely so stale grants funnel through this check).
  const ShadowInode* shadow = ShadowInodeOf(pool_, ino);
  if (shadow == nullptr || !shadow->Exists()) {
    return NotFound("file has no shadow inode");
  }
  if (record->writer == libfs) {
    if (!AccessAllowed(*shadow, me->uid, me->gid, /*write=*/true)) {
      return PermissionDenied("access denied by shadow inode");
    }
    record->lease_deadline_ns = NowNs() + config_.lease_ms * 1000000ull;
    record->last_use_ns = NowNs();  // Digestion cold-scan signal.
    PublishGrantLocked(*record, libfs, /*writable=*/true);
    MapInfo info{record->dirent_page, record->dirent_slot, true,
                 record->lease_deadline_ns, DirentOfLocked(*record)->first_index_page};
    stats_.map_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
    return info;
  }
  if (record->readers.count(libfs) != 0 && record->writer == kNoLibFs) {
    if (!AccessAllowed(*shadow, me->uid, me->gid, /*write=*/false)) {
      return PermissionDenied("access denied by shadow inode");
    }
    record->last_use_ns = NowNs();
    PublishGrantLocked(*record, libfs, /*writable=*/false);
    MapInfo info{record->dirent_page, record->dirent_slot, false, 0,
                 DirentOfLocked(*record)->first_index_page};
    stats_.map_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
    return info;
  }
  return NotFound("no grant held");
}

Result<MapInfo> KernelController::MapRoot(LibFsId libfs, bool write) {
  return MapFile(libfs, kInvalidIno, kRootIno, write);
}

Result<MapInfo> KernelController::MapFile(LibFsId libfs, Ino parent, Ino ino, bool write) {
  SyscallScope syscall(stats_, "MapFile");
  (void)parent;
  const uint64_t t0 = NowNs();
  std::shared_ptr<LibFsRecord> me = FindLibFs(libfs);
  if (me == nullptr) {
    return InvalidArgument("unknown LibFS");
  }

  const size_t si = ShardIndexOf(ino);
  // Holder of the last COMPLETED revoke callback, plus the lease deadline its grant
  // carried when we revoked. If the next round finds the very same conflict with the
  // SAME deadline, the grant survived a revoke its holder answered: the holder no
  // longer believes it holds the file (e.g. its node state is long torn down while we
  // carry an implicit grant from a parent commit) — another callback cannot help, so
  // reclaim by force. A CHANGED deadline means the holder cooperatively unmapped and
  // re-mapped (or renewed) after its callback: it is live and mid-operation, and
  // forcing now would verify-and-roll-back a half-committed op that the holder then
  // finishes against the rolled-back image (observed as lost renames under the fleet
  // shuttle). Revoke again instead, bounded by kMaxRevokeRounds so a holder that
  // re-maps forever still cannot stall a mapper indefinitely.
  constexpr int kMaxRevokeRounds = 8;
  LibFsId already_revoked = kNoLibFs;
  uint64_t revoked_lease_end = 0;
  int revoke_rounds = 0;
  while (true) {
    // Conflict handling that must run unlocked (revoke callbacks, dead-writer
    // verification) is staged out of the locked section and re-evaluated from scratch.
    enum class Pending { kNone, kDeadWriter, kRevoke, kForce };
    Pending pending = Pending::kNone;
    LibFsId conflict = kNoLibFs;
    std::shared_ptr<LibFsRecord> holder;
    std::function<void(Ino)> revoke;
    uint64_t lease_end = 0;

    {
      ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
      FileRecord* record = WaitNotBusyLocked(*shards_[si], sl.lock(), ino);
      if (record == nullptr) {
        return NotFound("no such file");
      }

      // Permission check against the shadow inode (ground truth).
      const ShadowInode* shadow = ShadowInodeOf(pool_, ino);
      if (shadow == nullptr || !shadow->Exists()) {
        return NotFound("file has no shadow inode");
      }
      if (!AccessAllowed(*shadow, me->uid, me->gid, write)) {
        return PermissionDenied("access denied by shadow inode");
      }

      // Already mapped suitably?
      if (record->writer == libfs) {
        record->lease_deadline_ns = NowNs() + config_.lease_ms * 1000000ull;
        record->last_use_ns = NowNs();
        PublishGrantLocked(*record, libfs, /*writable=*/true);
        MapInfo info{record->dirent_page, record->dirent_slot, true,
                     record->lease_deadline_ns, DirentOfLocked(*record)->first_index_page};
        stats_.map_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
        return info;
      }
      if (!write && record->readers.count(libfs) != 0 && record->writer == kNoLibFs) {
        MapInfo info{record->dirent_page, record->dirent_slot, false, 0,
                     DirentOfLocked(*record)->first_index_page};
        stats_.map_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
        return info;
      }

      // Conflicts: a writer blocks everyone; readers block a writer (§3.2: concurrent
      // read XOR exclusive write). Leases bound how long a holder can stall us; the
      // holder is asked to release via its revoke callback.
      if (record->writer != kNoLibFs && record->writer != libfs) {
        conflict = record->writer;
      } else if (write) {
        for (LibFsId reader : record->readers) {
          if (reader != libfs) {
            conflict = reader;
            break;
          }
        }
      }

      if (conflict == kNoLibFs) {
        // Grant, entirely under this one shard lock.
        if (write) {
          if (record->readers.erase(libfs) > 0) {
            // Upgrading our own read mapping: release the RO references before granting
            // RW ones (refcounted MMU — the old absolute-overwrite Grant hid this).
            {
              std::lock_guard<std::mutex> guard(me->mu);
              me->read_mapped.erase(ino);
            }
            RevokeFilePagesLocked(libfs, *record, /*write=*/false);
          }
          const uint64_t c0 = NowNs();
          Status checkpoint_status = TakeCheckpointLocked(record);
          stats_.checkpoint_ns.fetch_add(NowNs() - c0, std::memory_order_relaxed);
          if (!checkpoint_status.ok()) {
            return checkpoint_status;
          }
          record->writer = libfs;
          record->lease_deadline_ns = NowNs() + config_.lease_ms * 1000000ull;
          {
            std::lock_guard<std::mutex> guard(me->mu);
            me->write_mapped.insert(ino);
          }
          WmapLogAdd(ino);
        } else {
          record->readers.insert(libfs);
          std::lock_guard<std::mutex> guard(me->mu);
          me->read_mapped.insert(ino);
        }
        GrantFilePagesLocked(libfs, *record, write);
        record->last_use_ns = NowNs();  // Digestion's cold scan orders by last grant.
        PublishGrantLocked(*record, libfs, write);
        stats_.maps.fetch_add(1, std::memory_order_relaxed);
        MapInfo info{record->dirent_page, record->dirent_slot, write,
                     write ? record->lease_deadline_ns : 0,
                     DirentOfLocked(*record)->first_index_page};
        stats_.map_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
        return info;
      }

      holder = FindLibFs(conflict);
      if (holder == nullptr || !holder->callbacks.revoke) {
        // Dead or unresponsive holder: force the release ourselves.
        if (record->writer == conflict) {
          record->busy = true;  // Pin for the verification staged below.
          pending = Pending::kDeadWriter;
        } else {
          record->readers.erase(conflict);
          if (holder != nullptr) {
            std::lock_guard<std::mutex> guard(holder->mu);
            holder->read_mapped.erase(ino);
          }
          grant_cache_.Erase(ino);
          continue;  // Re-evaluate (more readers may remain).
        }
      } else if (conflict == already_revoked &&
                 (record->lease_deadline_ns == revoked_lease_end ||
                  ++revoke_rounds > kMaxRevokeRounds)) {
        pending = Pending::kForce;
      } else {
        revoke = holder->callbacks.revoke;
        lease_end = record->lease_deadline_ns;
        pending = Pending::kRevoke;
        // NOTE: busy is NOT set here. The holder's revoke callback calls UnmapFile,
        // which must be able to claim the record itself.
      }
    }  // shard lock released

    if (pending == Pending::kDeadWriter) {
      (void)VerifyAndReconcile(ino);
      FinishWriteRelease(conflict, ino, holder);
      continue;
    }
    if (pending == Pending::kForce) {
      ShardRank::AssertNoneHeld();
      ForceRelease(ino, conflict);
      continue;
    }

    // Pending::kRevoke — ask the holder to release; transfers triggered by this
    // revocation count as contended while we wait (the canary hook keys off this depth).
    ShardRank::AssertNoneHeld();
    stats_.revocations.fetch_add(1, std::memory_order_relaxed);
    contended_transfer_depth_.fetch_add(1, std::memory_order_relaxed);
    if (!config_.guard_callbacks) {
      revoke(ino);  // Synchronous: the holder unmaps (verify runs on this path).
      contended_transfer_depth_.fetch_sub(1, std::memory_order_relaxed);
      already_revoked = conflict;
      revoked_lease_end = lease_end;
      continue;  // Re-evaluate from scratch; records may have been reclaimed.
    }
    // Lease enforcement: the holder is trusted to cooperate only until its lease
    // expires. Wait for the revoke callback at most until the lease deadline (plus
    // grace), then reclaim the mapping by force — an unresponsive holder cannot stall
    // a conflicting mapper beyond its lease.
    const uint64_t now = NowNs();
    const uint64_t remaining_ms =
        lease_end > now ? (lease_end - now + 999999ull) / 1000000ull : 0;
    const uint64_t budget_ms = remaining_ms + config_.revoke_grace_ms;
    const Ino revoke_ino = ino;
    auto revoke_fn = revoke;
    const bool completed =
        callback_guard_.Run(budget_ms, [revoke_fn, revoke_ino] { revoke_fn(revoke_ino); });
    contended_transfer_depth_.fetch_sub(1, std::memory_order_relaxed);
    if (!completed) {
      stats_.callback_timeouts.fetch_add(1, std::memory_order_relaxed);
      TRIO_LOG(kWarn) << "revoke of ino " << ino << " from LibFS " << conflict
                      << " overran the lease deadline; forcing release";
      ForceRelease(ino, conflict);
    } else {
      already_revoked = conflict;
      revoked_lease_end = lease_end;
    }
    // Re-evaluate from scratch; records may have been reclaimed.
  }
}

void KernelController::FinishWriteRelease(LibFsId libfs, Ino ino,
                                          const std::shared_ptr<LibFsRecord>& me) {
  const size_t si = ShardIndexOf(ino);
  {
    ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
    FileRecord* record = FindRecordLocked(*shards_[si], ino);
    if (record != nullptr) {
      record->writer = kNoLibFs;
      record->checkpoint.reset();
      if (me != nullptr) {
        // An unregistered holder's references already fell with RevokeAll.
        RevokeFilePagesLocked(libfs, *record, /*write=*/true);
      }
      grant_cache_.Erase(ino);
      record->busy = false;
    }
    shards_[si]->cv.notify_all();
  }
  WmapLogRemove(ino);
  if (me != nullptr) {
    bool quiesced;
    {
      std::lock_guard<std::mutex> guard(me->mu);
      me->write_mapped.erase(ino);
      quiesced = me->write_mapped.empty();
    }
    if (quiesced) {
      ResolveOrphans(me);
    }
  }
}

void KernelController::ForceRelease(Ino ino, LibFsId holder) {
  std::shared_ptr<LibFsRecord> holder_record = FindLibFs(holder);
  const size_t si = ShardIndexOf(ino);
  bool writer_path = false;
  {
    ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
    FileRecord* record = WaitNotBusyLocked(*shards_[si], sl.lock(), ino);
    if (record == nullptr) {
      return;
    }
    if (record->writer == holder) {
      // Same teardown as a cooperative unmap: the holder's work is verified (and rolled
      // back if corrupt) before the lease is handed on. The holder itself gets no say.
      record->busy = true;
      writer_path = true;
    } else if (record->readers.erase(holder) > 0) {
      if (holder_record != nullptr) {
        {
          std::lock_guard<std::mutex> guard(holder_record->mu);
          holder_record->read_mapped.erase(ino);
        }
        RevokeFilePagesLocked(holder, *record, /*write=*/false);
      }
      grant_cache_.Erase(ino);
    } else {
      return;
    }
  }
  if (writer_path) {
    (void)VerifyAndReconcile(ino);
    FinishWriteRelease(holder, ino, holder_record);
  }
  stats_.forced_releases.fetch_add(1, std::memory_order_relaxed);
}

Status KernelController::UnmapFile(LibFsId libfs, Ino ino) {
  SyscallScope syscall(stats_, "UnmapFile");
  const uint64_t t0 = NowNs();
  std::shared_ptr<LibFsRecord> me = FindLibFs(libfs);
  if (me == nullptr) {
    return InvalidArgument("unknown LibFS");
  }
  const size_t si = ShardIndexOf(ino);
  bool writer_path = false;
  {
    ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
    FileRecord* record = WaitNotBusyLocked(*shards_[si], sl.lock(), ino);
    if (record == nullptr) {
      std::lock_guard<std::mutex> guard(me->mu);
      me->write_mapped.erase(ino);
      me->read_mapped.erase(ino);
      return NotFound("no such file");
    }
    if (record->writer == libfs) {
      record->busy = true;  // Verification runs below, outside the lock.
      writer_path = true;
    } else if (record->readers.erase(libfs) > 0) {
      {
        std::lock_guard<std::mutex> guard(me->mu);
        me->read_mapped.erase(ino);
      }
      RevokeFilePagesLocked(libfs, *record, /*write=*/false);
      grant_cache_.Erase(ino);
    } else {
      return InvalidArgument("file not mapped by caller");
    }
  }
  Status result = OkStatus();
  if (writer_path) {
    result = VerifyAndReconcile(ino);
    FinishWriteRelease(libfs, ino, me);
  }
  stats_.unmaps.fetch_add(1, std::memory_order_relaxed);
  stats_.unmap_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
  return result;
}

}  // namespace trio
