#include "src/kernel/controller.h"

#include <algorithm>

namespace trio {

namespace {

// Classic owner/group/other permission check against the shadow inode (ground truth, I4).
bool AccessAllowed(const ShadowInode& shadow, uint32_t uid, uint32_t gid, bool write) {
  if (uid == 0) {
    return true;
  }
  const uint32_t perm = shadow.mode & 0777;
  uint32_t bits;
  if (uid == shadow.uid) {
    bits = perm >> 6;
  } else if (gid == shadow.gid) {
    bits = perm >> 3;
  } else {
    bits = perm;
  }
  return write ? (bits & 2) != 0 : (bits & 4) != 0;
}

inline size_t WmapSlots(const NvmPool& pool) {
  return SuperblockOf(pool)->wmap_log_pages * kPageSize / sizeof(uint64_t);
}

}  // namespace

KernelController::KernelController(NvmPool& pool, KernelConfig config, Clock* clock)
    : pool_(pool), config_(config), clock_(clock) {
  verifier_ = std::make_unique<IntegrityVerifier>(pool_, *this, *this);
  if (config_.start_delegation) {
    StartDelegation();
  }
}

KernelController::~KernelController() { delegation_.reset(); }

void KernelController::StartDelegation() {
  if (delegation_ == nullptr) {
    delegation_ = std::make_unique<DelegationPool>(pool_, config_.delegation);
  }
}

// ---------------------------------------------------------------------------
// Mount / unmount / recovery
// ---------------------------------------------------------------------------

Status KernelController::Mount() {
  TRIO_RETURN_IF_ERROR(CheckSuperblock(pool_));
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  Superblock* sb = SuperblockOf(pool_);
  needs_recovery_ = sb->clean_shutdown == 0;

  page_states_.clear();
  ino_states_.clear();
  records_.clear();
  free_pages_by_node_.assign(pool_.topology().num_nodes, {});
  free_inos_.clear();
  next_ino_ = kRootIno + 1;

  // The ownership tables are auxiliary state (§3.2): rebuild them by walking the core
  // state from the root.
  std::unordered_set<PageNumber> seen_pages;
  std::unordered_set<Ino> seen_inos;
  Status scan = ScanTreeLocked(kRootIno, kInvalidIno, /*dirent_page=*/0, /*dirent_slot=*/0,
                               sb->root, &seen_pages, &seen_inos);
  if (!scan.ok()) {
    TRIO_LOG(kWarn) << "mount scan found damage: " << scan.ToString();
  }

  // Everything in the file region not owned by a file is free.
  for (PageNumber p = sb->file_region_page; p < sb->total_pages; ++p) {
    if (page_states_.find(p) == page_states_.end()) {
      free_pages_by_node_[pool_.NodeOfPage(p)].push_back(p);
    }
  }

  // We are live: a crash from here on is unclean until Unmount().
  const uint64_t live = 0;
  pool_.Write(&sb->clean_shutdown, &live, sizeof(live));
  pool_.PersistNow(&sb->clean_shutdown, sizeof(live));
  mounted_ = true;
  return OkStatus();
}

Status KernelController::ScanTreeLocked(Ino ino, Ino parent, PageNumber dirent_page,
                                        size_t dirent_slot, const DirentBlock& dirent,
                                        std::unordered_set<PageNumber>* seen_pages,
                                        std::unordered_set<Ino>* seen_inos) {
  if (!seen_inos->insert(ino).second) {
    return Corrupted("inode appears twice in tree");
  }
  FileRecord record;
  record.ino = ino;
  record.parent = parent;
  record.is_dir = dirent.IsDirectory();
  record.dirent_page = dirent_page;
  record.dirent_slot = dirent_slot;
  record.first_index_page = dirent.first_index_page;

  // Claim this file's pages; tolerate damage by stopping at the first bad page.
  Status walk = ForEachIndexPage(pool_, dirent.first_index_page, [&](PageNumber p) -> Status {
    if (!seen_pages->insert(p).second) {
      return Corrupted("index page claimed twice");
    }
    record.pages.insert(p);
    return OkStatus();
  });
  if (walk.ok()) {
    walk = ForEachDataPage(pool_, dirent.first_index_page,
                           [&](uint64_t, PageNumber p) -> Status {
                             if (!seen_pages->insert(p).second) {
                               return Corrupted("data page claimed twice");
                             }
                             record.pages.insert(p);
                             return OkStatus();
                           });
  }

  for (PageNumber p : record.pages) {
    page_states_[p] = PageState{ResourceState::kOwned, kNoLibFs, ino};
  }
  ino_states_[ino] = InoState{ResourceState::kOwned, kNoLibFs, parent};
  if (ino >= next_ino_) {
    next_ino_ = ino + 1;
  }

  // Adopt files that were created but never reconciled before a crash: give them a shadow
  // inode matching their dirent (the recovery verify pass re-checks structure).
  ShadowInode* shadow = ShadowInodeOf(pool_, ino);
  if (shadow != nullptr && !shadow->Exists()) {
    ShadowInode fresh{dirent.mode, dirent.uid, dirent.gid, 1};
    pool_.Write(shadow, &fresh, sizeof(fresh));
    pool_.PersistNow(shadow, sizeof(fresh));
  }

  Status children_status = OkStatus();
  if (record.is_dir && walk.ok()) {
    children_status = ForEachDirent(
        pool_, dirent.first_index_page,
        [&](DirentBlock* child, PageNumber page, size_t slot) -> Status {
          if (seen_inos->count(child->ino) != 0) {
            // Torn rename can leave the same ino under two names; keep the first, let the
            // LibFS recovery program resolve the journal.
            TRIO_LOG(kWarn) << "mount: duplicate ino " << child->ino << " skipped";
            return OkStatus();
          }
          Status s = ScanTreeLocked(child->ino, ino, page, slot, *child, seen_pages,
                                    seen_inos);
          if (!s.ok()) {
            TRIO_LOG(kWarn) << "mount: subtree of ino " << child->ino
                            << " damaged: " << s.ToString();
          }
          return OkStatus();
        });
  }

  records_[ino] = std::move(record);
  if (!walk.ok()) {
    return walk;
  }
  return children_status;
}

Status KernelController::Unmount() {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  if (!libfses_.empty()) {
    return Busy("LibFSes still registered");
  }
  Superblock* sb = SuperblockOf(pool_);
  const uint64_t clean = 1;
  pool_.Write(&sb->clean_shutdown, &clean, sizeof(clean));
  pool_.PersistNow(&sb->clean_shutdown, sizeof(clean));
  mounted_ = false;
  return OkStatus();
}

Status KernelController::RunRecovery() {
  // Phase 1: untrusted LibFS recovery programs (journal undo), outside the kernel lock.
  std::vector<std::function<void()>> programs;
  {
    std::unique_lock<std::recursive_mutex> lock(mutex_);
    for (auto& [id, libfs] : libfses_) {
      if (libfs->callbacks.recovery) {
        programs.push_back(libfs->callbacks.recovery);
      }
    }
  }
  bool program_timed_out = false;
  for (auto& program : programs) {
    if (config_.guard_callbacks) {
      // Recovery programs are arbitrary user code; one that never returns must not wedge
      // recovery for everyone. On timeout the program's journal state is unknown, so
      // coverage escalates below to verifying every file, not just the logged ones.
      if (!callback_guard_.Run(config_.recovery_timeout_ms, program)) {
        stats_.callback_timeouts.fetch_add(1, std::memory_order_relaxed);
        program_timed_out = true;
        TRIO_LOG(kWarn) << "recovery: a LibFS recovery program overran "
                        << config_.recovery_timeout_ms
                        << "ms and was abandoned; escalating to full-tree verification";
      }
    } else {
      program();
    }
  }

  // Phase 2: the recovery programs may have moved dirents around; rebuild the tables.
  TRIO_RETURN_IF_ERROR(Mount());

  // Phase 3: verify every file that was write-mapped when the crash happened (§4.4).
  // If the write-map log overflowed before the crash (or a recovery program hung),
  // coverage is unknown: verify the whole tree instead (an online fsck over every record).
  //
  // Idempotence: the log slots and the overflow flag are cleared only AFTER every
  // verification (and any resulting removal) has been persisted. A crash anywhere during
  // recovery leaves the obligations on media, so a second RunRecovery redoes them and
  // converges — verification is read-only and removal of an already-removed file is a
  // no-op.
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  Superblock* sb = SuperblockOf(pool_);
  std::vector<Ino> to_verify;
  auto* log = reinterpret_cast<uint64_t*>(pool_.PageAddress(sb->wmap_log_page));
  const bool overflow = pool_.Load64(&sb->wmap_log_overflow) != 0;
  if (overflow || program_timed_out) {
    for (const auto& [ino, record] : records_) {
      to_verify.push_back(ino);
    }
  }
  for (size_t i = 0; i < WmapSlots(pool_); ++i) {
    if (log[i] != kInvalidIno) {
      to_verify.push_back(log[i]);
    }
  }
  std::sort(to_verify.begin(), to_verify.end());
  to_verify.erase(std::unique(to_verify.begin(), to_verify.end()), to_verify.end());
  for (Ino ino : to_verify) {
    FileRecord* record = RecordOf(ino);
    if (record == nullptr) {
      continue;
    }
    VerifyRequest request;
    request.ino = ino;
    request.dirent = DirentOfLocked(*record);
    request.writer = kNoLibFs;
    const ShadowInode* shadow = ShadowInodeOf(pool_, ino);
    request.writer_uid = shadow != nullptr ? shadow->uid : 0;
    request.writer_gid = shadow != nullptr ? shadow->gid : 0;
    Result<VerifyReport> report = verifier_->Verify(request);
    stats_.verifications.fetch_add(1, std::memory_order_relaxed);
    if (!report.ok()) {
      TRIO_LOG(kWarn) << "recovery: ino " << ino
                      << " failed verification: " << report.status().ToString()
                      << (ino != kRootIno ? "; removing"
                                          : "; root cannot be removed — left for fsck");
      if (ino != kRootIno) {
        DirentBlock* dirent = DirentOfLocked(*record);
        pool_.CommitStore64(&dirent->ino, kInvalidIno);
        ReclaimFileLocked(record);
      }
    }
  }

  // Phase 4: scrub orphaned shadow inodes. A crash between invalidating a dirent and
  // clearing its shadow inode (removal is two persists) leaves a live shadow no tree
  // entry references — exactly fsck's G6 orphan. Any live shadow without a record is one.
  for (Ino ino = kRootIno + 1; ino < sb->max_inodes; ++ino) {
    if (records_.count(ino) != 0) {
      continue;
    }
    ShadowInode* shadow = ShadowInodeOf(pool_, ino);
    if (shadow != nullptr && shadow->Exists()) {
      ShadowInode cleared{};
      pool_.Write(shadow, &cleared, sizeof(cleared));
      pool_.PersistNow(shadow, sizeof(cleared));
      TRIO_LOG(kInfo) << "recovery: cleared orphaned shadow inode " << ino;
    }
  }

  // All obligations discharged: retire the log.
  for (size_t i = 0; i < WmapSlots(pool_); ++i) {
    if (log[i] != kInvalidIno) {
      pool_.CommitStore64(&log[i], kInvalidIno);
    }
  }
  if (overflow) {
    pool_.CommitStore64(&sb->wmap_log_overflow, 0);
  }
  needs_recovery_ = false;
  return OkStatus();
}

// ---------------------------------------------------------------------------
// LibFS lifecycle
// ---------------------------------------------------------------------------

LibFsId KernelController::RegisterLibFs(const LibFsOptions& options) {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  stats_.syscalls.fetch_add(1, std::memory_order_relaxed);
  const LibFsId id = next_libfs_id_++;
  auto record = std::make_unique<LibFsRecord>();
  record->id = id;
  record->uid = options.uid;
  record->gid = options.gid;
  record->callbacks = options.callbacks;
  libfses_[id] = std::move(record);
  // Every LibFS can read the superblock.
  mmu_.Grant(id, 0, PagePerm::kRead);
  return id;
}

void KernelController::UnregisterLibFs(LibFsId libfs) {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  stats_.syscalls.fetch_add(1, std::memory_order_relaxed);
  auto it = libfses_.find(libfs);
  if (it == libfses_.end()) {
    return;
  }
  LibFsRecord* record = it->second.get();

  // Release read mappings.
  for (Ino ino : std::vector<Ino>(record->read_mapped.begin(), record->read_mapped.end())) {
    FileRecord* file = RecordOf(ino);
    if (file != nullptr) {
      file->readers.erase(libfs);
    }
  }
  record->read_mapped.clear();

  // Release write mappings: verify and reconcile each. Directories first: their
  // verification resolves renamed-in children (so a renamed file's record points at its
  // current dirent before the file is verified) and registers freshly created children as
  // implicit write grants — which is why this drains in rounds until nothing is left.
  while (!record->write_mapped.empty()) {
    std::vector<Ino> ordered;
    ordered.reserve(record->write_mapped.size());
    for (Ino ino : record->write_mapped) {
      const FileRecord* file = RecordOf(ino);
      if (file != nullptr && file->is_dir) {
        ordered.push_back(ino);
      }
    }
    for (Ino ino : record->write_mapped) {
      const FileRecord* file = RecordOf(ino);
      if (file == nullptr || !file->is_dir) {
        ordered.push_back(ino);
      }
    }
    for (Ino ino : ordered) {
      FileRecord* file = RecordOf(ino);
      if (file != nullptr && file->writer == libfs) {
        (void)VerifyAndReconcileLocked(lock, file);
        file = RecordOf(ino);
        if (file != nullptr) {
          file->writer = kNoLibFs;
          file->checkpoint.reset();
        }
        WmapLogRemove(ino);
      }
      record->write_mapped.erase(ino);
    }
  }
  ResolveOrphansLocked(record);

  // Return leases.
  for (PageNumber page : record->leased_pages) {
    page_states_.erase(page);
    free_pages_by_node_[pool_.NodeOfPage(page)].push_back(page);
  }
  for (Ino ino : record->leased_inos) {
    ino_states_.erase(ino);
    free_inos_.push_back(ino);
  }
  mmu_.RevokeAll(libfs);
  libfses_.erase(it);
}

// ---------------------------------------------------------------------------
// Resource leasing
// ---------------------------------------------------------------------------

Status KernelController::AllocPages(LibFsId libfs, size_t count, int node_hint,
                                    std::vector<PageNumber>* out) {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  stats_.syscalls.fetch_add(1, std::memory_order_relaxed);
  auto it = libfses_.find(libfs);
  if (it == libfses_.end()) {
    return InvalidArgument("unknown LibFS");
  }
  LibFsRecord* record = it->second.get();
  const int nodes = static_cast<int>(free_pages_by_node_.size());
  const int node = node_hint >= 0 && node_hint < nodes ? node_hint : 0;
  std::vector<PageNumber> granted;
  granted.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    PageNumber page = kInvalidPage;
    for (int attempt = 0; attempt < nodes; ++attempt) {
      auto& free_list = free_pages_by_node_[(node + attempt) % nodes];
      if (!free_list.empty()) {
        page = free_list.back();
        free_list.pop_back();
        break;
      }
    }
    if (page == kInvalidPage) {
      // All-or-nothing: roll back what this call handed out.
      for (PageNumber p : granted) {
        record->leased_pages.erase(p);
        page_states_.erase(p);
        mmu_.Revoke(libfs, p);
        free_pages_by_node_[pool_.NodeOfPage(p)].push_back(p);
        stats_.pages_allocated.fetch_sub(1, std::memory_order_relaxed);
      }
      return NoSpace("out of NVM pages");
    }
    // Zero before leasing: a freed page must not leak another user's data.
    pool_.Set(pool_.PageAddress(page), 0, kPageSize);
    page_states_[page] = PageState{ResourceState::kLeased, libfs, kInvalidIno};
    record->leased_pages.insert(page);
    mmu_.Grant(libfs, page, PagePerm::kReadWrite);
    granted.push_back(page);
    stats_.pages_allocated.fetch_add(1, std::memory_order_relaxed);
  }
  out->insert(out->end(), granted.begin(), granted.end());
  return OkStatus();
}

Status KernelController::FreePages(LibFsId libfs, const std::vector<PageNumber>& pages) {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  stats_.syscalls.fetch_add(1, std::memory_order_relaxed);
  auto it = libfses_.find(libfs);
  if (it == libfses_.end()) {
    return InvalidArgument("unknown LibFS");
  }
  LibFsRecord* record = it->second.get();
  for (PageNumber page : pages) {
    auto state_it = page_states_.find(page);
    if (state_it == page_states_.end()) {
      return InvalidArgument("freeing a page that is not allocated");
    }
    PageState& state = state_it->second;
    if (state.state == ResourceState::kLeased && state.lessee == libfs) {
      record->leased_pages.erase(page);
    } else if (state.state == ResourceState::kOwned) {
      FileRecord* file = RecordOf(state.owner);
      if (file == nullptr || file->writer != libfs) {
        return PermissionDenied("freeing a page of a file not write-mapped by caller");
      }
      file->pages.erase(page);
    } else {
      return PermissionDenied("page not freeable by caller");
    }
    mmu_.Revoke(libfs, page);
    page_states_.erase(state_it);
    free_pages_by_node_[pool_.NodeOfPage(page)].push_back(page);
    stats_.pages_freed.fetch_add(1, std::memory_order_relaxed);
  }
  return OkStatus();
}

Result<Ino> KernelController::AllocIno(LibFsId libfs) {
  std::vector<Ino> out;
  TRIO_RETURN_IF_ERROR(AllocInos(libfs, 1, &out));
  return out[0];
}

Status KernelController::AllocInos(LibFsId libfs, size_t count, std::vector<Ino>* out) {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  stats_.syscalls.fetch_add(1, std::memory_order_relaxed);
  auto it = libfses_.find(libfs);
  if (it == libfses_.end()) {
    return InvalidArgument("unknown LibFS");
  }
  std::vector<Ino> granted;
  granted.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Ino ino = kInvalidIno;
    if (!free_inos_.empty()) {
      ino = free_inos_.back();
      free_inos_.pop_back();
    } else if (next_ino_ < SuperblockOf(pool_)->max_inodes) {
      ino = next_ino_++;
    } else {
      for (Ino undo : granted) {
        ino_states_.erase(undo);
        it->second->leased_inos.erase(undo);
        free_inos_.push_back(undo);
      }
      return NoSpace("out of inode numbers");
    }
    ino_states_[ino] = InoState{ResourceState::kLeased, libfs, kInvalidIno};
    it->second->leased_inos.insert(ino);
    granted.push_back(ino);
  }
  out->insert(out->end(), granted.begin(), granted.end());
  return OkStatus();
}

Status KernelController::FreeIno(LibFsId libfs, Ino ino) {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  stats_.syscalls.fetch_add(1, std::memory_order_relaxed);
  auto it = libfses_.find(libfs);
  if (it == libfses_.end()) {
    return InvalidArgument("unknown LibFS");
  }
  auto state_it = ino_states_.find(ino);
  if (state_it == ino_states_.end() || state_it->second.state != ResourceState::kLeased ||
      state_it->second.lessee != libfs) {
    return InvalidArgument("ino not leased to caller");
  }
  it->second->leased_inos.erase(ino);
  ino_states_.erase(state_it);
  free_inos_.push_back(ino);
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Mapping and sharing
// ---------------------------------------------------------------------------

KernelController::FileRecord* KernelController::RecordOf(Ino ino) {
  auto it = records_.find(ino);
  return it == records_.end() ? nullptr : &it->second;
}

const KernelController::FileRecord* KernelController::RecordOf(Ino ino) const {
  auto it = records_.find(ino);
  return it == records_.end() ? nullptr : &it->second;
}

DirentBlock* KernelController::DirentOfLocked(const FileRecord& record) {
  if (record.dirent_page == 0) {
    return &SuperblockOf(pool_)->root;
  }
  auto* page = reinterpret_cast<DirDataPage*>(pool_.PageAddress(record.dirent_page));
  return &page->slots[record.dirent_slot];
}

void KernelController::GrantFilePagesLocked(LibFsId libfs, const FileRecord& record,
                                            bool write) {
  const PagePerm perm = write ? PagePerm::kReadWrite : PagePerm::kRead;
  for (PageNumber page : record.pages) {
    mmu_.Grant(libfs, page, perm);
  }
  if (record.dirent_page != 0) {
    // The co-located inode lives in the parent's data page (§4.1): stat needs read, size /
    // metadata updates need write. Page-granularity is the documented caveat here.
    mmu_.Grant(libfs, record.dirent_page, perm);
  }
}

void KernelController::RevokeFilePagesLocked(LibFsId libfs, const FileRecord& record) {
  for (PageNumber page : record.pages) {
    // Leave leased pages mapped; only revoke the file's own pages.
    auto it = page_states_.find(page);
    if (it != page_states_.end() && it->second.state == ResourceState::kLeased &&
        it->second.lessee == libfs) {
      continue;
    }
    mmu_.Revoke(libfs, page);
  }
  if (record.dirent_page == 0) {
    return;
  }
  // The dirent page is shared with the parent directory and sibling files; recompute the
  // strongest permission still justified by this LibFS's other mappings.
  auto libfs_it = libfses_.find(libfs);
  if (libfs_it == libfses_.end()) {
    mmu_.Revoke(libfs, record.dirent_page);
    return;
  }
  const LibFsRecord& lr = *libfs_it->second;
  PagePerm perm = PagePerm::kNone;
  auto consider = [&](Ino ino, PagePerm candidate) {
    const FileRecord* other = RecordOf(ino);
    if (other == nullptr || other->ino == record.ino) {
      return;
    }
    const bool touches = other->pages.count(record.dirent_page) != 0 ||
                         other->dirent_page == record.dirent_page;
    if (touches && static_cast<int>(candidate) > static_cast<int>(perm)) {
      perm = candidate;
    }
  };
  for (Ino ino : lr.write_mapped) {
    consider(ino, PagePerm::kReadWrite);
  }
  for (Ino ino : lr.read_mapped) {
    consider(ino, PagePerm::kRead);
  }
  mmu_.Grant(libfs, record.dirent_page, perm);  // kNone erases.
}

Result<MapInfo> KernelController::MapRoot(LibFsId libfs, bool write) {
  return MapFile(libfs, kInvalidIno, kRootIno, write);
}

Result<MapInfo> KernelController::MapFile(LibFsId libfs, Ino parent, Ino ino, bool write) {
  const uint64_t t0 = NowNs();
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  stats_.syscalls.fetch_add(1, std::memory_order_relaxed);

  auto libfs_it = libfses_.find(libfs);
  if (libfs_it == libfses_.end()) {
    return InvalidArgument("unknown LibFS");
  }

  while (true) {
    FileRecord* record = RecordOf(ino);
    if (record == nullptr) {
      return NotFound("no such file");
    }
    LibFsRecord* me = libfses_.find(libfs)->second.get();

    // Permission check against the shadow inode (ground truth).
    const ShadowInode* shadow = ShadowInodeOf(pool_, ino);
    if (shadow == nullptr || !shadow->Exists()) {
      return NotFound("file has no shadow inode");
    }
    if (!AccessAllowed(*shadow, me->uid, me->gid, write)) {
      return PermissionDenied("access denied by shadow inode");
    }

    // Already mapped suitably?
    if (record->writer == libfs) {
      record->lease_deadline_ns = NowNs() + config_.lease_ms * 1000000ull;
      MapInfo info{record->dirent_page, record->dirent_slot, true, record->lease_deadline_ns,
                   DirentOfLocked(*record)->first_index_page};
      stats_.map_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
      return info;
    }
    if (!write && record->readers.count(libfs) != 0 && record->writer == kNoLibFs) {
      MapInfo info{record->dirent_page, record->dirent_slot, false, 0,
                   DirentOfLocked(*record)->first_index_page};
      stats_.map_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
      return info;
    }

    // Conflicts: a writer blocks everyone; readers block a writer (§3.2: concurrent read
    // XOR exclusive write). Leases bound how long a holder can stall us; the holder is
    // asked to release via its revoke callback.
    LibFsId conflict = kNoLibFs;
    if (record->writer != kNoLibFs && record->writer != libfs) {
      conflict = record->writer;
    } else if (write) {
      for (LibFsId reader : record->readers) {
        if (reader != libfs) {
          conflict = reader;
          break;
        }
      }
    }

    if (conflict != kNoLibFs) {
      auto holder_it = libfses_.find(conflict);
      if (holder_it == libfses_.end() || !holder_it->second->callbacks.revoke) {
        // Dead or unresponsive holder: force the release ourselves.
        if (record->writer == conflict) {
          (void)VerifyAndReconcileLocked(lock, record);
          record->writer = kNoLibFs;
          record->checkpoint.reset();
          WmapLogRemove(ino);
          if (holder_it != libfses_.end()) {
            holder_it->second->write_mapped.erase(ino);
          }
        } else {
          record->readers.erase(conflict);
          if (holder_it != libfses_.end()) {
            holder_it->second->read_mapped.erase(ino);
          }
        }
        continue;
      }
      stats_.revocations.fetch_add(1, std::memory_order_relaxed);
      auto revoke = holder_it->second->callbacks.revoke;
      if (!config_.guard_callbacks) {
        lock.unlock();
        revoke(ino);  // Synchronous: the holder unmaps (verify runs on this path).
        lock.lock();
        continue;  // Re-evaluate from scratch; records may have been reclaimed.
      }
      // Lease enforcement: the holder is trusted to cooperate only until its lease
      // expires. Wait for the revoke callback at most until the lease deadline (plus
      // grace), then reclaim the mapping by force — an unresponsive holder cannot stall
      // a conflicting mapper beyond its lease.
      const uint64_t now = NowNs();
      const uint64_t lease_end = record->lease_deadline_ns;
      const uint64_t remaining_ms =
          lease_end > now ? (lease_end - now + 999999ull) / 1000000ull : 0;
      const uint64_t budget_ms = remaining_ms + config_.revoke_grace_ms;
      lock.unlock();
      const bool completed = callback_guard_.Run(budget_ms, [revoke, ino] { revoke(ino); });
      lock.lock();
      if (!completed) {
        stats_.callback_timeouts.fetch_add(1, std::memory_order_relaxed);
        TRIO_LOG(kWarn) << "revoke of ino " << ino << " from LibFS " << conflict
                        << " overran the lease deadline; forcing release";
        ForceReleaseLocked(lock, ino, conflict);
      }
      continue;  // Re-evaluate from scratch; records may have been reclaimed.
    }

    // Grant.
    if (write) {
      // Readers of this same LibFS upgrading: drop the read mapping.
      record->readers.erase(libfs);
      me->read_mapped.erase(ino);
      const uint64_t c0 = NowNs();
      Status checkpoint_status = TakeCheckpointLocked(record);
      stats_.checkpoint_ns.fetch_add(NowNs() - c0, std::memory_order_relaxed);
      if (!checkpoint_status.ok()) {
        return checkpoint_status;
      }
      record->writer = libfs;
      record->lease_deadline_ns = NowNs() + config_.lease_ms * 1000000ull;
      me->write_mapped.insert(ino);
      WmapLogAdd(ino);
    } else {
      record->readers.insert(libfs);
      me->read_mapped.insert(ino);
    }
    GrantFilePagesLocked(libfs, *record, write);
    stats_.maps.fetch_add(1, std::memory_order_relaxed);
    MapInfo info{record->dirent_page, record->dirent_slot, write,
                 write ? record->lease_deadline_ns : 0,
                 DirentOfLocked(*record)->first_index_page};
    stats_.map_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
    return info;
  }
}

void KernelController::ForceReleaseLocked(std::unique_lock<std::recursive_mutex>& lock,
                                          Ino ino, LibFsId holder) {
  FileRecord* record = RecordOf(ino);
  if (record == nullptr) {
    return;
  }
  auto holder_it = libfses_.find(holder);
  if (record->writer == holder) {
    // Same teardown as a cooperative unmap: the holder's work is verified (and rolled
    // back if corrupt) before the lease is handed on. The holder itself gets no say.
    (void)VerifyAndReconcileLocked(lock, record);
    record = RecordOf(ino);
    if (record != nullptr) {
      record->writer = kNoLibFs;
      record->checkpoint.reset();
      if (holder_it != libfses_.end()) {
        RevokeFilePagesLocked(holder, *record);
      }
    }
    WmapLogRemove(ino);
    if (holder_it != libfses_.end()) {
      holder_it->second->write_mapped.erase(ino);
      if (holder_it->second->write_mapped.empty()) {
        ResolveOrphansLocked(holder_it->second.get());
      }
    }
  } else if (record->readers.erase(holder) > 0) {
    if (holder_it != libfses_.end()) {
      holder_it->second->read_mapped.erase(ino);
    }
    RevokeFilePagesLocked(holder, *record);
  }
  stats_.forced_releases.fetch_add(1, std::memory_order_relaxed);
}

Status KernelController::UnmapFile(LibFsId libfs, Ino ino) {
  const uint64_t t0 = NowNs();
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  stats_.syscalls.fetch_add(1, std::memory_order_relaxed);
  auto libfs_it = libfses_.find(libfs);
  if (libfs_it == libfses_.end()) {
    return InvalidArgument("unknown LibFS");
  }
  LibFsRecord* me = libfs_it->second.get();
  FileRecord* record = RecordOf(ino);
  if (record == nullptr) {
    me->write_mapped.erase(ino);
    me->read_mapped.erase(ino);
    return NotFound("no such file");
  }

  Status result = OkStatus();
  if (record->writer == libfs) {
    result = VerifyAndReconcileLocked(lock, record);
    record = RecordOf(ino);  // Reconciliation/rollback never erases it, but be safe.
    if (record != nullptr) {
      record->writer = kNoLibFs;
      record->checkpoint.reset();
      RevokeFilePagesLocked(libfs, *record);
    }
    me->write_mapped.erase(ino);
    WmapLogRemove(ino);
    if (me->write_mapped.empty()) {
      ResolveOrphansLocked(me);
    }
  } else if (record->readers.erase(libfs) > 0) {
    me->read_mapped.erase(ino);
    RevokeFilePagesLocked(libfs, *record);
  } else {
    return InvalidArgument("file not mapped by caller");
  }
  stats_.unmaps.fetch_add(1, std::memory_order_relaxed);
  stats_.unmap_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
  return result;
}

Status KernelController::CommitFile(LibFsId libfs, Ino ino) {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  stats_.syscalls.fetch_add(1, std::memory_order_relaxed);
  FileRecord* record = RecordOf(ino);
  if (record == nullptr || record->writer != libfs) {
    return InvalidArgument("file not write-mapped by caller");
  }
  // Verify the current state without the corruption-handling fallback: a failed commit
  // simply leaves the old checkpoint in force (§4.3).
  VerifyRequest request;
  request.ino = ino;
  request.dirent = DirentOfLocked(*record);
  request.writer = libfs;
  LibFsRecord* me = libfses_.find(libfs)->second.get();
  request.writer_uid = me->uid;
  request.writer_gid = me->gid;
  std::vector<CheckpointChild> checkpoint_children;
  if (record->checkpoint != nullptr) {
    checkpoint_children = record->checkpoint->children;
    request.checkpoint_children = &checkpoint_children;
  }
  const uint64_t v0 = NowNs();
  Result<VerifyReport> report = verifier_->Verify(request);
  stats_.verifications.fetch_add(1, std::memory_order_relaxed);
  stats_.verify_ns.fetch_add(NowNs() - v0, std::memory_order_relaxed);
  if (!report.ok()) {
    stats_.verify_failures.fetch_add(1, std::memory_order_relaxed);
    return report.status();
  }
  TRIO_RETURN_IF_ERROR(ApplyReportLocked(record, *report));
  return TakeCheckpointLocked(record);
}

Status KernelController::VerifyAndReconcileLocked(std::unique_lock<std::recursive_mutex>& lock,
                                                  FileRecord* record) {
  const Ino ino = record->ino;
  const LibFsId writer = record->writer;
  auto libfs_it = libfses_.find(writer);
  if (libfs_it == libfses_.end()) {
    return Internal("writer vanished");
  }
  LibFsRecord* me = libfs_it->second.get();

  VerifyRequest request;
  request.ino = ino;
  request.dirent = DirentOfLocked(*record);
  request.writer = writer;
  request.writer_uid = me->uid;
  request.writer_gid = me->gid;
  std::vector<CheckpointChild> checkpoint_children;
  if (record->checkpoint != nullptr) {
    checkpoint_children = record->checkpoint->children;
    request.checkpoint_children = &checkpoint_children;
  }

  const uint64_t v0 = NowNs();
  Result<VerifyReport> report = verifier_->Verify(request);
  stats_.verifications.fetch_add(1, std::memory_order_relaxed);
  stats_.verify_ns.fetch_add(NowNs() - v0, std::memory_order_relaxed);
  if (report.ok()) {
    return ApplyReportLocked(record, *report);
  }

  stats_.verify_failures.fetch_add(1, std::memory_order_relaxed);
  Status failure = report.status();
  TRIO_LOG(kInfo) << "verification failed for ino " << ino << ": " << failure.ToString();

  // §4.3: "ArckFS notifies LibFS A to fix the corruption with a timeout."
  auto fix = me->callbacks.fix_corruption;
  if (fix) {
    const uint64_t deadline = NowNs() + config_.fix_timeout_ms * 1000000ull;
    bool claims_fixed = false;
    lock.unlock();
    if (config_.guard_callbacks) {
      // fix_timeout_ms is a real deadline, not an honor-system check: the callback runs
      // on a watchdog thread and a hang is abandoned, escalating to rollback below. The
      // result lives in a shared_ptr because an abandoned callback may write it late.
      auto claimed = std::make_shared<std::atomic<bool>>(false);
      const bool completed =
          callback_guard_.Run(config_.fix_timeout_ms, [fix, ino, failure, claimed] {
            claimed->store(fix(ino, failure), std::memory_order_release);
          });
      if (!completed) {
        stats_.callback_timeouts.fetch_add(1, std::memory_order_relaxed);
        TRIO_LOG(kWarn) << "fix_corruption for ino " << ino
                        << " hung past fix_timeout_ms; rolling back to checkpoint";
      }
      claims_fixed = completed && claimed->load(std::memory_order_acquire);
    } else {
      claims_fixed = fix(ino, failure);
    }
    lock.lock();
    record = RecordOf(ino);
    if (record == nullptr) {
      return failure;
    }
    if (claims_fixed && NowNs() <= deadline) {
      request.dirent = DirentOfLocked(*record);
      Result<VerifyReport> retry = verifier_->Verify(request);
      stats_.verifications.fetch_add(1, std::memory_order_relaxed);
      if (retry.ok()) {
        stats_.corruptions_fixed_by_libfs.fetch_add(1, std::memory_order_relaxed);
        return ApplyReportLocked(record, *retry);
      }
      failure = retry.status();
    }
  }

  // Quarantine the corrupted image for the offender, then roll back to the checkpoint.
  QuarantineLocked(record);
  RollbackToCheckpointLocked(record);
  stats_.corruptions_rolled_back.fetch_add(1, std::memory_order_relaxed);
  return failure;
}

Status KernelController::ApplyReportLocked(FileRecord* record, const VerifyReport& report) {
  LibFsRecord* writer =
      record->writer != kNoLibFs ? libfses_.find(record->writer)->second.get() : nullptr;

  // Pages: adopt newly referenced leased pages, free no-longer-referenced owned pages.
  std::unordered_set<PageNumber> new_pages(report.pages.begin(), report.pages.end());
  for (PageNumber page : record->pages) {
    if (new_pages.count(page) != 0) {
      continue;
    }
    // Dropped from the file (truncate / shrink): back to the free pool.
    if (record->writer != kNoLibFs) {
      mmu_.Revoke(record->writer, page);
    }
    page_states_.erase(page);
    free_pages_by_node_[pool_.NodeOfPage(page)].push_back(page);
    stats_.pages_freed.fetch_add(1, std::memory_order_relaxed);
  }
  for (PageNumber page : new_pages) {
    PageState& state = page_states_[page];
    if (state.state == ResourceState::kLeased) {
      if (writer != nullptr) {
        writer->leased_pages.erase(page);
      }
      state = PageState{ResourceState::kOwned, kNoLibFs, record->ino};
    }
  }
  record->pages = std::move(new_pages);
  record->first_index_page = DirentOfLocked(*record)->first_index_page;

  // Fresh children become live files with shadow inodes and an implicit write grant to
  // their creator (their own pages reconcile at their own first verification).
  for (const NewChildInfo& child : report.new_children) {
    if (writer != nullptr) {
      writer->leased_inos.erase(child.ino);
    }
    ino_states_[child.ino] = InoState{ResourceState::kOwned, kNoLibFs, record->ino};

    FileRecord fresh;
    fresh.ino = child.ino;
    fresh.parent = record->ino;
    fresh.is_dir = child.is_dir;
    fresh.dirent_page = child.dirent_page;
    fresh.dirent_slot = child.dirent_slot;
    fresh.first_index_page = child.first_index_page;

    ShadowInode shadow{child.mode, child.uid, child.gid, 1};
    ShadowInode* slot = ShadowInodeOf(pool_, child.ino);
    pool_.Write(slot, &shadow, sizeof(shadow));
    pool_.PersistNow(slot, sizeof(shadow));

    if (record->writer != kNoLibFs) {
      fresh.writer = record->writer;
      fresh.lease_deadline_ns = NowNs() + config_.lease_ms * 1000000ull;
      writer->write_mapped.insert(child.ino);
      WmapLogAdd(child.ino);
    }
    auto [it, inserted] = records_.emplace(child.ino, std::move(fresh));
    if (inserted && it->second.writer != kNoLibFs) {
      (void)TakeCheckpointLocked(&it->second);
    }
  }

  // Renames into this directory.
  for (const MovedInChild& moved : report.moved_in) {
    FileRecord* child = RecordOf(moved.ino);
    if (child == nullptr) {
      continue;
    }
    child->parent = record->ino;
    child->dirent_page = moved.dirent_page;
    child->dirent_slot = moved.dirent_slot;
    ino_states_[moved.ino].parent = record->ino;
    if (writer != nullptr) {
      writer->pending_orphans.erase(moved.ino);
    }
  }

  // Children that vanished: deleted, or renamed to a directory we have not verified yet.
  for (Ino removed : report.removed_children) {
    auto state_it = ino_states_.find(removed);
    if (state_it == ino_states_.end() || state_it->second.parent != record->ino) {
      continue;  // Already moved elsewhere or reclaimed.
    }
    if (writer != nullptr) {
      writer->pending_orphans.insert(removed);
    } else {
      FileRecord* child = RecordOf(removed);
      if (child != nullptr) {
        ReclaimFileLocked(child);
      }
    }
  }
  return OkStatus();
}

void KernelController::ResolveOrphansLocked(LibFsRecord* libfs) {
  // Anything still orphaned when the writer's session quiesces was deleted, not renamed.
  std::vector<Ino> orphans(libfs->pending_orphans.begin(), libfs->pending_orphans.end());
  libfs->pending_orphans.clear();
  for (Ino ino : orphans) {
    FileRecord* record = RecordOf(ino);
    if (record == nullptr) {
      continue;
    }
    auto state_it = ino_states_.find(ino);
    if (state_it != ino_states_.end() && state_it->second.state == ResourceState::kOwned) {
      // Still owned with the stale parent: a deletion. Directories were checked empty by
      // I3 at parent-verify time.
      ReclaimFileLocked(record);
    }
  }
}

void KernelController::ReclaimFileLocked(FileRecord* record) {
  const Ino ino = record->ino;
  // Recursively reclaim children first (mass deletion by page rewrite is legal tombstoning).
  std::vector<Ino> children;
  for (auto& [child_ino, child] : records_) {
    if (child.parent == ino && child_ino != ino) {
      children.push_back(child_ino);
    }
  }
  for (Ino child : children) {
    FileRecord* child_record = RecordOf(child);
    if (child_record != nullptr) {
      ReclaimFileLocked(child_record);
    }
  }
  record = RecordOf(ino);
  if (record == nullptr) {
    return;
  }
  for (PageNumber page : record->pages) {
    page_states_.erase(page);
    free_pages_by_node_[pool_.NodeOfPage(page)].push_back(page);
    stats_.pages_freed.fetch_add(1, std::memory_order_relaxed);
  }
  ShadowInode* shadow = ShadowInodeOf(pool_, ino);
  if (shadow != nullptr) {
    ShadowInode cleared{};
    pool_.Write(shadow, &cleared, sizeof(cleared));
    pool_.PersistNow(shadow, sizeof(cleared));
  }
  WmapLogRemove(ino);
  ino_states_.erase(ino);
  records_.erase(ino);
  free_inos_.push_back(ino);
}

Status KernelController::TakeCheckpointLocked(FileRecord* record) {
  auto checkpoint = std::make_unique<FileCheckpointData>();
  checkpoint->meta = *DirentOfLocked(*record);

  auto copy_page = [&](PageNumber page) {
    checkpoint->pages.push_back(page);
    auto content = std::make_unique<char[]>(kPageSize);
    std::memcpy(content.get(), pool_.PageAddress(page), kPageSize);
    checkpoint->contents.push_back(std::move(content));
  };

  // §4.3: checkpoint the file's metadata — index pages for a regular file; both index and
  // data pages for a directory (directory data pages *are* metadata).
  const PageNumber first = checkpoint->meta.first_index_page;
  TRIO_RETURN_IF_ERROR(ForEachIndexPage(pool_, first, [&](PageNumber page) -> Status {
    copy_page(page);
    return OkStatus();
  }));
  if (record->is_dir) {
    TRIO_RETURN_IF_ERROR(
        ForEachDataPage(pool_, first, [&](uint64_t, PageNumber page) -> Status {
          copy_page(page);
          return OkStatus();
        }));
    TRIO_RETURN_IF_ERROR(ForEachDirent(pool_, first,
                                       [&](DirentBlock* child, PageNumber, size_t) -> Status {
                                         checkpoint->children.push_back(CheckpointChild{
                                             child->ino, child->IsDirectory()});
                                         return OkStatus();
                                       }));
  }
  record->checkpoint = std::move(checkpoint);
  return OkStatus();
}

void KernelController::QuarantineLocked(FileRecord* record) {
  std::vector<std::vector<char>> images;
  for (PageNumber page : record->pages) {
    std::vector<char> image(kPageSize);
    std::memcpy(image.data(), pool_.PageAddress(page), kPageSize);
    images.push_back(std::move(image));
  }
  quarantine_[record->ino] = std::move(images);
  quarantine_owner_[record->ino] = record->writer;
}

std::vector<std::vector<char>> KernelController::RetrieveQuarantine(LibFsId libfs, Ino ino) {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  stats_.syscalls.fetch_add(1, std::memory_order_relaxed);
  auto owner = quarantine_owner_.find(ino);
  if (owner == quarantine_owner_.end() || owner->second != libfs) {
    return {};
  }
  auto it = quarantine_.find(ino);
  if (it == quarantine_.end()) {
    return {};
  }
  std::vector<std::vector<char>> images = std::move(it->second);
  quarantine_.erase(it);
  quarantine_owner_.erase(owner);
  return images;
}

void KernelController::RollbackToCheckpointLocked(FileRecord* record) {
  FileCheckpointData* checkpoint = record->checkpoint.get();
  DirentBlock* dirent = DirentOfLocked(*record);
  if (checkpoint == nullptr) {
    // A brand-new file with no checkpoint: the safe state is "empty".
    DirentBlock cleared = *dirent;
    cleared.first_index_page = 0;
    cleared.size = 0;
    pool_.Write(dirent, &cleared, sizeof(cleared));
    pool_.PersistNow(dirent, sizeof(cleared));
    record->first_index_page = 0;
    for (PageNumber page : record->pages) {
      page_states_.erase(page);
      free_pages_by_node_[pool_.NodeOfPage(page)].push_back(page);
    }
    record->pages.clear();
    return;
  }

  // Restore checkpointed page images where the page still belongs to this file.
  for (size_t i = 0; i < checkpoint->pages.size(); ++i) {
    const PageNumber page = checkpoint->pages[i];
    auto state = page_states_.find(page);
    if (state != page_states_.end() && state->second.state == ResourceState::kOwned &&
        state->second.owner == record->ino) {
      pool_.Write(pool_.PageAddress(page), checkpoint->contents[i].get(), kPageSize);
      pool_.Persist(pool_.PageAddress(page), kPageSize);
    }
  }
  pool_.Fence();

  // Restore the metadata (the dirent+inode block). Size mismatches against surviving data
  // resolve as holes, which read back as zeros ("trimming or padding zero bits", §4.3).
  pool_.Write(dirent, &checkpoint->meta, sizeof(checkpoint->meta));
  pool_.PersistNow(dirent, sizeof(checkpoint->meta));
  record->first_index_page = checkpoint->meta.first_index_page;

  // Scrub: drop index entries that reference pages this file no longer owns, and rebuild
  // the owned-page set from the restored chain.
  std::unordered_set<PageNumber> restored;
  Status scrub = ForEachIndexPage(pool_, record->first_index_page, [&](PageNumber p) -> Status {
    auto state = page_states_.find(p);
    if (state == page_states_.end() || state->second.state != ResourceState::kOwned ||
        state->second.owner != record->ino) {
      return Corrupted("restored chain broken");
    }
    restored.insert(p);
    auto* index = reinterpret_cast<IndexPage*>(pool_.PageAddress(p));
    for (size_t i = 0; i < kIndexEntriesPerPage; ++i) {
      const PageNumber entry = index->entries[i];
      if (entry == 0) {
        continue;
      }
      auto entry_state = page_states_.find(entry);
      const bool owned = entry_state != page_states_.end() &&
                         entry_state->second.state == ResourceState::kOwned &&
                         entry_state->second.owner == record->ino;
      if (!owned) {
        pool_.CommitStore64(&index->entries[i], 0);
      } else {
        restored.insert(entry);
      }
    }
    return OkStatus();
  });
  if (!scrub.ok()) {
    // The chain head itself was lost; fall back to an empty file.
    DirentBlock cleared = checkpoint->meta;
    cleared.first_index_page = 0;
    cleared.size = 0;
    pool_.Write(dirent, &cleared, sizeof(cleared));
    pool_.PersistNow(dirent, sizeof(cleared));
    record->first_index_page = 0;
    restored.clear();
  }

  // Pages that were owned but are no longer reachable go back to the free pool.
  for (PageNumber page : record->pages) {
    if (restored.count(page) != 0) {
      continue;
    }
    if (record->writer != kNoLibFs) {
      mmu_.Revoke(record->writer, page);
    }
    page_states_.erase(page);
    free_pages_by_node_[pool_.NodeOfPage(page)].push_back(page);
  }
  record->pages = std::move(restored);
}

// ---------------------------------------------------------------------------
// Permission changes
// ---------------------------------------------------------------------------

Status KernelController::Chmod(LibFsId libfs, Ino ino, uint32_t perm_bits) {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  stats_.syscalls.fetch_add(1, std::memory_order_relaxed);
  auto libfs_it = libfses_.find(libfs);
  if (libfs_it == libfses_.end()) {
    return InvalidArgument("unknown LibFS");
  }
  FileRecord* record = RecordOf(ino);
  ShadowInode* shadow = ShadowInodeOf(pool_, ino);
  if (record == nullptr || shadow == nullptr || !shadow->Exists()) {
    return NotFound("no such file");
  }
  if (libfs_it->second->uid != 0 && libfs_it->second->uid != shadow->uid) {
    return PermissionDenied("only the owner may chmod");
  }
  ShadowInode updated = *shadow;
  updated.mode = (updated.mode & kModeTypeMask) | (perm_bits & kModePermMask);
  pool_.Write(shadow, &updated, sizeof(updated));
  pool_.PersistNow(shadow, sizeof(updated));
  // Refresh the cached copy in the dirent so I4 stays consistent.
  DirentBlock* dirent = DirentOfLocked(*record);
  pool_.Write(&dirent->mode, &updated.mode, sizeof(updated.mode));
  pool_.PersistNow(&dirent->mode, sizeof(updated.mode));
  return OkStatus();
}

Status KernelController::Chown(LibFsId libfs, Ino ino, uint32_t uid, uint32_t gid) {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  stats_.syscalls.fetch_add(1, std::memory_order_relaxed);
  auto libfs_it = libfses_.find(libfs);
  if (libfs_it == libfses_.end()) {
    return InvalidArgument("unknown LibFS");
  }
  if (libfs_it->second->uid != 0) {
    return PermissionDenied("only root may chown");
  }
  FileRecord* record = RecordOf(ino);
  ShadowInode* shadow = ShadowInodeOf(pool_, ino);
  if (record == nullptr || shadow == nullptr || !shadow->Exists()) {
    return NotFound("no such file");
  }
  ShadowInode updated = *shadow;
  updated.uid = uid;
  updated.gid = gid;
  pool_.Write(shadow, &updated, sizeof(updated));
  pool_.PersistNow(shadow, sizeof(updated));
  DirentBlock* dirent = DirentOfLocked(*record);
  pool_.Write(&dirent->uid, &updated.uid, sizeof(updated.uid));
  pool_.Write(&dirent->gid, &updated.gid, sizeof(updated.gid));
  pool_.PersistNow(&dirent->uid, sizeof(uint32_t) * 2);
  return OkStatus();
}

// ---------------------------------------------------------------------------
// OwnershipView / VerifyEnv
// ---------------------------------------------------------------------------

PageState KernelController::StateOfPage(PageNumber page) const {
  // mutex_ is recursive: the verifier calls this on the kernel's own thread mid-verify.
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  if (page < FileRegionStart(pool_)) {
    return PageState{ResourceState::kReserved, kNoLibFs, kInvalidIno};
  }
  auto it = page_states_.find(page);
  if (it == page_states_.end()) {
    return PageState{};
  }
  return it->second;
}

InoState KernelController::StateOfIno(Ino ino) const {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  auto it = ino_states_.find(ino);
  if (it == ino_states_.end()) {
    return InoState{};
  }
  return it->second;
}

Status KernelController::CheckRemovedChildDir(Ino child, LibFsId writer) const {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  const FileRecord* record = RecordOf(child);
  if (record == nullptr) {
    return OkStatus();  // Already reclaimed.
  }
  if ((record->writer != kNoLibFs && record->writer != writer) ||
      std::any_of(record->readers.begin(), record->readers.end(),
                  [&](LibFsId r) { return r != writer; })) {
    return Corrupted("I3: removed child directory still mapped by another LibFS");
  }
  Result<uint64_t> live = CountDirents(const_cast<NvmPool&>(pool_), record->first_index_page);
  if (!live.ok()) {
    return live.status();
  }
  if (*live != 0) {
    return Corrupted("I3: removed child directory is not empty");
  }
  return OkStatus();
}

bool KernelController::IsMovePermitted(Ino child, Ino new_parent, LibFsId writer) const {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  const FileRecord* record = RecordOf(child);
  if (record == nullptr) {
    return false;
  }
  auto libfs_it = libfses_.find(writer);
  if (libfs_it != libfses_.end() &&
      libfs_it->second->pending_orphans.count(child) != 0) {
    return true;
  }
  const FileRecord* old_parent = RecordOf(record->parent);
  return old_parent != nullptr && old_parent->writer == writer;
}

// ---------------------------------------------------------------------------
// Write-map log (crash recovery, §4.4)
// ---------------------------------------------------------------------------

void KernelController::WmapLogAdd(Ino ino) {
  auto* log = reinterpret_cast<uint64_t*>(pool_.PageAddress(SuperblockOf(pool_)->wmap_log_page));
  const size_t slots = WmapSlots(pool_);
  for (size_t i = 0; i < slots; ++i) {
    if (pool_.Load64(&log[i]) == ino) {
      return;
    }
  }
  for (size_t i = 0; i < slots; ++i) {
    if (pool_.Load64(&log[i]) == kInvalidIno) {
      pool_.CommitStore64(&log[i], ino);
      return;
    }
  }
  // Log full: fall back to verify-everything-at-recovery semantics.
  Superblock* sb = SuperblockOf(pool_);
  if (pool_.Load64(&sb->wmap_log_overflow) == 0) {
    pool_.CommitStore64(&sb->wmap_log_overflow, 1);
    TRIO_LOG(kInfo) << "write-map log full; recovery will verify the full tree";
  }
}

void KernelController::WmapLogRemove(Ino ino) {
  auto* log = reinterpret_cast<uint64_t*>(pool_.PageAddress(SuperblockOf(pool_)->wmap_log_page));
  for (size_t i = 0; i < WmapSlots(pool_); ++i) {
    if (pool_.Load64(&log[i]) == ino) {
      pool_.CommitStore64(&log[i], kInvalidIno);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Inspection helpers
// ---------------------------------------------------------------------------

size_t KernelController::FreePageCount() const {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& list : free_pages_by_node_) {
    total += list.size();
  }
  return total;
}

bool KernelController::IsWriteMapped(Ino ino) const {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  const FileRecord* record = RecordOf(ino);
  return record != nullptr && record->writer != kNoLibFs;
}

Result<Ino> KernelController::ParentOf(Ino ino) const {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  const FileRecord* record = RecordOf(ino);
  if (record == nullptr) {
    return NotFound("no such file");
  }
  return record->parent;
}

}  // namespace trio
