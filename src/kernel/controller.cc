// KernelController lifecycle, mount/recovery, resource leasing, permission changes, the
// write-map log, and ownership views. The implementation is split across three
// translation units behind the single KernelController class:
//   controller.cc        — this file
//   controller_map.cc    — map/unmap/sharing and lease revocation
//   controller_verify.cc — verify/reconcile, checkpoint/rollback, quarantine, reclaim
// Every LibFS-callable entry point opens a SyscallScope (see syscall_boundary.h).

#include "src/kernel/controller.h"

#include <algorithm>

#include "src/kernel/controller_internal.h"
#include "src/kernel/syscall_boundary.h"
#include "src/obs/persist_span.h"

namespace trio {

using controller_internal::WmapSlots;

KernelController::KernelController(NvmPool& pool, KernelConfig config, Clock* clock)
    : pool_(pool), config_(config), clock_(clock) {
  verifier_ = std::make_unique<IntegrityVerifier>(pool_, *this, *this, clock_);
  if (config_.start_delegation) {
    StartDelegation();
  }
}

KernelController::~KernelController() { delegation_.reset(); }

void KernelController::StartDelegation() {
  if (delegation_ == nullptr) {
    delegation_ = std::make_unique<DelegationPool>(pool_, config_.delegation);
  }
}

// ---------------------------------------------------------------------------
// Mount / unmount / recovery
// ---------------------------------------------------------------------------

Status KernelController::Mount() {
  TRIO_RETURN_IF_ERROR(CheckSuperblock(pool_));
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  Superblock* sb = SuperblockOf(pool_);
  needs_recovery_ = sb->clean_shutdown == 0;

  page_states_.clear();
  ino_states_.clear();
  records_.clear();
  free_pages_by_node_.assign(pool_.topology().num_nodes, {});
  free_inos_.clear();
  next_ino_ = kRootIno + 1;

  // The ownership tables are auxiliary state (§3.2): rebuild them by walking the core
  // state from the root.
  std::unordered_set<PageNumber> seen_pages;
  std::unordered_set<Ino> seen_inos;
  Status scan = ScanTreeLocked(kRootIno, kInvalidIno, /*dirent_page=*/0, /*dirent_slot=*/0,
                               sb->root, &seen_pages, &seen_inos);
  if (!scan.ok()) {
    TRIO_LOG(kWarn) << "mount scan found damage: " << scan.ToString();
  }

  // Everything in the file region not owned by a file is free.
  for (PageNumber p = sb->file_region_page; p < sb->total_pages; ++p) {
    if (page_states_.find(p) == page_states_.end()) {
      free_pages_by_node_[pool_.NodeOfPage(p)].push_back(p);
    }
  }

  // We are live: a crash from here on is unclean until Unmount().
  const uint64_t live = 0;
  pool_.Write(&sb->clean_shutdown, &live, sizeof(live));
  obs::PersistSpan(pool_, &persist_stats_).PersistNow(&sb->clean_shutdown, sizeof(live));
  mounted_ = true;
  return OkStatus();
}

Status KernelController::ScanTreeLocked(Ino ino, Ino parent, PageNumber dirent_page,
                                        size_t dirent_slot, const DirentBlock& dirent,
                                        std::unordered_set<PageNumber>* seen_pages,
                                        std::unordered_set<Ino>* seen_inos) {
  if (!seen_inos->insert(ino).second) {
    return Corrupted("inode appears twice in tree");
  }
  FileRecord record;
  record.ino = ino;
  record.parent = parent;
  record.is_dir = dirent.IsDirectory();
  record.dirent_page = dirent_page;
  record.dirent_slot = dirent_slot;
  record.first_index_page = dirent.first_index_page;

  // Claim this file's pages; tolerate damage by stopping at the first bad page.
  Status walk = ForEachIndexPage(pool_, dirent.first_index_page, [&](PageNumber p) -> Status {
    if (!seen_pages->insert(p).second) {
      return Corrupted("index page claimed twice");
    }
    record.pages.insert(p);
    return OkStatus();
  });
  if (walk.ok()) {
    walk = ForEachDataPage(pool_, dirent.first_index_page,
                           [&](uint64_t, PageNumber p) -> Status {
                             if (!seen_pages->insert(p).second) {
                               return Corrupted("data page claimed twice");
                             }
                             record.pages.insert(p);
                             return OkStatus();
                           });
  }

  for (PageNumber p : record.pages) {
    page_states_[p] = PageState{ResourceState::kOwned, kNoLibFs, ino};
  }
  ino_states_[ino] = InoState{ResourceState::kOwned, kNoLibFs, parent};
  if (ino >= next_ino_) {
    next_ino_ = ino + 1;
  }

  // Adopt files that were created but never reconciled before a crash: give them a shadow
  // inode matching their dirent (the recovery verify pass re-checks structure).
  ShadowInode* shadow = ShadowInodeOf(pool_, ino);
  if (shadow != nullptr && !shadow->Exists()) {
    ShadowInode fresh{dirent.mode, dirent.uid, dirent.gid, 1};
    pool_.Write(shadow, &fresh, sizeof(fresh));
    obs::PersistSpan(pool_, &persist_stats_).PersistNow(shadow, sizeof(fresh));
  }

  Status children_status = OkStatus();
  if (record.is_dir && walk.ok()) {
    children_status = ForEachDirent(
        pool_, dirent.first_index_page,
        [&](DirentBlock* child, PageNumber page, size_t slot) -> Status {
          if (seen_inos->count(child->ino) != 0) {
            // Torn rename can leave the same ino under two names; keep the first, let the
            // LibFS recovery program resolve the journal.
            TRIO_LOG(kWarn) << "mount: duplicate ino " << child->ino << " skipped";
            return OkStatus();
          }
          Status s = ScanTreeLocked(child->ino, ino, page, slot, *child, seen_pages,
                                    seen_inos);
          if (!s.ok()) {
            TRIO_LOG(kWarn) << "mount: subtree of ino " << child->ino
                            << " damaged: " << s.ToString();
          }
          return OkStatus();
        });
  }

  records_[ino] = std::move(record);
  if (!walk.ok()) {
    return walk;
  }
  return children_status;
}

Status KernelController::Unmount() {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  if (!libfses_.empty()) {
    return Busy("LibFSes still registered");
  }
  Superblock* sb = SuperblockOf(pool_);
  const uint64_t clean = 1;
  pool_.Write(&sb->clean_shutdown, &clean, sizeof(clean));
  obs::PersistSpan(pool_, &persist_stats_).PersistNow(&sb->clean_shutdown, sizeof(clean));
  mounted_ = false;
  return OkStatus();
}

Status KernelController::RunRecovery() {
  // Phase 1: untrusted LibFS recovery programs (journal undo), outside the kernel lock.
  std::vector<std::function<void()>> programs;
  {
    std::unique_lock<std::recursive_mutex> lock(mutex_);
    for (auto& [id, libfs] : libfses_) {
      if (libfs->callbacks.recovery) {
        programs.push_back(libfs->callbacks.recovery);
      }
    }
  }
  bool program_timed_out = false;
  for (auto& program : programs) {
    if (config_.guard_callbacks) {
      // Recovery programs are arbitrary user code; one that never returns must not wedge
      // recovery for everyone. On timeout the program's journal state is unknown, so
      // coverage escalates below to verifying every file, not just the logged ones.
      if (!callback_guard_.Run(config_.recovery_timeout_ms, program)) {
        stats_.callback_timeouts.fetch_add(1, std::memory_order_relaxed);
        program_timed_out = true;
        TRIO_LOG(kWarn) << "recovery: a LibFS recovery program overran "
                        << config_.recovery_timeout_ms
                        << "ms and was abandoned; escalating to full-tree verification";
      }
    } else {
      program();
    }
  }

  // Phase 2: the recovery programs may have moved dirents around; rebuild the tables.
  TRIO_RETURN_IF_ERROR(Mount());

  // Phase 3: verify every file that was write-mapped when the crash happened (§4.4).
  // If the write-map log overflowed before the crash (or a recovery program hung),
  // coverage is unknown: verify the whole tree instead (an online fsck over every record).
  //
  // Idempotence: the log slots and the overflow flag are cleared only AFTER every
  // verification (and any resulting removal) has been persisted. A crash anywhere during
  // recovery leaves the obligations on media, so a second RunRecovery redoes them and
  // converges — verification is read-only and removal of an already-removed file is a
  // no-op.
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  Superblock* sb = SuperblockOf(pool_);
  std::vector<Ino> to_verify;
  auto* log = reinterpret_cast<uint64_t*>(pool_.PageAddress(sb->wmap_log_page));
  const bool overflow = pool_.Load64(&sb->wmap_log_overflow) != 0;
  if (overflow || program_timed_out) {
    for (const auto& [ino, record] : records_) {
      to_verify.push_back(ino);
    }
  }
  for (size_t i = 0; i < WmapSlots(pool_); ++i) {
    if (log[i] != kInvalidIno) {
      to_verify.push_back(log[i]);
    }
  }
  std::sort(to_verify.begin(), to_verify.end());
  to_verify.erase(std::unique(to_verify.begin(), to_verify.end()), to_verify.end());
  for (Ino ino : to_verify) {
    FileRecord* record = RecordOf(ino);
    if (record == nullptr) {
      continue;
    }
    VerifyRequest request;
    request.ino = ino;
    request.dirent = DirentOfLocked(*record);
    request.writer = kNoLibFs;
    const ShadowInode* shadow = ShadowInodeOf(pool_, ino);
    request.writer_uid = shadow != nullptr ? shadow->uid : 0;
    request.writer_gid = shadow != nullptr ? shadow->gid : 0;
    if (config_.verify_timeout_ms != 0) {
      request.deadline_ns = NowNs() + config_.verify_timeout_ms * 1000000ull;
    }
    Result<VerifyReport> report = verifier_->Verify(request);
    stats_.verifications.fetch_add(1, std::memory_order_relaxed);
    if (!report.ok() && report.status().Is(ErrorCode::kTimeout)) {
      stats_.verify_timeouts.fetch_add(1, std::memory_order_relaxed);
    }
    if (!report.ok()) {
      TRIO_LOG(kWarn) << "recovery: ino " << ino
                      << " failed verification: " << report.status().ToString()
                      << (ino != kRootIno ? "; removing"
                                          : "; root cannot be removed — left for fsck");
      if (ino != kRootIno) {
        DirentBlock* dirent = DirentOfLocked(*record);
        obs::PersistSpan(pool_, &persist_stats_).CommitStore64(&dirent->ino, kInvalidIno);
        ReclaimFileLocked(record);
      }
    }
  }

  // Phase 4: scrub orphaned shadow inodes. A crash between invalidating a dirent and
  // clearing its shadow inode (removal is two persists) leaves a live shadow no tree
  // entry references — exactly fsck's G6 orphan. Any live shadow without a record is one.
  for (Ino ino = kRootIno + 1; ino < sb->max_inodes; ++ino) {
    if (records_.count(ino) != 0) {
      continue;
    }
    ShadowInode* shadow = ShadowInodeOf(pool_, ino);
    if (shadow != nullptr && shadow->Exists()) {
      ShadowInode cleared{};
      pool_.Write(shadow, &cleared, sizeof(cleared));
      obs::PersistSpan(pool_, &persist_stats_).PersistNow(shadow, sizeof(cleared));
      TRIO_LOG(kInfo) << "recovery: cleared orphaned shadow inode " << ino;
    }
  }

  // All obligations discharged: retire the log.
  obs::PersistSpan span(pool_, &persist_stats_);
  for (size_t i = 0; i < WmapSlots(pool_); ++i) {
    if (log[i] != kInvalidIno) {
      span.CommitStore64(&log[i], kInvalidIno);
    }
  }
  if (overflow) {
    span.CommitStore64(&sb->wmap_log_overflow, 0);
  }
  needs_recovery_ = false;
  return OkStatus();
}

// ---------------------------------------------------------------------------
// LibFS lifecycle
// ---------------------------------------------------------------------------

LibFsId KernelController::RegisterLibFs(const LibFsOptions& options) {
  SyscallScope syscall(stats_, "RegisterLibFs");
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  const LibFsId id = next_libfs_id_++;
  auto record = std::make_unique<LibFsRecord>();
  record->id = id;
  record->uid = options.uid;
  record->gid = options.gid;
  record->callbacks = options.callbacks;
  libfses_[id] = std::move(record);
  // Every LibFS can read the superblock.
  mmu_.Grant(id, 0, PagePerm::kRead);
  return id;
}

void KernelController::UnregisterLibFs(LibFsId libfs) {
  SyscallScope syscall(stats_, "UnregisterLibFs");
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  auto it = libfses_.find(libfs);
  if (it == libfses_.end()) {
    return;
  }
  LibFsRecord* record = it->second.get();

  // Release read mappings.
  for (Ino ino : std::vector<Ino>(record->read_mapped.begin(), record->read_mapped.end())) {
    FileRecord* file = RecordOf(ino);
    if (file != nullptr) {
      file->readers.erase(libfs);
    }
  }
  record->read_mapped.clear();

  // Release write mappings: verify and reconcile each. Directories first: their
  // verification resolves renamed-in children (so a renamed file's record points at its
  // current dirent before the file is verified) and registers freshly created children as
  // implicit write grants — which is why this drains in rounds until nothing is left.
  while (!record->write_mapped.empty()) {
    std::vector<Ino> ordered;
    ordered.reserve(record->write_mapped.size());
    for (Ino ino : record->write_mapped) {
      const FileRecord* file = RecordOf(ino);
      if (file != nullptr && file->is_dir) {
        ordered.push_back(ino);
      }
    }
    for (Ino ino : record->write_mapped) {
      const FileRecord* file = RecordOf(ino);
      if (file == nullptr || !file->is_dir) {
        ordered.push_back(ino);
      }
    }
    for (Ino ino : ordered) {
      FileRecord* file = RecordOf(ino);
      if (file != nullptr && file->writer == libfs) {
        (void)VerifyAndReconcileLocked(lock, file);
        file = RecordOf(ino);
        if (file != nullptr) {
          file->writer = kNoLibFs;
          file->checkpoint.reset();
        }
        WmapLogRemove(ino);
      }
      record->write_mapped.erase(ino);
    }
  }
  ResolveOrphansLocked(record);

  // Return leases.
  for (PageNumber page : record->leased_pages) {
    page_states_.erase(page);
    free_pages_by_node_[pool_.NodeOfPage(page)].push_back(page);
  }
  for (Ino ino : record->leased_inos) {
    ino_states_.erase(ino);
    free_inos_.push_back(ino);
  }
  mmu_.RevokeAll(libfs);
  libfses_.erase(it);
}

// ---------------------------------------------------------------------------
// Resource leasing
// ---------------------------------------------------------------------------

Status KernelController::AllocPages(LibFsId libfs, size_t count, int node_hint,
                                    std::vector<PageNumber>* out) {
  SyscallScope syscall(stats_, "AllocPages");
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  auto it = libfses_.find(libfs);
  if (it == libfses_.end()) {
    return InvalidArgument("unknown LibFS");
  }
  LibFsRecord* record = it->second.get();
  const int nodes = static_cast<int>(free_pages_by_node_.size());
  const int node = node_hint >= 0 && node_hint < nodes ? node_hint : 0;
  std::vector<PageNumber> granted;
  granted.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    PageNumber page = kInvalidPage;
    for (int attempt = 0; attempt < nodes; ++attempt) {
      auto& free_list = free_pages_by_node_[(node + attempt) % nodes];
      if (!free_list.empty()) {
        page = free_list.back();
        free_list.pop_back();
        break;
      }
    }
    if (page == kInvalidPage) {
      // All-or-nothing: roll back what this call handed out.
      for (PageNumber p : granted) {
        record->leased_pages.erase(p);
        page_states_.erase(p);
        mmu_.Revoke(libfs, p);
        free_pages_by_node_[pool_.NodeOfPage(p)].push_back(p);
        stats_.pages_allocated.fetch_sub(1, std::memory_order_relaxed);
      }
      return NoSpace("out of NVM pages");
    }
    // Zero before leasing: a freed page must not leak another user's data.
    pool_.Set(pool_.PageAddress(page), 0, kPageSize);
    page_states_[page] = PageState{ResourceState::kLeased, libfs, kInvalidIno};
    record->leased_pages.insert(page);
    mmu_.Grant(libfs, page, PagePerm::kReadWrite);
    granted.push_back(page);
    stats_.pages_allocated.fetch_add(1, std::memory_order_relaxed);
  }
  out->insert(out->end(), granted.begin(), granted.end());
  return OkStatus();
}

Status KernelController::FreePages(LibFsId libfs, const std::vector<PageNumber>& pages) {
  SyscallScope syscall(stats_, "FreePages");
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  auto it = libfses_.find(libfs);
  if (it == libfses_.end()) {
    return InvalidArgument("unknown LibFS");
  }
  LibFsRecord* record = it->second.get();
  for (PageNumber page : pages) {
    auto state_it = page_states_.find(page);
    if (state_it == page_states_.end()) {
      return InvalidArgument("freeing a page that is not allocated");
    }
    PageState& state = state_it->second;
    if (state.state == ResourceState::kLeased && state.lessee == libfs) {
      record->leased_pages.erase(page);
    } else if (state.state == ResourceState::kOwned) {
      FileRecord* file = RecordOf(state.owner);
      if (file == nullptr || file->writer != libfs) {
        return PermissionDenied("freeing a page of a file not write-mapped by caller");
      }
      file->pages.erase(page);
    } else {
      return PermissionDenied("page not freeable by caller");
    }
    mmu_.Revoke(libfs, page);
    page_states_.erase(state_it);
    free_pages_by_node_[pool_.NodeOfPage(page)].push_back(page);
    stats_.pages_freed.fetch_add(1, std::memory_order_relaxed);
  }
  return OkStatus();
}

Result<Ino> KernelController::AllocIno(LibFsId libfs) {
  std::vector<Ino> out;
  TRIO_RETURN_IF_ERROR(AllocInos(libfs, 1, &out));
  return out[0];
}

Status KernelController::AllocInos(LibFsId libfs, size_t count, std::vector<Ino>* out) {
  SyscallScope syscall(stats_, "AllocInos");
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  auto it = libfses_.find(libfs);
  if (it == libfses_.end()) {
    return InvalidArgument("unknown LibFS");
  }
  std::vector<Ino> granted;
  granted.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Ino ino = kInvalidIno;
    if (!free_inos_.empty()) {
      ino = free_inos_.back();
      free_inos_.pop_back();
    } else if (next_ino_ < SuperblockOf(pool_)->max_inodes) {
      ino = next_ino_++;
    } else {
      for (Ino undo : granted) {
        ino_states_.erase(undo);
        it->second->leased_inos.erase(undo);
        free_inos_.push_back(undo);
      }
      return NoSpace("out of inode numbers");
    }
    ino_states_[ino] = InoState{ResourceState::kLeased, libfs, kInvalidIno};
    it->second->leased_inos.insert(ino);
    granted.push_back(ino);
  }
  out->insert(out->end(), granted.begin(), granted.end());
  return OkStatus();
}

Status KernelController::FreeIno(LibFsId libfs, Ino ino) {
  SyscallScope syscall(stats_, "FreeIno");
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  auto it = libfses_.find(libfs);
  if (it == libfses_.end()) {
    return InvalidArgument("unknown LibFS");
  }
  auto state_it = ino_states_.find(ino);
  if (state_it == ino_states_.end() || state_it->second.state != ResourceState::kLeased ||
      state_it->second.lessee != libfs) {
    return InvalidArgument("ino not leased to caller");
  }
  it->second->leased_inos.erase(ino);
  ino_states_.erase(state_it);
  free_inos_.push_back(ino);
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Permission changes
// ---------------------------------------------------------------------------

Status KernelController::Chmod(LibFsId libfs, Ino ino, uint32_t perm_bits) {
  SyscallScope syscall(stats_, "Chmod");
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  auto libfs_it = libfses_.find(libfs);
  if (libfs_it == libfses_.end()) {
    return InvalidArgument("unknown LibFS");
  }
  FileRecord* record = RecordOf(ino);
  ShadowInode* shadow = ShadowInodeOf(pool_, ino);
  if (record == nullptr || shadow == nullptr || !shadow->Exists()) {
    return NotFound("no such file");
  }
  if (libfs_it->second->uid != 0 && libfs_it->second->uid != shadow->uid) {
    return PermissionDenied("only the owner may chmod");
  }
  ShadowInode updated = *shadow;
  updated.mode = (updated.mode & kModeTypeMask) | (perm_bits & kModePermMask);
  obs::PersistSpan span(pool_, &persist_stats_);
  pool_.Write(shadow, &updated, sizeof(updated));
  span.PersistNow(shadow, sizeof(updated));
  // Refresh the cached copy in the dirent so I4 stays consistent.
  DirentBlock* dirent = DirentOfLocked(*record);
  pool_.Write(&dirent->mode, &updated.mode, sizeof(updated.mode));
  span.PersistNow(&dirent->mode, sizeof(updated.mode));
  return OkStatus();
}

Status KernelController::Chown(LibFsId libfs, Ino ino, uint32_t uid, uint32_t gid) {
  SyscallScope syscall(stats_, "Chown");
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  auto libfs_it = libfses_.find(libfs);
  if (libfs_it == libfses_.end()) {
    return InvalidArgument("unknown LibFS");
  }
  if (libfs_it->second->uid != 0) {
    return PermissionDenied("only root may chown");
  }
  FileRecord* record = RecordOf(ino);
  ShadowInode* shadow = ShadowInodeOf(pool_, ino);
  if (record == nullptr || shadow == nullptr || !shadow->Exists()) {
    return NotFound("no such file");
  }
  ShadowInode updated = *shadow;
  updated.uid = uid;
  updated.gid = gid;
  obs::PersistSpan span(pool_, &persist_stats_);
  pool_.Write(shadow, &updated, sizeof(updated));
  span.PersistNow(shadow, sizeof(updated));
  DirentBlock* dirent = DirentOfLocked(*record);
  pool_.Write(&dirent->uid, &updated.uid, sizeof(updated.uid));
  pool_.Write(&dirent->gid, &updated.gid, sizeof(updated.gid));
  span.PersistNow(&dirent->uid, sizeof(uint32_t) * 2);
  return OkStatus();
}

// ---------------------------------------------------------------------------
// OwnershipView / VerifyEnv
// ---------------------------------------------------------------------------

PageState KernelController::StateOfPage(PageNumber page) const {
  // mutex_ is recursive: the verifier calls this on the kernel's own thread mid-verify.
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  if (page < FileRegionStart(pool_)) {
    return PageState{ResourceState::kReserved, kNoLibFs, kInvalidIno};
  }
  auto it = page_states_.find(page);
  if (it == page_states_.end()) {
    return PageState{};
  }
  return it->second;
}

InoState KernelController::StateOfIno(Ino ino) const {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  auto it = ino_states_.find(ino);
  if (it == ino_states_.end()) {
    return InoState{};
  }
  return it->second;
}

Status KernelController::CheckRemovedChildDir(Ino child, LibFsId writer) const {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  const FileRecord* record = RecordOf(child);
  if (record == nullptr) {
    return OkStatus();  // Already reclaimed.
  }
  if ((record->writer != kNoLibFs && record->writer != writer) ||
      std::any_of(record->readers.begin(), record->readers.end(),
                  [&](LibFsId r) { return r != writer; })) {
    return Corrupted("I3: removed child directory still mapped by another LibFS");
  }
  Result<uint64_t> live = CountDirents(const_cast<NvmPool&>(pool_), record->first_index_page);
  if (!live.ok()) {
    return live.status();
  }
  if (*live != 0) {
    return Corrupted("I3: removed child directory is not empty");
  }
  return OkStatus();
}

bool KernelController::IsMovePermitted(Ino child, Ino new_parent, LibFsId writer) const {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  const FileRecord* record = RecordOf(child);
  if (record == nullptr) {
    return false;
  }
  auto libfs_it = libfses_.find(writer);
  if (libfs_it != libfses_.end() &&
      libfs_it->second->pending_orphans.count(child) != 0) {
    return true;
  }
  const FileRecord* old_parent = RecordOf(record->parent);
  return old_parent != nullptr && old_parent->writer == writer;
}

// ---------------------------------------------------------------------------
// Write-map log (crash recovery, §4.4)
// ---------------------------------------------------------------------------

void KernelController::WmapLogAdd(Ino ino) {
  auto* log = reinterpret_cast<uint64_t*>(pool_.PageAddress(SuperblockOf(pool_)->wmap_log_page));
  const size_t slots = WmapSlots(pool_);
  for (size_t i = 0; i < slots; ++i) {
    if (pool_.Load64(&log[i]) == ino) {
      return;
    }
  }
  for (size_t i = 0; i < slots; ++i) {
    if (pool_.Load64(&log[i]) == kInvalidIno) {
      obs::PersistSpan(pool_, &persist_stats_).CommitStore64(&log[i], ino);
      return;
    }
  }
  // Log full: fall back to verify-everything-at-recovery semantics.
  Superblock* sb = SuperblockOf(pool_);
  if (pool_.Load64(&sb->wmap_log_overflow) == 0) {
    obs::PersistSpan(pool_, &persist_stats_).CommitStore64(&sb->wmap_log_overflow, 1);
    TRIO_LOG(kInfo) << "write-map log full; recovery will verify the full tree";
  }
}

void KernelController::WmapLogRemove(Ino ino) {
  auto* log = reinterpret_cast<uint64_t*>(pool_.PageAddress(SuperblockOf(pool_)->wmap_log_page));
  for (size_t i = 0; i < WmapSlots(pool_); ++i) {
    if (pool_.Load64(&log[i]) == ino) {
      obs::PersistSpan(pool_, &persist_stats_).CommitStore64(&log[i], kInvalidIno);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Inspection helpers
// ---------------------------------------------------------------------------

size_t KernelController::FreePageCount() const {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& list : free_pages_by_node_) {
    total += list.size();
  }
  return total;
}

bool KernelController::IsWriteMapped(Ino ino) const {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  const FileRecord* record = RecordOf(ino);
  return record != nullptr && record->writer != kNoLibFs;
}

Result<Ino> KernelController::ParentOf(Ino ino) const {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  const FileRecord* record = RecordOf(ino);
  if (record == nullptr) {
    return NotFound("no such file");
  }
  return record->parent;
}

}  // namespace trio
