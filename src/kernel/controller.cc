// KernelController lifecycle, mount/recovery, resource leasing, permission changes, the
// write-map log, ownership views, and the shard plumbing (shard index map, busy-waiters,
// the striped page-ownership table). The implementation is split across three translation
// units behind the single KernelController class:
//   controller.cc        — this file
//   controller_map.cc    — map/unmap/sharing, grant cache, and lease revocation
//   controller_verify.cc — verify/reconcile, checkpoint/rollback, quarantine, reclaim
// Every LibFS-callable entry point opens a SyscallScope (see syscall_boundary.h).
//
// Locking: see the hierarchy in controller.h. Shard mutexes are PLAIN mutexes; the
// verifier and every LibFS callback run with no shard held (in-flight verifications pin
// their record with FileRecord::busy instead), so there is no reentrancy to forgive.

#include "src/kernel/controller.h"

#include <algorithm>

#include "src/kernel/controller_internal.h"
#include "src/kernel/digestion.h"
#include "src/kernel/syscall_boundary.h"
#include "src/obs/persist_span.h"
#include "src/sim/backend.h"

namespace trio {

using controller_internal::PackStateLessee;
using controller_internal::UnpackStateLessee;
using controller_internal::WmapSlots;

thread_local uint64_t ShardRank::held_mask_ = 0;

// ---------------------------------------------------------------------------
// PageOwnershipTable
// ---------------------------------------------------------------------------

void PageOwnershipTable::Reset(size_t stripes, size_t cache_slots) {
  size_t cap = 1;
  while (cap < stripes) {
    cap <<= 1;
  }
  stripes_.clear();
  stripes_.reserve(cap);
  for (size_t i = 0; i < cap; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
  stripe_mask_ = cap - 1;
  cache_.Reset(cache_slots);
}

PageState PageOwnershipTable::Get(PageNumber page) const {
  uint64_t w[2];
  if (cache_.Lookup(page, w)) {
    PageState state;
    UnpackStateLessee(w[0], &state.state, &state.lessee);
    state.owner = w[1];
    return state;
  }
  const Stripe& stripe = *stripes_[StripeIndexOf(page)];
  std::lock_guard<std::mutex> guard(stripe.mu);
  auto it = stripe.map.find(page);
  const PageState state = it == stripe.map.end() ? PageState{} : it->second;
  // Populate under the stripe lock ("free" caches too): the write-through rule keeps the
  // cache coherent because every mutation of this stripe also stores before unlocking.
  const uint64_t words[2] = {PackStateLessee(state.state, state.lessee), state.owner};
  cache_.Store(page, words);
  return state;
}

void PageOwnershipTable::Set(PageNumber page, const PageState& state) {
  Stripe& stripe = *stripes_[StripeIndexOf(page)];
  std::lock_guard<std::mutex> guard(stripe.mu);
  stripe.map[page] = state;
  const uint64_t words[2] = {PackStateLessee(state.state, state.lessee), state.owner};
  cache_.Store(page, words);
}

void PageOwnershipTable::Erase(PageNumber page) {
  Stripe& stripe = *stripes_[StripeIndexOf(page)];
  std::lock_guard<std::mutex> guard(stripe.mu);
  stripe.map.erase(page);
  const uint64_t words[2] = {PackStateLessee(ResourceState::kFree, kNoLibFs), kInvalidIno};
  cache_.Store(page, words);
}

bool PageOwnershipTable::Contains(PageNumber page) const {
  const Stripe& stripe = *stripes_[StripeIndexOf(page)];
  std::lock_guard<std::mutex> guard(stripe.mu);
  return stripe.map.count(page) != 0;
}

bool PageOwnershipTable::EraseIfLeasedBy(PageNumber page, LibFsId libfs) {
  Stripe& stripe = *stripes_[StripeIndexOf(page)];
  std::lock_guard<std::mutex> guard(stripe.mu);
  auto it = stripe.map.find(page);
  if (it == stripe.map.end() || it->second.state != ResourceState::kLeased ||
      it->second.lessee != libfs) {
    return false;
  }
  stripe.map.erase(it);
  const uint64_t words[2] = {PackStateLessee(ResourceState::kFree, kNoLibFs), kInvalidIno};
  cache_.Store(page, words);
  return true;
}

void PageOwnershipTable::Clear() {
  for (auto& stripe : stripes_) {
    std::lock_guard<std::mutex> guard(stripe->mu);
    stripe->map.clear();
  }
  cache_.Clear();
}

// ---------------------------------------------------------------------------
// Construction / shard plumbing
// ---------------------------------------------------------------------------

KernelController::KernelController(NvmPool& pool, KernelConfig config, Clock* clock)
    : pool_(pool), config_(config), clock_(clock) {
  size_t shards = std::max<size_t>(1, std::min(config_.controller_shards,
                                               ShardRank::kMaxShards));
  size_t cap = 1;
  while (cap < shards) {
    cap <<= 1;
  }
  shards_.reserve(cap);
  for (size_t i = 0; i < cap; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = cap - 1;
  const size_t cache_slots = config_.lockfree_lookup ? config_.ownership_cache_slots : 0;
  page_table_.Reset(cap, cache_slots);
  ino_cache_.Reset(cache_slots);
  grant_cache_.Reset(cache_slots);
  verifier_ = std::make_unique<IntegrityVerifier>(pool_, *this, *this, clock_);
  if (config_.start_delegation) {
    StartDelegation();
  }
  // Digestion starts at Mount(), not here: its occupancy/cold scans read state the
  // mount rescan builds (file_region_pages_, the record tables).
}

KernelController::~KernelController() {
  digestion_.reset();  // Stop the migration thread before any state it walks goes away.
  delegation_.reset();
}

void KernelController::StartDelegation() {
  if (delegation_ == nullptr) {
    delegation_ = std::make_unique<DelegationPool>(pool_, config_.delegation);
  }
}

KernelController::FileRecord* KernelController::WaitNotBusyLocked(
    Shard& shard, std::unique_lock<std::mutex>& lk, Ino ino) {
  for (;;) {
    FileRecord* record = FindRecordLocked(shard, ino);
    if (record == nullptr || !record->busy) {
      return record;
    }
    shard.cv.wait(lk);
  }
}

std::shared_ptr<KernelController::LibFsRecord> KernelController::FindLibFs(
    LibFsId id) const {
  std::lock_guard<std::mutex> guard(registry_mu_);
  auto it = libfses_.find(id);
  return it == libfses_.end() ? nullptr : it->second;
}

std::vector<ShardMutex*> KernelController::ShardMutexesFor(
    const std::vector<size_t>& indices) const {
  std::vector<ShardMutex*> mutexes;
  mutexes.reserve(indices.size());
  for (size_t i : indices) {
    mutexes.push_back(&shards_[i]->mu);
  }
  return mutexes;
}

std::vector<size_t> KernelController::AllShardIndices() const {
  std::vector<size_t> indices(shards_.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    indices[i] = i;
  }
  return indices;
}

void KernelController::SetInoStateLocked(Shard& shard, Ino ino, const InoState& state) {
  shard.ino_states[ino] = state;
  const uint64_t words[2] = {PackStateLessee(state.state, state.lessee), state.parent};
  ino_cache_.Store(ino, words);
}

void KernelController::EraseInoStateLocked(Shard& shard, Ino ino) {
  shard.ino_states.erase(ino);
  const uint64_t words[2] = {PackStateLessee(ResourceState::kFree, kNoLibFs), kInvalidIno};
  ino_cache_.Store(ino, words);
}

void KernelController::ReleasePageToFree(PageNumber page) {
  page_table_.Erase(page);
  std::lock_guard<std::mutex> guard(alloc_mu_);
  free_pages_by_node_[pool_.NodeOfPage(page)].push_back(page);
}

// ---------------------------------------------------------------------------
// Mount / unmount / recovery
// ---------------------------------------------------------------------------

Status KernelController::Mount() {
  TRIO_RETURN_IF_ERROR(CheckSuperblock(pool_));
  // Acquire-all: mount rebuilds every table, so it is the one operation that freezes the
  // whole controller (ascending order, like every multi-shard acquire).
  const std::vector<size_t> all = AllShardIndices();
  OrderedShardSpan span(ShardMutexesFor(all), all);
  Superblock* sb = SuperblockOf(pool_);
  needs_recovery_ = sb->clean_shutdown == 0;
  file_region_pages_ = sb->total_pages - sb->file_region_page;
  if (config_.tier.backend != nullptr) {
    // The backend owner table is auxiliary state too: forget it and re-adopt every slot
    // the tree rescan finds referenced by a tier entry.
    config_.tier.backend->BeginRebuild();
  }

  for (auto& shard : shards_) {
    shard->records.clear();
    shard->ino_states.clear();
  }
  page_table_.Clear();
  ino_cache_.Clear();
  grant_cache_.Clear();
  {
    std::lock_guard<std::mutex> guard(alloc_mu_);
    free_pages_by_node_.assign(pool_.topology().num_nodes, {});
    free_inos_.clear();
    next_ino_ = kRootIno + 1;
  }

  // The ownership tables are auxiliary state (§3.2): rebuild them by walking the core
  // state from the root.
  std::unordered_set<PageNumber> seen_pages;
  std::unordered_set<Ino> seen_inos;
  Status scan = ScanTreeLocked(kRootIno, kInvalidIno, /*dirent_page=*/0, /*dirent_slot=*/0,
                               sb->root, &seen_pages, &seen_inos);
  if (!scan.ok()) {
    TRIO_LOG(kWarn) << "mount scan found damage: " << scan.ToString();
  }

  // Everything in the file region not owned by a file is free.
  {
    std::lock_guard<std::mutex> guard(alloc_mu_);
    for (PageNumber p = sb->file_region_page; p < sb->total_pages; ++p) {
      if (seen_pages.count(p) == 0) {
        free_pages_by_node_[pool_.NodeOfPage(p)].push_back(p);
      }
    }
  }

  // We are live: a crash from here on is unclean until Unmount().
  const uint64_t live = 0;
  pool_.Write(&sb->clean_shutdown, &live, sizeof(live));
  obs::PersistSpan(pool_, &persist_stats_).PersistNow(&sb->clean_shutdown, sizeof(live));
  mounted_ = true;
  if (config_.tier.backend != nullptr && config_.tier.start_digestion) {
    StartDigestion();  // Only now: the scans above built the state digestion walks.
  }
  return OkStatus();
}

Status KernelController::ScanTreeLocked(Ino ino, Ino parent, PageNumber dirent_page,
                                        size_t dirent_slot, const DirentBlock& dirent,
                                        std::unordered_set<PageNumber>* seen_pages,
                                        std::unordered_set<Ino>* seen_inos) {
  if (!seen_inos->insert(ino).second) {
    return Corrupted("inode appears twice in tree");
  }
  FileRecord record;
  record.ino = ino;
  record.parent = parent;
  record.is_dir = dirent.IsDirectory();
  record.dirent_page = dirent_page;
  record.dirent_slot = dirent_slot;
  record.first_index_page = dirent.first_index_page;

  // Claim this file's pages; tolerate damage by stopping at the first bad page.
  Status walk = ForEachIndexPage(pool_, dirent.first_index_page, [&](PageNumber p) -> Status {
    if (!seen_pages->insert(p).second) {
      return Corrupted("index page claimed twice");
    }
    record.pages.insert(p);
    return OkStatus();
  });
  if (walk.ok()) {
    walk = ForEachDataEntry(pool_, dirent.first_index_page,
                            [&](uint64_t, uint64_t entry) -> Status {
                              if (IsTierEntry(entry)) {
                                if (record.is_dir) {
                                  return Corrupted("tier entry inside a directory chain");
                                }
                                if (config_.tier.backend == nullptr) {
                                  return Corrupted("tier entry with no backend configured");
                                }
                                const uint64_t slot = TierSlotOfEntry(entry);
                                TRIO_RETURN_IF_ERROR(config_.tier.backend->Adopt(slot, ino));
                                record.backend_slots.insert(slot);
                                return OkStatus();
                              }
                              if (!seen_pages->insert(entry).second) {
                                return Corrupted("data page claimed twice");
                              }
                              record.pages.insert(entry);
                              return OkStatus();
                            });
  }

  for (PageNumber p : record.pages) {
    page_table_.Set(p, PageState{ResourceState::kOwned, kNoLibFs, ino});
  }
  SetInoStateLocked(ShardOf(ino), ino, InoState{ResourceState::kOwned, kNoLibFs, parent});
  {
    std::lock_guard<std::mutex> guard(alloc_mu_);
    if (ino >= next_ino_) {
      next_ino_ = ino + 1;
    }
  }

  // Adopt files that were created but never reconciled before a crash: give them a shadow
  // inode matching their dirent (the recovery verify pass re-checks structure).
  ShadowInode* shadow = ShadowInodeOf(pool_, ino);
  if (shadow != nullptr && !shadow->Exists()) {
    ShadowInode fresh{dirent.mode, dirent.uid, dirent.gid, 1};
    pool_.Write(shadow, &fresh, sizeof(fresh));
    obs::PersistSpan(pool_, &persist_stats_).PersistNow(shadow, sizeof(fresh));
  }

  Status children_status = OkStatus();
  if (record.is_dir && walk.ok()) {
    children_status = ForEachDirent(
        pool_, dirent.first_index_page,
        [&](DirentBlock* child, PageNumber page, size_t slot) -> Status {
          if (seen_inos->count(child->ino) != 0) {
            // Torn rename can leave the same ino under two names; keep the first, let the
            // LibFS recovery program resolve the journal.
            TRIO_LOG(kWarn) << "mount: duplicate ino " << child->ino << " skipped";
            return OkStatus();
          }
          Status s = ScanTreeLocked(child->ino, ino, page, slot, *child, seen_pages,
                                    seen_inos);
          if (!s.ok()) {
            TRIO_LOG(kWarn) << "mount: subtree of ino " << child->ino
                            << " damaged: " << s.ToString();
          }
          return OkStatus();
        });
  }

  ShardOf(ino).records[ino] = std::move(record);
  if (!walk.ok()) {
    return walk;
  }
  return children_status;
}

Status KernelController::Unmount() {
  {
    std::lock_guard<std::mutex> guard(registry_mu_);
    if (!libfses_.empty()) {
      return Busy("LibFSes still registered");
    }
  }
  Superblock* sb = SuperblockOf(pool_);
  const uint64_t clean = 1;
  pool_.Write(&sb->clean_shutdown, &clean, sizeof(clean));
  obs::PersistSpan(pool_, &persist_stats_).PersistNow(&sb->clean_shutdown, sizeof(clean));
  mounted_ = false;
  return OkStatus();
}

Status KernelController::RunRecovery() {
  // Phase 1: untrusted LibFS recovery programs (journal undo). No controller locks: the
  // programs may call back into any syscall.
  std::vector<std::function<void()>> programs;
  {
    std::lock_guard<std::mutex> guard(registry_mu_);
    for (auto& [id, libfs] : libfses_) {
      if (libfs->callbacks.recovery) {
        programs.push_back(libfs->callbacks.recovery);
      }
    }
  }
  bool program_timed_out = false;
  for (auto& program : programs) {
    if (config_.guard_callbacks) {
      // Recovery programs are arbitrary user code; one that never returns must not wedge
      // recovery for everyone. On timeout the program's journal state is unknown, so
      // coverage escalates below to verifying every file, not just the logged ones.
      if (!callback_guard_.Run(config_.recovery_timeout_ms, program)) {
        stats_.callback_timeouts.fetch_add(1, std::memory_order_relaxed);
        program_timed_out = true;
        TRIO_LOG(kWarn) << "recovery: a LibFS recovery program overran "
                        << config_.recovery_timeout_ms
                        << "ms and was abandoned; escalating to full-tree verification";
      }
    } else {
      program();
    }
  }

  // Phase 2: the recovery programs may have moved dirents around; rebuild the tables.
  TRIO_RETURN_IF_ERROR(Mount());

  // Phase 3: verify every file that was write-mapped when the crash happened (§4.4).
  // If the write-map log overflowed before the crash (or a recovery program hung),
  // coverage is unknown: verify the whole tree instead (an online fsck over every record).
  //
  // Idempotence: the log slots and the overflow flag are cleared only AFTER every
  // verification (and any resulting removal) has been persisted. A crash anywhere during
  // recovery leaves the obligations on media, so a second RunRecovery redoes them and
  // converges — verification is read-only and removal of an already-removed file is a
  // no-op.
  Superblock* sb = SuperblockOf(pool_);
  std::vector<Ino> to_verify;
  auto* log = reinterpret_cast<uint64_t*>(pool_.PageAddress(sb->wmap_log_page));
  const bool overflow = pool_.Load64(&sb->wmap_log_overflow) != 0;
  if (overflow || program_timed_out) {
    for (size_t si = 0; si < shards_.size(); ++si) {
      ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
      for (const auto& [ino, record] : shards_[si]->records) {
        to_verify.push_back(ino);
      }
    }
  }
  for (size_t i = 0; i < WmapSlots(pool_); ++i) {
    if (log[i] != kInvalidIno) {
      to_verify.push_back(log[i]);
    }
  }
  std::sort(to_verify.begin(), to_verify.end());
  to_verify.erase(std::unique(to_verify.begin(), to_verify.end()), to_verify.end());
  for (Ino ino : to_verify) {
    const size_t si = ShardIndexOf(ino);
    VerifyRequest request;
    {
      ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
      FileRecord* record = WaitNotBusyLocked(*shards_[si], sl.lock(), ino);
      if (record == nullptr) {
        continue;
      }
      record->busy = true;  // Pin across the (lock-free) verification below.
      request.ino = ino;
      request.dirent = DirentOfLocked(*record);
      request.writer = kNoLibFs;
      const ShadowInode* shadow = ShadowInodeOf(pool_, ino);
      request.writer_uid = shadow != nullptr ? shadow->uid : 0;
      request.writer_gid = shadow != nullptr ? shadow->gid : 0;
      if (config_.verify_timeout_ms != 0) {
        request.deadline_ns = NowNs() + config_.verify_timeout_ms * 1000000ull;
      }
    }
    Result<VerifyReport> report = verifier_->Verify(request);
    stats_.verifications.fetch_add(1, std::memory_order_relaxed);
    if (!report.ok() && report.status().Is(ErrorCode::kTimeout)) {
      stats_.verify_timeouts.fetch_add(1, std::memory_order_relaxed);
    }
    {
      ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
      FileRecord* record = FindRecordLocked(*shards_[si], ino);
      if (record != nullptr) {
        record->busy = false;
        if (!report.ok() && ino != kRootIno) {
          DirentBlock* dirent = DirentOfLocked(*record);
          obs::PersistSpan(pool_, &persist_stats_).CommitStore64(&dirent->ino, kInvalidIno);
        }
      }
      shards_[si]->cv.notify_all();
    }
    if (!report.ok()) {
      TRIO_LOG(kWarn) << "recovery: ino " << ino
                      << " failed verification: " << report.status().ToString()
                      << (ino != kRootIno ? "; removing"
                                          : "; root cannot be removed — left for fsck");
      if (ino != kRootIno) {
        ReclaimTree(ino);
      }
    }
  }

  // Phase 4: scrub orphaned shadow inodes. A crash between invalidating a dirent and
  // clearing its shadow inode (removal is two persists) leaves a live shadow no tree
  // entry references — exactly fsck's G6 orphan. Any live shadow without a record is one.
  for (Ino ino = kRootIno + 1; ino < sb->max_inodes; ++ino) {
    bool known;
    {
      const size_t si = ShardIndexOf(ino);
      ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
      known = shards_[si]->records.count(ino) != 0;
    }
    if (known) {
      continue;
    }
    ShadowInode* shadow = ShadowInodeOf(pool_, ino);
    if (shadow != nullptr && shadow->Exists()) {
      ShadowInode cleared{};
      pool_.Write(shadow, &cleared, sizeof(cleared));
      obs::PersistSpan(pool_, &persist_stats_).PersistNow(shadow, sizeof(cleared));
      TRIO_LOG(kInfo) << "recovery: cleared orphaned shadow inode " << ino;
    }
  }

  // All obligations discharged: retire the log.
  {
    std::lock_guard<std::mutex> guard(wmap_mu_);
    obs::PersistSpan span(pool_, &persist_stats_);
    for (size_t i = 0; i < WmapSlots(pool_); ++i) {
      if (log[i] != kInvalidIno) {
        span.CommitStore64(&log[i], kInvalidIno);
      }
    }
    if (overflow) {
      span.CommitStore64(&sb->wmap_log_overflow, 0);
    }
  }
  needs_recovery_ = false;
  return OkStatus();
}

// ---------------------------------------------------------------------------
// LibFS lifecycle
// ---------------------------------------------------------------------------

LibFsId KernelController::RegisterLibFs(const LibFsOptions& options) {
  SyscallScope syscall(stats_, "RegisterLibFs");
  auto record = std::make_shared<LibFsRecord>();
  record->uid = options.uid;
  record->gid = options.gid;
  record->callbacks = options.callbacks;
  LibFsId id;
  {
    std::lock_guard<std::mutex> guard(registry_mu_);
    id = next_libfs_id_++;
    record->id = id;
    libfses_[id] = std::move(record);
  }
  // Every LibFS can read the superblock.
  mmu_.Grant(id, 0, PagePerm::kRead);
  return id;
}

void KernelController::UnregisterLibFs(LibFsId libfs) {
  SyscallScope syscall(stats_, "UnregisterLibFs");
  std::shared_ptr<LibFsRecord> me = FindLibFs(libfs);
  if (me == nullptr) {
    return;
  }

  // Release read mappings (page permissions fall with RevokeAll below).
  std::vector<Ino> reads;
  {
    std::lock_guard<std::mutex> guard(me->mu);
    reads.assign(me->read_mapped.begin(), me->read_mapped.end());
    me->read_mapped.clear();
  }
  for (Ino ino : reads) {
    const size_t si = ShardIndexOf(ino);
    ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
    FileRecord* file = FindRecordLocked(*shards_[si], ino);
    if (file != nullptr) {
      file->readers.erase(libfs);
    }
    grant_cache_.Erase(ino);
  }

  // Release write mappings: verify and reconcile each. Directories first: their
  // verification resolves renamed-in children (so a renamed file's record points at its
  // current dirent before the file is verified) and registers freshly created children as
  // implicit write grants — which is why this drains in rounds until nothing is left.
  for (;;) {
    std::vector<Ino> snapshot;
    {
      std::lock_guard<std::mutex> guard(me->mu);
      snapshot.assign(me->write_mapped.begin(), me->write_mapped.end());
    }
    if (snapshot.empty()) {
      break;
    }
    std::stable_partition(snapshot.begin(), snapshot.end(), [&](Ino ino) {
      const size_t si = ShardIndexOf(ino);
      ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
      const FileRecord* file = FindRecordLocked(*shards_[si], ino);
      return file != nullptr && file->is_dir;
    });
    for (Ino ino : snapshot) {
      bool is_writer = false;
      {
        const size_t si = ShardIndexOf(ino);
        ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
        FileRecord* file = WaitNotBusyLocked(*shards_[si], sl.lock(), ino);
        if (file != nullptr && file->writer == libfs) {
          file->busy = true;
          is_writer = true;
        }
      }
      if (is_writer) {
        (void)VerifyAndReconcile(ino);
        FinishWriteRelease(libfs, ino, me);
      } else {
        std::lock_guard<std::mutex> guard(me->mu);
        me->write_mapped.erase(ino);
      }
    }
  }
  ResolveOrphans(me);

  // Return leases.
  std::vector<PageNumber> leased_pages;
  std::vector<Ino> leased_inos;
  {
    std::lock_guard<std::mutex> guard(me->mu);
    leased_pages.assign(me->leased_pages.begin(), me->leased_pages.end());
    leased_inos.assign(me->leased_inos.begin(), me->leased_inos.end());
    me->leased_pages.clear();
    me->leased_inos.clear();
  }
  for (PageNumber page : leased_pages) {
    ReleasePageToFree(page);
  }
  for (Ino ino : leased_inos) {
    {
      const size_t si = ShardIndexOf(ino);
      ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
      EraseInoStateLocked(*shards_[si], ino);
    }
    std::lock_guard<std::mutex> guard(alloc_mu_);
    free_inos_.push_back(ino);
  }
  mmu_.RevokeAll(libfs);
  {
    std::lock_guard<std::mutex> guard(registry_mu_);
    libfses_.erase(libfs);
  }
}

// ---------------------------------------------------------------------------
// Resource leasing
// ---------------------------------------------------------------------------

Status KernelController::AllocPages(LibFsId libfs, size_t count, int node_hint,
                                    std::vector<PageNumber>* out) {
  SyscallScope syscall(stats_, "AllocPages");
  std::shared_ptr<LibFsRecord> me = FindLibFs(libfs);
  if (me == nullptr) {
    return InvalidArgument("unknown LibFS");
  }
  std::vector<PageNumber> granted;
  granted.reserve(count);
  auto pop_page = [&]() -> PageNumber {
    std::lock_guard<std::mutex> guard(alloc_mu_);
    const int nodes = static_cast<int>(free_pages_by_node_.size());
    const int node = node_hint >= 0 && node_hint < nodes ? node_hint : 0;
    for (int attempt = 0; attempt < nodes; ++attempt) {
      auto& free_list = free_pages_by_node_[(node + attempt) % nodes];
      if (!free_list.empty()) {
        const PageNumber page = free_list.back();
        free_list.pop_back();
        return page;
      }
    }
    return kInvalidPage;
  };
  for (size_t i = 0; i < count; ++i) {
    PageNumber page = pop_page();
    if (page == kInvalidPage && config_.tier.backend != nullptr) {
      // NVM exhausted: the absorb tier digests synchronously (a watermark stall — the
      // background thread fell behind) and the allocation retries once.
      tier_stats_.watermark_stalls.fetch_add(1, std::memory_order_relaxed);
      if (DigestNow(std::max(count, config_.tier.batch_pages)) > 0) {
        page = pop_page();
      }
    }
    if (page == kInvalidPage) {
      // All-or-nothing: roll back what this call handed out.
      for (PageNumber p : granted) {
        {
          std::lock_guard<std::mutex> guard(me->mu);
          me->leased_pages.erase(p);
        }
        mmu_.Revoke(libfs, p, PagePerm::kReadWrite);
        ReleasePageToFree(p);
        stats_.pages_allocated.fetch_sub(1, std::memory_order_relaxed);
      }
      return NoSpace("out of NVM pages");
    }
    // Zero before leasing: a freed page must not leak another user's data.
    pool_.Set(pool_.PageAddress(page), 0, kPageSize);
    page_table_.Set(page, PageState{ResourceState::kLeased, libfs, kInvalidIno});
    {
      std::lock_guard<std::mutex> guard(me->mu);
      me->leased_pages.insert(page);
    }
    mmu_.Grant(libfs, page, PagePerm::kReadWrite);
    granted.push_back(page);
    stats_.pages_allocated.fetch_add(1, std::memory_order_relaxed);
  }
  out->insert(out->end(), granted.begin(), granted.end());
  return OkStatus();
}

Status KernelController::FreePages(LibFsId libfs, const std::vector<PageNumber>& pages) {
  SyscallScope syscall(stats_, "FreePages");
  std::shared_ptr<LibFsRecord> me = FindLibFs(libfs);
  if (me == nullptr) {
    return InvalidArgument("unknown LibFS");
  }
  for (PageNumber page : pages) {
    const PageState state = page_table_.Get(page);
    if (state.state == ResourceState::kLeased && state.lessee == libfs) {
      if (!page_table_.EraseIfLeasedBy(page, libfs)) {
        return InvalidArgument("freeing a page that is not allocated");
      }
      {
        std::lock_guard<std::mutex> guard(me->mu);
        me->leased_pages.erase(page);
      }
      mmu_.Revoke(libfs, page, PagePerm::kReadWrite);
      {
        std::lock_guard<std::mutex> guard(alloc_mu_);
        free_pages_by_node_[pool_.NodeOfPage(page)].push_back(page);
      }
      stats_.pages_freed.fetch_add(1, std::memory_order_relaxed);
    } else if (state.state == ResourceState::kOwned) {
      // The page belongs to a file: only its current writer may free it. Lock the owning
      // file's shard and re-validate (ownership may have moved while unlocked).
      const size_t si = ShardIndexOf(state.owner);
      ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
      FileRecord* file = WaitNotBusyLocked(*shards_[si], sl.lock(), state.owner);
      const PageState now = page_table_.Get(page);
      if (file == nullptr || now.state != ResourceState::kOwned ||
          now.owner != state.owner) {
        return PermissionDenied("page not freeable by caller");
      }
      if (file->writer != libfs) {
        return PermissionDenied("freeing a page of a file not write-mapped by caller");
      }
      file->pages.erase(page);
      mmu_.Revoke(libfs, page, PagePerm::kReadWrite);
      ReleasePageToFree(page);
      stats_.pages_freed.fetch_add(1, std::memory_order_relaxed);
    } else if (state.state == ResourceState::kFree) {
      return InvalidArgument("freeing a page that is not allocated");
    } else {
      return PermissionDenied("page not freeable by caller");
    }
  }
  return OkStatus();
}

Result<Ino> KernelController::AllocIno(LibFsId libfs) {
  std::vector<Ino> out;
  TRIO_RETURN_IF_ERROR(AllocInos(libfs, 1, &out));
  return out[0];
}

Status KernelController::AllocInos(LibFsId libfs, size_t count, std::vector<Ino>* out) {
  SyscallScope syscall(stats_, "AllocInos");
  std::shared_ptr<LibFsRecord> me = FindLibFs(libfs);
  if (me == nullptr) {
    return InvalidArgument("unknown LibFS");
  }
  std::vector<Ino> granted;
  granted.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Ino ino = kInvalidIno;
    {
      std::lock_guard<std::mutex> guard(alloc_mu_);
      if (!free_inos_.empty()) {
        ino = free_inos_.back();
        free_inos_.pop_back();
      } else if (next_ino_ < SuperblockOf(pool_)->max_inodes) {
        ino = next_ino_++;
      }
    }
    if (ino == kInvalidIno) {
      for (Ino undo : granted) {
        {
          const size_t si = ShardIndexOf(undo);
          ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
          EraseInoStateLocked(*shards_[si], undo);
        }
        {
          std::lock_guard<std::mutex> guard(me->mu);
          me->leased_inos.erase(undo);
        }
        std::lock_guard<std::mutex> guard(alloc_mu_);
        free_inos_.push_back(undo);
      }
      return NoSpace("out of inode numbers");
    }
    {
      const size_t si = ShardIndexOf(ino);
      ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
      SetInoStateLocked(*shards_[si], ino,
                        InoState{ResourceState::kLeased, libfs, kInvalidIno});
    }
    {
      std::lock_guard<std::mutex> guard(me->mu);
      me->leased_inos.insert(ino);
    }
    granted.push_back(ino);
  }
  out->insert(out->end(), granted.begin(), granted.end());
  return OkStatus();
}

Status KernelController::FreeIno(LibFsId libfs, Ino ino) {
  SyscallScope syscall(stats_, "FreeIno");
  std::shared_ptr<LibFsRecord> me = FindLibFs(libfs);
  if (me == nullptr) {
    return InvalidArgument("unknown LibFS");
  }
  {
    const size_t si = ShardIndexOf(ino);
    ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
    auto it = shards_[si]->ino_states.find(ino);
    if (it == shards_[si]->ino_states.end() ||
        it->second.state != ResourceState::kLeased || it->second.lessee != libfs) {
      return InvalidArgument("ino not leased to caller");
    }
    EraseInoStateLocked(*shards_[si], ino);
  }
  {
    std::lock_guard<std::mutex> guard(me->mu);
    me->leased_inos.erase(ino);
  }
  std::lock_guard<std::mutex> guard(alloc_mu_);
  free_inos_.push_back(ino);
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Permission changes
// ---------------------------------------------------------------------------

Status KernelController::Chmod(LibFsId libfs, Ino ino, uint32_t perm_bits) {
  SyscallScope syscall(stats_, "Chmod");
  std::shared_ptr<LibFsRecord> me = FindLibFs(libfs);
  if (me == nullptr) {
    return InvalidArgument("unknown LibFS");
  }
  const size_t si = ShardIndexOf(ino);
  ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
  FileRecord* record = FindRecordLocked(*shards_[si], ino);
  ShadowInode* shadow = ShadowInodeOf(pool_, ino);
  if (record == nullptr || shadow == nullptr || !shadow->Exists()) {
    return NotFound("no such file");
  }
  if (me->uid != 0 && me->uid != shadow->uid) {
    return PermissionDenied("only the owner may chmod");
  }
  ShadowInode updated = *shadow;
  updated.mode = (updated.mode & kModeTypeMask) | (perm_bits & kModePermMask);
  obs::PersistSpan span(pool_, &persist_stats_);
  pool_.Write(shadow, &updated, sizeof(updated));
  span.PersistNow(shadow, sizeof(updated));
  // Refresh the cached copy in the dirent so I4 stays consistent.
  DirentBlock* dirent = DirentOfLocked(*record);
  pool_.Write(&dirent->mode, &updated.mode, sizeof(updated.mode));
  span.PersistNow(&dirent->mode, sizeof(updated.mode));
  // Cached grants were issued under the old mode; force the next lookup through the
  // slow path's AccessAllowed check.
  grant_cache_.Erase(ino);
  return OkStatus();
}

Status KernelController::Chown(LibFsId libfs, Ino ino, uint32_t uid, uint32_t gid) {
  SyscallScope syscall(stats_, "Chown");
  std::shared_ptr<LibFsRecord> me = FindLibFs(libfs);
  if (me == nullptr) {
    return InvalidArgument("unknown LibFS");
  }
  if (me->uid != 0) {
    return PermissionDenied("only root may chown");
  }
  const size_t si = ShardIndexOf(ino);
  ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
  FileRecord* record = FindRecordLocked(*shards_[si], ino);
  ShadowInode* shadow = ShadowInodeOf(pool_, ino);
  if (record == nullptr || shadow == nullptr || !shadow->Exists()) {
    return NotFound("no such file");
  }
  ShadowInode updated = *shadow;
  updated.uid = uid;
  updated.gid = gid;
  obs::PersistSpan span(pool_, &persist_stats_);
  pool_.Write(shadow, &updated, sizeof(updated));
  span.PersistNow(shadow, sizeof(updated));
  DirentBlock* dirent = DirentOfLocked(*record);
  pool_.Write(&dirent->uid, &updated.uid, sizeof(updated.uid));
  pool_.Write(&dirent->gid, &updated.gid, sizeof(updated.gid));
  span.PersistNow(&dirent->uid, sizeof(uint32_t) * 2);
  grant_cache_.Erase(ino);
  return OkStatus();
}

// ---------------------------------------------------------------------------
// OwnershipView / VerifyEnv
// ---------------------------------------------------------------------------

PageState KernelController::StateOfPage(PageNumber page) const {
  // Lock-free when the page cache hits; one stripe mutex otherwise. The verifier calls
  // this mid-verify from a thread that holds NO shard lock (the busy protocol), so there
  // is no reentrancy here any more — just an ordinary leaf-level read.
  if (page < FileRegionStart(pool_)) {
    return PageState{ResourceState::kReserved, kNoLibFs, kInvalidIno};
  }
  return page_table_.Get(page);
}

InoState KernelController::StateOfIno(Ino ino) const {
  uint64_t w[2];
  if (ino_cache_.Lookup(ino, w)) {
    InoState state;
    UnpackStateLessee(w[0], &state.state, &state.lessee);
    state.parent = w[1];
    return state;
  }
  const size_t si = ShardIndexOf(ino);
  ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
  auto it = shards_[si]->ino_states.find(ino);
  const InoState state = it == shards_[si]->ino_states.end() ? InoState{} : it->second;
  const uint64_t words[2] = {PackStateLessee(state.state, state.lessee), state.parent};
  ino_cache_.Store(ino, words);
  return state;
}

Status KernelController::CheckRemovedChildDir(Ino child, LibFsId writer) const {
  const size_t si = ShardIndexOf(child);
  ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
  const FileRecord* record = FindRecordLocked(*shards_[si], child);
  if (record == nullptr) {
    return OkStatus();  // Already reclaimed.
  }
  if ((record->writer != kNoLibFs && record->writer != writer) ||
      std::any_of(record->readers.begin(), record->readers.end(),
                  [&](LibFsId r) { return r != writer; })) {
    return Corrupted("I3: removed child directory still mapped by another LibFS");
  }
  Result<uint64_t> live = CountDirents(const_cast<NvmPool&>(pool_), record->first_index_page);
  if (!live.ok()) {
    return live.status();
  }
  if (*live != 0) {
    return Corrupted("I3: removed child directory is not empty");
  }
  return OkStatus();
}

bool KernelController::IsMovePermitted(Ino child, Ino new_parent, LibFsId writer) const {
  (void)new_parent;
  std::shared_ptr<LibFsRecord> me = FindLibFs(writer);
  if (me != nullptr) {
    std::lock_guard<std::mutex> guard(me->mu);
    if (me->pending_orphans.count(child) != 0) {
      return true;
    }
  }
  // Two-phase cross-shard read: discover the old parent under the child's shard, then
  // take {child, old parent} in ascending order and re-validate the edge (a concurrent
  // rename may have moved the child between the phases).
  for (;;) {
    Ino parent = kInvalidIno;
    {
      const size_t si = ShardIndexOf(child);
      ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
      const FileRecord* record = FindRecordLocked(*shards_[si], child);
      if (record == nullptr) {
        return false;
      }
      parent = record->parent;
    }
    if (parent == kInvalidIno) {
      return false;  // The root does not move.
    }
    const std::vector<size_t> set =
        SortedShardSet({ShardIndexOf(child), ShardIndexOf(parent)});
    if (set.size() > 1) {
      stats_.cross_shard_acquires.fetch_add(1, std::memory_order_relaxed);
    }
    OrderedShardSpan span(ShardMutexesFor(set), set);
    const FileRecord* record = FindRecordLocked(ShardOf(child), child);
    if (record == nullptr) {
      return false;
    }
    if (record->parent != parent) {
      continue;  // Raced a rename; rediscover the parent.
    }
    const FileRecord* old_parent = FindRecordLocked(ShardOf(parent), parent);
    return old_parent != nullptr && old_parent->writer == writer;
  }
}

// ---------------------------------------------------------------------------
// Write-map log (crash recovery, §4.4)
// ---------------------------------------------------------------------------

void KernelController::WmapLogAdd(Ino ino) {
  std::lock_guard<std::mutex> guard(wmap_mu_);
  auto* log = reinterpret_cast<uint64_t*>(pool_.PageAddress(SuperblockOf(pool_)->wmap_log_page));
  const size_t slots = WmapSlots(pool_);
  for (size_t i = 0; i < slots; ++i) {
    if (pool_.Load64(&log[i]) == ino) {
      return;
    }
  }
  for (size_t i = 0; i < slots; ++i) {
    if (pool_.Load64(&log[i]) == kInvalidIno) {
      obs::PersistSpan(pool_, &persist_stats_).CommitStore64(&log[i], ino);
      return;
    }
  }
  // Log full: fall back to verify-everything-at-recovery semantics.
  Superblock* sb = SuperblockOf(pool_);
  if (pool_.Load64(&sb->wmap_log_overflow) == 0) {
    obs::PersistSpan(pool_, &persist_stats_).CommitStore64(&sb->wmap_log_overflow, 1);
    TRIO_LOG(kInfo) << "write-map log full; recovery will verify the full tree";
  }
}

void KernelController::WmapLogRemove(Ino ino) {
  std::lock_guard<std::mutex> guard(wmap_mu_);
  auto* log = reinterpret_cast<uint64_t*>(pool_.PageAddress(SuperblockOf(pool_)->wmap_log_page));
  for (size_t i = 0; i < WmapSlots(pool_); ++i) {
    if (pool_.Load64(&log[i]) == ino) {
      obs::PersistSpan(pool_, &persist_stats_).CommitStore64(&log[i], kInvalidIno);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Inspection helpers
// ---------------------------------------------------------------------------

size_t KernelController::FreePageCount() const {
  std::lock_guard<std::mutex> guard(alloc_mu_);
  size_t total = 0;
  for (const auto& list : free_pages_by_node_) {
    total += list.size();
  }
  return total;
}

bool KernelController::IsWriteMapped(Ino ino) const {
  const size_t si = ShardIndexOf(ino);
  ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
  const FileRecord* record = FindRecordLocked(*shards_[si], ino);
  return record != nullptr && record->writer != kNoLibFs;
}

Result<Ino> KernelController::ParentOf(Ino ino) const {
  const size_t si = ShardIndexOf(ino);
  ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
  const FileRecord* record = FindRecordLocked(*shards_[si], ino);
  if (record == nullptr) {
    return NotFound("no such file");
  }
  return record->parent;
}

}  // namespace trio
