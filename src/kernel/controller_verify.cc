// KernelController verification and safety: CommitFile, verify-and-reconcile on unmap,
// report application (page/ino reconciliation, new children, renames, deletions),
// checkpointing, quarantine, and rollback. Part of the KernelController split; see
// controller.cc for the TU map.
//
// Verification runs with NO shard lock held: the caller pins the record with
// FileRecord::busy under its shard lock, releases the lock, verifies, then applies the
// report under the two-phase cross-shard span. The busy pin keeps release/reclaim/grant
// paths off the record (they wait on the shard cv), which is what the recursive mutex
// used to paper over by letting the verifier re-enter the controller on the same thread.

#include "src/kernel/controller.h"

#include <algorithm>
#include <cstring>

#include "src/kernel/controller_internal.h"
#include "src/kernel/syscall_boundary.h"
#include "src/obs/persist_span.h"
#include "src/sim/backend.h"

namespace trio {

namespace {

// Absolute verifier deadline for one verification pass, from the config budget.
uint64_t VerifyDeadline(const KernelConfig& config, uint64_t now_ns) {
  return config.verify_timeout_ms == 0 ? 0 : now_ns + config.verify_timeout_ms * 1000000ull;
}

}  // namespace

Status KernelController::CommitFile(LibFsId libfs, Ino ino) {
  SyscallScope syscall(stats_, "CommitFile");
  std::shared_ptr<LibFsRecord> me = FindLibFs(libfs);
  if (me == nullptr) {
    return InvalidArgument("unknown LibFS");
  }
  const size_t si = ShardIndexOf(ino);
  VerifyRequest request;
  std::vector<CheckpointChild> checkpoint_children;
  {
    ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
    FileRecord* record = WaitNotBusyLocked(*shards_[si], sl.lock(), ino);
    if (record == nullptr || record->writer != libfs) {
      return InvalidArgument("file not write-mapped by caller");
    }
    record->busy = true;
    request.ino = ino;
    request.dirent = DirentOfLocked(*record);
    request.writer = libfs;
    request.writer_uid = me->uid;
    request.writer_gid = me->gid;
    if (record->checkpoint != nullptr) {
      checkpoint_children = record->checkpoint->children;
      request.checkpoint_children = &checkpoint_children;
    }
  }

  // Verify the current state without the corruption-handling fallback: a failed commit
  // simply leaves the old checkpoint in force (§4.3).
  ShardRank::AssertNoneHeld();
  const uint64_t v0 = NowNs();
  request.deadline_ns = VerifyDeadline(config_, v0);
  Result<VerifyReport> report = verifier_->Verify(request);
  stats_.verifications.fetch_add(1, std::memory_order_relaxed);
  stats_.verify_ns.fetch_add(NowNs() - v0, std::memory_order_relaxed);

  Status result = OkStatus();
  if (!report.ok()) {
    stats_.verify_failures.fetch_add(1, std::memory_order_relaxed);
    if (report.status().Is(ErrorCode::kTimeout)) {
      stats_.verify_timeouts.fetch_add(1, std::memory_order_relaxed);
    }
    result = report.status();
  } else {
    result = ApplyReport(ino, *report);
  }

  ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
  FileRecord* record = FindRecordLocked(*shards_[si], ino);
  if (record != nullptr) {
    if (result.ok()) {
      result = TakeCheckpointLocked(record);
    }
    record->busy = false;
  }
  shards_[si]->cv.notify_all();
  return result;
}

Status KernelController::VerifyAndReconcile(Ino ino) {
  const size_t si = ShardIndexOf(ino);
  VerifyRequest request;
  std::vector<CheckpointChild> checkpoint_children;
  LibFsId writer = kNoLibFs;
  {
    ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
    FileRecord* record = FindRecordLocked(*shards_[si], ino);
    if (record == nullptr) {
      return Internal("record vanished under busy pin");
    }
    writer = record->writer;
    request.ino = ino;
    request.dirent = DirentOfLocked(*record);
    request.writer = writer;
    if (record->checkpoint != nullptr) {
      checkpoint_children = record->checkpoint->children;
      request.checkpoint_children = &checkpoint_children;
    }
  }
  std::shared_ptr<LibFsRecord> me = FindLibFs(writer);
  if (me == nullptr) {
    return Internal("writer vanished");
  }
  request.writer_uid = me->uid;
  request.writer_gid = me->gid;

  ShardRank::AssertNoneHeld();
  const uint64_t v0 = NowNs();
  request.deadline_ns = VerifyDeadline(config_, v0);
  Result<VerifyReport> report = verifier_->Verify(request);
  stats_.verifications.fetch_add(1, std::memory_order_relaxed);
  stats_.verify_ns.fetch_add(NowNs() - v0, std::memory_order_relaxed);
  if (report.ok()) {
    return ApplyReport(ino, *report);
  }

  stats_.verify_failures.fetch_add(1, std::memory_order_relaxed);
  Status failure = report.status();
  TRIO_LOG(kInfo) << "verification failed for ino " << ino << ": " << failure.ToString();

  // §4.3: "ArckFS notifies LibFS A to fix the corruption with a timeout." The callback
  // runs with no locks held (ShardRank would abort otherwise); the busy pin keeps the
  // record stable underneath it.
  auto fix = me->callbacks.fix_corruption;
  if (fix) {
    const uint64_t deadline = NowNs() + config_.fix_timeout_ms * 1000000ull;
    bool claims_fixed = false;
    if (config_.guard_callbacks) {
      // fix_timeout_ms is a real deadline, not an honor-system check: the callback runs
      // on a watchdog thread and a hang is abandoned, escalating to rollback below. The
      // result lives in a shared_ptr because an abandoned callback may write it late.
      auto claimed = std::make_shared<std::atomic<bool>>(false);
      const bool completed =
          callback_guard_.Run(config_.fix_timeout_ms, [fix, ino, failure, claimed] {
            claimed->store(fix(ino, failure), std::memory_order_release);
          });
      if (!completed) {
        stats_.callback_timeouts.fetch_add(1, std::memory_order_relaxed);
        TRIO_LOG(kWarn) << "fix_corruption for ino " << ino
                        << " hung past fix_timeout_ms; rolling back to checkpoint";
      }
      claims_fixed = completed && claimed->load(std::memory_order_acquire);
    } else {
      claims_fixed = fix(ino, failure);
    }
    if (claims_fixed && NowNs() <= deadline) {
      {
        // Re-read the dirent location: a concurrent parent reconcile may have moved it.
        ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
        FileRecord* record = FindRecordLocked(*shards_[si], ino);
        if (record == nullptr) {
          return failure;
        }
        request.dirent = DirentOfLocked(*record);
      }
      request.deadline_ns = VerifyDeadline(config_, NowNs());
      Result<VerifyReport> retry = verifier_->Verify(request);
      stats_.verifications.fetch_add(1, std::memory_order_relaxed);
      if (retry.ok()) {
        stats_.corruptions_fixed_by_libfs.fetch_add(1, std::memory_order_relaxed);
        return ApplyReport(ino, *retry);
      }
      failure = retry.status();
    }
  }

  // Quarantine the corrupted image for the offender, then roll back to the checkpoint.
  // A verification that overran its deadline lands here too: the state is UNVERIFIED,
  // which the kernel must treat exactly like corruption rather than accept unchecked.
  if (failure.Is(ErrorCode::kTimeout)) {
    stats_.verify_timeouts.fetch_add(1, std::memory_order_relaxed);
  }
  {
    ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
    FileRecord* record = FindRecordLocked(*shards_[si], ino);
    if (record != nullptr) {
      QuarantineLocked(record, failure);
      RollbackToCheckpointLocked(record);
      grant_cache_.Erase(ino);
    }
  }
  stats_.corruptions_rolled_back.fetch_add(1, std::memory_order_relaxed);

  // Tell the offender its file was impounded so it drops cached mappings. Untrusted code:
  // bounded by the watchdog, and run outside every lock.
  auto notify = me->callbacks.quarantined;
  if (notify) {
    ShardRank::AssertNoneHeld();
    if (config_.guard_callbacks) {
      if (!callback_guard_.Run(config_.fix_timeout_ms,
                               [notify, ino, failure] { notify(ino, failure); })) {
        stats_.callback_timeouts.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      notify(ino, failure);
    }
  }
  return failure;
}

Status KernelController::ApplyReport(Ino ino, const VerifyReport& report) {
  // Phase one of the cross-shard protocol: collect every shard the report touches —
  // the verified file plus each named child (new, renamed in, or removed).
  std::vector<size_t> indices{ShardIndexOf(ino)};
  for (const NewChildInfo& child : report.new_children) {
    indices.push_back(ShardIndexOf(child.ino));
  }
  for (const MovedInChild& moved : report.moved_in) {
    indices.push_back(ShardIndexOf(moved.ino));
  }
  for (Ino removed : report.removed_children) {
    indices.push_back(ShardIndexOf(removed));
  }
  const std::vector<size_t> set = SortedShardSet(std::move(indices));
  if (set.size() > 1) {
    stats_.cross_shard_acquires.fetch_add(1, std::memory_order_relaxed);
  }
  // Reclaims are deferred past the span: ReclaimTree takes shard locks itself.
  std::vector<Ino> reclaim;
  {
    OrderedShardSpan span(ShardMutexesFor(set), set, &stats_.shard_lock_contended);
    FileRecord* record = FindRecordLocked(ShardOf(ino), ino);
    if (record == nullptr) {
      return Internal("record vanished under busy pin");
    }
    const LibFsId writer_id = record->writer;
    std::shared_ptr<LibFsRecord> writer =
        writer_id != kNoLibFs ? FindLibFs(writer_id) : nullptr;

    // Pages: adopt newly referenced leased pages, free no-longer-referenced owned pages.
    std::unordered_set<PageNumber> new_pages(report.pages.begin(), report.pages.end());
    for (PageNumber page : record->pages) {
      if (new_pages.count(page) != 0) {
        continue;
      }
      // Dropped from the file (truncate / shrink): back to the free pool.
      if (writer_id != kNoLibFs) {
        mmu_.Revoke(writer_id, page, PagePerm::kReadWrite);
      }
      ReleasePageToFree(page);
      stats_.pages_freed.fetch_add(1, std::memory_order_relaxed);
    }
    for (PageNumber page : new_pages) {
      const PageState state = page_table_.Get(page);
      if (state.state == ResourceState::kLeased) {
        if (writer != nullptr) {
          std::lock_guard<std::mutex> guard(writer->mu);
          writer->leased_pages.erase(page);
        }
        page_table_.Set(page, PageState{ResourceState::kOwned, kNoLibFs, ino});
      }
    }
    record->pages = std::move(new_pages);
    record->first_index_page = DirentOfLocked(*record)->first_index_page;

    // Backend slots reconcile exactly like pages: slots no longer referenced by a tier
    // entry (the writer truncated or overwrote a digested page) are freed on the backend.
    // A writer cannot *mint* slots — CheckTierSlot already rejected any slot the backend
    // does not record as owned by this file — so the report's set is always a subset of
    // union(record set, adopted-at-mount set).
    {
      std::unordered_set<uint64_t> new_slots(report.backend_slots.begin(),
                                             report.backend_slots.end());
      SlowBackend* backend = config_.tier.backend;
      for (uint64_t slot : record->backend_slots) {
        if (new_slots.count(slot) != 0 || backend == nullptr) {
          continue;
        }
        (void)backend->Free(slot, ino);
        tier_stats_.backend_slots_freed.fetch_add(1, std::memory_order_relaxed);
      }
      record->backend_slots = std::move(new_slots);
    }

    // TEST ONLY (see KernelConfig::canary_leak_on_contended_transfer): on a transfer
    // that raced a lease revocation, leak one still-referenced page back onto the free
    // list. A later allocation hands it to another tenant => durable cross-file double
    // reference, which only fsck after a crash sees (the online verifier checks one file
    // at a time). The schedule explorer exists to find exactly this class of bug.
    if (config_.canary_leak_on_contended_transfer &&
        contended_transfer_depth_.load(std::memory_order_relaxed) > 0 &&
        !record->pages.empty()) {
      const PageNumber leaked =
          *std::max_element(record->pages.begin(), record->pages.end());
      std::lock_guard<std::mutex> guard(alloc_mu_);
      free_pages_by_node_[pool_.NodeOfPage(leaked)].push_back(leaked);
    }

    // Fresh children become live files with shadow inodes and an implicit write grant to
    // their creator (their own pages reconcile at their own first verification).
    for (const NewChildInfo& child : report.new_children) {
      if (writer != nullptr) {
        std::lock_guard<std::mutex> guard(writer->mu);
        writer->leased_inos.erase(child.ino);
      }
      Shard& child_shard = ShardOf(child.ino);
      SetInoStateLocked(child_shard, child.ino,
                        InoState{ResourceState::kOwned, kNoLibFs, ino});

      FileRecord fresh;
      fresh.ino = child.ino;
      fresh.parent = ino;
      fresh.is_dir = child.is_dir;
      fresh.dirent_page = child.dirent_page;
      fresh.dirent_slot = child.dirent_slot;
      fresh.first_index_page = child.first_index_page;

      ShadowInode shadow{child.mode, child.uid, child.gid, 1};
      ShadowInode* slot = ShadowInodeOf(pool_, child.ino);
      pool_.Write(slot, &shadow, sizeof(shadow));
      obs::PersistSpan(pool_, &persist_stats_).PersistNow(slot, sizeof(shadow));

      if (writer_id != kNoLibFs) {
        fresh.writer = writer_id;
        fresh.lease_deadline_ns = NowNs() + config_.lease_ms * 1000000ull;
        if (writer != nullptr) {
          std::lock_guard<std::mutex> guard(writer->mu);
          writer->write_mapped.insert(child.ino);
        }
        WmapLogAdd(child.ino);
        // The implicit write grant's dirent-page reference: the child's co-located inode
        // lives in a page the writer already maps through the parent, and the child's
        // own teardown will release one RW dirent reference — without this matching
        // grant it would consume the parent mapping's reference (refcounted MMU).
        if (child.dirent_page != 0) {
          mmu_.Grant(writer_id, child.dirent_page, PagePerm::kReadWrite);
        }
      }
      auto [it, inserted] = child_shard.records.emplace(child.ino, std::move(fresh));
      if (inserted && it->second.writer != kNoLibFs) {
        (void)TakeCheckpointLocked(&it->second);
        PublishGrantLocked(it->second, writer_id, /*writable=*/true);
      }
    }

    // Renames into this directory.
    for (const MovedInChild& moved : report.moved_in) {
      Shard& child_shard = ShardOf(moved.ino);
      FileRecord* child = FindRecordLocked(child_shard, moved.ino);
      if (child == nullptr) {
        continue;
      }
      // The co-located inode moved to a new parent data page: every holder's MMU
      // reference on the old dirent page must move with it, or the old page keeps a
      // stale justification and the new one underflows at unmap.
      if (child->dirent_page != moved.dirent_page) {
        if (child->writer != kNoLibFs) {
          if (child->dirent_page != 0) {
            mmu_.Revoke(child->writer, child->dirent_page, PagePerm::kReadWrite);
          }
          if (moved.dirent_page != 0) {
            mmu_.Grant(child->writer, moved.dirent_page, PagePerm::kReadWrite);
          }
        }
        for (LibFsId reader : child->readers) {
          if (child->dirent_page != 0) {
            mmu_.Revoke(reader, child->dirent_page, PagePerm::kRead);
          }
          if (moved.dirent_page != 0) {
            mmu_.Grant(reader, moved.dirent_page, PagePerm::kRead);
          }
        }
      }
      child->parent = ino;
      child->dirent_page = moved.dirent_page;
      child->dirent_slot = moved.dirent_slot;
      auto state_it = child_shard.ino_states.find(moved.ino);
      InoState state = state_it != child_shard.ino_states.end() ? state_it->second
                                                                : InoState{};
      state.parent = ino;
      SetInoStateLocked(child_shard, moved.ino, state);
      grant_cache_.Erase(moved.ino);  // Cached dirent location went stale.
      if (writer != nullptr) {
        std::lock_guard<std::mutex> guard(writer->mu);
        writer->pending_orphans.erase(moved.ino);
      }
    }

    // Children that vanished: deleted, or renamed to a directory we have not verified
    // yet.
    for (Ino removed : report.removed_children) {
      Shard& child_shard = ShardOf(removed);
      auto state_it = child_shard.ino_states.find(removed);
      if (state_it == child_shard.ino_states.end() || state_it->second.parent != ino) {
        continue;  // Already moved elsewhere or reclaimed.
      }
      if (writer != nullptr) {
        std::lock_guard<std::mutex> guard(writer->mu);
        writer->pending_orphans.insert(removed);
      } else if (FindRecordLocked(child_shard, removed) != nullptr) {
        reclaim.push_back(removed);
      }
    }
  }  // span released

  for (Ino r : reclaim) {
    ReclaimTree(r);
  }
  return OkStatus();
}

void KernelController::ResolveOrphans(const std::shared_ptr<LibFsRecord>& libfs) {
  // Anything still orphaned when the writer's session quiesces was deleted, not renamed.
  std::vector<Ino> orphans;
  {
    std::lock_guard<std::mutex> guard(libfs->mu);
    orphans.assign(libfs->pending_orphans.begin(), libfs->pending_orphans.end());
    libfs->pending_orphans.clear();
  }
  for (Ino ino : orphans) {
    bool reclaim = false;
    {
      const size_t si = ShardIndexOf(ino);
      ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
      auto state_it = shards_[si]->ino_states.find(ino);
      // Still owned with the stale parent: a deletion. Directories were checked empty by
      // I3 at parent-verify time.
      reclaim = FindRecordLocked(*shards_[si], ino) != nullptr &&
                state_it != shards_[si]->ino_states.end() &&
                state_it->second.state == ResourceState::kOwned;
    }
    if (reclaim) {
      ReclaimTree(ino);
    }
  }
}

void KernelController::ReclaimTree(Ino root) {
  // Collect the subtree breadth-first (mass deletion by page rewrite is legal
  // tombstoning), scanning one shard at a time, then reclaim leaf-first.
  std::vector<Ino> order{root};
  for (size_t i = 0; i < order.size(); ++i) {
    const Ino cur = order[i];
    for (size_t si = 0; si < shards_.size(); ++si) {
      ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
      for (const auto& [child_ino, child] : shards_[si]->records) {
        if (child.parent == cur && child_ino != cur) {
          order.push_back(child_ino);
        }
      }
    }
  }
  for (size_t i = order.size(); i-- > 0;) {
    ReclaimOne(order[i]);
  }
}

void KernelController::ReclaimOne(Ino ino) {
  std::vector<PageNumber> pages;
  std::vector<uint64_t> backend_slots;
  {
    const size_t si = ShardIndexOf(ino);
    ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
    FileRecord* record = WaitNotBusyLocked(*shards_[si], sl.lock(), ino);
    if (record == nullptr) {
      return;
    }
    pages.assign(record->pages.begin(), record->pages.end());
    backend_slots.assign(record->backend_slots.begin(), record->backend_slots.end());
    shards_[si]->records.erase(ino);
    EraseInoStateLocked(*shards_[si], ino);
    grant_cache_.Erase(ino);
  }
  for (PageNumber page : pages) {
    ReleasePageToFree(page);
    stats_.pages_freed.fetch_add(1, std::memory_order_relaxed);
  }
  if (config_.tier.backend != nullptr) {
    for (uint64_t slot : backend_slots) {
      (void)config_.tier.backend->Free(slot, ino);
      tier_stats_.backend_slots_freed.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ShadowInode* shadow = ShadowInodeOf(pool_, ino);
  if (shadow != nullptr) {
    ShadowInode cleared{};
    pool_.Write(shadow, &cleared, sizeof(cleared));
    obs::PersistSpan(pool_, &persist_stats_).PersistNow(shadow, sizeof(cleared));
  }
  WmapLogRemove(ino);
  // The ino returns to the free pool LAST: nothing above may observe it re-leased while
  // its old record is still being torn down.
  std::lock_guard<std::mutex> guard(alloc_mu_);
  free_inos_.push_back(ino);
}

Status KernelController::TakeCheckpointLocked(FileRecord* record) {
  auto checkpoint = std::make_unique<FileCheckpointData>();
  checkpoint->meta = *DirentOfLocked(*record);

  auto copy_page = [&](PageNumber page) {
    checkpoint->pages.push_back(page);
    auto content = std::make_unique<char[]>(kPageSize);
    std::memcpy(content.get(), pool_.PageAddress(page), kPageSize);
    checkpoint->contents.push_back(std::move(content));
  };

  // §4.3: checkpoint the file's metadata — index pages for a regular file; both index and
  // data pages for a directory (directory data pages *are* metadata).
  const PageNumber first = checkpoint->meta.first_index_page;
  TRIO_RETURN_IF_ERROR(ForEachIndexPage(pool_, first, [&](PageNumber page) -> Status {
    copy_page(page);
    return OkStatus();
  }));
  if (record->is_dir) {
    TRIO_RETURN_IF_ERROR(
        ForEachDataPage(pool_, first, [&](uint64_t, PageNumber page) -> Status {
          copy_page(page);
          return OkStatus();
        }));
    TRIO_RETURN_IF_ERROR(ForEachDirent(pool_, first,
                                       [&](DirentBlock* child, PageNumber, size_t) -> Status {
                                         checkpoint->children.push_back(CheckpointChild{
                                             child->ino, child->IsDirectory()});
                                         return OkStatus();
                                       }));
  }
  record->checkpoint = std::move(checkpoint);
  return OkStatus();
}

void KernelController::QuarantineLocked(FileRecord* record, const Status& reason) {
  std::lock_guard<std::mutex> guard(quarantine_mu_);
  QuarantineEntry entry;
  entry.offender = record->writer;
  entry.error = reason;
  entry.sequence = ++quarantine_sequence_;
  for (PageNumber page : record->pages) {
    std::vector<char> image(kPageSize);
    std::memcpy(image.data(), pool_.PageAddress(page), kPageSize);
    entry.images.push_back(std::move(image));
  }
  quarantine_fifo_.emplace_back(entry.sequence, record->ino);
  quarantine_[record->ino] = std::move(entry);
  stats_.files_quarantined.fetch_add(1, std::memory_order_relaxed);

  // Bound kernel memory: an adversary corrupting file after file must not grow the
  // quarantine without limit. Evict oldest-first off the sequence-ordered FIFO —
  // O(1) amortized, where the old whole-map min-scan was O(n) per insert (O(n²) for a
  // corruption storm, a kernel-side DoS amplifier). Entries whose sequence no longer
  // matches the map (retrieved, or re-quarantined with a newer image) are stale; skip
  // them lazily.
  while (config_.max_quarantined_files != 0 &&
         quarantine_.size() > config_.max_quarantined_files &&
         !quarantine_fifo_.empty()) {
    const auto [sequence, ino] = quarantine_fifo_.front();
    quarantine_fifo_.pop_front();
    auto it = quarantine_.find(ino);
    if (it == quarantine_.end() || it->second.sequence != sequence) {
      continue;  // Stale FIFO entry.
    }
    quarantine_.erase(it);
    stats_.quarantine_evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<std::vector<char>> KernelController::RetrieveQuarantine(LibFsId libfs, Ino ino) {
  SyscallScope syscall(stats_, "RetrieveQuarantine");
  std::lock_guard<std::mutex> guard(quarantine_mu_);
  auto it = quarantine_.find(ino);
  if (it == quarantine_.end() || it->second.offender != libfs) {
    return {};
  }
  std::vector<std::vector<char>> images = std::move(it->second.images);
  quarantine_.erase(it);  // The FIFO entry goes stale and is skipped at eviction time.
  return images;
}

Status KernelController::QuarantineErrorOf(Ino ino) const {
  std::lock_guard<std::mutex> guard(quarantine_mu_);
  auto it = quarantine_.find(ino);
  if (it == quarantine_.end()) {
    return NotFound("ino not quarantined");
  }
  return it->second.error;
}

size_t KernelController::QuarantineCount() const {
  std::lock_guard<std::mutex> guard(quarantine_mu_);
  return quarantine_.size();
}

void KernelController::RollbackToCheckpointLocked(FileRecord* record) {
  FileCheckpointData* checkpoint = record->checkpoint.get();
  DirentBlock* dirent = DirentOfLocked(*record);
  // One span for the whole rollback protocol: page restores batch under a single fence,
  // metadata and scrub writes each fence at their original points.
  obs::PersistSpan span(pool_, &persist_stats_);
  if (checkpoint == nullptr) {
    // A brand-new file with no checkpoint: the safe state is "empty". (Residual MMU
    // references on the freed pages intentionally persist until the holder unregisters —
    // matching the pre-shard behavior the attack tests pin down.)
    DirentBlock cleared = *dirent;
    cleared.first_index_page = 0;
    cleared.size = 0;
    pool_.Write(dirent, &cleared, sizeof(cleared));
    span.PersistNow(dirent, sizeof(cleared));
    record->first_index_page = 0;
    for (PageNumber page : record->pages) {
      ReleasePageToFree(page);
    }
    record->pages.clear();
    return;
  }

  // Restore checkpointed page images where the page still belongs to this file.
  for (size_t i = 0; i < checkpoint->pages.size(); ++i) {
    const PageNumber page = checkpoint->pages[i];
    const PageState state = page_table_.Get(page);
    if (state.state == ResourceState::kOwned && state.owner == record->ino) {
      pool_.Write(pool_.PageAddress(page), checkpoint->contents[i].get(), kPageSize);
      span.Persist(pool_.PageAddress(page), kPageSize);
    }
  }
  span.ForceFence();

  // Restore the metadata (the dirent+inode block). Size mismatches against surviving data
  // resolve as holes, which read back as zeros ("trimming or padding zero bits", §4.3).
  pool_.Write(dirent, &checkpoint->meta, sizeof(checkpoint->meta));
  span.PersistNow(dirent, sizeof(checkpoint->meta));
  record->first_index_page = checkpoint->meta.first_index_page;

  // Scrub: drop index entries that reference pages this file no longer owns, and rebuild
  // the owned-page set from the restored chain.
  std::unordered_set<PageNumber> restored;
  Status scrub = ForEachIndexPage(pool_, record->first_index_page, [&](PageNumber p) -> Status {
    const PageState state = page_table_.Get(p);
    if (state.state != ResourceState::kOwned || state.owner != record->ino) {
      return Corrupted("restored chain broken");
    }
    restored.insert(p);
    auto* index = reinterpret_cast<IndexPage*>(pool_.PageAddress(p));
    for (size_t i = 0; i < kIndexEntriesPerPage; ++i) {
      const PageNumber entry = index->entries[i];
      if (entry == 0) {
        continue;
      }
      if (IsTierEntry(entry)) {
        // A restored tier entry is legitimate iff its slot is still recorded for this
        // file (digestion never touches write-mapped files, so the recorded set is
        // stable across the whole write session). Anything else — a forged or stale
        // digested-page mapping the writer smuggled in — scrubs to a hole.
        if (record->backend_slots.count(TierSlotOfEntry(entry)) == 0) {
          span.CommitStore64(&index->entries[i], 0);
        }
        continue;
      }
      const PageState entry_state = page_table_.Get(entry);
      const bool owned = entry_state.state == ResourceState::kOwned &&
                         entry_state.owner == record->ino;
      if (!owned) {
        span.CommitStore64(&index->entries[i], 0);
      } else {
        restored.insert(entry);
      }
    }
    return OkStatus();
  });
  if (!scrub.ok()) {
    // The chain head itself was lost; fall back to an empty file.
    DirentBlock cleared = checkpoint->meta;
    cleared.first_index_page = 0;
    cleared.size = 0;
    pool_.Write(dirent, &cleared, sizeof(cleared));
    span.PersistNow(dirent, sizeof(cleared));
    record->first_index_page = 0;
    restored.clear();
  }

  // Pages that were owned but are no longer reachable go back to the free pool.
  for (PageNumber page : record->pages) {
    if (restored.count(page) != 0) {
      continue;
    }
    if (record->writer != kNoLibFs) {
      mmu_.Revoke(record->writer, page, PagePerm::kReadWrite);
    }
    ReleasePageToFree(page);
  }
  record->pages = std::move(restored);
}

}  // namespace trio
