// KernelController verification and safety: CommitFile, verify-and-reconcile on unmap,
// report application (page/ino reconciliation, new children, renames, deletions),
// checkpointing, quarantine, and rollback. Part of the KernelController split; see
// controller.cc for the TU map.

#include "src/kernel/controller.h"

#include <algorithm>
#include <cstring>

#include "src/kernel/controller_internal.h"
#include "src/kernel/syscall_boundary.h"
#include "src/obs/persist_span.h"

namespace trio {

namespace {

// Absolute verifier deadline for one verification pass, from the config budget.
uint64_t VerifyDeadline(const KernelConfig& config, uint64_t now_ns) {
  return config.verify_timeout_ms == 0 ? 0 : now_ns + config.verify_timeout_ms * 1000000ull;
}

}  // namespace

Status KernelController::CommitFile(LibFsId libfs, Ino ino) {
  SyscallScope syscall(stats_, "CommitFile");
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  FileRecord* record = RecordOf(ino);
  if (record == nullptr || record->writer != libfs) {
    return InvalidArgument("file not write-mapped by caller");
  }
  // Verify the current state without the corruption-handling fallback: a failed commit
  // simply leaves the old checkpoint in force (§4.3).
  VerifyRequest request;
  request.ino = ino;
  request.dirent = DirentOfLocked(*record);
  request.writer = libfs;
  LibFsRecord* me = libfses_.find(libfs)->second.get();
  request.writer_uid = me->uid;
  request.writer_gid = me->gid;
  std::vector<CheckpointChild> checkpoint_children;
  if (record->checkpoint != nullptr) {
    checkpoint_children = record->checkpoint->children;
    request.checkpoint_children = &checkpoint_children;
  }
  const uint64_t v0 = NowNs();
  request.deadline_ns = VerifyDeadline(config_, v0);
  Result<VerifyReport> report = verifier_->Verify(request);
  stats_.verifications.fetch_add(1, std::memory_order_relaxed);
  stats_.verify_ns.fetch_add(NowNs() - v0, std::memory_order_relaxed);
  if (!report.ok()) {
    stats_.verify_failures.fetch_add(1, std::memory_order_relaxed);
    if (report.status().Is(ErrorCode::kTimeout)) {
      stats_.verify_timeouts.fetch_add(1, std::memory_order_relaxed);
    }
    return report.status();
  }
  TRIO_RETURN_IF_ERROR(ApplyReportLocked(record, *report));
  return TakeCheckpointLocked(record);
}

Status KernelController::VerifyAndReconcileLocked(std::unique_lock<std::recursive_mutex>& lock,
                                                  FileRecord* record) {
  const Ino ino = record->ino;
  const LibFsId writer = record->writer;
  auto libfs_it = libfses_.find(writer);
  if (libfs_it == libfses_.end()) {
    return Internal("writer vanished");
  }
  LibFsRecord* me = libfs_it->second.get();

  VerifyRequest request;
  request.ino = ino;
  request.dirent = DirentOfLocked(*record);
  request.writer = writer;
  request.writer_uid = me->uid;
  request.writer_gid = me->gid;
  std::vector<CheckpointChild> checkpoint_children;
  if (record->checkpoint != nullptr) {
    checkpoint_children = record->checkpoint->children;
    request.checkpoint_children = &checkpoint_children;
  }

  const uint64_t v0 = NowNs();
  request.deadline_ns = VerifyDeadline(config_, v0);
  Result<VerifyReport> report = verifier_->Verify(request);
  stats_.verifications.fetch_add(1, std::memory_order_relaxed);
  stats_.verify_ns.fetch_add(NowNs() - v0, std::memory_order_relaxed);
  if (report.ok()) {
    return ApplyReportLocked(record, *report);
  }

  stats_.verify_failures.fetch_add(1, std::memory_order_relaxed);
  Status failure = report.status();
  TRIO_LOG(kInfo) << "verification failed for ino " << ino << ": " << failure.ToString();

  // §4.3: "ArckFS notifies LibFS A to fix the corruption with a timeout."
  auto fix = me->callbacks.fix_corruption;
  if (fix) {
    const uint64_t deadline = NowNs() + config_.fix_timeout_ms * 1000000ull;
    bool claims_fixed = false;
    lock.unlock();
    if (config_.guard_callbacks) {
      // fix_timeout_ms is a real deadline, not an honor-system check: the callback runs
      // on a watchdog thread and a hang is abandoned, escalating to rollback below. The
      // result lives in a shared_ptr because an abandoned callback may write it late.
      auto claimed = std::make_shared<std::atomic<bool>>(false);
      const bool completed =
          callback_guard_.Run(config_.fix_timeout_ms, [fix, ino, failure, claimed] {
            claimed->store(fix(ino, failure), std::memory_order_release);
          });
      if (!completed) {
        stats_.callback_timeouts.fetch_add(1, std::memory_order_relaxed);
        TRIO_LOG(kWarn) << "fix_corruption for ino " << ino
                        << " hung past fix_timeout_ms; rolling back to checkpoint";
      }
      claims_fixed = completed && claimed->load(std::memory_order_acquire);
    } else {
      claims_fixed = fix(ino, failure);
    }
    lock.lock();
    record = RecordOf(ino);
    if (record == nullptr) {
      return failure;
    }
    if (claims_fixed && NowNs() <= deadline) {
      request.dirent = DirentOfLocked(*record);
      request.deadline_ns = VerifyDeadline(config_, NowNs());
      Result<VerifyReport> retry = verifier_->Verify(request);
      stats_.verifications.fetch_add(1, std::memory_order_relaxed);
      if (retry.ok()) {
        stats_.corruptions_fixed_by_libfs.fetch_add(1, std::memory_order_relaxed);
        return ApplyReportLocked(record, *retry);
      }
      failure = retry.status();
    }
  }

  // Quarantine the corrupted image for the offender, then roll back to the checkpoint.
  // A verification that overran its deadline lands here too: the state is UNVERIFIED,
  // which the kernel must treat exactly like corruption rather than accept unchecked.
  if (failure.Is(ErrorCode::kTimeout)) {
    stats_.verify_timeouts.fetch_add(1, std::memory_order_relaxed);
  }
  QuarantineLocked(record, failure);
  RollbackToCheckpointLocked(record);
  stats_.corruptions_rolled_back.fetch_add(1, std::memory_order_relaxed);

  // Tell the offender its file was impounded so it drops cached mappings. Untrusted code:
  // bounded by the watchdog, and run outside the kernel lock. (Re-find the writer: `me`
  // may have dangled while the lock was dropped for the fix callback.)
  auto notify_it = libfses_.find(writer);
  std::function<void(Ino, const Status&)> notify =
      notify_it != libfses_.end() ? notify_it->second->callbacks.quarantined : nullptr;
  if (notify) {
    lock.unlock();
    if (config_.guard_callbacks) {
      if (!callback_guard_.Run(config_.fix_timeout_ms,
                               [notify, ino, failure] { notify(ino, failure); })) {
        stats_.callback_timeouts.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      notify(ino, failure);
    }
    lock.lock();
  }
  return failure;
}

Status KernelController::ApplyReportLocked(FileRecord* record, const VerifyReport& report) {
  LibFsRecord* writer =
      record->writer != kNoLibFs ? libfses_.find(record->writer)->second.get() : nullptr;

  // Pages: adopt newly referenced leased pages, free no-longer-referenced owned pages.
  std::unordered_set<PageNumber> new_pages(report.pages.begin(), report.pages.end());
  for (PageNumber page : record->pages) {
    if (new_pages.count(page) != 0) {
      continue;
    }
    // Dropped from the file (truncate / shrink): back to the free pool.
    if (record->writer != kNoLibFs) {
      mmu_.Revoke(record->writer, page);
    }
    page_states_.erase(page);
    free_pages_by_node_[pool_.NodeOfPage(page)].push_back(page);
    stats_.pages_freed.fetch_add(1, std::memory_order_relaxed);
  }
  for (PageNumber page : new_pages) {
    PageState& state = page_states_[page];
    if (state.state == ResourceState::kLeased) {
      if (writer != nullptr) {
        writer->leased_pages.erase(page);
      }
      state = PageState{ResourceState::kOwned, kNoLibFs, record->ino};
    }
  }
  record->pages = std::move(new_pages);
  record->first_index_page = DirentOfLocked(*record)->first_index_page;

  // TEST ONLY (see KernelConfig::canary_leak_on_contended_transfer): on a transfer that
  // raced a lease revocation, leak one still-referenced page back onto the free list. A
  // later allocation hands it to another tenant => durable cross-file double reference,
  // which only fsck after a crash sees (the online verifier checks one file at a time).
  // The schedule explorer exists to find exactly this class of bug.
  if (config_.canary_leak_on_contended_transfer && contended_transfer_depth_ > 0 &&
      !record->pages.empty()) {
    const PageNumber leaked = *std::max_element(record->pages.begin(), record->pages.end());
    free_pages_by_node_[pool_.NodeOfPage(leaked)].push_back(leaked);
  }

  // Fresh children become live files with shadow inodes and an implicit write grant to
  // their creator (their own pages reconcile at their own first verification).
  for (const NewChildInfo& child : report.new_children) {
    if (writer != nullptr) {
      writer->leased_inos.erase(child.ino);
    }
    ino_states_[child.ino] = InoState{ResourceState::kOwned, kNoLibFs, record->ino};

    FileRecord fresh;
    fresh.ino = child.ino;
    fresh.parent = record->ino;
    fresh.is_dir = child.is_dir;
    fresh.dirent_page = child.dirent_page;
    fresh.dirent_slot = child.dirent_slot;
    fresh.first_index_page = child.first_index_page;

    ShadowInode shadow{child.mode, child.uid, child.gid, 1};
    ShadowInode* slot = ShadowInodeOf(pool_, child.ino);
    pool_.Write(slot, &shadow, sizeof(shadow));
    obs::PersistSpan(pool_, &persist_stats_).PersistNow(slot, sizeof(shadow));

    if (record->writer != kNoLibFs) {
      fresh.writer = record->writer;
      fresh.lease_deadline_ns = NowNs() + config_.lease_ms * 1000000ull;
      writer->write_mapped.insert(child.ino);
      WmapLogAdd(child.ino);
    }
    auto [it, inserted] = records_.emplace(child.ino, std::move(fresh));
    if (inserted && it->second.writer != kNoLibFs) {
      (void)TakeCheckpointLocked(&it->second);
    }
  }

  // Renames into this directory.
  for (const MovedInChild& moved : report.moved_in) {
    FileRecord* child = RecordOf(moved.ino);
    if (child == nullptr) {
      continue;
    }
    child->parent = record->ino;
    child->dirent_page = moved.dirent_page;
    child->dirent_slot = moved.dirent_slot;
    ino_states_[moved.ino].parent = record->ino;
    if (writer != nullptr) {
      writer->pending_orphans.erase(moved.ino);
    }
  }

  // Children that vanished: deleted, or renamed to a directory we have not verified yet.
  for (Ino removed : report.removed_children) {
    auto state_it = ino_states_.find(removed);
    if (state_it == ino_states_.end() || state_it->second.parent != record->ino) {
      continue;  // Already moved elsewhere or reclaimed.
    }
    if (writer != nullptr) {
      writer->pending_orphans.insert(removed);
    } else {
      FileRecord* child = RecordOf(removed);
      if (child != nullptr) {
        ReclaimFileLocked(child);
      }
    }
  }
  return OkStatus();
}

void KernelController::ResolveOrphansLocked(LibFsRecord* libfs) {
  // Anything still orphaned when the writer's session quiesces was deleted, not renamed.
  std::vector<Ino> orphans(libfs->pending_orphans.begin(), libfs->pending_orphans.end());
  libfs->pending_orphans.clear();
  for (Ino ino : orphans) {
    FileRecord* record = RecordOf(ino);
    if (record == nullptr) {
      continue;
    }
    auto state_it = ino_states_.find(ino);
    if (state_it != ino_states_.end() && state_it->second.state == ResourceState::kOwned) {
      // Still owned with the stale parent: a deletion. Directories were checked empty by
      // I3 at parent-verify time.
      ReclaimFileLocked(record);
    }
  }
}

void KernelController::ReclaimFileLocked(FileRecord* record) {
  const Ino ino = record->ino;
  // Recursively reclaim children first (mass deletion by page rewrite is legal tombstoning).
  std::vector<Ino> children;
  for (auto& [child_ino, child] : records_) {
    if (child.parent == ino && child_ino != ino) {
      children.push_back(child_ino);
    }
  }
  for (Ino child : children) {
    FileRecord* child_record = RecordOf(child);
    if (child_record != nullptr) {
      ReclaimFileLocked(child_record);
    }
  }
  record = RecordOf(ino);
  if (record == nullptr) {
    return;
  }
  for (PageNumber page : record->pages) {
    page_states_.erase(page);
    free_pages_by_node_[pool_.NodeOfPage(page)].push_back(page);
    stats_.pages_freed.fetch_add(1, std::memory_order_relaxed);
  }
  ShadowInode* shadow = ShadowInodeOf(pool_, ino);
  if (shadow != nullptr) {
    ShadowInode cleared{};
    pool_.Write(shadow, &cleared, sizeof(cleared));
    obs::PersistSpan(pool_, &persist_stats_).PersistNow(shadow, sizeof(cleared));
  }
  WmapLogRemove(ino);
  ino_states_.erase(ino);
  records_.erase(ino);
  free_inos_.push_back(ino);
}

Status KernelController::TakeCheckpointLocked(FileRecord* record) {
  auto checkpoint = std::make_unique<FileCheckpointData>();
  checkpoint->meta = *DirentOfLocked(*record);

  auto copy_page = [&](PageNumber page) {
    checkpoint->pages.push_back(page);
    auto content = std::make_unique<char[]>(kPageSize);
    std::memcpy(content.get(), pool_.PageAddress(page), kPageSize);
    checkpoint->contents.push_back(std::move(content));
  };

  // §4.3: checkpoint the file's metadata — index pages for a regular file; both index and
  // data pages for a directory (directory data pages *are* metadata).
  const PageNumber first = checkpoint->meta.first_index_page;
  TRIO_RETURN_IF_ERROR(ForEachIndexPage(pool_, first, [&](PageNumber page) -> Status {
    copy_page(page);
    return OkStatus();
  }));
  if (record->is_dir) {
    TRIO_RETURN_IF_ERROR(
        ForEachDataPage(pool_, first, [&](uint64_t, PageNumber page) -> Status {
          copy_page(page);
          return OkStatus();
        }));
    TRIO_RETURN_IF_ERROR(ForEachDirent(pool_, first,
                                       [&](DirentBlock* child, PageNumber, size_t) -> Status {
                                         checkpoint->children.push_back(CheckpointChild{
                                             child->ino, child->IsDirectory()});
                                         return OkStatus();
                                       }));
  }
  record->checkpoint = std::move(checkpoint);
  return OkStatus();
}

void KernelController::QuarantineLocked(FileRecord* record, const Status& reason) {
  QuarantineEntry entry;
  entry.offender = record->writer;
  entry.error = reason;
  entry.sequence = ++quarantine_sequence_;
  for (PageNumber page : record->pages) {
    std::vector<char> image(kPageSize);
    std::memcpy(image.data(), pool_.PageAddress(page), kPageSize);
    entry.images.push_back(std::move(image));
  }
  quarantine_[record->ino] = std::move(entry);
  stats_.files_quarantined.fetch_add(1, std::memory_order_relaxed);

  // Bound kernel memory: an adversary corrupting file after file must not grow the
  // quarantine without limit. Evict oldest-first (their salvage window simply closes).
  while (config_.max_quarantined_files != 0 &&
         quarantine_.size() > config_.max_quarantined_files) {
    auto oldest = quarantine_.begin();
    for (auto it = quarantine_.begin(); it != quarantine_.end(); ++it) {
      if (it->second.sequence < oldest->second.sequence) {
        oldest = it;
      }
    }
    quarantine_.erase(oldest);
    stats_.quarantine_evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<std::vector<char>> KernelController::RetrieveQuarantine(LibFsId libfs, Ino ino) {
  SyscallScope syscall(stats_, "RetrieveQuarantine");
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  auto it = quarantine_.find(ino);
  if (it == quarantine_.end() || it->second.offender != libfs) {
    return {};
  }
  std::vector<std::vector<char>> images = std::move(it->second.images);
  quarantine_.erase(it);
  return images;
}

Status KernelController::QuarantineErrorOf(Ino ino) const {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  auto it = quarantine_.find(ino);
  if (it == quarantine_.end()) {
    return NotFound("ino not quarantined");
  }
  return it->second.error;
}

size_t KernelController::QuarantineCount() const {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  return quarantine_.size();
}

void KernelController::RollbackToCheckpointLocked(FileRecord* record) {
  FileCheckpointData* checkpoint = record->checkpoint.get();
  DirentBlock* dirent = DirentOfLocked(*record);
  // One span for the whole rollback protocol: page restores batch under a single fence,
  // metadata and scrub writes each fence at their original points.
  obs::PersistSpan span(pool_, &persist_stats_);
  if (checkpoint == nullptr) {
    // A brand-new file with no checkpoint: the safe state is "empty".
    DirentBlock cleared = *dirent;
    cleared.first_index_page = 0;
    cleared.size = 0;
    pool_.Write(dirent, &cleared, sizeof(cleared));
    span.PersistNow(dirent, sizeof(cleared));
    record->first_index_page = 0;
    for (PageNumber page : record->pages) {
      page_states_.erase(page);
      free_pages_by_node_[pool_.NodeOfPage(page)].push_back(page);
    }
    record->pages.clear();
    return;
  }

  // Restore checkpointed page images where the page still belongs to this file.
  for (size_t i = 0; i < checkpoint->pages.size(); ++i) {
    const PageNumber page = checkpoint->pages[i];
    auto state = page_states_.find(page);
    if (state != page_states_.end() && state->second.state == ResourceState::kOwned &&
        state->second.owner == record->ino) {
      pool_.Write(pool_.PageAddress(page), checkpoint->contents[i].get(), kPageSize);
      span.Persist(pool_.PageAddress(page), kPageSize);
    }
  }
  span.ForceFence();

  // Restore the metadata (the dirent+inode block). Size mismatches against surviving data
  // resolve as holes, which read back as zeros ("trimming or padding zero bits", §4.3).
  pool_.Write(dirent, &checkpoint->meta, sizeof(checkpoint->meta));
  span.PersistNow(dirent, sizeof(checkpoint->meta));
  record->first_index_page = checkpoint->meta.first_index_page;

  // Scrub: drop index entries that reference pages this file no longer owns, and rebuild
  // the owned-page set from the restored chain.
  std::unordered_set<PageNumber> restored;
  Status scrub = ForEachIndexPage(pool_, record->first_index_page, [&](PageNumber p) -> Status {
    auto state = page_states_.find(p);
    if (state == page_states_.end() || state->second.state != ResourceState::kOwned ||
        state->second.owner != record->ino) {
      return Corrupted("restored chain broken");
    }
    restored.insert(p);
    auto* index = reinterpret_cast<IndexPage*>(pool_.PageAddress(p));
    for (size_t i = 0; i < kIndexEntriesPerPage; ++i) {
      const PageNumber entry = index->entries[i];
      if (entry == 0) {
        continue;
      }
      auto entry_state = page_states_.find(entry);
      const bool owned = entry_state != page_states_.end() &&
                         entry_state->second.state == ResourceState::kOwned &&
                         entry_state->second.owner == record->ino;
      if (!owned) {
        span.CommitStore64(&index->entries[i], 0);
      } else {
        restored.insert(entry);
      }
    }
    return OkStatus();
  });
  if (!scrub.ok()) {
    // The chain head itself was lost; fall back to an empty file.
    DirentBlock cleared = checkpoint->meta;
    cleared.first_index_page = 0;
    cleared.size = 0;
    pool_.Write(dirent, &cleared, sizeof(cleared));
    span.PersistNow(dirent, sizeof(cleared));
    record->first_index_page = 0;
    restored.clear();
  }

  // Pages that were owned but are no longer reachable go back to the free pool.
  for (PageNumber page : record->pages) {
    if (restored.count(page) != 0) {
      continue;
    }
    if (record->writer != kNoLibFs) {
      mmu_.Revoke(record->writer, page);
    }
    page_states_.erase(page);
    free_pages_by_node_[pool_.NodeOfPage(page)].push_back(page);
  }
  record->pages = std::move(restored);
}

}  // namespace trio
