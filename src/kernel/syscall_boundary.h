// The instrumented kernel syscall boundary. Every public KernelController entry point a
// LibFS can call opens a SyscallScope as its first statement: it counts the crossing in
// KernelStats, attributes it to the calling op's OpContext (kernel_crossings), records
// the boundary-to-return latency into the kernel's log-binned histogram, and emits a
// trace span when tracing is enabled. This is the one place "a kernel crossing happened"
// is defined, so per-layer metric breakdowns and op spines agree on the count.

#ifndef SRC_KERNEL_SYSCALL_BOUNDARY_H_
#define SRC_KERNEL_SYSCALL_BOUNDARY_H_

#include "src/kernel/controller.h"
#include "src/obs/op_context.h"

namespace trio {

class SyscallScope {
 public:
  SyscallScope(KernelStats& stats, const char* name)
      : stats_(stats), span_(name), t0_(obs::MonotonicNowNs()) {
    stats_.syscalls.fetch_add(1);
    if (TRIO_OBS_UNLIKELY(obs::OpContext::Current() != nullptr)) {
      obs::OpContext::Current()->counters.kernel_crossings.fetch_add(
          1, std::memory_order_relaxed);
    }
  }

  ~SyscallScope() { stats_.syscall_latency.Record(obs::MonotonicNowNs() - t0_); }

  SyscallScope(const SyscallScope&) = delete;
  SyscallScope& operator=(const SyscallScope&) = delete;

 private:
  KernelStats& stats_;
  obs::TraceSpan span_;  // No-op unless tracing is enabled.
  uint64_t t0_;
};

}  // namespace trio

#endif  // SRC_KERNEL_SYSCALL_BOUNDARY_H_
