// Background digestion service (DESIGN.md §4.11): the thread that drains the NVM absorb
// tier to the slow backend when occupancy crosses the high watermark, and stops once it
// falls back under the low watermark.
//
// All tiering logic lives in KernelController methods (src/kernel/digestion.cc) so it can
// coordinate with the sharded ownership state under the normal locking rules; this class
// is only the pacing thread. Migration coherence with grants reuses the verification
// protocol: DigestFile pins the record's `busy` flag and copies OUTSIDE the shard lock,
// so MapFile waits on the shard cv and a migration can never race a grant.

#ifndef SRC_KERNEL_DIGESTION_H_
#define SRC_KERNEL_DIGESTION_H_

#include <condition_variable>
#include <mutex>
#include <thread>

namespace trio {

class KernelController;

class DigestionService {
 public:
  explicit DigestionService(KernelController& kernel);
  ~DigestionService();
  DigestionService(const DigestionService&) = delete;
  DigestionService& operator=(const DigestionService&) = delete;

  // Wake the thread early (e.g. occupancy may have just crossed the watermark).
  void Nudge();

 private:
  void Run();

  KernelController& kernel_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace trio

#endif  // SRC_KERNEL_DIGESTION_H_
