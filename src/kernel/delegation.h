// Opportunistic delegation (§4.5), following OdinFS: per-NUMA-node pools of background
// "kernel" threads perform NVM copies on behalf of application threads, so that (a) the
// number of threads touching each NVM node stays fixed (Optane collapses under excessive
// concurrency) and (b) accesses are always node-local. Application threads submit requests
// through a bounded MPMC ring and wait on a completion counter. ArckFS does not delegate
// small accesses (reads < 32 KiB, writes < 256 B) because the communication overhead
// dominates.

#ifndef SRC_KERNEL_DELEGATION_H_
#define SRC_KERNEL_DELEGATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/mpmc_ring.h"
#include "src/nvm/nvm.h"

namespace trio {

// Delegation thresholds (§4.5).
inline constexpr size_t kDelegateReadThreshold = 32 * 1024;
inline constexpr size_t kDelegateWriteThreshold = 256;

struct DelegationRequest {
  enum class Op : uint8_t { kRead, kWrite, kStop } op = Op::kStop;
  char* nvm = nullptr;          // NVM-side address.
  char* dram = nullptr;         // Application buffer.
  uint32_t len = 0;
  bool persist = true;          // Writes: flush + fence after the copy.
  std::atomic<uint32_t>* pending = nullptr;  // Decremented on completion.
};

class DelegationPool {
 public:
  DelegationPool(NvmPool& pool, int threads_per_node, size_t ring_capacity = 1024)
      : pool_(pool), num_nodes_(pool.topology().num_nodes) {
    rings_.reserve(num_nodes_);
    for (int n = 0; n < num_nodes_; ++n) {
      rings_.push_back(std::make_unique<MpmcRing<DelegationRequest>>(ring_capacity));
    }
    for (int n = 0; n < num_nodes_; ++n) {
      for (int t = 0; t < threads_per_node; ++t) {
        workers_.emplace_back([this, n] { WorkerLoop(n); });
      }
    }
  }

  ~DelegationPool() { Stop(); }
  DelegationPool(const DelegationPool&) = delete;
  DelegationPool& operator=(const DelegationPool&) = delete;

  void Stop() {
    if (stopped_.exchange(true)) {
      return;
    }
    for (auto& worker : workers_) {
      (void)worker;
    }
    // Wake every worker with a stop request per thread.
    const size_t per_node = workers_.size() / static_cast<size_t>(num_nodes_);
    for (int n = 0; n < num_nodes_; ++n) {
      for (size_t t = 0; t < per_node; ++t) {
        DelegationRequest stop;
        stop.op = DelegationRequest::Op::kStop;
        rings_[n]->Push(stop);
      }
    }
    for (auto& worker : workers_) {
      worker.join();
    }
    workers_.clear();
  }

  // Submits one copy targeting NVM address `nvm` (entirely within one node's stripe —
  // callers split requests at node boundaries) and bumps nothing: callers pre-set
  // `pending` to the number of submissions and wait with WaitFor().
  void Submit(const DelegationRequest& request) {
    const int node = pool_.NodeOfPage(pool_.PageOf(request.nvm));
    rings_[node]->Push(request);
    submitted_.fetch_add(1, std::memory_order_relaxed);
  }

  static void WaitFor(std::atomic<uint32_t>& pending) {
    while (pending.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
  }

  uint64_t submitted() const { return submitted_.load(std::memory_order_relaxed); }

 private:
  void WorkerLoop(int node) {
    MpmcRing<DelegationRequest>& ring = *rings_[node];
    while (true) {
      DelegationRequest request;
      if (!ring.TryPop(request)) {
        std::this_thread::yield();
        continue;
      }
      switch (request.op) {
        case DelegationRequest::Op::kStop:
          return;
        case DelegationRequest::Op::kRead:
          pool_.Read(request.dram, request.nvm, request.len);
          break;
        case DelegationRequest::Op::kWrite:
          pool_.Write(request.nvm, request.dram, request.len);
          if (request.persist) {
            pool_.Persist(request.nvm, request.len);
            pool_.Fence();
          }
          break;
      }
      if (request.pending != nullptr) {
        request.pending->fetch_sub(1, std::memory_order_release);
      }
    }
  }

  NvmPool& pool_;
  const int num_nodes_;
  std::vector<std::unique_ptr<MpmcRing<DelegationRequest>>> rings_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> submitted_{0};
};

}  // namespace trio

#endif  // SRC_KERNEL_DELEGATION_H_
