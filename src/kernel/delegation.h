// Opportunistic delegation v2 (§4.5), following OdinFS: per-NUMA-node pools of background
// "kernel" threads perform NVM copies on behalf of application threads, so that (a) the
// number of threads touching each NVM node stays fixed (Optane collapses under excessive
// concurrency) and (b) accesses are always node-local.
//
// v2 rebuilds the data path end to end:
//  * Batched submission: DelegationBatch splits a whole read/write at node-stripe
//    boundaries once, enqueues per-node request vectors through the ring's batch hooks,
//    and issues ONE fence per batch per node — workers Persist each chunk, and the last
//    completer of a node's share of the batch fences (amortizing sfence as OdinFS does).
//  * Spin-then-park: workers spin briefly on an empty ring, then park on a per-node
//    condition variable and are woken by submitters; waiters adaptively spin (CpuRelax)
//    and fall back to parking on a pool-level condition variable. An idle pool consumes
//    ~0 CPU.
//  * Per-node sharded stats (submitted/completed/batches/wakeups/parks/steals) replace
//    the old global counter, and idle workers steal from sibling-node rings so a skewed
//    workload does not strand capacity.
//  * DelegationConfig carries the size thresholds (reads < 32 KiB and writes < 256 B are
//    not delegated by default — the communication overhead dominates) so benchmarks can
//    sweep them.

#ifndef SRC_KERNEL_DELEGATION_H_
#define SRC_KERNEL_DELEGATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/mpmc_ring.h"
#include "src/nvm/nvm.h"
#include "src/obs/stats.h"

namespace trio {

// Default delegation thresholds (§4.5). The live values are DelegationConfig fields.
inline constexpr size_t kDelegateReadThreshold = 32 * 1024;
inline constexpr size_t kDelegateWriteThreshold = 256;

struct DelegationConfig {
  size_t read_threshold = kDelegateReadThreshold;
  size_t write_threshold = kDelegateWriteThreshold;
  size_t ring_capacity = 1024;
  // 0 = use NumaTopology::delegation_threads_per_node.
  int threads_per_node = 0;
  // TryPop/steal rounds an idle worker spins before parking.
  uint32_t worker_spin = 2048;
  // Completion polls a waiter spins before parking.
  uint32_t waiter_spin = 4096;
  // Idle workers steal from sibling-node rings (trades node locality for utilization).
  bool steal = true;
  // A single submission of at least this many requests to one ring wakes one parked
  // worker on every other node so they can steal into the burst.
  size_t steal_wake_threshold = 64;
  // FaultSim (kFaultDelegationWorker): a chunk that faults on a worker is re-queued up to
  // this many times, with exponential spin backoff, before being completed inline on the
  // faulting thread (which bypasses further injection, so completion is guaranteed).
  uint32_t fault_max_retries = 3;
  uint32_t fault_backoff_spins = 32;
};

// Per-batch, per-node completion group. The LAST worker to finish a node's share of a
// batch issues the node's single fence; every earlier chunk only Persists.
struct BatchNodeState {
  std::atomic<uint32_t> remaining{0};
  bool fence = false;
};

struct DelegationRequest {
  enum class Op : uint8_t { kRead, kWrite } op = Op::kRead;
  char* nvm = nullptr;   // NVM-side address; must not cross a node-stripe boundary.
  char* dram = nullptr;  // Application buffer.
  uint32_t len = 0;
  bool persist = true;  // Writes: flush after the copy (fence per group, see below).
  // Batched requests share a group; standalone requests (null) fence themselves.
  BatchNodeState* group = nullptr;
  std::atomic<uint32_t>* pending = nullptr;  // Decremented on completion (after fence).
  uint16_t attempts = 0;  // Times this chunk already faulted and was re-queued (FaultSim).
};

// Sharded per-node counters; one cacheline each so nodes never bounce a counter.
// Each node's struct registers into obs::StatRegistry under layer "delegation"; the
// registry sums across nodes, so registry reads equal the Sum() accessors below.
struct alignas(64) DelegationNodeStats {
  obs::Counter submitted;
  obs::Counter completed;
  obs::Counter batches;
  obs::Counter wakeups;  // Times a parked worker was actually woken.
  obs::Counter parks;    // Times a worker went to sleep.
  obs::Counter steals;   // Requests this node's workers stole from siblings.
  // FaultSim outcomes: injected chunk failures, retries re-queued after backoff, and
  // chunks completed inline after exhausting retries (or when the ring was full).
  obs::Counter faults;
  obs::Counter fault_retries;
  obs::Counter inline_fallbacks;

  DelegationNodeStats()
      : reg_("delegation", {{"submitted", &submitted},
                            {"completed", &completed},
                            {"batches", &batches},
                            {"wakeups", &wakeups},
                            {"parks", &parks},
                            {"steals", &steals},
                            {"faults", &faults},
                            {"fault_retries", &fault_retries},
                            {"inline_fallbacks", &inline_fallbacks}}) {}

 private:
  obs::ScopedRegistration reg_;
};

class DelegationBatch;

class DelegationPool {
 public:
  DelegationPool(NvmPool& pool, DelegationConfig config = {});
  // Legacy shape (threads, ring capacity) kept for the OdinFS baseline and older tests.
  DelegationPool(NvmPool& pool, int threads_per_node, size_t ring_capacity = 1024)
      : DelegationPool(pool, MakeLegacyConfig(threads_per_node, ring_capacity)) {}

  ~DelegationPool();
  DelegationPool(const DelegationPool&) = delete;
  DelegationPool& operator=(const DelegationPool&) = delete;

  // Idempotent. Wakes and joins all workers, then drains every ring inline so a Submit
  // racing with Stop can never strand a waiter: anything enqueued before the drain is
  // executed here, and Submit itself executes inline once it observes stopped.
  void Stop();

  // Submits one standalone copy targeting NVM address `nvm` (entirely within one node's
  // stripe — callers split at node boundaries, or use DelegationBatch which does). The
  // caller pre-sets `pending` and waits with Wait(). Standalone persisting writes fence
  // themselves; use DelegationBatch to amortize fences.
  void Submit(const DelegationRequest& request);

  // Adaptive wait: spins with CpuRelax, then parks until workers drive `pending` to 0.
  void Wait(std::atomic<uint32_t>& pending);

  // Legacy pure-spin wait (no pool => no parking). Prefer the member Wait().
  static void WaitFor(std::atomic<uint32_t>& pending) {
    while (pending.load(std::memory_order_acquire) != 0) {
      CpuRelax();
    }
  }

  const DelegationConfig& config() const { return config_; }
  int num_nodes() const { return num_nodes_; }
  int threads_per_node() const { return threads_per_node_; }

  // ---- Stats ----
  const DelegationNodeStats& node_stats(int node) const { return nodes_[node]->stats; }
  uint64_t submitted() const { return Sum(&DelegationNodeStats::submitted); }
  uint64_t completed() const { return Sum(&DelegationNodeStats::completed); }
  uint64_t batches() const { return Sum(&DelegationNodeStats::batches); }
  uint64_t wakeups() const { return Sum(&DelegationNodeStats::wakeups); }
  uint64_t parks() const { return Sum(&DelegationNodeStats::parks); }
  uint64_t steals() const { return Sum(&DelegationNodeStats::steals); }
  uint64_t faults() const { return Sum(&DelegationNodeStats::faults); }
  uint64_t fault_retries() const { return Sum(&DelegationNodeStats::fault_retries); }
  uint64_t inline_fallbacks() const { return Sum(&DelegationNodeStats::inline_fallbacks); }
  // Number of workers currently parked (an idle pool reports all of them).
  uint32_t parked_workers() const;

 private:
  friend class DelegationBatch;

  struct alignas(64) NodeState {
    explicit NodeState(size_t ring_capacity) : ring(ring_capacity) {}
    MpmcRing<DelegationRequest> ring;
    std::mutex mutex;
    std::condition_variable cv;
    std::atomic<uint32_t> sleepers{0};
    DelegationNodeStats stats;
  };

  static DelegationConfig MakeLegacyConfig(int threads_per_node, size_t ring_capacity) {
    DelegationConfig config;
    config.threads_per_node = threads_per_node;
    config.ring_capacity = ring_capacity;
    return config;
  }

  uint64_t Sum(obs::Counter DelegationNodeStats::* field) const {
    uint64_t total = 0;
    for (const auto& node : nodes_) {
      total += (node->stats.*field).load(std::memory_order_relaxed);
    }
    return total;
  }

  // Enqueues `count` requests (all targeting `node`) and wakes workers. Used by both
  // Submit (count == 1) and DelegationBatch::Submit (whole per-node vectors).
  void SubmitSpan(int node, const DelegationRequest* requests, size_t count);
  // Runs one request to completion on the calling thread, attributing stats to
  // `executing_node` (== home node for workers, submitter's target for inline drains).
  void Execute(const DelegationRequest& request, int executing_node);
  void WorkerLoop(int node);
  bool TrySteal(int home);
  // Executes everything left in `node`'s ring inline (stop path).
  void DrainInline(int node);
  void WakeNode(NodeState& node, bool wake_all);
  void WakeWaiters();

  NvmPool& pool_;
  const DelegationConfig config_;
  const int num_nodes_;
  int threads_per_node_ = 0;
  // Worker-side persistence accounting (chunk persists, batch/standalone fences).
  obs::PersistStats persist_stats_{"delegation"};
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};

  // Parked application threads waiting on batch completions (see Wait()).
  std::mutex waiter_mutex_;
  std::condition_variable waiter_cv_;
  std::atomic<uint32_t> waiters_parked_{0};
};

// Accumulates one logical read/write as per-node request vectors and submits them in one
// shot: the ring is touched once per node (batch push), parked workers are woken once,
// and each node fences exactly once per batch instead of once per 4 KiB chunk.
//
// Usage: AddWrite/AddRead any number of times, then Submit() once, then Wait(). The batch
// must outlive Wait() (requests point into it); the destructor waits if the caller forgot.
class DelegationBatch {
 public:
  explicit DelegationBatch(DelegationPool& pool);
  ~DelegationBatch();
  DelegationBatch(const DelegationBatch&) = delete;
  DelegationBatch& operator=(const DelegationBatch&) = delete;

  // Queues a copy of [src, src+len) into NVM at `nvm` (resp. out of NVM for AddRead).
  // Ranges may span node-stripe boundaries; they are split here, once, so every enqueued
  // request is node-contained.
  void AddWrite(char* nvm, const char* dram, size_t len, bool persist);
  void AddRead(char* dram, const char* nvm, size_t len);

  // Enqueues all accumulated requests. Call at most once (until Reset).
  void Submit();
  // Blocks (adaptive spin, then park) until every submitted request completed — at which
  // point each touched node has issued its single batch fence.
  void Wait();
  // Returns the batch to its pre-Add state so one object (and its vector capacity) can be
  // reused across many Submit/Wait rounds — the op-ring drainer keeps a single batch per
  // drain pass and flushes it at op boundaries that need data durable. Only legal with
  // nothing outstanding: before Submit, or after Wait.
  void Reset();

  size_t requests() const { return total_requests_; }
  int nodes_touched() const;

 private:
  void Add(DelegationRequest::Op op, char* nvm, char* dram, size_t len, bool persist);

  DelegationPool& pool_;
  std::vector<std::vector<DelegationRequest>> per_node_;
  std::vector<std::unique_ptr<BatchNodeState>> groups_;  // Stable addresses, per node.
  std::atomic<uint32_t> pending_{0};
  size_t total_requests_ = 0;
  bool submitted_ = false;
};

}  // namespace trio

#endif  // SRC_KERNEL_DELEGATION_H_
