// Tiering: background digestion NVM -> slow backend and the promote-back read path
// (DESIGN.md §4.11). Fourth translation unit of KernelController (see controller.cc).
//
// Migration/grant coherence reuses the verification protocol: DigestFile pins the
// record's `busy` flag under the shard lock, then copies and rewrites index entries with
// NO shard held. MapFile/LookupGrant wait on the shard cv while a record is busy, so a
// grant can never observe a half-migrated file, and digestion skips any file that has a
// writer, readers, or an in-flight verification.
//
// Crash ordering per batch (one fence total, PersistSpan-amortized):
//   1. copy each cold page to the backend (write-once slot, data never erased);
//   2. Store64 + Persist the tagged tier entry over the old page number;
//   3. ONE fence;
//   4. only then free the NVM pages.
// Freeing before the fence would let a recycled page be rewritten while the OLD index
// entry could still materialize after a crash — the classic lost-in-flight page. With
// this order every crash point yields either the old entry (page intact, slot leaked
// and unowned — harmless) or the new entry (backend slot adopted at remount).

#include <algorithm>
#include <chrono>
#include <vector>

#include "src/kernel/controller.h"
#include "src/kernel/digestion.h"
#include "src/kernel/syscall_boundary.h"
#include "src/obs/persist_span.h"
#include "src/sim/backend.h"

namespace trio {

// ---------------------------------------------------------------------------
// DigestionService: the pacing thread
// ---------------------------------------------------------------------------

DigestionService::DigestionService(KernelController& kernel) : kernel_(kernel) {
  thread_ = std::thread([this] { Run(); });
}

DigestionService::~DigestionService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void DigestionService::Nudge() { cv_.notify_all(); }

void DigestionService::Run() {
  const TierConfig& tier = kernel_.config().tier;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(tier.scan_interval_ms),
                   [this] { return stop_; });
      if (stop_) {
        return;
      }
    }
    if (kernel_.NvmOccupancy() < tier.high_watermark) {
      continue;
    }
    // Above the high watermark: digest batch by batch down to the low watermark,
    // re-checking the stop flag between batches so teardown never waits on a sweep.
    while (kernel_.NvmOccupancy() > tier.low_watermark) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_) {
          return;
        }
      }
      if (kernel_.DigestNow(tier.batch_pages) == 0) {
        break;  // Nothing cold enough left; wait for the next scan.
      }
    }
  }
}

// ---------------------------------------------------------------------------
// KernelController tiering methods
// ---------------------------------------------------------------------------

void KernelController::StartDigestion() {
  if (digestion_ == nullptr && config_.tier.backend != nullptr) {
    digestion_ = std::make_unique<DigestionService>(*this);
  }
}

double KernelController::NvmOccupancy() const {
  if (file_region_pages_ == 0) {
    return 0.0;
  }
  const size_t free_pages = FreePageCount();
  return 1.0 - static_cast<double>(free_pages) / static_cast<double>(file_region_pages_);
}

std::vector<Ino> KernelController::CollectDigestCandidates(size_t max_files) {
  const uint64_t now = NowNs();
  std::vector<std::pair<uint64_t, Ino>> cold;  // (last_use_ns, ino)
  for (size_t si = 0; si < shards_.size(); ++si) {
    ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
    for (const auto& [ino, record] : shards_[si]->records) {
      if (record.is_dir || record.busy || record.writer != kNoLibFs ||
          !record.readers.empty()) {
        continue;
      }
      // pages holds the index chain too; a file with <= 1 page has no data to migrate.
      if (record.pages.size() < 2) {
        continue;
      }
      if (config_.tier.min_idle_ns != 0 &&
          now - record.last_use_ns < config_.tier.min_idle_ns) {
        continue;
      }
      cold.emplace_back(record.last_use_ns, ino);
    }
  }
  std::sort(cold.begin(), cold.end());  // Coldest (least recently granted) first.
  if (cold.size() > max_files) {
    cold.resize(max_files);
  }
  std::vector<Ino> out;
  out.reserve(cold.size());
  for (const auto& [ns, ino] : cold) {
    out.push_back(ino);
  }
  return out;
}

size_t KernelController::DigestFile(Ino ino, size_t max_pages) {
  SlowBackend* backend = config_.tier.backend;
  if (backend == nullptr || max_pages == 0) {
    return 0;
  }
  // Phase 1: pin. Re-validate digestibility under the shard lock — the cold scan ran
  // unlocked, and a grant may have landed since.
  PageNumber first_index_page = 0;
  {
    const size_t si = ShardIndexOf(ino);
    ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
    FileRecord* record = FindRecordLocked(*shards_[si], ino);
    if (record == nullptr || record->is_dir || record->busy ||
        record->writer != kNoLibFs || !record->readers.empty()) {
      return 0;
    }
    record->busy = true;  // Pin: no grant/release/reclaim until the batch commits.
    first_index_page = record->first_index_page;
  }

  // Phase 2: migrate with no shard held. The busy pin means nobody can map, write, or
  // reclaim the file, so the chain is stable; the backend write precedes the entry
  // persist, and one fence covers the whole batch.
  std::vector<std::pair<PageNumber, uint64_t>> moved;  // (old NVM page, backend slot)
  {
    obs::PersistSpan span(pool_, &persist_stats_);
    PageNumber index_page = first_index_page;
    uint64_t visited = 0;
    char buf[kPageSize];
    while (index_page != 0 && moved.size() < max_pages) {
      if (!ValidFilePage(pool_, index_page) || ++visited > pool_.num_pages()) {
        break;  // Reconciled state should never be damaged; leave it for the verifier.
      }
      auto* index = reinterpret_cast<IndexPage*>(pool_.PageAddress(index_page));
      for (size_t i = 0; i < kIndexEntriesPerPage && moved.size() < max_pages; ++i) {
        const uint64_t entry = index->entries[i];
        if (entry == 0 || IsTierEntry(entry) || !ValidFilePage(pool_, entry)) {
          continue;
        }
        pool_.Read(buf, pool_.PageAddress(entry), kPageSize);
        const uint64_t slot = backend->WritePage(buf, ino);
        pool_.Store64(&index->entries[i], MakeTierEntry(slot));
        span.Persist(&index->entries[i], sizeof(uint64_t));
        moved.emplace_back(entry, slot);
      }
      index_page = index->next;
    }
    if (!moved.empty()) {
      span.Fence();  // Tier entries durable BEFORE any of their old pages can recycle.
    }
  }

  // Phase 3: unpin and account. The record cannot have vanished — reclaim waits out busy.
  {
    const size_t si = ShardIndexOf(ino);
    ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
    FileRecord* record = FindRecordLocked(*shards_[si], ino);
    TRIO_CHECK(record != nullptr && record->busy);
    for (const auto& [page, slot] : moved) {
      record->pages.erase(page);
      record->backend_slots.insert(slot);
    }
    if (!moved.empty()) {
      // Bump the dirent generation so a LibFS with a cached radix over the old entries
      // rebuilds its auxiliary state on the next map (same contract as a write grant).
      DirentBlock* dirent = DirentOfLocked(*record);
      obs::PersistSpan(pool_, &persist_stats_)
          .CommitStore64(&dirent->generation, dirent->generation + 1);
    }
    record->busy = false;
    shards_[si]->cv.notify_all();
  }
  grant_cache_.Erase(ino);
  for (const auto& [page, slot] : moved) {
    ReleasePageToFree(page);
  }
  if (!moved.empty()) {
    tier_stats_.digest_batches.fetch_add(1, std::memory_order_relaxed);
    tier_stats_.digest_pages.fetch_add(moved.size(), std::memory_order_relaxed);
    tier_stats_.digest_bytes.fetch_add(moved.size() * kPageSize,
                                       std::memory_order_relaxed);
  }
  return moved.size();
}

size_t KernelController::DigestNow(size_t target_pages) {
  if (config_.tier.backend == nullptr || target_pages == 0) {
    return 0;
  }
  size_t total = 0;
  // One candidate sweep per call; the background loop calls again if still above the
  // watermark. Oversample the candidate list: some picks race a fresh grant and yield 0.
  const std::vector<Ino> candidates = CollectDigestCandidates(target_pages);
  for (Ino ino : candidates) {
    if (total >= target_pages) {
      break;
    }
    total += DigestFile(ino, target_pages - total);
  }
  return total;
}

Status KernelController::PromoteRead(LibFsId libfs, Ino ino, uint64_t slot,
                                     PageNumber dest) {
  SyscallScope syscall(stats_, "PromoteRead");
  SlowBackend* backend = config_.tier.backend;
  if (backend == nullptr) {
    return InvalidArgument("no backend tier configured");
  }
  std::shared_ptr<LibFsRecord> me = FindLibFs(libfs);
  if (me == nullptr) {
    return InvalidArgument("unknown LibFS");
  }
  // The destination must be an NVM page leased to the caller (it already holds a
  // read-write MMU grant on it from AllocPages).
  const PageState dest_state = page_table_.Get(dest);
  if (dest_state.state != ResourceState::kLeased || dest_state.lessee != libfs) {
    return PermissionDenied("promote destination not leased to caller");
  }
  {
    const size_t si = ShardIndexOf(ino);
    ShardLock sl(shards_[si]->mu, si, &stats_.shard_lock_contended);
    FileRecord* record = WaitNotBusyLocked(*shards_[si], sl.lock(), ino);
    if (record == nullptr) {
      return NotFound("no such file");
    }
    if (record->writer != libfs && record->readers.count(libfs) == 0) {
      return PermissionDenied("caller holds no grant on file");
    }
    if (record->backend_slots.count(slot) == 0) {
      return InvalidArgument("slot is not a tier entry of this file");
    }
  }
  // Copy with no shard held: backend slots are write-once, so the bytes cannot change
  // under us even if the grant state does. Persist + fence the destination so a later
  // index-entry commit referencing it can never become durable ahead of its contents.
  char buf[kPageSize];
  TRIO_RETURN_IF_ERROR(backend->ReadPage(slot, buf));
  obs::PersistSpan span(pool_, &persist_stats_);
  pool_.Write(pool_.PageAddress(dest), buf, kPageSize);
  span.PersistNow(pool_.PageAddress(dest), kPageSize);
  tier_stats_.promote_reads.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

Status KernelController::CheckTierSlot(Ino ino, uint64_t slot) const {
  SlowBackend* backend = config_.tier.backend;
  if (backend == nullptr) {
    return VerifyEnv::CheckTierSlot(ino, slot);  // No backend: every tier entry is forged.
  }
  if (backend->OwnerOf(slot) != ino) {
    return VerifyFail(VerifyErrorClass::kForeignPage, "I2",
                      "tier entry references a backend slot not owned by this file");
  }
  return OkStatus();
}

}  // namespace trio
