// Helpers shared by the KernelController translation units (controller.cc,
// controller_map.cc, controller_verify.cc). Internal to src/kernel.

#ifndef SRC_KERNEL_CONTROLLER_INTERNAL_H_
#define SRC_KERNEL_CONTROLLER_INTERNAL_H_

#include "src/kernel/controller.h"

namespace trio {
namespace controller_internal {

// Classic owner/group/other permission check against the shadow inode (ground truth, I4).
inline bool AccessAllowed(const ShadowInode& shadow, uint32_t uid, uint32_t gid,
                          bool write) {
  if (uid == 0) {
    return true;
  }
  const uint32_t perm = shadow.mode & 0777;
  uint32_t bits;
  if (uid == shadow.uid) {
    bits = perm >> 6;
  } else if (gid == shadow.gid) {
    bits = perm >> 3;
  } else {
    bits = perm;
  }
  return write ? (bits & 2) != 0 : (bits & 4) != 0;
}

inline size_t WmapSlots(const NvmPool& pool) {
  return SuperblockOf(pool)->wmap_log_pages * kPageSize / sizeof(uint64_t);
}

// --- seqlock-cache payload packing -----------------------------------------------------
// Page/ino states pack as {state | lessee << 8, owner-or-parent}; grants pack as
// {dirent_page, holder << 9 | slot << 1 | writable, lease_deadline_ns}. kDirentsPerPage
// is 32 so a slot index fits the 8 bits between the writable flag and the holder id.

inline uint64_t PackStateLessee(ResourceState state, LibFsId lessee) {
  return (static_cast<uint64_t>(lessee) << 8) | static_cast<uint64_t>(state);
}

inline void UnpackStateLessee(uint64_t word, ResourceState* state, LibFsId* lessee) {
  *state = static_cast<ResourceState>(word & 0xff);
  *lessee = static_cast<LibFsId>(word >> 8);
}

static_assert(kDirentsPerPage <= 256, "grant packing gives dirent slots 8 bits");

inline uint64_t PackGrantWord(LibFsId holder, size_t dirent_slot, bool writable) {
  return (static_cast<uint64_t>(holder) << 9) |
         (static_cast<uint64_t>(dirent_slot) << 1) | (writable ? 1u : 0u);
}

inline void UnpackGrantWord(uint64_t word, LibFsId* holder, size_t* dirent_slot,
                            bool* writable) {
  *holder = static_cast<LibFsId>(word >> 9);
  *dirent_slot = static_cast<size_t>((word >> 1) & 0xff);
  *writable = (word & 1) != 0;
}

}  // namespace controller_internal
}  // namespace trio

#endif  // SRC_KERNEL_CONTROLLER_INTERNAL_H_
