// Helpers shared by the KernelController translation units (controller.cc,
// controller_map.cc, controller_verify.cc). Internal to src/kernel.

#ifndef SRC_KERNEL_CONTROLLER_INTERNAL_H_
#define SRC_KERNEL_CONTROLLER_INTERNAL_H_

#include "src/kernel/controller.h"

namespace trio {
namespace controller_internal {

// Classic owner/group/other permission check against the shadow inode (ground truth, I4).
inline bool AccessAllowed(const ShadowInode& shadow, uint32_t uid, uint32_t gid,
                          bool write) {
  if (uid == 0) {
    return true;
  }
  const uint32_t perm = shadow.mode & 0777;
  uint32_t bits;
  if (uid == shadow.uid) {
    bits = perm >> 6;
  } else if (gid == shadow.gid) {
    bits = perm >> 3;
  } else {
    bits = perm;
  }
  return write ? (bits & 2) != 0 : (bits & 4) != 0;
}

inline size_t WmapSlots(const NvmPool& pool) {
  return SuperblockOf(pool)->wmap_log_pages * kPageSize / sizeof(uint64_t);
}

}  // namespace controller_internal
}  // namespace trio

#endif  // SRC_KERNEL_CONTROLLER_INTERNAL_H_
