// Deadline watchdog for untrusted LibFS callbacks (§4.3's fix-with-timeout, generalized
// to every callback the kernel runs: fix_corruption, recovery programs, revoke).
//
// A LibFS callback is arbitrary user code: it may hang forever, and the kernel must not
// hang with it. Run() executes the callback on a pooled helper thread and waits at most
// `timeout_ms` of wall-clock time. If the callback returns in time, the helper parks back
// into the pool (so steady-state cost is one condition-variable round trip, not a thread
// spawn) and Run() returns true. On timeout Run() returns false and the helper is
// abandoned: it stays detached inside the hung callback until that eventually returns,
// then exits without ever touching the pool again.
//
// Contract for callers: a task handed to Run() may outlive the call, so it must own its
// state — capture by value / shared_ptr, and report results through memory the task keeps
// alive. The kernel escalates on timeout (forced release, checkpoint rollback, full
// re-verification); a late-returning callback finds its session already torn down and its
// kernel entry points fail closed.

#ifndef SRC_KERNEL_WATCHDOG_H_
#define SRC_KERNEL_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace trio {

class CallbackGuard {
 public:
  CallbackGuard() = default;
  CallbackGuard(const CallbackGuard&) = delete;
  CallbackGuard& operator=(const CallbackGuard&) = delete;

  ~CallbackGuard() {
    std::lock_guard<std::mutex> guard(mutex_);
    for (auto& worker : idle_) {
      {
        std::lock_guard<std::mutex> wg(worker->mutex);
        worker->exit = true;
      }
      worker->cv.notify_one();
    }
    idle_.clear();  // Abandoned workers were never returned here; they exit on their own.
  }

  // Runs `fn` under a wall-clock deadline. True iff it completed within `timeout_ms`.
  bool Run(uint64_t timeout_ms, std::function<void()> fn) {
    std::shared_ptr<Worker> worker = Acquire();
    {
      std::lock_guard<std::mutex> wg(worker->mutex);
      worker->task = std::move(fn);
      worker->has_task = true;
      worker->done = false;
    }
    worker->cv.notify_one();
    std::unique_lock<std::mutex> wl(worker->mutex);
    const bool completed = worker->done_cv.wait_for(
        wl, std::chrono::milliseconds(timeout_ms), [&] { return worker->done; });
    if (completed) {
      wl.unlock();
      Release(std::move(worker));
      return true;
    }
    // Still holding worker->mutex: the helper is stuck inside the task (it re-takes the
    // mutex only after the task returns), so this flag is race-free. It tells the helper
    // to exit instead of parking when the task finally finishes.
    worker->abandoned = true;
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  uint64_t timeouts() const { return timeouts_.load(std::memory_order_relaxed); }

 private:
  struct Worker {
    std::mutex mutex;
    std::condition_variable cv;       // Helper waits here for a task (or exit).
    std::condition_variable done_cv;  // Caller waits here for completion.
    std::function<void()> task;
    bool has_task = false;
    bool done = false;
    bool exit = false;
    bool abandoned = false;
  };

  std::shared_ptr<Worker> Acquire() {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      if (!idle_.empty()) {
        std::shared_ptr<Worker> worker = std::move(idle_.back());
        idle_.pop_back();
        return worker;
      }
    }
    auto worker = std::make_shared<Worker>();
    // Detached: joining is impossible in the abandoned case, and the shared_ptr keeps the
    // Worker alive for whichever side (caller or helper) finishes last.
    std::thread([worker] {
      std::unique_lock<std::mutex> wl(worker->mutex);
      while (true) {
        worker->cv.wait(wl, [&] { return worker->has_task || worker->exit; });
        if (worker->exit) {
          return;
        }
        std::function<void()> task = std::move(worker->task);
        worker->task = nullptr;
        worker->has_task = false;
        wl.unlock();
        task();
        wl.lock();
        worker->done = true;
        worker->done_cv.notify_all();
        if (worker->abandoned || worker->exit) {
          return;
        }
      }
    }).detach();
    return worker;
  }

  void Release(std::shared_ptr<Worker> worker) {
    std::lock_guard<std::mutex> guard(mutex_);
    idle_.push_back(std::move(worker));
  }

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Worker>> idle_;
  std::atomic<uint64_t> timeouts_{0};
};

}  // namespace trio

#endif  // SRC_KERNEL_WATCHDOG_H_
