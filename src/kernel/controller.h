// The in-kernel access controller (§3.2, §4.3, §4.5). It decides which shared file-system
// resources (NVM pages, inode numbers) each LibFS can access, enforces the
// concurrent-read/exclusive-write file sharing policy with leases, maintains the global
// ownership information the integrity verifier reads (I2), checkpoints file metadata
// before write grants, drives verification when write access transfers, and handles
// corruption (fix-with-timeout, quarantine-to-offender, checkpoint rollback).
//
// In the paper this is a Linux kernel module; here it is an in-process object. Every public
// entry point models one user->kernel crossing and is counted in stats().syscalls, which
// the cost models in src/sim consume.
//
// Scale-out (DESIGN.md §4.10): the controller is SHARDED. File records and ino states are
// partitioned by hash(ino) into `controller_shards` shards, each guarded by a plain
// (non-recursive) mutex; page ownership lives in a separately striped table with 64-page
// range affinity; read-mostly ownership and grant lookups take a lock-free seqlock-cache
// fast path. Cross-shard operations (renames across shards, reconciliation that touches
// children in other shards) use a two-phase protocol: collect the shard set, then acquire
// in ascending index order (enforced at runtime by ShardRank).
//
// Lock hierarchy (acquire strictly downward; each level optional):
//   shard mutexes (ascending index only)
//     -> per-LibFS record mutex (at most one at a time)
//       -> alloc_mu_ (free pages / free inos / next_ino_)
//       -> page-table stripe mutexes
//       -> quarantine_mu_ / wmap_mu_
//       -> MmuSim internal mutex (leaf)
// registry_mu_ protects the LibFS registry only and is never held across any other
// acquisition (lookups copy out a shared_ptr). LibFS callbacks and the integrity verifier
// ALWAYS run with no shard held (ShardRank::AssertNoneHeld); in-flight verifications pin
// their file with a per-record `busy` flag instead of holding a lock, and waiters sleep on
// the shard's condition variable.

#ifndef SRC_KERNEL_CONTROLLER_H_
#define SRC_KERNEL_CONTROLLER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/core/core_state.h"
#include "src/core/format.h"
#include "src/core/ownership.h"
#include "src/kernel/delegation.h"
#include "src/kernel/mmu_sim.h"
#include "src/kernel/shard.h"
#include "src/kernel/watchdog.h"
#include "src/obs/stats.h"
#include "src/verifier/verifier.h"

namespace trio {

class SlowBackend;      // src/sim/backend.h
class DigestionService;  // src/kernel/digestion.h

// Tiering (DESIGN.md §4.11): the NVM pool absorbs every write at NVM latency; a
// background digestion service migrates cold, unmapped files' data pages to the slow
// backend when NVM occupancy crosses high_watermark and stops once it falls back under
// low_watermark. Reads of digested pages fault back in through PromoteRead.
struct TierConfig {
  SlowBackend* backend = nullptr;  // Not owned; null disables tiering entirely.
  double high_watermark = 0.75;    // Background digestion starts above this occupancy...
  double low_watermark = 0.50;     // ...and stops below this.
  size_t batch_pages = 32;         // Pages migrated per digest batch (one fence each).
  bool start_digestion = false;    // Spin up the background digestion thread.
  uint64_t scan_interval_ms = 2;   // Background thread poll period.
  // Only files whose last grant ended at least this long ago are digestible.
  uint64_t min_idle_ns = 0;
};

struct KernelConfig {
  uint64_t lease_ms = 100;        // §6.5: "ArckFS's 100ms lease time".
  uint64_t fix_timeout_ms = 10;   // Deadline for a LibFS to fix its own corruption.
  // Run untrusted LibFS callbacks (fix_corruption, recovery, revoke) under a deadline
  // watchdog (CallbackGuard). A callback that overruns is abandoned and the kernel
  // escalates: failed fix -> quarantine + checkpoint rollback; hung recovery program ->
  // verify every file (its journal state is unknown); hung revoke past the lease
  // deadline -> forced release. Off = trust every callback to return (the pre-FaultSim
  // behavior, with no helper-thread hop on the revoke path).
  bool guard_callbacks = true;
  uint64_t recovery_timeout_ms = 1000;  // Deadline for one LibFS recovery program.
  // Budget for one integrity verification (0 = unbounded). Enforced cooperatively inside
  // the verifier's walks (see VerifyRequest::deadline_ns); an overrun is treated exactly
  // like corruption — the state is unverifiable, so rollback + quarantine.
  uint64_t verify_timeout_ms = 50;
  // Quarantined files retained at once; the oldest entry is evicted beyond this (a
  // malicious tenant must not grow kernel memory without bound by corrupting files).
  size_t max_quarantined_files = 16;
  // TEST ONLY: plant a page double-free on ownership transfers that raced a lease
  // revocation. Exists so the schedule explorer can prove it finds and minimizes a real
  // cross-tenant interleaving bug; never enable outside tests.
  bool canary_leak_on_contended_transfer = false;
  // Extra wall-clock grace past the lease deadline before an unresponsive holder's
  // mapping is reclaimed by force.
  uint64_t revoke_grace_ms = 50;
  bool start_delegation = false;  // Spin up delegation threads at construction.
  // Thresholds, ring sizing, spin/park and stealing knobs for the delegation pool
  // (§4.5); benchmarks sweep these through here.
  DelegationConfig delegation;
  // Controller shards (rounded up to a power of two, clamped to [1, 64]). 1 reproduces
  // the legacy one-big-mutex controller; the fleet bench gates 8 > 1.
  size_t controller_shards = 8;
  // Lock-free seqlock-cache fast path for StateOfPage/StateOfIno/LookupGrant on the
  // syscall boundary. Off = every lookup goes through the shard/stripe mutexes (the
  // legacy read path; the fleet bench's 1-shard baseline).
  bool lockfree_lookup = true;
  // Slots per seqlock cache (rounded up to a power of two). Direct-mapped; collisions
  // only cost fast-path misses.
  size_t ownership_cache_slots = 4096;
  // NVM absorb tier / slow-backend digestion (DESIGN.md §4.11).
  TierConfig tier;
};

// Callbacks a LibFS registers with the kernel controller.
struct LibFsCallbacks {
  // The kernel asks the LibFS to release a file (lease revocation). Must synchronously
  // flush and call UnmapFile before returning. May be invoked from another app's thread.
  std::function<void(Ino)> revoke;
  // Corruption detected in a file this LibFS wrote; it may repair the core state in place.
  // Return true to request re-verification. Called with the failure diagnostic.
  std::function<bool(Ino, const Status&)> fix_corruption;
  // Crash-recovery program (§4.4): replay/undo this LibFS's journal. Untrusted: the kernel
  // re-verifies all write-mapped files afterwards.
  std::function<void()> recovery;
  // This LibFS's file failed verification and was impounded (rolled back + quarantined);
  // the mapping is already gone. The LibFS should drop cached state for `ino` and may
  // RetrieveQuarantine the condemned images. Must not call back into the kernel.
  std::function<void(Ino, const Status&)> quarantined;
};

struct LibFsOptions {
  uint32_t uid = 0;
  uint32_t gid = 0;
  LibFsCallbacks callbacks;
};

struct MapInfo {
  PageNumber dirent_page = 0;  // 0 => the root dirent inside the superblock.
  size_t dirent_slot = 0;
  bool writable = false;
  uint64_t lease_deadline_ns = 0;
  PageNumber first_index_page = 0;  // As of grant time (convenience for rebuild).
};

// Registered into obs::StatRegistry under layer "kernel" (summed across controllers).
struct KernelStats {
  obs::Counter syscalls;
  obs::Counter maps;
  obs::Counter unmaps;
  obs::Counter verifications;
  obs::Counter verify_failures;
  obs::Counter corruptions_fixed_by_libfs;
  obs::Counter corruptions_rolled_back;
  obs::Counter revocations;
  // LibFS callbacks abandoned by the deadline watchdog (hung fix/recovery/revoke).
  obs::Counter callback_timeouts;
  obs::Counter forced_releases;  // Leases reclaimed from unresponsive holders.
  obs::Counter verify_timeouts;  // Verifications that overran verify_timeout_ms.
  obs::Counter files_quarantined;
  obs::Counter quarantine_evictions;  // Oldest entries dropped past max_quarantined_files.
  obs::Counter pages_allocated;
  obs::Counter pages_freed;
  // Sharding telemetry: lock-free grant-lookup hits/misses on the syscall boundary,
  // shard-mutex acquisitions that found the lock held, and multi-shard (two-phase)
  // acquisitions.
  obs::Counter grant_fast_hits;
  obs::Counter grant_fast_misses;
  obs::Counter shard_lock_contended;
  obs::Counter cross_shard_acquires;
  // Sharing-cost breakdown (Fig 8): cumulative nanoseconds per phase.
  obs::Counter map_ns;
  obs::Counter unmap_ns;
  obs::Counter verify_ns;
  obs::Counter checkpoint_ns;
  // Per-syscall latency distribution (boundary entry to exit), recorded by SyscallScope.
  obs::LatencyHistogram syscall_latency;

  KernelStats()
      : reg_("kernel", {{"syscalls", &syscalls},
                        {"maps", &maps},
                        {"unmaps", &unmaps},
                        {"verifications", &verifications},
                        {"verify_failures", &verify_failures},
                        {"corruptions_fixed_by_libfs", &corruptions_fixed_by_libfs},
                        {"corruptions_rolled_back", &corruptions_rolled_back},
                        {"revocations", &revocations},
                        {"callback_timeouts", &callback_timeouts},
                        {"forced_releases", &forced_releases},
                        {"verify_timeouts", &verify_timeouts},
                        {"files_quarantined", &files_quarantined},
                        {"quarantine_evictions", &quarantine_evictions},
                        {"pages_allocated", &pages_allocated},
                        {"pages_freed", &pages_freed},
                        {"grant_fast_hits", &grant_fast_hits},
                        {"grant_fast_misses", &grant_fast_misses},
                        {"shard_lock_contended", &shard_lock_contended},
                        {"cross_shard_acquires", &cross_shard_acquires},
                        {"map_ns", &map_ns},
                        {"unmap_ns", &unmap_ns},
                        {"verify_ns", &verify_ns},
                        {"checkpoint_ns", &checkpoint_ns},
                        {"syscall_latency", &syscall_latency}}) {}

  void Reset() {
    syscalls = 0;
    maps = 0;
    unmaps = 0;
    verifications = 0;
    verify_failures = 0;
    corruptions_fixed_by_libfs = 0;
    corruptions_rolled_back = 0;
    revocations = 0;
    callback_timeouts = 0;
    forced_releases = 0;
    verify_timeouts = 0;
    files_quarantined = 0;
    quarantine_evictions = 0;
    pages_allocated = 0;
    pages_freed = 0;
    grant_fast_hits = 0;
    grant_fast_misses = 0;
    shard_lock_contended = 0;
    cross_shard_acquires = 0;
    map_ns = 0;
    unmap_ns = 0;
    verify_ns = 0;
    checkpoint_ns = 0;
    syscall_latency.Reset();
  }

 private:
  obs::ScopedRegistration reg_;
};

// Kernel-side tier counters, registered under layer "tier" (summed with the backend's
// own media counters and the LibFS promote-cache counters).
struct KernelTierStats {
  obs::Counter digest_batches;     // Digest batches committed (one fence each).
  obs::Counter digest_pages;       // NVM pages migrated to the backend.
  obs::Counter digest_bytes;       // Bytes those pages carried.
  obs::Counter watermark_stalls;   // AllocPages calls that had to digest synchronously.
  obs::Counter promote_reads;      // PromoteRead calls served from the backend.
  obs::Counter backend_slots_freed;  // Slots released at reconcile/reclaim.

  KernelTierStats()
      : reg_("tier", {{"digest_batches", &digest_batches},
                      {"digest_pages", &digest_pages},
                      {"digest_bytes", &digest_bytes},
                      {"watermark_stalls", &watermark_stalls},
                      {"promote_reads", &promote_reads},
                      {"backend_slots_freed", &backend_slots_freed}}) {}

  void Reset() {
    digest_batches = 0;
    digest_pages = 0;
    digest_bytes = 0;
    watermark_stalls = 0;
    promote_reads = 0;
    backend_slots_freed = 0;
  }

 private:
  obs::ScopedRegistration reg_;
};

// Page-number -> PageState, striped by 64-page runs (an allocation's pages land on one
// stripe; independent files contend on different stripes) with a lock-free seqlock-cache
// read path. A cache entry is an authoritative snapshot INCLUDING "free": Set/Erase write
// through under the stripe lock, so the cache may forget but never lies.
class PageOwnershipTable {
 public:
  void Reset(size_t stripes, size_t cache_slots);
  PageState Get(PageNumber page) const;  // Lock-free fast path; populates on miss.
  void Set(PageNumber page, const PageState& state);
  void Erase(PageNumber page);
  bool Contains(PageNumber page) const;
  // Atomically erase iff currently leased by `libfs`. Returns whether it fired.
  bool EraseIfLeasedBy(PageNumber page, LibFsId libfs);
  void Clear();

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<PageNumber, PageState> map;
  };
  size_t StripeIndexOf(PageNumber page) const { return (page >> 6) & stripe_mask_; }

  std::vector<std::unique_ptr<Stripe>> stripes_;
  size_t stripe_mask_ = 0;
  mutable SeqlockCache<2> cache_;
};

class KernelController : public OwnershipView, public VerifyEnv {
 public:
  KernelController(NvmPool& pool, KernelConfig config = {},
                   Clock* clock = SystemClock::Instance());
  ~KernelController();
  KernelController(const KernelController&) = delete;
  KernelController& operator=(const KernelController&) = delete;

  // Rebuilds ownership tables by scanning the directory tree from the root (the tables are
  // auxiliary state, §3.2). Detects an unclean shutdown; call RunRecovery() after LibFSes
  // have re-registered in that case.
  Status Mount();
  // Marks a clean shutdown. All LibFSes must have unregistered.
  Status Unmount();
  bool NeedsRecovery() const { return needs_recovery_; }
  // §4.4: invoke each registered LibFS's recovery program, then verify every file that was
  // write-mapped at crash time.
  Status RunRecovery();

  // ---- LibFS lifecycle ----
  LibFsId RegisterLibFs(const LibFsOptions& options);
  void UnregisterLibFs(LibFsId libfs);

  // ---- Resource leasing ----
  Status AllocPages(LibFsId libfs, size_t count, int node_hint,
                    std::vector<PageNumber>* out);
  Status FreePages(LibFsId libfs, const std::vector<PageNumber>& pages);
  Result<Ino> AllocIno(LibFsId libfs);
  // Batched form: LibFSes amortize the kernel crossing over many creates (§4.5 per-CPU
  // inode allocators live LibFS-side as caches over this).
  Status AllocInos(LibFsId libfs, size_t count, std::vector<Ino>* out);
  Status FreeIno(LibFsId libfs, Ino ino);

  // ---- Mapping / sharing ----
  Result<MapInfo> MapRoot(LibFsId libfs, bool write);
  // `parent` is the directory through which the LibFS resolved `ino` (it must hold at
  // least a read mapping of the parent).
  Result<MapInfo> MapFile(LibFsId libfs, Ino parent, Ino ino, bool write);
  Status UnmapFile(LibFsId libfs, Ino ino);
  // Revalidate an existing grant without a full MapFile. Lock-free when the seqlock grant
  // cache hits (the scalable syscall-boundary read path); falls back to one shard lock.
  // NotFound if the caller holds no suitable grant — callers then MapFile as usual.
  Result<MapInfo> LookupGrant(LibFsId libfs, Ino ino);
  // Verify now and replace the checkpoint with the current (valid) state, keeping the
  // write grant (§4.3 "commit call").
  Status CommitFile(LibFsId libfs, Ino ino);

  // ---- Permission changes (I4 path: shadow inode is ground truth) ----
  Status Chmod(LibFsId libfs, Ino ino, uint32_t perm_bits);
  Status Chown(LibFsId libfs, Ino ino, uint32_t uid, uint32_t gid);

  // Corrupted files quarantined to their offending writer (§4.3: "makes the corrupted file
  // a private file to LibFS A"): raw page images the LibFS can salvage.
  std::vector<std::vector<char>> RetrieveQuarantine(LibFsId libfs, Ino ino);
  // Inspection: the structured VerifyError status that condemned `ino`, or NotFound if the
  // ino is not quarantined. (Harnesses assert the taxonomy class without draining images.)
  Status QuarantineErrorOf(Ino ino) const;
  size_t QuarantineCount() const;

  // ---- OwnershipView (read access for the integrity verifier) ----
  PageState StateOfPage(PageNumber page) const override;
  InoState StateOfIno(Ino ino) const override;

  // ---- VerifyEnv ----
  Status CheckRemovedChildDir(Ino child, LibFsId writer) const override;
  bool IsMovePermitted(Ino child, Ino new_parent, LibFsId writer) const override;
  Status CheckTierSlot(Ino ino, uint64_t slot) const override;

  // ---- Tiering (src/kernel/digestion.cc) ----
  // Promote-back half of digestion: copies backend slot `slot` (a tier entry of `ino`,
  // which the caller must hold a grant on) into `dest`, an NVM page leased to the
  // caller, then persists + fences the destination — so a subsequent index-entry commit
  // referencing `dest` can never become durable ahead of the data it points at.
  Status PromoteRead(LibFsId libfs, Ino ino, uint64_t slot, PageNumber dest);
  // Synchronously digests up to `target_pages` cold data pages NVM -> backend.
  // Returns the number of pages migrated (0 when tiering is disabled or nothing is cold).
  size_t DigestNow(size_t target_pages);
  // Fraction of the file region currently in use (1.0 = no free NVM pages).
  double NvmOccupancy() const;
  void StartDigestion();
  SlowBackend* backend() const { return config_.tier.backend; }
  KernelTierStats& tier_stats() { return tier_stats_; }

  NvmPool& pool() { return pool_; }
  MmuSim& mmu() { return mmu_; }
  KernelStats& stats() { return stats_; }
  IntegrityVerifier& verifier() { return *verifier_; }
  DelegationPool* delegation() { return delegation_.get(); }
  void StartDelegation();
  Clock* clock() { return clock_; }
  const KernelConfig& config() const { return config_; }
  size_t shard_count() const { return shards_.size(); }

  // Test/inspection helpers.
  size_t FreePageCount() const;
  bool IsWriteMapped(Ino ino) const;
  Result<Ino> ParentOf(Ino ino) const;

 private:
  struct FileCheckpointData {
    DirentBlock meta;
    std::vector<PageNumber> pages;                    // Checkpointed page numbers.
    std::vector<std::unique_ptr<char[]>> contents;    // kPageSize each, parallel to pages.
    std::vector<CheckpointChild> children;            // Directories only.
  };

  struct FileRecord {
    Ino ino = kInvalidIno;
    Ino parent = kInvalidIno;
    bool is_dir = false;
    PageNumber dirent_page = 0;  // 0 => superblock root.
    size_t dirent_slot = 0;
    PageNumber first_index_page = 0;  // As of last reconcile.
    std::unordered_set<PageNumber> pages;
    // Backend slots this file's tier entries reference (the backend-tier analogue of
    // `pages`; maintained by digestion, reconcile, and the mount rescan).
    std::unordered_set<uint64_t> backend_slots;
    LibFsId writer = kNoLibFs;
    std::unordered_set<LibFsId> readers;
    uint64_t lease_deadline_ns = 0;
    // Last grant activity (MapFile/LookupGrant), for coldest-first digestion ordering.
    uint64_t last_use_ns = 0;
    std::unique_ptr<FileCheckpointData> checkpoint;
    // Verification in flight: the record is pinned (no release/reclaim/grant may touch
    // it) while its writer's work is verified OUTSIDE the shard lock. Waiters sleep on
    // the shard cv. This replaces the recursive-mutex reentry the verifier used to need.
    bool busy = false;
  };

  struct LibFsRecord {
    LibFsId id = kNoLibFs;
    uint32_t uid = 0;             // Immutable after registration.
    uint32_t gid = 0;             // Immutable after registration.
    LibFsCallbacks callbacks;     // Immutable after registration.
    // `mu` guards the five sets below. Rank: after shard mutexes; at most one LibFS
    // record mutex held at a time; nothing else is acquired under it.
    std::mutex mu;
    std::unordered_set<PageNumber> leased_pages;
    std::unordered_set<Ino> leased_inos;
    std::unordered_set<Ino> write_mapped;
    std::unordered_set<Ino> read_mapped;
    // Children that disappeared from a verified directory and are not yet known to be
    // renamed elsewhere. Resolved (reclaimed or adopted) when the session quiesces.
    std::unordered_set<Ino> pending_orphans;
  };

  struct Shard {
    ShardMutex mu;
    std::condition_variable cv;  // Signalled when a record's busy flag clears.
    std::unordered_map<Ino, FileRecord> records;
    std::unordered_map<Ino, InoState> ino_states;
  };

  // Naming discipline (enforceable now that shard mutexes are non-recursive):
  //   *Locked        — caller holds the shard lock(s) covering every ino the method
  //                    touches (single shard, an OrderedShardSpan, or all shards).
  //   everything else — must be entered with NO shard lock held; acquires what it needs.
  // ShardRank aborts on any violation of the ascending-acquire order at runtime.

  // ---- shard plumbing (controller.cc) ----
  size_t ShardIndexOf(Ino ino) const {
    return static_cast<size_t>((ino * 0x9e3779b97f4a7c15ull) >> 32) & shard_mask_;
  }
  Shard& ShardOf(Ino ino) const { return *shards_[ShardIndexOf(ino)]; }
  static FileRecord* FindRecordLocked(Shard& shard, Ino ino);
  // Blocks on the shard cv until `ino`'s record is not busy; returns the re-found record
  // (nullptr if it vanished while waiting). `lk` is the shard lock, held on entry/exit.
  FileRecord* WaitNotBusyLocked(Shard& shard, std::unique_lock<std::mutex>& lk, Ino ino);
  std::shared_ptr<LibFsRecord> FindLibFs(LibFsId id) const;
  std::vector<ShardMutex*> ShardMutexesFor(const std::vector<size_t>& indices) const;
  std::vector<size_t> AllShardIndices() const;
  void SetInoStateLocked(Shard& shard, Ino ino, const InoState& state);
  void EraseInoStateLocked(Shard& shard, Ino ino);
  void ReleasePageToFree(PageNumber page);  // Table erase + free-list push (alloc_mu_).

  // ---- mapping / grants (controller_map.cc) ----
  DirentBlock* DirentOfLocked(const FileRecord& record) const;
  Status TakeCheckpointLocked(FileRecord* record);
  void GrantFilePagesLocked(LibFsId libfs, const FileRecord& record, bool write);
  // Releases the MMU references this LibFS's mapping of `record` holds. `write` names the
  // mapping strength being torn down (the MMU refcounts per strength; see MmuSim).
  void RevokeFilePagesLocked(LibFsId libfs, const FileRecord& record, bool write);
  void PublishGrantLocked(const FileRecord& record, LibFsId holder, bool writable);
  // Lock-free grant revalidation against the seqlock cache. nullopt = miss.
  std::optional<MapInfo> TryFastGrant(LibFsId libfs, Ino ino, bool write);
  // Tear down `libfs`'s write session on `ino`: clear writer/checkpoint, release MMU
  // refs, drop the grant cache entry and wmap log slot, clear busy, resolve orphans if
  // the session quiesced. PRE: this thread set `busy` on the record; no locks held.
  void FinishWriteRelease(LibFsId libfs, Ino ino,
                          const std::shared_ptr<LibFsRecord>& me);
  // Reclaims `holder`'s mapping of `ino` after its revoke callback overran the lease
  // deadline: verify-and-reconcile (writers), revoke MMU grants, drop the lease.
  void ForceRelease(Ino ino, LibFsId holder);

  // ---- verification / safety (controller_verify.cc) ----
  // Verify `ino`'s write session and reconcile (or fix/quarantine/rollback on failure).
  // PRE: this thread set `busy` on the record; no locks held. The caller still owns the
  // writer teardown (FinishWriteRelease) afterwards.
  Status VerifyAndReconcile(Ino ino);
  // Apply a verification report. Phase-two of the cross-shard protocol: acquires the
  // shard of `ino` plus the shards of every child the report names, ascending.
  Status ApplyReport(Ino ino, const VerifyReport& report);
  void RollbackToCheckpointLocked(FileRecord* record);
  void QuarantineLocked(FileRecord* record, const Status& reason);
  // Self-locking subtree reclaim (leaf-first; waits out busy records). PRE: no locks
  // held and this thread does not itself hold `busy` on anything in the subtree.
  void ReclaimTree(Ino ino);
  void ReclaimOne(Ino ino);
  void ResolveOrphans(const std::shared_ptr<LibFsRecord>& libfs);

  // ---- tiering internals (digestion.cc) ----
  // Cold-file scan: files with no writer, no readers, not busy, idle past min_idle_ns,
  // with NVM data pages left to migrate; coldest (smallest last_use_ns) first. Each
  // shard is scanned under its own lock, one at a time.
  std::vector<Ino> CollectDigestCandidates(size_t max_files);
  // Migrates up to `max_pages` data pages of `ino` to the backend (one fence for the
  // whole batch). Pins the record busy while copying OUTSIDE the shard lock, exactly
  // like verification — so a migration can never race a grant. Returns pages moved.
  size_t DigestFile(Ino ino, size_t max_pages);

  // ---- lifecycle internals (controller.cc) ----
  Status ScanTreeLocked(Ino ino, Ino parent, PageNumber dirent_page, size_t dirent_slot,
                        const DirentBlock& dirent, std::unordered_set<PageNumber>* seen_pages,
                        std::unordered_set<Ino>* seen_inos);
  void WmapLogAdd(Ino ino);
  void WmapLogRemove(Ino ino);
  uint64_t NowNs() { return clock_->NowNs(); }

  NvmPool& pool_;
  KernelConfig config_;
  Clock* clock_;
  MmuSim mmu_;
  // mutable: const read paths (StateOf*, VerifyEnv, inspection) count contention/hits.
  mutable KernelStats stats_;
  // Persistence accounting for every PersistSpan the controller opens (layer "kernel").
  obs::PersistStats persist_stats_{"kernel"};
  std::unique_ptr<IntegrityVerifier> verifier_;
  std::unique_ptr<DelegationPool> delegation_;
  std::unique_ptr<DigestionService> digestion_;  // Background tier migration thread.
  mutable KernelTierStats tier_stats_;
  uint64_t file_region_pages_ = 0;  // Denominator for NvmOccupancy (set at Mount).
  CallbackGuard callback_guard_;  // Deadline watchdog for untrusted LibFS callbacks.

  // Sharded ownership state. unique_ptr: Shard holds a condition_variable (immovable).
  // mutable: const read paths (StateOf*, VerifyEnv) still take shard locks.
  mutable std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_mask_ = 0;
  PageOwnershipTable page_table_;
  mutable SeqlockCache<2> ino_cache_;    // ino -> packed InoState.
  mutable SeqlockCache<3> grant_cache_;  // ino -> packed grant (one holder).

  // LibFS registry. registry_mu_ is never held across any other lock acquisition;
  // lookups copy the shared_ptr out.
  mutable std::mutex registry_mu_;
  std::unordered_map<LibFsId, std::shared_ptr<LibFsRecord>> libfses_;
  LibFsId next_libfs_id_ = 1;

  // One impounded file (§4.3): who corrupted it, the structured verdict, and the raw page
  // images at condemnation time. `sequence` orders entries for oldest-first eviction;
  // fifo_ is the eviction queue (stale entries — retrieved or re-quarantined — are
  // skipped lazily, keeping eviction O(1) amortized instead of an O(n) rescan per
  // insert).
  struct QuarantineEntry {
    LibFsId offender = kNoLibFs;
    Status error;
    std::vector<std::vector<char>> images;
    uint64_t sequence = 0;
  };
  mutable std::mutex quarantine_mu_;
  std::unordered_map<Ino, QuarantineEntry> quarantine_;
  std::deque<std::pair<uint64_t, Ino>> quarantine_fifo_;  // (sequence, ino), oldest first.
  uint64_t quarantine_sequence_ = 0;

  // Revocation-driven transfers in flight (the canary hook reads this racily by design —
  // the schedule explorer drives it single-threaded, where it is exact).
  std::atomic<int> contended_transfer_depth_{0};

  // Free resources. Per-NUMA-node free page lists (per-CPU sharding happens in the
  // LibFS-side allocator cache; the kernel hands out batches).
  mutable std::mutex alloc_mu_;
  std::vector<std::vector<PageNumber>> free_pages_by_node_;
  Ino next_ino_ = 2;
  std::vector<Ino> free_inos_;

  std::mutex wmap_mu_;  // Serializes write-map log read-modify-write cycles.

  bool mounted_ = false;
  bool needs_recovery_ = false;  // Mount/RunRecovery/Unmount are single-threaded.
};

}  // namespace trio

#endif  // SRC_KERNEL_CONTROLLER_H_
