// Per-file radix tree (§4.2): auxiliary state mapping a file-page index (byte offset /
// 4 KiB) to the data page number cached from the file's index pages. Lock-free lookups,
// atomically installed interior nodes; concurrent inserts are safe. Mutation happens under
// the file's range/inode locks so a slot is never written by two threads at once.
//
// Three levels of fanout 512 cover 512^3 pages = 512 TiB per file.

#ifndef SRC_LIBFS_RADIX_TREE_H_
#define SRC_LIBFS_RADIX_TREE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/nvm/nvm.h"

namespace trio {

class PageRadixTree {
 public:
  static constexpr int kBits = 9;
  static constexpr uint64_t kFanout = 1ull << kBits;  // 512, matching kIndexEntriesPerPage+1.
  static constexpr uint64_t kMask = kFanout - 1;
  static constexpr uint64_t kMaxPages = kFanout * kFanout * kFanout;

  PageRadixTree() = default;
  ~PageRadixTree() { DeleteLevel(root_.load(std::memory_order_relaxed), 0); }
  PageRadixTree(const PageRadixTree&) = delete;
  PageRadixTree& operator=(const PageRadixTree&) = delete;

  // Data page number for file page `index`, or 0 (= hole / unknown).
  PageNumber Lookup(uint64_t index) const {
    if (index >= kMaxPages) {
      return 0;
    }
    const Node* node = root_.load(std::memory_order_acquire);
    if (node == nullptr) {
      return 0;
    }
    const Node* mid = Child(node, (index >> (2 * kBits)) & kMask);
    if (mid == nullptr) {
      return 0;
    }
    const Node* leaf = Child(mid, (index >> kBits) & kMask);
    if (leaf == nullptr) {
      return 0;
    }
    return leaf->slots[index & kMask].load(std::memory_order_acquire);
  }

  // Installs index -> page. `page` == 0 erases.
  void Insert(uint64_t index, PageNumber page) {
    if (index >= kMaxPages) {
      return;
    }
    Node* node = GetOrCreate(&root_);
    Node* mid = GetOrCreateChild(node, (index >> (2 * kBits)) & kMask);
    Node* leaf = GetOrCreateChild(mid, (index >> kBits) & kMask);
    leaf->slots[index & kMask].store(page, std::memory_order_release);
  }

  void Erase(uint64_t index) { Insert(index, 0); }

  // Drops everything (rebuild path). Not safe against concurrent readers; callers hold the
  // inode lock exclusively.
  void Clear() {
    DeleteLevel(root_.exchange(nullptr, std::memory_order_acq_rel), 0);
  }

 private:
  struct Node {
    // Interior levels store Node*; the leaf level stores page numbers. Both are 8 bytes,
    // so one slot array serves double duty via reinterpretation kept private to this class.
    std::atomic<uint64_t> slots[kFanout] = {};
  };

  static const Node* Child(const Node* node, uint64_t slot) {
    return reinterpret_cast<const Node*>(node->slots[slot].load(std::memory_order_acquire));
  }

  static Node* GetOrCreate(std::atomic<Node*>* cell) {
    Node* node = cell->load(std::memory_order_acquire);
    if (node != nullptr) {
      return node;
    }
    auto fresh = std::make_unique<Node>();
    Node* expected = nullptr;
    if (cell->compare_exchange_strong(expected, fresh.get(), std::memory_order_acq_rel)) {
      return fresh.release();
    }
    return expected;
  }

  static Node* GetOrCreateChild(Node* node, uint64_t slot) {
    uint64_t existing = node->slots[slot].load(std::memory_order_acquire);
    if (existing != 0) {
      return reinterpret_cast<Node*>(existing);
    }
    auto fresh = std::make_unique<Node>();
    uint64_t expected = 0;
    if (node->slots[slot].compare_exchange_strong(
            expected, reinterpret_cast<uint64_t>(fresh.get()), std::memory_order_acq_rel)) {
      return fresh.release();
    }
    return reinterpret_cast<Node*>(expected);
  }

  void DeleteLevel(Node* node, int depth) {
    if (node == nullptr) {
      return;
    }
    if (depth < 2) {
      for (auto& slot : node->slots) {
        DeleteLevel(reinterpret_cast<Node*>(slot.load(std::memory_order_relaxed)), depth + 1);
      }
    }
    delete node;
  }

  std::atomic<Node*> root_{nullptr};
};

}  // namespace trio

#endif  // SRC_LIBFS_RADIX_TREE_H_
