// ArckFS (§4): the generic POSIX-like LibFS built on the Trio architecture. One ArckFs
// instance is one LibFS belonging to one application (or to one trust group whose
// processes share it, §3.2). It realizes the full file system design in userspace:
//
//  * Direct access: after the kernel controller maps a file, every data and metadata
//    operation runs on loads/stores to the core state — no kernel crossing.
//  * Auxiliary state (§4.2): per-file radix tree, readers-writer inode lock + range lock;
//    per-directory resizable chained hash table with per-bucket locks, multiple logging
//    tails and an index tail; fd table; per-CPU leases of pages/inos; per-CPU undo journal.
//  * Crash consistency (§4.4): metadata ops are synchronous and atomic (ordered persists
//    committing on an 8-byte store); data ops are synchronous, not atomic; rename uses the
//    undo journal; fsync is a no-op.
//  * Optane adaptation (§4.5): large accesses are shipped to the kernel's delegation
//    threads (reads >= 32 KiB, writes >= 256 B) and file pages are striped across NUMA
//    nodes by page index.
//
// KVFS and FPFS (§5) subclass this and replace auxiliary state / interfaces — which is
// precisely the customization Trio permits without touching the trusted entities.

#ifndef SRC_LIBFS_ARCKFS_H_
#define SRC_LIBFS_ARCKFS_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/range_lock.h"
#include "src/common/rwlock.h"
#include "src/kernel/controller.h"
#include "src/libfs/dir_index.h"
#include "src/libfs/fd_table.h"
#include "src/libfs/fs_interface.h"
#include "src/libfs/journal.h"
#include "src/libfs/lease_cache.h"
#include "src/libfs/op_ring.h"
#include "src/libfs/promote_cache.h"
#include "src/libfs/radix_tree.h"
#include "src/obs/stats.h"

namespace trio {

struct ArckFsConfig {
  uint32_t uid = 0;
  uint32_t gid = 0;
  // Ship large copies to the kernel's delegation threads (requires
  // kernel.StartDelegation()). Off = the "ArckFS-no-dele" configuration of §6.
  bool use_delegation = false;
  size_t page_batch = 64;
  size_t ino_batch = 64;
  size_t journal_shards = 4;
  // §4.4: "Extending the LibFS to support other consistency modes is simple by following
  // the prior approaches." sync_data=false is the relaxed-data mode: data writes skip the
  // per-write flush and become durable at fsync/release; metadata stays synchronous and
  // atomic.
  bool sync_data = true;
  // Per-LibFS overrides of the delegation size thresholds (§4.5). 0 = inherit the
  // kernel delegation pool's DelegationConfig values.
  size_t delegate_read_threshold = 0;
  size_t delegate_write_threshold = 0;
  // Journal pages from a previous incarnation to undo during crash recovery (§4.4). The
  // application persists these page numbers across restarts (in a real deployment the
  // LibFS would stash them in a well-known private file).
  std::vector<PageNumber> recover_journal_pages;
  // Optional corruption-fix hook the kernel calls on a failed verification of our file.
  std::function<bool(Ino, const Status&)> fix_corruption;
  // Async submission rings (src/libfs/op_ring.h). enabled=true starts a per-LibFS
  // drainer; application threads then reach ring_engine() for the async path. The
  // synchronous FsInterface API keeps working either way.
  OpRingConfig ring;
  // Promote cache for digested (backend-tier) pages (src/libfs/promote_cache.h).
  // 0 slots = disabled: tier reads still work but pay a kernel promote every time.
  size_t promote_cache_slots = 0;
  size_t promote_cache_shards = 8;
  // Optional replacement-policy override (unowned); null = built-in CLOCK.
  PromoteCache::Policy* promote_policy = nullptr;
};

// Registered into obs::StatRegistry under layer "libfs" (summed across instances).
struct LibFsStats {
  obs::Counter rebuilds;
  obs::Counter rebuild_ns;
  obs::Counter reads;
  obs::Counter writes;
  obs::Counter creates;
  obs::Counter unlinks;
  obs::Counter lookups;
  obs::Counter revocations;
  // Cumulative ns ops spent waiting in LockForOp, attributed per-op when tracing is on.
  obs::Counter lock_wait_ns;

  LibFsStats()
      : reg_("libfs", {{"rebuilds", &rebuilds},
                       {"rebuild_ns", &rebuild_ns},
                       {"reads", &reads},
                       {"writes", &writes},
                       {"creates", &creates},
                       {"unlinks", &unlinks},
                       {"lookups", &lookups},
                       {"revocations", &revocations},
                       {"lock_wait_ns", &lock_wait_ns}}) {}

 private:
  obs::ScopedRegistration reg_;
};

class ArckFs : public FsInterface, private RingPassHooks {
 public:
  explicit ArckFs(KernelController& kernel, ArckFsConfig config = {});
  ~ArckFs() override;
  ArckFs(const ArckFs&) = delete;
  ArckFs& operator=(const ArckFs&) = delete;

  // ---- FsInterface ----
  Result<Fd> Open(const std::string& path, OpenFlags flags, uint32_t mode = 0644) override;
  Status Close(Fd fd) override;
  Result<size_t> Read(Fd fd, void* buf, size_t count) override;
  Result<size_t> Write(Fd fd, const void* buf, size_t count) override;
  Result<size_t> Pread(Fd fd, void* buf, size_t count, uint64_t offset) override;
  Result<size_t> Pwrite(Fd fd, const void* buf, size_t count, uint64_t offset) override;
  Result<uint64_t> Seek(Fd fd, uint64_t offset) override;
  Status Fsync(Fd fd) override;
  Status Ftruncate(Fd fd, uint64_t size) override;
  Status Mkdir(const std::string& path, uint32_t mode = 0755) override;
  Status Rmdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<StatInfo> Stat(const std::string& path) override;
  Result<std::vector<DirEntryInfo>> ReadDir(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status Chmod(const std::string& path, uint32_t perm) override;
  std::string Name() const override { return "ArckFS"; }

  // ---- Trio extensions ----
  // Voluntarily release this LibFS's mapping of `path` (write release triggers
  // verification; §6.5's sharing benchmarks call this between operations).
  Status ReleaseFile(const std::string& path);
  // Verify + re-checkpoint without releasing (§4.3 commit call).
  Status Commit(const std::string& path);

  LibFsId id() const { return libfs_; }
  KernelController& kernel() { return kernel_; }
  LibFsStats& libfs_stats() { return stats_; }
  // Quarantine notices the kernel delivered: (ino, structured VerifyError status). The
  // lease is already gone when one arrives; the node's cached state was invalidated.
  std::vector<std::pair<Ino, Status>> QuarantineNotices();
  // Non-null iff config.ring.enabled: the async submission path into this LibFS.
  OpRingEngine* ring_engine() { return ring_engine_.get(); }
  // The digested-page promote cache (tier hit-rate counters live in its stats()).
  PromoteCache& promote_cache() { return promote_cache_; }
  // The lease cache (async/sync refill counters).
  LeaseCache& leases() { return leases_; }
  // Current journal page numbers (persist these to recover after a crash).
  std::vector<PageNumber> JournalPages();

 protected:
  // Per-ino auxiliary state. Directories and regular files share the node type; the
  // directory members stay null for files and vice versa.
  struct FileNode {
    Ino ino = kInvalidIno;
    Ino parent = kInvalidIno;
    bool is_dir = false;
    bool locally_created = false;  // Created by us, not yet reconciled by the kernel.

    // Mapping state machine, driven under map_mutex; ops hold op_lock shared.
    std::mutex map_mutex;
    BravoRwLock op_lock;
    std::atomic<int> map_state{0};  // 0 = unmapped, 1 = read, 2 = write.
    std::atomic<bool> stale{false};
    // Bumped by RevokeNode under map_mutex. EnsureMapped releases map_mutex across the
    // kernel MapFile crossing (the kernel may synchronously revoke another tenant, whose
    // RevokeNode takes ITS node's map_mutex — holding ours would be an ABBA inversion
    // between two LibFS instances revoking each other); the revision tells it whether a
    // revoke slipped into that window and the fresh grant must be re-requested.
    uint64_t map_revision = 0;
    DirentBlock* dirent = nullptr;

    // Regular-file auxiliary state (§4.2).
    BravoRwLock inode_lock;
    RangeLock range_lock;
    PageRadixTree radix;
    std::vector<PageNumber> index_pages;  // Chain order; guarded by inode_lock exclusive
                                          // (extension happens only on the exclusive path).
    std::vector<PageNumber> reuse_pages;  // Owned, unlinked by truncate; reusable in-file.
    std::unordered_set<PageNumber> dirty_pages;  // Relaxed-data mode: awaiting fsync.
    SpinLock dirty_lock;

    // Directory auxiliary state (§4.2).
    std::unique_ptr<DirIndex> dir_index;
    struct DirTail {
      PageNumber page = 0;
      SpinLock lock;
      // Logging tails are only useful for non-full pages (§4.2); full ones are skipped
      // until an unlink frees a slot in them.
      std::atomic<bool> full{false};
    };
    SpinLock tails_lock;  // Guards dir_tails + dir_tail_index + dir_index_pages +
                          // dir_next_entry.
    std::vector<std::unique_ptr<DirTail>> dir_tails;
    std::unordered_map<PageNumber, size_t> dir_tail_index;  // page -> dir_tails slot.
    // First possibly-non-full tail: creates start scanning here, keeping the common
    // create O(1) in directory size.
    std::atomic<size_t> dir_first_nonfull{0};
    std::vector<PageNumber> dir_index_pages;
    size_t dir_next_entry = 0;  // Free entries used in the last index page (index tail).
  };
  using NodePtr = std::shared_ptr<FileNode>;

  // ---- Node / mapping machinery (shared with KVFS and FPFS) ----
  NodePtr GetOrCreateNode(Ino ino, Ino parent, bool is_dir, DirentBlock* dirent);
  NodePtr FindNode(Ino ino);
  void DropNode(Ino ino);
  // Maps the node (read or write) through the kernel and rebuilds auxiliary state if the
  // mapping was (re)established. Never call while holding op_lock.
  Status EnsureMapped(FileNode* node, bool write);
  // Acquire op_lock shared and confirm the mapping is still live at `level` (1=read,
  // 2=write); retries via EnsureMapped on staleness. Returns with op_lock held shared.
  // When an OpContext is active, the wait is charged to its lock_wait_ns counter.
  Status LockForOp(FileNode* node, int level);
  void UnlockOp(FileNode* node) { node->op_lock.unlock_shared(); }
  // Revoker-side: quiesce, unmap, drop auxiliary state.
  void RevokeNode(Ino ino);
  // Kernel-side quarantine notification (may arrive on a watchdog thread, possibly while
  // this LibFS is itself mid-unmap on the same node): record the notice and mark the node
  // stale. Deliberately lock-free on the node — staleness makes the next op re-map and
  // rebuild from the rolled-back core state. Must not call back into the kernel.
  void OnQuarantine(Ino ino, const Status& reason);
  // The LockForOp acquisition loop (no instrumentation; LockForOp wraps it).
  Status AcquireOpLock(FileNode* node, int level);

  // ---- Path resolution ----
  // Virtual so customized LibFSes can replace the strategy: FPFS swaps the per-component
  // walk for a global full-path hash table (§5) — pure auxiliary-state customization.
  virtual Result<NodePtr> ResolveDir(const std::vector<std::string>& components);
  Result<DirSlot> FindEntry(FileNode* dir, std::string_view name);

  // ---- Directory core-state operations (callers hold dir op_lock shared + write map) ----
  Result<DirSlot> CreateEntry(FileNode* dir, std::string_view name, uint32_t mode,
                              bool exclusive);
  Status RemoveEntry(FileNode* dir, std::string_view name, bool must_be_dir,
                     bool must_be_file);
  DirentBlock* SlotPointer(const DirSlot& slot);

  // ---- Regular-file data path (callers hold file op_lock shared + suitable map) ----
  // `append` computes the write offset from the file size UNDER the exclusive inode lock
  // (the only race-free place; O_APPEND correctness depends on it) and reports the offset
  // actually used through `offset_used`.
  Result<size_t> WriteLocked(FileNode* node, const void* buf, size_t count, uint64_t offset,
                             bool append = false, uint64_t* offset_used = nullptr);
  Result<size_t> ReadLocked(FileNode* node, void* buf, size_t count, uint64_t offset);
  Status TruncateLocked(FileNode* node, uint64_t new_size);

  // Rebuilding auxiliary state from core state (§4.2).
  Status RebuildAux(FileNode* node);

  // Data-page plumbing.
  Status EnsureIndexCapacity(FileNode* node, uint64_t max_page_index);
  Result<PageNumber> AllocDataPage(FileNode* node, uint64_t page_index, bool zero);
  Status LinkDataPage(FileNode* node, uint64_t page_index, PageNumber page);
  Status AppendDirDataPage(FileNode* dir);

  // ---- Tier promote path (DESIGN.md §4.11) ----
  // Read `len` bytes at `in_page` within digested file page `page_index` (backend slot
  // `slot`): promote-cache hit, or fault the page into a leased NVM page via the kernel
  // and cache the copy.
  Status ReadTierPage(FileNode* node, uint64_t page_index, uint64_t slot,
                      uint64_t in_page, char* dst, size_t len);
  // Bring a digested page back to NVM authority for writing: allocate a leased page,
  // fill it from the backend when `fill` (skip on a full-page overwrite), and drop any
  // cached promoted copy. The caller links the page and the old slot is released at
  // verify-time reconcile.
  Result<PageNumber> PromoteForWrite(FileNode* node, uint64_t page_index, uint64_t slot,
                                     bool fill);
  // Any tier entry among the file pages covering [offset, offset+count)? Tier entries
  // are converted to NVM pages under the exclusive inode lock (a shared-lock writer
  // could otherwise race another on the same index slot); while write-mapped no NEW
  // tier entry can appear (digestion skips mapped files), so a pre-lock check is stable.
  bool RangeHasTierEntries(FileNode* node, uint64_t offset, size_t count);

  // Copies with optional delegation: a non-null `batch` queues the chunk into the
  // current operation's DelegationBatch (submitted + fenced once per node at the end of
  // the op); null copies inline. `persist` = flush the written lines now (the
  // synchronous-data mode) through `span`, whose fence the caller issues after the loop;
  // relaxed mode records dirty pages instead.
  void CopyToNvm(char* dst, const char* src, size_t len, DelegationBatch* batch,
                 bool persist, obs::PersistSpan* span);
  // Relaxed-data mode: persist everything this node dirtied since the last flush.
  void FlushDirtyData(FileNode* node);

  // ---- Op-ring drain-pass plumbing (drainer thread only) ----
  // RingPassHooks: one DelegationBatch is shared by every delegated write of a drain
  // pass; FlushPass submits/waits/resets it so its data is durable before any dependent
  // metadata commit, and before every epoch close.
  void BeginPass() override;
  void FlushPass() override;
  void EndPass() override;
  // The calling thread's pass batch (null off the drainer / without delegation).
  DelegationBatch* PassBatch();
  void CopyFromNvm(char* dst, const char* src, size_t len, DelegationBatch* batch);
  // Effective delegation thresholds: config overrides, else the pool's DelegationConfig.
  size_t ReadDelegateThreshold() const;
  size_t WriteDelegateThreshold() const;

  UndoJournal& JournalShard();
  void ReplayJournals();

  Result<NodePtr> OpenNodeByPath(const std::string& path, bool write);
  LibFsId RegisterWithKernel(KernelController& kernel, const ArckFsConfig& config);
  // The kernel learns about files we created only when the parent is verified; force that
  // reconciliation before kernel calls that need a record of `ino` (chmod, commit, ...).
  Status EnsureReconciled(Ino ino);

  KernelController& kernel_;
  NvmPool& pool_;
  ArckFsConfig config_;
  LibFsId libfs_ = kNoLibFs;
  LeaseCache leases_;
  PromoteCache promote_cache_;
  FdTable<FileNode> fds_;
  LibFsStats stats_;
  // Persistence accounting for every PersistSpan this LibFS opens (layer "libfs").
  obs::PersistStats persist_stats_{"libfs"};

  std::mutex nodes_mutex_;
  std::unordered_map<Ino, NodePtr> nodes_;

  std::mutex quarantine_mutex_;
  std::vector<std::pair<Ino, Status>> quarantine_notices_;

  // Destroyed first in ~ArckFs (declaration order notwithstanding): the drainer calls
  // back into this object, so it must stop before any other member is torn down.
  std::unique_ptr<OpRingEngine> ring_engine_;

  std::mutex journal_init_mutex_;
  std::vector<std::unique_ptr<UndoJournal>> journals_;
  std::mutex rename_mutex_;  // Simplification: renames serialize (VFS has a global
                             // equivalent; per-shard journals could relax this).
};

}  // namespace trio

#endif  // SRC_LIBFS_ARCKFS_H_
