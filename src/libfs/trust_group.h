// Trust groups (§3.2): "multiple processes belonging to the same user and mutually
// trusting each other ... can share files with a shared LibFS and thereby avoid the
// sharing overhead." In this emulation a "process" is a member handle; all members drive
// the same ArckFs instance, so file handoffs between them never cross the trust boundary
// — no revocation, no verification, no auxiliary-state rebuild (Table 3's
// ArckFS-trust-group column).

#ifndef SRC_LIBFS_TRUST_GROUP_H_
#define SRC_LIBFS_TRUST_GROUP_H_

#include <atomic>
#include <memory>

#include "src/libfs/arckfs.h"

namespace trio {

class TrustGroup {
 public:
  // All members run with the group's uid/gid (the paper requires one user per group).
  TrustGroup(KernelController& kernel, ArckFsConfig config = {})
      : fs_(std::make_unique<ArckFs>(kernel, std::move(config))) {}

  // A member's view of the group's shared LibFS. Joining is what a process would do on
  // startup; the handle is only bookkeeping — the LibFS (and thus every mapping and all
  // auxiliary state) is shared.
  class Member {
   public:
    Member(TrustGroup* group) : group_(group) {  // NOLINT(google-explicit-constructor)
      group_->members_.fetch_add(1, std::memory_order_relaxed);
    }
    ~Member() { group_->members_.fetch_sub(1, std::memory_order_relaxed); }
    Member(const Member&) = delete;
    Member& operator=(const Member&) = delete;

    FsInterface& fs() { return *group_->fs_; }
    ArckFs& arckfs() { return *group_->fs_; }

   private:
    TrustGroup* group_;
  };

  Member Join() { return Member(this); }
  size_t member_count() const { return members_.load(std::memory_order_relaxed); }
  ArckFs& shared_libfs() { return *fs_; }

 private:
  std::unique_ptr<ArckFs> fs_;
  std::atomic<size_t> members_{0};
};

}  // namespace trio

#endif  // SRC_LIBFS_TRUST_GROUP_H_
