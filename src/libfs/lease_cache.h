// LibFS-side caches of kernel-leased resources: NVM pages (per NUMA node, per CPU shard)
// and inode numbers. These are the LibFS halves of the paper's per-CPU block and inode
// allocators (§4.5); the kernel hands out batches, so the common create/append path never
// traps.
//
// Refill is asynchronous: when a shard drops below a quarter of its batch size after a
// pop, a background worker pulls the next batch from the kernel while the hot path keeps
// allocating from the remainder. Trapping on the caller (sync_refills) only happens when
// the cache is fully dry — at startup, or when the worker lost the race. The
// async/sync counters make the split observable.
//
// NUMA bookkeeping: the kernel's allocator falls back across nodes when the requested
// one is dry, so a refill batch may contain remote pages. Batches are scattered into the
// per-node shards by each page's REAL NodeOfPage — filing a remote page under the hint
// node would poison that shard's locality forever (every later AllocPage(hint) would
// hand out a remote page believing it local). RecyclePage files by real node for the
// same reason. Recycled pages carry stale data by contract; AllocDataPage re-zeroes them
// on the partial-write path.

#ifndef SRC_LIBFS_LEASE_CACHE_H_
#define SRC_LIBFS_LEASE_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/per_cpu.h"
#include "src/common/spinlock.h"
#include "src/kernel/controller.h"

namespace trio {

class LeaseCache {
 public:
  LeaseCache(KernelController& kernel, LibFsId libfs, size_t page_batch = 64,
             size_t ino_batch = 64)
      : kernel_(kernel), libfs_(libfs), page_batch_(page_batch), ino_batch_(ino_batch) {
    const int nodes = kernel_.pool().topology().num_nodes;
    page_caches_.reserve(nodes);
    for (int n = 0; n < nodes; ++n) {
      page_caches_.push_back(std::make_unique<PerCpu<PageShard>>(8));
    }
    refill_thread_ = std::thread([this] { RefillWorker(); });
  }

  ~LeaseCache() { Shutdown(); }  // Leases themselves are reclaimed by UnregisterLibFs.

  // Stops the refill worker. Idempotent; ArckFs calls this before UnregisterLibFs so no
  // refill can race the kernel-side lease teardown.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(refill_mu_);
      if (stop_) {
        return;
      }
      stop_ = true;
    }
    refill_cv_.notify_all();
    refill_thread_.join();
  }

  // A write-mapped, leased page on (approximately) the requested node. Fresh kernel
  // pages arrive zeroed; recycled ones are dirty (re-zeroed by the caller's
  // partial-write path).
  Result<PageNumber> AllocPage(int node_hint) {
    const int nodes = static_cast<int>(page_caches_.size());
    const int node = node_hint >= 0 ? node_hint % nodes : 0;
    PageShard& local = page_caches_[node]->Local();
    {
      std::lock_guard<SpinLock> guard(local.lock);
      if (!local.pages.empty()) {
        const PageNumber page = local.pages.back();
        local.pages.pop_back();
        if (local.pages.size() < page_batch_ / 4) {
          RequestRefill(&local, nullptr, node);
        }
        return page;
      }
    }
    // Local shard dry: steal from sibling shards (same node first, then remote nodes)
    // before trapping into the kernel on this thread.
    for (int dn = 0; dn < nodes; ++dn) {
      PerCpu<PageShard>& cache = *page_caches_[(node + dn) % nodes];
      for (size_t s = 0; s < cache.NumShards(); ++s) {
        PageShard& shard = cache.Shard(s);
        std::lock_guard<SpinLock> guard(shard.lock);
        if (!shard.pages.empty()) {
          const PageNumber page = shard.pages.back();
          shard.pages.pop_back();
          RequestRefill(&local, nullptr, node);  // Replenish OUR dry shard.
          return page;
        }
      }
    }
    // Everything dry — the hot path pays the kernel crossing (counted).
    std::vector<PageNumber> batch;
    TRIO_RETURN_IF_ERROR(kernel_.AllocPages(libfs_, page_batch_, node, &batch));
    sync_refills_.fetch_add(1, std::memory_order_relaxed);
    const PageNumber page = batch.back();
    batch.pop_back();
    ScatterPages(batch, &local, node);
    return page;
  }

  // Returns a *leased* page to the cache, filed under the page's real NUMA node. The
  // caller must treat recycled pages as dirty (they are re-zeroed on the partial-write
  // path).
  void RecyclePage(PageNumber page) {
    const int node =
        kernel_.pool().NodeOfPage(page) % static_cast<int>(page_caches_.size());
    PageShard& shard = page_caches_[node]->Local();
    std::lock_guard<SpinLock> guard(shard.lock);
    shard.pages.push_back(page);
  }

  Result<Ino> AllocIno() {
    InoShard& shard = ino_caches_.Local();
    std::lock_guard<SpinLock> guard(shard.lock);
    if (shard.inos.empty()) {
      TRIO_RETURN_IF_ERROR(kernel_.AllocInos(libfs_, ino_batch_, &shard.inos));
      sync_refills_.fetch_add(1, std::memory_order_relaxed);
    }
    Ino ino = shard.inos.back();
    shard.inos.pop_back();
    if (shard.inos.size() < ino_batch_ / 4) {
      RequestRefill(nullptr, &shard, 0);
    }
    return ino;
  }

  void RecycleIno(Ino ino) {
    InoShard& shard = ino_caches_.Local();
    std::lock_guard<SpinLock> guard(shard.lock);
    shard.inos.push_back(ino);
  }

  // Refill accounting: async = batches the background worker pulled off the hot path;
  // sync = hot-path traps into the kernel (dry cache).
  uint64_t async_refills() const { return async_refills_.load(std::memory_order_relaxed); }
  uint64_t sync_refills() const { return sync_refills_.load(std::memory_order_relaxed); }

 private:
  struct PageShard {
    SpinLock lock;
    std::vector<PageNumber> pages;
    std::atomic<bool> refill_pending{false};  // One in-flight refill per shard.
  };
  struct InoShard {
    SpinLock lock;
    std::vector<Ino> inos;
    std::atomic<bool> refill_pending{false};
  };
  struct RefillRequest {  // Exactly one of page_shard / ino_shard is set.
    PageShard* page_shard = nullptr;
    InoShard* ino_shard = nullptr;
    int node = 0;
  };

  // File each page under its REAL node; `preferred` gets the ones that match
  // `preferred_node` (it is the shard the caller is actively allocating from).
  void ScatterPages(std::vector<PageNumber>& batch, PageShard* preferred,
                    int preferred_node) {
    const int nodes = static_cast<int>(page_caches_.size());
    for (PageNumber page : batch) {
      const int real = kernel_.pool().NodeOfPage(page) % nodes;
      PageShard& shard =
          (real == preferred_node && preferred != nullptr) ? *preferred
                                                           : page_caches_[real]->Local();
      std::lock_guard<SpinLock> guard(shard.lock);
      shard.pages.push_back(page);
    }
  }

  // Callable with or without the shard lock held (only touches the atomic flag).
  void RequestRefill(PageShard* page_shard, InoShard* ino_shard, int node) {
    std::atomic<bool>& pending =
        page_shard != nullptr ? page_shard->refill_pending : ino_shard->refill_pending;
    if (pending.exchange(true, std::memory_order_acq_rel)) {
      return;  // A refill for this shard is already queued or in flight.
    }
    {
      std::lock_guard<std::mutex> lock(refill_mu_);
      if (stop_) {
        pending.store(false, std::memory_order_release);
        return;
      }
      requests_.push_back(RefillRequest{page_shard, ino_shard, node});
    }
    refill_cv_.notify_one();
  }

  void RefillWorker() {
    std::unique_lock<std::mutex> lock(refill_mu_);
    for (;;) {
      refill_cv_.wait(lock, [this] { return stop_ || !requests_.empty(); });
      if (stop_) {
        return;
      }
      const RefillRequest req = requests_.front();
      requests_.pop_front();
      lock.unlock();
      if (req.page_shard != nullptr) {
        std::vector<PageNumber> batch;
        if (kernel_.AllocPages(libfs_, page_batch_, req.node, &batch).ok()) {
          ScatterPages(batch, req.page_shard, req.node);
          // Counted only after the pages are visible in the shards: async_refills means
          // "a background batch is available to the hot path", not merely requested.
          async_refills_.fetch_add(1, std::memory_order_relaxed);
        }
        req.page_shard->refill_pending.store(false, std::memory_order_release);
      } else {
        std::vector<Ino> batch;
        if (kernel_.AllocInos(libfs_, ino_batch_, &batch).ok()) {
          {
            std::lock_guard<SpinLock> guard(req.ino_shard->lock);
            req.ino_shard->inos.insert(req.ino_shard->inos.end(), batch.begin(),
                                       batch.end());
          }
          async_refills_.fetch_add(1, std::memory_order_relaxed);
        }
        req.ino_shard->refill_pending.store(false, std::memory_order_release);
      }
      lock.lock();
    }
  }

  KernelController& kernel_;
  const LibFsId libfs_;
  const size_t page_batch_;
  const size_t ino_batch_;
  std::vector<std::unique_ptr<PerCpu<PageShard>>> page_caches_;
  PerCpu<InoShard> ino_caches_{8};

  std::atomic<uint64_t> async_refills_{0};
  std::atomic<uint64_t> sync_refills_{0};

  std::mutex refill_mu_;
  std::condition_variable refill_cv_;
  std::deque<RefillRequest> requests_;
  bool stop_ = false;
  std::thread refill_thread_;
};

}  // namespace trio

#endif  // SRC_LIBFS_LEASE_CACHE_H_
