// LibFS-side caches of kernel-leased resources: NVM pages (per NUMA node, per CPU shard)
// and inode numbers. These are the LibFS halves of the paper's per-CPU block and inode
// allocators (§4.5); the kernel hands out batches, so the common create/append path never
// traps.

#ifndef SRC_LIBFS_LEASE_CACHE_H_
#define SRC_LIBFS_LEASE_CACHE_H_

#include <memory>
#include <vector>

#include "src/common/per_cpu.h"
#include "src/common/spinlock.h"
#include "src/kernel/controller.h"

namespace trio {

class LeaseCache {
 public:
  LeaseCache(KernelController& kernel, LibFsId libfs, size_t page_batch = 64,
             size_t ino_batch = 64)
      : kernel_(kernel), libfs_(libfs), page_batch_(page_batch), ino_batch_(ino_batch) {
    const int nodes = kernel_.pool().topology().num_nodes;
    page_caches_.reserve(nodes);
    for (int n = 0; n < nodes; ++n) {
      page_caches_.push_back(std::make_unique<PerCpu<PageShard>>(8));
    }
  }

  ~LeaseCache() = default;  // Leases are reclaimed by UnregisterLibFs.

  // A zeroed, write-mapped, leased page on (approximately) the requested node.
  Result<PageNumber> AllocPage(int node_hint) {
    const int node = node_hint >= 0 ? node_hint % static_cast<int>(page_caches_.size()) : 0;
    PageShard& shard = page_caches_[node]->Local();
    std::lock_guard<SpinLock> guard(shard.lock);
    if (shard.pages.empty()) {
      TRIO_RETURN_IF_ERROR(kernel_.AllocPages(libfs_, page_batch_, node, &shard.pages));
    }
    PageNumber page = shard.pages.back();
    shard.pages.pop_back();
    return page;
  }

  // Returns a *leased* page to the local cache. The caller must treat recycled pages as
  // dirty (they are re-zeroed on the partial-write path).
  void RecyclePage(PageNumber page) {
    const int node = kernel_.pool().NodeOfPage(page) % static_cast<int>(page_caches_.size());
    PageShard& shard = page_caches_[node]->Local();
    std::lock_guard<SpinLock> guard(shard.lock);
    shard.pages.push_back(page);
  }

  Result<Ino> AllocIno() {
    InoShard& shard = ino_caches_.Local();
    std::lock_guard<SpinLock> guard(shard.lock);
    if (shard.inos.empty()) {
      TRIO_RETURN_IF_ERROR(kernel_.AllocInos(libfs_, ino_batch_, &shard.inos));
    }
    Ino ino = shard.inos.back();
    shard.inos.pop_back();
    return ino;
  }

  void RecycleIno(Ino ino) {
    InoShard& shard = ino_caches_.Local();
    std::lock_guard<SpinLock> guard(shard.lock);
    shard.inos.push_back(ino);
  }

 private:
  struct PageShard {
    SpinLock lock;
    std::vector<PageNumber> pages;
  };
  struct InoShard {
    SpinLock lock;
    std::vector<Ino> inos;
  };

  KernelController& kernel_;
  const LibFsId libfs_;
  const size_t page_batch_;
  const size_t ino_batch_;
  std::vector<std::unique_ptr<PerCpu<PageShard>>> page_caches_;
  PerCpu<InoShard> ino_caches_{8};
};

}  // namespace trio

#endif  // SRC_LIBFS_LEASE_CACHE_H_
