#include "src/libfs/arckfs.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <thread>

namespace trio {

namespace {

int64_t FakeTimeNs() {
  // Timestamps are best-effort (§3.3): a monotonically bumped counter keeps mtime/ctime
  // ordered without a clock dependency in the data path.
  static std::atomic<int64_t> tick{1};
  return tick.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

LibFsId ArckFs::RegisterWithKernel(KernelController& kernel, const ArckFsConfig& config) {
  LibFsOptions options;
  options.uid = config.uid;
  options.gid = config.gid;
  options.callbacks.revoke = [this](Ino ino) { RevokeNode(ino); };
  options.callbacks.fix_corruption = config.fix_corruption;
  options.callbacks.recovery = [this] { ReplayJournals(); };
  return kernel.RegisterLibFs(options);
}

ArckFs::ArckFs(KernelController& kernel, ArckFsConfig config)
    : kernel_(kernel),
      pool_(kernel.pool()),
      config_(std::move(config)),
      libfs_(RegisterWithKernel(kernel, config_)),
      leases_(kernel, libfs_, config_.page_batch, config_.ino_batch) {
  Superblock* sb = SuperblockOf(pool_);
  GetOrCreateNode(kRootIno, kInvalidIno, /*is_dir=*/true, &sb->root);
}

ArckFs::~ArckFs() {
  fds_.ReleaseAll();
  {
    std::lock_guard<std::mutex> guard(nodes_mutex_);
    nodes_.clear();
  }
  kernel_.UnregisterLibFs(libfs_);
}

// ---------------------------------------------------------------------------
// Node + mapping machinery
// ---------------------------------------------------------------------------

ArckFs::NodePtr ArckFs::GetOrCreateNode(Ino ino, Ino parent, bool is_dir,
                                        DirentBlock* dirent) {
  std::lock_guard<std::mutex> guard(nodes_mutex_);
  auto it = nodes_.find(ino);
  if (it != nodes_.end()) {
    if (dirent != nullptr && it->second->dirent == nullptr) {
      it->second->dirent = dirent;
    }
    return it->second;
  }
  auto node = std::make_shared<FileNode>();
  node->ino = ino;
  node->parent = parent;
  node->is_dir = is_dir;
  node->dirent = dirent;
  nodes_[ino] = node;
  return node;
}

ArckFs::NodePtr ArckFs::FindNode(Ino ino) {
  std::lock_guard<std::mutex> guard(nodes_mutex_);
  auto it = nodes_.find(ino);
  return it == nodes_.end() ? nullptr : it->second;
}

void ArckFs::DropNode(Ino ino) {
  std::lock_guard<std::mutex> guard(nodes_mutex_);
  nodes_.erase(ino);
}

Status ArckFs::EnsureMapped(FileNode* node, bool write) {
  std::lock_guard<std::mutex> guard(node->map_mutex);
  const int need = write ? 2 : 1;
  if (!node->stale.load(std::memory_order_acquire) &&
      node->map_state.load(std::memory_order_acquire) >= need) {
    return OkStatus();
  }
  const bool was_unmapped =
      node->map_state.load(std::memory_order_relaxed) == 0 || node->stale.load();
  TRIO_ASSIGN_OR_RETURN(MapInfo info,
                        kernel_.MapFile(libfs_, node->parent, node->ino, write));
  if (info.dirent_page == 0) {
    node->dirent = &SuperblockOf(pool_)->root;
  } else {
    auto* page = reinterpret_cast<DirDataPage*>(pool_.PageAddress(info.dirent_page));
    node->dirent = &page->slots[info.dirent_slot];
  }
  if (was_unmapped) {
    TRIO_RETURN_IF_ERROR(RebuildAux(node));
  }
  node->stale.store(false, std::memory_order_release);
  node->map_state.store(info.writable ? 2 : 1, std::memory_order_release);
  return OkStatus();
}

Status ArckFs::LockForOp(FileNode* node, int level) {
  for (int attempt = 0;; ++attempt) {
    if (node->stale.load(std::memory_order_acquire) ||
        node->map_state.load(std::memory_order_acquire) < level) {
      TRIO_RETURN_IF_ERROR(EnsureMapped(node, level == 2));
    }
    node->op_lock.lock_shared();
    if (!node->stale.load(std::memory_order_acquire) &&
        node->map_state.load(std::memory_order_acquire) >= level) {
      return OkStatus();
    }
    node->op_lock.unlock_shared();
    if (attempt > 1000) {
      std::this_thread::yield();
    }
  }
}

void ArckFs::RevokeNode(Ino ino) {
  NodePtr node = FindNode(ino);
  if (node == nullptr) {
    (void)kernel_.UnmapFile(libfs_, ino);
    return;
  }
  std::lock_guard<std::mutex> guard(node->map_mutex);
  node->stale.store(true, std::memory_order_release);
  node->op_lock.lock();  // Drain in-flight operations.
  if (!config_.sync_data && !node->is_dir) {
    FlushDirtyData(node.get());  // Shared data must be durable before the handoff.
  }
  if (node->locally_created) {
    // The kernel only learns about files we created when the parent directory is
    // verified; reconcile it now so the unmap below targets a known record. Harmless if
    // the parent was already released (the kernel reconciled it then).
    (void)kernel_.CommitFile(libfs_, node->parent);
  }
  if (node->map_state.load(std::memory_order_relaxed) != 0 || node->locally_created) {
    (void)kernel_.UnmapFile(libfs_, ino);
  }
  // Drop auxiliary state; it is rebuilt from the (possibly verified-and-rolled-back) core
  // state on the next access.
  node->radix.Clear();
  node->index_pages.clear();
  node->reuse_pages.clear();
  node->dir_index.reset();
  node->dir_tails.clear();
  node->dir_index_pages.clear();
  node->dir_next_entry = 0;
  node->locally_created = false;
  node->map_state.store(0, std::memory_order_release);
  node->op_lock.unlock();
  node->stale.store(false, std::memory_order_release);
  stats_.revocations.fetch_add(1, std::memory_order_relaxed);
}

Status ArckFs::RebuildAux(FileNode* node) {
  const uint64_t t0 = kernel_.clock()->NowNs();
  TRIO_CHECK(node->dirent != nullptr);
  const PageNumber first = node->dirent->first_index_page;

  if (!node->is_dir) {
    node->radix.Clear();
    node->index_pages.clear();
    node->reuse_pages.clear();
    TRIO_RETURN_IF_ERROR(ForEachIndexPage(pool_, first, [&](PageNumber p) -> Status {
      node->index_pages.push_back(p);
      return OkStatus();
    }));
    TRIO_RETURN_IF_ERROR(
        ForEachDataPage(pool_, first, [&](uint64_t index, PageNumber p) -> Status {
          node->radix.Insert(index, p);
          return OkStatus();
        }));
  } else {
    node->dir_index = std::make_unique<DirIndex>();
    node->dir_tails.clear();
    node->dir_tail_index.clear();
    node->dir_first_nonfull.store(0, std::memory_order_relaxed);
    node->dir_index_pages.clear();
    node->dir_next_entry = 0;
    TRIO_RETURN_IF_ERROR(ForEachIndexPage(pool_, first, [&](PageNumber p) -> Status {
      node->dir_index_pages.push_back(p);
      return OkStatus();
    }));
    TRIO_RETURN_IF_ERROR(
        ForEachDataPage(pool_, first, [&](uint64_t, PageNumber p) -> Status {
          auto tail = std::make_unique<FileNode::DirTail>();
          tail->page = p;
          auto* page = reinterpret_cast<DirDataPage*>(pool_.PageAddress(p));
          uint32_t live = 0;
          for (uint32_t s = 0; s < kDirentsPerPage; ++s) {
            const DirentBlock& d = page->slots[s];
            if (d.IsFree()) {
              continue;
            }
            ++live;
            node->dir_index->Insert(d.Name(),
                                    DirSlot{p, s, d.ino, d.IsDirectory()});
          }
          tail->full.store(live == kDirentsPerPage, std::memory_order_relaxed);
          node->dir_tail_index[p] = node->dir_tails.size();
          node->dir_tails.push_back(std::move(tail));
          return OkStatus();
        }));
    if (!node->dir_index_pages.empty()) {
      const auto* last =
          reinterpret_cast<const IndexPage*>(pool_.PageAddress(node->dir_index_pages.back()));
      size_t used = 0;
      for (size_t i = 0; i < kIndexEntriesPerPage; ++i) {
        if (last->entries[i] != 0) {
          used = i + 1;
        }
      }
      node->dir_next_entry = used;
    }
  }
  stats_.rebuilds.fetch_add(1, std::memory_order_relaxed);
  stats_.rebuild_ns.fetch_add(kernel_.clock()->NowNs() - t0, std::memory_order_relaxed);
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Path resolution
// ---------------------------------------------------------------------------

Result<ArckFs::NodePtr> ArckFs::ResolveDir(const std::vector<std::string>& components) {
  NodePtr node = FindNode(kRootIno);
  for (const std::string& component : components) {
    TRIO_RETURN_IF_ERROR(LockForOp(node.get(), 1));
    DirSlot slot;
    const bool found =
        node->dir_index != nullptr && node->dir_index->Lookup(component, &slot);
    UnlockOp(node.get());
    if (!found) {
      return NotFound(component);
    }
    if (!slot.is_dir) {
      return NotDir(component);
    }
    node = GetOrCreateNode(slot.ino, node->ino, /*is_dir=*/true, SlotPointer(slot));
  }
  if (!node->is_dir) {
    return NotDir("path component is a file");
  }
  return node;
}

DirentBlock* ArckFs::SlotPointer(const DirSlot& slot) {
  auto* page = reinterpret_cast<DirDataPage*>(pool_.PageAddress(slot.page));
  return &page->slots[slot.slot];
}

Result<DirSlot> ArckFs::FindEntry(FileNode* dir, std::string_view name) {
  stats_.lookups.fetch_add(1, std::memory_order_relaxed);
  DirSlot slot;
  if (dir->dir_index == nullptr || !dir->dir_index->Lookup(name, &slot)) {
    return NotFound(std::string(name));
  }
  return slot;
}

// ---------------------------------------------------------------------------
// Directory core-state mutation
// ---------------------------------------------------------------------------

static Result<PageNumber> AllocZeroedPage(LeaseCache& leases, NvmPool& pool, int node_hint) {
  TRIO_ASSIGN_OR_RETURN(PageNumber page, leases.AllocPage(node_hint));
  pool.Set(pool.PageAddress(page), 0, kPageSize);
  pool.Persist(pool.PageAddress(page), kPageSize);
  pool.Fence();
  return page;
}

Status ArckFs::AppendDirDataPage(FileNode* dir) {
  std::lock_guard<SpinLock> guard(dir->tails_lock);
  TRIO_ASSIGN_OR_RETURN(PageNumber data_page, AllocZeroedPage(leases_, pool_, 0));
  if (dir->dir_index_pages.empty()) {
    TRIO_ASSIGN_OR_RETURN(PageNumber index_page, AllocZeroedPage(leases_, pool_, 0));
    pool_.CommitStore64(&dir->dirent->first_index_page, index_page);
    dir->dir_index_pages.push_back(index_page);
    dir->dir_next_entry = 0;
  }
  if (dir->dir_next_entry == kIndexEntriesPerPage) {
    TRIO_ASSIGN_OR_RETURN(PageNumber index_page, AllocZeroedPage(leases_, pool_, 0));
    auto* last = reinterpret_cast<IndexPage*>(pool_.PageAddress(dir->dir_index_pages.back()));
    pool_.CommitStore64(&last->next, index_page);
    dir->dir_index_pages.push_back(index_page);
    dir->dir_next_entry = 0;
  }
  auto* last = reinterpret_cast<IndexPage*>(pool_.PageAddress(dir->dir_index_pages.back()));
  pool_.CommitStore64(&last->entries[dir->dir_next_entry], data_page);
  dir->dir_next_entry++;
  auto tail = std::make_unique<FileNode::DirTail>();
  tail->page = data_page;
  const size_t index = dir->dir_tails.size();
  dir->dir_tail_index[data_page] = index;
  dir->dir_tails.push_back(std::move(tail));
  // The fresh page is non-full: make sure creates can see it.
  size_t hint = dir->dir_first_nonfull.load(std::memory_order_relaxed);
  while (hint > index &&
         !dir->dir_first_nonfull.compare_exchange_weak(hint, index,
                                                       std::memory_order_relaxed)) {
  }
  return OkStatus();
}

Result<DirSlot> ArckFs::CreateEntry(FileNode* dir, std::string_view name, uint32_t mode,
                                    bool exclusive) {
  if (!ValidFileName(name)) {
    return name.size() >= kMaxNameLen ? NameTooLong(std::string(name))
                                      : InvalidArgument("bad file name");
  }
  DirSlot existing;
  if (dir->dir_index->Lookup(name, &existing)) {
    return AlreadyExists(std::string(name));
  }
  TRIO_ASSIGN_OR_RETURN(Ino ino, leases_.AllocIno());

  for (int rounds = 0; rounds < 64; ++rounds) {
    // Multiple logging tails (§4.2): threads start at different tails, so concurrent
    // creates in one directory rarely contend on the same page lock.
    size_t tails;
    {
      std::lock_guard<SpinLock> guard(dir->tails_lock);
      tails = dir->dir_tails.size();
    }
    const size_t start = dir->dir_first_nonfull.load(std::memory_order_acquire);
    bool prefix_full = true;
    for (size_t i = start; i < tails; ++i) {
      FileNode::DirTail* tail;
      {
        std::lock_guard<SpinLock> guard(dir->tails_lock);
        tail = dir->dir_tails[i].get();
      }
      if (tail->full.load(std::memory_order_relaxed)) {
        if (prefix_full) {
          // Every tail up to i is full: advance the scan start for future creates.
          size_t hint = dir->dir_first_nonfull.load(std::memory_order_relaxed);
          while (hint <= i &&
                 !dir->dir_first_nonfull.compare_exchange_weak(
                     hint, i + 1, std::memory_order_relaxed)) {
          }
        }
        continue;
      }
      prefix_full = false;
      std::lock_guard<SpinLock> page_guard(tail->lock);
      auto* page = reinterpret_cast<DirDataPage*>(pool_.PageAddress(tail->page));
      for (uint32_t s = 0; s < kDirentsPerPage; ++s) {
        DirentBlock* d = &page->slots[s];
        if (!d->IsFree()) {
          continue;
        }
        // Crash-consistent create (§4.4): persist every field with ino still 0, then
        // commit the inode number with one atomic durable store.
        DirentBlock block{};
        block.first_index_page = 0;
        block.size = 0;
        block.mode = mode;
        block.uid = config_.uid;
        block.gid = config_.gid;
        block.nlink = 1;
        block.mtime_ns = FakeTimeNs();
        block.ctime_ns = block.mtime_ns;
        block.SetName(name);
        pool_.Write(reinterpret_cast<char*>(d) + sizeof(uint64_t),
                    reinterpret_cast<const char*>(&block) + sizeof(uint64_t),
                    sizeof(DirentBlock) - sizeof(uint64_t));
        pool_.Persist(d, sizeof(DirentBlock));
        pool_.Fence();
        pool_.CommitStore64(&d->ino, ino);

        DirSlot slot{tail->page, s, ino, (mode & kModeTypeMask) == kModeDirectory};
        if (!dir->dir_index->Insert(name, slot)) {
          // Lost a same-name race after the initial check: undo.
          pool_.CommitStore64(&d->ino, kInvalidIno);
          leases_.RecycleIno(ino);
          return AlreadyExists(std::string(name));
        }
        stats_.creates.fetch_add(1, std::memory_order_relaxed);
        return slot;
      }
      // Every slot in this page is live: drop it from the active tails until an unlink
      // frees a slot (keeps create O(1) in directory size).
      tail->full.store(true, std::memory_order_relaxed);
    }
    TRIO_RETURN_IF_ERROR(AppendDirDataPage(dir));
  }
  leases_.RecycleIno(ino);
  return NoSpace("could not claim a directory slot");
}

Status ArckFs::RemoveEntry(FileNode* dir, std::string_view name, bool must_be_dir,
                           bool must_be_file) {
  TRIO_ASSIGN_OR_RETURN(DirSlot slot, FindEntry(dir, name));
  DirentBlock* d = SlotPointer(slot);
  if (must_be_dir && !slot.is_dir) {
    return NotDir(std::string(name));
  }
  if (must_be_file && slot.is_dir) {
    return IsDir(std::string(name));
  }
  const PageNumber first_index_page = d->first_index_page;

  if (slot.is_dir) {
    // rmdir requires an empty directory. Count live entries through our own mapping of the
    // child (a well-behaved LibFS never dereferences unmapped pages).
    NodePtr child = GetOrCreateNode(slot.ino, dir->ino, /*is_dir=*/true, d);
    TRIO_RETURN_IF_ERROR(LockForOp(child.get(), 1));
    const size_t live = child->dir_index != nullptr ? child->dir_index->Size() : 0;
    UnlockOp(child.get());
    if (live != 0) {
      return NotEmpty(std::string(name));
    }
    // Release our mapping before deletion: I3 rejects removed directories that are still
    // mapped anywhere.
    RevokeNode(slot.ino);
  }

  // Tombstone: one atomic durable store (§4.4).
  pool_.CommitStore64(&d->ino, kInvalidIno);
  dir->dir_index->Erase(name);
  stats_.unlinks.fetch_add(1, std::memory_order_relaxed);
  // The slot's page has space again: reactivate its logging tail (O(1) via the page
  // index) and let creates scan from it.
  {
    std::lock_guard<SpinLock> guard(dir->tails_lock);
    auto it = dir->dir_tail_index.find(slot.page);
    if (it != dir->dir_tail_index.end()) {
      dir->dir_tails[it->second]->full.store(false, std::memory_order_relaxed);
      size_t hint = dir->dir_first_nonfull.load(std::memory_order_relaxed);
      while (hint > it->second &&
             !dir->dir_first_nonfull.compare_exchange_weak(hint, it->second,
                                                           std::memory_order_relaxed)) {
      }
    }
  }

  // If this file was created by us and never reconciled, its resources are still leased to
  // us: recycle them locally instead of waiting for kernel reclamation.
  const InoState state = kernel_.StateOfIno(slot.ino);
  if (state.state == ResourceState::kLeased && state.lessee == libfs_) {
    std::vector<PageNumber> pages;
    (void)ForEachIndexPage(pool_, first_index_page, [&](PageNumber p) -> Status {
      pages.push_back(p);
      return OkStatus();
    });
    (void)ForEachDataPage(pool_, first_index_page, [&](uint64_t, PageNumber p) -> Status {
      pages.push_back(p);
      return OkStatus();
    });
    for (PageNumber p : pages) {
      leases_.RecyclePage(p);
    }
    leases_.RecycleIno(slot.ino);
  }
  DropNode(slot.ino);
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Regular-file data path
// ---------------------------------------------------------------------------

size_t ArckFs::ReadDelegateThreshold() const {
  if (config_.delegate_read_threshold != 0) {
    return config_.delegate_read_threshold;
  }
  const DelegationPool* delegation = kernel_.delegation();
  return delegation != nullptr ? delegation->config().read_threshold
                               : kDelegateReadThreshold;
}

size_t ArckFs::WriteDelegateThreshold() const {
  if (config_.delegate_write_threshold != 0) {
    return config_.delegate_write_threshold;
  }
  const DelegationPool* delegation = kernel_.delegation();
  return delegation != nullptr ? delegation->config().write_threshold
                               : kDelegateWriteThreshold;
}

void ArckFs::CopyToNvm(char* dst, const char* src, size_t len, DelegationBatch* batch,
                       bool persist) {
  if (batch != nullptr) {
    batch->AddWrite(dst, src, len, persist);
    return;
  }
  pool_.Write(dst, src, len);
  if (persist) {
    pool_.Persist(dst, len);
  }
}

void ArckFs::FlushDirtyData(FileNode* node) {
  std::unordered_set<PageNumber> dirty;
  {
    std::lock_guard<SpinLock> guard(node->dirty_lock);
    dirty.swap(node->dirty_pages);
  }
  if (dirty.empty()) {
    return;
  }
  for (PageNumber page : dirty) {
    pool_.Persist(pool_.PageAddress(page), kPageSize);
  }
  pool_.Fence();
}

void ArckFs::CopyFromNvm(char* dst, const char* src, size_t len, DelegationBatch* batch) {
  if (batch != nullptr) {
    batch->AddRead(dst, src, len);
    return;
  }
  pool_.Read(dst, src, len);
}

Status ArckFs::EnsureIndexCapacity(FileNode* node, uint64_t max_page_index) {
  // Exclusive inode lock held. Extend the chain so entry slot `max_page_index` exists.
  while (node->index_pages.size() * kIndexEntriesPerPage <= max_page_index) {
    TRIO_ASSIGN_OR_RETURN(PageNumber index_page, AllocZeroedPage(leases_, pool_, 0));
    if (node->index_pages.empty()) {
      pool_.CommitStore64(&node->dirent->first_index_page, index_page);
    } else {
      auto* last = reinterpret_cast<IndexPage*>(pool_.PageAddress(node->index_pages.back()));
      pool_.CommitStore64(&last->next, index_page);
    }
    node->index_pages.push_back(index_page);
  }
  return OkStatus();
}

Result<PageNumber> ArckFs::AllocDataPage(FileNode* node, uint64_t page_index, bool zero) {
  PageNumber page = kInvalidPage;
  {
    std::lock_guard<SpinLock> guard(node->tails_lock);  // Reused as the reuse-pool lock.
    if (!node->reuse_pages.empty()) {
      page = node->reuse_pages.back();
      node->reuse_pages.pop_back();
      if (!zero) {
        // Recycled pages carry stale data; a full overwrite makes zeroing redundant, but a
        // partial write must start from zeros.
      }
      zero = true;  // Conservative: recycled content must never leak.
    }
  }
  if (page == kInvalidPage) {
    const int nodes = pool_.topology().num_nodes;
    TRIO_ASSIGN_OR_RETURN(page,
                          leases_.AllocPage(static_cast<int>(page_index % nodes)));
  }
  if (zero) {
    pool_.Set(pool_.PageAddress(page), 0, kPageSize);
    pool_.Persist(pool_.PageAddress(page), kPageSize);
  }
  return page;
}

Status ArckFs::LinkDataPage(FileNode* node, uint64_t page_index, PageNumber page) {
  const size_t chain_slot = page_index / kIndexEntriesPerPage;
  TRIO_CHECK(chain_slot < node->index_pages.size()) << "index chain does not cover page";
  auto* index = reinterpret_cast<IndexPage*>(pool_.PageAddress(node->index_pages[chain_slot]));
  pool_.CommitStore64(&index->entries[page_index % kIndexEntriesPerPage], page);
  node->radix.Insert(page_index, page);
  return OkStatus();
}

Result<size_t> ArckFs::WriteLocked(FileNode* node, const void* buf, size_t count,
                                   uint64_t offset) {
  if (count == 0) {
    return static_cast<size_t>(0);
  }
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  const char* src = static_cast<const char*>(buf);

  bool exclusive;
  uint64_t size;
  while (true) {
    size = pool_.Load64(&node->dirent->size);
    exclusive = offset + count > size;
    if (exclusive) {
      node->inode_lock.lock();
      // Size may have grown while we waited; the exclusive lock is still fine.
      size = pool_.Load64(&node->dirent->size);
    } else {
      node->inode_lock.lock_shared();
      const uint64_t now_size = pool_.Load64(&node->dirent->size);
      if (offset + count > now_size) {
        node->inode_lock.unlock_shared();
        continue;  // Raced with a truncate; retry on the exclusive path.
      }
    }
    break;
  }

  const bool extend = offset + count > size;
  // Fine-grained concurrency (§4.2): extension holds the inode lock exclusively; in-place
  // writers hold it shared plus a write range lock over the touched bytes.
  if (!exclusive) {
    node->range_lock.LockRange(offset, count, /*exclusive=*/true);
  }

  const bool delegate = config_.use_delegation && kernel_.delegation() != nullptr &&
                        count >= WriteDelegateThreshold();
  // All chunks of this write accumulate into one batch: one ring push and one fence per
  // touched node, instead of one of each per 4 KiB chunk.
  std::optional<DelegationBatch> batch;
  if (delegate) {
    batch.emplace(*kernel_.delegation());
  }

  Status status = OkStatus();
  std::vector<std::pair<uint64_t, PageNumber>> to_link;
  if (extend) {
    status = EnsureIndexCapacity(node, (offset + count - 1) / kPageSize);
  }
  if (status.ok()) {
    uint64_t cursor = offset;
    const uint64_t end = offset + count;
    while (cursor < end) {
      const uint64_t page_index = cursor / kPageSize;
      const uint64_t in_page = cursor % kPageSize;
      const size_t chunk = std::min<uint64_t>(kPageSize - in_page, end - cursor);
      PageNumber page = node->radix.Lookup(page_index);
      if (page == 0) {
        const bool full_page = in_page == 0 && chunk == kPageSize;
        Result<PageNumber> fresh = AllocDataPage(node, page_index, /*zero=*/!full_page);
        if (!fresh.ok()) {
          status = fresh.status();
          break;
        }
        page = *fresh;
        to_link.push_back({page_index, page});
        // Make it visible to this op's later iterations (not yet linked in core state).
        node->radix.Insert(page_index, page);
      }
      CopyToNvm(pool_.PageAddress(page) + in_page, src + (cursor - offset), chunk,
                delegate ? &*batch : nullptr, config_.sync_data);
      if (!config_.sync_data) {
        std::lock_guard<SpinLock> guard(node->dirty_lock);
        node->dirty_pages.insert(page);
      }
      cursor += chunk;
    }
  }

  // Data durable before any index entry or size commit (§4.4). The delegated path fences
  // once per touched node inside the batch; the direct path fences here.
  if (delegate) {
    batch->Submit();
    batch->Wait();
  } else {
    pool_.Fence();
  }

  if (status.ok()) {
    for (const auto& [page_index, page] : to_link) {
      status = LinkDataPage(node, page_index, page);
      if (!status.ok()) {
        break;
      }
    }
  }
  if (status.ok() && extend) {
    pool_.CommitStore64(&node->dirent->size, offset + count);
    const int64_t now = FakeTimeNs();
    pool_.Write(&node->dirent->mtime_ns, &now, sizeof(now));
    pool_.PersistNow(&node->dirent->mtime_ns, sizeof(now));
  }

  if (!exclusive) {
    node->range_lock.UnlockRange(offset, count, true);
    node->inode_lock.unlock_shared();
  } else {
    node->inode_lock.unlock();
  }
  if (!status.ok()) {
    return status;
  }
  return count;
}

Result<size_t> ArckFs::ReadLocked(FileNode* node, void* buf, size_t count, uint64_t offset) {
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  char* dst = static_cast<char*>(buf);
  ReadGuard<BravoRwLock> inode_guard(node->inode_lock);
  const uint64_t size = pool_.Load64(&node->dirent->size);
  if (offset >= size) {
    return static_cast<size_t>(0);
  }
  count = std::min<uint64_t>(count, size - offset);
  RangeGuard range_guard(node->range_lock, offset, count, /*exclusive=*/false);

  const bool delegate = config_.use_delegation && kernel_.delegation() != nullptr &&
                        count >= ReadDelegateThreshold();
  std::optional<DelegationBatch> batch;
  if (delegate) {
    batch.emplace(*kernel_.delegation());
  }

  uint64_t cursor = offset;
  const uint64_t end = offset + count;
  while (cursor < end) {
    const uint64_t page_index = cursor / kPageSize;
    const uint64_t in_page = cursor % kPageSize;
    const size_t chunk = std::min<uint64_t>(kPageSize - in_page, end - cursor);
    const PageNumber page = node->radix.Lookup(page_index);
    if (page == 0) {
      std::memset(dst + (cursor - offset), 0, chunk);  // Hole.
    } else {
      CopyFromNvm(dst + (cursor - offset), pool_.PageAddress(page) + in_page, chunk,
                  delegate ? &*batch : nullptr);
    }
    cursor += chunk;
  }
  if (delegate) {
    batch->Submit();
    batch->Wait();
  }
  return count;
}

Status ArckFs::TruncateLocked(FileNode* node, uint64_t new_size) {
  WriteGuard<BravoRwLock> inode_guard(node->inode_lock);
  const uint64_t old_size = pool_.Load64(&node->dirent->size);
  if (new_size == old_size) {
    return OkStatus();
  }
  if (new_size > old_size) {
    // Growing: the index chain must cover the new size (I1), holes read as zeros.
    TRIO_RETURN_IF_ERROR(EnsureIndexCapacity(node, (new_size - 1) / kPageSize));
    pool_.CommitStore64(&node->dirent->size, new_size);
    return OkStatus();
  }
  // Shrinking: commit the size first; everything beyond is garbage we now scrub.
  pool_.CommitStore64(&node->dirent->size, new_size);
  // Zero the tail of the boundary page so a later size-only grow reads zeros.
  if (new_size % kPageSize != 0) {
    const PageNumber boundary = node->radix.Lookup(new_size / kPageSize);
    if (boundary != 0) {
      const uint64_t keep = new_size % kPageSize;
      pool_.Set(pool_.PageAddress(boundary) + keep, 0, kPageSize - keep);
      pool_.Persist(pool_.PageAddress(boundary) + keep, kPageSize - keep);
    }
  }
  const uint64_t first_dead = (new_size + kPageSize - 1) / kPageSize;
  const uint64_t last_page = old_size == 0 ? 0 : (old_size - 1) / kPageSize;
  for (uint64_t index = first_dead; index <= last_page; ++index) {
    const PageNumber page = node->radix.Lookup(index);
    if (page == 0) {
      continue;
    }
    const size_t chain_slot = index / kIndexEntriesPerPage;
    auto* chain =
        reinterpret_cast<IndexPage*>(pool_.PageAddress(node->index_pages[chain_slot]));
    pool_.Store64(&chain->entries[index % kIndexEntriesPerPage], 0);
    pool_.Persist(&chain->entries[index % kIndexEntriesPerPage], sizeof(uint64_t));
    node->radix.Erase(index);
    std::lock_guard<SpinLock> guard(node->tails_lock);
    node->reuse_pages.push_back(page);
  }
  pool_.Fence();
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Journal (rename) + recovery
// ---------------------------------------------------------------------------

UndoJournal& ArckFs::JournalShard() {
  {
    std::lock_guard<std::mutex> guard(journal_init_mutex_);
    if (journals_.empty()) {
      for (size_t i = 0; i < std::max<size_t>(1, config_.journal_shards); ++i) {
        Result<PageNumber> page = leases_.AllocPage(0);
        TRIO_CHECK(page.ok()) << "cannot allocate journal page";
        journals_.push_back(std::make_unique<UndoJournal>(pool_, *page));
      }
    }
  }
  return *journals_[ThisThreadShardIndex() % journals_.size()];
}

std::vector<PageNumber> ArckFs::JournalPages() {
  std::lock_guard<std::mutex> guard(journal_init_mutex_);
  std::vector<PageNumber> pages;
  for (const auto& journal : journals_) {
    pages.push_back(journal->page());
  }
  return pages;
}

void ArckFs::ReplayJournals() {
  for (PageNumber page : config_.recover_journal_pages) {
    UndoJournal::RecoverPage(pool_, page);
  }
}

// ---------------------------------------------------------------------------
// FsInterface
// ---------------------------------------------------------------------------

Result<ArckFs::NodePtr> ArckFs::OpenNodeByPath(const std::string& path, bool write) {
  TRIO_ASSIGN_OR_RETURN(SplitParent parts, SplitParentPath(path));
  TRIO_ASSIGN_OR_RETURN(NodePtr parent, ResolveDir(parts.parent));
  TRIO_RETURN_IF_ERROR(LockForOp(parent.get(), 1));
  Result<DirSlot> slot = FindEntry(parent.get(), parts.leaf);
  UnlockOp(parent.get());
  if (!slot.ok()) {
    return slot.status();
  }
  NodePtr node =
      GetOrCreateNode(slot->ino, parent->ino, slot->is_dir, SlotPointer(*slot));
  TRIO_RETURN_IF_ERROR(EnsureMapped(node.get(), write));
  return node;
}

Result<Fd> ArckFs::Open(const std::string& path, OpenFlags flags, uint32_t mode) {
  TRIO_ASSIGN_OR_RETURN(SplitParent parts, SplitParentPath(path));
  TRIO_ASSIGN_OR_RETURN(NodePtr parent, ResolveDir(parts.parent));

  const int parent_level = flags.create ? 2 : 1;
  TRIO_RETURN_IF_ERROR(LockForOp(parent.get(), parent_level));
  Result<DirSlot> found = FindEntry(parent.get(), parts.leaf);

  NodePtr node;
  bool created = false;
  if (found.ok()) {
    UnlockOp(parent.get());
    if (flags.create && flags.exclusive) {
      return AlreadyExists(parts.leaf);
    }
    if (found->is_dir && (flags.write || flags.truncate)) {
      return IsDir(parts.leaf);
    }
    node = GetOrCreateNode(found->ino, parent->ino, found->is_dir, SlotPointer(*found));
    TRIO_RETURN_IF_ERROR(EnsureMapped(node.get(), flags.write));
  } else if (found.status().Is(ErrorCode::kNotFound) && flags.create) {
    Result<DirSlot> slot =
        CreateEntry(parent.get(), parts.leaf, kModeRegular | (mode & kModePermMask),
                    flags.exclusive);
    UnlockOp(parent.get());
    if (!slot.ok()) {
      return slot.status();
    }
    node = GetOrCreateNode(slot->ino, parent->ino, /*is_dir=*/false, SlotPointer(*slot));
    // A freshly created file is implicitly write-held by its creator: its pages are our
    // leases and the kernel learns of it when the parent directory is next verified.
    node->locally_created = true;
    node->map_state.store(2, std::memory_order_release);
    created = true;
  } else {
    UnlockOp(parent.get());
    return found.status();
  }

  if (flags.truncate && !created) {
    TRIO_RETURN_IF_ERROR(LockForOp(node.get(), 2));
    Status truncated = TruncateLocked(node.get(), 0);
    UnlockOp(node.get());
    TRIO_RETURN_IF_ERROR(truncated);
  }
  const uint64_t offset = flags.append ? pool_.Load64(&node->dirent->size) : 0;
  return fds_.Alloc(node, flags.write, flags.append, offset);
}

Status ArckFs::Close(Fd fd) { return fds_.Release(fd); }

Result<size_t> ArckFs::Read(Fd fd, void* buf, size_t count) {
  auto* entry = fds_.Get(fd);
  if (entry == nullptr) {
    return BadFd();
  }
  const uint64_t offset = entry->offset.load(std::memory_order_relaxed);
  TRIO_ASSIGN_OR_RETURN(size_t done, Pread(fd, buf, count, offset));
  entry->offset.store(offset + done, std::memory_order_relaxed);
  return done;
}

Result<size_t> ArckFs::Write(Fd fd, const void* buf, size_t count) {
  auto* entry = fds_.Get(fd);
  if (entry == nullptr) {
    return BadFd();
  }
  uint64_t offset;
  if (entry->append) {
    offset = pool_.Load64(&entry->file->dirent->size);
  } else {
    offset = entry->offset.load(std::memory_order_relaxed);
  }
  TRIO_ASSIGN_OR_RETURN(size_t done, Pwrite(fd, buf, count, offset));
  entry->offset.store(offset + done, std::memory_order_relaxed);
  return done;
}

Result<size_t> ArckFs::Pread(Fd fd, void* buf, size_t count, uint64_t offset) {
  auto* entry = fds_.Get(fd);
  if (entry == nullptr) {
    return BadFd();
  }
  FileNode* node = entry->file.get();
  if (node->is_dir) {
    return IsDir();
  }
  TRIO_RETURN_IF_ERROR(LockForOp(node, 1));
  Result<size_t> result = ReadLocked(node, buf, count, offset);
  UnlockOp(node);
  return result;
}

Result<size_t> ArckFs::Pwrite(Fd fd, const void* buf, size_t count, uint64_t offset) {
  auto* entry = fds_.Get(fd);
  if (entry == nullptr) {
    return BadFd();
  }
  if (!entry->writable) {
    return BadFd("fd not opened for writing");
  }
  FileNode* node = entry->file.get();
  if (node->is_dir) {
    return IsDir();
  }
  TRIO_RETURN_IF_ERROR(LockForOp(node, 2));
  Result<size_t> result = WriteLocked(node, buf, count, offset);
  UnlockOp(node);
  return result;
}

Result<uint64_t> ArckFs::Seek(Fd fd, uint64_t offset) {
  auto* entry = fds_.Get(fd);
  if (entry == nullptr) {
    return BadFd();
  }
  entry->offset.store(offset, std::memory_order_relaxed);
  return offset;
}

Status ArckFs::Fsync(Fd fd) {
  auto* entry = fds_.Get(fd);
  if (entry == nullptr) {
    return BadFd();
  }
  if (!config_.sync_data && !entry->file->is_dir) {
    // Relaxed-data mode: the write path deferred its flushes to here.
    FlushDirtyData(entry->file.get());
  }
  // In the default mode every operation is already synchronous (§4.4).
  return OkStatus();
}

Status ArckFs::Ftruncate(Fd fd, uint64_t size) {
  auto* entry = fds_.Get(fd);
  if (entry == nullptr || !entry->writable) {
    return BadFd();
  }
  FileNode* node = entry->file.get();
  TRIO_RETURN_IF_ERROR(LockForOp(node, 2));
  Status status = TruncateLocked(node, size);
  UnlockOp(node);
  return status;
}

Status ArckFs::Mkdir(const std::string& path, uint32_t mode) {
  TRIO_ASSIGN_OR_RETURN(SplitParent parts, SplitParentPath(path));
  TRIO_ASSIGN_OR_RETURN(NodePtr parent, ResolveDir(parts.parent));
  TRIO_RETURN_IF_ERROR(LockForOp(parent.get(), 2));
  Result<DirSlot> slot = CreateEntry(parent.get(), parts.leaf,
                                     kModeDirectory | (mode & kModePermMask),
                                     /*exclusive=*/true);
  UnlockOp(parent.get());
  if (!slot.ok()) {
    return slot.status();
  }
  NodePtr node = GetOrCreateNode(slot->ino, parent->ino, /*is_dir=*/true, SlotPointer(*slot));
  node->locally_created = true;
  node->map_state.store(2, std::memory_order_release);
  node->dir_index = std::make_unique<DirIndex>();  // Empty directory aux.
  return OkStatus();
}

Status ArckFs::Rmdir(const std::string& path) {
  TRIO_ASSIGN_OR_RETURN(SplitParent parts, SplitParentPath(path));
  TRIO_ASSIGN_OR_RETURN(NodePtr parent, ResolveDir(parts.parent));
  TRIO_RETURN_IF_ERROR(LockForOp(parent.get(), 2));
  Status status = RemoveEntry(parent.get(), parts.leaf, /*must_be_dir=*/true,
                              /*must_be_file=*/false);
  UnlockOp(parent.get());
  return status;
}

Status ArckFs::Unlink(const std::string& path) {
  TRIO_ASSIGN_OR_RETURN(SplitParent parts, SplitParentPath(path));
  TRIO_ASSIGN_OR_RETURN(NodePtr parent, ResolveDir(parts.parent));
  TRIO_RETURN_IF_ERROR(LockForOp(parent.get(), 2));
  Status status = RemoveEntry(parent.get(), parts.leaf, /*must_be_dir=*/false,
                              /*must_be_file=*/true);
  UnlockOp(parent.get());
  return status;
}

Status ArckFs::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> rename_guard(rename_mutex_);
  TRIO_ASSIGN_OR_RETURN(SplitParent src_parts, SplitParentPath(from));
  TRIO_ASSIGN_OR_RETURN(SplitParent dst_parts, SplitParentPath(to));
  TRIO_ASSIGN_OR_RETURN(NodePtr src_dir, ResolveDir(src_parts.parent));
  TRIO_ASSIGN_OR_RETURN(NodePtr dst_dir, ResolveDir(dst_parts.parent));
  const bool same_dir = src_dir->ino == dst_dir->ino;

  TRIO_RETURN_IF_ERROR(LockForOp(src_dir.get(), 2));
  if (!same_dir) {
    Status locked = LockForOp(dst_dir.get(), 2);
    if (!locked.ok()) {
      UnlockOp(src_dir.get());
      return locked;
    }
  }
  auto unlock_all = [&] {
    if (!same_dir) {
      UnlockOp(dst_dir.get());
    }
    UnlockOp(src_dir.get());
  };

  Result<DirSlot> src_slot = FindEntry(src_dir.get(), src_parts.leaf);
  if (!src_slot.ok()) {
    unlock_all();
    return src_slot.status();
  }
  DirentBlock* src = SlotPointer(*src_slot);

  // Cross-directory rename of a non-empty directory cannot pass I3 (§4.3); reject it
  // up front — a documented ArckFS divergence from POSIX.
  if (src_slot->is_dir && !same_dir) {
    Result<uint64_t> live = CountDirents(pool_, src->first_index_page);
    if (!live.ok() || *live != 0) {
      unlock_all();
      return NotSupported("cross-directory rename of a non-empty directory");
    }
  }

  Result<DirSlot> dst_slot = FindEntry(dst_dir.get(), dst_parts.leaf);
  const bool overwrite = dst_slot.ok();
  if (overwrite) {
    if (dst_slot->is_dir != src_slot->is_dir) {
      unlock_all();
      return dst_slot->is_dir ? IsDir(dst_parts.leaf) : NotDir(dst_parts.leaf);
    }
    if (dst_slot->is_dir) {
      DirentBlock* dst = SlotPointer(*dst_slot);
      Result<uint64_t> live = CountDirents(pool_, dst->first_index_page);
      if (!live.ok() || *live != 0) {
        unlock_all();
        return NotEmpty(dst_parts.leaf);
      }
    }
  }

  UndoJournal& journal = JournalShard();
  Status status = OkStatus();
  Ino replaced_ino = kInvalidIno;
  PageNumber replaced_chain = 0;

  if (overwrite) {
    DirentBlock* dst = SlotPointer(*dst_slot);
    replaced_ino = dst->ino;
    replaced_chain = dst->first_index_page;
    const Ino moving_ino = src->ino;
    std::lock_guard<SpinLock> journal_guard(journal.lock());
    journal.Begin();
    status = journal.LogPreImage(src, sizeof(DirentBlock));
    if (status.ok()) {
      status = journal.LogPreImage(dst, sizeof(DirentBlock));
    }
    if (status.ok()) {
      journal.Activate();
      DirentBlock moved = *src;
      moved.SetName(dst_parts.leaf);
      pool_.Write(dst, &moved, sizeof(moved));
      pool_.Persist(dst, sizeof(moved));
      pool_.Fence();
      pool_.CommitStore64(&src->ino, kInvalidIno);
      journal.Deactivate();
    }
    if (status.ok()) {
      dst_dir->dir_index->Erase(dst_parts.leaf);
      dst_dir->dir_index->Insert(
          dst_parts.leaf,
          DirSlot{dst_slot->page, dst_slot->slot, moving_ino, src_slot->is_dir});
    }
  } else {
    // Claim a fresh slot in the destination directory under its tail lock, with both the
    // old and new slots journaled, then tombstone the source.
    bool placed = false;
    for (int rounds = 0; rounds < 64 && !placed && status.ok(); ++rounds) {
      size_t tails;
      {
        std::lock_guard<SpinLock> guard(dst_dir->tails_lock);
        tails = dst_dir->dir_tails.size();
      }
      for (size_t i = 0; i < tails && !placed; ++i) {
        FileNode::DirTail* tail;
        {
          std::lock_guard<SpinLock> guard(dst_dir->tails_lock);
          tail = dst_dir->dir_tails[i].get();
        }
        if (tail->full.load(std::memory_order_relaxed)) {
          continue;
        }
        std::lock_guard<SpinLock> page_guard(tail->lock);
        auto* page = reinterpret_cast<DirDataPage*>(pool_.PageAddress(tail->page));
        for (uint32_t s = 0; s < kDirentsPerPage && !placed; ++s) {
          DirentBlock* dst = &page->slots[s];
          if (!dst->IsFree()) {
            continue;
          }
          std::lock_guard<SpinLock> journal_guard(journal.lock());
          journal.Begin();
          status = journal.LogPreImage(src, sizeof(DirentBlock));
          if (status.ok()) {
            status = journal.LogPreImage(dst, sizeof(DirentBlock));
          }
          if (!status.ok()) {
            break;
          }
          journal.Activate();
          DirentBlock moved = *src;
          moved.SetName(dst_parts.leaf);
          pool_.Write(dst, &moved, sizeof(moved));
          pool_.Persist(dst, sizeof(moved));
          pool_.Fence();
          pool_.CommitStore64(&src->ino, kInvalidIno);
          journal.Deactivate();
          dst_dir->dir_index->Insert(dst_parts.leaf,
                                     DirSlot{tail->page, s, moved.ino, src_slot->is_dir});
          placed = true;
        }
        if (!placed) {
          tail->full.store(true, std::memory_order_relaxed);
        }
      }
      if (!placed && status.ok()) {
        status = AppendDirDataPage(dst_dir.get());
      }
    }
    if (!placed && status.ok()) {
      status = NoSpace("no slot for rename target");
    }
  }

  if (status.ok()) {
    src_dir->dir_index->Erase(src_parts.leaf);
    // Fix up the moved file's cached node: its dirent moved.
    NodePtr moved_node = FindNode(src_slot->ino);
    if (moved_node != nullptr) {
      DirSlot now;
      if (dst_dir->dir_index->Lookup(dst_parts.leaf, &now)) {
        moved_node->dirent = SlotPointer(now);
        moved_node->parent = dst_dir->ino;
      }
    }
    // The replaced file is gone; recycle if it was still only leased to us.
    if (replaced_ino != kInvalidIno) {
      const InoState state = kernel_.StateOfIno(replaced_ino);
      if (state.state == ResourceState::kLeased && state.lessee == libfs_) {
        (void)ForEachIndexPage(pool_, replaced_chain, [&](PageNumber p) -> Status {
          leases_.RecyclePage(p);
          return OkStatus();
        });
        (void)ForEachDataPage(pool_, replaced_chain,
                              [&](uint64_t, PageNumber p) -> Status {
                                leases_.RecyclePage(p);
                                return OkStatus();
                              });
        leases_.RecycleIno(replaced_ino);
      }
      DropNode(replaced_ino);
    }
  }
  unlock_all();
  return status;
}

Result<StatInfo> ArckFs::Stat(const std::string& path) {
  TRIO_ASSIGN_OR_RETURN(std::vector<std::string> components, SplitPath(path));
  if (components.empty()) {
    const DirentBlock& root = SuperblockOf(pool_)->root;
    StatInfo info{root.ino, root.mode, root.uid, root.gid,
                  root.size, root.mtime_ns, root.ctime_ns};
    return info;
  }
  SplitParent parts;
  parts.leaf = std::move(components.back());
  components.pop_back();
  parts.parent = std::move(components);

  TRIO_ASSIGN_OR_RETURN(NodePtr parent, ResolveDir(parts.parent));
  TRIO_RETURN_IF_ERROR(LockForOp(parent.get(), 1));
  Result<DirSlot> slot = FindEntry(parent.get(), parts.leaf);
  Status failed = slot.ok() ? OkStatus() : slot.status();
  StatInfo info;
  if (slot.ok()) {
    const DirentBlock* d = SlotPointer(*slot);
    info = StatInfo{d->ino, d->mode, d->uid, d->gid, d->size, d->mtime_ns, d->ctime_ns};
  }
  UnlockOp(parent.get());
  if (!failed.ok()) {
    return failed;
  }
  return info;
}

Result<std::vector<DirEntryInfo>> ArckFs::ReadDir(const std::string& path) {
  TRIO_ASSIGN_OR_RETURN(std::vector<std::string> components, SplitPath(path));
  TRIO_ASSIGN_OR_RETURN(NodePtr node, ResolveDir(components));
  TRIO_RETURN_IF_ERROR(LockForOp(node.get(), 1));
  std::vector<DirEntryInfo> entries;
  node->dir_index->ForEach([&](const std::string& name, const DirSlot& slot) {
    entries.push_back(DirEntryInfo{name, slot.ino, slot.is_dir});
  });
  UnlockOp(node.get());
  return entries;
}

Status ArckFs::Truncate(const std::string& path, uint64_t size) {
  TRIO_ASSIGN_OR_RETURN(NodePtr node, OpenNodeByPath(path, /*write=*/true));
  if (node->is_dir) {
    return IsDir(path);
  }
  TRIO_RETURN_IF_ERROR(LockForOp(node.get(), 2));
  Status status = TruncateLocked(node.get(), size);
  UnlockOp(node.get());
  return status;
}

Status ArckFs::Chmod(const std::string& path, uint32_t perm) {
  TRIO_ASSIGN_OR_RETURN(SplitParent parts, SplitParentPath(path));
  TRIO_ASSIGN_OR_RETURN(NodePtr parent, ResolveDir(parts.parent));
  TRIO_RETURN_IF_ERROR(LockForOp(parent.get(), 1));
  Result<DirSlot> slot = FindEntry(parent.get(), parts.leaf);
  UnlockOp(parent.get());
  if (!slot.ok()) {
    return slot.status();
  }
  // Permission changes go through the kernel controller: the shadow inode is the ground
  // truth the verifier trusts (I4, §4.3).
  TRIO_RETURN_IF_ERROR(EnsureReconciled(slot->ino));
  return kernel_.Chmod(libfs_, slot->ino, perm);
}

Status ArckFs::ReleaseFile(const std::string& path) {
  TRIO_ASSIGN_OR_RETURN(std::vector<std::string> components, SplitPath(path));
  if (components.empty()) {
    RevokeNode(kRootIno);
    return OkStatus();
  }
  SplitParent parts;
  parts.leaf = std::move(components.back());
  components.pop_back();
  parts.parent = std::move(components);
  TRIO_ASSIGN_OR_RETURN(NodePtr parent, ResolveDir(parts.parent));
  TRIO_RETURN_IF_ERROR(LockForOp(parent.get(), 1));
  Result<DirSlot> slot = FindEntry(parent.get(), parts.leaf);
  UnlockOp(parent.get());
  if (!slot.ok()) {
    return slot.status();
  }
  RevokeNode(slot->ino);
  return OkStatus();
}

Status ArckFs::Commit(const std::string& path) {
  TRIO_ASSIGN_OR_RETURN(std::vector<std::string> components, SplitPath(path));
  Ino ino = kRootIno;
  if (!components.empty()) {
    SplitParent parts;
    parts.leaf = std::move(components.back());
    components.pop_back();
    parts.parent = std::move(components);
    TRIO_ASSIGN_OR_RETURN(NodePtr parent, ResolveDir(parts.parent));
    TRIO_RETURN_IF_ERROR(LockForOp(parent.get(), 1));
    Result<DirSlot> slot = FindEntry(parent.get(), parts.leaf);
    UnlockOp(parent.get());
    if (!slot.ok()) {
      return slot.status();
    }
    ino = slot->ino;
  }
  TRIO_RETURN_IF_ERROR(EnsureReconciled(ino));
  return kernel_.CommitFile(libfs_, ino);
}

Status ArckFs::EnsureReconciled(Ino ino) {
  NodePtr node = FindNode(ino);
  if (node != nullptr && node->locally_created) {
    // Committing the parent directory verifies it and registers our fresh children with
    // the kernel (we remain their writer).
    TRIO_RETURN_IF_ERROR(kernel_.CommitFile(libfs_, node->parent));
    node->locally_created = false;
  }
  return OkStatus();
}

}  // namespace trio
