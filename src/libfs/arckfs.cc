// ArckFs lifecycle + journaling. The implementation is split across four translation
// units behind the single ArckFs class:
//   arckfs.cc        — construction/registration, journal shards, recovery, shared helpers
//   node_cache.cc    — node table, mapping, op locking, revocation, aux rebuild
//   namespace_ops.cc — path resolution, directory mutation, namespace FsInterface ops
//   data_ops.cc      — regular-file data path and fd-based FsInterface ops

#include "src/libfs/arckfs.h"

#include <algorithm>
#include <atomic>

#include "src/libfs/arckfs_internal.h"
#include "src/obs/persist_span.h"

namespace trio {

namespace arckfs_internal {

int64_t FakeTimeNs() {
  static std::atomic<int64_t> tick{1};
  return tick.fetch_add(1, std::memory_order_relaxed);
}

Result<PageNumber> AllocZeroedPage(LeaseCache& leases, NvmPool& pool,
                                   obs::PersistStats* stats, int node_hint) {
  TRIO_ASSIGN_OR_RETURN(PageNumber page, leases.AllocPage(node_hint));
  pool.Set(pool.PageAddress(page), 0, kPageSize);
  obs::PersistSpan(pool, stats).PersistNow(pool.PageAddress(page), kPageSize);
  return page;
}

}  // namespace arckfs_internal

LibFsId ArckFs::RegisterWithKernel(KernelController& kernel, const ArckFsConfig& config) {
  LibFsOptions options;
  options.uid = config.uid;
  options.gid = config.gid;
  options.callbacks.revoke = [this](Ino ino) { RevokeNode(ino); };
  options.callbacks.fix_corruption = config.fix_corruption;
  options.callbacks.recovery = [this] { ReplayJournals(); };
  options.callbacks.quarantined = [this](Ino ino, const Status& reason) {
    OnQuarantine(ino, reason);
  };
  return kernel.RegisterLibFs(options);
}

ArckFs::ArckFs(KernelController& kernel, ArckFsConfig config)
    : kernel_(kernel),
      pool_(kernel.pool()),
      config_(std::move(config)),
      libfs_(RegisterWithKernel(kernel, config_)),
      leases_(kernel, libfs_, config_.page_batch, config_.ino_batch),
      promote_cache_(kernel.pool(), config_.promote_cache_slots,
                     config_.promote_cache_shards, config_.promote_policy) {
  Superblock* sb = SuperblockOf(pool_);
  GetOrCreateNode(kRootIno, kInvalidIno, /*is_dir=*/true, &sb->root);
  if (config_.ring.enabled) {
    ring_engine_ = std::make_unique<OpRingEngine>(
        *this, pool_, config_.ring, static_cast<RingPassHooks*>(this), &persist_stats_);
  }
}

ArckFs::~ArckFs() {
  ring_engine_.reset();  // Stop the drainer before tearing anything else down.
  fds_.ReleaseAll();
  {
    std::lock_guard<std::mutex> guard(nodes_mutex_);
    nodes_.clear();
  }
  leases_.Shutdown();  // No async refill may race the kernel-side lease teardown.
  kernel_.UnregisterLibFs(libfs_);
}

// ---------------------------------------------------------------------------
// Op-ring drain-pass hooks (drainer thread only)
// ---------------------------------------------------------------------------

namespace {
// The drainer thread's pass-wide DelegationBatch. A plain thread_local works because a
// drainer thread belongs to exactly one ArckFs, and the hooks bracket every use.
thread_local DelegationBatch* tls_pass_batch = nullptr;
}  // namespace

void ArckFs::BeginPass() {
  if (config_.use_delegation && kernel_.delegation() != nullptr) {
    tls_pass_batch = new DelegationBatch(*kernel_.delegation());
  }
}

void ArckFs::FlushPass() {
  DelegationBatch* batch = tls_pass_batch;
  if (batch == nullptr || batch->requests() == 0) {
    return;
  }
  batch->Submit();
  batch->Wait();
  batch->Reset();
}

void ArckFs::EndPass() {
  FlushPass();
  delete tls_pass_batch;
  tls_pass_batch = nullptr;
}

DelegationBatch* ArckFs::PassBatch() { return tls_pass_batch; }

// ---------------------------------------------------------------------------
// Journal (rename) + recovery
// ---------------------------------------------------------------------------

UndoJournal& ArckFs::JournalShard() {
  {
    std::lock_guard<std::mutex> guard(journal_init_mutex_);
    if (journals_.empty()) {
      for (size_t i = 0; i < std::max<size_t>(1, config_.journal_shards); ++i) {
        Result<PageNumber> page = leases_.AllocPage(0);
        TRIO_CHECK(page.ok()) << "cannot allocate journal page";
        journals_.push_back(
            std::make_unique<UndoJournal>(pool_, *page, &persist_stats_));
      }
    }
  }
  return *journals_[ThisThreadShardIndex() % journals_.size()];
}

std::vector<PageNumber> ArckFs::JournalPages() {
  std::lock_guard<std::mutex> guard(journal_init_mutex_);
  std::vector<PageNumber> pages;
  for (const auto& journal : journals_) {
    pages.push_back(journal->page());
  }
  return pages;
}

void ArckFs::ReplayJournals() {
  for (PageNumber page : config_.recover_journal_pages) {
    UndoJournal::RecoverPage(pool_, page, &persist_stats_);
  }
}

}  // namespace trio
