// ArckFs node + mapping machinery: the in-DRAM FileNode table, kernel map/unmap
// handshakes, the op-lock acquisition protocol, revocation, and auxiliary-state rebuild.

#include <thread>

#include "src/libfs/arckfs.h"
#include "src/libfs/arckfs_internal.h"
#include "src/obs/op_context.h"

namespace trio {

ArckFs::NodePtr ArckFs::GetOrCreateNode(Ino ino, Ino parent, bool is_dir,
                                        DirentBlock* dirent) {
  std::lock_guard<std::mutex> guard(nodes_mutex_);
  auto it = nodes_.find(ino);
  if (it != nodes_.end()) {
    if (dirent != nullptr && it->second->dirent == nullptr) {
      it->second->dirent = dirent;
    }
    return it->second;
  }
  auto node = std::make_shared<FileNode>();
  node->ino = ino;
  node->parent = parent;
  node->is_dir = is_dir;
  node->dirent = dirent;
  nodes_[ino] = node;
  return node;
}

ArckFs::NodePtr ArckFs::FindNode(Ino ino) {
  std::lock_guard<std::mutex> guard(nodes_mutex_);
  auto it = nodes_.find(ino);
  return it == nodes_.end() ? nullptr : it->second;
}

void ArckFs::DropNode(Ino ino) {
  std::lock_guard<std::mutex> guard(nodes_mutex_);
  nodes_.erase(ino);
}

Status ArckFs::EnsureMapped(FileNode* node, bool write) {
  obs::TraceSpan span("EnsureMapped");
  std::unique_lock<std::mutex> guard(node->map_mutex);
  const int need = write ? 2 : 1;
  for (;;) {
    if (!node->stale.load(std::memory_order_acquire) &&
        node->map_state.load(std::memory_order_acquire) >= need) {
      return OkStatus();
    }
    const bool was_unmapped =
        node->map_state.load(std::memory_order_relaxed) == 0 || node->stale.load();
    const uint64_t revision = node->map_revision;
    // The kernel crossing runs WITHOUT our node lock: MapFile may synchronously revoke
    // the conflicting holder, and that holder's RevokeNode takes its own node's
    // map_mutex — holding ours across the call is an ABBA inversion when two tenants
    // revoke each other. If a revoke of THIS node lands in the unlocked window the
    // revision moves and the (now possibly stale) grant is simply requested again.
    guard.unlock();
    // Grant revalidation first: if the kernel still holds our grant (seqlock cache hit —
    // no shard mutex on the kernel side), skip the full MapFile. Safe against concurrent
    // revocation because RevokeNode holds this node's map_mutex for its whole duration:
    // any revoke serializes either before this window (revision moves, we retry) or
    // after we re-lock (stale flips and the next op remaps).
    Result<MapInfo> mapped = kernel_.LookupGrant(libfs_, node->ino);
    if (!mapped.ok() || (write && !mapped->writable)) {
      mapped = kernel_.MapFile(libfs_, node->parent, node->ino, write);
    }
    guard.lock();
    TRIO_RETURN_IF_ERROR(mapped.status());
    if (node->map_revision != revision) {
      continue;
    }
    const MapInfo& info = *mapped;
    if (info.dirent_page == 0) {
      node->dirent = &SuperblockOf(pool_)->root;
    } else {
      auto* page = reinterpret_cast<DirDataPage*>(pool_.PageAddress(info.dirent_page));
      node->dirent = &page->slots[info.dirent_slot];
    }
    if (was_unmapped) {
      TRIO_RETURN_IF_ERROR(RebuildAux(node));
    }
    node->stale.store(false, std::memory_order_release);
    node->map_state.store(info.writable ? 2 : 1, std::memory_order_release);
    return OkStatus();
  }
}

Status ArckFs::AcquireOpLock(FileNode* node, int level) {
  for (int attempt = 0;; ++attempt) {
    if (node->stale.load(std::memory_order_acquire) ||
        node->map_state.load(std::memory_order_acquire) < level) {
      TRIO_RETURN_IF_ERROR(EnsureMapped(node, level == 2));
    }
    node->op_lock.lock_shared();
    if (!node->stale.load(std::memory_order_acquire) &&
        node->map_state.load(std::memory_order_acquire) >= level) {
      return OkStatus();
    }
    node->op_lock.unlock_shared();
    if (attempt > 1000) {
      std::this_thread::yield();
    }
  }
}

Status ArckFs::LockForOp(FileNode* node, int level) {
  auto* op = obs::OpContext::Current();
  if (TRIO_OBS_UNLIKELY(op != nullptr)) {
    obs::TraceSpan span("LockForOp");
    const uint64_t t0 = obs::MonotonicNowNs();
    Status status = AcquireOpLock(node, level);
    const uint64_t waited = obs::MonotonicNowNs() - t0;
    op->counters.lock_wait_ns.fetch_add(waited, std::memory_order_relaxed);
    stats_.lock_wait_ns.fetch_add(waited);
    return status;
  }
  return AcquireOpLock(node, level);
}

void ArckFs::RevokeNode(Ino ino) {
  NodePtr node = FindNode(ino);
  if (node == nullptr) {
    (void)kernel_.UnmapFile(libfs_, ino);
    return;
  }
  std::lock_guard<std::mutex> guard(node->map_mutex);
  ++node->map_revision;  // Invalidate any MapFile grant in flight in EnsureMapped.
  node->stale.store(true, std::memory_order_release);
  node->op_lock.lock();  // Drain in-flight operations.
  if (!config_.sync_data && !node->is_dir) {
    FlushDirtyData(node.get());  // Shared data must be durable before the handoff.
  }
  if (node->locally_created) {
    // The kernel only learns about files we created when the parent directory is
    // verified; reconcile it now so the unmap below targets a known record. Harmless if
    // the parent was already released (the kernel reconciled it then).
    (void)kernel_.CommitFile(libfs_, node->parent);
  }
  // Always answer the kernel, even when we believe we hold nothing: the kernel may
  // carry an implicit write grant for this ino (created when a parent-directory commit
  // reconciled our locally-created children AFTER we had already torn down the node).
  // Skipping the unmap here left that grant in place and the revoking mapper looping on
  // completed-but-ineffective revoke callbacks. UnmapFile is idempotent — it returns
  // kNotFound/kInvalidArgument when there is truly nothing to release.
  (void)kernel_.UnmapFile(libfs_, ino);
  // Drop auxiliary state; it is rebuilt from the (possibly verified-and-rolled-back) core
  // state on the next access.
  node->radix.Clear();
  node->index_pages.clear();
  node->reuse_pages.clear();
  {
    // Promoted tier copies go too — after the handoff the kernel may digest a newer
    // version of these pages, and a stale cached copy would serve old bytes.
    std::vector<PageNumber> recycled;
    promote_cache_.EraseFile(ino, &recycled);
    for (PageNumber p : recycled) {
      leases_.RecyclePage(p);
    }
  }
  node->dir_index.reset();
  node->dir_tails.clear();
  node->dir_index_pages.clear();
  node->dir_next_entry = 0;
  node->locally_created = false;
  node->map_state.store(0, std::memory_order_release);
  node->op_lock.unlock();
  node->stale.store(false, std::memory_order_release);
  stats_.revocations.fetch_add(1, std::memory_order_relaxed);
}

void ArckFs::OnQuarantine(Ino ino, const Status& reason) {
  {
    std::lock_guard<std::mutex> guard(quarantine_mutex_);
    quarantine_notices_.emplace_back(ino, reason);
  }
  NodePtr node = FindNode(ino);
  if (node != nullptr) {
    // The kernel already stripped the mapping and rolled the file back; staleness makes
    // the next op re-map and rebuild auxiliary state from the restored core state. No
    // drain here: this may run on a watchdog thread while our own unmap holds the node.
    node->stale.store(true, std::memory_order_release);
  }
}

std::vector<std::pair<Ino, Status>> ArckFs::QuarantineNotices() {
  std::lock_guard<std::mutex> guard(quarantine_mutex_);
  return quarantine_notices_;
}

Status ArckFs::RebuildAux(FileNode* node) {
  obs::TraceSpan span("RebuildAux");
  const uint64_t t0 = kernel_.clock()->NowNs();
  TRIO_CHECK(node->dirent != nullptr);
  const PageNumber first = node->dirent->first_index_page;

  if (!node->is_dir) {
    node->radix.Clear();
    node->index_pages.clear();
    node->reuse_pages.clear();
    TRIO_RETURN_IF_ERROR(ForEachIndexPage(pool_, first, [&](PageNumber p) -> Status {
      node->index_pages.push_back(p);
      return OkStatus();
    }));
    // Raw entries, tier tags included: the radix mirrors the index chain verbatim so
    // the data path can distinguish NVM pages from digested (tagged) mappings.
    TRIO_RETURN_IF_ERROR(
        ForEachDataEntry(pool_, first, [&](uint64_t index, uint64_t entry) -> Status {
          node->radix.Insert(index, entry);
          return OkStatus();
        }));
    // Promoted copies from a previous mapping epoch are untrustworthy: the pages may
    // have been rewritten and re-digested to new slots while we held no grant.
    std::vector<PageNumber> recycled;
    promote_cache_.EraseFile(node->ino, &recycled);
    for (PageNumber p : recycled) {
      leases_.RecyclePage(p);
    }
  } else {
    node->dir_index = std::make_unique<DirIndex>();
    node->dir_tails.clear();
    node->dir_tail_index.clear();
    node->dir_first_nonfull.store(0, std::memory_order_relaxed);
    node->dir_index_pages.clear();
    node->dir_next_entry = 0;
    TRIO_RETURN_IF_ERROR(ForEachIndexPage(pool_, first, [&](PageNumber p) -> Status {
      node->dir_index_pages.push_back(p);
      return OkStatus();
    }));
    TRIO_RETURN_IF_ERROR(
        ForEachDataPage(pool_, first, [&](uint64_t, PageNumber p) -> Status {
          auto tail = std::make_unique<FileNode::DirTail>();
          tail->page = p;
          auto* page = reinterpret_cast<DirDataPage*>(pool_.PageAddress(p));
          uint32_t live = 0;
          for (uint32_t s = 0; s < kDirentsPerPage; ++s) {
            const DirentBlock& d = page->slots[s];
            if (d.IsFree()) {
              continue;
            }
            ++live;
            node->dir_index->Insert(d.Name(),
                                    DirSlot{p, s, d.ino, d.IsDirectory()});
          }
          tail->full.store(live == kDirentsPerPage, std::memory_order_relaxed);
          node->dir_tail_index[p] = node->dir_tails.size();
          node->dir_tails.push_back(std::move(tail));
          return OkStatus();
        }));
    if (!node->dir_index_pages.empty()) {
      const auto* last =
          reinterpret_cast<const IndexPage*>(pool_.PageAddress(node->dir_index_pages.back()));
      size_t used = 0;
      for (size_t i = 0; i < kIndexEntriesPerPage; ++i) {
        if (last->entries[i] != 0) {
          used = i + 1;
        }
      }
      node->dir_next_entry = used;
    }
  }
  stats_.rebuilds.fetch_add(1, std::memory_order_relaxed);
  stats_.rebuild_ns.fetch_add(kernel_.clock()->NowNs() - t0, std::memory_order_relaxed);
  return OkStatus();
}

}  // namespace trio
