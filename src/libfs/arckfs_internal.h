// Helpers shared by the ArckFs translation units (arckfs.cc, node_cache.cc,
// namespace_ops.cc, data_ops.cc). Internal to src/libfs — not part of the ArckFs API.

#ifndef SRC_LIBFS_ARCKFS_INTERNAL_H_
#define SRC_LIBFS_ARCKFS_INTERNAL_H_

#include <cstdint>

#include "src/libfs/arckfs.h"

namespace trio {
namespace arckfs_internal {

// Timestamps are best-effort (§3.3): a monotonically bumped counter keeps mtime/ctime
// ordered without a clock dependency in the data path.
int64_t FakeTimeNs();

// Allocates a leased page and hands it back zeroed and durable (persist + fence,
// accounted to `stats` / the current op).
Result<PageNumber> AllocZeroedPage(LeaseCache& leases, NvmPool& pool,
                                   obs::PersistStats* stats, int node_hint);

}  // namespace arckfs_internal
}  // namespace trio

#endif  // SRC_LIBFS_ARCKFS_INTERNAL_H_
