// The POSIX-like file system API (§4: "ArckFS provides the POSIX APIs with similar file
// system semantics"). ArckFS, the customized LibFSes, and every baseline file system in
// src/baselines implement this interface, and the workload generators, examples, and
// mini-LevelDB consume it — so every experiment runs the same calls against every system.

#ifndef SRC_LIBFS_FS_INTERFACE_H_
#define SRC_LIBFS_FS_INTERFACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/core/format.h"

namespace trio {

struct OpenFlags {
  bool read = true;
  bool write = false;
  bool create = false;
  bool truncate = false;
  bool append = false;
  bool exclusive = false;  // With create: fail if the file exists (O_EXCL).

  static OpenFlags ReadOnly() { return OpenFlags{}; }
  static OpenFlags ReadWrite() {
    OpenFlags f;
    f.write = true;
    return f;
  }
  static OpenFlags CreateRw() {
    OpenFlags f;
    f.write = true;
    f.create = true;
    return f;
  }
  static OpenFlags CreateTrunc() {
    OpenFlags f;
    f.write = true;
    f.create = true;
    f.truncate = true;
    return f;
  }
};

struct StatInfo {
  Ino ino = kInvalidIno;
  uint32_t mode = 0;
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint64_t size = 0;
  int64_t mtime_ns = 0;
  int64_t ctime_ns = 0;

  bool IsDirectory() const { return (mode & kModeTypeMask) == kModeDirectory; }
  bool IsRegular() const { return (mode & kModeTypeMask) == kModeRegular; }
};

struct DirEntryInfo {
  std::string name;
  Ino ino = kInvalidIno;
  bool is_dir = false;
};

using Fd = int;

class FsInterface {
 public:
  virtual ~FsInterface() = default;

  virtual Result<Fd> Open(const std::string& path, OpenFlags flags, uint32_t mode = 0644) = 0;
  virtual Status Close(Fd fd) = 0;

  // Cursor-based I/O.
  virtual Result<size_t> Read(Fd fd, void* buf, size_t count) = 0;
  virtual Result<size_t> Write(Fd fd, const void* buf, size_t count) = 0;
  // Positional I/O.
  virtual Result<size_t> Pread(Fd fd, void* buf, size_t count, uint64_t offset) = 0;
  virtual Result<size_t> Pwrite(Fd fd, const void* buf, size_t count, uint64_t offset) = 0;
  virtual Result<uint64_t> Seek(Fd fd, uint64_t offset) = 0;
  virtual Status Fsync(Fd fd) = 0;
  virtual Status Ftruncate(Fd fd, uint64_t size) = 0;

  virtual Status Mkdir(const std::string& path, uint32_t mode = 0755) = 0;
  virtual Status Rmdir(const std::string& path) = 0;
  virtual Status Unlink(const std::string& path) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Result<StatInfo> Stat(const std::string& path) = 0;
  virtual Result<std::vector<DirEntryInfo>> ReadDir(const std::string& path) = 0;
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;
  virtual Status Chmod(const std::string& path, uint32_t perm) = 0;

  // Human-readable identity for benchmark tables.
  virtual std::string Name() const = 0;
};

// Splits "/a/b/c" into {"a","b","c"}. Rejects empty components and relative paths.
Result<std::vector<std::string>> SplitPath(const std::string& path);

// Splits into (parent components, leaf name).
struct SplitParent {
  std::vector<std::string> parent;
  std::string leaf;
};
Result<SplitParent> SplitParentPath(const std::string& path);

}  // namespace trio

#endif  // SRC_LIBFS_FS_INTERFACE_H_
