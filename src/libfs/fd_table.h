// File-descriptor table: auxiliary LibFS state (§3.2 lists fds as canonical auxiliary
// state). Slots recycle through per-shard free lists so unrelated threads do not contend
// on one allocator (§4.5: per-CPU fd allocators).

#ifndef SRC_LIBFS_FD_TABLE_H_
#define SRC_LIBFS_FD_TABLE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/per_cpu.h"
#include "src/common/spinlock.h"
#include "src/libfs/fs_interface.h"

namespace trio {

template <typename FileT>
class FdTable {
 public:
  struct Entry {
    std::shared_ptr<FileT> file;
    std::atomic<uint64_t> offset{0};
    bool append = false;
    bool writable = false;
  };

  explicit FdTable(size_t capacity = 4096) : capacity_(capacity) {
    slots_ = std::make_unique<Slot[]>(capacity_);
  }

  Result<Fd> Alloc(std::shared_ptr<FileT> file, bool writable, bool append,
                   uint64_t offset) {
    auto& free_list = free_lists_.Local();
    Fd fd = -1;
    {
      std::lock_guard<SpinLock> guard(free_list.lock);
      if (!free_list.fds.empty()) {
        fd = free_list.fds.back();
        free_list.fds.pop_back();
      }
    }
    if (fd < 0) {
      const uint64_t next = next_fd_.fetch_add(1, std::memory_order_relaxed);
      if (next >= capacity_) {
        return TooLarge("fd table full");
      }
      fd = static_cast<Fd>(next);
    }
    Slot& slot = slots_[fd];
    slot.entry.file = std::move(file);
    slot.entry.offset.store(offset, std::memory_order_relaxed);
    slot.entry.append = append;
    slot.entry.writable = writable;
    slot.live.store(true, std::memory_order_release);
    return fd;
  }

  Entry* Get(Fd fd) {
    if (fd < 0 || static_cast<size_t>(fd) >= capacity_ ||
        !slots_[fd].live.load(std::memory_order_acquire)) {
      return nullptr;
    }
    return &slots_[fd].entry;
  }

  Status Release(Fd fd) {
    Entry* entry = Get(fd);
    if (entry == nullptr) {
      return BadFd("close of unopened fd");
    }
    slots_[fd].live.store(false, std::memory_order_release);
    entry->file.reset();
    auto& free_list = free_lists_.Local();
    std::lock_guard<SpinLock> guard(free_list.lock);
    free_list.fds.push_back(fd);
    return OkStatus();
  }

  // Closes every fd (LibFS teardown); returns how many were open.
  size_t ReleaseAll() {
    size_t released = 0;
    const uint64_t high = std::min<uint64_t>(next_fd_.load(), capacity_);
    for (uint64_t fd = 0; fd < high; ++fd) {
      if (slots_[fd].live.exchange(false)) {
        slots_[fd].entry.file.reset();
        ++released;
      }
    }
    return released;
  }

 private:
  struct Slot {
    std::atomic<bool> live{false};
    Entry entry;
  };
  struct FreeList {
    SpinLock lock;
    std::vector<Fd> fds;
  };

  const size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_fd_{0};
  PerCpu<FreeList> free_lists_{8};
};

}  // namespace trio

#endif  // SRC_LIBFS_FD_TABLE_H_
