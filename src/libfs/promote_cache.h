// LibFS promote cache (DESIGN.md §4.11): a small pool of leased NVM pages holding
// promoted copies of digested (backend-tier) file pages, so hot reads of cold data pay
// the slow backend only once. The copies are volatile auxiliary state — the tagged tier
// entry in the file's index page stays the authoritative mapping; losing the cache (or
// the whole process) merely re-promotes on the next read.
//
// Concurrency model mirrors the kernel's SeqlockCache: reads are lock-free, one seqlock
// per shard. A reader loads the shard sequence (even = stable), scans the fixed slot
// array for its key, copies the bytes out of the cached NVM page, then re-checks the
// sequence — a concurrent insert/evict bumps it and the reader falls back to a miss.
// Copying the *bytes* under the seqlock (not just the page number) is what makes reuse
// safe: an evicted page may be recycled through the LeaseCache and rewritten by anyone,
// so a page number alone could go stale between lookup and copy.
//
// Eviction is CLOCK over per-slot access bits by default; the policy is a virtual hook
// (PromoteCache::Policy) so a customized LibFS can swap in its own replacement scheme
// the same way FPFS swaps path resolution — pure auxiliary-state customization.
//
// The cache never owns pages: Insert/Erase/EraseFile hand evicted page numbers back to
// the caller, who recycles them into its LeaseCache.

#ifndef SRC_LIBFS_PROMOTE_CACHE_H_
#define SRC_LIBFS_PROMOTE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/spinlock.h"
#include "src/core/format.h"
#include "src/nvm/nvm.h"
#include "src/obs/stats.h"

namespace trio {

// Registered under layer "tier" alongside the kernel and backend tier counters.
struct PromoteCacheStats {
  obs::Counter promote_hits;        // Lock-free read hits served from a cached page.
  obs::Counter promote_misses;      // Lookups that fell through to a backend promote.
  obs::Counter promote_evictions;   // Cached pages displaced by CLOCK.

  PromoteCacheStats()
      : reg_("tier", {{"promote_hits", &promote_hits},
                      {"promote_misses", &promote_misses},
                      {"promote_evictions", &promote_evictions}}) {}

 private:
  obs::ScopedRegistration reg_;
};

class PromoteCache {
 public:
  struct Slot {
    std::atomic<uint64_t> key{0};        // Packed (ino, page_index)+1; 0 = empty.
    PageNumber page = 0;                 // Leased NVM page holding the promoted copy.
    std::atomic<uint32_t> referenced{0};  // CLOCK access bit, set by read hits.
  };

  // Replacement policy hook. PickVictim returns a slot index in [0, count); `hand` is
  // the shard's persistent clock hand the policy may advance. Runs under the shard
  // write lock, so plain reads/writes of slot fields are safe.
  class Policy {
   public:
    virtual ~Policy() = default;
    virtual size_t PickVictim(Slot* slots, size_t count, size_t* hand) = 0;
  };

  // `total_slots` pages cached across `shards` shards; 0 slots disables the cache
  // (every lookup misses, Insert evicts the inserted page right back). `policy` is an
  // unowned override; null = built-in CLOCK.
  PromoteCache(NvmPool& pool, size_t total_slots, size_t shards = 8,
               Policy* policy = nullptr);

  bool enabled() const { return slots_per_shard_ != 0; }

  // Lock-free: if (ino, page_index) is cached, copy `len` bytes starting at `in_page`
  // within the cached page into `dst` and return true. False = miss (caller promotes).
  bool ReadHit(Ino ino, uint64_t page_index, uint64_t in_page, void* dst, size_t len);

  // Install a freshly promoted page. Returns the page number the cache no longer
  // holds — the CLOCK victim, the duplicate loser when another thread promoted the same
  // (ino, index) first, or `page` itself when the cache is disabled/unpackable. 0 = kept
  // with no displacement. The caller recycles the returned page.
  PageNumber Insert(Ino ino, uint64_t page_index, PageNumber page);

  // Drop one mapping (the page was promoted for write or truncated away). Returns the
  // cached page to recycle, or 0 if not cached.
  PageNumber Erase(Ino ino, uint64_t page_index);

  // Drop every entry for `ino` (revocation/teardown); appends recyclable pages to out.
  void EraseFile(Ino ino, std::vector<PageNumber>* recycled);

  PromoteCacheStats& stats() { return stats_; }

 private:
  struct Shard {
    SpinLock lock;                   // Writers only.
    std::atomic<uint64_t> seq{0};    // Seqlock: odd while a writer mutates.
    std::vector<Slot> slots;
    size_t hand = 0;                 // CLOCK hand.
  };

  // Packs (ino, page_index) into a nonzero key, or 0 if unpackable (page index beyond
  // 2^24 pages = 64 GiB into the file; such offsets simply bypass the cache).
  static uint64_t PackKey(Ino ino, uint64_t page_index) {
    if (page_index + 1 >= (1ull << kIndexKeyBits) || ino >= (1ull << (63 - kIndexKeyBits))) {
      return 0;
    }
    return (static_cast<uint64_t>(ino) << kIndexKeyBits) | (page_index + 1);
  }

  Shard& ShardFor(uint64_t key) {
    return shards_[(key * 11400714819323198485ull) >> shift_];
  }

  static constexpr uint64_t kIndexKeyBits = 24;

  NvmPool& pool_;
  size_t slots_per_shard_ = 0;
  unsigned shift_ = 64;
  Policy* policy_;
  std::unique_ptr<Policy> default_policy_;
  std::vector<Shard> shards_;
  PromoteCacheStats stats_;
};

}  // namespace trio

#endif  // SRC_LIBFS_PROMOTE_CACHE_H_
