#include "src/libfs/promote_cache.h"

#include <cstring>

namespace trio {

namespace {

// Classic CLOCK: sweep from the hand, clearing access bits, and take the first slot
// whose bit was already clear. Empty slots win immediately. Bounded by two full laps
// (every bit is clear after one), so it always terminates.
class ClockPolicy : public PromoteCache::Policy {
 public:
  size_t PickVictim(PromoteCache::Slot* slots, size_t count, size_t* hand) override {
    for (size_t step = 0; step < 2 * count; ++step) {
      const size_t i = *hand;
      *hand = (*hand + 1) % count;
      if (slots[i].key.load(std::memory_order_relaxed) == 0) {
        return i;
      }
      if (slots[i].referenced.exchange(0, std::memory_order_relaxed) == 0) {
        return i;
      }
    }
    return *hand;  // Unreachable; keeps the contract total.
  }
};

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

PromoteCache::PromoteCache(NvmPool& pool, size_t total_slots, size_t shards,
                           Policy* policy)
    : pool_(pool), policy_(policy) {
  if (policy_ == nullptr) {
    default_policy_ = std::make_unique<ClockPolicy>();
    policy_ = default_policy_.get();
  }
  const size_t shard_count = RoundUpPow2(shards == 0 ? 1 : shards);
  shards_ = std::vector<Shard>(shard_count);
  shift_ = 64;
  for (size_t s = shard_count; s > 1; s >>= 1) {
    --shift_;
  }
  slots_per_shard_ = total_slots == 0 ? 0 : (total_slots + shard_count - 1) / shard_count;
  for (Shard& shard : shards_) {
    shard.slots = std::vector<Slot>(slots_per_shard_);
  }
}

bool PromoteCache::ReadHit(Ino ino, uint64_t page_index, uint64_t in_page, void* dst,
                           size_t len) {
  const uint64_t key = PackKey(ino, page_index);
  if (key == 0 || !enabled()) {
    stats_.promote_misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Shard& shard = ShardFor(key);
  for (int attempt = 0; attempt < 4; ++attempt) {
    const uint64_t seq0 = shard.seq.load(std::memory_order_acquire);
    if (seq0 & 1) {
      continue;  // Writer in flight; one retry is usually enough.
    }
    PageNumber page = 0;
    Slot* found = nullptr;
    for (Slot& slot : shard.slots) {
      if (slot.key.load(std::memory_order_relaxed) == key) {
        page = slot.page;
        found = &slot;
        break;
      }
    }
    if (found == nullptr) {
      // Key-absence is only trustworthy if no writer raced the scan.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (shard.seq.load(std::memory_order_relaxed) == seq0) {
        break;
      }
      continue;
    }
    found->referenced.store(1, std::memory_order_relaxed);
    // Copy the bytes, then revalidate: if a writer evicted this slot mid-copy the page
    // may already be recycled and rewritten, so the copy is discarded and retried.
    pool_.Read(dst, pool_.PageAddress(page) + in_page, len);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (shard.seq.load(std::memory_order_relaxed) == seq0) {
      stats_.promote_hits.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  stats_.promote_misses.fetch_add(1, std::memory_order_relaxed);
  return false;
}

PageNumber PromoteCache::Insert(Ino ino, uint64_t page_index, PageNumber page) {
  const uint64_t key = PackKey(ino, page_index);
  if (key == 0 || !enabled()) {
    return page;  // Uncacheable: hand the promoted page straight back.
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<SpinLock> guard(shard.lock);
  // Duplicate promote (two readers missed concurrently): keep the incumbent copy — it
  // is byte-identical (backend slots are write-once) — and recycle the newcomer.
  for (Slot& slot : shard.slots) {
    if (slot.key.load(std::memory_order_relaxed) == key) {
      return page;
    }
  }
  const size_t victim = policy_->PickVictim(shard.slots.data(), shard.slots.size(),
                                            &shard.hand);
  Slot& slot = shard.slots[victim];
  const PageNumber evicted = slot.key.load(std::memory_order_relaxed) != 0 ? slot.page : 0;
  shard.seq.fetch_add(1, std::memory_order_acq_rel);  // Odd: readers stand back.
  slot.key.store(key, std::memory_order_relaxed);
  slot.page = page;
  slot.referenced.store(1, std::memory_order_relaxed);
  shard.seq.fetch_add(1, std::memory_order_release);  // Even again.
  if (evicted != 0) {
    stats_.promote_evictions.fetch_add(1, std::memory_order_relaxed);
  }
  return evicted;
}

PageNumber PromoteCache::Erase(Ino ino, uint64_t page_index) {
  const uint64_t key = PackKey(ino, page_index);
  if (key == 0 || !enabled()) {
    return 0;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<SpinLock> guard(shard.lock);
  for (Slot& slot : shard.slots) {
    if (slot.key.load(std::memory_order_relaxed) == key) {
      const PageNumber page = slot.page;
      shard.seq.fetch_add(1, std::memory_order_acq_rel);
      slot.key.store(0, std::memory_order_relaxed);
      slot.page = 0;
      slot.referenced.store(0, std::memory_order_relaxed);
      shard.seq.fetch_add(1, std::memory_order_release);
      return page;
    }
  }
  return 0;
}

void PromoteCache::EraseFile(Ino ino, std::vector<PageNumber>* recycled) {
  if (!enabled()) {
    return;
  }
  for (Shard& shard : shards_) {
    std::lock_guard<SpinLock> guard(shard.lock);
    bool bumped = false;
    for (Slot& slot : shard.slots) {
      const uint64_t key = slot.key.load(std::memory_order_relaxed);
      if (key == 0 || (key >> kIndexKeyBits) != ino) {
        continue;
      }
      if (!bumped) {
        shard.seq.fetch_add(1, std::memory_order_acq_rel);
        bumped = true;
      }
      recycled->push_back(slot.page);
      slot.key.store(0, std::memory_order_relaxed);
      slot.page = 0;
      slot.referenced.store(0, std::memory_order_relaxed);
    }
    if (bumped) {
      shard.seq.fetch_add(1, std::memory_order_release);
    }
  }
}

}  // namespace trio
