#include "src/libfs/op_ring.h"

namespace trio {

namespace {

std::atomic<uint64_t> g_next_engine_id{1};

// Engine-id-keyed cache so a thread resolves its ring without the registration mutex
// after first use. Keyed by the engine's never-reused id, not its address: a new engine
// allocated where a dead one lived must not see the dead engine's rings.
struct RingCacheEntry {
  uint64_t engine_id;
  OpRing* ring;
};
thread_local std::vector<RingCacheEntry> tls_ring_cache;

}  // namespace

OpRingEngine::OpRingEngine(FsInterface& fs, NvmPool& pool, OpRingConfig config,
                           RingPassHooks* hooks, obs::PersistStats* persist_stats)
    : fs_(fs),
      pool_(pool),
      config_(config),
      hooks_(hooks),
      persist_stats_(persist_stats),
      engine_id_(g_next_engine_id.fetch_add(1, std::memory_order_relaxed)) {
  TRIO_CHECK(config_.depth > 0 && (config_.depth & (config_.depth - 1)) == 0)
      << "ring depth must be a power of two";
  TRIO_CHECK(config_.max_rings > 0);
  // Reserved up front: the drainer indexes rings_ without the mutex, so the array must
  // never reallocate once the drainer is running.
  rings_.reserve(config_.max_rings);
  drainer_ = std::thread([this] { DrainerLoop(); });
}

OpRingEngine::~OpRingEngine() { Stop(); }

void OpRingEngine::Stop() {
  stop_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> guard(park_mutex_);
    park_cv_.notify_all();
  }
  if (drainer_.joinable()) {
    drainer_.join();
  }
  // Anything submitted before Stop but after the drainer's final pass completes here, on
  // the stopping thread, under the same pass/epoch discipline — so no reaper strands.
  while (DrainOnce() != 0) {
  }
}

OpRing& OpRingEngine::ThreadRing() {
  for (const auto& entry : tls_ring_cache) {
    if (entry.engine_id == engine_id_) {
      return *entry.ring;
    }
  }
  std::lock_guard<std::mutex> guard(rings_mutex_);
  TRIO_CHECK(rings_.size() < config_.max_rings) << "op-ring engine out of ring slots";
  rings_.push_back(std::make_unique<OpRing>(config_.depth));
  OpRing* ring = rings_.back().get();
  published_rings_.store(rings_.size(), std::memory_order_release);
  tls_ring_cache.push_back({engine_id_, ring});
  return *ring;
}

void OpRingEngine::Submit(const Sqe& sqe) {
  OpRing& ring = ThreadRing();
  // Backpressure: a full SQ means the drainer is behind; keep poking it. The yield
  // matters on few-core machines, where a spinning submitter would starve the drainer
  // out of the very CPU it needs to make room.
  while (!ring.TrySubmit(sqe)) {
    WakeDrainer();
    std::this_thread::yield();
  }
  ++ring.submitted_;
  stats_.submitted.fetch_add(1);
  WakeDrainer();
}

void OpRingEngine::SubmitBurst(Sqe* sqes, size_t count) {
  OpRing& ring = ThreadRing();
  for (size_t i = 0; i < count; ++i) {
    sqes[i].user_data = ring.next_user_data_++;
    // A burst larger than the SQ spills: wake the drainer to make room mid-burst (those
    // ops then span more than one pass, which is the best a bounded queue can do).
    while (!ring.TrySubmit(sqes[i])) {
      WakeDrainer();
      std::this_thread::yield();
    }
    ++ring.submitted_;
  }
  stats_.submitted.fetch_add(count);
  WakeDrainer();
}

uint64_t OpRingEngine::SubmitWrite(Fd fd, const void* buf, size_t len) {
  Sqe sqe;
  sqe.op = Sqe::Op::kWrite;
  sqe.fd = fd;
  sqe.buf = buf;
  sqe.len = static_cast<uint32_t>(len);
  sqe.user_data = ThreadRing().next_user_data_++;
  Submit(sqe);
  return sqe.user_data;
}

uint64_t OpRingEngine::SubmitPwrite(Fd fd, const void* buf, size_t len, uint64_t offset) {
  Sqe sqe;
  sqe.op = Sqe::Op::kPwrite;
  sqe.fd = fd;
  sqe.buf = buf;
  sqe.len = static_cast<uint32_t>(len);
  sqe.offset = offset;
  sqe.user_data = ThreadRing().next_user_data_++;
  Submit(sqe);
  return sqe.user_data;
}

uint64_t OpRingEngine::SubmitCreate(const std::string& path, uint32_t mode, uint8_t flags) {
  if (path.size() >= kSqeMaxPath) {
    return 0;  // Does not fit the fixed-size SQE: synchronous fallback.
  }
  Sqe sqe;
  sqe.op = Sqe::Op::kCreate;
  sqe.flags = flags;
  sqe.mode = mode;
  std::memcpy(sqe.path, path.c_str(), path.size() + 1);
  sqe.user_data = ThreadRing().next_user_data_++;
  Submit(sqe);
  return sqe.user_data;
}

uint64_t OpRingEngine::SubmitUnlink(const std::string& path) {
  if (path.size() >= kSqeMaxPath) {
    return 0;
  }
  Sqe sqe;
  sqe.op = Sqe::Op::kUnlink;
  std::memcpy(sqe.path, path.c_str(), path.size() + 1);
  sqe.user_data = ThreadRing().next_user_data_++;
  Submit(sqe);
  return sqe.user_data;
}

uint64_t OpRingEngine::SubmitFsync(Fd fd) {
  Sqe sqe;
  sqe.op = Sqe::Op::kFsync;
  sqe.fd = fd;
  sqe.user_data = ThreadRing().next_user_data_++;
  Submit(sqe);
  return sqe.user_data;
}

size_t OpRingEngine::TryReap(Cqe* out, size_t max) {
  OpRing& ring = ThreadRing();
  const size_t reaped = ring.TryReap(out, max);
  ring.reaped_ += reaped;
  return reaped;
}

Cqe OpRingEngine::WaitCompletion() {
  OpRing& ring = ThreadRing();
  Cqe cqe;
  // Spin briefly for the common sub-microsecond completion, then yield the CPU to the
  // drainer (essential when both share a core).
  for (uint32_t spin = 0; !ring.cq_.TryPop(cqe); ++spin) {
    if (spin < 512) {
      CpuRelax();
    } else {
      std::this_thread::yield();
    }
  }
  ++ring.reaped_;
  return cqe;
}

void OpRingEngine::WaitIdle() {
  OpRing& ring = ThreadRing();
  Cqe scratch[16];
  uint32_t spin = 0;
  while (ring.in_flight() != 0) {
    const size_t reaped = ring.TryReap(scratch, 16);
    ring.reaped_ += reaped;
    if (reaped != 0) {
      spin = 0;
    } else if (++spin < 512) {
      CpuRelax();
    } else {
      std::this_thread::yield();
    }
  }
}

void OpRingEngine::WakeDrainer() {
  // Same no-lost-wakeup protocol as the delegation pool: the full fence orders our SQ
  // push before the sleepers read, pairing with the drainer's fence between its sleepers
  // increment and its ring recheck — one side always sees the other.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) != 0) {
    stats_.wakeups.fetch_add(1);
    std::lock_guard<std::mutex> guard(park_mutex_);
    park_cv_.notify_one();
  }
}

void OpRingEngine::DrainerLoop() {
  auto has_work = [this] {
    const size_t published = published_rings_.load(std::memory_order_acquire);
    for (size_t i = 0; i < published; ++i) {
      if (!rings_[i]->sq_.ApproxEmpty()) {
        return true;
      }
    }
    return false;
  };
  while (true) {
    if (DrainOnce() != 0) {
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      return;
    }
    bool found = false;
    for (uint32_t spin = 0; spin < config_.drainer_spin; ++spin) {
      if (has_work() || stop_.load(std::memory_order_acquire)) {
        found = true;
        break;
      }
      // Mostly pause, but cede the CPU now and then: on a machine with fewer cores than
      // threads the submitter needs this slice to produce the work we are spinning for,
      // and handing it over here avoids a full park/futex round trip per handoff.
      if ((spin & 63u) == 63u) {
        std::this_thread::yield();
      } else {
        CpuRelax();
      }
    }
    if (found) {
      continue;
    }
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (has_work() || stop_.load(std::memory_order_acquire)) {
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
      continue;
    }
    stats_.parks.fetch_add(1);
    {
      std::unique_lock<std::mutex> lock(park_mutex_);
      park_cv_.wait(lock, [&] {
        return has_work() || stop_.load(std::memory_order_acquire);
      });
    }
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

size_t OpRingEngine::DrainOnce() {
  const size_t published = published_rings_.load(std::memory_order_acquire);
  std::vector<std::pair<OpRing*, Sqe>> pass;
  for (size_t i = 0; i < published; ++i) {
    OpRing* ring = rings_[i].get();
    Sqe sqe;
    // Bounded burst per ring so a fast submitter cannot extend the pass forever.
    for (size_t n = 0; n < config_.depth && ring->sq_.TryPop(sqe); ++n) {
      pass.emplace_back(ring, sqe);
    }
  }
  if (pass.empty()) {
    return 0;
  }
  stats_.drain_passes.fetch_add(1);
  stats_.pass_ops.fetch_add(pass.size());

  // The group-commit window: every span fence of every op below defers into `epoch`,
  // which issues ONE pool fence per Close(). CQEs buffer until after a close, so a
  // reaped completion always implies durability.
  obs::PersistEpoch epoch(pool_, persist_stats_);
  obs::PersistEpoch::Scope scope(epoch);
  if (hooks_ != nullptr) {
    hooks_->BeginPass();
  }
  std::vector<std::pair<OpRing*, Cqe>> held;
  held.reserve(pass.size());
  auto post_held = [&] {
    for (const auto& [ring, cqe] : held) {
      PostCqe(*ring, cqe);
    }
    held.clear();
  };
  for (const auto& [ring, sqe] : pass) {
    if (sqe.op == Sqe::Op::kFsync) {
      // Barrier: pass-batch data first (workers persist + fence), then the FS's fsync
      // work, then the epoch fence — and only then do the CQEs of everything before the
      // barrier (and the barrier's own) become visible.
      if (hooks_ != nullptr) {
        hooks_->FlushPass();
      }
      const Status status = fs_.Fsync(sqe.fd);
      epoch.Close();
      Cqe cqe;
      cqe.user_data = sqe.user_data;
      cqe.result = status.ok() ? 0 : -static_cast<int64_t>(status.code());
      held.emplace_back(ring, cqe);
      post_held();
      stats_.barriers.fetch_add(1);
    } else {
      held.emplace_back(ring, Execute(sqe));
    }
  }
  if (hooks_ != nullptr) {
    hooks_->FlushPass();
  }
  epoch.Close();
  if (hooks_ != nullptr) {
    hooks_->EndPass();
  }
  post_held();
  return pass.size();
}

Cqe OpRingEngine::Execute(const Sqe& sqe) {
  Cqe cqe;
  cqe.user_data = sqe.user_data;
  switch (sqe.op) {
    case Sqe::Op::kNop:
    case Sqe::Op::kFsync:  // Barriers are handled in DrainOnce; a stray one is a no-op.
      cqe.result = 0;
      break;
    case Sqe::Op::kWrite: {
      const Result<size_t> result = fs_.Write(sqe.fd, sqe.buf, sqe.len);
      cqe.result = result.ok() ? static_cast<int64_t>(*result)
                               : -static_cast<int64_t>(result.status().code());
      break;
    }
    case Sqe::Op::kPwrite: {
      const Result<size_t> result = fs_.Pwrite(sqe.fd, sqe.buf, sqe.len, sqe.offset);
      cqe.result = result.ok() ? static_cast<int64_t>(*result)
                               : -static_cast<int64_t>(result.status().code());
      break;
    }
    case Sqe::Op::kCreate: {
      OpenFlags flags = OpenFlags::CreateRw();
      flags.append = (sqe.flags & Sqe::kFlagAppend) != 0;
      flags.truncate = (sqe.flags & Sqe::kFlagTrunc) != 0;
      flags.exclusive = (sqe.flags & Sqe::kFlagExcl) != 0;
      const Result<Fd> result = fs_.Open(sqe.path, flags, sqe.mode);
      cqe.result = result.ok() ? static_cast<int64_t>(*result)
                               : -static_cast<int64_t>(result.status().code());
      break;
    }
    case Sqe::Op::kUnlink: {
      const Status status = fs_.Unlink(sqe.path);
      cqe.result = status.ok() ? 0 : -static_cast<int64_t>(status.code());
      break;
    }
  }
  return cqe;
}

void OpRingEngine::PostCqe(OpRing& ring, const Cqe& cqe) {
  if (!ring.cq_.TryPush(cqe)) {
    // Slow reaper. The CQ is 2x the SQ, so this only happens when the owner submits
    // across multiple passes without reaping; spin until it catches up (CQEs are never
    // dropped — the completion contract is the whole point of the ring).
    stats_.cq_stalls.fetch_add(1);
    while (!ring.cq_.TryPush(cqe)) {
      CpuRelax();
    }
  }
  stats_.completed.fetch_add(1);
}

}  // namespace trio
