// io_uring-style per-thread operation rings into a LibFS (the async submission path of
// ROADMAP item 4: "everything becomes a message").
//
// Shape: each application thread owns an OpRing — an SPSC submission queue of fixed-size
// Sqe records plus an SPSC completion queue of Cqe records — obtained from the LibFS's
// OpRingEngine. A single drainer thread per engine pops SQEs from every ring in rounds
// ("drain passes"), executes them against the owning FsInterface, and posts CQEs
// out-of-line. Three batching effects stack per pass:
//
//  1. Group-commit epoch: the drainer wraps the pass in an obs::PersistEpoch, so every
//     PersistSpan fence of every op in the pass collapses into ONE sfence at epoch close
//     (cross-op fence coalescing — the per-op clwbs still happen, in dependency order).
//  2. Shared DelegationBatch: RingPassHooks lets the LibFS install one DelegationBatch
//     for the whole pass, so delegated chunks of many small writes ride one ring push and
//     one fence per NUMA node per pass instead of per op.
//  3. Out-of-line completion: the submitting thread never blocks on persistence; it reaps
//     CQEs when it needs results.
//
// fsync is a barrier SQE: the drainer flushes the pass batch, lets the FS run its fsync
// work, closes the epoch, and only then posts the barrier's CQE — after every CQE of the
// ops before it. A CQE therefore always implies durability: CQEs are buffered during the
// pass and posted only after the epoch fence that makes their ops durable.
//
// Synchronous fallback: the ring is strictly additive. FsInterface calls keep working
// unchanged on any thread (they fence synchronously through their own spans, since no
// epoch is installed outside the drainer); ops the Sqe format cannot carry (paths longer
// than kSqeMaxPath, reads, renames) simply stay on the synchronous path.

#ifndef SRC_LIBFS_OP_RING_H_
#define SRC_LIBFS_OP_RING_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/mpmc_ring.h"
#include "src/libfs/fs_interface.h"
#include "src/nvm/nvm.h"
#include "src/obs/persist_span.h"
#include "src/obs/stats.h"

namespace trio {

// Inline path capacity of an Sqe. Longer paths do not fit the fixed-size record and must
// use the synchronous API (SubmitCreate/SubmitUnlink refuse them).
inline constexpr size_t kSqeMaxPath = 96;

struct OpRingConfig {
  bool enabled = false;
  // SQ capacity per thread ring (power of two). The CQ holds 2x so a full pass of
  // completions never blocks the drainer behind a slow reaper in the common case.
  size_t depth = 64;
  // TryPop rounds the drainer spins over empty rings before parking.
  uint32_t drainer_spin = 4096;
  // Rings one engine can hand out (fixed at construction so the published-ring array
  // never reallocates under the drainer).
  size_t max_rings = 64;
};

// Fixed-size submission queue entry. Buffers (`buf`) stay application-owned and must
// remain live and unmodified until the op's CQE is reaped.
struct Sqe {
  enum class Op : uint8_t {
    kNop = 0,
    kWrite,   // Cursor write on fd (honors O_APPEND): buf/len.
    kPwrite,  // Positional write: buf/len/offset.
    kCreate,  // Open(path, create|write [,flags]) -> CQE result = fd.
    kUnlink,  // Unlink(path).
    kFsync,   // Barrier: durability point for everything submitted before it.
  };
  // kCreate modifiers.
  static constexpr uint8_t kFlagAppend = 1u << 0;
  static constexpr uint8_t kFlagTrunc = 1u << 1;
  static constexpr uint8_t kFlagExcl = 1u << 2;

  Op op = Op::kNop;
  uint8_t flags = 0;
  Fd fd = -1;
  uint32_t mode = 0644;
  uint32_t len = 0;
  uint64_t user_data = 0;
  uint64_t offset = 0;
  const void* buf = nullptr;
  char path[kSqeMaxPath] = {};  // NUL-terminated (kCreate/kUnlink).
};

// Completion queue entry. result >= 0 is the op's count/fd; result < 0 encodes the
// Status as -static_cast<int64_t>(ErrorCode).
struct Cqe {
  uint64_t user_data = 0;
  int64_t result = 0;

  bool ok() const { return result >= 0; }
  ErrorCode code() const {
    return result >= 0 ? ErrorCode::kOk : static_cast<ErrorCode>(-result);
  }
};

// One thread's SQ/CQ pair. The owning application thread is the only producer of the SQ
// and the only consumer of the CQ; the drainer is the only consumer of the SQ and the
// only producer of the CQ — both sides run on the SPSC fast path.
class OpRing {
 public:
  explicit OpRing(size_t depth) : sq_(depth), cq_(depth * 2) {}
  OpRing(const OpRing&) = delete;
  OpRing& operator=(const OpRing&) = delete;

  // Owner-thread side. TrySubmit returns false when the SQ is full (backpressure:
  // reap or retry). Does not wake the drainer — use OpRingEngine::Submit.
  bool TrySubmit(const Sqe& sqe) { return sq_.TryPush(sqe); }
  size_t TryReap(Cqe* out, size_t max) { return cq_.TryPopBatch(out, max); }

  // Submissions minus reaped completions (owner-thread bookkeeping, maintained by
  // OpRingEngine's helpers).
  uint64_t in_flight() const { return submitted_ - reaped_; }

 private:
  friend class OpRingEngine;

  SpscRing<Sqe> sq_;
  SpscRing<Cqe> cq_;
  // Owner-thread counters (not atomics: only the owner reads/writes them).
  uint64_t submitted_ = 0;
  uint64_t reaped_ = 0;
  uint64_t next_user_data_ = 1;
};

// Per-pass hooks a LibFS implements to share state across the ops of one drain pass —
// ArckFs uses them to install a pass-wide DelegationBatch. All hooks run on the drainer
// thread. FlushPass must make every queued side effect durable-ready (submitted and
// waited) and may be called multiple times per pass (before every epoch close).
class RingPassHooks {
 public:
  virtual ~RingPassHooks() = default;
  virtual void BeginPass() {}
  virtual void FlushPass() {}
  virtual void EndPass() {}
};

// Registered into obs::StatRegistry under layer "ring".
struct OpRingStats {
  obs::Counter submitted;     // SQEs accepted.
  obs::Counter completed;     // CQEs posted.
  obs::Counter barriers;      // Barrier (fsync) SQEs executed.
  obs::Counter drain_passes;  // Passes that executed at least one SQE.
  obs::Counter pass_ops;      // SQEs summed over passes (avg depth = pass_ops/passes).
  obs::Counter cq_stalls;     // Spins because a CQ was full (slow reaper).
  obs::Counter parks;         // Drainer park events.
  obs::Counter wakeups;       // Drainer wakeups by submitters.

  OpRingStats()
      : reg_("ring", {{"submitted", &submitted},
                      {"completed", &completed},
                      {"barriers", &barriers},
                      {"drain_passes", &drain_passes},
                      {"pass_ops", &pass_ops},
                      {"cq_stalls", &cq_stalls},
                      {"parks", &parks},
                      {"wakeups", &wakeups}}) {}

 private:
  obs::ScopedRegistration reg_;
};

class OpRingEngine {
 public:
  // `persist_stats` is the layer the epoch's close fences are charged to (normally the
  // owning LibFS's "libfs" PersistStats, so fences/op comparisons against the synchronous
  // path read off one layer). `hooks` may be null.
  OpRingEngine(FsInterface& fs, NvmPool& pool, OpRingConfig config,
               RingPassHooks* hooks = nullptr, obs::PersistStats* persist_stats = nullptr);
  ~OpRingEngine();
  OpRingEngine(const OpRingEngine&) = delete;
  OpRingEngine& operator=(const OpRingEngine&) = delete;

  // Joins the drainer after draining every ring (a stopped engine completes everything
  // that was submitted, so no waiter strands). Idempotent.
  void Stop();

  // The calling thread's ring (created and published on first use; cached thread-local).
  OpRing& ThreadRing();

  // ---- Submission helpers (owner thread). All spin when the SQ is full, wake the
  // drainer, and return the op's user_data for matching against CQEs. ----
  uint64_t SubmitWrite(Fd fd, const void* buf, size_t len);
  uint64_t SubmitPwrite(Fd fd, const void* buf, size_t len, uint64_t offset);
  // Returns 0 (an invalid user_data) if `path` exceeds kSqeMaxPath — synchronous
  // fallback territory.
  uint64_t SubmitCreate(const std::string& path, uint32_t mode = 0644, uint8_t flags = 0);
  uint64_t SubmitUnlink(const std::string& path);
  uint64_t SubmitFsync(Fd fd);
  // Raw submission: caller fills the Sqe (user_data included).
  void Submit(const Sqe& sqe);
  // Enqueues a whole burst with ONE drainer wake at the end, so the ops land in as few
  // drain passes (group-commit epochs) as the SQ can hold instead of trickling in one
  // pass each. Assigns each Sqe's user_data in place; spins on backpressure like Submit.
  void SubmitBurst(Sqe* sqes, size_t count);

  // ---- Completion helpers (owner thread). ----
  size_t TryReap(Cqe* out, size_t max);
  // Blocks (spin) until one CQE is available.
  Cqe WaitCompletion();
  // Reaps until everything this thread submitted has completed; discards the CQEs.
  void WaitIdle();

  const OpRingConfig& config() const { return config_; }
  const OpRingStats& stats() const { return stats_; }

  // True once the drainer has run out of work and is parking (it may still be between
  // the sleepers increment and the cv wait — WakeDrainer covers that window). Lets tests
  // line a SubmitBurst up against a single drain pass.
  bool DrainerParked() const { return sleepers_.load(std::memory_order_seq_cst) != 0; }

 private:
  void DrainerLoop();
  // One pass over all rings; returns the number of SQEs executed.
  size_t DrainOnce();
  Cqe Execute(const Sqe& sqe);
  void PostCqe(OpRing& ring, const Cqe& cqe);
  void WakeDrainer();

  FsInterface& fs_;
  NvmPool& pool_;
  const OpRingConfig config_;
  RingPassHooks* hooks_;
  obs::PersistStats* persist_stats_;
  OpRingStats stats_;

  // Engine identity for the thread-local ring cache (never reused, so a new engine at a
  // recycled address cannot alias a dead engine's cached rings).
  const uint64_t engine_id_;

  std::mutex rings_mutex_;
  std::vector<std::unique_ptr<OpRing>> rings_;  // Capacity fixed at max_rings.
  std::atomic<size_t> published_rings_{0};

  std::thread drainer_;
  std::atomic<bool> stop_{false};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::atomic<uint32_t> sleepers_{0};
};

}  // namespace trio

#endif  // SRC_LIBFS_OP_RING_H_
