// ArckFs namespace operations: path resolution, directory core-state mutation
// (create/remove/rename entries with their crash-consistent persist protocols), and the
// path-based FsInterface entry points.

#include <utility>

#include "src/libfs/arckfs.h"
#include "src/libfs/arckfs_internal.h"
#include "src/obs/op_context.h"
#include "src/obs/persist_span.h"

namespace trio {

using arckfs_internal::AllocZeroedPage;
using arckfs_internal::FakeTimeNs;

// ---------------------------------------------------------------------------
// Path resolution
// ---------------------------------------------------------------------------

Result<ArckFs::NodePtr> ArckFs::ResolveDir(const std::vector<std::string>& components) {
  NodePtr node = FindNode(kRootIno);
  for (const std::string& component : components) {
    TRIO_RETURN_IF_ERROR(LockForOp(node.get(), 1));
    DirSlot slot;
    const bool found =
        node->dir_index != nullptr && node->dir_index->Lookup(component, &slot);
    UnlockOp(node.get());
    if (!found) {
      return NotFound(component);
    }
    if (!slot.is_dir) {
      return NotDir(component);
    }
    node = GetOrCreateNode(slot.ino, node->ino, /*is_dir=*/true, SlotPointer(slot));
  }
  if (!node->is_dir) {
    return NotDir("path component is a file");
  }
  return node;
}

DirentBlock* ArckFs::SlotPointer(const DirSlot& slot) {
  auto* page = reinterpret_cast<DirDataPage*>(pool_.PageAddress(slot.page));
  return &page->slots[slot.slot];
}

Result<DirSlot> ArckFs::FindEntry(FileNode* dir, std::string_view name) {
  stats_.lookups.fetch_add(1, std::memory_order_relaxed);
  DirSlot slot;
  if (dir->dir_index == nullptr || !dir->dir_index->Lookup(name, &slot)) {
    return NotFound(std::string(name));
  }
  return slot;
}

// ---------------------------------------------------------------------------
// Directory core-state mutation
// ---------------------------------------------------------------------------

Status ArckFs::AppendDirDataPage(FileNode* dir) {
  std::lock_guard<SpinLock> guard(dir->tails_lock);
  obs::PersistSpan span(pool_, &persist_stats_);
  TRIO_ASSIGN_OR_RETURN(PageNumber data_page,
                        AllocZeroedPage(leases_, pool_, &persist_stats_, 0));
  if (dir->dir_index_pages.empty()) {
    TRIO_ASSIGN_OR_RETURN(PageNumber index_page,
                          AllocZeroedPage(leases_, pool_, &persist_stats_, 0));
    span.CommitStore64(&dir->dirent->first_index_page, index_page);
    dir->dir_index_pages.push_back(index_page);
    dir->dir_next_entry = 0;
  }
  if (dir->dir_next_entry == kIndexEntriesPerPage) {
    TRIO_ASSIGN_OR_RETURN(PageNumber index_page,
                          AllocZeroedPage(leases_, pool_, &persist_stats_, 0));
    auto* last = reinterpret_cast<IndexPage*>(pool_.PageAddress(dir->dir_index_pages.back()));
    span.CommitStore64(&last->next, index_page);
    dir->dir_index_pages.push_back(index_page);
    dir->dir_next_entry = 0;
  }
  auto* last = reinterpret_cast<IndexPage*>(pool_.PageAddress(dir->dir_index_pages.back()));
  span.CommitStore64(&last->entries[dir->dir_next_entry], data_page);
  dir->dir_next_entry++;
  auto tail = std::make_unique<FileNode::DirTail>();
  tail->page = data_page;
  const size_t index = dir->dir_tails.size();
  dir->dir_tail_index[data_page] = index;
  dir->dir_tails.push_back(std::move(tail));
  // The fresh page is non-full: make sure creates can see it.
  size_t hint = dir->dir_first_nonfull.load(std::memory_order_relaxed);
  while (hint > index &&
         !dir->dir_first_nonfull.compare_exchange_weak(hint, index,
                                                       std::memory_order_relaxed)) {
  }
  return OkStatus();
}

Result<DirSlot> ArckFs::CreateEntry(FileNode* dir, std::string_view name, uint32_t mode,
                                    bool exclusive) {
  if (!ValidFileName(name)) {
    return name.size() >= kMaxNameLen ? NameTooLong(std::string(name))
                                      : InvalidArgument("bad file name");
  }
  DirSlot existing;
  if (dir->dir_index->Lookup(name, &existing)) {
    return AlreadyExists(std::string(name));
  }
  TRIO_ASSIGN_OR_RETURN(Ino ino, leases_.AllocIno());

  for (int rounds = 0; rounds < 64; ++rounds) {
    // Multiple logging tails (§4.2): threads start at different tails, so concurrent
    // creates in one directory rarely contend on the same page lock.
    size_t tails;
    {
      std::lock_guard<SpinLock> guard(dir->tails_lock);
      tails = dir->dir_tails.size();
    }
    const size_t start = dir->dir_first_nonfull.load(std::memory_order_acquire);
    bool prefix_full = true;
    for (size_t i = start; i < tails; ++i) {
      FileNode::DirTail* tail;
      {
        std::lock_guard<SpinLock> guard(dir->tails_lock);
        tail = dir->dir_tails[i].get();
      }
      if (tail->full.load(std::memory_order_relaxed)) {
        if (prefix_full) {
          // Every tail up to i is full: advance the scan start for future creates.
          size_t hint = dir->dir_first_nonfull.load(std::memory_order_relaxed);
          while (hint <= i &&
                 !dir->dir_first_nonfull.compare_exchange_weak(
                     hint, i + 1, std::memory_order_relaxed)) {
          }
        }
        continue;
      }
      prefix_full = false;
      std::lock_guard<SpinLock> page_guard(tail->lock);
      auto* page = reinterpret_cast<DirDataPage*>(pool_.PageAddress(tail->page));
      for (uint32_t s = 0; s < kDirentsPerPage; ++s) {
        DirentBlock* d = &page->slots[s];
        if (!d->IsFree()) {
          continue;
        }
        // Crash-consistent create (§4.4): persist every field with ino still 0, then
        // commit the inode number with one atomic durable store.
        DirentBlock block{};
        block.first_index_page = 0;
        block.size = 0;
        block.mode = mode;
        block.uid = config_.uid;
        block.gid = config_.gid;
        block.nlink = 1;
        block.mtime_ns = FakeTimeNs();
        block.ctime_ns = block.mtime_ns;
        block.SetName(name);
        pool_.Write(reinterpret_cast<char*>(d) + sizeof(uint64_t),
                    reinterpret_cast<const char*>(&block) + sizeof(uint64_t),
                    sizeof(DirentBlock) - sizeof(uint64_t));
        obs::PersistSpan span(pool_, &persist_stats_);
        span.Persist(d, sizeof(DirentBlock));
        span.Fence();
        span.CommitStore64(&d->ino, ino);

        DirSlot slot{tail->page, s, ino, (mode & kModeTypeMask) == kModeDirectory};
        if (!dir->dir_index->Insert(name, slot)) {
          // Lost a same-name race after the initial check: undo.
          span.CommitStore64(&d->ino, kInvalidIno);
          leases_.RecycleIno(ino);
          return AlreadyExists(std::string(name));
        }
        stats_.creates.fetch_add(1, std::memory_order_relaxed);
        return slot;
      }
      // Every slot in this page is live: drop it from the active tails until an unlink
      // frees a slot (keeps create O(1) in directory size).
      tail->full.store(true, std::memory_order_relaxed);
    }
    TRIO_RETURN_IF_ERROR(AppendDirDataPage(dir));
  }
  leases_.RecycleIno(ino);
  return NoSpace("could not claim a directory slot");
}

Status ArckFs::RemoveEntry(FileNode* dir, std::string_view name, bool must_be_dir,
                           bool must_be_file) {
  TRIO_ASSIGN_OR_RETURN(DirSlot slot, FindEntry(dir, name));
  DirentBlock* d = SlotPointer(slot);
  if (must_be_dir && !slot.is_dir) {
    return NotDir(std::string(name));
  }
  if (must_be_file && slot.is_dir) {
    return IsDir(std::string(name));
  }
  const PageNumber first_index_page = d->first_index_page;

  if (slot.is_dir) {
    // rmdir requires an empty directory. Count live entries through our own mapping of the
    // child (a well-behaved LibFS never dereferences unmapped pages).
    NodePtr child = GetOrCreateNode(slot.ino, dir->ino, /*is_dir=*/true, d);
    TRIO_RETURN_IF_ERROR(LockForOp(child.get(), 1));
    const size_t live = child->dir_index != nullptr ? child->dir_index->Size() : 0;
    UnlockOp(child.get());
    if (live != 0) {
      return NotEmpty(std::string(name));
    }
    // Release our mapping before deletion: I3 rejects removed directories that are still
    // mapped anywhere.
    RevokeNode(slot.ino);
  }

  // Tombstone: one atomic durable store (§4.4).
  obs::PersistSpan(pool_, &persist_stats_).CommitStore64(&d->ino, kInvalidIno);
  dir->dir_index->Erase(name);
  stats_.unlinks.fetch_add(1, std::memory_order_relaxed);
  // The slot's page has space again: reactivate its logging tail (O(1) via the page
  // index) and let creates scan from it.
  {
    std::lock_guard<SpinLock> guard(dir->tails_lock);
    auto it = dir->dir_tail_index.find(slot.page);
    if (it != dir->dir_tail_index.end()) {
      dir->dir_tails[it->second]->full.store(false, std::memory_order_relaxed);
      size_t hint = dir->dir_first_nonfull.load(std::memory_order_relaxed);
      while (hint > it->second &&
             !dir->dir_first_nonfull.compare_exchange_weak(hint, it->second,
                                                           std::memory_order_relaxed)) {
      }
    }
  }

  // If this file was created by us and never reconciled, its resources are still leased to
  // us: recycle them locally instead of waiting for kernel reclamation.
  const InoState state = kernel_.StateOfIno(slot.ino);
  if (state.state == ResourceState::kLeased && state.lessee == libfs_) {
    std::vector<PageNumber> pages;
    (void)ForEachIndexPage(pool_, first_index_page, [&](PageNumber p) -> Status {
      pages.push_back(p);
      return OkStatus();
    });
    (void)ForEachDataPage(pool_, first_index_page, [&](uint64_t, PageNumber p) -> Status {
      pages.push_back(p);
      return OkStatus();
    });
    for (PageNumber p : pages) {
      leases_.RecyclePage(p);
    }
    leases_.RecycleIno(slot.ino);
  }
  DropNode(slot.ino);
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Path-based FsInterface operations
// ---------------------------------------------------------------------------

Result<ArckFs::NodePtr> ArckFs::OpenNodeByPath(const std::string& path, bool write) {
  TRIO_ASSIGN_OR_RETURN(SplitParent parts, SplitParentPath(path));
  TRIO_ASSIGN_OR_RETURN(NodePtr parent, ResolveDir(parts.parent));
  TRIO_RETURN_IF_ERROR(LockForOp(parent.get(), 1));
  Result<DirSlot> slot = FindEntry(parent.get(), parts.leaf);
  UnlockOp(parent.get());
  if (!slot.ok()) {
    return slot.status();
  }
  NodePtr node =
      GetOrCreateNode(slot->ino, parent->ino, slot->is_dir, SlotPointer(*slot));
  TRIO_RETURN_IF_ERROR(EnsureMapped(node.get(), write));
  return node;
}

Result<Fd> ArckFs::Open(const std::string& path, OpenFlags flags, uint32_t mode) {
  obs::OpScope op("Open");
  TRIO_ASSIGN_OR_RETURN(SplitParent parts, SplitParentPath(path));
  TRIO_ASSIGN_OR_RETURN(NodePtr parent, ResolveDir(parts.parent));

  const int parent_level = flags.create ? 2 : 1;
  TRIO_RETURN_IF_ERROR(LockForOp(parent.get(), parent_level));
  Result<DirSlot> found = FindEntry(parent.get(), parts.leaf);

  NodePtr node;
  bool created = false;
  if (found.ok()) {
    UnlockOp(parent.get());
    if (flags.create && flags.exclusive) {
      return AlreadyExists(parts.leaf);
    }
    if (found->is_dir && (flags.write || flags.truncate)) {
      return IsDir(parts.leaf);
    }
    node = GetOrCreateNode(found->ino, parent->ino, found->is_dir, SlotPointer(*found));
    TRIO_RETURN_IF_ERROR(EnsureMapped(node.get(), flags.write));
  } else if (found.status().Is(ErrorCode::kNotFound) && flags.create) {
    Result<DirSlot> slot =
        CreateEntry(parent.get(), parts.leaf, kModeRegular | (mode & kModePermMask),
                    flags.exclusive);
    UnlockOp(parent.get());
    if (!slot.ok()) {
      return slot.status();
    }
    node = GetOrCreateNode(slot->ino, parent->ino, /*is_dir=*/false, SlotPointer(*slot));
    // A freshly created file is implicitly write-held by its creator: its pages are our
    // leases and the kernel learns of it when the parent directory is next verified.
    node->locally_created = true;
    node->map_state.store(2, std::memory_order_release);
    created = true;
  } else {
    UnlockOp(parent.get());
    return found.status();
  }

  if (flags.truncate && !created) {
    TRIO_RETURN_IF_ERROR(LockForOp(node.get(), 2));
    Status truncated = TruncateLocked(node.get(), 0);
    UnlockOp(node.get());
    TRIO_RETURN_IF_ERROR(truncated);
  }
  // Initial cursor only; O_APPEND writes re-derive the offset under the inode lock.
  const uint64_t offset = flags.append ? pool_.Load64(&node->dirent->size) : 0;
  return fds_.Alloc(node, flags.write, flags.append, offset);
}

Status ArckFs::Mkdir(const std::string& path, uint32_t mode) {
  obs::OpScope op("Mkdir");
  TRIO_ASSIGN_OR_RETURN(SplitParent parts, SplitParentPath(path));
  TRIO_ASSIGN_OR_RETURN(NodePtr parent, ResolveDir(parts.parent));
  TRIO_RETURN_IF_ERROR(LockForOp(parent.get(), 2));
  Result<DirSlot> slot = CreateEntry(parent.get(), parts.leaf,
                                     kModeDirectory | (mode & kModePermMask),
                                     /*exclusive=*/true);
  UnlockOp(parent.get());
  if (!slot.ok()) {
    return slot.status();
  }
  NodePtr node = GetOrCreateNode(slot->ino, parent->ino, /*is_dir=*/true, SlotPointer(*slot));
  node->locally_created = true;
  node->map_state.store(2, std::memory_order_release);
  node->dir_index = std::make_unique<DirIndex>();  // Empty directory aux.
  return OkStatus();
}

Status ArckFs::Rmdir(const std::string& path) {
  obs::OpScope op("Rmdir");
  TRIO_ASSIGN_OR_RETURN(SplitParent parts, SplitParentPath(path));
  TRIO_ASSIGN_OR_RETURN(NodePtr parent, ResolveDir(parts.parent));
  TRIO_RETURN_IF_ERROR(LockForOp(parent.get(), 2));
  Status status = RemoveEntry(parent.get(), parts.leaf, /*must_be_dir=*/true,
                              /*must_be_file=*/false);
  UnlockOp(parent.get());
  return status;
}

Status ArckFs::Unlink(const std::string& path) {
  obs::OpScope op("Unlink");
  TRIO_ASSIGN_OR_RETURN(SplitParent parts, SplitParentPath(path));
  TRIO_ASSIGN_OR_RETURN(NodePtr parent, ResolveDir(parts.parent));
  TRIO_RETURN_IF_ERROR(LockForOp(parent.get(), 2));
  Status status = RemoveEntry(parent.get(), parts.leaf, /*must_be_dir=*/false,
                              /*must_be_file=*/true);
  UnlockOp(parent.get());
  return status;
}

Status ArckFs::Rename(const std::string& from, const std::string& to) {
  obs::OpScope op("Rename");
  std::lock_guard<std::mutex> rename_guard(rename_mutex_);
  TRIO_ASSIGN_OR_RETURN(SplitParent src_parts, SplitParentPath(from));
  TRIO_ASSIGN_OR_RETURN(SplitParent dst_parts, SplitParentPath(to));
  TRIO_ASSIGN_OR_RETURN(NodePtr src_dir, ResolveDir(src_parts.parent));
  TRIO_ASSIGN_OR_RETURN(NodePtr dst_dir, ResolveDir(dst_parts.parent));
  const bool same_dir = src_dir->ino == dst_dir->ino;

  // Lock the two directories in canonical ino order — the LibFS-level mirror of the
  // kernel's ordered two-phase cross-shard acquire. Locking src-then-dst deadlocks with
  // a concurrent opposite-direction rename: each side holds one directory's op lock
  // while EnsureMapped on the other issues a revoke that blocks draining that very
  // lock. The cycle only broke at the lease deadline, and the resulting ForceRelease
  // left both sides scribbling on directories the kernel had already re-granted.
  FileNode* lock_first = src_dir.get();
  FileNode* lock_second = same_dir ? nullptr : dst_dir.get();
  if (lock_second != nullptr && lock_second->ino < lock_first->ino) {
    std::swap(lock_first, lock_second);
  }
  TRIO_RETURN_IF_ERROR(LockForOp(lock_first, 2));
  if (lock_second != nullptr) {
    Status locked = LockForOp(lock_second, 2);
    if (!locked.ok()) {
      UnlockOp(lock_first);
      return locked;
    }
  }
  auto unlock_all = [&] {
    if (lock_second != nullptr) {
      UnlockOp(lock_second);
    }
    UnlockOp(lock_first);
  };

  Result<DirSlot> src_slot = FindEntry(src_dir.get(), src_parts.leaf);
  if (!src_slot.ok()) {
    unlock_all();
    return src_slot.status();
  }
  DirentBlock* src = SlotPointer(*src_slot);

  // Cross-directory rename of a non-empty directory cannot pass I3 (§4.3); reject it
  // up front — a documented ArckFS divergence from POSIX.
  if (src_slot->is_dir && !same_dir) {
    Result<uint64_t> live = CountDirents(pool_, src->first_index_page);
    if (!live.ok() || *live != 0) {
      unlock_all();
      return NotSupported("cross-directory rename of a non-empty directory");
    }
  }

  Result<DirSlot> dst_slot = FindEntry(dst_dir.get(), dst_parts.leaf);
  const bool overwrite = dst_slot.ok();
  if (overwrite) {
    if (dst_slot->is_dir != src_slot->is_dir) {
      unlock_all();
      return dst_slot->is_dir ? IsDir(dst_parts.leaf) : NotDir(dst_parts.leaf);
    }
    if (dst_slot->is_dir) {
      DirentBlock* dst = SlotPointer(*dst_slot);
      Result<uint64_t> live = CountDirents(pool_, dst->first_index_page);
      if (!live.ok() || *live != 0) {
        unlock_all();
        return NotEmpty(dst_parts.leaf);
      }
    }
  }

  UndoJournal& journal = JournalShard();
  Status status = OkStatus();
  Ino replaced_ino = kInvalidIno;
  PageNumber replaced_chain = 0;

  if (overwrite) {
    DirentBlock* dst = SlotPointer(*dst_slot);
    replaced_ino = dst->ino;
    replaced_chain = dst->first_index_page;
    const Ino moving_ino = src->ino;
    std::lock_guard<SpinLock> journal_guard(journal.lock());
    journal.Begin();
    status = journal.LogPreImage(src, sizeof(DirentBlock));
    if (status.ok()) {
      status = journal.LogPreImage(dst, sizeof(DirentBlock));
    }
    if (status.ok()) {
      journal.Activate();
      DirentBlock moved = *src;
      moved.SetName(dst_parts.leaf);
      // Replace = unpublish, rewrite the body, republish (§4.4): the ino is the atomic
      // publish field, so a concurrent kernel scan sees the old dirent, a free slot, or
      // the fully-written new one — never a blend of the two. Both pre-images are
      // journaled, so any crash window rolls back.
      obs::PersistSpan span(pool_, &persist_stats_);
      span.CommitStore64(&dst->ino, kInvalidIno);
      pool_.Write(reinterpret_cast<char*>(dst) + sizeof(uint64_t),
                  reinterpret_cast<const char*>(&moved) + sizeof(uint64_t),
                  sizeof(DirentBlock) - sizeof(uint64_t));
      span.Persist(dst, sizeof(DirentBlock));
      span.Fence();
      span.CommitStore64(&dst->ino, moved.ino);
      span.CommitStore64(&src->ino, kInvalidIno);
      journal.Deactivate();
    }
    if (status.ok()) {
      dst_dir->dir_index->Erase(dst_parts.leaf);
      dst_dir->dir_index->Insert(
          dst_parts.leaf,
          DirSlot{dst_slot->page, dst_slot->slot, moving_ino, src_slot->is_dir});
    }
  } else {
    // Claim a fresh slot in the destination directory under its tail lock, with both the
    // old and new slots journaled, then tombstone the source.
    bool placed = false;
    for (int rounds = 0; rounds < 64 && !placed && status.ok(); ++rounds) {
      size_t tails;
      {
        std::lock_guard<SpinLock> guard(dst_dir->tails_lock);
        tails = dst_dir->dir_tails.size();
      }
      for (size_t i = 0; i < tails && !placed; ++i) {
        FileNode::DirTail* tail;
        {
          std::lock_guard<SpinLock> guard(dst_dir->tails_lock);
          tail = dst_dir->dir_tails[i].get();
        }
        if (tail->full.load(std::memory_order_relaxed)) {
          continue;
        }
        std::lock_guard<SpinLock> page_guard(tail->lock);
        auto* page = reinterpret_cast<DirDataPage*>(pool_.PageAddress(tail->page));
        for (uint32_t s = 0; s < kDirentsPerPage && !placed; ++s) {
          DirentBlock* dst = &page->slots[s];
          if (!dst->IsFree()) {
            continue;
          }
          std::lock_guard<SpinLock> journal_guard(journal.lock());
          journal.Begin();
          status = journal.LogPreImage(src, sizeof(DirentBlock));
          if (status.ok()) {
            status = journal.LogPreImage(dst, sizeof(DirentBlock));
          }
          if (!status.ok()) {
            break;
          }
          journal.Activate();
          DirentBlock moved = *src;
          moved.SetName(dst_parts.leaf);
          // Same publish protocol as create (§4.4): persist every field with the slot
          // still free, then commit the ino with one atomic durable store. A kernel
          // verifier scanning this page mid-rename either skips the free slot or sees
          // the whole dirent, and the publish is durable before the source tombstone.
          pool_.Write(reinterpret_cast<char*>(dst) + sizeof(uint64_t),
                      reinterpret_cast<const char*>(&moved) + sizeof(uint64_t),
                      sizeof(DirentBlock) - sizeof(uint64_t));
          obs::PersistSpan span(pool_, &persist_stats_);
          span.Persist(dst, sizeof(DirentBlock));
          span.Fence();
          span.CommitStore64(&dst->ino, moved.ino);
          span.CommitStore64(&src->ino, kInvalidIno);
          journal.Deactivate();
          dst_dir->dir_index->Insert(dst_parts.leaf,
                                     DirSlot{tail->page, s, moved.ino, src_slot->is_dir});
          placed = true;
        }
        if (!placed) {
          tail->full.store(true, std::memory_order_relaxed);
        }
      }
      if (!placed && status.ok()) {
        status = AppendDirDataPage(dst_dir.get());
      }
    }
    if (!placed && status.ok()) {
      status = NoSpace("no slot for rename target");
    }
  }

  if (status.ok()) {
    src_dir->dir_index->Erase(src_parts.leaf);
    // Fix up the moved file's cached node: its dirent moved.
    NodePtr moved_node = FindNode(src_slot->ino);
    if (moved_node != nullptr) {
      DirSlot now;
      if (dst_dir->dir_index->Lookup(dst_parts.leaf, &now)) {
        moved_node->dirent = SlotPointer(now);
        moved_node->parent = dst_dir->ino;
      }
    }
    // The replaced file is gone; recycle if it was still only leased to us.
    if (replaced_ino != kInvalidIno) {
      const InoState state = kernel_.StateOfIno(replaced_ino);
      if (state.state == ResourceState::kLeased && state.lessee == libfs_) {
        (void)ForEachIndexPage(pool_, replaced_chain, [&](PageNumber p) -> Status {
          leases_.RecyclePage(p);
          return OkStatus();
        });
        (void)ForEachDataPage(pool_, replaced_chain,
                              [&](uint64_t, PageNumber p) -> Status {
                                leases_.RecyclePage(p);
                                return OkStatus();
                              });
        leases_.RecycleIno(replaced_ino);
      }
      DropNode(replaced_ino);
    }
  }
  unlock_all();
  return status;
}

Result<StatInfo> ArckFs::Stat(const std::string& path) {
  obs::OpScope op("Stat");
  TRIO_ASSIGN_OR_RETURN(std::vector<std::string> components, SplitPath(path));
  if (components.empty()) {
    const DirentBlock& root = SuperblockOf(pool_)->root;
    StatInfo info{root.ino, root.mode, root.uid, root.gid,
                  root.size, root.mtime_ns, root.ctime_ns};
    return info;
  }
  SplitParent parts;
  parts.leaf = std::move(components.back());
  components.pop_back();
  parts.parent = std::move(components);

  TRIO_ASSIGN_OR_RETURN(NodePtr parent, ResolveDir(parts.parent));
  TRIO_RETURN_IF_ERROR(LockForOp(parent.get(), 1));
  Result<DirSlot> slot = FindEntry(parent.get(), parts.leaf);
  Status failed = slot.ok() ? OkStatus() : slot.status();
  StatInfo info;
  if (slot.ok()) {
    const DirentBlock* d = SlotPointer(*slot);
    info = StatInfo{d->ino, d->mode, d->uid, d->gid, d->size, d->mtime_ns, d->ctime_ns};
  }
  UnlockOp(parent.get());
  if (!failed.ok()) {
    return failed;
  }
  return info;
}

Result<std::vector<DirEntryInfo>> ArckFs::ReadDir(const std::string& path) {
  obs::OpScope op("ReadDir");
  TRIO_ASSIGN_OR_RETURN(std::vector<std::string> components, SplitPath(path));
  TRIO_ASSIGN_OR_RETURN(NodePtr node, ResolveDir(components));
  TRIO_RETURN_IF_ERROR(LockForOp(node.get(), 1));
  std::vector<DirEntryInfo> entries;
  node->dir_index->ForEach([&](const std::string& name, const DirSlot& slot) {
    entries.push_back(DirEntryInfo{name, slot.ino, slot.is_dir});
  });
  UnlockOp(node.get());
  return entries;
}

Status ArckFs::Chmod(const std::string& path, uint32_t perm) {
  obs::OpScope op("Chmod");
  TRIO_ASSIGN_OR_RETURN(SplitParent parts, SplitParentPath(path));
  TRIO_ASSIGN_OR_RETURN(NodePtr parent, ResolveDir(parts.parent));
  TRIO_RETURN_IF_ERROR(LockForOp(parent.get(), 1));
  Result<DirSlot> slot = FindEntry(parent.get(), parts.leaf);
  UnlockOp(parent.get());
  if (!slot.ok()) {
    return slot.status();
  }
  // Permission changes go through the kernel controller: the shadow inode is the ground
  // truth the verifier trusts (I4, §4.3).
  TRIO_RETURN_IF_ERROR(EnsureReconciled(slot->ino));
  return kernel_.Chmod(libfs_, slot->ino, perm);
}

Status ArckFs::ReleaseFile(const std::string& path) {
  obs::OpScope op("ReleaseFile");
  TRIO_ASSIGN_OR_RETURN(std::vector<std::string> components, SplitPath(path));
  if (components.empty()) {
    RevokeNode(kRootIno);
    return OkStatus();
  }
  SplitParent parts;
  parts.leaf = std::move(components.back());
  components.pop_back();
  parts.parent = std::move(components);
  TRIO_ASSIGN_OR_RETURN(NodePtr parent, ResolveDir(parts.parent));
  TRIO_RETURN_IF_ERROR(LockForOp(parent.get(), 1));
  Result<DirSlot> slot = FindEntry(parent.get(), parts.leaf);
  UnlockOp(parent.get());
  if (!slot.ok()) {
    return slot.status();
  }
  RevokeNode(slot->ino);
  return OkStatus();
}

Status ArckFs::Commit(const std::string& path) {
  obs::OpScope op("Commit");
  TRIO_ASSIGN_OR_RETURN(std::vector<std::string> components, SplitPath(path));
  Ino ino = kRootIno;
  if (!components.empty()) {
    SplitParent parts;
    parts.leaf = std::move(components.back());
    components.pop_back();
    parts.parent = std::move(components);
    TRIO_ASSIGN_OR_RETURN(NodePtr parent, ResolveDir(parts.parent));
    TRIO_RETURN_IF_ERROR(LockForOp(parent.get(), 1));
    Result<DirSlot> slot = FindEntry(parent.get(), parts.leaf);
    UnlockOp(parent.get());
    if (!slot.ok()) {
      return slot.status();
    }
    ino = slot->ino;
  }
  TRIO_RETURN_IF_ERROR(EnsureReconciled(ino));
  return kernel_.CommitFile(libfs_, ino);
}

Status ArckFs::EnsureReconciled(Ino ino) {
  NodePtr node = FindNode(ino);
  if (node != nullptr && node->locally_created) {
    // Committing the parent directory verifies it and registers our fresh children with
    // the kernel (we remain their writer).
    TRIO_RETURN_IF_ERROR(kernel_.CommitFile(libfs_, node->parent));
    node->locally_created = false;
  }
  return OkStatus();
}

}  // namespace trio
