#include "src/libfs/fs_interface.h"

namespace trio {

Result<std::vector<std::string>> SplitPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return InvalidArgument("paths must be absolute");
  }
  std::vector<std::string> components;
  size_t start = 1;
  while (start <= path.size()) {
    size_t end = path.find('/', start);
    if (end == std::string::npos) {
      end = path.size();
    }
    if (end > start) {
      std::string component = path.substr(start, end - start);
      if (component == ".") {
        // Skip.
      } else if (component == "..") {
        if (components.empty()) {
          return InvalidArgument("path escapes root");
        }
        components.pop_back();
      } else if (!ValidFileName(component)) {
        return component.size() >= kMaxNameLen ? NameTooLong(component)
                                               : InvalidArgument("bad path component");
      } else {
        components.push_back(std::move(component));
      }
    }
    start = end + 1;
  }
  return components;
}

Result<SplitParent> SplitParentPath(const std::string& path) {
  TRIO_ASSIGN_OR_RETURN(std::vector<std::string> components, SplitPath(path));
  if (components.empty()) {
    return InvalidArgument("path refers to the root");
  }
  SplitParent out;
  out.leaf = std::move(components.back());
  components.pop_back();
  out.parent = std::move(components);
  return out;
}

}  // namespace trio
