// Per-CPU undo journal (§4.4): "A few complex operations, such as rename, require
// journaling. ArckFS uses undo logs for simplicity." Each shard owns one leased NVM page.
// Protocol: Begin -> LogPreImage* -> Activate (persist barrier) -> mutate core state ->
// Deactivate. Crash with an active journal means the mutation may be torn; the LibFS's
// recovery program (§4.4) calls Recover to copy the pre-images back.
//
// All journal persistence goes through obs::PersistSpan; the optional PersistStats passed
// at construction attributes the journal's fences to the owning layer ("libfs").

#ifndef SRC_LIBFS_JOURNAL_H_
#define SRC_LIBFS_JOURNAL_H_

#include <cstdint>
#include <vector>

#include "src/common/spinlock.h"
#include "src/common/status.h"
#include "src/nvm/nvm.h"
#include "src/obs/persist_span.h"

namespace trio {

class UndoJournal {
 public:
  // `page` is an NVM page leased to this LibFS. One UndoJournal per CPU shard. `stats`
  // (not owned, may be null) receives the persistence accounting.
  UndoJournal(NvmPool& pool, PageNumber page, obs::PersistStats* stats = nullptr)
      : pool_(pool), page_(page), stats_(stats) {
    auto* header = Header();
    pool_.Store64(&header->active, 0);
    pool_.Store64(&header->used, sizeof(JournalHeader));
    obs::PersistSpan(pool_, stats_).PersistNow(header, sizeof(JournalHeader));
  }

  PageNumber page() const { return page_; }
  SpinLock& lock() { return lock_; }

  // Must be called with lock() held. Resets the record area.
  void Begin() {
    auto* header = Header();
    pool_.Store64(&header->used, sizeof(JournalHeader));
  }

  // Copies len bytes at `nvm_addr` (pool address) into the journal as an undo record.
  // The records are made durable by Activate()'s barrier, not here.
  Status LogPreImage(const void* nvm_addr, uint32_t len) {
    auto* header = Header();
    const uint64_t used = pool_.Load64(&header->used);
    const uint64_t need = sizeof(Record) + len;
    if (used + need > kPageSize) {
      return NoSpace("journal page full");
    }
    char* base = pool_.PageAddress(page_);
    auto* record = reinterpret_cast<Record*>(base + used);
    Record r;
    r.pool_offset = static_cast<const char*>(nvm_addr) - pool_.base();
    r.len = len;
    r.reserved = 0;
    pool_.Write(record, &r, sizeof(Record));
    pool_.Write(base + used + sizeof(Record), nvm_addr, len);
    obs::PersistSpan span(pool_, stats_);
    span.Persist(base + used, need);
    pool_.Store64(&header->used, used + need);
    span.Persist(&header->used, sizeof(header->used));
    span.Disarm();  // Activate() supplies the ordering fence for all records at once.
    return OkStatus();
  }

  // Persist barrier, then mark the journal active. After this returns, a crash replays.
  void Activate() {
    obs::PersistSpan span(pool_, stats_);
    span.ForceFence();  // Commit every record LogPreImage left pending.
    auto* header = Header();
    span.CommitStore64(&header->active, 1);
  }

  // The guarded mutation is fully persisted; discard the undo records.
  void Deactivate() {
    auto* header = Header();
    obs::PersistSpan(pool_, stats_).CommitStore64(&header->active, 0);
  }

  // Recovery program body: undo a torn mutation, if any. Returns true if it replayed.
  bool Recover() { return RecoverPage(pool_, page_, stats_); }

  // Static form: replay a journal page from a previous incarnation without resetting it
  // first (the constructor resets; recovery must not).
  static bool RecoverPage(NvmPool& pool, PageNumber page,
                          obs::PersistStats* stats = nullptr) {
    char* base = pool.PageAddress(page);
    auto* header = reinterpret_cast<JournalHeader*>(base);
    if (pool.Load64(&header->active) == 0) {
      return false;
    }
    const uint64_t used = pool.Load64(&header->used);
    uint64_t cursor = sizeof(JournalHeader);
    obs::PersistSpan span(pool, stats);
    while (cursor + sizeof(Record) <= used && used <= kPageSize) {
      const auto* record = reinterpret_cast<const Record*>(base + cursor);
      if (cursor + sizeof(Record) + record->len > used) {
        break;  // Torn journal append: records beyond here never activated.
      }
      pool.Write(pool.base() + record->pool_offset, base + cursor + sizeof(Record),
                 record->len);
      span.Persist(pool.base() + record->pool_offset, record->len);
      cursor += sizeof(Record) + record->len;
    }
    span.Fence();
    span.CommitStore64(&header->active, 0);
    return true;
  }

 private:
  struct JournalHeader {
    uint64_t active;
    uint64_t used;  // Bytes of the page in use, including this header.
  };
  struct Record {
    uint64_t pool_offset;
    uint32_t len;
    uint32_t reserved;
  };

  JournalHeader* Header() {
    return reinterpret_cast<JournalHeader*>(pool_.PageAddress(page_));
  }

  NvmPool& pool_;
  PageNumber page_;
  obs::PersistStats* stats_;
  SpinLock lock_;
};

}  // namespace trio

#endif  // SRC_LIBFS_JOURNAL_H_
