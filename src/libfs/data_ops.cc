// ArckFs regular-file data path (write/read/truncate under the fine-grained lock
// protocol of §4.2, with optional delegation) and the fd-based FsInterface operations.

#include <algorithm>
#include <cstring>
#include <optional>

#include "src/libfs/arckfs.h"
#include "src/libfs/arckfs_internal.h"
#include "src/obs/op_context.h"
#include "src/obs/persist_span.h"

namespace trio {

using arckfs_internal::AllocZeroedPage;
using arckfs_internal::FakeTimeNs;

size_t ArckFs::ReadDelegateThreshold() const {
  if (config_.delegate_read_threshold != 0) {
    return config_.delegate_read_threshold;
  }
  const DelegationPool* delegation = kernel_.delegation();
  return delegation != nullptr ? delegation->config().read_threshold
                               : kDelegateReadThreshold;
}

size_t ArckFs::WriteDelegateThreshold() const {
  if (config_.delegate_write_threshold != 0) {
    return config_.delegate_write_threshold;
  }
  const DelegationPool* delegation = kernel_.delegation();
  return delegation != nullptr ? delegation->config().write_threshold
                               : kDelegateWriteThreshold;
}

void ArckFs::CopyToNvm(char* dst, const char* src, size_t len, DelegationBatch* batch,
                       bool persist, obs::PersistSpan* span) {
  if (batch != nullptr) {
    batch->AddWrite(dst, src, len, persist);
    return;
  }
  pool_.Write(dst, src, len);
  if (persist) {
    span->Persist(dst, len);
  }
}

void ArckFs::FlushDirtyData(FileNode* node) {
  std::unordered_set<PageNumber> dirty;
  {
    std::lock_guard<SpinLock> guard(node->dirty_lock);
    dirty.swap(node->dirty_pages);
  }
  if (dirty.empty()) {
    return;
  }
  obs::PersistSpan span(pool_, &persist_stats_);
  for (PageNumber page : dirty) {
    span.Persist(pool_.PageAddress(page), kPageSize);
  }
  span.Fence();
}

void ArckFs::CopyFromNvm(char* dst, const char* src, size_t len, DelegationBatch* batch) {
  if (batch != nullptr) {
    batch->AddRead(dst, src, len);
    return;
  }
  pool_.Read(dst, src, len);
}

Status ArckFs::EnsureIndexCapacity(FileNode* node, uint64_t max_page_index) {
  // Exclusive inode lock held. Extend the chain so entry slot `max_page_index` exists.
  while (node->index_pages.size() * kIndexEntriesPerPage <= max_page_index) {
    TRIO_ASSIGN_OR_RETURN(PageNumber index_page,
                          AllocZeroedPage(leases_, pool_, &persist_stats_, 0));
    obs::PersistSpan span(pool_, &persist_stats_);
    if (node->index_pages.empty()) {
      span.CommitStore64(&node->dirent->first_index_page, index_page);
    } else {
      auto* last = reinterpret_cast<IndexPage*>(pool_.PageAddress(node->index_pages.back()));
      span.CommitStore64(&last->next, index_page);
    }
    node->index_pages.push_back(index_page);
  }
  return OkStatus();
}

Result<PageNumber> ArckFs::AllocDataPage(FileNode* node, uint64_t page_index, bool zero) {
  PageNumber page = kInvalidPage;
  {
    std::lock_guard<SpinLock> guard(node->tails_lock);  // Reused as the reuse-pool lock.
    if (!node->reuse_pages.empty()) {
      page = node->reuse_pages.back();
      node->reuse_pages.pop_back();
      if (!zero) {
        // Recycled pages carry stale data; a full overwrite makes zeroing redundant, but a
        // partial write must start from zeros.
      }
      zero = true;  // Conservative: recycled content must never leak.
    }
  }
  if (page == kInvalidPage) {
    const int nodes = pool_.topology().num_nodes;
    TRIO_ASSIGN_OR_RETURN(page,
                          leases_.AllocPage(static_cast<int>(page_index % nodes)));
  }
  if (zero) {
    pool_.Set(pool_.PageAddress(page), 0, kPageSize);
    obs::PersistSpan span(pool_, &persist_stats_);
    span.Persist(pool_.PageAddress(page), kPageSize);
    span.Disarm();  // The caller's data fence commits the zeroing with the payload.
  }
  return page;
}

// ---------------------------------------------------------------------------
// Tier promote path (DESIGN.md §4.11)
// ---------------------------------------------------------------------------

Status ArckFs::ReadTierPage(FileNode* node, uint64_t page_index, uint64_t slot,
                            uint64_t in_page, char* dst, size_t len) {
  if (promote_cache_.ReadHit(node->ino, page_index, in_page, dst, len)) {
    return OkStatus();
  }
  // Miss: fault the whole page back into a leased NVM page through the kernel (the
  // backend is never mapped into userspace) and cache the copy for the next reader.
  const int numa_nodes = pool_.topology().num_nodes;
  TRIO_ASSIGN_OR_RETURN(PageNumber dest,
                        leases_.AllocPage(static_cast<int>(page_index % numa_nodes)));
  Status promoted = kernel_.PromoteRead(libfs_, node->ino, slot, dest);
  if (!promoted.ok()) {
    leases_.RecyclePage(dest);
    return promoted;
  }
  pool_.Read(dst, pool_.PageAddress(dest) + in_page, len);
  const PageNumber displaced = promote_cache_.Insert(node->ino, page_index, dest);
  if (displaced != 0) {
    leases_.RecyclePage(displaced);
  }
  return OkStatus();
}

Result<PageNumber> ArckFs::PromoteForWrite(FileNode* node, uint64_t page_index,
                                           uint64_t slot, bool fill) {
  const int numa_nodes = pool_.topology().num_nodes;
  TRIO_ASSIGN_OR_RETURN(PageNumber page,
                        leases_.AllocPage(static_cast<int>(page_index % numa_nodes)));
  if (fill) {
    // Partial overwrite: the surviving bytes live on the backend; PromoteRead persists
    // and fences the destination, so the later index-entry commit cannot become durable
    // ahead of the page contents.
    Status promoted = kernel_.PromoteRead(libfs_, node->ino, slot, page);
    if (!promoted.ok()) {
      leases_.RecyclePage(page);
      return promoted;
    }
  }
  // The cached read-only copy (if any) is now stale by construction.
  const PageNumber cached = promote_cache_.Erase(node->ino, page_index);
  if (cached != 0) {
    leases_.RecyclePage(cached);
  }
  return page;
}

bool ArckFs::RangeHasTierEntries(FileNode* node, uint64_t offset, size_t count) {
  const uint64_t first = offset / kPageSize;
  const uint64_t last = (offset + count - 1) / kPageSize;
  for (uint64_t index = first; index <= last; ++index) {
    if (IsTierEntry(node->radix.Lookup(index))) {
      return true;
    }
  }
  return false;
}

Status ArckFs::LinkDataPage(FileNode* node, uint64_t page_index, PageNumber page) {
  const size_t chain_slot = page_index / kIndexEntriesPerPage;
  TRIO_CHECK(chain_slot < node->index_pages.size()) << "index chain does not cover page";
  auto* index = reinterpret_cast<IndexPage*>(pool_.PageAddress(node->index_pages[chain_slot]));
  obs::PersistSpan(pool_, &persist_stats_)
      .CommitStore64(&index->entries[page_index % kIndexEntriesPerPage], page);
  node->radix.Insert(page_index, page);
  return OkStatus();
}

Result<size_t> ArckFs::WriteLocked(FileNode* node, const void* buf, size_t count,
                                   uint64_t offset, bool append, uint64_t* offset_used) {
  if (count == 0) {
    if (offset_used != nullptr) {
      *offset_used = offset;
    }
    return static_cast<size_t>(0);
  }
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  const char* src = static_cast<const char*>(buf);

  bool exclusive;
  uint64_t size;
  if (append) {
    // O_APPEND: the write offset is the size read UNDER the exclusive inode lock. Reading
    // it before locking loses concurrent appends (two writers see the same old size and
    // one overwrites the other).
    node->inode_lock.lock();
    exclusive = true;
    size = pool_.Load64(&node->dirent->size);
    offset = size;
  } else {
    while (true) {
      size = pool_.Load64(&node->dirent->size);
      // Tier entries convert to NVM pages only under the exclusive inode lock (two
      // shared-lock writers would race on the same index slot); see RangeHasTierEntries
      // for why the pre-lock check is stable.
      exclusive = offset + count > size || RangeHasTierEntries(node, offset, count);
      if (exclusive) {
        node->inode_lock.lock();
        // Size may have grown while we waited; the exclusive lock is still fine.
        size = pool_.Load64(&node->dirent->size);
      } else {
        node->inode_lock.lock_shared();
        const uint64_t now_size = pool_.Load64(&node->dirent->size);
        if (offset + count > now_size) {
          node->inode_lock.unlock_shared();
          continue;  // Raced with a truncate; retry on the exclusive path.
        }
      }
      break;
    }
  }
  if (offset_used != nullptr) {
    *offset_used = offset;
  }

  const bool extend = offset + count > size;
  // Fine-grained concurrency (§4.2): extension holds the inode lock exclusively; in-place
  // writers hold it shared plus a write range lock over the touched bytes.
  if (!exclusive) {
    node->range_lock.LockRange(offset, count, /*exclusive=*/true);
  }

  const bool delegate = config_.use_delegation && kernel_.delegation() != nullptr &&
                        count >= WriteDelegateThreshold();
  // All chunks of this write accumulate into one batch: one ring push and one fence per
  // touched node, instead of one of each per 4 KiB chunk. On the op-ring drainer the
  // batch is the pass-wide one (shared by every delegated write of the drain pass);
  // elsewhere it is a local per-op batch.
  DelegationBatch* pass_batch = delegate ? PassBatch() : nullptr;
  std::optional<DelegationBatch> local_batch;
  if (delegate && pass_batch == nullptr) {
    local_batch.emplace(*kernel_.delegation());
  }
  DelegationBatch* batch = pass_batch != nullptr
                               ? pass_batch
                               : (local_batch.has_value() ? &*local_batch : nullptr);

  obs::PersistSpan span(pool_, &persist_stats_);
  Status status = OkStatus();
  std::vector<std::pair<uint64_t, PageNumber>> to_link;
  if (extend) {
    status = EnsureIndexCapacity(node, (offset + count - 1) / kPageSize);
  }
  if (status.ok()) {
    uint64_t cursor = offset;
    const uint64_t end = offset + count;
    while (cursor < end) {
      const uint64_t page_index = cursor / kPageSize;
      const uint64_t in_page = cursor % kPageSize;
      const size_t chunk = std::min<uint64_t>(kPageSize - in_page, end - cursor);
      PageNumber page = node->radix.Lookup(page_index);
      if (page != 0 && IsTierEntry(page)) {
        // Writing a digested page: promote it back to NVM authority. The tagged entry
        // is replaced below via the normal to_link commit; the orphaned backend slot is
        // released when this write session reconciles.
        const bool full_page = in_page == 0 && chunk == kPageSize;
        Result<PageNumber> promoted =
            PromoteForWrite(node, page_index, TierSlotOfEntry(page), /*fill=*/!full_page);
        if (!promoted.ok()) {
          status = promoted.status();
          break;
        }
        page = *promoted;
        to_link.push_back({page_index, page});
        node->radix.Insert(page_index, page);
      } else if (page == 0) {
        const bool full_page = in_page == 0 && chunk == kPageSize;
        Result<PageNumber> fresh = AllocDataPage(node, page_index, /*zero=*/!full_page);
        if (!fresh.ok()) {
          status = fresh.status();
          break;
        }
        page = *fresh;
        to_link.push_back({page_index, page});
        // Make it visible to this op's later iterations (not yet linked in core state).
        node->radix.Insert(page_index, page);
      }
      CopyToNvm(pool_.PageAddress(page) + in_page, src + (cursor - offset), chunk,
                batch, config_.sync_data, &span);
      if (!config_.sync_data) {
        std::lock_guard<SpinLock> guard(node->dirty_lock);
        node->dirty_pages.insert(page);
      }
      cursor += chunk;
    }
  }

  // Data durable before any index entry or size commit (§4.4). The delegated path fences
  // once per touched node inside the batch; the direct path fences here. A pass-wide
  // batch is flushed only when this op commits metadata below — a pure in-place write
  // has no commit to order against, so its chunks ride until the pass-end flush (which
  // precedes the epoch close and therefore every CQE).
  if (pass_batch != nullptr) {
    if (extend || !to_link.empty()) {
      FlushPass();
    }
  } else if (delegate) {
    local_batch->Submit();
    local_batch->Wait();
  } else {
    span.Fence();
  }

  if (status.ok()) {
    for (const auto& [page_index, page] : to_link) {
      status = LinkDataPage(node, page_index, page);
      if (!status.ok()) {
        break;
      }
    }
  }
  if (status.ok() && extend) {
    span.CommitStore64(&node->dirent->size, offset + count);
    const int64_t now = FakeTimeNs();
    pool_.Write(&node->dirent->mtime_ns, &now, sizeof(now));
    span.PersistNow(&node->dirent->mtime_ns, sizeof(now));
  }

  if (!exclusive) {
    node->range_lock.UnlockRange(offset, count, true);
    node->inode_lock.unlock_shared();
  } else {
    node->inode_lock.unlock();
  }
  if (!status.ok()) {
    return status;
  }
  return count;
}

Result<size_t> ArckFs::ReadLocked(FileNode* node, void* buf, size_t count, uint64_t offset) {
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  char* dst = static_cast<char*>(buf);
  ReadGuard<BravoRwLock> inode_guard(node->inode_lock);
  const uint64_t size = pool_.Load64(&node->dirent->size);
  if (offset >= size) {
    return static_cast<size_t>(0);
  }
  count = std::min<uint64_t>(count, size - offset);
  RangeGuard range_guard(node->range_lock, offset, count, /*exclusive=*/false);

  const bool delegate = config_.use_delegation && kernel_.delegation() != nullptr &&
                        count >= ReadDelegateThreshold();
  std::optional<DelegationBatch> batch;
  if (delegate) {
    batch.emplace(*kernel_.delegation());
  }

  uint64_t cursor = offset;
  const uint64_t end = offset + count;
  while (cursor < end) {
    const uint64_t page_index = cursor / kPageSize;
    const uint64_t in_page = cursor % kPageSize;
    const size_t chunk = std::min<uint64_t>(kPageSize - in_page, end - cursor);
    const PageNumber page = node->radix.Lookup(page_index);
    if (page == 0) {
      std::memset(dst + (cursor - offset), 0, chunk);  // Hole.
    } else if (IsTierEntry(page)) {
      // Digested page: promote-cache hit or kernel promote; always copied inline (the
      // source is a DRAM-resident cache page or freshly promoted, not cold NVM).
      Status tier = ReadTierPage(node, page_index, TierSlotOfEntry(page), in_page,
                                 dst + (cursor - offset), chunk);
      if (!tier.ok()) {
        return tier;
      }
    } else {
      CopyFromNvm(dst + (cursor - offset), pool_.PageAddress(page) + in_page, chunk,
                  delegate ? &*batch : nullptr);
    }
    cursor += chunk;
  }
  if (delegate) {
    batch->Submit();
    batch->Wait();
  }
  return count;
}

Status ArckFs::TruncateLocked(FileNode* node, uint64_t new_size) {
  WriteGuard<BravoRwLock> inode_guard(node->inode_lock);
  const uint64_t old_size = pool_.Load64(&node->dirent->size);
  if (new_size == old_size) {
    return OkStatus();
  }
  obs::PersistSpan span(pool_, &persist_stats_);
  if (new_size > old_size) {
    // Growing: the index chain must cover the new size (I1), holes read as zeros.
    TRIO_RETURN_IF_ERROR(EnsureIndexCapacity(node, (new_size - 1) / kPageSize));
    span.CommitStore64(&node->dirent->size, new_size);
    return OkStatus();
  }
  // Shrinking: commit the size first; everything beyond is garbage we now scrub.
  span.CommitStore64(&node->dirent->size, new_size);
  // Zero the tail of the boundary page so a later size-only grow reads zeros.
  if (new_size % kPageSize != 0) {
    const uint64_t boundary_index = new_size / kPageSize;
    PageNumber boundary = node->radix.Lookup(boundary_index);
    if (boundary != 0 && IsTierEntry(boundary)) {
      // The boundary page is digested and its surviving bytes must be scrubbed in
      // place: promote it back to NVM (filled), link the copy, then zero the tail of
      // the copy. The orphaned slot is released at reconcile.
      TRIO_ASSIGN_OR_RETURN(
          PageNumber promoted,
          PromoteForWrite(node, boundary_index, TierSlotOfEntry(boundary), /*fill=*/true));
      TRIO_RETURN_IF_ERROR(LinkDataPage(node, boundary_index, promoted));
      boundary = promoted;
    }
    if (boundary != 0) {
      const uint64_t keep = new_size % kPageSize;
      pool_.Set(pool_.PageAddress(boundary) + keep, 0, kPageSize - keep);
      span.Persist(pool_.PageAddress(boundary) + keep, kPageSize - keep);
    }
  }
  const uint64_t first_dead = (new_size + kPageSize - 1) / kPageSize;
  const uint64_t last_page = old_size == 0 ? 0 : (old_size - 1) / kPageSize;
  for (uint64_t index = first_dead; index <= last_page; ++index) {
    const PageNumber page = node->radix.Lookup(index);
    if (page == 0) {
      continue;
    }
    const size_t chain_slot = index / kIndexEntriesPerPage;
    auto* chain =
        reinterpret_cast<IndexPage*>(pool_.PageAddress(node->index_pages[chain_slot]));
    pool_.Store64(&chain->entries[index % kIndexEntriesPerPage], 0);
    span.Persist(&chain->entries[index % kIndexEntriesPerPage], sizeof(uint64_t));
    node->radix.Erase(index);
    if (IsTierEntry(page)) {
      // A truncated digested page has no NVM page to reuse; drop any promoted copy.
      // The backend slot itself is released when this write session reconciles.
      const PageNumber cached = promote_cache_.Erase(node->ino, index);
      if (cached != 0) {
        leases_.RecyclePage(cached);
      }
      continue;
    }
    std::lock_guard<SpinLock> guard(node->tails_lock);
    node->reuse_pages.push_back(page);
  }
  span.Fence();
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Fd-based FsInterface operations
// ---------------------------------------------------------------------------

Status ArckFs::Close(Fd fd) {
  obs::OpScope op("Close");
  return fds_.Release(fd);
}

Result<size_t> ArckFs::Read(Fd fd, void* buf, size_t count) {
  obs::OpScope op("Read");
  auto* entry = fds_.Get(fd);
  if (entry == nullptr) {
    return BadFd();
  }
  const uint64_t offset = entry->offset.load(std::memory_order_relaxed);
  TRIO_ASSIGN_OR_RETURN(size_t done, Pread(fd, buf, count, offset));
  // fetch_add on the completed byte count: a plain store would lose the other side's
  // advance when two threads share the fd.
  entry->offset.fetch_add(done, std::memory_order_relaxed);
  return done;
}

Result<size_t> ArckFs::Write(Fd fd, const void* buf, size_t count) {
  obs::OpScope op("Write");
  auto* entry = fds_.Get(fd);
  if (entry == nullptr) {
    return BadFd();
  }
  if (entry->append) {
    if (!entry->writable) {
      return BadFd("fd not opened for writing");
    }
    FileNode* node = entry->file.get();
    if (node->is_dir) {
      return IsDir();
    }
    if (count == 0) {
      return static_cast<size_t>(0);
    }
    // The append offset is chosen by WriteLocked under the exclusive inode lock; reading
    // the size here would race with concurrent appenders.
    TRIO_RETURN_IF_ERROR(LockForOp(node, 2));
    uint64_t used = 0;
    Result<size_t> result = WriteLocked(node, buf, count, 0, /*append=*/true, &used);
    UnlockOp(node);
    if (!result.ok()) {
      return result;
    }
    entry->offset.store(used + *result, std::memory_order_relaxed);
    return result;
  }
  const uint64_t offset = entry->offset.load(std::memory_order_relaxed);
  TRIO_ASSIGN_OR_RETURN(size_t done, Pwrite(fd, buf, count, offset));
  entry->offset.fetch_add(done, std::memory_order_relaxed);
  return done;
}

Result<size_t> ArckFs::Pread(Fd fd, void* buf, size_t count, uint64_t offset) {
  obs::OpScope op("Pread");
  auto* entry = fds_.Get(fd);
  if (entry == nullptr) {
    return BadFd();
  }
  FileNode* node = entry->file.get();
  if (node->is_dir) {
    return IsDir();
  }
  TRIO_RETURN_IF_ERROR(LockForOp(node, 1));
  Result<size_t> result = ReadLocked(node, buf, count, offset);
  UnlockOp(node);
  return result;
}

Result<size_t> ArckFs::Pwrite(Fd fd, const void* buf, size_t count, uint64_t offset) {
  obs::OpScope op("Pwrite");
  auto* entry = fds_.Get(fd);
  if (entry == nullptr) {
    return BadFd();
  }
  if (!entry->writable) {
    return BadFd("fd not opened for writing");
  }
  FileNode* node = entry->file.get();
  if (node->is_dir) {
    return IsDir();
  }
  TRIO_RETURN_IF_ERROR(LockForOp(node, 2));
  Result<size_t> result = WriteLocked(node, buf, count, offset);
  UnlockOp(node);
  return result;
}

Result<uint64_t> ArckFs::Seek(Fd fd, uint64_t offset) {
  obs::OpScope op("Seek");
  auto* entry = fds_.Get(fd);
  if (entry == nullptr) {
    return BadFd();
  }
  entry->offset.store(offset, std::memory_order_relaxed);
  return offset;
}

Status ArckFs::Fsync(Fd fd) {
  obs::OpScope op("Fsync");
  auto* entry = fds_.Get(fd);
  if (entry == nullptr) {
    return BadFd();
  }
  if (!config_.sync_data && !entry->file->is_dir) {
    // Relaxed-data mode: the write path deferred its flushes to here.
    FlushDirtyData(entry->file.get());
  }
  // In the default mode every operation is already synchronous (§4.4).
  return OkStatus();
}

Status ArckFs::Ftruncate(Fd fd, uint64_t size) {
  obs::OpScope op("Ftruncate");
  auto* entry = fds_.Get(fd);
  if (entry == nullptr || !entry->writable) {
    return BadFd();
  }
  FileNode* node = entry->file.get();
  TRIO_RETURN_IF_ERROR(LockForOp(node, 2));
  Status status = TruncateLocked(node, size);
  UnlockOp(node);
  return status;
}

Status ArckFs::Truncate(const std::string& path, uint64_t size) {
  obs::OpScope op("Truncate");
  TRIO_ASSIGN_OR_RETURN(NodePtr node, OpenNodeByPath(path, /*write=*/true));
  if (node->is_dir) {
    return IsDir(path);
  }
  TRIO_RETURN_IF_ERROR(LockForOp(node.get(), 2));
  Status status = TruncateLocked(node.get(), size);
  UnlockOp(node.get());
  return status;
}

}  // namespace trio
