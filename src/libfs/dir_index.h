// Per-directory resizable chained hash table (§4.2): auxiliary state mapping a file name to
// the location of its DirentBlock in the directory's core state. Per-bucket readers-writer
// locks give fine-grained concurrency; a table-wide rwlock is taken exclusively only while
// doubling the bucket array.

#ifndef SRC_LIBFS_DIR_INDEX_H_
#define SRC_LIBFS_DIR_INDEX_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rwlock.h"
#include "src/nvm/nvm.h"
#include "src/core/format.h"

namespace trio {

struct DirSlot {
  PageNumber page = 0;
  uint32_t slot = 0;
  Ino ino = kInvalidIno;
  bool is_dir = false;
};

class DirIndex {
 public:
  explicit DirIndex(size_t initial_buckets = 16) {
    table_ = std::make_unique<Table>(initial_buckets);
  }
  DirIndex(const DirIndex&) = delete;
  DirIndex& operator=(const DirIndex&) = delete;
  ~DirIndex() {
    for (size_t i = 0; i <= table_->mask; ++i) {
      Entry* entry = table_->buckets[i].head;
      while (entry != nullptr) {
        Entry* next = entry->next;
        delete entry;
        entry = next;
      }
    }
  }

  bool Lookup(std::string_view name, DirSlot* out) const {
    const uint64_t hash = HashString(name);
    ReadGuard<RwLock> table_guard(table_lock_);
    const Table& table = *table_;
    Bucket& bucket = table.buckets[hash & table.mask];
    ReadGuard<RwLock> bucket_guard(bucket.lock);
    for (const Entry* entry = bucket.head; entry != nullptr; entry = entry->next) {
      if (entry->hash == hash && entry->name == name) {
        *out = entry->value;
        return true;
      }
    }
    return false;
  }

  // Returns false if the name already exists.
  bool Insert(std::string_view name, const DirSlot& value) {
    MaybeResize();
    const uint64_t hash = HashString(name);
    ReadGuard<RwLock> table_guard(table_lock_);
    Table& table = *table_;
    Bucket& bucket = table.buckets[hash & table.mask];
    WriteGuard<RwLock> bucket_guard(bucket.lock);
    for (Entry* entry = bucket.head; entry != nullptr; entry = entry->next) {
      if (entry->hash == hash && entry->name == name) {
        return false;
      }
    }
    auto* entry = new Entry{hash, std::string(name), value, bucket.head};
    bucket.head = entry;
    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  bool Erase(std::string_view name) {
    const uint64_t hash = HashString(name);
    ReadGuard<RwLock> table_guard(table_lock_);
    Table& table = *table_;
    Bucket& bucket = table.buckets[hash & table.mask];
    WriteGuard<RwLock> bucket_guard(bucket.lock);
    Entry** link = &bucket.head;
    while (*link != nullptr) {
      Entry* entry = *link;
      if (entry->hash == hash && entry->name == name) {
        *link = entry->next;
        delete entry;
        size_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
      link = &entry->next;
    }
    return false;
  }

  size_t Size() const { return size_.load(std::memory_order_relaxed); }

  // Snapshot of all entries (readdir). Buckets are read-locked one at a time.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    ReadGuard<RwLock> table_guard(table_lock_);
    const Table& table = *table_;
    for (size_t i = 0; i <= table.mask; ++i) {
      Bucket& bucket = table.buckets[i];
      ReadGuard<RwLock> bucket_guard(bucket.lock);
      for (const Entry* entry = bucket.head; entry != nullptr; entry = entry->next) {
        fn(entry->name, entry->value);
      }
    }
  }

  void Clear() {
    WriteGuard<RwLock> table_guard(table_lock_);
    for (size_t i = 0; i <= table_->mask; ++i) {
      Entry* entry = table_->buckets[i].head;
      while (entry != nullptr) {
        Entry* next = entry->next;
        delete entry;
        entry = next;
      }
      table_->buckets[i].head = nullptr;
    }
    size_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Entry {
    uint64_t hash;
    std::string name;
    DirSlot value;
    Entry* next;
  };
  struct Bucket {
    mutable RwLock lock;
    Entry* head = nullptr;
  };
  struct Table {
    explicit Table(size_t n) : buckets(new Bucket[n]), mask(n - 1) {}
    std::unique_ptr<Bucket[]> buckets;
    size_t mask;
  };

  void MaybeResize() {
    // Grow when load factor exceeds 4 entries per bucket.
    if (size_.load(std::memory_order_relaxed) <= 4 * (table_->mask + 1)) {
      return;
    }
    WriteGuard<RwLock> table_guard(table_lock_);
    const size_t old_buckets = table_->mask + 1;
    if (size_.load(std::memory_order_relaxed) <= 4 * old_buckets) {
      return;  // Someone resized before us.
    }
    auto grown = std::make_unique<Table>(old_buckets * 2);
    for (size_t i = 0; i < old_buckets; ++i) {
      Entry* entry = table_->buckets[i].head;
      while (entry != nullptr) {
        Entry* next = entry->next;
        Bucket& target = grown->buckets[entry->hash & grown->mask];
        entry->next = target.head;
        target.head = entry;
        entry = next;
      }
      table_->buckets[i].head = nullptr;
    }
    table_ = std::move(grown);
  }

  mutable RwLock table_lock_;
  std::unique_ptr<Table> table_;
  std::atomic<size_t> size_{0};
};

}  // namespace trio

#endif  // SRC_LIBFS_DIR_INDEX_H_
