// Per-operation context: the spine every FsInterface operation carries from the LibFS
// entry point through the kernel syscall boundary and the delegation pool down to the
// persistence layer. An OpContext gives the op a stable id, a set of per-op cost counters
// (fences issued, bytes persisted, delegated chunks, lock-wait ns, kernel crossings), and
// a fault-injection scope FaultSim policies can filter on.
//
// Cost model: everything here is OFF by default. OpScope and TraceSpan check one
// process-global flag with __builtin_expect — the disabled cost is one predicted branch
// per span and zero clock reads, verified by bench_delegation staying within noise of its
// committed baseline. When tracing is enabled, spans additionally record begin/end events
// into a lock-free per-thread ring buffer (single producer, torn reads tolerated by
// sequence-checking snapshots).

#ifndef SRC_OBS_OP_CONTEXT_H_
#define SRC_OBS_OP_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#define TRIO_OBS_UNLIKELY(x) (__builtin_expect(!!(x), 0))

namespace trio {
namespace obs {

// Tracing master switch. Relaxed loads; flipping it mid-op only affects future spans.
bool TracingEnabled();
void SetTracing(bool enabled);

// Per-op cost counters. Atomics because delegation workers and watchdog helpers attribute
// work to an op from other threads while the op's own thread keeps counting.
struct OpCounters {
  std::atomic<uint64_t> fences{0};
  std::atomic<uint64_t> bytes_persisted{0};
  std::atomic<uint64_t> delegated_chunks{0};
  std::atomic<uint64_t> lock_wait_ns{0};
  std::atomic<uint64_t> kernel_crossings{0};
};

struct OpContext {
  uint64_t id = 0;          // Process-unique, never 0 for a live op.
  const char* name = "";    // Static string: the FsInterface entry point.
  uint64_t begin_ns = 0;
  OpCounters counters;
  // Fault-injection scope: FaultPolicy::ScopedToOp(id) / domain filters match these.
  uint32_t fault_domain = 0;
  OpContext* parent = nullptr;  // Nested ops (e.g. Open -> Truncate) stack.

  // The op the calling thread is currently executing, or nullptr when tracing is off /
  // no op is in flight. Attribution sites do `if (auto* op = OpContext::Current())` —
  // one predicted branch when disabled.
  static OpContext* Current();
};

// One recorded span. `name` points at a static string; events are POD so the ring can
// copy them without synchronization beyond the sequence counter.
struct TraceEvent {
  uint64_t op_id = 0;
  const char* name = "";
  uint64_t begin_ns = 0;
  uint64_t end_ns = 0;
  uint32_t depth = 0;
};

// Lock-free single-producer ring buffer of TraceEvents, one per thread. The producing
// thread pushes with a release-published sequence number; snapshots from other threads
// re-check the sequence around each copy and drop events that were overwritten mid-read.
class TraceRing {
 public:
  static constexpr size_t kCapacity = 4096;  // Power of two.

  void Push(const TraceEvent& event) {
    const uint64_t seq = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[seq & (kCapacity - 1)];
    slot.seq.store(0, std::memory_order_release);  // Mark in-progress.
    slot.event = event;
    slot.seq.store(seq + 1, std::memory_order_release);
    head_.store(seq + 1, std::memory_order_release);
  }

  // Oldest-to-newest copy of the events still resident in the ring.
  std::vector<TraceEvent> Snapshot() const;

  // Drops all resident events. Only safe while the producing thread is quiescent.
  void Reset() {
    for (Slot& slot : slots_) {
      slot.seq.store(0, std::memory_order_relaxed);
    }
    head_.store(0, std::memory_order_release);
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // 0 = empty/in-progress, else producer seq + 1.
    TraceEvent event;
  };
  std::atomic<uint64_t> head_{0};
  Slot slots_[kCapacity];
};

// All events currently resident across every thread's ring (diagnostics/tests). Rings of
// exited threads are retained until ClearTraceEvents().
std::vector<TraceEvent> SnapshotAllTraceEvents();
void ClearTraceEvents();

// RAII: establishes the OpContext for one FsInterface operation on this thread. When
// tracing is disabled this is one predicted branch in the constructor and one in the
// destructor; no allocation, no clock read.
class OpScope {
 public:
  explicit OpScope(const char* name) {
    if (TRIO_OBS_UNLIKELY(TracingEnabled())) {
      Begin(name);
    }
  }
  ~OpScope() {
    if (TRIO_OBS_UNLIKELY(armed_)) {
      End();
    }
  }
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  // The context while armed (tracing on), else nullptr.
  OpContext* context() { return armed_ ? &ctx_ : nullptr; }

 private:
  void Begin(const char* name);
  void End();

  bool armed_ = false;
  OpContext ctx_;
};

// RAII: one trace span inside the current op (lock acquisition, verify, map, ...).
// Disabled cost: one predicted branch each way.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TRIO_OBS_UNLIKELY(TracingEnabled())) {
      Begin(name);
    }
  }
  ~TraceSpan() {
    if (TRIO_OBS_UNLIKELY(begin_ns_ != 0)) {
      End();
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin(const char* name);
  void End();

  const char* name_ = "";
  uint64_t begin_ns_ = 0;
};

// Monotonic nanoseconds for span timestamps (steady_clock; obs never touches the
// simulated Clock so tracing works identically under FakeClock tests).
uint64_t MonotonicNowNs();

}  // namespace obs
}  // namespace trio

#endif  // SRC_OBS_OP_CONTEXT_H_
