// The unified metrics registry (the "op spine" observability layer). Every layer of the
// stack — NvmPool, the kernel controller, the delegation pool, each LibFS — owns a stats
// struct whose fields are obs::Counter / obs::LatencyHistogram members registered into
// the process-global StatRegistry under a layer name. The registry serializes to JSON so
// every bench binary can emit a per-layer breakdown (fences, kernel crossings, bytes
// persisted) next to its throughput numbers, and tests can assert on per-layer values
// without reaching into component internals.
//
// Multiple instances of a layer (two ArckFs, eight delegation nodes) each register their
// own group; reads and the JSON snapshot sum per (layer, name). Registration happens once
// at component construction; the hot path is exactly the relaxed atomic increment the old
// ad-hoc structs already paid.

#ifndef SRC_OBS_STATS_H_
#define SRC_OBS_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace trio {
namespace obs {

// Drop-in replacement for the std::atomic<uint64_t> fields of the old stats structs:
// same memory layout, same relaxed-by-default operations, plus assignment-from-integer so
// existing `stats.field = 0` reset code keeps compiling.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  uint64_t load(std::memory_order mo = std::memory_order_relaxed) const {
    return value_.load(mo);
  }
  void store(uint64_t v, std::memory_order mo = std::memory_order_relaxed) {
    value_.store(v, mo);
  }
  uint64_t fetch_add(uint64_t d, std::memory_order mo = std::memory_order_relaxed) {
    return value_.fetch_add(d, mo);
  }
  uint64_t fetch_sub(uint64_t d, std::memory_order mo = std::memory_order_relaxed) {
    return value_.fetch_sub(d, mo);
  }
  Counter& operator=(uint64_t v) {
    store(v);
    return *this;
  }

 private:
  std::atomic<uint64_t> value_{0};
};

// Log-binned latency histogram: Record(ns) lands in bin floor(log2(ns)) (bin 0 for 0–1ns).
// 64 bins cover the full uint64 range; recording is two relaxed fetch_adds.
class LatencyHistogram {
 public:
  static constexpr size_t kBins = 64;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(uint64_t ns) {
    bins_[BinOf(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  static size_t BinOf(uint64_t ns) {
    return ns == 0 ? 0 : 63 - static_cast<size_t>(__builtin_clzll(ns));
  }
  // Inclusive upper bound of a bin (2^(bin+1) - 1).
  static uint64_t BinUpperNs(size_t bin) {
    return bin >= 63 ? ~0ull : (2ull << bin) - 1;
  }

  uint64_t BinCount(size_t bin) const {
    return bins_[bin].load(std::memory_order_relaxed);
  }
  uint64_t TotalCount() const {
    uint64_t total = 0;
    for (const auto& bin : bins_) {
      total += bin.load(std::memory_order_relaxed);
    }
    return total;
  }
  uint64_t SumNs() const { return sum_ns_.load(std::memory_order_relaxed); }

  void Reset() {
    for (auto& bin : bins_) {
      bin.store(0, std::memory_order_relaxed);
    }
    sum_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kBins> bins_{};
  std::atomic<uint64_t> sum_ns_{0};
};

// One named stat inside a registered group: exactly one of counter / histogram is set.
struct StatRef {
  const char* name = "";
  const Counter* counter = nullptr;
  const LatencyHistogram* histogram = nullptr;

  StatRef(const char* n, const Counter* c) : name(n), counter(c) {}
  StatRef(const char* n, const LatencyHistogram* h) : name(n), histogram(h) {}
};

// Process-global registry. Components register a (layer, stats) group at construction and
// unregister at destruction (via ScopedRegistration); snapshots sum per (layer, name).
class StatRegistry {
 public:
  static StatRegistry& Global();

  uint64_t Register(std::string layer, std::vector<StatRef> stats);
  void Unregister(uint64_t id);

  // Sum of counter `name` across every live group of `layer` (0 if absent).
  uint64_t CounterValue(const std::string& layer, const std::string& name) const;
  std::vector<std::string> Layers() const;

  // {"layer":{"counter":N,...,"hist":{"count":N,"sum_ns":S,"bins":{"<=UPPER":N}}},...}
  // Counters and histogram bins sum across instances of the same layer.
  std::string ToJson() const;

 private:
  struct Group {
    uint64_t id = 0;
    std::string layer;
    std::vector<StatRef> stats;
  };

  mutable std::mutex mutex_;
  std::vector<Group> groups_;
  uint64_t next_id_ = 1;
};

// RAII registration handle owned by each stats struct.
class ScopedRegistration {
 public:
  ScopedRegistration() = default;
  ScopedRegistration(std::string layer, std::vector<StatRef> stats)
      : id_(StatRegistry::Global().Register(std::move(layer), std::move(stats))) {}
  ~ScopedRegistration() { Release(); }
  ScopedRegistration(const ScopedRegistration&) = delete;
  ScopedRegistration& operator=(const ScopedRegistration&) = delete;
  ScopedRegistration(ScopedRegistration&& other) noexcept : id_(other.id_) {
    other.id_ = 0;
  }
  ScopedRegistration& operator=(ScopedRegistration&& other) noexcept {
    if (this != &other) {
      Release();
      id_ = other.id_;
      other.id_ = 0;
    }
    return *this;
  }

 private:
  void Release() {
    if (id_ != 0) {
      StatRegistry::Global().Unregister(id_);
      id_ = 0;
    }
  }
  uint64_t id_ = 0;
};

// Per-layer persistence counters fed by PersistSpan (src/obs/persist_span.h): every layer
// that issues persists owns one of these, so fence accounting is attributable per layer.
struct PersistStats {
  Counter persists;          // Persist() calls.
  Counter bytes_persisted;   // Bytes covered by those calls.
  Counter fences;            // Fences actually issued to the pool.
  Counter coalesced_fences;  // Fence() calls skipped because nothing was pending.
  Counter commit_stores;     // 8-byte atomic durable commits (CommitStore64).
  Counter deferred_fences;   // Span fences absorbed into a group-commit epoch.
  Counter epoch_fences;      // Epoch Close() fences (each covering >=1 deferral).

  explicit PersistStats(std::string layer)
      : reg_(std::move(layer),
             {{"persists", &persists},
              {"bytes_persisted", &bytes_persisted},
              {"fences", &fences},
              {"coalesced_fences", &coalesced_fences},
              {"commit_stores", &commit_stores},
              {"deferred_fences", &deferred_fences},
              {"epoch_fences", &epoch_fences}}) {}

  void Reset() {
    persists = 0;
    bytes_persisted = 0;
    fences = 0;
    coalesced_fences = 0;
    commit_stores = 0;
    deferred_fences = 0;
    epoch_fences = 0;
  }

 private:
  ScopedRegistration reg_;
};

}  // namespace obs
}  // namespace trio

#endif  // SRC_OBS_STATS_H_
