#include "src/obs/op_context.h"

#include <chrono>
#include <mutex>

namespace trio {
namespace obs {

namespace {

std::atomic<bool> g_tracing{false};
std::atomic<uint64_t> g_next_op_id{1};

thread_local OpContext* tls_current_op = nullptr;
thread_local uint32_t tls_span_depth = 0;

// Global registry of per-thread rings. shared_ptr so a ring outlives its thread: the
// thread-local owner releases on exit, but snapshots keep the events readable.
struct RingRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<TraceRing>> rings;

  static RingRegistry& Get() {
    static RingRegistry* registry = new RingRegistry();  // Leaked: outlives all statics.
    return *registry;
  }
};

TraceRing& ThreadRing() {
  thread_local std::shared_ptr<TraceRing> ring = [] {
    auto r = std::make_shared<TraceRing>();
    RingRegistry& registry = RingRegistry::Get();
    std::lock_guard<std::mutex> guard(registry.mutex);
    registry.rings.push_back(r);
    return r;
  }();
  return *ring;
}

}  // namespace

bool TracingEnabled() { return g_tracing.load(std::memory_order_relaxed); }

void SetTracing(bool enabled) { g_tracing.store(enabled, std::memory_order_relaxed); }

OpContext* OpContext::Current() { return tls_current_op; }

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  std::vector<TraceEvent> events;
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t begin = head > kCapacity ? head - kCapacity : 0;
  events.reserve(static_cast<size_t>(head - begin));
  for (uint64_t seq = begin; seq < head; ++seq) {
    const Slot& slot = slots_[seq & (kCapacity - 1)];
    if (slot.seq.load(std::memory_order_acquire) != seq + 1) {
      continue;  // In-progress or already overwritten by a newer event.
    }
    TraceEvent copy = slot.event;
    if (slot.seq.load(std::memory_order_acquire) != seq + 1) {
      continue;  // Overwritten while we copied; drop the torn read.
    }
    events.push_back(copy);
  }
  return events;
}

std::vector<TraceEvent> SnapshotAllTraceEvents() {
  RingRegistry& registry = RingRegistry::Get();
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    std::lock_guard<std::mutex> guard(registry.mutex);
    rings = registry.rings;
  }
  std::vector<TraceEvent> all;
  for (const auto& ring : rings) {
    std::vector<TraceEvent> events = ring->Snapshot();
    all.insert(all.end(), events.begin(), events.end());
  }
  return all;
}

void ClearTraceEvents() {
  RingRegistry& registry = RingRegistry::Get();
  std::lock_guard<std::mutex> guard(registry.mutex);
  // Reset rings in place: threads cache their ring pointer for life, so the registry
  // entries must stay. Callers quiesce spans first (tests do this between phases); a
  // concurrent push at worst survives the clear or is dropped by the seq check.
  for (const auto& ring : registry.rings) {
    ring->Reset();
  }
}

void OpScope::Begin(const char* name) {
  armed_ = true;
  ctx_.id = g_next_op_id.fetch_add(1, std::memory_order_relaxed);
  ctx_.name = name;
  ctx_.begin_ns = MonotonicNowNs();
  ctx_.fault_domain = 0;
  ctx_.parent = tls_current_op;
  tls_current_op = &ctx_;
  ++tls_span_depth;
}

void OpScope::End() {
  TraceEvent event;
  event.op_id = ctx_.id;
  event.name = ctx_.name;
  event.begin_ns = ctx_.begin_ns;
  event.end_ns = MonotonicNowNs();
  event.depth = --tls_span_depth;
  ThreadRing().Push(event);
  tls_current_op = ctx_.parent;
}

void TraceSpan::Begin(const char* name) {
  name_ = name;
  begin_ns_ = MonotonicNowNs();
  ++tls_span_depth;
}

void TraceSpan::End() {
  TraceEvent event;
  OpContext* op = tls_current_op;
  event.op_id = op != nullptr ? op->id : 0;
  event.name = name_;
  event.begin_ns = begin_ns_;
  event.end_ns = MonotonicNowNs();
  event.depth = --tls_span_depth;
  ThreadRing().Push(event);
}

}  // namespace obs
}  // namespace trio
