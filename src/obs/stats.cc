#include "src/obs/stats.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace trio {
namespace obs {

StatRegistry& StatRegistry::Global() {
  static StatRegistry* registry = new StatRegistry();  // Leaked: outlives all statics.
  return *registry;
}

uint64_t StatRegistry::Register(std::string layer, std::vector<StatRef> stats) {
  std::lock_guard<std::mutex> guard(mutex_);
  Group group;
  group.id = next_id_++;
  group.layer = std::move(layer);
  group.stats = std::move(stats);
  groups_.push_back(std::move(group));
  return groups_.back().id;
}

void StatRegistry::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> guard(mutex_);
  groups_.erase(std::remove_if(groups_.begin(), groups_.end(),
                               [id](const Group& g) { return g.id == id; }),
                groups_.end());
}

uint64_t StatRegistry::CounterValue(const std::string& layer,
                                    const std::string& name) const {
  std::lock_guard<std::mutex> guard(mutex_);
  uint64_t total = 0;
  for (const Group& group : groups_) {
    if (group.layer != layer) {
      continue;
    }
    for (const StatRef& stat : group.stats) {
      if (stat.counter != nullptr && name == stat.name) {
        total += stat.counter->load();
      }
    }
  }
  return total;
}

std::vector<std::string> StatRegistry::Layers() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<std::string> layers;
  for (const Group& group : groups_) {
    if (std::find(layers.begin(), layers.end(), group.layer) == layers.end()) {
      layers.push_back(group.layer);
    }
  }
  std::sort(layers.begin(), layers.end());
  return layers;
}

std::string StatRegistry::ToJson() const {
  // Aggregate under the lock, render after: counters sum; histograms merge bin-wise.
  struct HistAgg {
    uint64_t sum_ns = 0;
    std::array<uint64_t, LatencyHistogram::kBins> bins{};
  };
  std::map<std::string, std::map<std::string, uint64_t>> counters;
  std::map<std::string, std::map<std::string, HistAgg>> histograms;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    for (const Group& group : groups_) {
      for (const StatRef& stat : group.stats) {
        if (stat.counter != nullptr) {
          counters[group.layer][stat.name] += stat.counter->load();
        } else if (stat.histogram != nullptr) {
          HistAgg& agg = histograms[group.layer][stat.name];
          agg.sum_ns += stat.histogram->SumNs();
          for (size_t bin = 0; bin < LatencyHistogram::kBins; ++bin) {
            agg.bins[bin] += stat.histogram->BinCount(bin);
          }
        }
      }
    }
  }

  std::string out = "{";
  bool first_layer = true;
  // Layers that have only histograms (or only counters) still appear once.
  std::map<std::string, bool> layers;
  for (const auto& [layer, _] : counters) {
    layers[layer] = true;
  }
  for (const auto& [layer, _] : histograms) {
    layers[layer] = true;
  }
  char buf[64];
  for (const auto& [layer, _] : layers) {
    if (!first_layer) {
      out += ",";
    }
    first_layer = false;
    out += "\"" + layer + "\":{";
    bool first_stat = true;
    auto counter_it = counters.find(layer);
    if (counter_it != counters.end()) {
      for (const auto& [name, value] : counter_it->second) {
        if (!first_stat) {
          out += ",";
        }
        first_stat = false;
        std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
        out += "\"" + name + "\":" + buf;
      }
    }
    auto hist_it = histograms.find(layer);
    if (hist_it != histograms.end()) {
      for (const auto& [name, agg] : hist_it->second) {
        if (!first_stat) {
          out += ",";
        }
        first_stat = false;
        uint64_t count = 0;
        for (uint64_t bin : agg.bins) {
          count += bin;
        }
        out += "\"" + name + "\":{";
        std::snprintf(buf, sizeof(buf), "\"count\":%llu,\"sum_ns\":%llu,\"bins\":{",
                      static_cast<unsigned long long>(count),
                      static_cast<unsigned long long>(agg.sum_ns));
        out += buf;
        bool first_bin = true;
        for (size_t bin = 0; bin < LatencyHistogram::kBins; ++bin) {
          if (agg.bins[bin] == 0) {
            continue;
          }
          if (!first_bin) {
            out += ",";
          }
          first_bin = false;
          std::snprintf(buf, sizeof(buf), "\"<=%llu\":%llu",
                        static_cast<unsigned long long>(LatencyHistogram::BinUpperNs(bin)),
                        static_cast<unsigned long long>(agg.bins[bin]));
          out += buf;
        }
        out += "}}";
      }
    }
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace obs
}  // namespace trio
