#include "src/obs/persist_span.h"

namespace trio {
namespace obs {

namespace {
thread_local PersistEpoch* g_current_epoch = nullptr;
}  // namespace

PersistEpoch* PersistEpoch::Current() { return g_current_epoch; }

PersistEpoch::Scope::Scope(PersistEpoch& epoch) : prev_(g_current_epoch) {
  g_current_epoch = &epoch;
}

PersistEpoch::Scope::~Scope() { g_current_epoch = prev_; }

}  // namespace obs
}  // namespace trio
