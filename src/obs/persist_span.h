// PersistSpan: the single instrumented gateway between the file-system layers and
// NvmPool's persistence primitives. Every Persist/PersistNow/Fence/CommitStore64 outside
// src/nvm goes through one of these (grep-enforced by obs_test), so fence counting,
// fence coalescing, and per-op attribution live in exactly one place — and the torn-
// persist / bit-flip fault points armed inside NvmPool fire under a span whose op id is
// known.
//
// Coalescing invariant: in this NVM model an sfence only commits cachelines that had a
// clwb (Persist) issued since the last fence. A Fence() with no persists pending through
// this span is therefore a durability no-op and is skipped (counted as coalesced). A span
// NEVER skips a fence when it has issued persists; the destructor issues a closing fence
// if any persists are still pending, so dropping a span cannot lose durability.
//
// Disarm() exists for the delegation last-completer protocol: a worker that is not the
// last completer of a batch-node group hands its pending persists to the completer's
// single fence and must not fence in its own destructor.
//
// Group-commit epochs (PR 6): a PersistEpoch installed on a thread (PersistEpoch::Scope)
// absorbs the fences of every span opened on that thread while it is current. The spans
// still issue their clwbs in program order — so any fence, whenever it happens, commits a
// dependency-consistent prefix — but the sfences themselves collapse into ONE issued at
// PersistEpoch::Close(). The op-ring drainer wraps each drain pass in an epoch, which is
// what eliminates per-op fences ACROSS queued operations rather than just within one.
// Durability contract: nothing executed inside an epoch is durable until the epoch
// closes; the ring posts completions only after the close, so a completion still implies
// durability.

#ifndef SRC_OBS_PERSIST_SPAN_H_
#define SRC_OBS_PERSIST_SPAN_H_

#include <cstddef>
#include <cstdint>

#include "src/nvm/nvm.h"
#include "src/obs/op_context.h"
#include "src/obs/stats.h"

namespace trio {
namespace obs {

// One group-commit window. Single-threaded by construction: it is installed as a
// thread-local and only spans of that thread defer into it. Close() is re-armable — the
// ring drainer closes at every barrier SQE and again at the end of the pass, reusing one
// epoch object per pass.
class PersistEpoch {
 public:
  explicit PersistEpoch(NvmPool& pool, PersistStats* stats = nullptr)
      : pool_(pool), stats_(stats) {}
  ~PersistEpoch() { Close(); }
  PersistEpoch(const PersistEpoch&) = delete;
  PersistEpoch& operator=(const PersistEpoch&) = delete;

  // A span hands its fence obligation to the epoch (counted per call, so
  // deferred() == fences the group commit absorbed).
  void Absorb() {
    armed_ = true;
    ++deferred_;
  }

  // The group-commit point: one sfence covering every deferred fence since the last
  // Close. No-op when nothing was deferred.
  void Close() {
    if (!armed_) {
      return;
    }
    pool_.Fence();
    armed_ = false;
    ++closes_;
    if (stats_ != nullptr) {
      stats_->fences.fetch_add(1);
      stats_->epoch_fences.fetch_add(1);
    }
  }

  bool armed() const { return armed_; }
  uint64_t deferred() const { return deferred_; }
  uint64_t closes() const { return closes_; }

  // The epoch spans of the calling thread defer into, or nullptr (the default:
  // every fence issues synchronously, the pre-epoch behaviour).
  static PersistEpoch* Current();

  // RAII installation of an epoch as the calling thread's current one. Nests: the
  // previous epoch is restored on exit.
  class Scope {
   public:
    explicit Scope(PersistEpoch& epoch);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PersistEpoch* prev_;
  };

 private:
  NvmPool& pool_;
  PersistStats* stats_;
  bool armed_ = false;
  uint64_t deferred_ = 0;
  uint64_t closes_ = 0;
};

class PersistSpan {
 public:
  explicit PersistSpan(NvmPool& pool, PersistStats* stats = nullptr)
      : pool_(pool),
        stats_(stats),
        op_(OpContext::Current()),
        epoch_(PersistEpoch::Current()) {}

  ~PersistSpan() {
    if (pending_) {
      IssueFence();
    }
  }

  PersistSpan(const PersistSpan&) = delete;
  PersistSpan& operator=(const PersistSpan&) = delete;

  // clwb over [dst, dst+len). Marks the span pending: a fence must follow (the
  // destructor supplies one if the caller forgets).
  void Persist(const void* dst, size_t len) {
    pool_.Persist(dst, len);
    pending_ = true;
    Account(len);
  }

  // sfence — issued only if this span has pending persists, else counted as coalesced.
  void Fence() {
    if (pending_) {
      IssueFence();
    } else if (stats_ != nullptr) {
      stats_->coalesced_fences.fetch_add(1);
    }
  }

  // Persist + guaranteed fence (uncoalescible: callers use this when the fence must
  // order against a subsequent store even within the span).
  void PersistNow(const void* dst, size_t len) {
    pool_.Persist(dst, len);
    pending_ = true;
    Account(len);
    IssueFence();
  }

  // Store64 + Persist + Fence: the 8-byte atomic durable commit. Any persists pending in
  // the span ride the commit's fence.
  void CommitStore64(uint64_t* dst, uint64_t value) {
    pool_.Store64(dst, value);
    pool_.Persist(dst, sizeof(uint64_t));
    pending_ = true;
    Account(sizeof(uint64_t));
    IssueFence();
    if (stats_ != nullptr) {
      stats_->commit_stores.fetch_add(1);
    }
  }

  // Drop pending persists without fencing: the caller has transferred responsibility for
  // the fence to someone else (delegation last-completer groups).
  void Disarm() { pending_ = false; }

  // Unconditional sfence, even with nothing pending in THIS span: the dual of Disarm(),
  // for the party that fences on behalf of persists other spans issued (the last
  // completer of a delegation batch-node group).
  void ForceFence() {
    pending_ = true;
    IssueFence();
  }

  bool pending() const { return pending_; }

 private:
  void Account(size_t len) {
    if (stats_ != nullptr) {
      stats_->persists.fetch_add(1);
      stats_->bytes_persisted.fetch_add(len);
    }
    if (TRIO_OBS_UNLIKELY(op_ != nullptr)) {
      op_->counters.bytes_persisted.fetch_add(len, std::memory_order_relaxed);
    }
  }

  void IssueFence() {
    if (TRIO_OBS_UNLIKELY(epoch_ != nullptr)) {
      // Group commit: the clwbs are already issued in dependency order; the sfence
      // rides the epoch's single Close() fence. Safe at fence granularity because in
      // this model a fence commits ALL pending lines process-wide, so the commit
      // store of an op can never become durable without the persists issued before
      // it. Any fence image is a dependency-consistent prefix of each op.
      epoch_->Absorb();
      pending_ = false;
      if (stats_ != nullptr) {
        stats_->deferred_fences.fetch_add(1);
      }
      if (op_ != nullptr) {
        op_->counters.fences.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    pool_.Fence();
    pending_ = false;
    if (stats_ != nullptr) {
      stats_->fences.fetch_add(1);
    }
    if (TRIO_OBS_UNLIKELY(op_ != nullptr)) {
      op_->counters.fences.fetch_add(1, std::memory_order_relaxed);
    }
  }

  NvmPool& pool_;
  PersistStats* stats_;
  OpContext* op_;
  PersistEpoch* epoch_;
  bool pending_ = false;
};

}  // namespace obs
}  // namespace trio

#endif  // SRC_OBS_PERSIST_SPAN_H_
