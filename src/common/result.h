// Result<T>: value-or-Status, the return type of fallible functions that produce a value.
// Modeled on absl::StatusOr / std::expected (not available in this toolchain's C++20).

#ifndef SRC_COMMON_RESULT_H_
#define SRC_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "src/common/status.h"

namespace trio {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit conversions from both T and Status keep call sites terse:
  //   Result<int> F() { if (bad) return InvalidArgument("..."); return 42; }
  Result(const T& value) : data_(value) {}           // NOLINT(google-explicit-constructor)
  Result(T&& value) : data_(std::move(value)) {}     // NOLINT(google-explicit-constructor)
  Result(const Status& status) : data_(status) {     // NOLINT(google-explicit-constructor)
    assert(!status.ok() && "Result constructed from OK status without a value");
  }
  Result(Status&& status) : data_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    if (ok()) {
      return value();
    }
    return fallback;
  }

 private:
  std::variant<T, Status> data_;
};

// TRIO_ASSIGN_OR_RETURN(auto x, Expr()): bind the value or propagate the error status.
#define TRIO_CONCAT_INNER_(a, b) a##b
#define TRIO_CONCAT_(a, b) TRIO_CONCAT_INNER_(a, b)
#define TRIO_ASSIGN_OR_RETURN(decl, expr)                       \
  auto TRIO_CONCAT_(_trio_result_, __LINE__) = (expr);          \
  if (!TRIO_CONCAT_(_trio_result_, __LINE__).ok()) {            \
    return TRIO_CONCAT_(_trio_result_, __LINE__).status();      \
  }                                                             \
  decl = std::move(TRIO_CONCAT_(_trio_result_, __LINE__)).value()

}  // namespace trio

#endif  // SRC_COMMON_RESULT_H_
