// Test-and-test-and-set spinlock with exponential backoff. Used where critical sections are a
// handful of instructions (per-bucket chains, logging tails, KVFS per-file lock).

#ifndef SRC_COMMON_SPINLOCK_H_
#define SRC_COMMON_SPINLOCK_H_

#include <atomic>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace trio {

inline void CpuRelax() {
#if defined(__x86_64__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    int backoff = 1;
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      // Spin read-only until the lock looks free, with bounded exponential backoff.
      while (locked_.load(std::memory_order_relaxed)) {
        for (int i = 0; i < backoff; ++i) {
          CpuRelax();
        }
        if (backoff < 1024) {
          backoff <<= 1;
        }
      }
    }
  }

  bool try_lock() { return !locked_.exchange(true, std::memory_order_acquire); }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace trio

#endif  // SRC_COMMON_SPINLOCK_H_
