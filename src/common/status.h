// Copyright (c) Trio reproduction authors.
// Lightweight error-code based status type. The codebase does not use exceptions;
// every fallible operation returns Status or Result<T> (see src/common/result.h).

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace trio {

// Error codes deliberately mirror the errno values a POSIX file system would surface,
// plus Trio-specific conditions (kCorrupted, kRevoked, kStale).
enum class ErrorCode : uint8_t {
  kOk = 0,
  kNotFound,         // ENOENT
  kExists,           // EEXIST
  kPermission,       // EACCES
  kInvalidArgument,  // EINVAL
  kNoSpace,          // ENOSPC
  kBusy,             // EBUSY: exclusive-writer conflict that cannot be resolved now
  kNotDir,           // ENOTDIR
  kIsDir,            // EISDIR
  kNotEmpty,         // ENOTEMPTY
  kTooLarge,         // EFBIG
  kNameTooLong,      // ENAMETOOLONG
  kBadFd,            // EBADF
  kIo,               // EIO
  kNotSupported,     // ENOTSUP
  kCorrupted,        // integrity verification failed
  kRevoked,          // lease revoked by the kernel controller
  kStale,            // auxiliary state stale; rebuild required
  kTimeout,          // corruption-fix deadline expired
  kInternal,         // invariant violation inside Trio itself
};

// Human readable name for an error code ("not_found", ...).
const char* ErrorCodeName(ErrorCode code);

// Status carries a code and, on error paths that merit it, a short message.
// The OK status is cheap to construct and copy (no allocation).
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  explicit Status(ErrorCode code) : code_(code) {}
  Status(ErrorCode code, std::string_view message) : code_(code), message_(message) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "not_found: no such entry 'foo'".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }
  bool Is(ErrorCode code) const { return code_ == code; }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

inline Status NotFound(std::string_view msg = "") { return Status(ErrorCode::kNotFound, msg); }
inline Status AlreadyExists(std::string_view msg = "") { return Status(ErrorCode::kExists, msg); }
inline Status PermissionDenied(std::string_view msg = "") {
  return Status(ErrorCode::kPermission, msg);
}
inline Status InvalidArgument(std::string_view msg = "") {
  return Status(ErrorCode::kInvalidArgument, msg);
}
inline Status NoSpace(std::string_view msg = "") { return Status(ErrorCode::kNoSpace, msg); }
inline Status Busy(std::string_view msg = "") { return Status(ErrorCode::kBusy, msg); }
inline Status NotDir(std::string_view msg = "") { return Status(ErrorCode::kNotDir, msg); }
inline Status IsDir(std::string_view msg = "") { return Status(ErrorCode::kIsDir, msg); }
inline Status NotEmpty(std::string_view msg = "") { return Status(ErrorCode::kNotEmpty, msg); }
inline Status TooLarge(std::string_view msg = "") { return Status(ErrorCode::kTooLarge, msg); }
inline Status NameTooLong(std::string_view msg = "") {
  return Status(ErrorCode::kNameTooLong, msg);
}
inline Status BadFd(std::string_view msg = "") { return Status(ErrorCode::kBadFd, msg); }
inline Status IoError(std::string_view msg = "") { return Status(ErrorCode::kIo, msg); }
inline Status NotSupported(std::string_view msg = "") {
  return Status(ErrorCode::kNotSupported, msg);
}
inline Status Corrupted(std::string_view msg = "") { return Status(ErrorCode::kCorrupted, msg); }
inline Status Revoked(std::string_view msg = "") { return Status(ErrorCode::kRevoked, msg); }
inline Status Stale(std::string_view msg = "") { return Status(ErrorCode::kStale, msg); }
inline Status Timeout(std::string_view msg = "") { return Status(ErrorCode::kTimeout, msg); }
inline Status Internal(std::string_view msg = "") { return Status(ErrorCode::kInternal, msg); }

#define TRIO_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::trio::Status _trio_status = (expr);     \
    if (!_trio_status.ok()) {                 \
      return _trio_status;                    \
    }                                         \
  } while (0)

}  // namespace trio

#endif  // SRC_COMMON_STATUS_H_
