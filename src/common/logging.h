// Minimal leveled logging + fatal assertions. Logging is off by default at DEBUG level;
// set TRIO_LOG_LEVEL=debug|info|warn|error in the environment to adjust.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace trio {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kFatal = 4 };

// Global minimum level; initialized from TRIO_LOG_LEVEL on first use.
LogLevel GlobalLogLevel();
void SetGlobalLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

struct LogMessageVoidify {
  // Lower precedence than << but higher than ?: so the macro below works.
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define TRIO_LOG_IS_ON(level) \
  (static_cast<int>(::trio::LogLevel::level) >= static_cast<int>(::trio::GlobalLogLevel()))

#define TRIO_LOG(level)                                                         \
  !TRIO_LOG_IS_ON(level)                                                        \
      ? (void)0                                                                 \
      : ::trio::internal::LogMessageVoidify() &                                 \
            ::trio::internal::LogMessage(::trio::LogLevel::level, __FILE__, __LINE__).stream()

// Fatal check, active in all build types: Trio is a file system; silently continuing on a
// broken internal invariant risks corrupting the pool.
#define TRIO_CHECK(cond)                                                              \
  (cond) ? (void)0                                                                    \
         : ::trio::internal::LogMessageVoidify() &                                    \
               ::trio::internal::LogMessage(::trio::LogLevel::kFatal, __FILE__, __LINE__) \
                   .stream()                                                          \
               << "CHECK failed: " #cond " "

#define TRIO_CHECK_OK(expr)                                                           \
  do {                                                                                \
    ::trio::Status _trio_chk = (expr);                                                \
    TRIO_CHECK(_trio_chk.ok()) << _trio_chk.ToString();                               \
  } while (0)

#ifdef NDEBUG
#define TRIO_DCHECK(cond) TRIO_CHECK(true)
#else
#define TRIO_DCHECK(cond) TRIO_CHECK(cond)
#endif

}  // namespace trio

#endif  // SRC_COMMON_LOGGING_H_
