// Fast deterministic PRNG (xoshiro256**) used by workload generators, corruption-injection
// scripts, and property tests. Determinism (given a seed) keeps every experiment replayable.

#ifndef SRC_COMMON_RANDOM_H_
#define SRC_COMMON_RANDOM_H_

#include <cstdint>

namespace trio {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound); bound must be nonzero.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / (1ull << 53)); }

  bool OneIn(uint64_t n) { return Below(n) == 0; }

  // Zipfian-ish skewed pick in [0, n): used by Filebench-style file selection.
  uint64_t Skewed(uint64_t n) {
    const uint64_t bits = Below(64);
    uint64_t v = Next() & ((bits >= 63) ? ~0ull : ((1ull << (bits + 1)) - 1));
    return v % n;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace trio

#endif  // SRC_COMMON_RANDOM_H_
