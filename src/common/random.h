// Fast deterministic PRNG (xoshiro256**) used by workload generators, corruption-injection
// scripts, and property tests. Determinism (given a seed) keeps every experiment replayable.

#ifndef SRC_COMMON_RANDOM_H_
#define SRC_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace trio {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound); bound must be nonzero.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / (1ull << 53)); }

  bool OneIn(uint64_t n) { return Below(n) == 0; }

  // Zipfian-ish skewed pick in [0, n): used by Filebench-style file selection.
  uint64_t Skewed(uint64_t n) {
    const uint64_t bits = Below(64);
    uint64_t v = Next() & ((bits >= 63) ? ~0ull : ((1ull << (bits + 1)) - 1));
    return v % n;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

// Proper Zipfian sampler over [0, n) with exponent `theta` (YCSB's default 0.99), using
// Gray et al.'s rejection-free inverse-CDF approximation. Unlike Rng::Skewed this has a
// calibrated skew: with theta=0.99 the hottest item draws ~10% of picks at n=1000 —
// the fleet workload's "a few hot shared files, a long warm tail" sharing pattern.
// Precomputes the harmonic sum once (O(n) ctor), O(1) per sample.
class Zipfian {
 public:
  Zipfian(uint64_t n, double theta = 0.99) : n_(n < 1 ? 1 : n), theta_(theta) {
    for (uint64_t i = 1; i <= n_; ++i) {
      zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
    }
    const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  uint64_t items() const { return n_; }

  // Rank 0 is the hottest item.
  uint64_t Next(Rng& rng) {
    const double u = rng.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    const uint64_t rank = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

 private:
  uint64_t n_;
  double theta_;
  double zetan_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

}  // namespace trio

#endif  // SRC_COMMON_RANDOM_H_
