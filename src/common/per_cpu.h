// Per-CPU sharded state (§4.5: "we make key data structures in the kernel controller and
// LibFS per-CPU, including the block allocators, inode allocators, file descriptor
// allocators, and journal"). In this single-process emulation a "CPU" is a shard selected
// by the calling thread's stable shard index, which spreads threads across shards exactly
// as per-CPU data spreads cores.

#ifndef SRC_COMMON_PER_CPU_H_
#define SRC_COMMON_PER_CPU_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

namespace trio {

// Stable, dense per-thread index assigned on first use.
inline size_t ThisThreadShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

template <typename T>
class PerCpu {
 public:
  explicit PerCpu(size_t shards = 16) {
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Padded>());
    }
  }

  T& Local() { return shards_[ThisThreadShardIndex() % shards_.size()]->value; }
  T& Shard(size_t i) { return shards_[i % shards_.size()]->value; }
  size_t NumShards() const { return shards_.size(); }

  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (auto& shard : shards_) {
      fn(shard->value);
    }
  }

 private:
  struct alignas(64) Padded {
    T value{};
  };
  std::vector<std::unique_ptr<Padded>> shards_;
};

}  // namespace trio

#endif  // SRC_COMMON_PER_CPU_H_
