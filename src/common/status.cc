#include "src/common/status.h"

namespace trio {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kExists:
      return "already_exists";
    case ErrorCode::kPermission:
      return "permission_denied";
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kNoSpace:
      return "no_space";
    case ErrorCode::kBusy:
      return "busy";
    case ErrorCode::kNotDir:
      return "not_a_directory";
    case ErrorCode::kIsDir:
      return "is_a_directory";
    case ErrorCode::kNotEmpty:
      return "not_empty";
    case ErrorCode::kTooLarge:
      return "too_large";
    case ErrorCode::kNameTooLong:
      return "name_too_long";
    case ErrorCode::kBadFd:
      return "bad_fd";
    case ErrorCode::kIo:
      return "io_error";
    case ErrorCode::kNotSupported:
      return "not_supported";
    case ErrorCode::kCorrupted:
      return "corrupted";
    case ErrorCode::kRevoked:
      return "revoked";
    case ErrorCode::kStale:
      return "stale";
    case ErrorCode::kTimeout:
      return "timeout";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out = ErrorCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace trio
