#include "src/common/logging.h"

#include <atomic>
#include <cstring>

namespace trio {
namespace {

LogLevel LevelFromEnv() {
  const char* env = std::getenv("TRIO_LOG_LEVEL");
  if (env == nullptr) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(env, "debug") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(env, "info") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(env, "error") == 0) {
    return LogLevel::kError;
  }
  return LogLevel::kWarn;
}

std::atomic<int>& LevelStorage() {
  static std::atomic<int> level{static_cast<int>(LevelFromEnv())};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogLevel GlobalLogLevel() { return static_cast<LogLevel>(LevelStorage().load()); }

void SetGlobalLogLevel(LogLevel level) { LevelStorage().store(static_cast<int>(level)); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  // Strip directories from __FILE__ for readability.
  const char* base = file_;
  for (const char* p = file_; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), base, line_,
               stream_.str().c_str());
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace trio
