// Segment-based file range lock (§4.2): one thread may append/truncate (whole-file write
// lock) while multiple threads write disjoint regions (per-segment write locks) and read
// concurrently (per-segment read locks). Segments are fixed 2 MiB spans of the file offset
// space. The segment-lock table is a two-level array whose blocks are installed atomically,
// so lookups never race with growth.

#ifndef SRC_COMMON_RANGE_LOCK_H_
#define SRC_COMMON_RANGE_LOCK_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/common/logging.h"
#include "src/common/rwlock.h"

namespace trio {

class RangeLock {
 public:
  static constexpr uint64_t kSegmentShift = 21;  // 2 MiB segments.
  static constexpr uint64_t kSegmentSize = 1ull << kSegmentShift;
  static constexpr size_t kBlockSize = 64;       // Segments per block.
  static constexpr size_t kMaxBlocks = 512;      // 512*64*2MiB = 64 GiB max offset.

  RangeLock() = default;
  ~RangeLock() {
    for (auto& slot : blocks_) {
      delete slot.load(std::memory_order_relaxed);
    }
  }
  RangeLock(const RangeLock&) = delete;
  RangeLock& operator=(const RangeLock&) = delete;

  void LockRange(uint64_t offset, uint64_t len, bool exclusive) {
    if (len == 0) {
      return;
    }
    const size_t first = SegmentOf(offset);
    const size_t last = SegmentOf(offset + len - 1);
    // Lock segments in ascending order: a global order that prevents deadlock between
    // concurrent overlapping range-lock holders.
    for (size_t i = first; i <= last; ++i) {
      RwLock& seg = Segment(i);
      if (exclusive) {
        seg.lock();
      } else {
        seg.lock_shared();
      }
    }
  }

  void UnlockRange(uint64_t offset, uint64_t len, bool exclusive) {
    if (len == 0) {
      return;
    }
    const size_t first = SegmentOf(offset);
    const size_t last = SegmentOf(offset + len - 1);
    for (size_t i = last + 1; i-- > first;) {
      RwLock& seg = Segment(i);
      if (exclusive) {
        seg.unlock();
      } else {
        seg.unlock_shared();
      }
    }
  }

 private:
  struct Block {
    RwLock locks[kBlockSize];
  };

  static size_t SegmentOf(uint64_t offset) { return offset >> kSegmentShift; }

  RwLock& Segment(size_t index) {
    const size_t block_index = index / kBlockSize;
    TRIO_CHECK(block_index < kMaxBlocks) << "file offset beyond range-lock capacity";
    std::atomic<Block*>& slot = blocks_[block_index];
    Block* block = slot.load(std::memory_order_acquire);
    if (block == nullptr) {
      auto fresh = std::make_unique<Block>();
      Block* expected = nullptr;
      if (slot.compare_exchange_strong(expected, fresh.get(), std::memory_order_acq_rel)) {
        block = fresh.release();
      } else {
        block = expected;  // Another thread installed first; ours is freed by unique_ptr.
      }
    }
    return block->locks[index % kBlockSize];
  }

  std::atomic<Block*> blocks_[kMaxBlocks] = {};
};

// Scoped range lock.
class RangeGuard {
 public:
  RangeGuard(RangeLock& lock, uint64_t offset, uint64_t len, bool exclusive)
      : lock_(lock), offset_(offset), len_(len), exclusive_(exclusive) {
    lock_.LockRange(offset_, len_, exclusive_);
  }
  ~RangeGuard() { lock_.UnlockRange(offset_, len_, exclusive_); }
  RangeGuard(const RangeGuard&) = delete;
  RangeGuard& operator=(const RangeGuard&) = delete;

 private:
  RangeLock& lock_;
  uint64_t offset_;
  uint64_t len_;
  bool exclusive_;
};

}  // namespace trio

#endif  // SRC_COMMON_RANGE_LOCK_H_
