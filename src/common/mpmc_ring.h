// Bounded multi-producer multi-consumer ring buffer (Vyukov-style sequence ring).
// Used as the per-application request ring between LibFS threads and delegation threads
// (§4.5): application threads enqueue access requests; delegation threads dequeue them.
//
// The kSpsc template flag selects the single-producer/single-consumer fast path: each
// side owns its position exclusively, so claiming a slot is a relaxed load + relaxed
// store instead of a CAS loop. The cell sequence numbers still carry the cross-thread
// hand-off (acquire on read, release on publish), so SPSC mode keeps the same
// correctness argument with none of the MPMC contention cost. The per-thread op
// submission rings (src/libfs/op_ring.h) are exactly this shape: one application thread
// produces, one drainer consumes.

#ifndef SRC_COMMON_MPMC_RING_H_
#define SRC_COMMON_MPMC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/common/logging.h"
#include "src/common/spinlock.h"

namespace trio {

template <typename T, bool kSpsc = false>
class MpmcRing {
 public:
  explicit MpmcRing(size_t capacity_pow2) : capacity_(capacity_pow2), mask_(capacity_pow2 - 1) {
    TRIO_CHECK((capacity_ & mask_) == 0) << "capacity must be a power of two";
    cells_ = std::make_unique<Cell[]>(capacity_);
    for (size_t i = 0; i < capacity_; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  // Non-blocking; returns false when full.
  bool TryPush(T value) {
    if constexpr (kSpsc) {
      // Single producer: head_ is ours alone. The cell's sequence (released by the
      // consumer when it frees the slot) is the only cross-thread synchronization.
      const size_t pos = head_.load(std::memory_order_relaxed);
      Cell* cell = &cells_[pos & mask_];
      if (cell->sequence.load(std::memory_order_acquire) != pos) {
        return false;  // Full.
      }
      cell->value = std::move(value);
      cell->sequence.store(pos + 1, std::memory_order_release);
      head_.store(pos + 1, std::memory_order_release);
      return true;
    }
    Cell* cell;
    size_t pos = head_.load(std::memory_order_relaxed);
    while (true) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t diff = static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // Full.
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  // Non-blocking; returns false when empty.
  bool TryPop(T& out) {
    if constexpr (kSpsc) {
      // Single consumer: tail_ is ours alone; acquire on the cell sequence pairs with
      // the producer's release publish.
      const size_t pos = tail_.load(std::memory_order_relaxed);
      Cell* cell = &cells_[pos & mask_];
      if (cell->sequence.load(std::memory_order_acquire) != pos + 1) {
        return false;  // Empty.
      }
      out = std::move(cell->value);
      cell->sequence.store(pos + capacity_, std::memory_order_release);
      tail_.store(pos + 1, std::memory_order_release);
      return true;
    }
    Cell* cell;
    size_t pos = tail_.load(std::memory_order_relaxed);
    while (true) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t diff = static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // Empty.
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->sequence.store(pos + capacity_, std::memory_order_release);
    return true;
  }

  // Spins until there is room. The delegation path needs bounded queues with backpressure.
  // Takes a copy so the value survives failed attempts (requests are small PODs).
  void Push(const T& value) {
    while (!TryPush(value)) {
      CpuRelax();
    }
  }

  // ---- Producer/consumer batch + wait hooks (delegation v2). ----

  // Pushes as many of items[0..count) as fit, in order; returns the number pushed.
  // Amortizes the per-call overhead when a submitter enqueues a whole batch.
  size_t TryPushBatch(const T* items, size_t count) {
    size_t pushed = 0;
    while (pushed < count && TryPush(items[pushed])) {
      ++pushed;
    }
    return pushed;
  }

  // Pops up to `max` items into out[0..); returns the number popped. Lets consumers
  // drain a burst per wakeup instead of round-tripping once per item.
  size_t TryPopBatch(T* out, size_t max) {
    size_t popped = 0;
    while (popped < max && TryPop(out[popped])) {
      ++popped;
    }
    return popped;
  }

  // Racy occupancy snapshot: consumers use it to decide whether to spin, steal, or park,
  // and producers use it to decide whether a burst warrants waking extra consumers.
  // Never use it as a substitute for TryPop's return value.
  size_t ApproxSize() const {
    const size_t head = head_.load(std::memory_order_acquire);
    const size_t tail = tail_.load(std::memory_order_acquire);
    return head > tail ? head - tail : 0;
  }

  bool ApproxEmpty() const { return ApproxSize() == 0; }

  size_t capacity() const { return capacity_; }

 private:
  struct Cell {
    std::atomic<size_t> sequence;
    T value;
  };

  const size_t capacity_;
  const size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
};

// Single-producer/single-consumer specialization: one owning thread per side, no CAS.
template <typename T>
using SpscRing = MpmcRing<T, /*kSpsc=*/true>;

}  // namespace trio

#endif  // SRC_COMMON_MPMC_RING_H_
