// String hashing for directory hash tables and the FPFS full-path index.
// FNV-1a with a 64->64 finalizer: fast, decent distribution, dependency-free.

#ifndef SRC_COMMON_HASH_H_
#define SRC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace trio {

inline uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  // Murmur-style finalizer to break up FNV's weak low bits (bucket index uses low bits).
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

inline uint64_t HashString(std::string_view s) { return HashBytes(s.data(), s.size()); }

// Combine two hashes (used to chain parent-ino with name hash).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
}

}  // namespace trio

#endif  // SRC_COMMON_HASH_H_
