// Injected clock. The kernel controller's leases and the corruption-fix timeout are
// time-driven; tests need to control time, so everything takes a Clock*.

#ifndef SRC_COMMON_CLOCK_H_
#define SRC_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace trio {

class Clock {
 public:
  virtual ~Clock() = default;
  // Monotonic nanoseconds since an arbitrary origin.
  virtual uint64_t NowNs() = 0;
};

class SystemClock : public Clock {
 public:
  static SystemClock* Instance() {
    static SystemClock clock;
    return &clock;
  }

  uint64_t NowNs() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

// Manually advanced clock for tests (lease expiry, fix timeouts).
class FakeClock : public Clock {
 public:
  uint64_t NowNs() override { return now_ns_.load(std::memory_order_relaxed); }
  void AdvanceNs(uint64_t delta) { now_ns_.fetch_add(delta, std::memory_order_relaxed); }
  void AdvanceMs(uint64_t delta) { AdvanceNs(delta * 1000000ull); }

 private:
  std::atomic<uint64_t> now_ns_{1};
};

}  // namespace trio

#endif  // SRC_COMMON_CLOCK_H_
