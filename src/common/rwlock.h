// Readers-writer locks.
//
// RwLock: a writer-preferring counter-based rwlock (the baseline primitive).
// BravoRwLock: BRAVO-style biased locking [Dice & Kogan, ATC'19], the technique ArckFS cites
// for its inode/range locks (§4.5). Readers publish themselves in a global visible-readers
// table and skip the underlying lock entirely on the fast path; writers flip the bias off,
// wait for the table to drain, and then take the underlying lock.

#ifndef SRC_COMMON_RWLOCK_H_
#define SRC_COMMON_RWLOCK_H_

#include <atomic>
#include <cstdint>

#include "src/common/spinlock.h"

namespace trio {

class RwLock {
 public:
  RwLock() = default;
  RwLock(const RwLock&) = delete;
  RwLock& operator=(const RwLock&) = delete;

  void lock_shared() {
    while (true) {
      int32_t s = state_.load(std::memory_order_relaxed);
      if (s >= 0 && !writer_waiting_.load(std::memory_order_relaxed)) {
        if (state_.compare_exchange_weak(s, s + 1, std::memory_order_acquire)) {
          return;
        }
      } else {
        CpuRelax();
      }
    }
  }

  bool try_lock_shared() {
    int32_t s = state_.load(std::memory_order_relaxed);
    return s >= 0 && !writer_waiting_.load(std::memory_order_relaxed) &&
           state_.compare_exchange_strong(s, s + 1, std::memory_order_acquire);
  }

  void unlock_shared() { state_.fetch_sub(1, std::memory_order_release); }

  void lock() {
    writer_waiting_.store(true, std::memory_order_relaxed);
    while (true) {
      int32_t expected = 0;
      if (state_.compare_exchange_weak(expected, -1, std::memory_order_acquire)) {
        writer_waiting_.store(false, std::memory_order_relaxed);
        return;
      }
      CpuRelax();
    }
  }

  bool try_lock() {
    int32_t expected = 0;
    return state_.compare_exchange_strong(expected, -1, std::memory_order_acquire);
  }

  void unlock() { state_.store(0, std::memory_order_release); }

 private:
  // >0: reader count; 0: free; -1: writer.
  std::atomic<int32_t> state_{0};
  std::atomic<bool> writer_waiting_{false};
};

// Global visible-readers table shared by all BravoRwLocks, as in the BRAVO paper.
// A slot holds the lock pointer while a fast-path reader is inside.
class BravoReaderTable {
 public:
  static constexpr int kSlots = 1024;

  static BravoReaderTable& Instance() {
    static BravoReaderTable table;
    return table;
  }

  // Mix the thread id and lock address into a slot index.
  static int SlotFor(const void* lock, uint64_t thread_token) {
    uint64_t h = reinterpret_cast<uint64_t>(lock) >> 4;
    h = h * 0x9e3779b97f4a7c15ull + thread_token * 0xff51afd7ed558ccdull;
    h ^= h >> 29;
    return static_cast<int>(h % kSlots);
  }

  std::atomic<const void*>& slot(int i) { return slots_[i]; }

 private:
  BravoReaderTable() {
    for (auto& s : slots_) {
      s.store(nullptr, std::memory_order_relaxed);
    }
  }
  std::atomic<const void*> slots_[kSlots];
};

class BravoRwLock {
 public:
  BravoRwLock() = default;
  BravoRwLock(const BravoRwLock&) = delete;
  BravoRwLock& operator=(const BravoRwLock&) = delete;

  void lock_shared() {
    if (bias_enabled_.load(std::memory_order_acquire)) {
      const int slot = BravoReaderTable::SlotFor(this, ThreadToken());
      auto& cell = BravoReaderTable::Instance().slot(slot);
      const void* expected = nullptr;
      if (cell.compare_exchange_strong(expected, this, std::memory_order_acquire)) {
        // Re-check bias after publishing (BRAVO's race window close).
        if (bias_enabled_.load(std::memory_order_acquire)) {
          reader_slot_hint_ = slot;
          return;  // Fast path: never touched underlying_.
        }
        cell.store(nullptr, std::memory_order_release);
      }
    }
    underlying_.lock_shared();
  }

  void unlock_shared() {
    const int slot = BravoReaderTable::SlotFor(this, ThreadToken());
    auto& cell = BravoReaderTable::Instance().slot(slot);
    if (cell.load(std::memory_order_relaxed) == this) {
      cell.store(nullptr, std::memory_order_release);
      return;
    }
    underlying_.unlock_shared();
  }

  void lock() {
    underlying_.lock();
    if (bias_enabled_.load(std::memory_order_relaxed)) {
      bias_enabled_.store(false, std::memory_order_release);
      // Wait for all fast-path readers of this lock to drain out of the global table.
      auto& table = BravoReaderTable::Instance();
      for (int i = 0; i < BravoReaderTable::kSlots; ++i) {
        while (table.slot(i).load(std::memory_order_acquire) == this) {
          CpuRelax();
        }
      }
      revocations_++;
    }
  }

  void unlock() {
    // Re-enable bias after a writer with simple hysteresis: frequent writers keep bias off.
    if (++writer_count_ % 8 == 0 || revocations_ < 2) {
      bias_enabled_.store(true, std::memory_order_release);
    }
    underlying_.unlock();
  }

 private:
  static uint64_t ThreadToken() {
    static std::atomic<uint64_t> next{1};
    thread_local uint64_t token = next.fetch_add(1);
    return token;
  }

  RwLock underlying_;
  std::atomic<bool> bias_enabled_{true};
  uint64_t writer_count_ = 0;   // Guarded by underlying_ writer side.
  uint64_t revocations_ = 0;    // Guarded by underlying_ writer side.
  int reader_slot_hint_ = -1;   // Debug aid only.
};

// RAII guards.
template <typename Lock>
class ReadGuard {
 public:
  explicit ReadGuard(Lock& lock) : lock_(&lock) { lock_->lock_shared(); }
  ~ReadGuard() {
    if (lock_ != nullptr) {
      lock_->unlock_shared();
    }
  }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;
  void Release() {
    lock_->unlock_shared();
    lock_ = nullptr;
  }

 private:
  Lock* lock_;
};

template <typename Lock>
class WriteGuard {
 public:
  explicit WriteGuard(Lock& lock) : lock_(&lock) { lock_->lock(); }
  ~WriteGuard() {
    if (lock_ != nullptr) {
      lock_->unlock();
    }
  }
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;
  void Release() {
    lock_->unlock();
    lock_ = nullptr;
  }

 private:
  Lock* lock_;
};

}  // namespace trio

#endif  // SRC_COMMON_RWLOCK_H_
