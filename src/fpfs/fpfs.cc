#include "src/fpfs/fpfs.h"

namespace trio {

std::string FpFs::JoinPath(const std::vector<std::string>& components) {
  std::string key;
  for (const std::string& component : components) {
    key.push_back('/');
    key.append(component);
  }
  return key.empty() ? "/" : key;
}

Result<ArckFs::NodePtr> FpFs::ResolveDir(const std::vector<std::string>& components) {
  const std::string key = JoinPath(components);
  {
    ReadGuard<RwLock> guard(cache_lock_);
    auto it = path_cache_.find(key);
    if (it != path_cache_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      // Mapping freshness is EnsureMapped's problem (the node may have been revoked);
      // the cache only removes the per-component walk.
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // Fall back to the base walk and populate every prefix on the way out.
  TRIO_ASSIGN_OR_RETURN(NodePtr node, ArckFs::ResolveDir(components));
  {
    WriteGuard<RwLock> guard(cache_lock_);
    path_cache_[key] = node;
  }
  return node;
}

Status FpFs::Rename(const std::string& from, const std::string& to) {
  Status status = ArckFs::Rename(from, to);
  if (status.ok()) {
    // Full-path indexing cannot cheaply re-key a moved prefix (§5: "FPFS cannot
    // efficiently handle rename"): drop everything.
    InvalidateAll();
  }
  return status;
}

Status FpFs::Rmdir(const std::string& path) {
  Status status = ArckFs::Rmdir(path);
  if (status.ok()) {
    InvalidateAll();
  }
  return status;
}

void FpFs::InvalidateAll() {
  WriteGuard<RwLock> guard(cache_lock_);
  path_cache_.clear();
}

size_t FpFs::PathCacheSize() const {
  ReadGuard<RwLock> guard(cache_lock_);
  return path_cache_.size();
}

}  // namespace trio
