// FPFS (§5): a LibFS customized for deep directory hierarchies using full-path indexing
// [45, 53]. It replaces the per-directory hash tables' role in path resolution with one
// global hash table mapping a full path string directly to the directory's node,
// eliminating the component-by-component traversal. Like KVFS, this is a pure
// auxiliary-state customization over the unchanged ArckFS core state.
//
// Trade-off inherited from full-path indexing: rename (and rmdir of populated paths)
// invalidates prefixes; FPFS simply drops the whole cache, so rename-heavy workloads are
// a poor fit — exactly the paper's point that customizations are workload-specific.

#ifndef SRC_FPFS_FPFS_H_
#define SRC_FPFS_FPFS_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rwlock.h"
#include "src/libfs/arckfs.h"

namespace trio {

class FpFs : public ArckFs {
 public:
  using ArckFs::ArckFs;

  std::string Name() const override { return "FPFS"; }

  // Cache-invalidating operations.
  Status Rename(const std::string& from, const std::string& to) override;
  Status Rmdir(const std::string& path) override;

  size_t PathCacheSize() const;
  uint64_t path_cache_hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t path_cache_misses() const { return misses_.load(std::memory_order_relaxed); }

 protected:
  // The customization: resolve the joined path through the global table; fall back to the
  // component walk (populating the table) on miss.
  Result<NodePtr> ResolveDir(const std::vector<std::string>& components) override;

 private:
  static std::string JoinPath(const std::vector<std::string>& components);
  void InvalidateAll();

  mutable RwLock cache_lock_;
  std::unordered_map<std::string, NodePtr> path_cache_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace trio

#endif  // SRC_FPFS_FPFS_H_
