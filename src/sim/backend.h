// Simulated slow storage backend (SSD/disk) behind the NVM absorb tier.
//
// The NVM pool stays the durable front tier every sync lands in; the kernel's digestion
// service (src/kernel/digestion.h) migrates cold data pages here in the background and
// the LibFS promote cache faults them back on access. The backend models the capacity
// tier only — page-granular, slot-addressed, orders of magnitude slower than NVM (the
// cost model busy-waits per page the way NvmCostModel busy-waits per fence).
//
// Crash-consistency contract (what makes digestion recoverable with a single fence):
//   * Slots are WRITE-ONCE and numbered monotonically from 1. A slot's bytes never
//     change after WritePage returns, and Free() drops only the owner record — the data
//     is retained forever (a simulated disk is big). Because digestion writes the
//     backend page BEFORE persisting the tier entry that references it, any NVM image a
//     crash can materialize refers only to slots whose final backend contents equal
//     what the entry expects: the pair {materialized NVM image, final backend state} is
//     consistent at every fence point, with no backend journaling.
//   * The owner table is volatile bookkeeping rebuilt at mount (BeginRebuild + Adopt
//     while the controller rescans the tree), exactly like the controller's own page
//     ownership table. Double-adoption is the backend-tier analogue of a double-
//     referenced NVM page and fails loudly.
//
// Thread safety: all methods are safe to call concurrently (digestion thread, promote
// reads from many LibFS threads, reconcile-time frees). The modeled latency is paid
// outside the lock so slow "media" does not serialize unrelated callers.

#ifndef SRC_SIM_BACKEND_H_
#define SRC_SIM_BACKEND_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/core/format.h"
#include "src/obs/stats.h"

namespace trio {

// Modeled per-page access costs. Defaults are zero (no busy-wait) so correctness tests
// pay nothing; benches enable SSD-flavoured figures to make the tier gap observable on
// DRAM emulation, mirroring NvmCostModel.
struct BackendCostModel {
  uint32_t read_ns_per_page = 0;
  uint32_t write_ns_per_page = 0;

  bool enabled() const { return read_ns_per_page != 0 || write_ns_per_page != 0; }
};

// Registered under layer "tier" (summed with the kernel/LibFS tier counters).
struct BackendStats {
  obs::Counter backend_pages_written;
  obs::Counter backend_pages_read;
  obs::Counter backend_bytes_written;
  obs::Counter backend_bytes_read;

  BackendStats()
      : reg_("tier", {{"backend_pages_written", &backend_pages_written},
                      {"backend_pages_read", &backend_pages_read},
                      {"backend_bytes_written", &backend_bytes_written},
                      {"backend_bytes_read", &backend_bytes_read}}) {}

 private:
  obs::ScopedRegistration reg_;
};

class SlowBackend {
 public:
  explicit SlowBackend(BackendCostModel cost_model = {}) : cost_model_(cost_model) {}
  SlowBackend(const SlowBackend&) = delete;
  SlowBackend& operator=(const SlowBackend&) = delete;

  // Writes one kPageSize page and returns its freshly minted slot number (>= 1).
  // The slot is immediately owned by `owner`.
  uint64_t WritePage(const void* src, Ino owner);

  // Copies slot contents into `dst` (kPageSize bytes). Fails on a never-written slot.
  Status ReadPage(uint64_t slot, void* dst) const;

  // Drops `owner`'s claim on the slot. The data itself is retained (write-once media
  // contract above). Fails if the slot is not currently owned by `owner`.
  Status Free(uint64_t slot, Ino owner);

  // Current owner of a slot, or kInvalidIno if unowned/unknown.
  Ino OwnerOf(uint64_t slot) const;

  // Mount-time rebuild: forget all owners, then re-adopt each slot the tree rescan
  // finds referenced. Adopt fails on a slot that was never written (a forged mapping)
  // or already adopted in this rebuild (a cross-file double reference).
  void BeginRebuild();
  Status Adopt(uint64_t slot, Ino owner);

  // Snapshot of the owner table, for fsck's cross-tier double-reference check (G7).
  std::unordered_map<uint64_t, Ino> SlotOwners() const;

  size_t OwnedSlotCount() const;
  const BackendCostModel& cost_model() const { return cost_model_; }
  void set_cost_model(BackendCostModel model) { cost_model_ = model; }
  BackendStats& stats() { return stats_; }

 private:
  BackendCostModel cost_model_;
  mutable BackendStats stats_;  // Counters bump inside const reads.

  mutable std::mutex mu_;
  uint64_t next_slot_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<char[]>> data_;  // Write-once, never erased.
  std::unordered_map<uint64_t, Ino> owners_;
};

}  // namespace trio

#endif  // SRC_SIM_BACKEND_H_
