// Per-system operation profiles — the calibration layer between the evaluated file
// systems and the analytic model. Constants are fitted to the paper's single-thread
// results (Fig. 5) and the structural analysis in §6; EXPERIMENTS.md records the
// regenerated curves against each figure.
//
// System names accepted everywhere: "ArckFS", "ArckFS-nd", "OdinFS", "ext4",
// "ext4-RAID0", "PMFS", "NOVA", "WineFS", "SplitFS", "Strata", "KVFS", "FPFS".

#ifndef SRC_SIM_PROFILES_H_
#define SRC_SIM_PROFILES_H_

#include <string>
#include <vector>

#include "src/sim/model.h"

namespace trio {
namespace sim {

enum class MetaKind {
  kOpen,        // open+close in five-depth dirs (Fig. 5c, MRP*).
  kCreate,      // create an empty file (Fig. 5d, MWC*).
  kUnlink,      // delete an empty file (Fig. 5d, MWU*).
  kRename,      // MWR*.
  kReaddir,     // enumerate a directory (MRD*).
  kTruncate,    // reduce file size by 4K (DWTL).
  kStat,
};

// Data operation (read/write of `bytes`) on `fs`.
OpProfile DataOp(const std::string& fs, double bytes, bool is_read);

// Metadata operation. `shared` = all workload threads target the same directory/file
// (the FxMark -M/-H variants), which engages the per-directory serial sections.
OpProfile MetaOp(const std::string& fs, MetaKind kind, bool shared);

// How many NUMA nodes the system actually uses when the testbed exposes
// `machine_nodes` (§6.1: only ArckFS, OdinFS, and ext4-RAID0 span all eight).
int NodesUsed(const std::string& fs, int machine_nodes);

// All systems plotted in the data-path figures.
std::vector<std::string> DataFigureSystems();
// All systems plotted in the metadata/FxMark figures.
std::vector<std::string> MetaFigureSystems();

}  // namespace sim
}  // namespace trio

#endif  // SRC_SIM_PROFILES_H_
