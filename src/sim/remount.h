// Shared remount-and-audit harness used by the crash-point and schedule explorers: boot a
// materialized NVM image (mount + journal replay + recovery) and walk the recovered tree
// through the POSIX oracle. Factored out so both explorers check recovered images the same
// way — a divergence between them would make their verdicts incomparable.

#ifndef SRC_SIM_REMOUNT_H_
#define SRC_SIM_REMOUNT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/libfs/arckfs.h"

namespace trio {

// Path -> "D" for directories, "F:<content>" for files. Ordered so two snapshots compare
// with operator==.
using TreeSnapshot = std::map<std::string, std::string>;

struct RemountedFs {
  std::unique_ptr<NvmPool> pool;
  std::unique_ptr<KernelController> kernel;
  std::unique_ptr<ArckFs> fs;
  Status status;  // Mount / recovery outcome.
  bool needed_recovery = false;
};

// Boots `image` into a fresh pool of `pool_pages`: mount, register one default-config
// ArckFs with `journals` to replay, and run recovery if the image is unclean. With
// `record_recovery`, fence recording covers the journal replay and RunRecovery (the pool
// must be kTracking). `kernel_config` applies to the recovery kernel — explorers pass the
// default so recovered images must be readable without any workload's special modes.
RemountedFs BootImage(const char* image, size_t pool_pages, NvmMode mode,
                      const std::vector<PageNumber>& journals, bool record_recovery,
                      const KernelConfig& kernel_config = {});

// Recursive oracle walk: every directory lists, every file stats and reads back its full
// size. Any error means the tree is not internally consistent.
Status WalkTree(ArckFs& fs, const std::string& path, TreeSnapshot& out);

}  // namespace trio

#endif  // SRC_SIM_REMOUNT_H_
