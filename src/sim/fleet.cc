#include "src/sim/fleet.h"

#include <algorithm>

namespace trio {
namespace sim {

FleetPoint ExtrapolateFleet(const MachineModel& machine, const FleetProfile& profile,
                            uint64_t clients) {
  FleetPoint point;
  point.clients = clients;
  if (clients == 0) {
    point.bound = "client";
    return point;
  }

  const double hit = std::clamp(profile.fast_hit_rate, 0.0, 1.0);
  const double mean_lookup_us =
      hit * profile.fast_lookup_us + (1.0 - hit) * profile.locked_lookup_us;

  // cpu cap: only `cores` clients execute concurrently; the rest queue.
  const double runnable =
      std::min(static_cast<double>(clients), static_cast<double>(machine.cores));
  const double cpu_cap = runnable / std::max(mean_lookup_us, 1e-9) * 1e6;

  // shard-serial cap: the locked fraction of the op stream funnels through S serial
  // sections. With the seqlock fast path only (1 - hit) of lookups ever touch a mutex.
  const int shards = std::max(1, profile.shards);
  const double serial_per_op_us = (1.0 - hit) * profile.shard_serial_us;
  const double shard_cap = serial_per_op_us <= 0.0
                               ? 1e18
                               : static_cast<double>(shards) / serial_per_op_us * 1e6;

  // client cap: closed-loop clients with think time cannot exceed 1/think each.
  const double client_cap =
      profile.client_think_us <= 0.0
          ? 1e18
          : static_cast<double>(clients) / profile.client_think_us * 1e6;

  point.ops_per_sec = std::min({cpu_cap, shard_cap, client_cap});
  point.bound = point.ops_per_sec == cpu_cap
                    ? "cpu"
                    : (point.ops_per_sec == shard_cap ? "shard-serial" : "client");
  return point;
}

}  // namespace sim
}  // namespace trio
