// Fleet-scale extrapolation for the sharded kernel controller. bench_fleet measures
// per-shard costs on the emulated testbed (grant-lookup fast-path latency, shard-locked
// fallback latency, fast-hit rate, and time under a shard mutex per locked operation);
// this model projects those costs to client counts far beyond what one process can host
// — the "does the controller get out of the way at fleet scale?" question behind the
// shard refactor.
//
// Throughput of C clients over S shards is the minimum of three caps:
//
//   * cpu:          at most `cores` clients make progress at once, each paying the
//                   hit-rate-weighted mean lookup latency;
//   * shard-serial: the locked fraction of lookups serializes per shard; S shards give
//                   S independent serial sections (Amdahl, per shard — the term the
//                   one-big-mutex design capped at S = 1);
//   * client-side:  a client cannot issue faster than one op per `client_think_us`.
//
// Like sim::Solve this is analytic and deterministic: the inputs come from measured
// counters, the projection is arithmetic, so CI can gate on the shape of the curve.

#ifndef SRC_SIM_FLEET_H_
#define SRC_SIM_FLEET_H_

#include <cstdint>

#include "src/sim/machine.h"

namespace trio {
namespace sim {

struct FleetProfile {
  double fast_lookup_us = 0.05;   // Lock-free grant-lookup fast path.
  double locked_lookup_us = 0.5;  // Shard-locked fallback (miss, expiry, first touch).
  double fast_hit_rate = 0.95;    // grant_fast_hits / (grant_fast_hits + misses).
  double shard_serial_us = 0.4;   // Time under one shard mutex per locked lookup.
  int shards = 8;
  // Mean think time between a client's operations. Fleet clients are applications, not
  // closed-loop benchmark threads; 0 models the worst case (every client always ready).
  double client_think_us = 0.0;
};

struct FleetPoint {
  uint64_t clients = 0;
  double ops_per_sec = 0;
  const char* bound = "";  // "cpu" | "shard-serial" | "client".
};

FleetPoint ExtrapolateFleet(const MachineModel& machine, const FleetProfile& profile,
                            uint64_t clients);

}  // namespace sim
}  // namespace trio

#endif  // SRC_SIM_FLEET_H_
