#include "src/sim/backend.h"

#include <chrono>
#include <cstring>
#include <utility>

namespace trio {

namespace {
// Same busy-wait the NVM cost model uses: sleeping would let the OS batch wakeups and
// erase exactly the latency the model exists to expose.
void SpinDelayNs(uint64_t ns) {
  if (ns == 0) {
    return;
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
  }
}
}  // namespace

uint64_t SlowBackend::WritePage(const void* src, Ino owner) {
  auto copy = std::make_unique<char[]>(kPageSize);
  std::memcpy(copy.get(), src, kPageSize);
  uint64_t slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    slot = next_slot_++;
    data_.emplace(slot, std::move(copy));
    owners_.emplace(slot, owner);
  }
  stats_.backend_pages_written.fetch_add(1, std::memory_order_relaxed);
  stats_.backend_bytes_written.fetch_add(kPageSize, std::memory_order_relaxed);
  SpinDelayNs(cost_model_.write_ns_per_page);
  return slot;
}

Status SlowBackend::ReadPage(uint64_t slot, void* dst) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = data_.find(slot);
    if (it == data_.end()) {
      return NotFound("backend slot was never written");
    }
    std::memcpy(dst, it->second.get(), kPageSize);
  }
  stats_.backend_pages_read.fetch_add(1, std::memory_order_relaxed);
  stats_.backend_bytes_read.fetch_add(kPageSize, std::memory_order_relaxed);
  SpinDelayNs(cost_model_.read_ns_per_page);
  return OkStatus();
}

Status SlowBackend::Free(uint64_t slot, Ino owner) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = owners_.find(slot);
  if (it == owners_.end() || it->second != owner) {
    return InvalidArgument("backend slot not owned by caller");
  }
  owners_.erase(it);  // Data stays: write-once media contract.
  return OkStatus();
}

Ino SlowBackend::OwnerOf(uint64_t slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = owners_.find(slot);
  return it == owners_.end() ? kInvalidIno : it->second;
}

void SlowBackend::BeginRebuild() {
  std::lock_guard<std::mutex> lock(mu_);
  owners_.clear();
}

Status SlowBackend::Adopt(uint64_t slot, Ino owner) {
  std::lock_guard<std::mutex> lock(mu_);
  if (data_.find(slot) == data_.end()) {
    return Corrupted("tier entry references a backend slot that was never written");
  }
  auto [it, inserted] = owners_.emplace(slot, owner);
  if (!inserted && it->second != owner) {
    return Corrupted("backend slot referenced by two files");
  }
  if (!inserted) {
    return Corrupted("backend slot referenced twice");
  }
  return OkStatus();
}

std::unordered_map<uint64_t, Ino> SlowBackend::SlotOwners() const {
  std::lock_guard<std::mutex> lock(mu_);
  return owners_;
}

size_t SlowBackend::OwnedSlotCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return owners_.size();
}

}  // namespace trio
