// ScheduleExplorer: seeded PCT-style exploration of two LibFS tenants racing on shared
// state — the multi-tenant half of FaultSim. Each tenant is a scripted sequence of
// file-system steps; a schedule is one interleaving of the two scripts, executed
// cooperatively (single-threaded, deterministic, replayable from its bit-vector). For
// every explored schedule the explorer:
//
//   1. runs the interleaving on a fresh kTracking pool with fence recording — lease
//      revocations, verify-on-transfer, checkpoint/rollback all fire exactly as the
//      schedule dictates;
//   2. tears both tenants down (final ownership transfers + verification), then fscks the
//      LIVE image — cross-tenant damage that survives reconciliation shows up here;
//   3. materializes a crash at every recorded fence (subject to max_crash_points),
//      remounts, recovers with both tenants' journals, and requires fsck-clean plus a
//      passing oracle walk — damage that only a crash makes visible shows up here.
//
// The two no-preemption baselines (all of A then B, all of B then A) are always explored
// first: a failure there is a sequential bug, not an interleaving bug, and the explorer
// reports it as such. A failing interleaving is minimized — trailing steps dropped, then
// preemptions greedily removed — while preserving the failure, so the report carries a
// small replayable schedule instead of "seed 17 failed somewhere".

#ifndef SRC_SIM_SCHEDULE_EXPLORER_H_
#define SRC_SIM_SCHEDULE_EXPLORER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/sim/remount.h"

namespace trio {

// One tenant's script: steps applied in order, each a complete file-system interaction
// (the schedule decides only the interleaving ORDER, never splits a step). Steps must
// tolerate lease revocation between any two of them.
using TenantStep = std::function<void(ArckFs&)>;
using TenantScript = std::vector<TenantStep>;

// An interleaving: 0 = next step of tenant A, 1 = next step of tenant B. Always contains
// exactly |A| zeros and |B| ones (minimized schedules may contain fewer).
using Schedule = std::vector<uint8_t>;

struct ScheduleExplorerOptions {
  size_t pool_pages = 2048;
  uint64_t max_inodes = 1024;
  // Random interleavings explored beyond the two baselines.
  size_t schedules = 16;
  // PCT-style bound: at most this many context switches per generated schedule. Low
  // bounds find most real races (PCT's insight) while keeping schedules minimizable.
  size_t max_preemptions = 4;
  uint64_t seed = 2026;
  // Crash points per schedule: 0 = every fence; otherwise an evenly spaced sample
  // (first/last kept, truncation counted in stats().sampled_out).
  size_t max_crash_points = 0;
  // Kernel config for the WORKLOAD phase (e.g. canary_leak_on_contended_transfer for the
  // planted-bug acceptance test). guard_callbacks is forced off during schedule execution
  // so revocations run inline on the stepping thread — fully deterministic. Recovery
  // boots always use a default config.
  KernelConfig kernel_config;
  // ArckFs configs for the two tenants (uid/gid, page_batch, ...).
  ArckFsConfig tenant_a;
  ArckFsConfig tenant_b;
  // Stop after this many failing schedules.
  size_t max_failing_schedules = 1;
  bool minimize = true;  // Shrink the first failing schedule.
};

struct ScheduleExplorerStats {
  std::atomic<uint64_t> schedules_explored{0};
  std::atomic<uint64_t> steps_executed{0};
  std::atomic<uint64_t> fences_recorded{0};
  std::atomic<uint64_t> crash_points_explored{0};
  std::atomic<uint64_t> remounts{0};
  std::atomic<uint64_t> fsck_runs{0};
  std::atomic<uint64_t> live_fsck_failures{0};
  std::atomic<uint64_t> crash_fsck_failures{0};
  std::atomic<uint64_t> sampled_out{0};
  std::atomic<uint64_t> minimization_replays{0};
};

struct ScheduleFailure {
  Schedule schedule;        // The failing interleaving (minimized when minimize is on).
  size_t fence = SIZE_MAX;  // Earliest failing crash fence; SIZE_MAX = live-image failure.
  bool baseline = false;    // True: a no-preemption schedule failed (sequential bug).
  std::string what;
};

struct ScheduleExplorerReport {
  size_t schedules_explored = 0;
  std::vector<ScheduleFailure> failures;
  bool Clean() const { return failures.empty(); }
};

class ScheduleExplorer {
 public:
  explicit ScheduleExplorer(ScheduleExplorerOptions options = {});

  // Explores baselines + `schedules` seeded interleavings of the two scripts. Harness
  // errors surface as a status; failing schedules go in the report.
  Result<ScheduleExplorerReport> Explore(const TenantScript& a, const TenantScript& b);

  // Re-runs one schedule end to end (live fsck + full crash sweep) and returns its
  // failure verdict: fence SIZE_MAX-1 means "passed". Public so a failure report is
  // replayable from just the schedule bit-vector.
  ScheduleFailure Replay(const TenantScript& a, const TenantScript& b,
                         const Schedule& schedule);

  // The deterministic schedule generator (exposed for replay-from-seed: the i-th random
  // schedule of a given seed is always the same interleaving).
  Schedule GenerateSchedule(size_t index, size_t steps_a, size_t steps_b) const;

  const ScheduleExplorerStats& stats() const { return stats_; }

 private:
  struct RunOutcome {
    bool failed = false;
    size_t fence = SIZE_MAX;
    std::string what;
  };
  RunOutcome RunSchedule(const TenantScript& a, const TenantScript& b,
                         const Schedule& schedule);
  Schedule Minimize(const TenantScript& a, const TenantScript& b, Schedule failing);

  ScheduleExplorerOptions options_;
  ScheduleExplorerStats stats_;
};

// True when the schedule executes with no context switch (one tenant fully drains before
// the other starts) — the sequential baselines.
bool IsSequentialSchedule(const Schedule& schedule);

}  // namespace trio

#endif  // SRC_SIM_SCHEDULE_EXPLORER_H_
