#include "src/sim/profiles.h"

#include "src/common/logging.h"

namespace trio {
namespace sim {

namespace {

// Software-path cost table, microseconds per op, uncontended, excluding NVM transfer and
// traps (added by the builders below). Calibrated to Fig. 5:
//   - 4K data:   SplitFS/ArckFS-nd beat NOVA by 9-31% (direct access);
//                ArckFS pays the delegation round trip and lands ~6% above NOVA.
//   - open:      ArckFS 1.6x-5.6x faster (five-depth path walk in userspace hash tables).
//   - create:    ArckFS 3.3x-5.3x faster (NOVA spends >=42% in VFS; Strata >=44.5% in
//                digestion).
//   - delete:    ArckFS 7.4x-9.4x faster.
struct SwCosts {
  double data4k;    // Software path of a 4 KiB data op.
  double data_big;  // Per-op software overhead of a 2 MiB op (excl. copy).
  double open;      // open+close through a five-depth path.
  double create;
  double unlink;
  double rename;
  double readdir;   // Per enumerated directory (64 entries).
  double truncate;
  double stat;
  double traps_data;  // Kernel crossings per data op.
  double traps_meta;  // Kernel crossings per metadata op.
};

SwCosts CostsFor(const std::string& fs) {
  // ArckFS: everything in userspace; efficient hash-table directories (§4.2).
  if (fs == "ArckFS" || fs == "ArckFS-nd" || fs == "FPFS" || fs == "KVFS") {
    SwCosts c{0.85, 1.2, 0.27, 0.92, 1.35, 2.2, 3.0, 0.16, 0.22, 0, 0};
    if (fs == "FPFS") {
      c.open = 0.12;  // Full-path indexing skips the per-component walk (§5).
      c.stat = 0.10;
    }
    if (fs == "KVFS") {
      c.open = 0.0;   // No file descriptors at all (§5).
      c.data4k = 0.35;  // Fixed-array index, single spinlock.
      c.create = 0.80;
    }
    return c;
  }
  if (fs == "OdinFS") {
    // Kernel FS: VFS path + per-inode log, data via delegation.
    return SwCosts{1.1, 1.6, 0.95, 2.9, 9.5, 11.0, 20.0, 0.7, 0.8, 1, 1};
  }
  if (fs == "NOVA") {
    return SwCosts{1.0, 1.5, 0.92, 2.95, 10.0, 11.5, 21.0, 0.7, 0.8, 1, 1};
  }
  if (fs == "WineFS") {
    return SwCosts{1.0, 1.5, 0.98, 3.1, 10.5, 12.0, 22.0, 0.75, 0.8, 1, 1};
  }
  if (fs == "PMFS") {
    return SwCosts{1.15, 1.7, 1.05, 3.6, 11.0, 13.0, 24.0, 0.85, 0.9, 1, 1};
  }
  if (fs == "ext4" || fs == "ext4-RAID0") {
    return SwCosts{1.5, 2.2, 1.25, 4.6, 12.0, 15.0, 26.0, 1.1, 1.0, 1, 1};
  }
  if (fs == "SplitFS") {
    // Data in userspace (ext4-grade metadata path).
    return SwCosts{0.8, 1.1, 1.3, 4.8, 12.5, 15.5, 26.0, 1.1, 1.0, 0, 1};
  }
  if (fs == "Strata") {
    // Userspace log softens open; creates/deletes pay digestion.
    return SwCosts{0.8, 1.4, 0.42, 4.3, 12.8, 15.0, 25.0, 0.9, 0.6, 0, 0};
  }
  TRIO_CHECK(false) << "unknown system " << fs;
  return {};
}

bool IsArck(const std::string& fs) {
  return fs == "ArckFS" || fs == "ArckFS-nd" || fs == "FPFS" || fs == "KVFS";
}

}  // namespace

int NodesUsed(const std::string& fs, int machine_nodes) {
  // §6.1: ArckFS and OdinFS stripe across all NVM nodes; ext4 can ride a RAID0 of them.
  // The other kernel file systems mount a single node's pool.
  if (fs == "ArckFS" || fs == "OdinFS" || fs == "ext4-RAID0" || fs == "KVFS" ||
      fs == "FPFS") {
    return machine_nodes;
  }
  return 1;
}

OpProfile DataOp(const std::string& fs, double bytes, bool is_read) {
  const SwCosts costs = CostsFor(fs);
  OpProfile op;
  op.cpu_us = bytes >= (1 << 20) ? costs.data_big : costs.data4k;
  op.traps = costs.traps_data;
  if (is_read) {
    op.read_bytes = bytes;
  } else {
    op.write_bytes = bytes;
  }

  if (fs == "ArckFS" || fs == "KVFS" || fs == "FPFS") {
    // Opportunistic delegation thresholds (§4.5): reads >= 32 KiB, writes >= 256 B.
    op.delegated_data = (is_read && bytes >= 32 * 1024) || (!is_read && bytes >= 256);
    op.striped = true;
  } else if (fs == "OdinFS") {
    op.delegated_data = (is_read && bytes >= 32 * 1024) || (!is_read && bytes >= 256);
    op.striped = true;
    op.service_extra_us = 0.25;  // Kernel-side completion bookkeeping ArckFS avoids.
  } else if (fs == "ext4-RAID0") {
    op.striped = true;  // dm-stripe spreads accesses but threads still hit NVM directly.
    if (bytes < (1 << 20)) {
      // §6.3: "ext4(RAID0) does not scale 4KB-read due to a scalability bottleneck" —
      // the block layer's per-bio work serializes small requests.
      op.global_serial_us = 0.2;
    }
  }

  // Journal/log write amplification for writes.
  if (!is_read) {
    if (fs == "ext4" || fs == "ext4-RAID0" || fs == "SplitFS") {
      op.journal_bytes = 512;  // jbd2 metadata blocks, amortized.
      if (fs == "ext4" || fs == "ext4-RAID0") {
        op.global_serial_us = 0.25;  // jbd2 transaction serialization.
      }
    } else if (fs == "Strata") {
      op.journal_bytes = bytes + 64;  // Everything is written to the log first.
      op.global_serial_us = 0.8;      // Digestion.
    } else if (fs == "NOVA" || fs == "WineFS" || fs == "OdinFS") {
      op.journal_bytes = 128;  // Per-inode/per-CPU log entries.
    }
  }
  return op;
}

OpProfile MetaOp(const std::string& fs, MetaKind kind, bool shared) {
  const SwCosts costs = CostsFor(fs);
  OpProfile op;
  op.traps = costs.traps_meta;

  switch (kind) {
    case MetaKind::kOpen:
      op.cpu_us = costs.open;
      op.read_bytes = 512;  // Path-walk reads.
      if (!IsArck(fs)) {
        // The VFS scales private opens but serializes same-directory / same-file opens on
        // the dcache and inode locks (§6.4 / FxMark).
        op.shared_serial_us = shared ? 0.35 : 0;
      } else {
        op.shared_serial_us = shared ? 0.004 : 0;  // Per-bucket reader locks.
      }
      break;
    case MetaKind::kStat:
      op.cpu_us = costs.stat;
      op.read_bytes = 192;
      op.shared_serial_us = !IsArck(fs) && shared ? 0.3 : 0;
      break;
    case MetaKind::kReaddir:
      op.cpu_us = costs.readdir;
      op.read_bytes = 4096;
      op.shared_serial_us = !IsArck(fs) && shared ? costs.readdir : 0;
      break;
    case MetaKind::kCreate:
      op.cpu_us = costs.create;
      op.write_bytes = 256;  // Dirent + inode lines.
      if (IsArck(fs)) {
        // §6.4: MWCL does not scale linearly — excessive concurrent small NVM writes
        // (not delegated). Ceiling calibrated to Fig. 7 (saturates ~4 ops/us).
        op.self_cap_ops_per_us = shared ? 3.0 : 4.0;
        op.shared_serial_us = shared ? 0.08 : 0;  // Tail/index-tail contention (§6.4).
      } else {
        // Directory inode lock + allocator + journal serialization.
        op.global_serial_us = fs == "ext4" || fs == "ext4-RAID0" || fs == "SplitFS"
                                  ? 3.0
                                  : (fs == "Strata" ? 3.4 : 2.4);
        if (shared) {
          op.shared_serial_us = op.cpu_us;  // Whole op under the directory lock.
        }
      }
      break;
    case MetaKind::kUnlink:
      op.cpu_us = costs.unlink;
      op.write_bytes = 192;
      if (IsArck(fs)) {
        op.self_cap_ops_per_us = shared ? 6.0 : 20.0;  // Fig. 7 MWUL/MWUM ceilings.
        op.shared_serial_us = shared ? 0.05 : 0;
      } else {
        op.global_serial_us = 2.2;
        if (shared) {
          op.shared_serial_us = op.cpu_us;
        }
      }
      break;
    case MetaKind::kRename:
      op.cpu_us = costs.rename;
      op.write_bytes = 384;  // Two dirents + journal.
      op.journal_bytes = 256;
      if (IsArck(fs)) {
        op.self_cap_ops_per_us = shared ? 3.5 : 20.0;  // Fig. 7 MWRL/MWRM.
        op.shared_serial_us = shared ? 0.1 : 0;
      } else {
        // The kernel's global rename lock serializes everything (§6.4).
        op.global_serial_us = op.cpu_us * 0.8;
        if (shared) {
          op.shared_serial_us = op.cpu_us;
        }
      }
      break;
    case MetaKind::kTruncate:
      op.cpu_us = costs.truncate;
      op.write_bytes = 8;  // One atomic size commit — why DWTL scales linearly (§6.4).
      if (!IsArck(fs)) {
        op.global_serial_us = fs == "Strata" ? 1.2 : 0;
        op.shared_serial_us = shared ? 0.6 : 0;
      }
      break;
  }
  return op;
}

std::vector<std::string> DataFigureSystems() {
  return {"ext4",   "PMFS",    "NOVA",   "WineFS",     "SplitFS",
          "Strata", "OdinFS",  "ext4-RAID0", "ArckFS-nd", "ArckFS"};
}

std::vector<std::string> MetaFigureSystems() {
  return {"ext4", "ext4-RAID0", "PMFS", "NOVA", "WineFS", "SplitFS", "OdinFS", "ArckFS"};
}

}  // namespace sim
}  // namespace trio
