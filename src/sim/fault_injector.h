// FaultSim: a unified fault-injection subsystem. Components expose named fault points
// (compile-time string constants below); tests arm a point with a firing policy and attach
// the injector to the component under test. Every hot path guards the injection check
// behind a null-pointer test, so an unattached injector costs one branch.
//
// Wired-in fault points:
//   kFaultNvmTornPersist    NvmPool::Persist — a multi-line flush loses a non-empty subset
//                           of its cachelines (the clwb never happens; the lines stay
//                           dirty and are lost if a crash comes before a later flush).
//   kFaultNvmBitFlip        NvmPool::Fence — one line being committed takes a single-bit
//                           media error, in both the live and persisted images.
//   kFaultDelegationWorker  DelegationPool::Execute — a worker's chunk copy fails; the
//                           pool retries with backoff, then completes inline.
//
// Firing decisions and the random stream are deterministic from the constructor seed, so
// any failure a fault-injection test finds is replayable from the logged seed.

#ifndef SRC_SIM_FAULT_INJECTOR_H_
#define SRC_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "src/common/random.h"

namespace trio {

inline constexpr const char kFaultNvmTornPersist[] = "nvm.torn_persist";
inline constexpr const char kFaultNvmBitFlip[] = "nvm.bitflip";
inline constexpr const char kFaultDelegationWorker[] = "delegation.worker_fault";

// When an armed point fires. Hits are counted per point, across all threads.
struct FaultPolicy {
  enum class Kind : uint8_t {
    kOnce,         // Fire on the first hit only.
    kNthHit,       // Fire on the n-th hit (1-based) only.
    kEveryN,       // Fire on every n-th hit.
    kProbability,  // Fire on each hit with probability p (seeded, deterministic).
    kAlways,       // Fire on every hit.
  };
  Kind kind = Kind::kOnce;
  uint64_t n = 1;
  double probability = 0.0;

  static FaultPolicy Once() { return {Kind::kOnce, 1, 0.0}; }
  static FaultPolicy NthHit(uint64_t n) { return {Kind::kNthHit, n, 0.0}; }
  static FaultPolicy EveryN(uint64_t n) { return {Kind::kEveryN, n, 0.0}; }
  static FaultPolicy Probability(double p) { return {Kind::kProbability, 1, p}; }
  static FaultPolicy Always() { return {Kind::kAlways, 1, 0.0}; }
};

struct FaultPointStats {
  uint64_t hits = 0;   // Times the point was reached while armed.
  uint64_t fires = 0;  // Times the policy said "inject".
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0xFA17ull);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void Arm(std::string_view point, FaultPolicy policy);
  void Disarm(std::string_view point);
  // Disarms every point and clears all stats (the random stream is not reseeded).
  void Reset();

  // The component-side check: records a hit and returns whether to inject. Unarmed points
  // never fire (and are not tracked). Thread-safe.
  bool ShouldFire(std::string_view point);

  // Records an externally performed injection (e.g. NvmPool::InjectBitFlip) against a
  // point's stats without consulting any policy.
  void RecordFire(std::string_view point);

  // Deterministic uniform draw in [0, bound) from the injector's seeded stream; fault
  // sites use this to pick which line/bit/subset to damage. Thread-safe.
  uint64_t NextRandom(uint64_t bound);

  FaultPointStats StatsFor(std::string_view point) const;
  uint64_t TotalFires() const;
  uint64_t TotalHits() const;

 private:
  struct Point {
    FaultPolicy policy;
    bool armed = false;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  mutable std::mutex mutex_;
  Rng rng_;
  // Ordered + transparent comparator: string_view lookups without allocation.
  std::map<std::string, Point, std::less<>> points_;
};

}  // namespace trio

#endif  // SRC_SIM_FAULT_INJECTOR_H_
