#include "src/sim/model.h"

#include <algorithm>

namespace trio {
namespace sim {

SolveResult Solve(const MachineModel& machine, const SolveInput& input) {
  const OpProfile& op = input.op;
  const int threads = std::min(input.threads, machine.cores);
  const int nodes = std::max(1, input.nodes);
  const double total_write = op.write_bytes + op.journal_bytes;

  double nvm_read_us;
  double nvm_write_us;
  double delegation_cap_ops = 1e18;
  double bandwidth_cap_ops = 1e18;

  if (op.delegated_data) {
    // Fixed accessor count per node keeps Optane at its sweet spot (§4.5); bulk ops are
    // striped across nodes, so one op's transfer runs at multi-node aggregate speed.
    const double per_node_threads = machine.delegation_threads_per_node;
    const double read_bw = machine.NodeReadBw(per_node_threads);
    const double write_bw = machine.NodeWriteBw(per_node_threads);
    const double stripe_nodes =
        op.striped ? std::min<double>(nodes, std::max(1.0, (op.read_bytes + total_write) /
                                                               (256.0 * 1024.0)))
                   : 1.0;
    nvm_read_us = TransferUs(op.read_bytes, read_bw * stripe_nodes);
    nvm_write_us = TransferUs(total_write, write_bw * stripe_nodes);

    // The delegation pool is a finite server farm: nodes * threads servers, each serving
    // at its share of the node's peak bandwidth.
    const double service_read_us =
        TransferUs(op.read_bytes, read_bw / per_node_threads);
    const double service_write_us =
        TransferUs(total_write, write_bw / per_node_threads);
    const double service_us = service_read_us + service_write_us + op.service_extra_us;
    if (service_us > 0) {
      delegation_cap_ops = nodes * per_node_threads / service_us * 1e6;
    }
    const double aggregate_bw = (read_bw + write_bw) * nodes;  // GiB/s.
    const double bytes = op.read_bytes + total_write;
    if (bytes > 0) {
      bandwidth_cap_ops = aggregate_bw * kGiB / bytes;
    }
  } else {
    // Application threads hit NVM directly: they spread over the configured nodes and
    // contend; per-thread bandwidth follows the Optane curves.
    const double accessors = static_cast<double>(threads) / nodes;
    nvm_read_us = TransferUs(op.read_bytes, machine.PerThreadReadBw(accessors));
    nvm_write_us = TransferUs(total_write, machine.PerThreadWriteBw(accessors));
    const double aggregate_bw =
        (machine.NodeReadBw(accessors) + machine.NodeWriteBw(accessors)) * nodes;
    const double bytes = op.read_bytes + total_write;
    if (bytes > 0) {
      bandwidth_cap_ops = aggregate_bw * kGiB / bytes;
    }
  }

  const double latency_us = op.cpu_us + op.traps * machine.trap_us +
                            (op.delegated_data ? machine.delegation_rt_us : 0) +
                            nvm_read_us + nvm_write_us;
  const double latency_ops = threads / latency_us * 1e6;

  double best = latency_ops;
  const char* bound = "latency";
  if (bandwidth_cap_ops < best) {
    best = bandwidth_cap_ops;
    bound = "nvm-bandwidth";
  }
  if (delegation_cap_ops < best) {
    best = delegation_cap_ops;
    bound = "delegation-capacity";
  }
  if (op.global_serial_us > 0) {
    const double cap = 1e6 / op.global_serial_us;
    if (threads > 1 && cap < best) {
      best = cap;
      bound = "global-serial";
    }
  }
  if (op.shared_serial_us > 0) {
    const double cap = 1e6 / op.shared_serial_us;
    if (threads > 1 && cap < best) {
      best = cap;
      bound = "shared-serial";
    }
  }
  if (op.self_cap_ops_per_us > 0) {
    const double cap = op.self_cap_ops_per_us * 1e6;
    if (cap < best) {
      best = cap;
      bound = "nvm-small-write";
    }
  }

  SolveResult result;
  result.ops_per_sec = best;
  result.latency_us = latency_us;
  result.data_gib_per_sec = best * (op.read_bytes + op.write_bytes) / kGiB;
  result.bound = bound;
  return result;
}

}  // namespace sim
}  // namespace trio
