#include "src/sim/schedule_explorer.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/core/core_state.h"
#include "src/verifier/fsck.h"

namespace trio {

namespace {

size_t Alternations(const Schedule& schedule) {
  size_t n = 0;
  for (size_t i = 1; i < schedule.size(); ++i) {
    if (schedule[i] != schedule[i - 1]) {
      ++n;
    }
  }
  return n;
}

std::string ScheduleString(const Schedule& schedule) {
  std::string s;
  s.reserve(schedule.size());
  for (uint8_t bit : schedule) {
    s.push_back(bit == 0 ? 'A' : 'B');
  }
  return s;
}

std::string FsckFailureString(const FsckReport& report) {
  const FsckProblem& p = report.problems.front();
  return "fsck " + p.invariant + " (ino " + std::to_string(p.ino) + "): " + p.detail +
         " [+" + std::to_string(report.problems.size() - 1) + " more]";
}

}  // namespace

bool IsSequentialSchedule(const Schedule& schedule) {
  return Alternations(schedule) <= 1;
}

ScheduleExplorer::ScheduleExplorer(ScheduleExplorerOptions options)
    : options_(std::move(options)) {}

Schedule ScheduleExplorer::GenerateSchedule(size_t index, size_t steps_a,
                                            size_t steps_b) const {
  // Seeded per index so the i-th schedule of a seed is reproducible in isolation,
  // independent of how many schedules ran before it.
  Rng rng(options_.seed * 1000003 + index);
  Schedule s;
  s.reserve(steps_a + steps_b);
  size_t rem[2] = {steps_a, steps_b};
  uint8_t cur = static_cast<uint8_t>(rng.Below(2));
  const size_t switches = rng.Below(options_.max_preemptions + 1);
  for (size_t i = 0; i < switches; ++i) {
    const uint8_t other = static_cast<uint8_t>(1 - cur);
    if (rem[cur] == 0) {
      cur = other;
      continue;
    }
    if (rem[other] == 0) {
      break;
    }
    const size_t len = 1 + rng.Below(rem[cur]);
    s.insert(s.end(), len, cur);
    rem[cur] -= len;
    cur = other;
  }
  s.insert(s.end(), rem[cur], cur);
  rem[cur] = 0;
  const uint8_t other = static_cast<uint8_t>(1 - cur);
  s.insert(s.end(), rem[other], other);
  return s;
}

ScheduleExplorer::RunOutcome ScheduleExplorer::RunSchedule(const TenantScript& a,
                                                           const TenantScript& b,
                                                           const Schedule& schedule) {
  RunOutcome out;
  stats_.schedules_explored.fetch_add(1, std::memory_order_relaxed);

  NvmPool pool(options_.pool_pages, NvmMode::kTracking);
  FormatOptions format;
  format.max_inodes = options_.max_inodes;
  Status formatted = Format(pool, format);
  if (!formatted.ok()) {
    out.failed = true;
    out.what = "harness: format failed: " + formatted.ToString();
    return out;
  }
  // Revocations must run inline on the stepping thread: a guarded callback executes on a
  // watchdog helper, and its timing relative to the next step would be nondeterministic —
  // the same schedule bit-vector has to mean the same execution every time.
  KernelConfig kernel_config = options_.kernel_config;
  kernel_config.guard_callbacks = false;
  KernelController kernel(pool, kernel_config);
  Status mounted = kernel.Mount();
  if (!mounted.ok()) {
    out.failed = true;
    out.what = "harness: mount failed: " + mounted.ToString();
    return out;
  }
  auto fs_a = std::make_unique<ArckFs>(kernel, options_.tenant_a);
  auto fs_b = std::make_unique<ArckFs>(kernel, options_.tenant_b);

  pool.StartFenceRecording();
  size_t next_a = 0;
  size_t next_b = 0;
  for (uint8_t bit : schedule) {
    if (bit == 0) {
      if (next_a < a.size()) {
        a[next_a++](*fs_a);
        stats_.steps_executed.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (next_b < b.size()) {
      b[next_b++](*fs_b);
      stats_.steps_executed.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Both journals feed every recovery boot: a crash point does not know which tenant's
  // in-flight ops it truncated.
  std::vector<PageNumber> journals = fs_a->JournalPages();
  const std::vector<PageNumber> journals_b = fs_b->JournalPages();
  journals.insert(journals.end(), journals_b.begin(), journals_b.end());
  // Teardown runs INSIDE the fence recording: the final ownership transfers (and their
  // verify/reconcile) are part of the schedule, and crashes mid-teardown are explored.
  fs_b.reset();
  fs_a.reset();
  pool.StopFenceRecording();

  const size_t fences = pool.RecordedFenceCount();
  stats_.fences_recorded.fetch_add(fences, std::memory_order_relaxed);

  // Live image first: both tenants have fully reconciled, so any fsck problem here is
  // durable cross-tenant damage that verify-on-transfer let through.
  Result<FsckReport> live = RunFsck(pool);
  stats_.fsck_runs.fetch_add(1, std::memory_order_relaxed);
  if (!live.ok() || !live->Clean()) {
    stats_.live_fsck_failures.fetch_add(1, std::memory_order_relaxed);
    out.failed = true;
    out.fence = SIZE_MAX;
    out.what = live.ok() ? "live image dirty: " + FsckFailureString(*live)
                         : "live fsck errored: " + live.status().ToString();
    return out;
  }

  // Crash sweep: evenly spaced sample of [0, fences] capped at max_crash_points, first
  // and last kept (mirrors CrashExplorer::SamplePoints).
  std::vector<size_t> points;
  const size_t count = fences + 1;
  if (options_.max_crash_points == 0 || count <= options_.max_crash_points) {
    points.resize(count);
    for (size_t i = 0; i < count; ++i) {
      points[i] = i;
    }
  } else if (options_.max_crash_points == 1) {
    points.push_back(count - 1);
  } else {
    for (size_t i = 0; i < options_.max_crash_points; ++i) {
      const size_t p = i * (count - 1) / (options_.max_crash_points - 1);
      if (points.empty() || points.back() != p) {
        points.push_back(p);
      }
    }
  }
  if (points.size() < count) {
    stats_.sampled_out.fetch_add(count - points.size(), std::memory_order_relaxed);
  }

  std::vector<char> image(options_.pool_pages * kPageSize);
  for (size_t fence : points) {
    pool.MaterializeAt(fence, image.data());
    stats_.crash_points_explored.fetch_add(1, std::memory_order_relaxed);
    // Recovery always boots a DEFAULT kernel config: a recovered image must be sound
    // without the workload kernel's special (or test-only) modes.
    RemountedFs booted =
        BootImage(image.data(), options_.pool_pages, NvmMode::kFast, journals, false);
    stats_.remounts.fetch_add(1, std::memory_order_relaxed);
    if (!booted.status.ok()) {
      out.failed = true;
      out.fence = fence;
      out.what = "boot/recovery failed: " + booted.status.ToString();
      break;
    }
    Result<FsckReport> fsck = RunFsck(*booted.pool);
    stats_.fsck_runs.fetch_add(1, std::memory_order_relaxed);
    if (!fsck.ok() || !fsck->Clean()) {
      stats_.crash_fsck_failures.fetch_add(1, std::memory_order_relaxed);
      out.failed = true;
      out.fence = fence;
      out.what = fsck.ok() ? FsckFailureString(*fsck)
                           : "fsck errored: " + fsck.status().ToString();
      break;
    }
    TreeSnapshot snapshot;
    Status walk = WalkTree(*booted.fs, "/", snapshot);
    if (!walk.ok()) {
      out.failed = true;
      out.fence = fence;
      out.what = "oracle walk failed: " + walk.ToString();
      break;
    }
  }
  return out;
}

Schedule ScheduleExplorer::Minimize(const TenantScript& a, const TenantScript& b,
                                    Schedule failing) {
  // Phase 1: greedy tail truncation — steps after the damage is done are noise.
  while (!failing.empty()) {
    Schedule shorter(failing.begin(), failing.end() - 1);
    stats_.minimization_replays.fetch_add(1, std::memory_order_relaxed);
    if (!RunSchedule(a, b, shorter).failed) {
      break;
    }
    failing = std::move(shorter);
  }
  // Phase 2: preemption reduction — swap adjacent differing bits; keep a swap only if the
  // schedule still fails with strictly fewer alternations. Converges because alternations
  // strictly decrease on every accepted swap.
  bool improved = true;
  while (improved) {
    improved = false;
    const size_t current = Alternations(failing);
    for (size_t i = 0; i + 1 < failing.size(); ++i) {
      if (failing[i] == failing[i + 1]) {
        continue;
      }
      Schedule swapped = failing;
      std::swap(swapped[i], swapped[i + 1]);
      if (Alternations(swapped) >= current) {
        continue;
      }
      stats_.minimization_replays.fetch_add(1, std::memory_order_relaxed);
      if (RunSchedule(a, b, swapped).failed) {
        failing = std::move(swapped);
        improved = true;
        break;
      }
    }
  }
  return failing;
}

ScheduleFailure ScheduleExplorer::Replay(const TenantScript& a, const TenantScript& b,
                                         const Schedule& schedule) {
  ScheduleFailure verdict;
  verdict.schedule = schedule;
  verdict.baseline = IsSequentialSchedule(schedule);
  RunOutcome outcome = RunSchedule(a, b, schedule);
  if (!outcome.failed) {
    verdict.fence = SIZE_MAX - 1;
    verdict.what = "passed";
    return verdict;
  }
  verdict.fence = outcome.fence;
  verdict.what = std::move(outcome.what);
  return verdict;
}

Result<ScheduleExplorerReport> ScheduleExplorer::Explore(const TenantScript& a,
                                                         const TenantScript& b) {
  ScheduleExplorerReport report;

  std::vector<std::pair<Schedule, bool>> plan;  // schedule, is_baseline
  Schedule ab(a.size(), 0);
  ab.insert(ab.end(), b.size(), 1);
  Schedule ba(b.size(), 1);
  ba.insert(ba.end(), a.size(), 0);
  plan.emplace_back(std::move(ab), true);
  plan.emplace_back(std::move(ba), true);
  for (size_t i = 0; i < options_.schedules; ++i) {
    plan.emplace_back(GenerateSchedule(i, a.size(), b.size()), false);
  }

  for (auto& [schedule, is_baseline] : plan) {
    RunOutcome outcome = RunSchedule(a, b, schedule);
    ++report.schedules_explored;
    if (!outcome.failed) {
      continue;
    }
    ScheduleFailure failure;
    failure.baseline = is_baseline;
    failure.fence = outcome.fence;
    failure.what = std::move(outcome.what);
    if (is_baseline) {
      // A sequential failure is not an interleaving bug — minimizing preemptions away is
      // meaningless, so report it as-is.
      failure.schedule = schedule;
      TRIO_LOG(kWarn) << "BASELINE schedule " << ScheduleString(schedule)
                      << " failed: " << failure.what;
    } else {
      TRIO_LOG(kWarn) << "schedule " << ScheduleString(schedule)
                      << " failed: " << failure.what;
      if (options_.minimize) {
        failure.schedule = Minimize(a, b, schedule);
        // Re-run the minimized schedule so fence/what describe IT, not the original.
        RunOutcome minimized = RunSchedule(a, b, failure.schedule);
        if (minimized.failed) {
          failure.fence = minimized.fence;
          failure.what = std::move(minimized.what);
        }
        TRIO_LOG(kWarn) << "minimized to " << ScheduleString(failure.schedule) << " ("
                        << Alternations(failure.schedule) << " preemptions), fence "
                        << failure.fence;
      } else {
        failure.schedule = schedule;
      }
    }
    report.failures.push_back(std::move(failure));
    if (report.failures.size() >= options_.max_failing_schedules) {
      TRIO_LOG(kWarn) << "stopping after " << report.failures.size()
                      << " failing schedules (max_failing_schedules)";
      break;
    }
  }
  return report;
}

}  // namespace trio
