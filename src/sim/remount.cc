#include "src/sim/remount.h"

namespace trio {

RemountedFs BootImage(const char* image, size_t pool_pages, NvmMode mode,
                      const std::vector<PageNumber>& journals, bool record_recovery,
                      const KernelConfig& kernel_config) {
  RemountedFs out;
  out.pool = std::make_unique<NvmPool>(pool_pages, mode);
  out.pool->LoadImage(image);
  out.kernel = std::make_unique<KernelController>(*out.pool, kernel_config);
  out.status = out.kernel->Mount();
  if (!out.status.ok()) {
    return out;
  }
  out.needed_recovery = out.kernel->NeedsRecovery();
  // Record from before the ArckFs constructor so mid-recovery crash points cover the
  // journal replay as well as the kernel's RunRecovery.
  const bool record = record_recovery && out.needed_recovery;
  if (record) {
    out.pool->StartFenceRecording();
  }
  ArckFsConfig config;
  config.recover_journal_pages = journals;
  out.fs = std::make_unique<ArckFs>(*out.kernel, config);
  if (out.needed_recovery) {
    out.status = out.kernel->RunRecovery();
  }
  if (record) {
    out.pool->StopFenceRecording();
  }
  return out;
}

Status WalkTree(ArckFs& fs, const std::string& path, TreeSnapshot& out) {
  Result<std::vector<DirEntryInfo>> entries = fs.ReadDir(path);
  if (!entries.ok()) {
    return entries.status();
  }
  for (const DirEntryInfo& entry : *entries) {
    const std::string child =
        (path == "/") ? "/" + entry.name : path + "/" + entry.name;
    if (entry.is_dir) {
      out[child] = "D";
      TRIO_RETURN_IF_ERROR(WalkTree(fs, child, out));
      continue;
    }
    Result<StatInfo> info = fs.Stat(child);
    if (!info.ok()) {
      return info.status();
    }
    std::string data(info->size, '\0');
    Result<Fd> fd = fs.Open(child, OpenFlags::ReadOnly());
    if (!fd.ok()) {
      return fd.status();
    }
    if (info->size > 0) {
      Result<size_t> n = fs.Pread(*fd, data.data(), data.size(), 0);
      if (!n.ok() || *n != data.size()) {
        (void)fs.Close(*fd);
        return n.ok() ? Internal("short oracle read of " + child) : n.status();
      }
    }
    TRIO_RETURN_IF_ERROR(fs.Close(*fd));
    out[child] = "F:" + data;
  }
  return OkStatus();
}

}  // namespace trio
