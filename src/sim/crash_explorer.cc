#include "src/sim/crash_explorer.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/core/core_state.h"
#include "src/sim/backend.h"
#include "src/verifier/fsck.h"

namespace trio {

CrashExplorer::CrashExplorer(CrashExplorerOptions options)
    : options_(std::move(options)), injector_(options_.seed) {}

std::vector<size_t> CrashExplorer::SamplePoints(size_t count, size_t cap,
                                                const char* what) {
  std::vector<size_t> points;
  if (count == 0) {
    return points;
  }
  if (cap == 0 || count <= cap) {
    points.resize(count);
    for (size_t i = 0; i < count; ++i) {
      points[i] = i;
    }
    return points;
  }
  if (cap == 1) {
    points.push_back(count - 1);
  } else {
    for (size_t i = 0; i < cap; ++i) {
      const size_t p = i * (count - 1) / (cap - 1);
      if (points.empty() || points.back() != p) {
        points.push_back(p);
      }
    }
  }
  const size_t skipped = count - points.size();
  stats_.sampled_out.fetch_add(skipped, std::memory_order_relaxed);
  TRIO_LOG(kWarn) << what << ": sampling " << points.size() << " of " << count
                  << " crash points (" << skipped << " skipped — NOT exhaustive)";
  return points;
}

void CrashExplorer::RecordFailure(CrashExplorerReport& report, size_t fence,
                                  size_t recovery_fence, std::string what) {
  stats_.failures.fetch_add(1, std::memory_order_relaxed);
  CrashFailure failure;
  failure.fence = fence;
  failure.recovery_fence = recovery_fence;
  failure.what = std::move(what);
  TRIO_LOG(kWarn) << "crash point " << fence
                  << (recovery_fence == SIZE_MAX
                          ? std::string()
                          : " (recovery fence " + std::to_string(recovery_fence) + ")")
                  << " failed: " << failure.what;
  report.failures.push_back(std::move(failure));
}

RemountedFs CrashExplorer::Boot(const char* image, NvmMode mode,
                                const std::vector<PageNumber>& journals,
                                bool record_recovery) {
  KernelConfig boot_config = options_.kernel_config;
  // Recovery boots audit the image; a live digestion thread would rewrite it mid-audit.
  boot_config.tier.start_digestion = false;
  RemountedFs out = BootImage(image, options_.pool_pages, mode, journals, record_recovery,
                              boot_config);
  if (out.needed_recovery && out.fs != nullptr) {
    stats_.recoveries.fetch_add(1, std::memory_order_relaxed);
  }
  stats_.remounts.fetch_add(1, std::memory_order_relaxed);
  return out;
}

void CrashExplorer::CheckPoint(size_t fence, NvmPool& primary,
                               const std::vector<PageNumber>& journals,
                               std::vector<char>& image, const Check& check,
                               CrashExplorerReport& report) {
  primary.MaterializeAt(fence, image.data());
  stats_.crash_points_explored.fetch_add(1, std::memory_order_relaxed);

  const NvmMode mode =
      options_.explore_recovery ? NvmMode::kTracking : NvmMode::kFast;
  RemountedFs booted = Boot(image.data(), mode, journals, options_.explore_recovery);
  if (!booted.status.ok()) {
    RecordFailure(report, fence, SIZE_MAX,
                  "boot/recovery failed: " + booted.status.ToString());
    return;
  }

  // The boot's Mount just rebuilt the backend owner table for THIS image (BeginRebuild +
  // Adopt), so the snapshot below is exactly the slots this crash point's tree claims;
  // fsck's G7 cross-checks every tier entry against it (no slot owned by two files, no
  // page simultaneously live in NVM and digested, no forged slot).
  std::unordered_map<uint64_t, Ino> owners;
  const std::unordered_map<uint64_t, Ino>* tier_owners = nullptr;
  if (SlowBackend* backend = options_.kernel_config.tier.backend) {
    owners = backend->SlotOwners();
    tier_owners = &owners;
  }
  Result<FsckReport> fsck = RunFsck(*booted.pool, tier_owners);
  stats_.fsck_runs.fetch_add(1, std::memory_order_relaxed);
  if (!fsck.ok()) {
    RecordFailure(report, fence, SIZE_MAX, "fsck errored: " + fsck.status().ToString());
    return;
  }
  if (!fsck->Clean()) {
    stats_.fsck_problems.fetch_add(fsck->problems.size(), std::memory_order_relaxed);
    const FsckProblem& p = fsck->problems.front();
    RecordFailure(report, fence, SIZE_MAX,
                  "fsck " + p.invariant + " (ino " + std::to_string(p.ino) +
                      "): " + p.detail + " [+" +
                      std::to_string(fsck->problems.size() - 1) + " more]");
    return;
  }

  TreeSnapshot reference;
  Status walk = WalkTree(*booted.fs, "/", reference);
  stats_.oracle_checks.fetch_add(1, std::memory_order_relaxed);
  if (!walk.ok()) {
    RecordFailure(report, fence, SIZE_MAX, "oracle walk failed: " + walk.ToString());
    return;
  }
  if (check) {
    Status user = check(*booted.fs);
    if (!user.ok()) {
      RecordFailure(report, fence, SIZE_MAX, "workload check failed: " + user.ToString());
      return;
    }
  }

  if (!options_.explore_recovery || !booted.needed_recovery) {
    return;
  }

  // Recovery idempotence: crash the recovery we just ran at each of ITS fences, recover
  // again, and require convergence to the uncrashed result.
  const size_t inner = booted.pool->RecordedFenceCount();
  std::vector<size_t> inner_points = SamplePoints(
      inner + 1, options_.max_recovery_points, "recovery exploration");
  std::vector<char> inner_image(options_.pool_pages * kPageSize);
  for (size_t j : inner_points) {
    booted.pool->MaterializeAt(j, inner_image.data());
    stats_.recovery_points_explored.fetch_add(1, std::memory_order_relaxed);
    RemountedFs second = Boot(inner_image.data(), NvmMode::kFast, journals, false);
    if (!second.status.ok()) {
      RecordFailure(report, fence, j,
                    "second recovery failed: " + second.status.ToString());
      continue;
    }
    if (tier_owners != nullptr) {
      // The second mount re-ran the owner rebuild; re-snapshot before re-checking G7.
      owners = options_.kernel_config.tier.backend->SlotOwners();
    }
    Result<FsckReport> refsck = RunFsck(*second.pool, tier_owners);
    stats_.fsck_runs.fetch_add(1, std::memory_order_relaxed);
    if (!refsck.ok() || !refsck->Clean()) {
      if (refsck.ok()) {
        stats_.fsck_problems.fetch_add(refsck->problems.size(),
                                       std::memory_order_relaxed);
      }
      RecordFailure(report, fence, j,
                    refsck.ok() ? "fsck dirty after second recovery: " +
                                      refsck->problems.front().invariant + " " +
                                      refsck->problems.front().detail
                                : "fsck errored after second recovery: " +
                                      refsck.status().ToString());
      continue;
    }
    TreeSnapshot snapshot;
    Status rewalk = WalkTree(*second.fs, "/", snapshot);
    stats_.oracle_checks.fetch_add(1, std::memory_order_relaxed);
    if (!rewalk.ok()) {
      RecordFailure(report, fence, j,
                    "oracle walk failed after second recovery: " + rewalk.ToString());
      continue;
    }
    if (snapshot != reference) {
      RecordFailure(report, fence, j,
                    "recovery not idempotent: tree after crashed+rerun recovery "
                    "differs from the uncrashed recovery (" +
                        std::to_string(snapshot.size()) + " vs " +
                        std::to_string(reference.size()) + " entries)");
    }
  }
}

Result<CrashExplorerReport> CrashExplorer::Explore(const Workload& workload,
                                                   const Check& check) {
  NvmPool pool(options_.pool_pages, NvmMode::kTracking);
  FormatOptions format;
  format.max_inodes = options_.max_inodes;
  TRIO_RETURN_IF_ERROR(Format(pool, format));
  KernelController kernel(pool, options_.kernel_config);
  TRIO_RETURN_IF_ERROR(kernel.Mount());
  ArckFs fs(kernel, options_.workload_config);

  // Faults are live only while the workload runs; exploration then observes the durable
  // damage rather than injecting fresh faults into every remount.
  for (const ArmedFault& fault : options_.faults) {
    injector_.Arm(fault.point, fault.policy);
  }
  pool.set_fault_injector(&injector_);
  pool.StartFenceRecording();
  workload(fs);
  pool.StopFenceRecording();
  pool.set_fault_injector(nullptr);
  stats_.faults_injected.fetch_add(injector_.TotalFires(), std::memory_order_relaxed);

  const std::vector<PageNumber> journals = fs.JournalPages();
  const size_t fences = pool.RecordedFenceCount();
  stats_.fences_recorded.store(fences, std::memory_order_relaxed);

  CrashExplorerReport report;
  report.fences = fences;
  const std::vector<size_t> points =
      SamplePoints(fences + 1, options_.max_crash_points, "crash exploration");
  const bool sampled = points.size() < fences + 1;

  std::vector<char> image(options_.pool_pages * kPageSize);
  size_t last_pass = SIZE_MAX;  // Largest explored crash point that passed.
  for (size_t k : points) {
    const size_t before = report.failures.size();
    CheckPoint(k, pool, journals, image, check, report);
    ++report.explored;
    if (report.failures.size() == before) {
      last_pass = k;
      continue;
    }
    if (report.minimal_failing_fence == SIZE_MAX) {
      report.minimal_failing_fence = k;
      if (sampled) {
        // Shrink: the true minimal failing fence may hide in the unexplored gap before
        // this sampled point. Scan it in order; the first failure is minimal.
        const size_t gap_begin = last_pass == SIZE_MAX ? 0 : last_pass + 1;
        for (size_t j = gap_begin; j < k; ++j) {
          CrashExplorerReport probe;
          CheckPoint(j, pool, journals, image, check, probe);
          ++report.explored;
          if (!probe.Clean()) {
            report.minimal_failing_fence = j;
            for (CrashFailure& failure : probe.failures) {
              report.failures.push_back(std::move(failure));
            }
            break;
          }
        }
      }
      stats_.min_failing_fence.store(report.minimal_failing_fence,
                                     std::memory_order_relaxed);
      TRIO_LOG(kWarn) << "minimal failing crash point: fence "
                      << report.minimal_failing_fence;
    }
    if (report.failures.size() >= options_.max_failures) {
      TRIO_LOG(kWarn) << "stopping exploration after " << report.failures.size()
                      << " failures (max_failures)";
      break;
    }
  }
  return report;
}

}  // namespace trio
