#include "src/sim/fault_injector.h"

#include "src/common/logging.h"

namespace trio {

FaultInjector::FaultInjector(uint64_t seed) : rng_(seed) {}

void FaultInjector::Arm(std::string_view point, FaultPolicy policy) {
  std::lock_guard<std::mutex> guard(mutex_);
  Point& p = points_[std::string(point)];
  p.policy = policy;
  p.armed = true;
  p.hits = 0;
  p.fires = 0;
}

void FaultInjector::Disarm(std::string_view point) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = points_.find(point);
  if (it != points_.end()) {
    it->second.armed = false;
  }
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> guard(mutex_);
  points_.clear();
}

bool FaultInjector::ShouldFire(std::string_view point) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) {
    return false;
  }
  Point& p = it->second;
  ++p.hits;
  bool fire = false;
  switch (p.policy.kind) {
    case FaultPolicy::Kind::kOnce:
      fire = p.hits == 1;
      break;
    case FaultPolicy::Kind::kNthHit:
      fire = p.hits == p.policy.n;
      break;
    case FaultPolicy::Kind::kEveryN:
      fire = p.policy.n != 0 && p.hits % p.policy.n == 0;
      break;
    case FaultPolicy::Kind::kProbability:
      fire = rng_.NextDouble() < p.policy.probability;
      break;
    case FaultPolicy::Kind::kAlways:
      fire = true;
      break;
  }
  if (fire) {
    ++p.fires;
    TRIO_LOG(kDebug) << "faultsim: " << point << " fired (hit " << p.hits << ")";
  }
  return fire;
}

void FaultInjector::RecordFire(std::string_view point) {
  std::lock_guard<std::mutex> guard(mutex_);
  Point& p = points_[std::string(point)];
  ++p.hits;
  ++p.fires;
}

uint64_t FaultInjector::NextRandom(uint64_t bound) {
  std::lock_guard<std::mutex> guard(mutex_);
  return rng_.Below(bound);
}

FaultPointStats FaultInjector::StatsFor(std::string_view point) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = points_.find(point);
  if (it == points_.end()) {
    return {};
  }
  return {it->second.hits, it->second.fires};
}

uint64_t FaultInjector::TotalFires() const {
  std::lock_guard<std::mutex> guard(mutex_);
  uint64_t total = 0;
  for (const auto& [name, p] : points_) {
    total += p.fires;
  }
  return total;
}

uint64_t FaultInjector::TotalHits() const {
  std::lock_guard<std::mutex> guard(mutex_);
  uint64_t total = 0;
  for (const auto& [name, p] : points_) {
    total += p.hits;
  }
  return total;
}

}  // namespace trio
