// Analytic throughput model. Each (file system, operation) pair is summarized as an
// OpProfile — software path time, kernel crossings, NVM traffic, journal amplification,
// and time spent under serializing locks. Solve() turns a profile plus the machine model
// into throughput at a given thread count by combining:
//
//   * a latency term: threads / per-op latency, with per-thread NVM bandwidth degraded by
//     the Optane contention curves when threads access NVM directly;
//   * an Amdahl cap from the most-contended serial section (VFS dcache lock, jbd2
//     transaction lock, digestion, a shared directory's lock, ...);
//   * a bandwidth cap from aggregate NVM bandwidth;
//   * a delegation-capacity cap when bulk data is shipped to the per-node delegation
//     threads (which also *protects* the bandwidth from the contention collapse — the
//     whole point of §4.5).
//
// The per-system constants live in profiles.cc and are calibrated against the paper's
// single-thread numbers (Fig. 5); EXPERIMENTS.md compares the regenerated curves against
// every figure.

#ifndef SRC_SIM_MODEL_H_
#define SRC_SIM_MODEL_H_

#include <string>

#include "src/sim/machine.h"

namespace trio {
namespace sim {

struct OpProfile {
  double cpu_us = 0;            // Uncontended software path (user + kernel FS code).
  double traps = 0;             // Kernel crossings per operation.
  double read_bytes = 0;        // NVM bytes read per op.
  double write_bytes = 0;       // NVM bytes written per op (data + metadata).
  double journal_bytes = 0;     // Extra journal/log write amplification.
  double global_serial_us = 0;  // Time under a system-global lock per op.
  double shared_serial_us = 0;  // Time under a lock all workload threads share (e.g. the
                                // directory lock in MWCM); 0 for private-resource loops.
  bool delegated_data = false;  // Bulk transfer performed by delegation threads (§4.5).
  bool striped = false;         // File pages striped across all NUMA nodes.
  // Extra per-op time on the delegation worker side (kernel-resident designs like OdinFS
  // pay bookkeeping there that ArckFS's userspace path avoids).
  double service_extra_us = 0;
  // Empirical saturation ceiling (ops/us) for operations whose scaling is limited by NVM
  // small-write behaviour the bandwidth curves do not capture (e.g. FxMark MWCL, §6.4
  // "excessive concurrent NVM access; these small accesses are not delegated").
  // 0 = no such ceiling. Values are calibrated from the paper's measured curves.
  double self_cap_ops_per_us = 0;
};

struct SolveInput {
  OpProfile op;
  int threads = 1;
  int nodes = 1;  // NUMA nodes the system is configured over (1 or 8 in the paper).
};

struct SolveResult {
  double ops_per_sec = 0;
  double data_gib_per_sec = 0;  // read_bytes + write_bytes moved per second.
  double latency_us = 0;        // Uncontended single-op latency.
  const char* bound = "";       // Which term limited throughput (diagnostics).
};

SolveResult Solve(const MachineModel& machine, const SolveInput& input);

}  // namespace sim
}  // namespace trio

#endif  // SRC_SIM_MODEL_H_
