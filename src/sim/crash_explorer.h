// CrashExplorer: systematic crash-point exploration (Chipmunk-style), the test harness
// half of FaultSim. It runs a workload on a kTracking pool while recording every Fence(),
// then for EVERY recorded fence materializes the persisted image a crash at that point
// would leave behind, reboots it (mount + journal replay + RunRecovery), and checks:
//
//   1. trio.fsck reports a clean image (G1..G6);
//   2. a POSIX oracle walk succeeds — every directory lists, every file stats and reads
//      back its full size with no error (the recovered tree is internally consistent);
//   3. an optional caller check (workload-specific semantics, e.g. "old or new content,
//      never a mix");
//   4. with `explore_recovery`, recovery itself is re-crashed: the first recovery runs on
//      a kTracking pool with fence recording, every inner fence is materialized, a SECOND
//      recovery runs on it, and the result must be fsck-clean and tree-identical to the
//      uncrashed first recovery (recovery idempotence / convergence).
//
// Faults from FaultSim (torn persists, bit flips, ...) can be armed for the workload
// phase, so the explorer doubles as a media-fault harness: a fault that defeats recovery
// shows up as a failing crash point, and the explorer shrinks it to the minimal (earliest)
// failing fence. When a sampling cap truncates the sweep, the truncation is logged and
// counted — a capped run never silently reads as exhaustive.

#ifndef SRC_SIM_CRASH_EXPLORER_H_
#define SRC_SIM_CRASH_EXPLORER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/libfs/arckfs.h"
#include "src/sim/fault_injector.h"
#include "src/sim/remount.h"

namespace trio {

// A fault point armed for the workload phase of an exploration.
struct ArmedFault {
  std::string point;
  FaultPolicy policy;
};

struct CrashExplorerOptions {
  size_t pool_pages = 2048;
  uint64_t max_inodes = 1024;
  // 0 = exhaustive (every fence). Otherwise at most this many evenly spaced crash points
  // (always including the first and last); skipped points are counted in sampled_out and
  // the truncation is logged.
  size_t max_crash_points = 0;
  // Re-crash recovery itself at each outer crash point and require the second recovery to
  // converge (fsck-clean and tree-equal to the uncrashed recovery).
  bool explore_recovery = false;
  // 0 = every inner (mid-recovery) fence; otherwise an evenly spaced sample per point.
  size_t max_recovery_points = 0;
  // Fault points armed on the workload pool (disarmed before exploration starts, so the
  // explorer observes the faults' durable damage, not fresh injections).
  std::vector<ArmedFault> faults;
  // Config for the ArckFs the workload runs on (e.g. ring.enabled to crash-test the
  // op-ring drainer's group-commit epochs). Recovery boots always use a default config:
  // the recovered image must be readable without the workload's special modes.
  ArckFsConfig workload_config;
  // Kernel config for the workload kernel AND every recovery boot. Unlike the LibFS
  // config above, this one must carry over to recovery: a tier.backend holds the only
  // copy of digested pages, so a recovered image is unreadable without it. The backend
  // outlives every pool the explorer boots; each Mount re-runs BeginRebuild + Adopt
  // against the materialized image, and fsck's G7 cross-tier check runs against the
  // resulting owner snapshot. Recovery boots force tier.start_digestion off — a
  // background digestion thread would mutate the image mid-audit.
  KernelConfig kernel_config;
  // Seeds the injector's Rng; every run with the same seed explores identical faults.
  uint64_t seed = 2026;
  // Stop exploring after this many failing crash points (details kept for all of them).
  size_t max_failures = 8;
};

// Sharded-stats pattern: relaxed atomics, safe to read while an exploration runs.
struct CrashExplorerStats {
  std::atomic<uint64_t> fences_recorded{0};
  std::atomic<uint64_t> crash_points_explored{0};
  std::atomic<uint64_t> recovery_points_explored{0};
  std::atomic<uint64_t> remounts{0};
  std::atomic<uint64_t> recoveries{0};
  std::atomic<uint64_t> fsck_runs{0};
  std::atomic<uint64_t> fsck_problems{0};
  std::atomic<uint64_t> oracle_checks{0};
  std::atomic<uint64_t> faults_injected{0};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> sampled_out{0};  // Crash points skipped by a sampling cap.
  std::atomic<uint64_t> min_failing_fence{UINT64_MAX};
};

struct CrashFailure {
  size_t fence = 0;  // Outer crash point (fence index in the workload recording).
  // Inner crash point when the failure is a non-convergent second recovery; SIZE_MAX for
  // plain outer failures.
  size_t recovery_fence = SIZE_MAX;
  std::string what;
};

struct CrashExplorerReport {
  size_t fences = 0;    // Fences recorded by the workload.
  size_t explored = 0;  // Outer crash points actually checked.
  std::vector<CrashFailure> failures;
  size_t minimal_failing_fence = SIZE_MAX;  // Earliest failing fence after shrinking.

  bool Clean() const { return failures.empty(); }
};

class CrashExplorer {
 public:
  using Workload = std::function<void(ArckFs&)>;
  // Optional extra oracle run on every recovered file system; return a non-OK status to
  // flag the crash point as failing.
  using Check = std::function<Status(ArckFs&)>;

  explicit CrashExplorer(CrashExplorerOptions options = {});

  // Formats a fresh tracking pool, runs `workload` under fence recording (with any armed
  // faults), then sweeps the crash points. Errors (not failing crash points — those go in
  // the report) are returned as a status.
  Result<CrashExplorerReport> Explore(const Workload& workload, const Check& check = {});

  const CrashExplorerStats& stats() const { return stats_; }
  FaultInjector& injector() { return injector_; }

 private:
  RemountedFs Boot(const char* image, NvmMode mode, const std::vector<PageNumber>& journals,
                   bool record_recovery);
  // Checks one outer crash point; empty return = pass, otherwise appends failure records.
  void CheckPoint(size_t fence, NvmPool& primary, const std::vector<PageNumber>& journals,
                  std::vector<char>& image, const Check& check,
                  CrashExplorerReport& report);
  // Evenly spaced sample of [0, count) capped at `cap` (0 = all), first and last kept.
  std::vector<size_t> SamplePoints(size_t count, size_t cap, const char* what);
  void RecordFailure(CrashExplorerReport& report, size_t fence, size_t recovery_fence,
                     std::string what);

  CrashExplorerOptions options_;
  FaultInjector injector_;
  CrashExplorerStats stats_;
};

}  // namespace trio

#endif  // SRC_SIM_CRASH_EXPLORER_H_
