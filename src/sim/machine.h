// Model of the paper's evaluation machine (§6.1): eight sockets, 224 cores, Intel Optane
// PM on every NUMA node. We have none of that hardware, so the benchmark harness
// regenerates the paper's multi-thread figures from this analytic model (see DESIGN.md,
// "Substitutions"). The bandwidth curves encode the two Optane behaviours the paper's
// design responds to (§4.5, citing [21, 29, 47, 51]):
//
//   1. A node's bandwidth peaks at a small number of concurrent accessors and then
//      *collapses* as more threads pile on (internal write-combining buffer thrashing);
//      writes collapse much harder than reads.
//   2. Remote-socket access is significantly slower than local access, writes worse than
//      reads.
//
// Numbers follow the published measurements for 6x256 GB Optane DIMMs per node
// (read ~30+ GiB/s, ~2.3 GiB/s/DIMM write -> ~13 GiB/s node write peak).

#ifndef SRC_SIM_MACHINE_H_
#define SRC_SIM_MACHINE_H_

#include <algorithm>
#include <cmath>

namespace trio {
namespace sim {

struct MachineModel {
  int numa_nodes = 8;
  int cores = 224;
  int delegation_threads_per_node = 12;  // OdinFS / ArckFS default (§6.1).

  // User->kernel crossing (trap + return + entry bookkeeping), microseconds.
  double trap_us = 0.35;
  // Delegation round trip: enqueue to a shared ring + completion wait (§4.5). Calibrated
  // so a delegated 4 KiB write is ~21% slower than the direct path but still ~6% above
  // NOVA (§6.2).
  double delegation_rt_us = 0.65;

  // --- Optane per-node bandwidth (GiB/s) as a function of concurrent accessors. ---

  double NodeReadBw(double accessors) const {
    if (accessors <= 0) {
      return 0;
    }
    // Ramps to ~33 GiB/s by ~8 threads, degrades gently to ~24 GiB/s past 56 threads.
    const double peak = 33.0;
    const double ramp = peak * (1.0 - std::exp(-accessors / 2.5));
    const double degrade = accessors <= 8 ? 1.0
                                          : std::max(0.72, 1.0 - 0.006 * (accessors - 8));
    return ramp * degrade;
  }

  double NodeWriteBw(double accessors) const {
    if (accessors <= 0) {
      return 0;
    }
    // Peaks ~13 GiB/s around 4-8 threads, collapses toward ~3.5 GiB/s under heavy
    // concurrency — the behaviour opportunistic delegation exists to avoid.
    const double peak = 13.0;
    const double ramp = peak * (1.0 - std::exp(-accessors / 1.6));
    double collapse = 1.0;
    if (accessors > 8) {
      collapse = std::max(0.27, 1.0 / (1.0 + 0.11 * (accessors - 8)));
    }
    return ramp * collapse;
  }

  // Effective per-thread bandwidth (GiB/s) when `accessors` threads share one node.
  double PerThreadReadBw(double accessors) const {
    return NodeReadBw(accessors) / std::max(1.0, accessors);
  }
  double PerThreadWriteBw(double accessors) const {
    return NodeWriteBw(accessors) / std::max(1.0, accessors);
  }
};

inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

// Microseconds to move `bytes` at `gib_per_s`.
inline double TransferUs(double bytes, double gib_per_s) {
  if (gib_per_s <= 0) {
    return 1e18;
  }
  return bytes / (gib_per_s * kGiB) * 1e6;
}

}  // namespace sim
}  // namespace trio

#endif  // SRC_SIM_MACHINE_H_
