#include "src/kvfs/kvfs.h"

#include <cstring>

#include "src/obs/persist_span.h"

namespace trio {

KvFs::KvFs(KernelController& kernel, ArckFsConfig config, std::string base_dir)
    : ArckFs(kernel, std::move(config)), base_dir_(std::move(base_dir)) {
  Status made = Mkdir(base_dir_);
  TRIO_CHECK(made.ok() || made.Is(ErrorCode::kExists)) << made.ToString();
  Result<std::vector<std::string>> components = SplitPath(base_dir_);
  TRIO_CHECK(components.ok());
  Result<NodePtr> dir = ArckFs::ResolveDir(*components);
  TRIO_CHECK(dir.ok()) << dir.status().ToString();
  dir_node_ = *dir;
}

KvFs::~KvFs() = default;

Result<KvFs::KvNode*> KvFs::GetKvNode(const std::string& key, bool create) {
  if (!ValidFileName(key)) {
    return InvalidArgument("bad key");
  }
  {
    std::lock_guard<std::mutex> guard(kv_nodes_mutex_);
    auto it = kv_nodes_.find(key);
    if (it != kv_nodes_.end()) {
      // Revoked since we cached it? Rebuild below.
      if (!it->second->node->stale.load(std::memory_order_acquire) &&
          it->second->node->map_state.load(std::memory_order_acquire) == 2) {
        return it->second.get();
      }
      kv_nodes_.erase(it);
    }
  }

  // Resolve or create through the shared directory machinery; the customization is the
  // per-file fast path, not the directory format.
  TRIO_RETURN_IF_ERROR(LockForOp(dir_node_.get(), 2));
  Result<DirSlot> slot = FindEntry(dir_node_.get(), key);
  bool created = false;
  if (!slot.ok() && slot.status().Is(ErrorCode::kNotFound) && create) {
    slot = CreateEntry(dir_node_.get(), key, kModeRegular | 0644, /*exclusive=*/false);
    created = slot.ok();
  }
  UnlockOp(dir_node_.get());
  if (!slot.ok()) {
    return slot.status();
  }

  auto kv = std::make_unique<KvNode>();
  kv->node = GetOrCreateNode(slot->ino, dir_node_->ino, /*is_dir=*/false,
                             SlotPointer(*slot));
  kv->node->dirent = SlotPointer(*slot);
  if (created) {
    // A file we just created is implicitly write-held: its resources are our leases and
    // the kernel learns of it at the directory's next verification.
    kv->node->locally_created = true;
    kv->node->map_state.store(2, std::memory_order_release);
  } else if (kv->node->map_state.load(std::memory_order_acquire) != 2 ||
             kv->node->stale.load(std::memory_order_acquire)) {
    TRIO_RETURN_IF_ERROR(EnsureMapped(kv->node.get(), /*write=*/true));
  }
  TRIO_RETURN_IF_ERROR(BuildKvNode(kv.get()));

  std::lock_guard<std::mutex> guard(kv_nodes_mutex_);
  auto [it, inserted] = kv_nodes_.emplace(key, std::move(kv));
  return it->second.get();
}

Status KvFs::BuildKvNode(KvNode* kv) {
  // Rebuild the fixed array from core state — the KVFS analogue of §4.2's
  // "building auxiliary state from core state".
  kv->index_page = kv->node->dirent->first_index_page;
  std::memset(kv->pages, 0, sizeof(kv->pages));
  if (kv->index_page == 0) {
    return OkStatus();
  }
  const auto* index = reinterpret_cast<const IndexPage*>(pool_.PageAddress(kv->index_page));
  for (size_t i = 0; i < kMaxValuePages; ++i) {
    kv->pages[i] = index->entries[i];
  }
  return OkStatus();
}

Status KvFs::Set(const std::string& key, const void* data, size_t len) {
  if (len > kMaxValueSize) {
    return TooLarge("value exceeds KVFS maximum");
  }
  TRIO_ASSIGN_OR_RETURN(KvNode * kv, GetKvNode(key, /*create=*/true));
  std::lock_guard<SpinLock> guard(kv->lock);
  DirentBlock* dirent = kv->node->dirent;
  const char* src = static_cast<const char*>(data);

  obs::PersistSpan span(pool_, &persist_stats_);
  // One index page covers the whole value (8 entries needed, 511 available).
  if (kv->index_page == 0 && len > 0) {
    TRIO_ASSIGN_OR_RETURN(PageNumber index_page, leases_.AllocPage(0));
    pool_.Set(pool_.PageAddress(index_page), 0, kPageSize);
    span.PersistNow(pool_.PageAddress(index_page), kPageSize);
    span.CommitStore64(&dirent->first_index_page, index_page);
    kv->index_page = index_page;
  }
  auto* index = kv->index_page != 0
                    ? reinterpret_cast<IndexPage*>(pool_.PageAddress(kv->index_page))
                    : nullptr;

  size_t new_links = 0;
  PageNumber fresh[kMaxValuePages] = {};
  for (size_t i = 0; i * kPageSize < len; ++i) {
    const size_t chunk = std::min(kPageSize, len - i * kPageSize);
    PageNumber page = kv->pages[i];
    if (page == 0) {
      TRIO_ASSIGN_OR_RETURN(page, leases_.AllocPage(0));
      if (chunk < kPageSize) {
        pool_.Set(pool_.PageAddress(page), 0, kPageSize);
      }
      fresh[i] = page;
      ++new_links;
    }
    pool_.Write(pool_.PageAddress(page), src + i * kPageSize, chunk);
    span.Persist(pool_.PageAddress(page), chunk);
  }
  span.Fence();  // Data durable before links and size (§4.4 ordering).
  if (new_links > 0) {
    for (size_t i = 0; i < kMaxValuePages; ++i) {
      if (fresh[i] != 0) {
        span.CommitStore64(&index->entries[i], fresh[i]);
        kv->pages[i] = fresh[i];
      }
    }
  }
  span.CommitStore64(&dirent->size, len);
  return OkStatus();
}

Result<size_t> KvFs::Get(const std::string& key, void* buf, size_t capacity) {
  TRIO_ASSIGN_OR_RETURN(KvNode * kv, GetKvNode(key, /*create=*/false));
  std::lock_guard<SpinLock> guard(kv->lock);
  const uint64_t size = pool_.Load64(&kv->node->dirent->size);
  const size_t want = std::min<uint64_t>(size, capacity);
  char* dst = static_cast<char*>(buf);
  for (size_t i = 0; i * kPageSize < want; ++i) {
    const size_t chunk = std::min(kPageSize, want - i * kPageSize);
    if (kv->pages[i] == 0) {
      std::memset(dst + i * kPageSize, 0, chunk);
    } else {
      pool_.Read(dst + i * kPageSize, pool_.PageAddress(kv->pages[i]), chunk);
    }
  }
  return want;
}

Status KvFs::Delete(const std::string& key) {
  {
    std::lock_guard<std::mutex> guard(kv_nodes_mutex_);
    kv_nodes_.erase(key);
  }
  TRIO_RETURN_IF_ERROR(LockForOp(dir_node_.get(), 2));
  Status status = RemoveEntry(dir_node_.get(), key, /*must_be_dir=*/false,
                              /*must_be_file=*/true);
  UnlockOp(dir_node_.get());
  return status;
}

Result<uint64_t> KvFs::SizeOf(const std::string& key) {
  TRIO_ASSIGN_OR_RETURN(KvNode * kv, GetKvNode(key, /*create=*/false));
  return pool_.Load64(&kv->node->dirent->size);
}

Result<std::vector<std::string>> KvFs::Keys() {
  TRIO_RETURN_IF_ERROR(LockForOp(dir_node_.get(), 1));
  std::vector<std::string> keys;
  dir_node_->dir_index->ForEach([&](const std::string& name, const DirSlot& slot) {
    if (!slot.is_dir) {
      keys.push_back(name);
    }
  });
  UnlockOp(dir_node_.get());
  return keys;
}

bool KvFs::Contains(const std::string& key) {
  if (LockForOp(dir_node_.get(), 1).ok()) {
    DirSlot slot;
    const bool found = dir_node_->dir_index->Lookup(key, &slot);
    UnlockOp(dir_node_.get());
    return found;
  }
  return false;
}

}  // namespace trio
