// KVFS (§5): a LibFS customized for applications that operate on many small files (mail
// clients, HPC checkpointing). It layers get/set interfaces over ArckFS's core state:
//
//  * get/set always operate from the beginning of a file, so there are no file
//    descriptors (and none of their allocation overhead);
//  * files are at most 32 KiB, so the radix tree is replaced with a fixed-size array of
//    page numbers — no index-walking overhead;
//  * with many files, per-file contention is rare, so the readers-writer inode lock and
//    the range lock collapse into one spinlock per file.
//
// Everything here is auxiliary state: the core state stays ArckFS's (§4.1), which is why
// this customization needs no privilege and cannot affect other applications — the Trio
// property §5 demonstrates. KVFS still speaks full POSIX through its ArckFs base for
// anything outside the hot path.

#ifndef SRC_KVFS_KVFS_H_
#define SRC_KVFS_KVFS_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "src/libfs/arckfs.h"

namespace trio {

class KvFs : public ArckFs {
 public:
  static constexpr size_t kMaxValueSize = 32 * 1024;  // §5: 32 KiB maximal file size.
  static constexpr size_t kMaxValuePages = kMaxValueSize / kPageSize;  // 8.

  // Keys become files under `base_dir` (created if missing).
  KvFs(KernelController& kernel, ArckFsConfig config = {}, std::string base_dir = "/kv");
  ~KvFs() override;

  std::string Name() const override { return "KVFS"; }

  // Creates the file if needed and (over)writes [0, len). len <= kMaxValueSize.
  Status Set(const std::string& key, const void* data, size_t len);
  // Reads from offset 0 into buf; returns bytes read (min(file size, capacity)).
  Result<size_t> Get(const std::string& key, void* buf, size_t capacity);
  Status Delete(const std::string& key);
  Result<uint64_t> SizeOf(const std::string& key);
  // Enumerates every key in the store (order unspecified).
  Result<std::vector<std::string>> Keys();
  bool Contains(const std::string& key);

 private:
  // The customized per-file auxiliary state (§5): fixed array + one spinlock.
  struct KvNode {
    SpinLock lock;
    NodePtr node;                             // Underlying mapping bookkeeping.
    PageNumber index_page = 0;                // Small files have exactly one index page.
    PageNumber pages[kMaxValuePages] = {};    // The fixed-size array replacing the radix.
  };

  Result<KvNode*> GetKvNode(const std::string& key, bool create);
  Status BuildKvNode(KvNode* kv);

  std::string base_dir_;
  NodePtr dir_node_;
  std::mutex kv_nodes_mutex_;
  std::unordered_map<std::string, std::unique_ptr<KvNode>> kv_nodes_;
};

}  // namespace trio

#endif  // SRC_KVFS_KVFS_H_
