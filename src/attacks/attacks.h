// Malicious-LibFS attack library (§6.5). A malicious application links a LibFS it fully
// controls, so it can issue arbitrary stores to any NVM page the MMU lets it write — but
// *only* those pages. MaliciousLibFs models exactly that: it drives ArckFS normally to
// obtain mappings, then scribbles on the mapped core state directly (every raw store is
// checked against MmuSim, as the hardware MMU would).
//
// The eleven handcrafted attacks from the paper's evaluation (§6.5, §2.3.2) are provided,
// plus a scripted corruption generator that fuzzes every field the integrity verifier
// checks — the "134 corruption scenarios" sweep.

#ifndef SRC_ATTACKS_ATTACKS_H_
#define SRC_ATTACKS_ATTACKS_H_

#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/libfs/arckfs.h"

namespace trio {

class MaliciousLibFs : public ArckFs {
 public:
  using ArckFs::ArckFs;

  // Write-maps `path` through the normal protocol and returns its dirent. From here on
  // the attacker uses raw stores.
  Result<DirentBlock*> MapTarget(const std::string& path);

  // A raw attacker store: dies (returns false) if the MMU would fault.
  bool RawStore(void* dst, const void* src, size_t len);
  bool RawStore64(uint64_t* dst, uint64_t value);

  // Releases the file so the kernel verifies it; returns the unmap status (kCorrupted
  // when the attack is detected).
  Status ReleaseTarget(const std::string& path);

  NvmPool& raw_pool() { return pool_; }
  KernelController& raw_kernel() { return kernel_; }

  // ---- The handcrafted attacks (§6.5). Each corrupts the mapped core state of `path`
  // (or its parent directory) and returns whether the raw stores landed (i.e. the MMU
  // permitted them; detection is observed via ReleaseTarget). ----

  // (1) "modifies pointers in index pages to point to DRAM data": index entry -> a page
  // number outside anything this file owns (memory-based exploitation, §2.3.2).
  Status AttackPointIndexOutside(const std::string& path);
  // (2) "removes a non-empty directory".
  Status AttackRemoveNonEmptyDir(const std::string& dir_path);
  // (3) "creates file names containing '/' to trick another LibFS".
  Status AttackSlashInName(const std::string& path);
  // (4) "causes loops within a file's index pages".
  Status AttackIndexCycle(const std::string& path);
  // (5) Duplicate file names within one directory (semantic attack, §2.3.2).
  Status AttackDuplicateName(const std::string& dir_path);
  // (6) Double-reference: one data page linked at two offsets of the same file.
  Status AttackDoubleReference(const std::string& path);
  // (7) Permission escalation: rewrite the cached mode/uid in the dirent (I4).
  Status AttackPermissionEscalation(const std::string& path);
  // (8) File size beyond the index chain's capacity.
  Status AttackSizeBeyondCapacity(const std::string& path);
  // (9) Steal a page that belongs to another file (cross-file double reference).
  Status AttackStealForeignPage(const std::string& path, PageNumber foreign_page);
  // (10) Invalid file type bits.
  Status AttackInvalidType(const std::string& path);
  // (11) Hidden payload in reserved dirent bytes.
  Status AttackReservedBytes(const std::string& path);

  // ---- Cross-shard trust-boundary attacks: the controller's per-inode shard map means
  // a directory and a child it claims usually live under DIFFERENT shard locks; these
  // forge directory state whose validation needs the ordered two-phase cross-shard
  // read (IsMovePermitted / ApplyReport), probing that sharding did not open seams the
  // one-big-mutex controller never had. ----

  // (12) Forge a dirent in an attacker-owned directory claiming the file at
  // `victim_path` — a file whose real parent the attacker does NOT write-map. The
  // forged fields copy the shadow inode exactly, so only the cross-directory ownership
  // check (I2, evaluated across two shards) can catch it.
  Status AttackCrossShardForeignClaim(const std::string& dir_path,
                                      const std::string& victim_path);
  // (13) Permission lift smuggled through a "legitimate" rename: the attacker DOES
  // write-map the victim's parent (so the cross-directory move is permitted), but the
  // forged dirent lifts the cached mode/uid. I4 must hold for moved-in children too —
  // a rename is not a chmod.
  Status AttackMovedInPermissionLift(const std::string& dir_path,
                                     const std::string& victim_path);

  // Shared plumbing for the cross-shard forgeries: snapshot a victim's dirent (read- or
  // write-mapping its parent), and raw-store a crafted dirent into a free slot of an
  // attacker-owned directory.
  Result<DirentBlock> ReadVictimDirent(const std::string& victim_path,
                                       bool write_map_parent);
  Status ForgeChildClaim(const std::string& dir_path, const DirentBlock& forged);

  // Direct access outside any grant must fault: returns true if the MMU blocked it.
  bool ProbeUnmappedPageFaults();
};

// One scripted corruption: a name for diagnostics and whether it must be detected.
struct CorruptionScenario {
  std::string name;
  uint64_t seed = 0;
};

// Applies scripted corruption `scenario_index` (of CorruptionScenarioCount()) to the
// write-mapped file at `path`, seeded by `seed`. Mirrors §6.5: "for each integrity check
// in the verifier, we create an automated script to corrupt the relevant metadata with,
// say, a random value."
size_t CorruptionScenarioCount();
std::string CorruptionScenarioName(size_t scenario_index);
Status ApplyScriptedCorruption(MaliciousLibFs& attacker, const std::string& path,
                               size_t scenario_index, uint64_t seed);

}  // namespace trio

#endif  // SRC_ATTACKS_ATTACKS_H_
