#include "src/attacks/attacks.h"

#include <cstddef>
#include <cstring>

namespace trio {

Result<DirentBlock*> MaliciousLibFs::MapTarget(const std::string& path) {
  TRIO_ASSIGN_OR_RETURN(NodePtr node, OpenNodeByPath(path, /*write=*/true));
  return node->dirent;
}

bool MaliciousLibFs::RawStore(void* dst, const void* src, size_t len) {
  // The hardware MMU check: a malicious LibFS can bypass all LibFS-level checks but not
  // the page tables the kernel controller programmed.
  if (!kernel_.mmu().CheckRange(libfs_, pool_, dst, len, /*write=*/true)) {
    return false;
  }
  pool_.Write(dst, src, len);
  pool_.PersistNow(dst, len);
  return true;
}

bool MaliciousLibFs::RawStore64(uint64_t* dst, uint64_t value) {
  return RawStore(dst, &value, sizeof(value));
}

Status MaliciousLibFs::ReleaseTarget(const std::string& path) {
  // ReleaseFile swallows the unmap status; go through the node directly to surface the
  // verification result.
  TRIO_ASSIGN_OR_RETURN(std::vector<std::string> components, SplitPath(path));
  Ino ino = kRootIno;
  Ino parent = kInvalidIno;
  if (!components.empty()) {
    SplitParent parts;
    parts.leaf = std::move(components.back());
    components.pop_back();
    parts.parent = std::move(components);
    TRIO_ASSIGN_OR_RETURN(NodePtr dir, ResolveDir(parts.parent));
    TRIO_RETURN_IF_ERROR(LockForOp(dir.get(), 1));
    Result<DirSlot> slot = FindEntry(dir.get(), parts.leaf);
    UnlockOp(dir.get());
    if (!slot.ok()) {
      return slot.status();
    }
    ino = slot->ino;
    parent = dir->ino;
  }
  NodePtr node = FindNode(ino);
  if (node != nullptr && node->locally_created) {
    // Surface the parent reconcile result: creations by a malicious LibFS are verified
    // when the parent directory is checked.
    Status parent_commit = kernel_.CommitFile(libfs_, node->parent);
    node->locally_created = false;
    if (!parent_commit.ok()) {
      RevokeNode(ino);
      return parent_commit;
    }
  }
  (void)parent;
  // Quiesce and unmap with the real status.
  Status status = kernel_.UnmapFile(libfs_, ino);
  if (node != nullptr) {
    RevokeNode(ino);  // Drop stale auxiliary state regardless.
  }
  return status;
}

bool MaliciousLibFs::ProbeUnmappedPageFaults() {
  // Pick a page we certainly do not have mapped: the shadow inode table.
  const Superblock* sb = SuperblockOf(pool_);
  char* target = pool_.PageAddress(sb->shadow_table_page);
  uint64_t evil = 0xffffffffffffffffull;
  return !RawStore(target, &evil, sizeof(evil));
}

namespace {

// Locates the first index page of a mapped file (attacker-side convenience).
IndexPage* FirstIndexPage(NvmPool& pool, DirentBlock* dirent) {
  if (dirent->first_index_page == 0) {
    return nullptr;
  }
  return reinterpret_cast<IndexPage*>(pool.PageAddress(dirent->first_index_page));
}

}  // namespace

Status MaliciousLibFs::AttackPointIndexOutside(const std::string& path) {
  TRIO_ASSIGN_OR_RETURN(DirentBlock * dirent, MapTarget(path));
  IndexPage* index = FirstIndexPage(pool_, dirent);
  if (index == nullptr) {
    return InvalidArgument("target file has no pages");
  }
  // "Point at DRAM": in the emulation, any page number outside this file's ownership —
  // e.g. another region of the pool — models a pointer to memory the victim would then
  // read or clobber.
  const uint64_t outside = SuperblockOf(pool_)->total_pages - 1;
  if (!RawStore64(&index->entries[0], outside)) {
    return PermissionDenied("MMU blocked the store");
  }
  return OkStatus();
}

Status MaliciousLibFs::AttackRemoveNonEmptyDir(const std::string& dir_path) {
  // Tombstone the directory's dirent (held in its parent's pages) while it still has
  // children — files become disconnected from the root path (§2.3.2).
  TRIO_ASSIGN_OR_RETURN(SplitParent parts, SplitParentPath(dir_path));
  TRIO_ASSIGN_OR_RETURN(NodePtr parent, ResolveDir(parts.parent));
  TRIO_RETURN_IF_ERROR(LockForOp(parent.get(), 2));
  Result<DirSlot> slot = FindEntry(parent.get(), parts.leaf);
  UnlockOp(parent.get());
  if (!slot.ok()) {
    return slot.status();
  }
  DirentBlock* d = SlotPointer(*slot);
  if (!RawStore64(&d->ino, 0)) {
    return PermissionDenied("MMU blocked the store");
  }
  // Keep the LibFS-side hash table in sync with what an attacker's LibFS would do.
  parent->dir_index->Erase(parts.leaf);
  return OkStatus();
}

Status MaliciousLibFs::AttackSlashInName(const std::string& path) {
  TRIO_ASSIGN_OR_RETURN(DirentBlock * dirent, MapTarget(path));
  char evil = '/';
  if (!RawStore(&dirent->name[0], &evil, 1)) {
    return PermissionDenied("MMU blocked the store");
  }
  return OkStatus();
}

Status MaliciousLibFs::AttackIndexCycle(const std::string& path) {
  TRIO_ASSIGN_OR_RETURN(DirentBlock * dirent, MapTarget(path));
  IndexPage* index = FirstIndexPage(pool_, dirent);
  if (index == nullptr) {
    return InvalidArgument("target file has no pages");
  }
  if (!RawStore64(&index->next, dirent->first_index_page)) {
    return PermissionDenied("MMU blocked the store");
  }
  return OkStatus();
}

Status MaliciousLibFs::AttackDuplicateName(const std::string& dir_path) {
  // Two dirents with the same name: a victim resolving the name becomes
  // implementation-dependent (semantic attack).
  TRIO_ASSIGN_OR_RETURN(std::vector<std::string> components, SplitPath(dir_path));
  TRIO_ASSIGN_OR_RETURN(NodePtr dir, ResolveDir(components));
  TRIO_RETURN_IF_ERROR(LockForOp(dir.get(), 2));
  UnlockOp(dir.get());
  // Find two live dirents in the directory and copy one name over the other.
  DirentBlock* first = nullptr;
  DirentBlock* second = nullptr;
  Status walk = ForEachDirent(pool_, dir->dirent->first_index_page,
                              [&](DirentBlock* d, PageNumber, size_t) -> Status {
                                if (first == nullptr) {
                                  first = d;
                                } else if (second == nullptr) {
                                  second = d;
                                }
                                return OkStatus();
                              });
  TRIO_RETURN_IF_ERROR(walk);
  if (second == nullptr) {
    return InvalidArgument("need two files in the directory");
  }
  char name_copy[kMaxNameLen];
  std::memcpy(name_copy, first->name, kMaxNameLen);
  uint16_t len = first->name_len;
  if (!RawStore(second->name, name_copy, kMaxNameLen) ||
      !RawStore(&second->name_len, &len, sizeof(len))) {
    return PermissionDenied("MMU blocked the store");
  }
  return OkStatus();
}

Status MaliciousLibFs::AttackDoubleReference(const std::string& path) {
  TRIO_ASSIGN_OR_RETURN(DirentBlock * dirent, MapTarget(path));
  IndexPage* index = FirstIndexPage(pool_, dirent);
  if (index == nullptr || index->entries[0] == 0) {
    return InvalidArgument("target file needs at least one data page");
  }
  if (!RawStore64(&index->entries[1], index->entries[0])) {
    return PermissionDenied("MMU blocked the store");
  }
  return OkStatus();
}

Status MaliciousLibFs::AttackPermissionEscalation(const std::string& path) {
  TRIO_ASSIGN_OR_RETURN(DirentBlock * dirent, MapTarget(path));
  const uint32_t evil_mode = (dirent->mode & kModeTypeMask) | 0777;
  const uint32_t evil_uid = 0;  // Claim root ownership.
  if (!RawStore(&dirent->mode, &evil_mode, sizeof(evil_mode)) ||
      !RawStore(&dirent->uid, &evil_uid, sizeof(evil_uid))) {
    return PermissionDenied("MMU blocked the store");
  }
  return OkStatus();
}

Status MaliciousLibFs::AttackSizeBeyondCapacity(const std::string& path) {
  TRIO_ASSIGN_OR_RETURN(DirentBlock * dirent, MapTarget(path));
  if (!RawStore64(&dirent->size, 1ull << 40)) {
    return PermissionDenied("MMU blocked the store");
  }
  return OkStatus();
}

Status MaliciousLibFs::AttackStealForeignPage(const std::string& path,
                                              PageNumber foreign_page) {
  TRIO_ASSIGN_OR_RETURN(DirentBlock * dirent, MapTarget(path));
  IndexPage* index = FirstIndexPage(pool_, dirent);
  if (index == nullptr) {
    return InvalidArgument("target file has no pages");
  }
  if (!RawStore64(&index->entries[2], foreign_page)) {
    return PermissionDenied("MMU blocked the store");
  }
  return OkStatus();
}

Status MaliciousLibFs::AttackInvalidType(const std::string& path) {
  TRIO_ASSIGN_OR_RETURN(DirentBlock * dirent, MapTarget(path));
  const uint32_t evil = dirent->mode & kModePermMask;  // Type bits zeroed.
  if (!RawStore(&dirent->mode, &evil, sizeof(evil))) {
    return PermissionDenied("MMU blocked the store");
  }
  return OkStatus();
}

Status MaliciousLibFs::AttackReservedBytes(const std::string& path) {
  TRIO_ASSIGN_OR_RETURN(DirentBlock * dirent, MapTarget(path));
  const uint64_t payload = 0x6c6976652100beefull;
  if (!RawStore(&dirent->reserved2, &payload, sizeof(payload))) {
    return PermissionDenied("MMU blocked the store");
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Cross-shard trust-boundary attacks
// ---------------------------------------------------------------------------

namespace {

// First free dirent slot in a directory's data pages (nullptr if none).
DirentBlock* FindFreeDirentSlot(NvmPool& pool, PageNumber first_index_page) {
  DirentBlock* found = nullptr;
  (void)ForEachDataPage(pool, first_index_page, [&](uint64_t, PageNumber p) -> Status {
    if (found != nullptr) {
      return OkStatus();
    }
    auto* page = reinterpret_cast<DirDataPage*>(pool.PageAddress(p));
    for (uint32_t s = 0; s < kDirentsPerPage; ++s) {
      if (page->slots[s].IsFree()) {
        found = &page->slots[s];
        break;
      }
    }
    return OkStatus();
  });
  return found;
}

}  // namespace

Result<DirentBlock> MaliciousLibFs::ReadVictimDirent(const std::string& victim_path,
                                                     bool write_map_parent) {
  TRIO_ASSIGN_OR_RETURN(std::vector<std::string> components, SplitPath(victim_path));
  if (components.empty()) {
    return InvalidArgument("victim must not be the root");
  }
  SplitParent parts;
  parts.leaf = std::move(components.back());
  components.pop_back();
  parts.parent = std::move(components);
  TRIO_ASSIGN_OR_RETURN(NodePtr parent, ResolveDir(parts.parent));
  // write_map_parent makes a later cross-directory claim "permitted": the kernel's
  // two-phase cross-shard check accepts a moved-in child iff this LibFS write-maps the
  // child's old parent. A read map deliberately leaves the claim unauthorized.
  TRIO_RETURN_IF_ERROR(LockForOp(parent.get(), write_map_parent ? 2 : 1));
  Result<DirSlot> slot = FindEntry(parent.get(), parts.leaf);
  UnlockOp(parent.get());
  if (!slot.ok()) {
    return slot.status();
  }
  return *SlotPointer(*slot);
}

Status MaliciousLibFs::ForgeChildClaim(const std::string& dir_path,
                                       const DirentBlock& forged) {
  TRIO_ASSIGN_OR_RETURN(std::vector<std::string> components, SplitPath(dir_path));
  TRIO_ASSIGN_OR_RETURN(NodePtr dir, ResolveDir(components));
  TRIO_RETURN_IF_ERROR(LockForOp(dir.get(), 2));
  UnlockOp(dir.get());
  DirentBlock* slot = FindFreeDirentSlot(pool_, dir->dirent->first_index_page);
  if (slot == nullptr) {
    return InvalidArgument("no free dirent slot in the attacker directory");
  }
  if (!RawStore(slot, &forged, sizeof(forged))) {
    return PermissionDenied("MMU blocked the store");
  }
  return OkStatus();
}

Status MaliciousLibFs::AttackCrossShardForeignClaim(const std::string& dir_path,
                                                    const std::string& victim_path) {
  // Copy the victim's dirent verbatim — every cached field matches the shadow inode, so
  // only the cross-shard ownership walk can tell this claim from a real rename.
  TRIO_ASSIGN_OR_RETURN(DirentBlock forged,
                        ReadVictimDirent(victim_path, /*write_map_parent=*/false));
  return ForgeChildClaim(dir_path, forged);
}

Status MaliciousLibFs::AttackMovedInPermissionLift(const std::string& dir_path,
                                                   const std::string& victim_path) {
  // Holding the old parent's write map makes the move itself legitimate; the attack is
  // the smuggled chmod — lifted permission bits and root ownership in the cached copy.
  TRIO_ASSIGN_OR_RETURN(DirentBlock forged,
                        ReadVictimDirent(victim_path, /*write_map_parent=*/true));
  forged.mode |= 0777;
  forged.uid = 0;
  forged.gid = 0;
  return ForgeChildClaim(dir_path, forged);
}

// ---------------------------------------------------------------------------
// Scripted corruption sweep
// ---------------------------------------------------------------------------

namespace {

struct Script {
  const char* name;
  // Returns OkStatus when the corruption was applied.
  Status (*apply)(MaliciousLibFs&, const std::string&, Rng&);
};

Status CorruptDirentField(MaliciousLibFs& fs, const std::string& path, Rng& rng,
                          size_t offset, size_t len) {
  TRIO_ASSIGN_OR_RETURN(DirentBlock * dirent, fs.MapTarget(path));
  std::vector<uint8_t> junk(len);
  for (auto& b : junk) {
    b = static_cast<uint8_t>(rng.Range(1, 255));  // Nonzero: zero often means "unset".
  }
  if (!fs.RawStore(reinterpret_cast<char*>(dirent) + offset, junk.data(), len)) {
    return PermissionDenied("MMU blocked the store");
  }
  return OkStatus();
}

const Script kScripts[] = {
    {"ino_random",
     [](MaliciousLibFs& fs, const std::string& p, Rng& rng) {
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       // Random inode number far outside anything leased or live.
       return fs.RawStore64(&d->ino, rng.Range(100000, 1u << 30))
                  ? OkStatus()
                  : PermissionDenied("");
     }},
    {"first_index_random",
     [](MaliciousLibFs& fs, const std::string& p, Rng& rng) {
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       return fs.RawStore64(&d->first_index_page, rng.Range(1u << 20, 1u << 24))
                  ? OkStatus()
                  : PermissionDenied("");
     }},
    {"size_random", [](MaliciousLibFs& fs, const std::string& p,
                       Rng& rng) { return CorruptDirentField(fs, p, rng, 16, 8); }},
    {"mode_random", [](MaliciousLibFs& fs, const std::string& p,
                       Rng& rng) { return CorruptDirentField(fs, p, rng, 24, 4); }},
    {"uid_random", [](MaliciousLibFs& fs, const std::string& p,
                      Rng& rng) { return CorruptDirentField(fs, p, rng, 28, 4); }},
    {"gid_random", [](MaliciousLibFs& fs, const std::string& p,
                      Rng& rng) { return CorruptDirentField(fs, p, rng, 32, 4); }},
    {"nlink_random", [](MaliciousLibFs& fs, const std::string& p,
                        Rng& rng) { return CorruptDirentField(fs, p, rng, 36, 4); }},
    {"name_len_random",
     [](MaliciousLibFs& fs, const std::string& p, Rng& rng) {
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       uint16_t evil = static_cast<uint16_t>(rng.Range(kMaxNameLen, 60000));
       return fs.RawStore(&d->name_len, &evil, sizeof(evil)) ? OkStatus()
                                                             : PermissionDenied("");
     }},
    {"name_embedded_nul",
     [](MaliciousLibFs& fs, const std::string& p, Rng&) {
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       char nul = '\0';
       return fs.RawStore(&d->name[0], &nul, 1) ? OkStatus() : PermissionDenied("");
     }},
    {"reserved_random", [](MaliciousLibFs& fs, const std::string& p,
                           Rng& rng) { return CorruptDirentField(fs, p, rng, 66, 6); }},
    {"index_entry_random",
     [](MaliciousLibFs& fs, const std::string& p, Rng& rng) {
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       if (d->first_index_page == 0) {
         return InvalidArgument("no index page");
       }
       auto* index =
           reinterpret_cast<IndexPage*>(fs.raw_pool().PageAddress(d->first_index_page));
       return fs.RawStore64(&index->entries[rng.Below(4)], rng.Range(2, 1u << 28))
                  ? OkStatus()
                  : PermissionDenied("");
     }},
    {"index_next_random",
     [](MaliciousLibFs& fs, const std::string& p, Rng& rng) {
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       if (d->first_index_page == 0) {
         return InvalidArgument("no index page");
       }
       auto* index =
           reinterpret_cast<IndexPage*>(fs.raw_pool().PageAddress(d->first_index_page));
       return fs.RawStore64(&index->next, rng.Range(2, 1u << 28)) ? OkStatus()
                                                                  : PermissionDenied("");
     }},
    {"whole_dirent_random",
     [](MaliciousLibFs& fs, const std::string& p, Rng& rng) {
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       std::vector<uint8_t> junk(sizeof(DirentBlock));
       for (auto& b : junk) {
         b = static_cast<uint8_t>(rng.Below(256));
       }
       return fs.RawStore(d, junk.data(), junk.size()) ? OkStatus() : PermissionDenied("");
     }},
    {"index_page_random",
     [](MaliciousLibFs& fs, const std::string& p, Rng& rng) {
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       if (d->first_index_page == 0) {
         return InvalidArgument("no index page");
       }
       char* page = fs.raw_pool().PageAddress(d->first_index_page);
       std::vector<uint8_t> junk(256);
       for (auto& b : junk) {
         b = static_cast<uint8_t>(rng.Below(256));
       }
       return fs.RawStore(page + rng.Below(kPageSize - junk.size()), junk.data(),
                          junk.size())
                  ? OkStatus()
                  : PermissionDenied("");
     }},
    {"type_flip",
     [](MaliciousLibFs& fs, const std::string& p, Rng&) {
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       // Flip regular <-> directory: the structure no longer matches the type.
       uint32_t evil = d->mode ^ (kModeRegular | kModeDirectory);
       return fs.RawStore(&d->mode, &evil, sizeof(evil)) ? OkStatus()
                                                         : PermissionDenied("");
     }},
    {"dir_size_nonzero",
     [](MaliciousLibFs& fs, const std::string& p, Rng& rng) {
       // Applied to the parent directory: directories must carry size 0.
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       return fs.RawStore64(&d->size, rng.Range(1, 1u << 20)) ? OkStatus()
                                                              : PermissionDenied("");
     }},
    {"kitchen_sink",
     [](MaliciousLibFs& fs, const std::string& p, Rng& rng) {
       // Several corruptions at once ("run different scripts together to cause more
       // complex corruption", §6.5).
       (void)CorruptDirentField(fs, p, rng, 24, 4);
       (void)CorruptDirentField(fs, p, rng, 16, 8);
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       if (d->first_index_page != 0) {
         auto* index =
             reinterpret_cast<IndexPage*>(fs.raw_pool().PageAddress(d->first_index_page));
         (void)fs.RawStore64(&index->entries[0], rng.Range(2, 1u << 28));
       }
       return OkStatus();
     }},
    // ---- Fuzz-corpus extension: targeted bit flips, stale pointers, forged identity,
    // boundary sizes, directory cycles. Each is a distinct corruption class the verifier
    // must repair or quarantine (never crash or hang on).
    {"ino_root_duplicate",
     [](MaliciousLibFs& fs, const std::string& p, Rng&) {
       // Claim to BE the root directory: in-bounds but wrong identity.
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       return fs.RawStore64(&d->ino, kRootIno) ? OkStatus() : PermissionDenied("");
     }},
    {"ino_low_bitflip",
     [](MaliciousLibFs& fs, const std::string& p, Rng&) {
       // Single-bit media flip in a CHECKED field (mtime/ctime/generation are unchecked,
       // so flips there are undetectable by design — this targets identity instead).
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       return fs.RawStore64(&d->ino, d->ino ^ 1) ? OkStatus() : PermissionDenied("");
     }},
    {"size_high_bitflip",
     [](MaliciousLibFs& fs, const std::string& p, Rng&) {
       // One flipped high bit turns a sane size into ~1TB, far past chain capacity.
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       return fs.RawStore64(&d->size, d->size ^ (1ull << 40)) ? OkStatus()
                                                              : PermissionDenied("");
     }},
    {"nlink_bitflip",
     [](MaliciousLibFs& fs, const std::string& p, Rng&) {
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       const uint32_t evil = d->nlink ^ 0x4;  // 1 -> 5: no hard links exist.
       return fs.RawStore(&d->nlink, &evil, sizeof(evil)) ? OkStatus()
                                                          : PermissionDenied("");
     }},
    {"size_capacity_plus_one",
     [](MaliciousLibFs& fs, const std::string& p, Rng&) {
       // Boundary probe: size == capacity is legal (holes read as zeros); capacity + 1
       // must be rejected. Off-by-one in the verifier's bound shows up only here.
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       if (d->first_index_page == 0) {
         return InvalidArgument("no index page");
       }
       uint64_t index_pages = 0;
       PageNumber page = d->first_index_page;
       while (page != 0 && index_pages < 64) {
         ++index_pages;
         page = reinterpret_cast<IndexPage*>(fs.raw_pool().PageAddress(page))->next;
       }
       const uint64_t capacity = index_pages * kIndexEntriesPerPage * kPageSize;
       return fs.RawStore64(&d->size, capacity + 1) ? OkStatus() : PermissionDenied("");
     }},
    {"forged_owner_ids",
     [](MaliciousLibFs& fs, const std::string& p, Rng&) {
       // Forge the cached ownership record (uid AND gid, mode untouched): must disagree
       // with the shadow inode, the kernel-held ground truth.
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       const uint32_t uid = d->uid + 4242;
       const uint32_t gid = d->gid + 4242;
       return (fs.RawStore(&d->uid, &uid, sizeof(uid)) &&
               fs.RawStore(&d->gid, &gid, sizeof(gid)))
                  ? OkStatus()
                  : PermissionDenied("");
     }},
    {"zeroed_header_fields",
     [](MaliciousLibFs& fs, const std::string& p, Rng&) {
       // Zero everything between ino and name: a "partially torn" dirent whose ino still
       // claims the slot is live (mode 0 has no valid type).
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       const std::vector<uint8_t> zeros(offsetof(DirentBlock, name) - sizeof(uint64_t), 0);
       return fs.RawStore(reinterpret_cast<char*>(d) + sizeof(uint64_t), zeros.data(),
                          zeros.size())
                  ? OkStatus()
                  : PermissionDenied("");
     }},
    {"name_all_slashes",
     [](MaliciousLibFs& fs, const std::string& p, Rng&) {
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       char name[kMaxNameLen] = {};
       name[0] = name[1] = name[2] = name[3] = '/';
       const uint16_t len = 4;
       return (fs.RawStore(d->name, name, sizeof(name)) &&
               fs.RawStore(&d->name_len, &len, sizeof(len)))
                  ? OkStatus()
                  : PermissionDenied("");
     }},
    {"index_double_reference",
     [](MaliciousLibFs& fs, const std::string& p, Rng&) {
       // The same data page twice in one file: a write through one slot silently aliases
       // the other.
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       if (d->first_index_page == 0) {
         return InvalidArgument("no index page");
       }
       auto* index =
           reinterpret_cast<IndexPage*>(fs.raw_pool().PageAddress(d->first_index_page));
       if (index->entries[0] == 0) {
         return InvalidArgument("no data page");
       }
       return fs.RawStore64(&index->entries[1], index->entries[0])
                  ? OkStatus()
                  : PermissionDenied("");
     }},
    {"index_shadow_table_pointer",
     [](MaliciousLibFs& fs, const std::string& p, Rng&) {
       // Point a data slot at the kernel's shadow inode table: a victim write-back
       // through this entry would overwrite the ground-truth permission records.
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       if (d->first_index_page == 0) {
         return InvalidArgument("no index page");
       }
       auto* index =
           reinterpret_cast<IndexPage*>(fs.raw_pool().PageAddress(d->first_index_page));
       return fs.RawStore64(&index->entries[0],
                            SuperblockOf(fs.raw_pool())->shadow_table_page)
                  ? OkStatus()
                  : PermissionDenied("");
     }},
    {"index_stale_unowned_pointer",
     [](MaliciousLibFs& fs, const std::string& p, Rng&) {
       // In-range page that nobody owns — models a stale pointer to a freed page.
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       if (d->first_index_page == 0) {
         return InvalidArgument("no index page");
       }
       auto* index =
           reinterpret_cast<IndexPage*>(fs.raw_pool().PageAddress(d->first_index_page));
       return fs.RawStore64(&index->entries[1],
                            SuperblockOf(fs.raw_pool())->total_pages - 2)
                  ? OkStatus()
                  : PermissionDenied("");
     }},
    {"index_next_self",
     [](MaliciousLibFs& fs, const std::string& p, Rng&) {
       // Tightest possible chain cycle: the first index page links to itself.
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       if (d->first_index_page == 0) {
         return InvalidArgument("no index page");
       }
       auto* index =
           reinterpret_cast<IndexPage*>(fs.raw_pool().PageAddress(d->first_index_page));
       return fs.RawStore64(&index->next, d->first_index_page) ? OkStatus()
                                                               : PermissionDenied("");
     }},
    {"first_index_foreign_dirent",
     [](MaliciousLibFs& fs, const std::string& p, Rng&) {
       // A regular file whose index chain IS a directory dirent page: reading the file
       // would leak directory metadata, writing it would shred the namespace. The file's
       // own dirent lives in such a page (owned by its parent), so point at that.
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       const PageNumber dirent_page = static_cast<PageNumber>(
           (reinterpret_cast<char*>(d) - fs.raw_pool().PageAddress(0)) / kPageSize);
       return fs.RawStore64(&d->first_index_page, dirent_page) ? OkStatus()
                                                               : PermissionDenied("");
     }},
    {"index_forged_tier_mapping",
     [](MaliciousLibFs& fs, const std::string& p, Rng& rng) {
       // Forge a digested-page mapping: replace a live NVM data entry with a tier-tagged
       // entry whose backend slot this file never earned. With no backend configured,
       // every tagged entry is forged; with one, the slot is either never-written or
       // owned by another ino. Either way CheckTierSlot must condemn it — a LibFS that
       // could mint slots could read other tenants' digested data at reconcile time.
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       if (d->first_index_page == 0) {
         return InvalidArgument("no index page");
       }
       auto* index =
           reinterpret_cast<IndexPage*>(fs.raw_pool().PageAddress(d->first_index_page));
       if (index->entries[0] == 0) {
         return InvalidArgument("no data page");
       }
       const uint64_t slot = 1 + rng.Below(1u << 20);
       return fs.RawStore64(&index->entries[0], MakeTierEntry(slot))
                  ? OkStatus()
                  : PermissionDenied("");
     }},
    {"dir_index_cycle",
     [](MaliciousLibFs& fs, const std::string& p, Rng&) {
       // Applied to a directory: its dirent-page chain loops, so a naive readdir never
       // terminates. The verifier's bounded walk must flag it within its deadline.
       TRIO_ASSIGN_OR_RETURN(DirentBlock * d, fs.MapTarget(p));
       if (d->first_index_page == 0) {
         return InvalidArgument("directory has no dirent pages");
       }
       auto* index =
           reinterpret_cast<IndexPage*>(fs.raw_pool().PageAddress(d->first_index_page));
       return fs.RawStore64(&index->next, d->first_index_page) ? OkStatus()
                                                               : PermissionDenied("");
     }},
};

}  // namespace

size_t CorruptionScenarioCount() { return sizeof(kScripts) / sizeof(kScripts[0]); }

std::string CorruptionScenarioName(size_t scenario_index) {
  return kScripts[scenario_index % CorruptionScenarioCount()].name;
}

Status ApplyScriptedCorruption(MaliciousLibFs& attacker, const std::string& path,
                               size_t scenario_index, uint64_t seed) {
  Rng rng(seed * 7919 + scenario_index);
  return kScripts[scenario_index % CorruptionScenarioCount()].apply(attacker, path, rng);
}

}  // namespace trio
