// Trio core-state format (§4.1). This is the single, explicitly defined data layout that all
// components — every LibFS, the kernel controller, and the integrity verifier — share as
// common knowledge. A LibFS may never change these structures; everything else it keeps
// (radix trees, hash tables, fd tables, locks) is private auxiliary state.
//
// Layout of the pool:
//   page 0                      : Superblock (LibFS: read-only)
//   pages [1, kernel_end)      : shadow inode table (LibFS: no access; kernel only)
//   pages [kernel_end, total)  : file pages — index pages and data pages of regular files
//                                 and directories, plus journal pages leased to LibFSes.
//
// A file's NVM pages contain only that file's state (§3.2), so the MMU (MmuSim here) can
// grant access per file. The one page-granularity exception, inherited from the paper's
// design: a file's inode is co-located with its directory entry inside its *parent
// directory's* data page (§4.1), so a write grant on a file includes its dirent page; the
// integrity verifier run over the directory is what confines corruption of sibling dirents.

#ifndef SRC_CORE_FORMAT_H_
#define SRC_CORE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "src/nvm/nvm.h"

namespace trio {

using Ino = uint64_t;

inline constexpr uint64_t kSuperMagic = 0x5452494f41524b46ull;  // "TRIOARKF"
inline constexpr uint32_t kFormatVersion = 1;

inline constexpr Ino kInvalidIno = 0;
inline constexpr Ino kRootIno = 1;

// ---- Index pages (§4.1) ----
// "Each entry of index pages points to a data page. The last entry of an index page points
// to the next index page."
inline constexpr size_t kIndexEntriesPerPage = kPageSize / sizeof(uint64_t) - 1;  // 511

struct IndexPage {
  uint64_t entries[kIndexEntriesPerPage];  // Data page numbers; 0 = hole / unallocated.
  uint64_t next;                           // Next index page number; 0 = end of chain.
};
static_assert(sizeof(IndexPage) == kPageSize);

// ---- Tiered entries ----
// A regular file's index entry may reference a slot on the slow backend tier instead of
// an NVM page: bit 63 tags the entry and the low bits carry the backend slot number.
// NVM page numbers never approach 2^63, so the encodings cannot collide. Only regular
// files digest; directory chains and index pages themselves stay NVM-resident, so a
// tagged entry in a directory is corruption by definition.
inline constexpr uint64_t kTierEntryTag = 1ull << 63;

inline bool IsTierEntry(uint64_t entry) { return (entry & kTierEntryTag) != 0; }
inline uint64_t TierSlotOfEntry(uint64_t entry) { return entry & ~kTierEntryTag; }
inline uint64_t MakeTierEntry(uint64_t slot) { return slot | kTierEntryTag; }

// ---- Directory entries (§4.1) ----
// A DirentBlock co-locates the dirent with the file's inode. The `ino` field doubles as the
// validity marker and the 8-byte atomic-commit field (§4.4): slots with ino == 0 are free;
// create persists every other field first and commits by storing the inode number last.

inline constexpr size_t kMaxNameLen = 48;
inline constexpr size_t kDirentBlockSize = 128;
inline constexpr size_t kDirentsPerPage = kPageSize / kDirentBlockSize;  // 32

// File type + permission bits, deliberately errno/POSIX-flavoured.
inline constexpr uint32_t kModeTypeMask = 0xF000;
inline constexpr uint32_t kModeRegular = 0x8000;
inline constexpr uint32_t kModeDirectory = 0x4000;
inline constexpr uint32_t kModePermMask = 0x0FFF;

struct DirentBlock {
  uint64_t ino;               // 0 => free slot. Written last (atomic commit).
  uint64_t first_index_page;  // Head of the file's index-page chain; 0 => no pages yet.
  uint64_t size;              // Regular file: size in bytes. Directory: always 0.
  uint32_t mode;              // Type | permission. Cached; shadow inode is ground truth (I4).
  uint32_t uid;
  uint32_t gid;
  uint32_t nlink;             // Always 1 for files, 1 + subdirs irrelevant: no hard links.
  int64_t mtime_ns;
  int64_t ctime_ns;
  uint64_t generation;        // Bumped by the kernel on each write-grant; anti-ABA.
  uint16_t name_len;          // Bytes of `name` in use; 1..kMaxNameLen-1.
  uint8_t reserved[6];        // Must be zero (checked by I1).
  char name[kMaxNameLen];     // Not NUL-terminated; name_len gives the length.
  uint64_t reserved2;         // Must be zero (checked by I1).

  bool IsFree() const { return ino == kInvalidIno; }
  bool IsDirectory() const { return (mode & kModeTypeMask) == kModeDirectory; }
  bool IsRegular() const { return (mode & kModeTypeMask) == kModeRegular; }
  std::string_view Name() const { return std::string_view(name, name_len); }
  void SetName(std::string_view n) {
    std::memset(name, 0, sizeof(name));
    std::memcpy(name, n.data(), n.size());
    name_len = static_cast<uint16_t>(n.size());
  }
};
static_assert(sizeof(DirentBlock) == kDirentBlockSize);

// A directory data page is an array of DirentBlock slots; appending to a non-full page is
// the per-page "logging tail" the LibFS parallelizes over (§4.2).
struct DirDataPage {
  DirentBlock slots[kDirentsPerPage];
};
static_assert(sizeof(DirDataPage) == kPageSize);

// ---- Shadow inode table (§4.1, I4) ----
// Kernel-only ground truth for access permission; the mode/uid/gid inside a DirentBlock is
// merely a cache a malicious sibling-writer could scribble on.
struct ShadowInode {
  uint32_t mode;
  uint32_t uid;
  uint32_t gid;
  uint32_t flags;  // Bit 0: exists.

  bool Exists() const { return (flags & 1u) != 0; }
};
static_assert(sizeof(ShadowInode) == 16);

inline constexpr size_t kShadowInodesPerPage = kPageSize / sizeof(ShadowInode);

// ---- Superblock (page 0) ----
struct Superblock {
  uint64_t magic;
  uint32_t version;
  uint32_t num_nodes;            // NUMA nodes the pool is striped over.
  uint64_t total_pages;
  uint64_t shadow_table_page;    // First page of the shadow inode table.
  uint64_t shadow_table_pages;   // Length of the shadow inode table, in pages.
  uint64_t file_region_page;     // First LibFS-mappable page.
  uint64_t wmap_log_page;        // First kernel page logging write-mapped inos (recovery).
  uint64_t wmap_log_pages;       // Length of the write-map log, in pages.
  uint64_t wmap_log_overflow;    // Set when the log filled; recovery then verifies ALL files.
  uint64_t max_inodes;
  uint64_t clean_shutdown;       // 1 after clean unmount; 0 while mounted (recovery check).
  DirentBlock root;              // Root directory's co-located inode (name "/").
};
static_assert(sizeof(Superblock) <= kPageSize);

inline Superblock* SuperblockOf(NvmPool& pool) {
  return reinterpret_cast<Superblock*>(pool.PageAddress(0));
}
inline const Superblock* SuperblockOf(const NvmPool& pool) {
  return reinterpret_cast<const Superblock*>(pool.PageAddress(0));
}

// Does `name` satisfy the core-state naming rules (enforced by I1)?
inline bool ValidFileName(std::string_view name) {
  if (name.empty() || name.size() >= kMaxNameLen) {
    return false;
  }
  if (name == "." || name == "..") {
    return false;  // Never stored in core state (§4.1).
  }
  for (char c : name) {
    if (c == '/' || c == '\0') {
      return false;
    }
  }
  return true;
}

}  // namespace trio

#endif  // SRC_CORE_FORMAT_H_
