// Ownership state of shared file-system resources (NVM pages and inode numbers), the
// "global file system information" the kernel controller maintains for invariant I2
// (§4.3): (1) all inodes and pages write-mapped or allocated (leased) to each LibFS and
// (2) all inodes and pages in existing files. The integrity verifier has read access to
// this information through OwnershipView.

#ifndef SRC_CORE_OWNERSHIP_H_
#define SRC_CORE_OWNERSHIP_H_

#include <cstdint>

#include "src/core/format.h"

namespace trio {

// LibFS identity handed out by the kernel controller at registration time.
using LibFsId = uint32_t;
inline constexpr LibFsId kNoLibFs = 0;

// Trust group (§3.2): processes in one group share a LibFS and skip sharing costs.
using TrustGroupId = uint32_t;

enum class ResourceState : uint8_t {
  kFree = 0,   // Unallocated, owned by the kernel's free pool.
  kLeased,     // Allocated to a LibFS; not yet part of any reconciled file.
  kOwned,      // Part of an existing file's core state.
  kReserved,   // Superblock / shadow table / other kernel region (pages only).
};

struct PageState {
  ResourceState state = ResourceState::kFree;
  LibFsId lessee = kNoLibFs;  // Valid when state == kLeased.
  Ino owner = kInvalidIno;    // Valid when state == kOwned: the file this page belongs to.
};

struct InoState {
  ResourceState state = ResourceState::kFree;
  LibFsId lessee = kNoLibFs;   // Valid when state == kLeased.
  Ino parent = kInvalidIno;    // Valid when state == kOwned: the containing directory.
};

// Read-only view of the ownership tables, implemented by the kernel controller and
// consumed by the integrity verifier (the verifier is trusted but unprivileged: it reads,
// never writes).
class OwnershipView {
 public:
  virtual ~OwnershipView() = default;
  virtual PageState StateOfPage(PageNumber page) const = 0;
  virtual InoState StateOfIno(Ino ino) const = 0;
};

}  // namespace trio

#endif  // SRC_CORE_OWNERSHIP_H_
