#include "src/core/core_state.h"

#include <ctime>

#include "src/obs/persist_span.h"

namespace trio {

namespace {
// Format/mkfs persistence accounting (layer "core"). Function-local static: core_state
// has no instance to hang it on, and mkfs runs once per pool.
obs::PersistStats& CorePersistStats() {
  static obs::PersistStats* stats = new obs::PersistStats("core");
  return *stats;
}
}  // namespace

Status Format(NvmPool& pool, const FormatOptions& options) {
  if (options.max_inodes < 2) {
    return InvalidArgument("max_inodes must be at least 2");
  }
  const uint64_t shadow_pages =
      (options.max_inodes + kShadowInodesPerPage - 1) / kShadowInodesPerPage;
  const uint64_t wmap_log = 1 + shadow_pages;
  const uint64_t wmap_log_pages = 8;  // 4096 concurrently write-mapped files.
  const uint64_t file_region = wmap_log + wmap_log_pages;
  if (file_region + 8 > pool.num_pages()) {
    return NoSpace("pool too small for shadow inode table");
  }

  Superblock sb;
  std::memset(&sb, 0, sizeof(sb));
  sb.magic = kSuperMagic;
  sb.version = kFormatVersion;
  sb.num_nodes = options.num_nodes;
  sb.total_pages = pool.num_pages();
  sb.shadow_table_page = 1;
  sb.shadow_table_pages = shadow_pages;
  sb.wmap_log_page = wmap_log;
  sb.wmap_log_pages = wmap_log_pages;
  sb.file_region_page = file_region;
  sb.max_inodes = options.max_inodes;
  sb.clean_shutdown = 1;

  // Root directory: ino 1, rwxr-xr-x. The root's dirent lives in the read-only superblock,
  // so its index chain is preallocated here — no LibFS ever needs to write page 0.
  sb.root.ino = kRootIno;
  sb.root.first_index_page = file_region;
  sb.root.size = 0;
  sb.root.mode = kModeDirectory | 0755;
  sb.root.uid = 0;
  sb.root.gid = 0;
  sb.root.nlink = 1;
  sb.root.mtime_ns = 0;
  sb.root.ctime_ns = 0;
  sb.root.generation = 1;
  sb.root.SetName("/");

  obs::PersistSpan span(pool, &CorePersistStats());
  pool.Write(pool.PageAddress(0), &sb, sizeof(sb));
  span.PersistNow(pool.PageAddress(0), sizeof(sb));

  // Zero the shadow table, the write-map log, and the root's preallocated index page.
  for (uint64_t p = sb.shadow_table_page; p <= file_region; ++p) {
    pool.Set(pool.PageAddress(p), 0, kPageSize);
    span.Persist(pool.PageAddress(p), kPageSize);
  }
  span.Fence();

  ShadowInode root_shadow{};
  root_shadow.mode = sb.root.mode;
  root_shadow.uid = 0;
  root_shadow.gid = 0;
  root_shadow.flags = 1;
  ShadowInode* slot = ShadowInodeOf(pool, kRootIno);
  pool.Write(slot, &root_shadow, sizeof(root_shadow));
  span.PersistNow(slot, sizeof(root_shadow));
  return OkStatus();
}

Status CheckSuperblock(const NvmPool& pool) {
  const Superblock* sb = SuperblockOf(pool);
  if (sb->magic != kSuperMagic) {
    return Corrupted("bad superblock magic");
  }
  if (sb->version != kFormatVersion) {
    return NotSupported("format version mismatch");
  }
  if (sb->total_pages != pool.num_pages()) {
    return Corrupted("superblock page count does not match pool");
  }
  return OkStatus();
}

ShadowInode* ShadowInodeOf(NvmPool& pool, Ino ino) {
  Superblock* sb = SuperblockOf(pool);
  if (ino == kInvalidIno || ino >= sb->max_inodes) {
    return nullptr;
  }
  const uint64_t page = sb->shadow_table_page + ino / kShadowInodesPerPage;
  auto* table = reinterpret_cast<ShadowInode*>(pool.PageAddress(page));
  return &table[ino % kShadowInodesPerPage];
}

PageNumber FileRegionStart(const NvmPool& pool) { return SuperblockOf(pool)->file_region_page; }

bool ValidFilePage(const NvmPool& pool, PageNumber page) {
  const Superblock* sb = SuperblockOf(pool);
  return page >= sb->file_region_page && page < sb->total_pages;
}

Status ForEachIndexPage(const NvmPool& pool, PageNumber first_index_page,
                        const std::function<Status(PageNumber)>& fn) {
  PageNumber page = first_index_page;
  uint64_t visited = 0;
  while (page != 0) {
    if (!ValidFilePage(pool, page)) {
      return Corrupted("index page number out of range");
    }
    if (++visited > pool.num_pages()) {
      return Corrupted("cycle in index page chain");
    }
    TRIO_RETURN_IF_ERROR(fn(page));
    page = reinterpret_cast<const IndexPage*>(pool.PageAddress(page))->next;
  }
  return OkStatus();
}

Status ForEachDataPage(const NvmPool& pool, PageNumber first_index_page,
                       const std::function<Status(uint64_t, PageNumber)>& fn) {
  return ForEachDataEntry(pool, first_index_page, [&](uint64_t index, uint64_t entry) -> Status {
    if (IsTierEntry(entry)) {
      return OkStatus();  // Digested to the backend; not an NVM page.
    }
    return fn(index, entry);
  });
}

Status ForEachDataEntry(const NvmPool& pool, PageNumber first_index_page,
                        const std::function<Status(uint64_t, uint64_t)>& fn) {
  uint64_t base_index = 0;
  return ForEachIndexPage(pool, first_index_page, [&](PageNumber page) -> Status {
    const auto* index = reinterpret_cast<const IndexPage*>(pool.PageAddress(page));
    for (size_t i = 0; i < kIndexEntriesPerPage; ++i) {
      const uint64_t entry = index->entries[i];
      if (entry == 0) {
        continue;  // Hole.
      }
      if (!IsTierEntry(entry) && !ValidFilePage(pool, entry)) {
        return Corrupted("data page number out of range");
      }
      TRIO_RETURN_IF_ERROR(fn(base_index + i, entry));
    }
    base_index += kIndexEntriesPerPage;
    return OkStatus();
  });
}

Status ForEachDirent(NvmPool& pool, PageNumber first_index_page,
                     const std::function<Status(DirentBlock*, PageNumber, size_t)>& fn) {
  return ForEachDataPage(pool, first_index_page,
                         [&](uint64_t /*file_page_index*/, PageNumber page) -> Status {
                           auto* dir_page = reinterpret_cast<DirDataPage*>(pool.PageAddress(page));
                           for (size_t slot = 0; slot < kDirentsPerPage; ++slot) {
                             DirentBlock* dirent = &dir_page->slots[slot];
                             // The ino is the atomic publish field (§4.4): an acquire
                             // load pairs with the writer's release store so a dirent is
                             // either invisible or fully written — the kernel scans
                             // pages a LibFS may be committing to concurrently.
                             if (pool.Load64(&dirent->ino) == kInvalidIno) {
                               continue;
                             }
                             TRIO_RETURN_IF_ERROR(fn(dirent, page, slot));
                           }
                           return OkStatus();
                         });
}

Result<uint64_t> CountDirents(NvmPool& pool, PageNumber first_index_page) {
  uint64_t count = 0;
  Status status = ForEachDirent(pool, first_index_page,
                                [&](DirentBlock*, PageNumber, size_t) -> Status {
                                  ++count;
                                  return OkStatus();
                                });
  if (!status.ok()) {
    return status;
  }
  return count;
}

Result<PageNumber> LookupDataPage(const NvmPool& pool, PageNumber first_index_page,
                                  uint64_t file_page_index) {
  PageNumber found = 0;
  Status status =
      ForEachDataPage(pool, first_index_page, [&](uint64_t index, PageNumber page) -> Status {
        if (index == file_page_index) {
          found = page;
          // Use a sentinel error to stop the walk early; translated below.
          return Status(ErrorCode::kTimeout, "stop");
        }
        return OkStatus();
      });
  if (found != 0) {
    return found;
  }
  if (!status.ok() && !status.Is(ErrorCode::kTimeout)) {
    return status;
  }
  return NotFound("no data page at index");
}

}  // namespace trio
