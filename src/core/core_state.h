// Read-side helpers over the core state: mkfs, shadow-inode access, and bounds-checked
// walkers over index-page chains and directory entries. The walkers never trust a page
// number (they bound-check against the file region and detect cycles), so the integrity
// verifier and auxiliary-state rebuild can run them over possibly-corrupted state.

#ifndef SRC_CORE_CORE_STATE_H_
#define SRC_CORE_CORE_STATE_H_

#include <cstdint>
#include <functional>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/core/format.h"
#include "src/nvm/nvm.h"

namespace trio {

struct FormatOptions {
  uint64_t max_inodes = 1 << 16;
  uint32_t num_nodes = 1;
};

// mkfs: lays out superblock + shadow inode table and creates an empty root directory.
Status Format(NvmPool& pool, const FormatOptions& options);

// Validates magic/version (called on "mount").
Status CheckSuperblock(const NvmPool& pool);

// Ground-truth permission record for `ino` (kernel-only region). Returns nullptr if the
// ino is out of range.
ShadowInode* ShadowInodeOf(NvmPool& pool, Ino ino);

// First LibFS-mappable page (everything below is superblock + kernel region).
PageNumber FileRegionStart(const NvmPool& pool);

// Is `page` a plausible file-region page (used by the verifier and walkers)?
bool ValidFilePage(const NvmPool& pool, PageNumber page);

// ---- Walkers ----

// Visits each index page of the chain starting at `first_index_page`.
// The callback receives the page number and may return a non-OK status to stop.
// Returns kCorrupted on out-of-range page numbers or cycles.
Status ForEachIndexPage(const NvmPool& pool, PageNumber first_index_page,
                        const std::function<Status(PageNumber)>& fn);

// Visits each NVM-resident data page with its logical index within the file
// (file_page_index = byte_offset / kPageSize). Holes (entry == 0) and tier entries
// (digested to the slow backend; see IsTierEntry) are skipped — callers that must see
// digested state use ForEachDataEntry.
Status ForEachDataPage(const NvmPool& pool, PageNumber first_index_page,
                       const std::function<Status(uint64_t file_page_index, PageNumber)>& fn);

// Visits every non-hole index entry RAW: NVM entries are bounds-checked page numbers,
// tier entries are passed through tagged (decode with TierSlotOfEntry). Used by the
// verifier, fsck, digestion, and LibFS aux rebuild — the walkers that must account for
// both tiers.
Status ForEachDataEntry(const NvmPool& pool, PageNumber first_index_page,
                        const std::function<Status(uint64_t file_page_index, uint64_t entry)>& fn);

// Visits each live DirentBlock of the directory whose chain starts at `first_index_page`.
// The pointer stays valid as long as the pool does; `page`/`slot` locate it.
Status ForEachDirent(
    NvmPool& pool, PageNumber first_index_page,
    const std::function<Status(DirentBlock* dirent, PageNumber page, size_t slot)>& fn);

// Counts live dirents (kNotFound-free convenience used by rmdir and I3).
Result<uint64_t> CountDirents(NvmPool& pool, PageNumber first_index_page);

// The data page covering logical file page `file_page_index`, or kNotFound if it is a hole
// or beyond the chain. O(chain length) — LibFSes use their radix tree instead; this is for
// the verifier and for rebuild.
Result<PageNumber> LookupDataPage(const NvmPool& pool, PageNumber first_index_page,
                                  uint64_t file_page_index);

}  // namespace trio

#endif  // SRC_CORE_CORE_STATE_H_
