#include "src/baselines/simple_kernel_fs.h"

#include <algorithm>
#include <cstring>

#include "src/common/per_cpu.h"
#include "src/obs/persist_span.h"

namespace trio {

namespace {
constexpr size_t kKInodesPerPage = kPageSize / sizeof(SimpleKernelFs::KInode);
constexpr size_t kKDirentsPerBlock = kPageSize / sizeof(SimpleKernelFs::KDirent);

// mkfs-time persistence accounting (static Format has no instance to charge).
obs::PersistStats& FormatPersistStats() {
  static obs::PersistStats* stats = new obs::PersistStats("baselines");
  return *stats;
}
}  // namespace

Status SimpleKernelFs::Format(NvmPool& pool, const KernelFsOptions& options) {
  const uint64_t inode_pages =
      (options.max_inodes + kKInodesPerPage - 1) / kKInodesPerPage;
  const uint64_t bitmap_pages = (pool.num_pages() / 8 + kPageSize - 1) / kPageSize;
  const uint64_t journal_pages =
      options.journal_mode == JournalMode::kNone ? 0 : std::max<size_t>(1,
                                                                        options.journal_shards);
  KSuper super{};
  super.magic = kKMagic;
  super.total_pages = pool.num_pages();
  super.inode_table_page = 1;
  super.max_inodes = options.max_inodes;
  super.bitmap_page = 1 + inode_pages;
  super.bitmap_pages = bitmap_pages;
  super.journal_page = super.bitmap_page + bitmap_pages;
  super.journal_pages = journal_pages;
  super.data_start = super.journal_page + journal_pages;
  if (super.data_start + 8 > pool.num_pages()) {
    return NoSpace("pool too small for kernel FS layout");
  }
  pool.Write(pool.PageAddress(0), &super, sizeof(super));
  for (uint64_t p = 1; p < super.data_start; ++p) {
    pool.Set(pool.PageAddress(p), 0, kPageSize);
  }
  // Root inode.
  auto* table = reinterpret_cast<KInode*>(pool.PageAddress(super.inode_table_page));
  KInode root{};
  root.mode = kModeDirectory | 0755;
  root.nlink = 1;
  pool.Write(&table[kKRootIno], &root, sizeof(root));
  obs::PersistSpan(pool, &FormatPersistStats()).PersistNow(pool.PageAddress(0), kPageSize);
  return OkStatus();
}

SimpleKernelFs::SimpleKernelFs(NvmPool& pool, const KernelFsOptions& options)
    : pool_(pool), options_(options) {
  TRIO_CHECK(Super()->magic == kKMagic) << "pool not formatted for SimpleKernelFs";
  bitmap_cursor_ = Super()->data_start;
  if (options_.journal_mode != JournalMode::kNone) {
    const uint64_t shards =
        options_.journal_mode == JournalMode::kGlobalJournal ? 1 : Super()->journal_pages;
    for (uint64_t i = 0; i < shards; ++i) {
      journals_.push_back(std::make_unique<UndoJournal>(pool_, Super()->journal_page + i,
                                                        &persist_stats_));
    }
  }
}

SimpleKernelFs::KInode* SimpleKernelFs::InodeOf(Ino ino) {
  if (ino == kInvalidIno || ino >= Super()->max_inodes) {
    return nullptr;
  }
  auto* table = reinterpret_cast<KInode*>(
      pool_.PageAddress(Super()->inode_table_page + ino / kKInodesPerPage));
  return &table[ino % kKInodesPerPage];
}

UndoJournal* SimpleKernelFs::ShardFor(Ino ino) {
  if (journals_.empty()) {
    return nullptr;
  }
  switch (options_.journal_mode) {
    case JournalMode::kGlobalJournal:
      return journals_[0].get();
    case JournalMode::kPerInodeLog:
      return journals_[ino % journals_.size()].get();
    case JournalMode::kPerCpuJournal:
      return journals_[ThisThreadShardIndex() % journals_.size()].get();
    case JournalMode::kNone:
      return nullptr;
  }
  return nullptr;
}

Result<PageNumber> SimpleKernelFs::AllocBlock() {
  std::lock_guard<std::mutex> guard(alloc_mutex_);
  auto* bitmap = reinterpret_cast<uint8_t*>(pool_.PageAddress(Super()->bitmap_page));
  const uint64_t total = Super()->total_pages;
  for (uint64_t scanned = 0; scanned < total; ++scanned) {
    const uint64_t page = Super()->data_start +
                          (bitmap_cursor_ - Super()->data_start + scanned) %
                              (total - Super()->data_start);
    if ((bitmap[page / 8] & (1u << (page % 8))) == 0) {
      uint8_t byte = bitmap[page / 8] | (1u << (page % 8));
      pool_.Write(&bitmap[page / 8], &byte, 1);
      obs::PersistSpan(pool_, &persist_stats_).PersistNow(&bitmap[page / 8], 1);
      bitmap_cursor_ = page + 1;
      pool_.Set(pool_.PageAddress(page), 0, kPageSize);
      return page;
    }
  }
  return NoSpace("kernel FS out of blocks");
}

void SimpleKernelFs::FreeBlock(PageNumber page) {
  std::lock_guard<std::mutex> guard(alloc_mutex_);
  auto* bitmap = reinterpret_cast<uint8_t*>(pool_.PageAddress(Super()->bitmap_page));
  uint8_t byte = bitmap[page / 8] & ~(1u << (page % 8));
  pool_.Write(&bitmap[page / 8], &byte, 1);
  obs::PersistSpan(pool_, &persist_stats_).PersistNow(&bitmap[page / 8], 1);
}

Result<Ino> SimpleKernelFs::AllocInode() {
  std::lock_guard<std::mutex> guard(alloc_mutex_);
  for (Ino ino = kKRootIno + 1; ino < Super()->max_inodes; ++ino) {
    KInode* inode = InodeOf(ino);
    if (inode->nlink == 0) {
      return ino;
    }
  }
  return NoSpace("kernel FS out of inodes");
}

void SimpleKernelFs::FreeInode(Ino ino) {
  KInode* inode = InodeOf(ino);
  KInode cleared{};
  cleared.generation = inode->generation + 1;
  pool_.Write(inode, &cleared, sizeof(cleared));
  obs::PersistSpan(pool_, &persist_stats_).PersistNow(inode, sizeof(cleared));
}

Result<PageNumber> SimpleKernelFs::BlockOf(KInode* inode, uint64_t index, bool grow) {
  auto resolve_slot = [&](uint64_t* slot) -> Result<PageNumber> {
    if (*slot == 0) {
      if (!grow) {
        return NotFound("hole");
      }
      TRIO_ASSIGN_OR_RETURN(PageNumber fresh, AllocBlock());
      obs::PersistSpan(pool_, &persist_stats_).CommitStore64(slot, fresh);
    }
    return static_cast<PageNumber>(*slot);
  };

  if (index < kDirectBlocks) {
    return resolve_slot(&inode->direct[index]);
  }
  index -= kDirectBlocks;
  if (index < kPointersPerBlock) {
    TRIO_ASSIGN_OR_RETURN(PageNumber ind, resolve_slot(&inode->indirect));
    auto* pointers = reinterpret_cast<uint64_t*>(pool_.PageAddress(ind));
    return resolve_slot(&pointers[index]);
  }
  index -= kPointersPerBlock;
  if (index < kPointersPerBlock * kPointersPerBlock) {
    TRIO_ASSIGN_OR_RETURN(PageNumber dind, resolve_slot(&inode->dindirect));
    auto* level1 = reinterpret_cast<uint64_t*>(pool_.PageAddress(dind));
    TRIO_ASSIGN_OR_RETURN(PageNumber ind, resolve_slot(&level1[index / kPointersPerBlock]));
    auto* level2 = reinterpret_cast<uint64_t*>(pool_.PageAddress(ind));
    return resolve_slot(&level2[index % kPointersPerBlock]);
  }
  return TooLarge("file exceeds double-indirect capacity");
}

Status SimpleKernelFs::ForEachDirentBlock(
    KInode* dir, const std::function<Status(KDirent*, size_t)>& fn) {
  const uint64_t blocks = (dir->size + kPageSize - 1) / kPageSize;
  for (uint64_t b = 0; b < blocks; ++b) {
    Result<PageNumber> page = BlockOf(dir, b, /*grow=*/false);
    if (!page.ok()) {
      continue;
    }
    auto* dirents = reinterpret_cast<KDirent*>(pool_.PageAddress(*page));
    for (size_t i = 0; i < kKDirentsPerBlock; ++i) {
      TRIO_RETURN_IF_ERROR(fn(&dirents[i], b * kKDirentsPerBlock + i));
    }
  }
  return OkStatus();
}

Result<Ino> SimpleKernelFs::Lookup(Ino dir, std::string_view name) {
  KInode* inode = InodeOf(dir);
  if (inode == nullptr || inode->nlink == 0) {
    return NotFound("no such directory");
  }
  if ((inode->mode & kModeTypeMask) != kModeDirectory) {
    return NotDir("lookup in non-directory");
  }
  Ino found = kInvalidIno;
  Status walk = ForEachDirentBlock(inode, [&](KDirent* d, size_t) -> Status {
    if (d->ino != 0 && d->Name() == name) {
      found = d->ino;
      return Status(ErrorCode::kTimeout, "stop");
    }
    return OkStatus();
  });
  if (found != kInvalidIno) {
    return found;
  }
  if (!walk.ok() && !walk.Is(ErrorCode::kTimeout)) {
    return walk;
  }
  return NotFound(std::string(name));
}

Result<Ino> SimpleKernelFs::Create(Ino dir, std::string_view name, uint32_t mode) {
  if (name.empty() || name.size() > 55) {
    return NameTooLong(std::string(name));
  }
  KInode* dir_inode = InodeOf(dir);
  if (dir_inode == nullptr || (dir_inode->mode & kModeTypeMask) != kModeDirectory) {
    return NotDir("create in non-directory");
  }
  if (Lookup(dir, name).ok()) {
    return AlreadyExists(std::string(name));
  }
  TRIO_ASSIGN_OR_RETURN(Ino ino, AllocInode());

  // Find or grow a dirent slot.
  KDirent* slot = nullptr;
  TRIO_RETURN_IF_ERROR(ForEachDirentBlock(dir_inode, [&](KDirent* d, size_t) -> Status {
    if (slot == nullptr && d->ino == 0) {
      slot = d;
    }
    return OkStatus();
  }));
  if (slot == nullptr) {
    const uint64_t block_index = dir_inode->size / kPageSize;
    TRIO_ASSIGN_OR_RETURN(PageNumber page, BlockOf(dir_inode, block_index, /*grow=*/true));
    obs::PersistSpan(pool_, &persist_stats_)
        .CommitStore64(&dir_inode->size, dir_inode->size + kPageSize);
    slot = reinterpret_cast<KDirent*>(pool_.PageAddress(page));
  }

  // Journaled metadata update: inode + dirent pre-images, then in-place writes.
  UndoJournal* journal = ShardFor(ino);
  KInode* inode = InodeOf(ino);
  if (journal != nullptr) {
    std::lock_guard<SpinLock> guard(journal->lock());
    journal->Begin();
    TRIO_RETURN_IF_ERROR(journal->LogPreImage(inode, sizeof(KInode)));
    TRIO_RETURN_IF_ERROR(journal->LogPreImage(slot, sizeof(KDirent)));
    journal->Activate();
    journal_bytes_.fetch_add(sizeof(KInode) + sizeof(KDirent), std::memory_order_relaxed);

    KInode fresh{};
    fresh.mode = mode;
    fresh.nlink = 1;
    fresh.generation = inode->generation + 1;
    pool_.Write(inode, &fresh, sizeof(fresh));
    KDirent dirent{};
    dirent.ino = ino;
    dirent.name_len = static_cast<uint8_t>(name.size());
    std::memcpy(dirent.name, name.data(), name.size());
    pool_.Write(slot, &dirent, sizeof(dirent));
    obs::PersistSpan span(pool_, &persist_stats_);
    span.Persist(inode, sizeof(fresh));
    span.Persist(slot, sizeof(dirent));
    span.Fence();
    journal->Deactivate();
  } else {
    // PMFS-style ordering: inode first, dirent ino last (the commit word).
    obs::PersistSpan span(pool_, &persist_stats_);
    KInode fresh{};
    fresh.mode = mode;
    fresh.nlink = 1;
    fresh.generation = inode->generation + 1;
    pool_.Write(inode, &fresh, sizeof(fresh));
    span.PersistNow(inode, sizeof(fresh));
    KDirent dirent{};
    dirent.ino = 0;
    dirent.name_len = static_cast<uint8_t>(name.size());
    std::memcpy(dirent.name, name.data(), name.size());
    pool_.Write(slot, &dirent, sizeof(dirent));
    span.PersistNow(slot, sizeof(dirent));
    span.CommitStore64(&slot->ino, ino);
  }
  return ino;
}

Status SimpleKernelFs::Remove(Ino dir, std::string_view name, bool must_be_dir) {
  KInode* dir_inode = InodeOf(dir);
  if (dir_inode == nullptr) {
    return NotFound("no such directory");
  }
  KDirent* slot = nullptr;
  TRIO_RETURN_IF_ERROR(ForEachDirentBlock(dir_inode, [&](KDirent* d, size_t) -> Status {
    if (slot == nullptr && d->ino != 0 && d->Name() == name) {
      slot = d;
    }
    return OkStatus();
  }));
  if (slot == nullptr) {
    return NotFound(std::string(name));
  }
  const Ino ino = slot->ino;
  KInode* inode = InodeOf(ino);
  const bool is_dir = (inode->mode & kModeTypeMask) == kModeDirectory;
  if (must_be_dir && !is_dir) {
    return NotDir(std::string(name));
  }
  if (!must_be_dir && is_dir) {
    return IsDir(std::string(name));
  }
  if (is_dir) {
    uint64_t live = 0;
    TRIO_RETURN_IF_ERROR(ForEachDirentBlock(inode, [&](KDirent* d, size_t) -> Status {
      live += d->ino != 0 ? 1 : 0;
      return OkStatus();
    }));
    if (live != 0) {
      return NotEmpty(std::string(name));
    }
  }
  // Free data blocks.
  TRIO_RETURN_IF_ERROR(Truncate(ino, 0));
  obs::PersistSpan(pool_, &persist_stats_).CommitStore64(&slot->ino, 0);
  FreeInode(ino);
  return OkStatus();
}

Status SimpleKernelFs::Rename(Ino src_dir, std::string_view src_name, Ino dst_dir,
                              std::string_view dst_name) {
  TRIO_ASSIGN_OR_RETURN(Ino ino, Lookup(src_dir, src_name));
  Result<Ino> existing = Lookup(dst_dir, dst_name);
  if (existing.ok()) {
    KInode* target = InodeOf(*existing);
    const bool dst_is_dir = (target->mode & kModeTypeMask) == kModeDirectory;
    TRIO_RETURN_IF_ERROR(Remove(dst_dir, dst_name, dst_is_dir));
  }
  KInode* inode = InodeOf(ino);
  const uint32_t mode = inode->mode;
  // Insert new entry pointing at the same inode, then remove the old entry. (Journaled
  // engines would wrap this in one transaction; the sweep-level crash tests target
  // ArckFS, so the baseline keeps the simple two-step.)
  KInode* dst_inode = InodeOf(dst_dir);
  if (dst_inode == nullptr) {
    return NotFound("destination dir");
  }
  KDirent* slot = nullptr;
  TRIO_RETURN_IF_ERROR(ForEachDirentBlock(dst_inode, [&](KDirent* d, size_t) -> Status {
    if (slot == nullptr && d->ino == 0) {
      slot = d;
    }
    return OkStatus();
  }));
  if (slot == nullptr) {
    const uint64_t block_index = dst_inode->size / kPageSize;
    TRIO_ASSIGN_OR_RETURN(PageNumber page, BlockOf(dst_inode, block_index, true));
    obs::PersistSpan(pool_, &persist_stats_)
        .CommitStore64(&dst_inode->size, dst_inode->size + kPageSize);
    slot = reinterpret_cast<KDirent*>(pool_.PageAddress(page));
  }
  KDirent dirent{};
  dirent.ino = 0;
  dirent.name_len = static_cast<uint8_t>(dst_name.size());
  std::memcpy(dirent.name, dst_name.data(), dst_name.size());
  pool_.Write(slot, &dirent, sizeof(dirent));
  obs::PersistSpan span(pool_, &persist_stats_);
  span.PersistNow(slot, sizeof(dirent));
  span.CommitStore64(&slot->ino, ino);

  // Remove source entry (without freeing the inode).
  KInode* src_inode = InodeOf(src_dir);
  KDirent* src_slot = nullptr;
  TRIO_RETURN_IF_ERROR(ForEachDirentBlock(src_inode, [&](KDirent* d, size_t) -> Status {
    if (src_slot == nullptr && d->ino == ino && d->Name() == src_name) {
      src_slot = d;
    }
    return OkStatus();
  }));
  if (src_slot != nullptr) {
    obs::PersistSpan(pool_, &persist_stats_).CommitStore64(&src_slot->ino, 0);
  }
  (void)mode;
  return OkStatus();
}

Result<size_t> SimpleKernelFs::Read(Ino ino, void* buf, size_t count, uint64_t offset) {
  KInode* inode = InodeOf(ino);
  if (inode == nullptr || inode->nlink == 0) {
    return NotFound("no such file");
  }
  if (offset >= inode->size) {
    return static_cast<size_t>(0);
  }
  count = std::min<uint64_t>(count, inode->size - offset);
  char* dst = static_cast<char*>(buf);
  uint64_t cursor = offset;
  const uint64_t end = offset + count;
  while (cursor < end) {
    const uint64_t in_page = cursor % kPageSize;
    const size_t chunk = std::min<uint64_t>(kPageSize - in_page, end - cursor);
    Result<PageNumber> page = BlockOf(inode, cursor / kPageSize, false);
    if (page.ok()) {
      pool_.Read(dst + (cursor - offset), pool_.PageAddress(*page) + in_page, chunk);
    } else {
      std::memset(dst + (cursor - offset), 0, chunk);
    }
    cursor += chunk;
  }
  return count;
}

Result<size_t> SimpleKernelFs::Write(Ino ino, const void* buf, size_t count,
                                     uint64_t offset) {
  KInode* inode = InodeOf(ino);
  if (inode == nullptr || inode->nlink == 0) {
    return NotFound("no such file");
  }
  const char* src = static_cast<const char*>(buf);
  uint64_t cursor = offset;
  const uint64_t end = offset + count;
  obs::PersistSpan span(pool_, &persist_stats_);
  while (cursor < end) {
    const uint64_t in_page = cursor % kPageSize;
    const size_t chunk = std::min<uint64_t>(kPageSize - in_page, end - cursor);
    TRIO_ASSIGN_OR_RETURN(PageNumber page, BlockOf(inode, cursor / kPageSize, true));
    pool_.Write(pool_.PageAddress(page) + in_page, src + (cursor - offset), chunk);
    span.Persist(pool_.PageAddress(page) + in_page, chunk);
    cursor += chunk;
  }
  span.Fence();
  if (end > inode->size) {
    span.CommitStore64(&inode->size, end);
  }
  return count;
}

uint64_t* SimpleKernelFs::SlotOf(KInode* inode, uint64_t index) {
  if (index < kDirectBlocks) {
    return &inode->direct[index];
  }
  index -= kDirectBlocks;
  if (index < kPointersPerBlock) {
    if (inode->indirect == 0) {
      return nullptr;
    }
    return reinterpret_cast<uint64_t*>(pool_.PageAddress(inode->indirect)) + index;
  }
  index -= kPointersPerBlock;
  if (index < kPointersPerBlock * kPointersPerBlock) {
    if (inode->dindirect == 0) {
      return nullptr;
    }
    auto* level1 = reinterpret_cast<uint64_t*>(pool_.PageAddress(inode->dindirect));
    const uint64_t slot1 = level1[index / kPointersPerBlock];
    if (slot1 == 0) {
      return nullptr;
    }
    return reinterpret_cast<uint64_t*>(pool_.PageAddress(slot1)) +
           index % kPointersPerBlock;
  }
  return nullptr;
}

Status SimpleKernelFs::Truncate(Ino ino, uint64_t size) {
  KInode* inode = InodeOf(ino);
  if (inode == nullptr) {
    return NotFound("no such file");
  }
  const uint64_t old_size = inode->size;
  const uint64_t old_blocks = (old_size + kPageSize - 1) / kPageSize;
  const uint64_t new_blocks = (size + kPageSize - 1) / kPageSize;
  obs::PersistSpan(pool_, &persist_stats_).CommitStore64(&inode->size, size);
  for (uint64_t b = new_blocks; b < old_blocks; ++b) {
    uint64_t* slot = SlotOf(inode, b);
    if (slot != nullptr && *slot != 0) {
      FreeBlock(*slot);
      // Clear the mapping, not just the block: a dangling pointer would alias the freed
      // (and possibly reallocated) page if the file later regrows over this index.
      obs::PersistSpan(pool_, &persist_stats_).CommitStore64(slot, 0);
    }
  }
  if (size < old_size && size % kPageSize != 0) {
    // Shrink landing mid-block: zero the kept block's tail so a later extension exposes
    // zeros beyond the new EOF, not the file's old bytes.
    Result<PageNumber> page = BlockOf(inode, size / kPageSize, false);
    if (page.ok()) {
      const uint64_t in_page = size % kPageSize;
      const std::string zeros(kPageSize - in_page, '\0');
      obs::PersistSpan span(pool_, &persist_stats_);
      pool_.Write(pool_.PageAddress(*page) + in_page, zeros.data(), zeros.size());
      span.Persist(pool_.PageAddress(*page) + in_page, zeros.size());
      span.Fence();
    }
  }
  if (size == 0) {
    // Drop the mapping tree wholesale.
    for (auto& d : inode->direct) {
      pool_.Store64(&d, 0);
    }
    if (inode->indirect != 0) {
      FreeBlock(inode->indirect);
      pool_.Store64(&inode->indirect, 0);
    }
    if (inode->dindirect != 0) {
      auto* level1 = reinterpret_cast<uint64_t*>(pool_.PageAddress(inode->dindirect));
      for (size_t i = 0; i < kPointersPerBlock; ++i) {
        if (level1[i] != 0) {
          FreeBlock(level1[i]);
        }
      }
      FreeBlock(inode->dindirect);
      pool_.Store64(&inode->dindirect, 0);
    }
    obs::PersistSpan(pool_, &persist_stats_).PersistNow(inode, sizeof(KInode));
  }
  return OkStatus();
}

Result<StatInfo> SimpleKernelFs::Stat(Ino ino) {
  KInode* inode = InodeOf(ino);
  if (inode == nullptr || inode->nlink == 0) {
    return NotFound("no such file");
  }
  StatInfo info;
  info.ino = ino;
  info.mode = inode->mode;
  info.uid = inode->uid;
  info.size = inode->size;
  info.mtime_ns = inode->mtime_ns;
  return info;
}

Result<std::vector<DirEntryInfo>> SimpleKernelFs::List(Ino dir) {
  KInode* inode = InodeOf(dir);
  if (inode == nullptr || (inode->mode & kModeTypeMask) != kModeDirectory) {
    return NotDir("list of non-directory");
  }
  std::vector<DirEntryInfo> entries;
  TRIO_RETURN_IF_ERROR(ForEachDirentBlock(inode, [&](KDirent* d, size_t) -> Status {
    if (d->ino != 0) {
      const KInode* child = InodeOf(d->ino);
      entries.push_back(DirEntryInfo{std::string(d->Name()), d->ino,
                                     child != nullptr &&
                                         (child->mode & kModeTypeMask) == kModeDirectory});
    }
    return OkStatus();
  }));
  return entries;
}

Status SimpleKernelFs::Chmod(Ino ino, uint32_t perm) {
  KInode* inode = InodeOf(ino);
  if (inode == nullptr || inode->nlink == 0) {
    return NotFound("no such file");
  }
  const uint32_t mode = (inode->mode & kModeTypeMask) | (perm & kModePermMask);
  pool_.Write(&inode->mode, &mode, sizeof(mode));
  obs::PersistSpan(pool_, &persist_stats_).PersistNow(&inode->mode, sizeof(mode));
  return OkStatus();
}

}  // namespace trio
