#include "src/baselines/fs_factory.h"

#include <cstdlib>

#include "src/core/core_state.h"
#include "src/fpfs/fpfs.h"
#include "src/kvfs/kvfs.h"

namespace trio {

FsFactoryOptions ApplyRingEnv(FsFactoryOptions options) {
  if (const char* enable = std::getenv("TRIO_RING_ENABLE")) {
    options.ring_enable = std::strtoul(enable, nullptr, 10) != 0;
  }
  if (const char* depth = std::getenv("TRIO_RING_DEPTH")) {
    const size_t value = std::strtoul(depth, nullptr, 10);
    if (value > 0) {
      options.ring_depth = value;
      options.ring_enable = true;
    }
  }
  return options;
}

std::unique_ptr<FsInterface> FsInstance::MakeSecondLibFs() {
  TRIO_CHECK(kernel != nullptr) << "second LibFS requires a Trio-based instance";
  return std::make_unique<ArckFs>(*kernel);
}

namespace {

FsInstance MakeTrio(const std::string& name, const FsFactoryOptions& options) {
  FsInstance out;
  NumaTopology topology;
  topology.num_nodes = options.numa_nodes;
  topology.delegation_threads_per_node = options.delegation_threads_per_node;
  out.pool = std::make_unique<NvmPool>(options.pool_pages, NvmMode::kFast, topology);
  FormatOptions format;
  format.max_inodes = 1 << 18;
  format.num_nodes = options.numa_nodes;
  TRIO_CHECK_OK(Format(*out.pool, format));
  KernelConfig config;
  if (options.delegate_read_threshold != 0) {
    config.delegation.read_threshold = options.delegate_read_threshold;
  }
  if (options.delegate_write_threshold != 0) {
    config.delegation.write_threshold = options.delegate_write_threshold;
  }
  out.kernel = std::make_unique<KernelController>(*out.pool, config);
  TRIO_CHECK_OK(out.kernel->Mount());

  ArckFsConfig fs_config;
  if (name == "ArckFS" && options.arckfs_delegation) {
    out.kernel->StartDelegation();
    fs_config.use_delegation = true;
  }
  fs_config.ring.enabled = options.ring_enable;
  if (options.ring_depth != 0) {
    fs_config.ring.depth = options.ring_depth;
  }
  if (name == "ArckFS" || name == "ArckFS-nd") {
    out.fs = std::make_unique<ArckFs>(*out.kernel, fs_config);
  } else if (name == "FPFS") {
    out.fs = std::make_unique<FpFs>(*out.kernel, fs_config);
  } else if (name == "KVFS") {
    out.fs = std::make_unique<KvFs>(*out.kernel, fs_config);
  } else {
    TRIO_CHECK(false) << "unknown Trio fs " << name;
  }
  return out;
}

FsInstance MakeBaseline(const std::string& name, const FsFactoryOptions& options) {
  FsInstance out;
  NumaTopology topology;
  topology.num_nodes = options.numa_nodes;
  topology.delegation_threads_per_node = options.delegation_threads_per_node;
  out.pool = std::make_unique<NvmPool>(options.pool_pages, NvmMode::kFast, topology);
  KernelFsOptions engine_options;
  engine_options.max_inodes = 1 << 18;
  VfsConfig vfs;
  vfs.trap_cost_ns = options.vfs_trap_cost_ns;

  if (name == "SplitFS") {
    engine_options = BaselineOptions(BaselineKind::kExt4);
    engine_options.max_inodes = 1 << 18;
    TRIO_CHECK_OK(SimpleKernelFs::Format(*out.pool, engine_options));
    out.fs = std::make_unique<SplitFsLike>(*out.pool, vfs);
    return out;
  }
  if (name == "Strata") {
    engine_options = BaselineOptions(BaselineKind::kExt4);
    engine_options.max_inodes = 1 << 18;
    TRIO_CHECK_OK(SimpleKernelFs::Format(*out.pool, engine_options));
    out.fs = std::make_unique<StrataLike>(*out.pool, vfs);
    return out;
  }

  BaselineKind kind;
  if (name == "ext4") {
    kind = BaselineKind::kExt4;
  } else if (name == "PMFS") {
    kind = BaselineKind::kPmfs;
  } else if (name == "NOVA") {
    kind = BaselineKind::kNova;
  } else if (name == "WineFS") {
    kind = BaselineKind::kWinefs;
  } else if (name == "OdinFS") {
    kind = BaselineKind::kOdinfs;
  } else {
    TRIO_CHECK(false) << "unknown baseline " << name;
    kind = BaselineKind::kExt4;
  }
  engine_options = BaselineOptions(kind);
  engine_options.max_inodes = 1 << 18;
  TRIO_CHECK_OK(SimpleKernelFs::Format(*out.pool, engine_options));
  out.fs = std::make_unique<KernelFsAdapter>(*out.pool, kind, vfs);
  return out;
}

}  // namespace

FsInstance MakeFs(const std::string& name, const FsFactoryOptions& options) {
  if (name == "ArckFS" || name == "ArckFS-nd" || name == "FPFS" || name == "KVFS") {
    FsFactoryOptions adjusted = ApplyRingEnv(options);
    if (name == "ArckFS") {
      adjusted.arckfs_delegation = options.arckfs_delegation;
    }
    return MakeTrio(name, adjusted);
  }
  return MakeBaseline(name, options);
}

std::vector<std::string> AllPosixFsNames() {
  return {"ArckFS", "ArckFS-nd", "FPFS",   "ext4",  "PMFS",
          "NOVA",   "WineFS",    "OdinFS", "SplitFS", "Strata"};
}

std::vector<std::string> BaselineFsNames() {
  return {"ext4", "PMFS", "NOVA", "WineFS", "OdinFS", "SplitFS", "Strata"};
}

}  // namespace trio
