// SimpleKernelFs: the in-kernel baseline file system engine (§6.1). One block-based
// engine provides the functional substrate for the ext4-, PMFS-, NOVA-, WineFS- and
// OdinFS-like baselines; a JournalMode selects the consistency mechanism each design is
// known for, which is what differentiates their metadata-write amplification and
// journal-lock contention:
//
//   kNone            PMFS-style: in-place updates with careful clwb/sfence ordering.
//   kGlobalJournal   ext4/jbd2-style: one shared undo journal (a global serialization
//                    point, like the jbd2 transaction lock).
//   kPerInodeLog     NOVA-style: the journal shard is picked by inode number.
//   kPerCpuJournal   WineFS-style: the journal shard is picked by the calling CPU.
//
// The engine is deliberately classic: fixed inode table, block bitmap, 64-byte dirents in
// directory blocks, 10 direct + 1 indirect + 1 double-indirect block pointers. It speaks
// an inode-number API; KernelFsAdapter adds VFS path resolution + locking on top.

#ifndef SRC_BASELINES_SIMPLE_KERNEL_FS_H_
#define SRC_BASELINES_SIMPLE_KERNEL_FS_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/spinlock.h"
#include "src/libfs/fs_interface.h"
#include "src/libfs/journal.h"
#include "src/nvm/nvm.h"

namespace trio {

enum class JournalMode { kNone, kGlobalJournal, kPerInodeLog, kPerCpuJournal };

struct KernelFsOptions {
  uint32_t max_inodes = 1 << 14;
  JournalMode journal_mode = JournalMode::kGlobalJournal;
  size_t journal_shards = 8;  // Used by per-inode / per-CPU modes.
};

class SimpleKernelFs {
 public:
  static constexpr Ino kKRootIno = 1;
  static constexpr size_t kDirectBlocks = 10;
  static constexpr size_t kPointersPerBlock = kPageSize / sizeof(uint64_t);

  struct KInode {
    uint32_t mode = 0;
    uint32_t uid = 0;
    uint64_t size = 0;
    int64_t mtime_ns = 0;
    uint32_t nlink = 0;  // 0 => free inode.
    uint32_t generation = 0;
    uint64_t direct[kDirectBlocks] = {};
    uint64_t indirect = 0;
    uint64_t dindirect = 0;
  };
  static_assert(sizeof(KInode) == 128);

  struct KDirent {
    uint64_t ino = 0;  // 0 => free.
    uint8_t name_len = 0;
    char name[55] = {};

    std::string_view Name() const { return std::string_view(name, name_len); }
  };
  static_assert(sizeof(KDirent) == 64);

  // Formats the pool with this engine's own layout (baselines do not share Trio's core
  // state) and returns a ready file system.
  static Status Format(NvmPool& pool, const KernelFsOptions& options);

  SimpleKernelFs(NvmPool& pool, const KernelFsOptions& options);

  // ---- Inode-number based operations (the VFS adapter resolves paths) ----
  Result<Ino> Lookup(Ino dir, std::string_view name);
  Result<Ino> Create(Ino dir, std::string_view name, uint32_t mode);
  Status Remove(Ino dir, std::string_view name, bool must_be_dir);
  Status Rename(Ino src_dir, std::string_view src_name, Ino dst_dir,
                std::string_view dst_name);
  Result<size_t> Read(Ino ino, void* buf, size_t count, uint64_t offset);
  Result<size_t> Write(Ino ino, const void* buf, size_t count, uint64_t offset);
  Status Truncate(Ino ino, uint64_t size);
  Result<StatInfo> Stat(Ino ino);
  Result<std::vector<DirEntryInfo>> List(Ino dir);
  Status Chmod(Ino ino, uint32_t perm);

  KInode* InodeOf(Ino ino);
  NvmPool& pool() { return pool_; }
  uint64_t journal_bytes() const { return journal_bytes_.load(std::memory_order_relaxed); }

 private:
  struct KSuper {
    uint64_t magic;
    uint64_t total_pages;
    uint64_t inode_table_page;
    uint64_t max_inodes;
    uint64_t bitmap_page;
    uint64_t bitmap_pages;
    uint64_t journal_page;
    uint64_t journal_pages;
    uint64_t data_start;
  };
  static constexpr uint64_t kKMagic = 0x53494d504c454653ull;  // "SIMPLEFS"

  KSuper* Super() { return reinterpret_cast<KSuper*>(pool_.PageAddress(0)); }

  // Journal shard selection per the configured mode; nullptr when kNone.
  UndoJournal* ShardFor(Ino ino);

  Result<PageNumber> AllocBlock();
  void FreeBlock(PageNumber page);
  Result<Ino> AllocInode();
  void FreeInode(Ino ino);

  // Data-block address for logical block `index` of `inode`; allocates when `grow`.
  Result<PageNumber> BlockOf(KInode* inode, uint64_t index, bool grow);
  // Address of the mapping slot for logical block `index`, or nullptr when the slot's
  // containing pointer block doesn't exist. Never allocates.
  uint64_t* SlotOf(KInode* inode, uint64_t index);
  Status ForEachDirentBlock(KInode* dir,
                            const std::function<Status(KDirent*, size_t)>& fn);

  NvmPool& pool_;
  KernelFsOptions options_;
  obs::PersistStats persist_stats_{"baselines"};
  std::mutex alloc_mutex_;    // Bitmap + inode allocation (a global lock, as in ext4).
  std::mutex journal_mutex_;  // Global-journal mode only.
  std::vector<std::unique_ptr<UndoJournal>> journals_;
  uint64_t bitmap_cursor_ = 0;
  std::atomic<uint64_t> journal_bytes_{0};
};

}  // namespace trio

#endif  // SRC_BASELINES_SIMPLE_KERNEL_FS_H_
