// Builds any of the evaluated file systems over a fresh pool — the single entry point the
// conformance tests, workload generators, and benchmark binaries share, so every system
// runs the same calls on the same substrate.

#ifndef SRC_BASELINES_FS_FACTORY_H_
#define SRC_BASELINES_FS_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/baselines.h"
#include "src/kernel/controller.h"
#include "src/libfs/arckfs.h"

namespace trio {

struct FsInstance {
  std::unique_ptr<NvmPool> pool;
  std::unique_ptr<KernelController> kernel;  // Trio-based systems only.
  std::unique_ptr<FsInterface> fs;

  // Extra LibFS attached to the same kernel (sharing experiments). Trio systems only.
  std::unique_ptr<FsInterface> MakeSecondLibFs();
};

struct FsFactoryOptions {
  size_t pool_pages = 1 << 15;  // 128 MiB.
  int numa_nodes = 1;
  int delegation_threads_per_node = 2;
  bool arckfs_delegation = false;  // "ArckFS" vs "ArckFS-nd" configurations.
  // 0 = DelegationConfig defaults (§4.5). Nonzero values let benches sweep thresholds.
  size_t delegate_read_threshold = 0;
  size_t delegate_write_threshold = 0;
  uint64_t vfs_trap_cost_ns = 0;   // Modeled syscall cost for kernel baselines.
  // Async op rings (Trio systems only). Both are overridable without recompiling:
  // TRIO_RING_ENABLE=0/1 forces the ring off/on, TRIO_RING_DEPTH=<pow2> sets the depth
  // (and implies enable) — the same env plumbing pattern as the delegation knobs.
  bool ring_enable = false;
  size_t ring_depth = 0;  // 0 = OpRingConfig default.
};

// `options` after applying the TRIO_RING_* environment overrides (exposed so benches can
// report the effective configuration).
FsFactoryOptions ApplyRingEnv(FsFactoryOptions options);

// Names: "ArckFS", "ArckFS-nd", "KVFS", "FPFS",
//        "ext4", "PMFS", "NOVA", "WineFS", "OdinFS", "SplitFS", "Strata".
FsInstance MakeFs(const std::string& name, const FsFactoryOptions& options = {});

// Every evaluated generic POSIX-like system (excludes KVFS, whose interface differs).
std::vector<std::string> AllPosixFsNames();
// The kernel-FS baselines only.
std::vector<std::string> BaselineFsNames();

}  // namespace trio

#endif  // SRC_BASELINES_FS_FACTORY_H_
