// VfsSim: the kernel storage-stack costs that in-kernel file systems pay and ArckFS
// bypasses (§2.3.1, §6.4). FxMark's analysis [39], which the paper leans on, blames the
// VFS's coarse locks: the directory cache lock, per-directory-inode locks, the inode cache
// lock, and the global rename lock. VfsSim models exactly those — real mutexes that real
// baseline threads contend on — plus a user->kernel trap counter with an optional modeled
// latency (crossing cost), so the wall-clock microbenchmarks show kernel FSes' serial
// behaviour for the same structural reasons the paper reports.

#ifndef SRC_BASELINES_VFS_SIM_H_
#define SRC_BASELINES_VFS_SIM_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "src/common/spinlock.h"

namespace trio {

struct VfsConfig {
  // Busy-wait per user->kernel crossing, modeling trap + return overhead. 0 in unit
  // tests; benches set a few hundred nanoseconds.
  uint64_t trap_cost_ns = 0;
};

class VfsSim {
 public:
  explicit VfsSim(VfsConfig config = {}) : config_(config) {}

  // Every syscall into the kernel FS calls this once.
  void Trap() {
    traps_.fetch_add(1, std::memory_order_relaxed);
    if (config_.trap_cost_ns > 0) {
      SpinFor(config_.trap_cost_ns);
    }
  }

  // Directory-cache lookup: a global lock, as in FxMark's bottleneck analysis.
  std::mutex& dcache_lock() { return dcache_lock_; }
  // Inode-cache (icache) allocation/lookup lock.
  std::mutex& icache_lock() { return icache_lock_; }
  // The kernel's global rename serialization.
  std::mutex& rename_lock() { return rename_lock_; }

  // Per-inode mutex (directory inode lock for create/unlink in one dir; file inode lock
  // for writes — VFS does not do range locking).
  std::mutex& inode_lock(uint64_t ino) {
    std::lock_guard<std::mutex> guard(icache_lock_);
    return inode_locks_[ino];
  }

  uint64_t traps() const { return traps_.load(std::memory_order_relaxed); }
  uint64_t dcache_hits() const { return dcache_hits_.load(std::memory_order_relaxed); }
  void CountDcacheHit() { dcache_hits_.fetch_add(1, std::memory_order_relaxed); }

 private:
  static void SpinFor(uint64_t ns) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
    while (std::chrono::steady_clock::now() < deadline) {
      CpuRelax();
    }
  }

  VfsConfig config_;
  std::mutex dcache_lock_;
  std::mutex icache_lock_;
  std::mutex rename_lock_;
  std::unordered_map<uint64_t, std::mutex> inode_locks_;
  std::atomic<uint64_t> traps_{0};
  std::atomic<uint64_t> dcache_hits_{0};
};

}  // namespace trio

#endif  // SRC_BASELINES_VFS_SIM_H_
