#include "src/baselines/baselines.h"

#include <algorithm>
#include <cstring>

namespace trio {

const char* BaselineName(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kExt4:
      return "ext4-like";
    case BaselineKind::kPmfs:
      return "PMFS-like";
    case BaselineKind::kNova:
      return "NOVA-like";
    case BaselineKind::kWinefs:
      return "WineFS-like";
    case BaselineKind::kOdinfs:
      return "OdinFS-like";
  }
  return "?";
}

KernelFsOptions BaselineOptions(BaselineKind kind) {
  KernelFsOptions options;
  switch (kind) {
    case BaselineKind::kExt4:
      options.journal_mode = JournalMode::kGlobalJournal;
      break;
    case BaselineKind::kPmfs:
      options.journal_mode = JournalMode::kNone;
      break;
    case BaselineKind::kNova:
      options.journal_mode = JournalMode::kPerInodeLog;
      break;
    case BaselineKind::kWinefs:
    case BaselineKind::kOdinfs:
      options.journal_mode = JournalMode::kPerCpuJournal;
      break;
  }
  return options;
}

KernelFsAdapter::KernelFsAdapter(NvmPool& pool, BaselineKind kind, VfsConfig vfs_config)
    : pool_(pool), kind_(kind), vfs_(vfs_config), engine_(pool, BaselineOptions(kind)) {
  if (kind == BaselineKind::kOdinfs) {
    delegation_ = std::make_unique<DelegationPool>(
        pool_, pool_.topology().delegation_threads_per_node);
  }
}

KernelFsAdapter::~KernelFsAdapter() = default;

Result<Ino> KernelFsAdapter::ResolvePath(const std::string& path) {
  TRIO_ASSIGN_OR_RETURN(std::vector<std::string> components, SplitPath(path));
  Ino ino = SimpleKernelFs::kKRootIno;
  for (const std::string& component : components) {
    // Directory-cache lookup under the global dcache lock (the FxMark bottleneck).
    std::lock_guard<std::mutex> dcache(vfs_.dcache_lock());
    vfs_.CountDcacheHit();
    TRIO_ASSIGN_OR_RETURN(ino, engine_.Lookup(ino, component));
  }
  return ino;
}

Result<std::pair<Ino, std::string>> KernelFsAdapter::ResolveParent(const std::string& path) {
  TRIO_ASSIGN_OR_RETURN(SplitParent parts, SplitParentPath(path));
  Ino dir = SimpleKernelFs::kKRootIno;
  for (const std::string& component : parts.parent) {
    std::lock_guard<std::mutex> dcache(vfs_.dcache_lock());
    vfs_.CountDcacheHit();
    TRIO_ASSIGN_OR_RETURN(dir, engine_.Lookup(dir, component));
  }
  return std::make_pair(dir, parts.leaf);
}

Result<Fd> KernelFsAdapter::Open(const std::string& path, OpenFlags flags, uint32_t mode) {
  vfs_.Trap();
  TRIO_ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
  Result<Ino> ino = engine_.Lookup(parent.first, parent.second);
  if (!ino.ok()) {
    if (!ino.status().Is(ErrorCode::kNotFound) || !flags.create) {
      return ino.status();
    }
    std::lock_guard<std::mutex> dir_lock(vfs_.inode_lock(parent.first));
    ino = engine_.Create(parent.first, parent.second, kModeRegular | (mode & kModePermMask));
    if (!ino.ok()) {
      return ino.status();
    }
  } else if (flags.create && flags.exclusive) {
    return AlreadyExists(parent.second);
  }
  if (flags.truncate) {
    std::lock_guard<std::mutex> file_lock(vfs_.inode_lock(*ino));
    TRIO_RETURN_IF_ERROR(engine_.Truncate(*ino, 0));
  }
  uint64_t offset = 0;
  if (flags.append) {
    TRIO_ASSIGN_OR_RETURN(StatInfo info, engine_.Stat(*ino));
    offset = info.size;
  }
  auto state = std::make_shared<OpenState>();
  state->ino = *ino;
  return fds_.Alloc(state, flags.write, flags.append, offset);
}

Status KernelFsAdapter::Close(Fd fd) {
  vfs_.Trap();
  return fds_.Release(fd);
}

Result<size_t> KernelFsAdapter::Pread(Fd fd, void* buf, size_t count, uint64_t offset) {
  vfs_.Trap();
  auto* entry = fds_.Get(fd);
  if (entry == nullptr) {
    return BadFd();
  }
  return engine_.Read(entry->file->ino, buf, count, offset);
}

Result<size_t> KernelFsAdapter::Pwrite(Fd fd, const void* buf, size_t count,
                                       uint64_t offset) {
  vfs_.Trap();
  auto* entry = fds_.Get(fd);
  if (entry == nullptr || !entry->writable) {
    return BadFd();
  }
  // The VFS serializes writers per inode (no range locks in the generic path).
  std::lock_guard<std::mutex> inode_lock(vfs_.inode_lock(entry->file->ino));
  return engine_.Write(entry->file->ino, buf, count, offset);
}

Result<size_t> KernelFsAdapter::Read(Fd fd, void* buf, size_t count) {
  auto* entry = fds_.Get(fd);
  if (entry == nullptr) {
    return BadFd();
  }
  const uint64_t offset = entry->offset.load(std::memory_order_relaxed);
  TRIO_ASSIGN_OR_RETURN(size_t done, Pread(fd, buf, count, offset));
  entry->offset.store(offset + done, std::memory_order_relaxed);
  return done;
}

Result<size_t> KernelFsAdapter::Write(Fd fd, const void* buf, size_t count) {
  auto* entry = fds_.Get(fd);
  if (entry == nullptr) {
    return BadFd();
  }
  uint64_t offset = entry->offset.load(std::memory_order_relaxed);
  if (entry->append) {
    TRIO_ASSIGN_OR_RETURN(StatInfo info, engine_.Stat(entry->file->ino));
    offset = info.size;
  }
  TRIO_ASSIGN_OR_RETURN(size_t done, Pwrite(fd, buf, count, offset));
  entry->offset.store(offset + done, std::memory_order_relaxed);
  return done;
}

Result<uint64_t> KernelFsAdapter::Seek(Fd fd, uint64_t offset) {
  auto* entry = fds_.Get(fd);
  if (entry == nullptr) {
    return BadFd();
  }
  entry->offset.store(offset, std::memory_order_relaxed);
  return offset;
}

Status KernelFsAdapter::Fsync(Fd fd) {
  vfs_.Trap();
  return fds_.Get(fd) != nullptr ? OkStatus() : BadFd();
}

Status KernelFsAdapter::Ftruncate(Fd fd, uint64_t size) {
  vfs_.Trap();
  auto* entry = fds_.Get(fd);
  if (entry == nullptr || !entry->writable) {
    return BadFd();
  }
  std::lock_guard<std::mutex> inode_lock(vfs_.inode_lock(entry->file->ino));
  return engine_.Truncate(entry->file->ino, size);
}

Status KernelFsAdapter::Mkdir(const std::string& path, uint32_t mode) {
  vfs_.Trap();
  TRIO_ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
  std::lock_guard<std::mutex> dir_lock(vfs_.inode_lock(parent.first));
  Result<Ino> ino =
      engine_.Create(parent.first, parent.second, kModeDirectory | (mode & kModePermMask));
  return ino.ok() ? OkStatus() : ino.status();
}

Status KernelFsAdapter::Rmdir(const std::string& path) {
  vfs_.Trap();
  TRIO_ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
  std::lock_guard<std::mutex> dir_lock(vfs_.inode_lock(parent.first));
  return engine_.Remove(parent.first, parent.second, /*must_be_dir=*/true);
}

Status KernelFsAdapter::Unlink(const std::string& path) {
  vfs_.Trap();
  TRIO_ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
  std::lock_guard<std::mutex> dir_lock(vfs_.inode_lock(parent.first));
  return engine_.Remove(parent.first, parent.second, /*must_be_dir=*/false);
}

Status KernelFsAdapter::Rename(const std::string& from, const std::string& to) {
  vfs_.Trap();
  // The kernel's global rename lock.
  std::lock_guard<std::mutex> rename_lock(vfs_.rename_lock());
  TRIO_ASSIGN_OR_RETURN(auto src, ResolveParent(from));
  TRIO_ASSIGN_OR_RETURN(auto dst, ResolveParent(to));
  std::lock_guard<std::mutex> src_lock(vfs_.inode_lock(src.first));
  if (src.first != dst.first) {
    std::lock_guard<std::mutex> dst_lock(vfs_.inode_lock(dst.first));
    return engine_.Rename(src.first, src.second, dst.first, dst.second);
  }
  return engine_.Rename(src.first, src.second, dst.first, dst.second);
}

Result<StatInfo> KernelFsAdapter::Stat(const std::string& path) {
  vfs_.Trap();
  TRIO_ASSIGN_OR_RETURN(Ino ino, ResolvePath(path));
  return engine_.Stat(ino);
}

Result<std::vector<DirEntryInfo>> KernelFsAdapter::ReadDir(const std::string& path) {
  vfs_.Trap();
  TRIO_ASSIGN_OR_RETURN(Ino ino, ResolvePath(path));
  std::lock_guard<std::mutex> dir_lock(vfs_.inode_lock(ino));
  return engine_.List(ino);
}

Status KernelFsAdapter::Truncate(const std::string& path, uint64_t size) {
  vfs_.Trap();
  TRIO_ASSIGN_OR_RETURN(Ino ino, ResolvePath(path));
  std::lock_guard<std::mutex> inode_lock(vfs_.inode_lock(ino));
  return engine_.Truncate(ino, size);
}

Status KernelFsAdapter::Chmod(const std::string& path, uint32_t perm) {
  vfs_.Trap();
  TRIO_ASSIGN_OR_RETURN(Ino ino, ResolvePath(path));
  return engine_.Chmod(ino, perm);
}

Result<Ino> KernelFsAdapter::FdToIno(Fd fd) {
  auto* entry = fds_.Get(fd);
  if (entry == nullptr) {
    return BadFd();
  }
  return entry->file->ino;
}

// ---------------------------------------------------------------------------
// SplitFS-like
// ---------------------------------------------------------------------------

SplitFsLike::SplitFsLike(NvmPool& pool, VfsConfig vfs_config)
    : pool_(pool), kernel_path_(pool, BaselineKind::kExt4, vfs_config) {}

Result<Fd> SplitFsLike::Open(const std::string& path, OpenFlags flags, uint32_t mode) {
  return kernel_path_.Open(path, flags, mode);
}
Status SplitFsLike::Close(Fd fd) { return kernel_path_.Close(fd); }

Result<size_t> SplitFsLike::Pread(Fd fd, void* buf, size_t count, uint64_t offset) {
  // Data reads bypass the kernel entirely (SplitFS's mmap-ed extent path): no trap, no
  // VFS locks — userspace loads against the already-mapped blocks.
  TRIO_ASSIGN_OR_RETURN(Ino ino, kernel_path_.FdToIno(fd));
  direct_ops_.fetch_add(1, std::memory_order_relaxed);
  return kernel_path_.engine().Read(ino, buf, count, offset);
}

Result<size_t> SplitFsLike::Pwrite(Fd fd, const void* buf, size_t count, uint64_t offset) {
  TRIO_ASSIGN_OR_RETURN(Ino ino, kernel_path_.FdToIno(fd));
  Result<StatInfo> info = kernel_path_.engine().Stat(ino);
  if (!info.ok()) {
    return info.status();
  }
  if (offset + count > info->size) {
    // Extending writes involve the kernel (SplitFS stages appends and relinks via a
    // syscall); overwrites of existing blocks go direct.
    return kernel_path_.Pwrite(fd, buf, count, offset);
  }
  direct_ops_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> inode_lock(kernel_path_.InodeLock(ino));
  return kernel_path_.engine().Write(ino, buf, count, offset);
}

Result<size_t> SplitFsLike::Read(Fd fd, void* buf, size_t count) {
  return kernel_path_.Read(fd, buf, count);
}
Result<size_t> SplitFsLike::Write(Fd fd, const void* buf, size_t count) {
  return kernel_path_.Write(fd, buf, count);
}
Result<uint64_t> SplitFsLike::Seek(Fd fd, uint64_t offset) {
  return kernel_path_.Seek(fd, offset);
}
Status SplitFsLike::Fsync(Fd fd) { return OkStatus(); }  // Data path is synchronous.
Status SplitFsLike::Ftruncate(Fd fd, uint64_t size) {
  return kernel_path_.Ftruncate(fd, size);
}
Status SplitFsLike::Mkdir(const std::string& path, uint32_t mode) {
  return kernel_path_.Mkdir(path, mode);
}
Status SplitFsLike::Rmdir(const std::string& path) { return kernel_path_.Rmdir(path); }
Status SplitFsLike::Unlink(const std::string& path) { return kernel_path_.Unlink(path); }
Status SplitFsLike::Rename(const std::string& from, const std::string& to) {
  return kernel_path_.Rename(from, to);
}
Result<StatInfo> SplitFsLike::Stat(const std::string& path) {
  return kernel_path_.Stat(path);
}
Result<std::vector<DirEntryInfo>> SplitFsLike::ReadDir(const std::string& path) {
  return kernel_path_.ReadDir(path);
}
Status SplitFsLike::Truncate(const std::string& path, uint64_t size) {
  return kernel_path_.Truncate(path, size);
}
Status SplitFsLike::Chmod(const std::string& path, uint32_t perm) {
  return kernel_path_.Chmod(path, perm);
}

// ---------------------------------------------------------------------------
// Strata-like
// ---------------------------------------------------------------------------

StrataLike::StrataLike(NvmPool& pool, VfsConfig vfs_config, size_t digest_threshold)
    : pool_(pool),
      kernel_path_(pool, BaselineKind::kExt4, vfs_config),
      digest_threshold_(digest_threshold) {}

Status StrataLike::Append(const std::string& path, uint64_t offset, const void* data,
                          size_t len) {
  std::lock_guard<std::mutex> guard(log_mutex_);
  PendingWrite pending;
  pending.path = path;
  pending.offset = offset;
  pending.data.assign(static_cast<const char*>(data), len);
  log_size_ += len + 64;  // Record header overhead, as in Strata's log.
  log_bytes_.fetch_add(len + 64, std::memory_order_relaxed);
  log_.push_back(std::move(pending));
  return OkStatus();
}

Status StrataLike::MaybeDigest() {
  bool need;
  {
    std::lock_guard<std::mutex> guard(log_mutex_);
    need = log_size_ >= digest_threshold_;
  }
  return need ? Digest() : OkStatus();
}

Status StrataLike::Digest() {
  std::deque<PendingWrite> batch;
  {
    std::lock_guard<std::mutex> guard(log_mutex_);
    batch.swap(log_);
    log_size_ = 0;
  }
  if (batch.empty()) {
    return OkStatus();
  }
  digests_.fetch_add(1, std::memory_order_relaxed);
  for (PendingWrite& pending : batch) {
    OpenFlags flags = OpenFlags::ReadWrite();
    Result<Fd> fd = kernel_path_.Open(pending.path, flags);
    if (!fd.ok()) {
      continue;  // Deleted before digestion.
    }
    (void)kernel_path_.Pwrite(*fd, pending.data.data(), pending.data.size(),
                              pending.offset);
    (void)kernel_path_.Close(*fd);
  }
  return OkStatus();
}

Result<Fd> StrataLike::Open(const std::string& path, OpenFlags flags, uint32_t mode) {
  Result<Fd> fd = kernel_path_.Open(path, flags, mode);
  if (fd.ok()) {
    std::lock_guard<std::mutex> guard(log_mutex_);
    fd_paths_[*fd] = path;
  }
  return fd;
}

Status StrataLike::Close(Fd fd) {
  {
    std::lock_guard<std::mutex> guard(log_mutex_);
    fd_paths_.erase(fd);
  }
  return kernel_path_.Close(fd);
}

Result<size_t> StrataLike::Pwrite(Fd fd, const void* buf, size_t count, uint64_t offset) {
  std::string path;
  {
    std::lock_guard<std::mutex> guard(log_mutex_);
    auto it = fd_paths_.find(fd);
    if (it == fd_paths_.end()) {
      return BadFd();
    }
    path = it->second;
  }
  TRIO_RETURN_IF_ERROR(Append(path, offset, buf, count));
  TRIO_RETURN_IF_ERROR(MaybeDigest());
  return count;
}

Result<size_t> StrataLike::Pread(Fd fd, void* buf, size_t count, uint64_t offset) {
  // Read-your-writes: the undigested log must win over the kernel FS contents.
  TRIO_RETURN_IF_ERROR(Digest());
  return kernel_path_.Pread(fd, buf, count, offset);
}

Result<size_t> StrataLike::Read(Fd fd, void* buf, size_t count) {
  TRIO_RETURN_IF_ERROR(Digest());
  return kernel_path_.Read(fd, buf, count);
}

Result<size_t> StrataLike::Write(Fd fd, const void* buf, size_t count) {
  // Cursor writes ride the kernel adapter's cursor bookkeeping directly; only positional
  // writes take the log fast path in this simplification.
  return kernel_path_.Write(fd, buf, count);
}

Result<uint64_t> StrataLike::Seek(Fd fd, uint64_t offset) {
  return kernel_path_.Seek(fd, offset);
}
Status StrataLike::Fsync(Fd fd) { return Digest(); }
Status StrataLike::Ftruncate(Fd fd, uint64_t size) {
  TRIO_RETURN_IF_ERROR(Digest());
  return kernel_path_.Ftruncate(fd, size);
}
Status StrataLike::Mkdir(const std::string& path, uint32_t mode) {
  return kernel_path_.Mkdir(path, mode);
}
Status StrataLike::Rmdir(const std::string& path) {
  TRIO_RETURN_IF_ERROR(Digest());
  return kernel_path_.Rmdir(path);
}
Status StrataLike::Unlink(const std::string& path) {
  TRIO_RETURN_IF_ERROR(Digest());
  return kernel_path_.Unlink(path);
}
Status StrataLike::Rename(const std::string& from, const std::string& to) {
  TRIO_RETURN_IF_ERROR(Digest());
  return kernel_path_.Rename(from, to);
}
Result<StatInfo> StrataLike::Stat(const std::string& path) {
  TRIO_RETURN_IF_ERROR(Digest());
  return kernel_path_.Stat(path);
}
Result<std::vector<DirEntryInfo>> StrataLike::ReadDir(const std::string& path) {
  TRIO_RETURN_IF_ERROR(Digest());
  return kernel_path_.ReadDir(path);
}
Status StrataLike::Truncate(const std::string& path, uint64_t size) {
  TRIO_RETURN_IF_ERROR(Digest());
  return kernel_path_.Truncate(path, size);
}
Status StrataLike::Chmod(const std::string& path, uint32_t perm) {
  return kernel_path_.Chmod(path, perm);
}

}  // namespace trio
