// The evaluated baseline file systems (§6.1), all implementing FsInterface:
//
//   KernelFsAdapter  — in-kernel designs behind VfsSim: ext4-, PMFS-, NOVA-, WineFS- and
//                      OdinFS-like (journal mode + delegation distinguish them). Every
//                      operation traps and takes the VFS locks.
//   SplitFsLike      — SplitFS [32]: data operations run in userspace against cached
//                      extents; metadata operations go through the kernel path.
//   StrataLike       — Strata [35]: every update appends to a userspace log; a digestion
//                      step applies the log to the kernel FS. Reads consult the
//                      in-memory index over the undigested log first.
//
// These are functional, simplified reimplementations: enough mechanism to reproduce each
// design's characteristic costs (traps, VFS lock contention, journal/log write
// amplification, digestion) on the shared NVM pool. See DESIGN.md for the substitutions.

#ifndef SRC_BASELINES_BASELINES_H_
#define SRC_BASELINES_BASELINES_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/baselines/simple_kernel_fs.h"
#include "src/baselines/vfs_sim.h"
#include "src/kernel/delegation.h"
#include "src/libfs/fd_table.h"
#include "src/libfs/fs_interface.h"

namespace trio {

enum class BaselineKind {
  kExt4,    // Global journal (jbd2-like).
  kPmfs,    // No journal; in-place ordered updates.
  kNova,    // Per-inode log shards.
  kWinefs,  // Per-CPU journal shards.
  kOdinfs,  // WineFS-like consistency + opportunistic delegation.
};

const char* BaselineName(BaselineKind kind);
KernelFsOptions BaselineOptions(BaselineKind kind);

class KernelFsAdapter : public FsInterface {
 public:
  // The pool must have been formatted with SimpleKernelFs::Format(BaselineOptions(kind)).
  KernelFsAdapter(NvmPool& pool, BaselineKind kind, VfsConfig vfs_config = {});
  ~KernelFsAdapter() override;

  Result<Fd> Open(const std::string& path, OpenFlags flags, uint32_t mode = 0644) override;
  Status Close(Fd fd) override;
  Result<size_t> Read(Fd fd, void* buf, size_t count) override;
  Result<size_t> Write(Fd fd, const void* buf, size_t count) override;
  Result<size_t> Pread(Fd fd, void* buf, size_t count, uint64_t offset) override;
  Result<size_t> Pwrite(Fd fd, const void* buf, size_t count, uint64_t offset) override;
  Result<uint64_t> Seek(Fd fd, uint64_t offset) override;
  Status Fsync(Fd fd) override;
  Status Ftruncate(Fd fd, uint64_t size) override;
  Status Mkdir(const std::string& path, uint32_t mode = 0755) override;
  Status Rmdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<StatInfo> Stat(const std::string& path) override;
  Result<std::vector<DirEntryInfo>> ReadDir(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status Chmod(const std::string& path, uint32_t perm) override;
  std::string Name() const override { return BaselineName(kind_); }

  VfsSim& vfs() { return vfs_; }
  SimpleKernelFs& engine() { return engine_; }
  // Userspace-side fd resolution (no trap): the hook SplitFS-like data paths use.
  Result<Ino> FdToIno(Fd fd);
  // Per-inode VFS write serialization, exposed for the direct data path.
  std::mutex& InodeLock(Ino ino) { return vfs_.inode_lock(ino); }

 protected:
  struct OpenState {
    Ino ino = kInvalidIno;
  };

  // Path resolution through the dcache lock (per component), as the VFS does.
  Result<Ino> ResolvePath(const std::string& path);
  Result<std::pair<Ino, std::string>> ResolveParent(const std::string& path);

  NvmPool& pool_;
  BaselineKind kind_;
  VfsSim vfs_;
  SimpleKernelFs engine_;
  std::unique_ptr<DelegationPool> delegation_;  // kOdinfs only.
  FdTable<OpenState> fds_;
};

// SplitFS-like: metadata via the kernel adapter; data ops direct against cached extents.
class SplitFsLike : public FsInterface {
 public:
  explicit SplitFsLike(NvmPool& pool, VfsConfig vfs_config = {});

  Result<Fd> Open(const std::string& path, OpenFlags flags, uint32_t mode = 0644) override;
  Status Close(Fd fd) override;
  Result<size_t> Read(Fd fd, void* buf, size_t count) override;
  Result<size_t> Write(Fd fd, const void* buf, size_t count) override;
  Result<size_t> Pread(Fd fd, void* buf, size_t count, uint64_t offset) override;
  Result<size_t> Pwrite(Fd fd, const void* buf, size_t count, uint64_t offset) override;
  Result<uint64_t> Seek(Fd fd, uint64_t offset) override;
  Status Fsync(Fd fd) override;
  Status Ftruncate(Fd fd, uint64_t size) override;
  Status Mkdir(const std::string& path, uint32_t mode = 0755) override;
  Status Rmdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<StatInfo> Stat(const std::string& path) override;
  Result<std::vector<DirEntryInfo>> ReadDir(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status Chmod(const std::string& path, uint32_t perm) override;
  std::string Name() const override { return "SplitFS-like"; }

  uint64_t direct_data_ops() const { return direct_ops_.load(std::memory_order_relaxed); }
  VfsSim& vfs() { return kernel_path_.vfs(); }

 private:
  NvmPool& pool_;
  KernelFsAdapter kernel_path_;
  std::atomic<uint64_t> direct_ops_{0};
};

// Strata-like: userspace operation log + digestion into the kernel FS.
class StrataLike : public FsInterface {
 public:
  // `digest_threshold` = log bytes that trigger a synchronous digest.
  StrataLike(NvmPool& pool, VfsConfig vfs_config = {},
             size_t digest_threshold = 1 << 20);

  Result<Fd> Open(const std::string& path, OpenFlags flags, uint32_t mode = 0644) override;
  Status Close(Fd fd) override;
  Result<size_t> Read(Fd fd, void* buf, size_t count) override;
  Result<size_t> Write(Fd fd, const void* buf, size_t count) override;
  Result<size_t> Pread(Fd fd, void* buf, size_t count, uint64_t offset) override;
  Result<size_t> Pwrite(Fd fd, const void* buf, size_t count, uint64_t offset) override;
  Result<uint64_t> Seek(Fd fd, uint64_t offset) override;
  Status Fsync(Fd fd) override;
  Status Ftruncate(Fd fd, uint64_t size) override;
  Status Mkdir(const std::string& path, uint32_t mode = 0755) override;
  Status Rmdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<StatInfo> Stat(const std::string& path) override;
  Result<std::vector<DirEntryInfo>> ReadDir(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status Chmod(const std::string& path, uint32_t perm) override;
  std::string Name() const override { return "Strata-like"; }

  // Applies every buffered update to the kernel FS (the digestion step).
  Status Digest();
  uint64_t log_bytes_written() const { return log_bytes_.load(std::memory_order_relaxed); }
  uint64_t digests() const { return digests_.load(std::memory_order_relaxed); }

 private:
  struct PendingWrite {
    std::string path;
    uint64_t offset;
    std::string data;  // Copied into the (modeled) log.
  };

  Status Append(const std::string& path, uint64_t offset, const void* data, size_t len);
  Status MaybeDigest();

  NvmPool& pool_;
  KernelFsAdapter kernel_path_;
  std::mutex log_mutex_;
  std::deque<PendingWrite> log_;
  size_t log_size_ = 0;
  size_t digest_threshold_;
  std::atomic<uint64_t> log_bytes_{0};
  std::atomic<uint64_t> digests_{0};
  std::unordered_map<Fd, std::string> fd_paths_;
};

}  // namespace trio

#endif  // SRC_BASELINES_BASELINES_H_
