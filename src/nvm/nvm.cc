#include "src/nvm/nvm.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "src/sim/fault_injector.h"

namespace trio {

void NvmPool::SpinDelayNs(uint64_t ns) {
  const auto until = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < until) {
    // Busy wait: models a core stalled on an sfence / clwb drain, which does not yield.
  }
}

void NvmPool::Init() {
  TRIO_CHECK(num_pages_ >= 8) << "pool too small";
  TRIO_CHECK(topology_.num_nodes >= 1);
  pages_per_node_ = (num_pages_ + topology_.num_nodes - 1) / topology_.num_nodes;
  if (mode_ == NvmMode::kTracking) {
    shadow_ = std::make_unique<char[]>(num_pages_ * kPageSize);
    std::memcpy(shadow_.get(), main_, num_pages_ * kPageSize);
  }
}

NvmPool::NvmPool(size_t pages, NvmMode mode, NumaTopology topology)
    : num_pages_(pages), mode_(mode), topology_(topology) {
  heap_ = std::make_unique<char[]>(num_pages_ * kPageSize);
  main_ = heap_.get();
  std::memset(main_, 0, num_pages_ * kPageSize);
  Init();
}

NvmPool::NvmPool(const std::string& backing_file, size_t pages, NvmMode mode,
                 NumaTopology topology)
    : num_pages_(pages), mode_(mode), topology_(topology), file_backed_(true) {
  const int fd = ::open(backing_file.c_str(), O_RDWR | O_CREAT, 0644);
  TRIO_CHECK(fd >= 0) << "cannot open backing file " << backing_file;
  const off_t size = static_cast<off_t>(num_pages_ * kPageSize);
  TRIO_CHECK(::ftruncate(fd, size) == 0) << "cannot size backing file";
  void* mapped = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // The mapping keeps the file alive.
  TRIO_CHECK(mapped != MAP_FAILED) << "mmap of backing file failed";
  main_ = static_cast<char*>(mapped);
  Init();
}

NvmPool::~NvmPool() {
  if (file_backed_ && main_ != nullptr) {
    ::msync(main_, num_pages_ * kPageSize, MS_SYNC);
    ::munmap(main_, num_pages_ * kPageSize);
  }
}

void NvmPool::SyncBackingFile() {
  if (file_backed_ && main_ != nullptr) {
    ::msync(main_, num_pages_ * kPageSize, MS_SYNC);
  }
}

void NvmPool::MarkDirty(const void* dst, size_t len) {
  std::lock_guard<std::mutex> guard(track_mutex_);
  const uint64_t first = LineOf(dst);
  const uint64_t last = LineOf(static_cast<const char*>(dst) + len - 1);
  for (uint64_t line = first; line <= last; ++line) {
    // A line re-dirtied after clwb must be flushed again to be durable.
    pending_lines_.erase(line);
    dirty_lines_.insert(line);
  }
}

void NvmPool::Persist(const void* dst, size_t len) {
  if (len == 0) {
    return;
  }
  const uint64_t first = LineOf(dst);
  const uint64_t last = LineOf(static_cast<const char*>(dst) + len - 1);
  stats_.lines_flushed.fetch_add(last - first + 1, std::memory_order_relaxed);
  if (cost_model_.flush_ns_per_line != 0) {
    SpinDelayNs(static_cast<uint64_t>(cost_model_.flush_ns_per_line) * (last - first + 1));
  }
  if (mode_ != NvmMode::kTracking) {
    return;
  }
  // Torn persist: the flush loses a non-empty subset of its cachelines. Dropped lines stay
  // dirty (the store is still in cache), so only a crash before a later flush loses them —
  // exactly the window real hardware exposes when a clwb is omitted.
  const bool torn = fault_injector_ != nullptr && last > first &&
                    fault_injector_->ShouldFire(kFaultNvmTornPersist);
  std::lock_guard<std::mutex> guard(track_mutex_);
  uint64_t dropped = 0;
  for (uint64_t line = first; line <= last; ++line) {
    if (torn && ((line == last && dropped == 0) || fault_injector_->NextRandom(2) == 0)) {
      ++dropped;
      continue;
    }
    if (dirty_lines_.erase(line) > 0) {
      pending_lines_.insert(line);
    }
  }
  if (dropped > 0) {
    TRIO_LOG(kDebug) << "faultsim: torn persist dropped " << dropped << " of "
                     << (last - first + 1) << " lines";
  }
}

void NvmPool::Fence() {
  stats_.fences.fetch_add(1, std::memory_order_relaxed);
  if (cost_model_.fence_ns != 0) {
    SpinDelayNs(cost_model_.fence_ns);
  }
  if (mode_ != NvmMode::kTracking) {
    return;
  }
  std::lock_guard<std::mutex> guard(track_mutex_);
  if (fault_injector_ != nullptr && !pending_lines_.empty() &&
      fault_injector_->ShouldFire(kFaultNvmBitFlip)) {
    // Media fault: one of the lines this fence commits takes a single-bit error. Flipping
    // the live copy before the commit loop below puts the damage in the persisted image
    // (and in any recorded fence delta) too.
    auto it = pending_lines_.begin();
    std::advance(it, fault_injector_->NextRandom(pending_lines_.size()));
    char* line_addr = main_ + *it * kCacheLineSize;
    const uint64_t bit = fault_injector_->NextRandom(kCacheLineSize * 8);
    line_addr[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    TRIO_LOG(kWarn) << "faultsim: bit flip injected in line " << *it << " bit " << bit;
  }
  FenceDelta delta;
  for (uint64_t line : pending_lines_) {
    std::memcpy(shadow_.get() + line * kCacheLineSize, main_ + line * kCacheLineSize,
                kCacheLineSize);
    if (recording_) {
      std::array<char, kCacheLineSize> content;
      std::memcpy(content.data(), main_ + line * kCacheLineSize, kCacheLineSize);
      delta.lines.emplace_back(line, content);
    }
  }
  pending_lines_.clear();
  if (recording_) {
    fence_deltas_.push_back(std::move(delta));
  }
}

void NvmPool::StartFenceRecording() {
  TRIO_CHECK(mode_ == NvmMode::kTracking);
  std::lock_guard<std::mutex> guard(track_mutex_);
  recording_base_.assign(shadow_.get(), shadow_.get() + num_pages_ * kPageSize);
  fence_deltas_.clear();
  recording_ = true;
}

void NvmPool::StopFenceRecording() {
  std::lock_guard<std::mutex> guard(track_mutex_);
  recording_ = false;
}

size_t NvmPool::RecordedFenceCount() {
  std::lock_guard<std::mutex> guard(track_mutex_);
  return fence_deltas_.size();
}

void NvmPool::MaterializeAt(size_t fence_index, char* out) {
  std::lock_guard<std::mutex> guard(track_mutex_);
  TRIO_CHECK(fence_index <= fence_deltas_.size());
  std::memcpy(out, recording_base_.data(), recording_base_.size());
  for (size_t i = 0; i < fence_index; ++i) {
    for (const auto& [line, content] : fence_deltas_[i].lines) {
      std::memcpy(out + line * kCacheLineSize, content.data(), kCacheLineSize);
    }
  }
}

void NvmPool::SimulateCrash(Rng* rng, double evict_probability) {
  TRIO_CHECK(mode_ == NvmMode::kTracking) << "crash simulation requires kTracking mode";
  std::lock_guard<std::mutex> guard(track_mutex_);
  auto maybe_evict = [&](uint64_t line) {
    const bool survive =
        evict_probability > 0.0 && rng != nullptr && rng->NextDouble() < evict_probability;
    if (survive) {
      std::memcpy(shadow_.get() + line * kCacheLineSize, main_ + line * kCacheLineSize,
                  kCacheLineSize);
    }
  };
  for (uint64_t line : dirty_lines_) {
    maybe_evict(line);
  }
  // clwb issued but not fenced: the writeback may or may not have completed. Same treatment.
  for (uint64_t line : pending_lines_) {
    maybe_evict(line);
  }
  dirty_lines_.clear();
  pending_lines_.clear();
  std::memcpy(main_, shadow_.get(), num_pages_ * kPageSize);
}

void NvmPool::LoadImage(const char* image) {
  std::lock_guard<std::mutex> guard(track_mutex_);
  std::memcpy(main_, image, num_pages_ * kPageSize);
  if (mode_ == NvmMode::kTracking) {
    std::memcpy(shadow_.get(), image, num_pages_ * kPageSize);
  }
  dirty_lines_.clear();
  pending_lines_.clear();
}

size_t NvmPool::InjectBitFlip(void* addr, size_t len, Rng& rng) {
  TRIO_CHECK(len > 0);
  const uint64_t bit = rng.Below(len * 8);
  char* target = static_cast<char*>(addr) + bit / 8;
  const char mask = static_cast<char>(1u << (bit % 8));
  *target ^= mask;
  if (mode_ == NvmMode::kTracking) {
    // Durable media corruption: the persisted image is damaged identically, so the flip
    // survives SimulateCrash and remount.
    std::lock_guard<std::mutex> guard(track_mutex_);
    shadow_[target - main_] ^= mask;
  }
  if (fault_injector_ != nullptr) {
    fault_injector_->RecordFire(kFaultNvmBitFlip);
  }
  TRIO_LOG(kWarn) << "faultsim: targeted bit flip at pool offset " << (target - main_);
  return bit / 8;
}

size_t NvmPool::UnpersistedLineCount() {
  std::lock_guard<std::mutex> guard(track_mutex_);
  return dirty_lines_.size() + pending_lines_.size();
}

}  // namespace trio
