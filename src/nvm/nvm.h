// Emulated byte-addressable NVM.
//
// The paper's hardware (Intel Optane PM across 8 NUMA nodes) is replaced by a DRAM-backed
// pool that preserves exactly the properties the file systems rely on (§2.1): byte
// addressability, unprivileged load/store access, page-granular protection (enforced by
// MmuSim in src/kernel), and explicit persistence (clwb/sfence).
//
// Crash simulation: in kTracking mode the pool keeps a shadow copy representing what has
// actually reached persistence. Stores are volatile until Persist() (clwb) + Fence()
// (sfence) commit their cachelines to the shadow. SimulateCrash() discards everything that
// was not persisted — optionally persisting a random subset of unflushed lines to emulate
// spontaneous cache eviction, which real hardware is allowed to do at any moment. Crash-
// consistency property tests in tests/ are built on this.
//
// In kFast mode all of that compiles down to plain memcpy, for benchmarks.

#ifndef SRC_NVM_NVM_H_
#define SRC_NVM_NVM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/obs/stats.h"

namespace trio {

class FaultInjector;  // src/sim/fault_injector.h

inline constexpr size_t kPageSize = 4096;
inline constexpr size_t kCacheLineSize = 64;
inline constexpr uint64_t kInvalidPage = 0;  // Page 0 is the superblock; never handed out.

using PageNumber = uint64_t;

// Static description of the emulated machine's NVM topology (§6.1: eight NUMA nodes).
struct NumaTopology {
  int num_nodes = 1;
  // Delegation threads per node (§4.5; OdinFS default is twelve).
  int delegation_threads_per_node = 2;
};

enum class NvmMode {
  kFast,      // No persistence tracking; Write == memcpy. For benchmarks.
  kTracking,  // Shadow-copy persistence tracking. For crash-consistency tests.
};

// Modeled persistence costs. On DRAM emulation Persist/Fence are nearly free, so a bench
// cannot observe the ordering-point savings the real hardware would show; with a cost
// model enabled, each Fence() busy-waits fence_ns (the sfence draining the write-pending
// queue) and each Persist() busy-waits flush_ns_per_line per covered cacheline (clwb
// writeback bandwidth). Defaults are zero: no modeling, no overhead, existing behavior.
// Benches enable Optane-calibrated figures (~100ns fence); correctness tests leave it off.
struct NvmCostModel {
  uint32_t fence_ns = 0;
  uint32_t flush_ns_per_line = 0;

  bool enabled() const { return fence_ns != 0 || flush_ns_per_line != 0; }
};

// Statistics the cost models and benches read. Relaxed counters; cheap enough to keep
// on. Registered into obs::StatRegistry under layer "nvm" (summed across pools).
struct NvmStats {
  obs::Counter bytes_written;
  obs::Counter bytes_read;
  obs::Counter lines_flushed;
  obs::Counter fences;

  NvmStats()
      : reg_("nvm", {{"bytes_written", &bytes_written},
                     {"bytes_read", &bytes_read},
                     {"lines_flushed", &lines_flushed},
                     {"fences", &fences}}) {}

  void Reset() {
    bytes_written = 0;
    bytes_read = 0;
    lines_flushed = 0;
    fences = 0;
  }

 private:
  obs::ScopedRegistration reg_;
};

class NvmPool {
 public:
  // `pages` includes page 0. The pool is divided into `topology.num_nodes` equal stripes;
  // page p lives on node NodeOfPage(p).
  NvmPool(size_t pages, NvmMode mode = NvmMode::kFast, NumaTopology topology = {});
  // File-backed pool: mmap(MAP_SHARED) over `backing_file` (created/extended as needed),
  // the emulated equivalent of a DAX-mapped NVM device — contents survive process exit.
  NvmPool(const std::string& backing_file, size_t pages, NvmMode mode = NvmMode::kFast,
          NumaTopology topology = {});
  ~NvmPool();
  NvmPool(const NvmPool&) = delete;
  NvmPool& operator=(const NvmPool&) = delete;

  bool file_backed() const { return file_backed_; }
  // File-backed pools: force dirty pages to the backing file (the msync analogue of a
  // deep flush). No-op for anonymous pools.
  void SyncBackingFile();

  size_t num_pages() const { return num_pages_; }
  NvmMode mode() const { return mode_; }
  void set_cost_model(NvmCostModel model) { cost_model_ = model; }
  const NvmCostModel& cost_model() const { return cost_model_; }
  const NumaTopology& topology() const { return topology_; }
  NvmStats& stats() { return stats_; }

  char* base() { return main_; }
  const char* base() const { return main_; }

  char* PageAddress(PageNumber page) {
    TRIO_DCHECK(page < num_pages_);
    return main_ + page * kPageSize;
  }
  const char* PageAddress(PageNumber page) const {
    TRIO_DCHECK(page < num_pages_);
    return main_ + page * kPageSize;
  }

  PageNumber PageOf(const void* ptr) const {
    const char* p = static_cast<const char*>(ptr);
    TRIO_DCHECK(p >= main_ && p < main_ + num_pages_ * kPageSize);
    return static_cast<PageNumber>((p - main_) / kPageSize);
  }

  bool Contains(const void* ptr) const {
    const char* p = static_cast<const char*>(ptr);
    return p >= main_ && p < main_ + num_pages_ * kPageSize;
  }

  // Which NUMA node a page lives on. Pages are striped in equal contiguous regions.
  int NodeOfPage(PageNumber page) const {
    return static_cast<int>(page / pages_per_node_);
  }
  int NodeOfAddress(const void* ptr) const { return NodeOfPage(PageOf(ptr)); }
  // [first, last) page range owned by a node.
  PageNumber NodeFirstPage(int node) const { return node * pages_per_node_; }
  PageNumber NodeLastPage(int node) const {
    return (node == topology_.num_nodes - 1) ? num_pages_ : (node + 1) * pages_per_node_;
  }
  // Bytes in one node's contiguous stripe (the unit delegation batches split at).
  size_t NodeStripeBytes() const { return pages_per_node_ * kPageSize; }

  // ---- Store / load primitives. All NVM mutation in the repo goes through these. ----

  void Write(void* dst, const void* src, size_t len) {
    std::memcpy(dst, src, len);
    stats_.bytes_written.fetch_add(len, std::memory_order_relaxed);
    if (mode_ == NvmMode::kTracking) {
      MarkDirty(dst, len);
    }
  }

  void Set(void* dst, int value, size_t len) {
    std::memset(dst, value, len);
    stats_.bytes_written.fetch_add(len, std::memory_order_relaxed);
    if (mode_ == NvmMode::kTracking) {
      MarkDirty(dst, len);
    }
  }

  void Read(void* dst, const void* src, size_t len) {
    std::memcpy(dst, src, len);
    stats_.bytes_read.fetch_add(len, std::memory_order_relaxed);
  }

  // 8-byte store used for the atomic commit fields (§4.4: hardware supports atomic NVM
  // updates; the ino field of a DirentBlock is committed with one of these).
  void Store64(uint64_t* dst, uint64_t value) {
    reinterpret_cast<std::atomic<uint64_t>*>(dst)->store(value, std::memory_order_release);
    stats_.bytes_written.fetch_add(8, std::memory_order_relaxed);
    if (mode_ == NvmMode::kTracking) {
      MarkDirty(dst, 8);
    }
  }

  uint64_t Load64(const uint64_t* src) const {
    return reinterpret_cast<const std::atomic<uint64_t>*>(src)->load(std::memory_order_acquire);
  }

  // clwb: request writeback of the cachelines covering [dst, dst+len).
  void Persist(const void* dst, size_t len);

  // sfence: all previously requested writebacks are durable after this returns.
  void Fence();

  // Persist + Fence.
  void PersistNow(const void* dst, size_t len) {
    Persist(dst, len);
    Fence();
  }

  // Store64 + Persist + Fence: the atomic durable commit.
  void CommitStore64(uint64_t* dst, uint64_t value) {
    Store64(dst, value);
    PersistNow(dst, sizeof(uint64_t));
  }

  // ---- Fault injection (FaultSim). ----

  // Attaches an injector (not owned; null = off, one-branch overhead). Armable points:
  // kFaultNvmTornPersist (a multi-line Persist silently drops a non-empty subset of its
  // cachelines — they stay dirty, so only a crash before a later flush loses them) and
  // kFaultNvmBitFlip (a Fence commits one of its lines with a single bit flipped).
  // Components owning a pool reference (DelegationPool, KernelController) reach the
  // injector through here as well.
  void set_fault_injector(FaultInjector* injector) { fault_injector_ = injector; }
  FaultInjector* fault_injector() const { return fault_injector_; }

  // Targeted media corruption: flips one uniformly chosen bit of [addr, addr+len), in the
  // live image and (kTracking) the persisted image — a durable media fault that survives
  // crashes and recovery. Returns the byte offset of the flipped bit within the range.
  size_t InjectBitFlip(void* addr, size_t len, Rng& rng);

  // ---- Crash simulation (kTracking only). ----

  // Reverts main memory to the persisted image. Each line that was written but not yet
  // durable survives with probability `evict_probability` (cache eviction can persist data
  // behind the program's back; 0.0 = strictest loss, 1.0 = everything survives).
  void SimulateCrash(Rng* rng = nullptr, double evict_probability = 0.0);

  // Number of cachelines currently written-but-not-durable (diagnostics for tests).
  size_t UnpersistedLineCount();

  // ---- Fence recording (kTracking only): Chipmunk-style crash-point enumeration. ----
  // While recording, every Fence() appends the set of cachelines it committed (with their
  // contents). MaterializeAt(k, out) reconstructs the persisted image as it stood
  // immediately after the k-th recorded fence — i.e. the state a crash at that point
  // leaves behind. Crash-consistency tests remount from these images.
  void StartFenceRecording();
  void StopFenceRecording();
  size_t RecordedFenceCount();
  // `out` must hold num_pages() * kPageSize bytes.
  void MaterializeAt(size_t fence_index, char* out);

  // Overwrites this pool's contents with a raw image (e.g. one produced by
  // MaterializeAt) — the "reboot onto the persisted state" step of a crash test.
  void LoadImage(const char* image);

 private:
  void MarkDirty(const void* dst, size_t len);
  static void SpinDelayNs(uint64_t ns);
  uint64_t LineOf(const void* ptr) const {
    return (static_cast<const char*>(ptr) - main_) / kCacheLineSize;
  }
  void Init();

  size_t num_pages_;
  NvmMode mode_;
  NumaTopology topology_;
  size_t pages_per_node_;
  char* main_ = nullptr;             // Anonymous heap buffer or MAP_SHARED mapping.
  bool file_backed_ = false;
  std::unique_ptr<char[]> heap_;     // Owns main_ when not file-backed.
  std::unique_ptr<char[]> shadow_;   // Persisted image (kTracking only).
  NvmStats stats_;
  NvmCostModel cost_model_;
  FaultInjector* fault_injector_ = nullptr;

  std::mutex track_mutex_;
  std::unordered_set<uint64_t> dirty_lines_;    // Stored, clwb not yet issued.
  std::unordered_set<uint64_t> pending_lines_;  // clwb issued, fence not yet reached.

  struct FenceDelta {
    std::vector<std::pair<uint64_t, std::array<char, kCacheLineSize>>> lines;
  };
  bool recording_ = false;
  std::vector<char> recording_base_;       // Shadow image when recording started.
  std::vector<FenceDelta> fence_deltas_;   // One delta per Fence() while recording.
};

}  // namespace trio

#endif  // SRC_NVM_NVM_H_
