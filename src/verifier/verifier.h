// The trusted userspace integrity verifier (§4.3). When a LibFS releases write access to a
// file, the kernel controller hands the file's core state to the verifier, which checks
// invariants I1-I4 against the shared core-state format and the kernel's ownership tables
// (read-only, via OwnershipView). The verifier is a standalone trusted component in the
// paper; here it is a class that only ever *reads* the pool and the kernel's tables —
// corruption handling is the kernel controller's job.
//
// Invariants (§4.3):
//  I1  Fields in each inode and directory entry are valid (types, names, duplicates,
//      reserved bytes, size vs capacity).
//  I2  A file's inode number, index pages and data pages are valid: each was either part of
//      the file before the write grant or leased to the writing LibFS, and nothing is
//      doubly referenced.
//  I3  The directory hierarchy remains a connected tree: a child directory deleted since
//      the checkpoint must be unmapped everywhere and empty.
//  I4  Access permission is correctly enforced: the (cached) mode/uid/gid in a DirentBlock
//      must match the kernel's shadow inode table; new files must be owned by the creator.

#ifndef SRC_VERIFIER_VERIFIER_H_
#define SRC_VERIFIER_VERIFIER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/core_state.h"
#include "src/core/format.h"
#include "src/core/ownership.h"
#include "src/nvm/nvm.h"

namespace trio {

// What the kernel remembers about a directory's children at checkpoint time (I3 input).
struct CheckpointChild {
  Ino ino = kInvalidIno;
  bool is_dir = false;
};

// A freshly created file discovered during directory verification.
struct NewChildInfo {
  Ino ino = kInvalidIno;
  PageNumber dirent_page = 0;
  size_t dirent_slot = 0;
  bool is_dir = false;
  uint32_t mode = 0;
  uint32_t uid = 0;
  uint32_t gid = 0;
  PageNumber first_index_page = 0;
  std::string name;
};

// A file that existed at checkpoint time but whose dirent is owned by a different parent:
// the writer renamed it into this directory.
struct MovedInChild {
  Ino ino = kInvalidIno;
  Ino old_parent = kInvalidIno;
  PageNumber dirent_page = 0;
  size_t dirent_slot = 0;
};

struct VerifyReport {
  // Every index and data page referenced by the file, post-write (kernel reconciles
  // ownership from this).
  std::vector<PageNumber> pages;
  // Directories only:
  std::vector<NewChildInfo> new_children;
  std::vector<Ino> removed_children;       // At checkpoint, now gone (deleted or moved out).
  std::vector<MovedInChild> moved_in;      // Renamed into this directory.
  uint64_t live_dirents = 0;
};

// Kernel-side answers the verifier needs for I3 and rename classification. Implemented by
// the kernel controller; the verifier treats it as an oracle over trusted state.
class VerifyEnv {
 public:
  virtual ~VerifyEnv() = default;
  // I3: a child directory that disappeared since the checkpoint must be unmapped
  // everywhere and contain no live dirents. The kernel knows the child's last reconciled
  // index chain and current grants, so it performs both checks and returns kCorrupted on
  // violation. (A cross-directory rename of a non-empty directory therefore fails — a
  // documented ArckFS restriction; files rename fine, see moved_in.)
  virtual Status CheckRemovedChildDir(Ino child, LibFsId writer) const = 0;
  // May `writer` have moved `child` (currently owned with a different parent) into
  // `new_parent`? True iff the old parent directory is write-held by the same writer or the
  // child is pending reconciliation from an earlier unmap in this writer's session.
  virtual bool IsMovePermitted(Ino child, Ino new_parent, LibFsId writer) const = 0;
};

struct VerifyRequest {
  Ino ino = kInvalidIno;
  const DirentBlock* dirent = nullptr;     // The file's dirent+inode (may be in superblock).
  LibFsId writer = kNoLibFs;
  uint32_t writer_uid = 0;
  uint32_t writer_gid = 0;
  // Children of the directory at checkpoint time; empty for regular files or fresh files.
  const std::vector<CheckpointChild>* checkpoint_children = nullptr;
};

struct VerifierStats {
  std::atomic<uint64_t> files_verified{0};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> pages_scanned{0};
};

class IntegrityVerifier {
 public:
  IntegrityVerifier(NvmPool& pool, const OwnershipView& ownership, const VerifyEnv& env)
      : pool_(pool), ownership_(ownership), env_(env) {}

  // Returns the report on success, or kCorrupted with a diagnostic on any I1-I4 violation.
  Result<VerifyReport> Verify(const VerifyRequest& request);

  VerifierStats& stats() { return stats_; }

 private:
  Status CheckDirentFields(const DirentBlock& dirent, bool allow_root) const;
  // I2 over the chain rooted at first_index_page. Appends pages to report->pages.
  Status CheckChain(Ino ino, PageNumber first_index_page, LibFsId writer,
                    VerifyReport* report) const;
  Result<VerifyReport> VerifyRegular(const VerifyRequest& request);
  Result<VerifyReport> VerifyDirectory(const VerifyRequest& request);

  NvmPool& pool_;
  const OwnershipView& ownership_;
  const VerifyEnv& env_;
  mutable VerifierStats stats_;  // Counters bump inside const check helpers.
};

}  // namespace trio

#endif  // SRC_VERIFIER_VERIFIER_H_
