// The trusted userspace integrity verifier (§4.3). When a LibFS releases write access to a
// file, the kernel controller hands the file's core state to the verifier, which checks
// invariants I1-I4 against the shared core-state format and the kernel's ownership tables
// (read-only, via OwnershipView). The verifier is a standalone trusted component in the
// paper; here it is a class that only ever *reads* the pool and the kernel's tables —
// corruption handling is the kernel controller's job.
//
// Invariants (§4.3):
//  I1  Fields in each inode and directory entry are valid (types, names, duplicates,
//      reserved bytes, size vs capacity).
//  I2  A file's inode number, index pages and data pages are valid: each was either part of
//      the file before the write grant or leased to the writing LibFS, and nothing is
//      doubly referenced.
//  I3  The directory hierarchy remains a connected tree: a child directory deleted since
//      the checkpoint must be unmapped everywhere and empty.
//  I4  Access permission is correctly enforced: the (cached) mode/uid/gid in a DirentBlock
//      must match the kernel's shadow inode table; new files must be owned by the creator.

#ifndef SRC_VERIFIER_VERIFIER_H_
#define SRC_VERIFIER_VERIFIER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/core/core_state.h"
#include "src/core/format.h"
#include "src/core/ownership.h"
#include "src/nvm/nvm.h"
#include "src/sim/fault_injector.h"
#include "src/verifier/verify_error.h"

namespace trio {

// Fault point: a page read taken during verification hits a transient media error. The
// verifier retries the whole verification (bounded) before reporting kMediaFailure.
inline constexpr const char kFaultVerifierMediaRead[] = "verifier.media_read";

// What the kernel remembers about a directory's children at checkpoint time (I3 input).
struct CheckpointChild {
  Ino ino = kInvalidIno;
  bool is_dir = false;
};

// A freshly created file discovered during directory verification.
struct NewChildInfo {
  Ino ino = kInvalidIno;
  PageNumber dirent_page = 0;
  size_t dirent_slot = 0;
  bool is_dir = false;
  uint32_t mode = 0;
  uint32_t uid = 0;
  uint32_t gid = 0;
  PageNumber first_index_page = 0;
  std::string name;
};

// A file that existed at checkpoint time but whose dirent is owned by a different parent:
// the writer renamed it into this directory.
struct MovedInChild {
  Ino ino = kInvalidIno;
  Ino old_parent = kInvalidIno;
  PageNumber dirent_page = 0;
  size_t dirent_slot = 0;
};

struct VerifyReport {
  // Every index and data page referenced by the file, post-write (kernel reconciles
  // ownership from this).
  std::vector<PageNumber> pages;
  // Backend slots referenced by tier entries (digested pages), post-write; the kernel
  // reconciles backend-slot ownership from this the same way it reconciles pages.
  std::vector<uint64_t> backend_slots;
  // Directories only:
  std::vector<NewChildInfo> new_children;
  std::vector<Ino> removed_children;       // At checkpoint, now gone (deleted or moved out).
  std::vector<MovedInChild> moved_in;      // Renamed into this directory.
  uint64_t live_dirents = 0;
};

// Kernel-side answers the verifier needs for I3 and rename classification. Implemented by
// the kernel controller; the verifier treats it as an oracle over trusted state.
class VerifyEnv {
 public:
  virtual ~VerifyEnv() = default;
  // I3: a child directory that disappeared since the checkpoint must be unmapped
  // everywhere and contain no live dirents. The kernel knows the child's last reconciled
  // index chain and current grants, so it performs both checks and returns kCorrupted on
  // violation. (A cross-directory rename of a non-empty directory therefore fails — a
  // documented ArckFS restriction; files rename fine, see moved_in.)
  virtual Status CheckRemovedChildDir(Ino child, LibFsId writer) const = 0;
  // May `writer` have moved `child` (currently owned with a different parent) into
  // `new_parent`? True iff the old parent directory is write-held by the same writer or the
  // child is pending reconciliation from an earlier unmap in this writer's session.
  virtual bool IsMovePermitted(Ino child, Ino new_parent, LibFsId writer) const = 0;
  // Is `slot` a backend-tier slot legitimately owned by `ino`? Only the kernel's own
  // digestion service mints tier entries, so the default — no backend configured — rejects
  // every tier entry outright: a forged digested-page mapping is corruption by
  // construction, not something a LibFS can smuggle past an unconfigured verifier.
  virtual Status CheckTierSlot(Ino ino, uint64_t slot) const {
    (void)ino;
    return VerifyFail(VerifyErrorClass::kForeignPage, "I2",
                      "tier entry references backend slot " + std::to_string(slot) +
                          " but no backend tier is configured");
  }
};

struct VerifyRequest {
  Ino ino = kInvalidIno;
  const DirentBlock* dirent = nullptr;     // The file's dirent+inode (may be in superblock).
  LibFsId writer = kNoLibFs;
  uint32_t writer_uid = 0;
  uint32_t writer_gid = 0;
  // Children of the directory at checkpoint time; empty for regular files or fresh files.
  const std::vector<CheckpointChild>* checkpoint_children = nullptr;
  // Absolute deadline (clock nanoseconds) for this verification; 0 = unbounded. The
  // verifier checks it cooperatively inside its page/dirent walks — it runs on the
  // caller's thread under the kernel lock, so a watchdog thread cannot bound it without
  // deadlocking against the OwnershipView callbacks. An overrun returns kDeadline
  // (ErrorCode::kTimeout): the state is UNVERIFIED and the kernel treats it exactly like
  // corruption (rollback + quarantine) rather than accepting it unchecked.
  uint64_t deadline_ns = 0;
};

struct VerifierStats {
  std::atomic<uint64_t> files_verified{0};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> pages_scanned{0};
  std::atomic<uint64_t> deadline_exceeded{0};  // Verifications that overran deadline_ns.
  std::atomic<uint64_t> media_retries{0};      // Re-runs after a transient media fault.
};

class IntegrityVerifier {
 public:
  IntegrityVerifier(NvmPool& pool, const OwnershipView& ownership, const VerifyEnv& env,
                    Clock* clock = SystemClock::Instance())
      : pool_(pool), ownership_(ownership), env_(env), clock_(clock) {}

  // Returns the report on success, or a structured VerifyError status (kCorrupted on any
  // I1-I4 violation, kTimeout past the deadline, kIo after media-retry exhaustion).
  Result<VerifyReport> Verify(const VerifyRequest& request);

  VerifierStats& stats() { return stats_; }

  // Attach FaultSim (kFaultVerifierMediaRead) for transient-media testing; nullptr
  // detaches. A fired fault aborts the current pass; Verify retries the whole pass up to
  // media_read_retries times before surfacing kMediaFailure.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  void set_media_read_retries(int retries) { media_read_retries_ = retries; }

 private:
  Status CheckDirentFields(const DirentBlock& dirent, bool allow_root) const;
  // I2 over the chain rooted at first_index_page. Appends pages to report->pages.
  Status CheckChain(const VerifyRequest& request, PageNumber first_index_page,
                    VerifyReport* report) const;
  Status CheckDeadline(const VerifyRequest& request) const;
  Result<VerifyReport> VerifyOnce(const VerifyRequest& request);
  Result<VerifyReport> VerifyRegular(const VerifyRequest& request);
  Result<VerifyReport> VerifyDirectory(const VerifyRequest& request);

  NvmPool& pool_;
  const OwnershipView& ownership_;
  const VerifyEnv& env_;
  Clock* clock_;
  FaultInjector* injector_ = nullptr;
  int media_read_retries_ = 3;
  mutable VerifierStats stats_;  // Counters bump inside const check helpers.
};

}  // namespace trio

#endif  // SRC_VERIFIER_VERIFIER_H_
