// Offline file system checker (trio.fsck). The online integrity verifier (§4.3) checks
// ONE file when its write access transfers; this checker is its offline complement in the
// e2fsck tradition the paper draws the invariants from: a full sweep over the whole tree
// with global cross-file invariants that no single-file check can see —
//
//   G1  the superblock is sane;
//   G2  every file's dirent passes I1 and its chain is acyclic and in-bounds;
//   G3  no NVM page is referenced by two files (global double-reference);
//   G4  no inode number appears under two names (no hard links in ArckFS);
//   G5  every live file has a matching shadow inode and the cached permissions agree;
//   G6  every shadow inode marked live is reachable from the root (no orphans);
//   G7  backend-tier slots: no slot is referenced by two files, tier entries never
//       appear inside directories, and — when the caller supplies the backend's owner
//       table — every referenced slot exists on the backend under the referencing ino
//       and no page is simultaneously live in NVM and digested (owned by both tiers).
//
// Check-only: it never writes. The kernel controller's Mount/RunRecovery handle repair.

#ifndef SRC_VERIFIER_FSCK_H_
#define SRC_VERIFIER_FSCK_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/core/core_state.h"
#include "src/nvm/nvm.h"

namespace trio {

struct FsckProblem {
  std::string invariant;  // "G1".."G7".
  Ino ino = kInvalidIno;
  std::string detail;
};

struct FsckReport {
  uint64_t directories = 0;
  uint64_t regular_files = 0;
  uint64_t pages_in_use = 0;
  uint64_t tier_slots_in_use = 0;
  uint64_t bytes_in_files = 0;
  std::vector<FsckProblem> problems;

  bool Clean() const { return problems.empty(); }
};

// Sweeps the whole pool. Never modifies it. `tier_owners` is an optional snapshot of the
// slow backend's slot-owner table (SlowBackend::SlotOwners()); when supplied, G7 checks
// every tier entry against it.
Result<FsckReport> RunFsck(NvmPool& pool,
                           const std::unordered_map<uint64_t, Ino>* tier_owners = nullptr);

}  // namespace trio

#endif  // SRC_VERIFIER_FSCK_H_
