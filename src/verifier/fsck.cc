#include "src/verifier/fsck.h"

#include <unordered_map>
#include <unordered_set>

namespace trio {

namespace {

class FsckRun {
 public:
  FsckRun(NvmPool& pool, const std::unordered_map<uint64_t, Ino>* tier_owners)
      : pool_(pool), tier_owners_(tier_owners) {}

  Result<FsckReport> Run() {
    Status super = CheckSuperblock(pool_);
    if (!super.ok()) {
      Problem("G1", kInvalidIno, super.ToString());
      return report_;
    }
    const Superblock* sb = SuperblockOf(pool_);
    CheckFile(&sb->root, kInvalidIno, /*depth=*/0);
    CheckShadowOrphans();
    return report_;
  }

 private:
  void Problem(const std::string& invariant, Ino ino, const std::string& detail) {
    report_.problems.push_back(FsckProblem{invariant, ino, detail});
  }

  // Field-level checks mirroring the online verifier's I1 (duplicated deliberately: an
  // offline checker should not share fate with the code it is auditing).
  bool CheckDirentFields(const DirentBlock& d, bool is_root) {
    const uint32_t type = d.mode & kModeTypeMask;
    bool ok = true;
    if (type != kModeRegular && type != kModeDirectory) {
      Problem("G2", d.ino, "invalid file type bits");
      ok = false;
    }
    // name_len gates every Name() call: a fuzzed length would otherwise make the
    // string_view span far past the fixed-size name array.
    if (d.name_len >= kMaxNameLen) {
      Problem("G2", d.ino, "name length out of range");
      ok = false;
    } else if (!is_root && !ValidFileName(d.Name())) {
      Problem("G2", d.ino, "invalid file name");
      ok = false;
    }
    if (d.nlink != 1) {
      Problem("G2", d.ino, "nlink != 1");
      ok = false;
    }
    if (type == kModeDirectory && d.size != 0) {
      Problem("G2", d.ino, "directory with nonzero size");
      ok = false;
    }
    for (uint8_t b : d.reserved) {
      if (b != 0) {
        Problem("G2", d.ino, "nonzero reserved bytes");
        ok = false;
        break;
      }
    }
    if (d.ino >= SuperblockOf(pool_)->max_inodes) {
      Problem("G2", d.ino, "inode number out of range");
      ok = false;
    }
    return ok;
  }

  // Claims a page for `ino`; reports G3 on double use.
  bool ClaimPage(PageNumber page, Ino ino) {
    auto [it, fresh] = page_owner_.emplace(page, ino);
    if (!fresh) {
      Problem("G3", ino,
              "page " + std::to_string(page) + " also used by ino " +
                  std::to_string(it->second));
      return false;
    }
    report_.pages_in_use++;
    return true;
  }

  // G7: claims a backend-tier slot for `ino`. A slot referenced from two files is the
  // cross-tier analogue of G3; a slot the backend does not record under this ino (when
  // the caller supplied the owner table) is a lost or forged digested page.
  void ClaimTierSlot(uint64_t slot, Ino ino) {
    auto [it, fresh] = slot_owner_.emplace(slot, ino);
    if (!fresh) {
      Problem("G7", ino,
              "backend slot " + std::to_string(slot) + " also used by ino " +
                  std::to_string(it->second));
      return;
    }
    report_.tier_slots_in_use++;
    if (tier_owners_ != nullptr) {
      auto owner = tier_owners_->find(slot);
      if (owner == tier_owners_->end()) {
        Problem("G7", ino,
                "tier entry references backend slot " + std::to_string(slot) +
                    " that the backend does not record as owned");
      } else if (owner->second != ino) {
        Problem("G7", ino,
                "backend records slot " + std::to_string(slot) + " as owned by ino " +
                    std::to_string(owner->second));
      }
    }
  }

  void CheckFile(const DirentBlock* dirent, Ino parent, int depth) {
    if (depth > 512) {
      Problem("G2", dirent->ino, "directory nesting beyond plausible depth");
      return;
    }
    const bool is_root = dirent->ino == kRootIno && parent == kInvalidIno;
    if (!CheckDirentFields(*dirent, is_root)) {
      return;
    }
    // G4: globally unique inode numbers.
    if (!seen_inos_.insert(dirent->ino).second) {
      Problem("G4", dirent->ino, "inode referenced by two dirents");
      return;
    }
    // G5: shadow inode agreement.
    ShadowInode* shadow = ShadowInodeOf(pool_, dirent->ino);
    if (shadow == nullptr || !shadow->Exists()) {
      Problem("G5", dirent->ino, "no shadow inode for live file");
    } else if (shadow->mode != dirent->mode || shadow->uid != dirent->uid ||
               shadow->gid != dirent->gid) {
      Problem("G5", dirent->ino, "cached permissions differ from shadow inode");
    }

    // G2: chain structure. The walkers bound-check and detect cycles.
    uint64_t index_pages = 0;
    Status walk =
        ForEachIndexPage(pool_, dirent->first_index_page, [&](PageNumber p) -> Status {
          ClaimPage(p, dirent->ino);
          ++index_pages;
          return OkStatus();
        });
    if (!walk.ok()) {
      Problem("G2", dirent->ino, "index chain: " + walk.ToString());
      return;
    }
    walk = ForEachDataEntry(pool_, dirent->first_index_page,
                            [&](uint64_t, uint64_t entry) -> Status {
                              if (IsTierEntry(entry)) {
                                // Only regular files digest; a tagged entry inside a
                                // directory chain is corruption, not data.
                                if (dirent->IsDirectory()) {
                                  Problem("G7", dirent->ino,
                                          "tier entry inside a directory chain");
                                } else {
                                  ClaimTierSlot(TierSlotOfEntry(entry), dirent->ino);
                                }
                                return OkStatus();
                              }
                              ClaimPage(static_cast<PageNumber>(entry), dirent->ino);
                              return OkStatus();
                            });
    if (!walk.ok()) {
      Problem("G2", dirent->ino, "data pages: " + walk.ToString());
      return;
    }

    if (dirent->IsRegular()) {
      report_.regular_files++;
      report_.bytes_in_files += dirent->size;
      const uint64_t capacity = index_pages * kIndexEntriesPerPage * kPageSize;
      if (dirent->size > capacity) {
        Problem("G2", dirent->ino, "size exceeds index chain capacity");
      }
      return;
    }

    report_.directories++;
    std::unordered_set<std::string> names;
    Status scan = ForEachDirent(
        pool_, dirent->first_index_page,
        [&](DirentBlock* child, PageNumber, size_t) -> Status {
          // Only a bounded name_len may be turned into a string; CheckFile reports the
          // out-of-range case.
          if (child->name_len < kMaxNameLen &&
              !names.insert(std::string(child->Name())).second) {
            Problem("G2", dirent->ino,
                    "duplicate name '" + std::string(child->Name()) + "'");
          }
          CheckFile(child, dirent->ino, depth + 1);
          return OkStatus();
        });
    if (!scan.ok()) {
      Problem("G2", dirent->ino, "dirent scan: " + scan.ToString());
    }
  }

  // G6: every shadow inode marked live must have been reached from the root.
  void CheckShadowOrphans() {
    const Superblock* sb = SuperblockOf(pool_);
    for (Ino ino = 1; ino < sb->max_inodes; ++ino) {
      const ShadowInode* shadow = ShadowInodeOf(pool_, ino);
      if (shadow != nullptr && shadow->Exists() && seen_inos_.count(ino) == 0) {
        Problem("G6", ino, "shadow inode live but unreachable from the root");
      }
    }
  }

  NvmPool& pool_;
  const std::unordered_map<uint64_t, Ino>* tier_owners_;
  FsckReport report_;
  std::unordered_map<PageNumber, Ino> page_owner_;
  std::unordered_map<uint64_t, Ino> slot_owner_;
  std::unordered_set<Ino> seen_inos_;
};

}  // namespace

Result<FsckReport> RunFsck(NvmPool& pool,
                           const std::unordered_map<uint64_t, Ino>* tier_owners) {
  return FsckRun(pool, tier_owners).Run();
}

}  // namespace trio
