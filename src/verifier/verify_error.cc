#include "src/verifier/verify_error.h"

namespace trio {

const char* VerifyErrorClassName(VerifyErrorClass cls) {
  switch (cls) {
    case VerifyErrorClass::kUnclassified: return "unclassified";
    case VerifyErrorClass::kBadType: return "bad_type";
    case VerifyErrorClass::kBadName: return "bad_name";
    case VerifyErrorClass::kHiddenPayload: return "hidden_payload";
    case VerifyErrorClass::kBadLinkCount: return "bad_link_count";
    case VerifyErrorClass::kBadSize: return "bad_size";
    case VerifyErrorClass::kBadInodeNumber: return "bad_inode_number";
    case VerifyErrorClass::kBadPagePointer: return "bad_page_pointer";
    case VerifyErrorClass::kChainCycle: return "chain_cycle";
    case VerifyErrorClass::kDoubleReference: return "double_reference";
    case VerifyErrorClass::kForeignPage: return "foreign_page";
    case VerifyErrorClass::kForeignInode: return "foreign_inode";
    case VerifyErrorClass::kDuplicateInode: return "duplicate_inode";
    case VerifyErrorClass::kCrossDirectory: return "cross_directory";
    case VerifyErrorClass::kDuplicateName: return "duplicate_name";
    case VerifyErrorClass::kIdentityMismatch: return "identity_mismatch";
    case VerifyErrorClass::kRemovedDirNotEmpty: return "removed_dir_not_empty";
    case VerifyErrorClass::kPermissionMismatch: return "permission_mismatch";
    case VerifyErrorClass::kOwnershipForgery: return "ownership_forgery";
    case VerifyErrorClass::kMissingShadow: return "missing_shadow";
    case VerifyErrorClass::kDeadline: return "deadline";
    case VerifyErrorClass::kMediaFailure: return "media_failure";
  }
  return "unclassified";
}

namespace {

constexpr VerifyErrorClass kAllClasses[] = {
    VerifyErrorClass::kBadType,
    VerifyErrorClass::kBadName,
    VerifyErrorClass::kHiddenPayload,
    VerifyErrorClass::kBadLinkCount,
    VerifyErrorClass::kBadSize,
    VerifyErrorClass::kBadInodeNumber,
    VerifyErrorClass::kBadPagePointer,
    VerifyErrorClass::kChainCycle,
    VerifyErrorClass::kDoubleReference,
    VerifyErrorClass::kForeignPage,
    VerifyErrorClass::kForeignInode,
    VerifyErrorClass::kDuplicateInode,
    VerifyErrorClass::kCrossDirectory,
    VerifyErrorClass::kDuplicateName,
    VerifyErrorClass::kIdentityMismatch,
    VerifyErrorClass::kRemovedDirNotEmpty,
    VerifyErrorClass::kPermissionMismatch,
    VerifyErrorClass::kOwnershipForgery,
    VerifyErrorClass::kMissingShadow,
    VerifyErrorClass::kDeadline,
    VerifyErrorClass::kMediaFailure,
};

ErrorCode CodeFor(VerifyErrorClass cls) {
  switch (cls) {
    case VerifyErrorClass::kDeadline:
      return ErrorCode::kTimeout;
    case VerifyErrorClass::kMediaFailure:
      return ErrorCode::kIo;
    default:
      return ErrorCode::kCorrupted;
  }
}

}  // namespace

Status VerifyError::ToStatus() const {
  std::string message = "[";
  message += invariant;
  message += '/';
  message += VerifyErrorClassName(cls);
  message += "] ";
  message += detail;
  return Status(CodeFor(cls), message);
}

VerifyError VerifyError::FromStatus(const Status& status) {
  VerifyError error;
  const std::string& message = status.message();
  const size_t slash = message.find('/');
  const size_t close = message.find("] ");
  if (message.empty() || message[0] != '[' || slash == std::string::npos ||
      close == std::string::npos || slash > close) {
    error.detail = message;
    return error;
  }
  const std::string_view invariant(message.data() + 1, slash - 1);
  const std::string_view slug(message.data() + slash + 1, close - slash - 1);
  for (VerifyErrorClass cls : kAllClasses) {
    if (slug == VerifyErrorClassName(cls)) {
      error.cls = cls;
      break;
    }
  }
  if (error.cls == VerifyErrorClass::kUnclassified) {
    error.detail = message;
    return error;
  }
  error.invariant = std::string(invariant);
  error.detail = message.substr(close + 2);
  return error;
}

bool VerifyError::IsStructured(const Status& status) {
  return FromStatus(status).cls != VerifyErrorClass::kUnclassified;
}

Status VerifyFail(VerifyErrorClass cls, std::string_view invariant,
                  std::string_view detail) {
  VerifyError error;
  error.cls = cls;
  error.invariant = std::string(invariant);
  error.detail = std::string(detail);
  return error.ToStatus();
}

}  // namespace trio
