// Structured taxonomy for integrity-verification failures. Every failure the online
// verifier (verifier.h) or the kernel's verify-and-reconcile path produces is classified
// into a VerifyErrorClass and carried inside the ordinary Status message with a parseable
// "[<invariant>/<class>] " prefix, so:
//
//   - callers that only know Status keep working (the code is still kCorrupted /
//     kTimeout / kIo);
//   - harnesses (fuzz corpus, crash explorer, quarantine inspection) can recover the
//     class with VerifyError::FromStatus and assert on it;
//   - the quarantine records WHY a file was impounded, not just that it was.
//
// The class list covers each distinct way the I1-I4 invariants can fail plus the two
// non-corruption outcomes (verification deadline exceeded, media read failure after
// retries). kUnclassified is the parse-failure sentinel, never produced by the verifier.

#ifndef SRC_VERIFIER_VERIFY_ERROR_H_
#define SRC_VERIFIER_VERIFY_ERROR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace trio {

enum class VerifyErrorClass : uint8_t {
  kUnclassified = 0,
  // I1: field validity.
  kBadType,            // Mode type bits neither regular nor directory.
  kBadName,            // Invalid characters, bad length, or embedded NUL.
  kHiddenPayload,      // Nonzero bytes after the name or in reserved fields.
  kBadLinkCount,       // nlink != 1 (no hard links in ArckFS).
  kBadSize,            // Size exceeds chain capacity / directory size nonzero.
  kBadInodeNumber,     // Inode number outside the shadow table.
  kBadPagePointer,     // Index/first page outside the file region.
  // I2: resource ownership.
  kChainCycle,         // Index chain loops (walker cycle detection).
  kDoubleReference,    // Page referenced twice within one file.
  kForeignPage,        // Page neither owned by the file nor leased to the writer.
  kForeignInode,       // Inode neither existing nor leased to the writer.
  kDuplicateInode,     // Two dirents claim one inode number.
  kCrossDirectory,     // Child inode belongs to another directory (illegal move).
  // I1 (namespace) / I3.
  kDuplicateName,      // Two live dirents share a name in one directory.
  kIdentityMismatch,   // Dirent ino/type does not match the verified identity.
  kRemovedDirNotEmpty, // Deleted child directory still mapped or non-empty.
  // I4: permissions.
  kPermissionMismatch, // Cached mode/uid/gid differ from the shadow inode.
  kOwnershipForgery,   // New file/child not owned by its creator.
  kMissingShadow,      // Live file without a shadow inode.
  // Bounded-verification outcomes (not corruption per se; still unverifiable states).
  kDeadline,           // Verification exceeded its time budget.
  kMediaFailure,       // Transient media read fault persisted past all retries.
};

// Stable lowercase slug ("foreign_page", ...). Round-trips through FromStatus.
const char* VerifyErrorClassName(VerifyErrorClass cls);

struct VerifyError {
  VerifyErrorClass cls = VerifyErrorClass::kUnclassified;
  std::string invariant;  // "I1".."I4" (online), "G1".."G6" (fsck), or "" unclassified.
  std::string detail;

  // kCorrupted for corruption classes, kTimeout for kDeadline, kIo for kMediaFailure;
  // message = "[<invariant>/<slug>] <detail>".
  Status ToStatus() const;
  // Parses a status produced by ToStatus/VerifyFail. Unparseable messages yield
  // kUnclassified with the whole message as detail.
  static VerifyError FromStatus(const Status& status);
  // True when `status` carries a structured verify-error prefix.
  static bool IsStructured(const Status& status);
};

// One-line helper for verifier check sites: VerifyFail(kForeignPage, "I2", "...").
Status VerifyFail(VerifyErrorClass cls, std::string_view invariant,
                  std::string_view detail);

}  // namespace trio

#endif  // SRC_VERIFIER_VERIFY_ERROR_H_
