#include "src/verifier/verifier.h"

#include <unordered_map>
#include <unordered_set>

#include "src/common/hash.h"

namespace trio {

namespace {

bool AllZero(const uint8_t* bytes, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    if (bytes[i] != 0) {
      return false;
    }
  }
  return true;
}

// The core-state walkers predate the taxonomy and return bare kCorrupted messages;
// reclassify them so chain failures are structured like every other verify error.
Status ClassifyWalkerError(const Status& status) {
  if (status.ok() || VerifyError::IsStructured(status)) {
    return status;
  }
  const VerifyErrorClass cls = status.message().find("cycle") != std::string::npos
                                   ? VerifyErrorClass::kChainCycle
                                   : VerifyErrorClass::kBadPagePointer;
  return VerifyFail(cls, "I2", status.message());
}

}  // namespace

Status IntegrityVerifier::CheckDeadline(const VerifyRequest& request) const {
  if (request.deadline_ns != 0 && clock_->NowNs() > request.deadline_ns) {
    stats_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    return VerifyFail(VerifyErrorClass::kDeadline, "I2",
                      "verification exceeded its time budget; state unverified");
  }
  return OkStatus();
}

Status IntegrityVerifier::CheckDirentFields(const DirentBlock& dirent,
                                            bool allow_root) const {
  // I1: file type must be a regular file or a directory.
  const uint32_t type = dirent.mode & kModeTypeMask;
  if (type != kModeRegular && type != kModeDirectory) {
    return VerifyFail(VerifyErrorClass::kBadType, "I1", "invalid file type");
  }
  // I1: name length must be validated BEFORE Name() constructs a view over the name
  // bytes — a fuzzed name_len would otherwise read far past the 48-byte array.
  if (dirent.name_len >= kMaxNameLen) {
    return VerifyFail(VerifyErrorClass::kBadName, "I1", "name length out of range");
  }
  // I1: valid name. The root's pseudo-name "/" is only legal in the superblock.
  const std::string_view name = dirent.Name();
  if (allow_root && name == "/") {
    // OK.
  } else if (!ValidFileName(name)) {
    return VerifyFail(VerifyErrorClass::kBadName, "I1", "invalid file name");
  }
  // I1: trailing name bytes beyond name_len must be zero (no hidden payload).
  if (!AllZero(reinterpret_cast<const uint8_t*>(dirent.name) + dirent.name_len,
               kMaxNameLen - dirent.name_len)) {
    return VerifyFail(VerifyErrorClass::kHiddenPayload, "I1", "nonzero bytes after name");
  }
  if (!AllZero(dirent.reserved, sizeof(dirent.reserved)) || dirent.reserved2 != 0) {
    return VerifyFail(VerifyErrorClass::kHiddenPayload, "I1", "reserved fields not zero");
  }
  if (dirent.nlink != 1) {
    return VerifyFail(VerifyErrorClass::kBadLinkCount, "I1",
                      "nlink must be 1 (no hard links)");
  }
  // I1: directories carry no size in core state.
  if (type == kModeDirectory && dirent.size != 0) {
    return VerifyFail(VerifyErrorClass::kBadSize, "I1", "directory size must be 0");
  }
  // I1: ino within table bounds.
  if (dirent.ino >= SuperblockOf(pool_)->max_inodes) {
    return VerifyFail(VerifyErrorClass::kBadInodeNumber, "I1",
                      "inode number out of range");
  }
  if (dirent.first_index_page != 0 && !ValidFilePage(pool_, dirent.first_index_page)) {
    return VerifyFail(VerifyErrorClass::kBadPagePointer, "I1",
                      "first index page out of range");
  }
  return OkStatus();
}

Status IntegrityVerifier::CheckChain(const VerifyRequest& request,
                                     PageNumber first_index_page,
                                     VerifyReport* report) const {
  const Ino ino = request.ino;
  std::unordered_set<PageNumber> seen;
  auto check_page = [&](PageNumber page) -> Status {
    TRIO_RETURN_IF_ERROR(CheckDeadline(request));
    if (injector_ != nullptr && injector_->ShouldFire(kFaultVerifierMediaRead)) {
      return VerifyFail(VerifyErrorClass::kMediaFailure, "I2",
                        "transient media error reading page " + std::to_string(page));
    }
    // I2: no double references within the file.
    if (!seen.insert(page).second) {
      return VerifyFail(VerifyErrorClass::kDoubleReference, "I2",
                        "page referenced twice within file");
    }
    // I2: page must have been part of this file already, or leased to the writer.
    const PageState state = ownership_.StateOfPage(page);
    const bool owned_by_file = state.state == ResourceState::kOwned && state.owner == ino;
    const bool leased_to_writer =
        state.state == ResourceState::kLeased && state.lessee == request.writer;
    if (!owned_by_file && !leased_to_writer) {
      return VerifyFail(VerifyErrorClass::kForeignPage, "I2",
                        "page neither owned by file nor leased to writer");
    }
    report->pages.push_back(page);
    stats_.pages_scanned.fetch_add(1, std::memory_order_relaxed);
    return OkStatus();
  };

  // Walk index pages, then raw data entries. ForEach* already bound-check page numbers
  // and detect cycles in the index chain; tier entries pass through tagged and are
  // checked against the backend owner oracle instead of the NVM ownership table.
  const bool is_dir = request.dirent != nullptr && request.dirent->IsDirectory();
  std::unordered_set<uint64_t> seen_slots;
  TRIO_RETURN_IF_ERROR(
      ClassifyWalkerError(ForEachIndexPage(pool_, first_index_page, check_page)));
  TRIO_RETURN_IF_ERROR(ClassifyWalkerError(ForEachDataEntry(
      pool_, first_index_page,
      [&](uint64_t /*file_page_index*/, uint64_t entry) -> Status {
        if (!IsTierEntry(entry)) {
          return check_page(entry);
        }
        TRIO_RETURN_IF_ERROR(CheckDeadline(request));
        // Directory chains never digest: a tagged entry there is forged outright.
        if (is_dir) {
          return VerifyFail(VerifyErrorClass::kBadPagePointer, "I2",
                            "tier entry inside a directory chain");
        }
        const uint64_t slot = TierSlotOfEntry(entry);
        // I2: no double references within the file, backend tier included.
        if (!seen_slots.insert(slot).second) {
          return VerifyFail(VerifyErrorClass::kDoubleReference, "I2",
                            "backend slot referenced twice within file");
        }
        TRIO_RETURN_IF_ERROR(env_.CheckTierSlot(ino, slot));
        report->backend_slots.push_back(slot);
        stats_.pages_scanned.fetch_add(1, std::memory_order_relaxed);
        return OkStatus();
      })));
  return OkStatus();
}

Result<VerifyReport> IntegrityVerifier::Verify(const VerifyRequest& request) {
  stats_.files_verified.fetch_add(1, std::memory_order_relaxed);
  if (request.dirent == nullptr) {
    stats_.failures.fetch_add(1, std::memory_order_relaxed);
    return InvalidArgument("verify request without dirent");
  }
  // Transient media faults abort a pass; re-run the whole verification (every pass
  // re-reads the chain, so a fault that clears on retry costs only the retries).
  Result<VerifyReport> result = VerifyOnce(request);
  for (int attempt = 0; attempt < media_read_retries_ && !result.ok(); ++attempt) {
    if (VerifyError::FromStatus(result.status()).cls != VerifyErrorClass::kMediaFailure) {
      break;
    }
    stats_.media_retries.fetch_add(1, std::memory_order_relaxed);
    result = VerifyOnce(request);
  }
  if (!result.ok()) {
    stats_.failures.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

Result<VerifyReport> IntegrityVerifier::VerifyOnce(const VerifyRequest& request) {
  return request.dirent->IsDirectory() ? VerifyDirectory(request)
                                       : VerifyRegular(request);
}

Result<VerifyReport> IntegrityVerifier::VerifyRegular(const VerifyRequest& request) {
  const DirentBlock& dirent = *request.dirent;
  TRIO_RETURN_IF_ERROR(CheckDirentFields(dirent, /*allow_root=*/false));
  if (!dirent.IsRegular()) {
    return VerifyFail(VerifyErrorClass::kIdentityMismatch, "I1",
                      "expected a regular file");
  }
  if (dirent.ino != request.ino) {
    return VerifyFail(VerifyErrorClass::kIdentityMismatch, "I1",
                      "dirent ino does not match file identity");
  }

  VerifyReport report;
  TRIO_RETURN_IF_ERROR(CheckChain(request, dirent.first_index_page, &report));

  // I1: size must fit within the capacity of the index chain. Holes read as zeros, so a
  // size larger than the *allocated* pages is fine, but not larger than the chain covers.
  uint64_t index_pages = 0;
  TRIO_RETURN_IF_ERROR(ForEachIndexPage(pool_, dirent.first_index_page,
                                        [&](PageNumber) -> Status {
                                          ++index_pages;
                                          return OkStatus();
                                        }));
  const uint64_t capacity = index_pages * kIndexEntriesPerPage * kPageSize;
  if (dirent.size > capacity) {
    return VerifyFail(VerifyErrorClass::kBadSize, "I1",
                      "file size exceeds index chain capacity");
  }

  // I2: the inode number itself.
  const InoState ino_state = ownership_.StateOfIno(request.ino);
  const bool existing = ino_state.state == ResourceState::kOwned;
  const bool fresh = ino_state.state == ResourceState::kLeased &&
                     ino_state.lessee == request.writer;
  if (!existing && !fresh) {
    return VerifyFail(VerifyErrorClass::kForeignInode, "I2",
                      "inode number neither existing nor leased to writer");
  }

  // I4: permissions. For an existing file the dirent's cached mode/uid/gid must match the
  // shadow inode table; for a fresh file the creator must declare itself as owner.
  if (existing) {
    const ShadowInode* shadow = ShadowInodeOf(pool_, request.ino);
    if (shadow == nullptr || !shadow->Exists()) {
      return VerifyFail(VerifyErrorClass::kMissingShadow, "I4",
                        "no shadow inode for existing file");
    }
    if (shadow->mode != dirent.mode || shadow->uid != dirent.uid || shadow->gid != dirent.gid) {
      return VerifyFail(VerifyErrorClass::kPermissionMismatch, "I4",
                        "cached permission differs from shadow inode");
    }
  } else {
    if (dirent.uid != request.writer_uid || dirent.gid != request.writer_gid) {
      return VerifyFail(VerifyErrorClass::kOwnershipForgery, "I4",
                        "new file not owned by its creator");
    }
  }
  return report;
}

Result<VerifyReport> IntegrityVerifier::VerifyDirectory(const VerifyRequest& request) {
  const DirentBlock& dir = *request.dirent;
  TRIO_RETURN_IF_ERROR(CheckDirentFields(dir, /*allow_root=*/request.ino == kRootIno));
  if (!dir.IsDirectory()) {
    return VerifyFail(VerifyErrorClass::kIdentityMismatch, "I1", "expected a directory");
  }
  if (dir.ino != request.ino) {
    return VerifyFail(VerifyErrorClass::kIdentityMismatch, "I1",
                      "dirent ino does not match directory identity");
  }

  VerifyReport report;
  TRIO_RETURN_IF_ERROR(CheckChain(request, dir.first_index_page, &report));

  // I4 for the directory itself (unless it is brand new).
  const InoState self_state = ownership_.StateOfIno(request.ino);
  if (self_state.state == ResourceState::kOwned || request.ino == kRootIno) {
    const ShadowInode* shadow = ShadowInodeOf(pool_, request.ino);
    if (shadow == nullptr || !shadow->Exists()) {
      return VerifyFail(VerifyErrorClass::kMissingShadow, "I4",
                        "no shadow inode for existing directory");
    }
    if (shadow->mode != dir.mode || shadow->uid != dir.uid || shadow->gid != dir.gid) {
      return VerifyFail(VerifyErrorClass::kPermissionMismatch, "I4",
                        "cached directory permission differs from shadow inode");
    }
  } else if (self_state.state == ResourceState::kLeased &&
             self_state.lessee == request.writer) {
    if (dir.uid != request.writer_uid || dir.gid != request.writer_gid) {
      return VerifyFail(VerifyErrorClass::kOwnershipForgery, "I4",
                        "new directory not owned by its creator");
    }
  } else {
    return VerifyFail(VerifyErrorClass::kForeignInode, "I2",
                      "directory inode neither existing nor leased to writer");
  }

  // Scan every live dirent: I1 per entry, duplicate names, and classify each child.
  std::unordered_set<uint64_t> name_hashes;
  std::unordered_set<std::string> names;  // Hash set alone could false-positive; keep exact.
  std::unordered_set<Ino> child_inos;
  std::unordered_map<Ino, bool> present;  // ino -> seen (for removed-children diff).

  Status scan = ForEachDirent(
      pool_, dir.first_index_page,
      [&](DirentBlock* entry, PageNumber page, size_t slot) -> Status {
        TRIO_RETURN_IF_ERROR(CheckDeadline(request));
        TRIO_RETURN_IF_ERROR(CheckDirentFields(*entry, /*allow_root=*/false));
        ++report.live_dirents;
        // I1: "no file shares the same name under one directory".
        std::string name(entry->Name());
        if (!names.insert(name).second) {
          return VerifyFail(VerifyErrorClass::kDuplicateName, "I1",
                            "duplicate file name in directory");
        }
        name_hashes.insert(HashString(name));
        // I2: no two dirents may claim the same inode number.
        if (!child_inos.insert(entry->ino).second) {
          return VerifyFail(VerifyErrorClass::kDuplicateInode, "I2",
                            "inode number referenced by two dirents");
        }
        present[entry->ino] = true;

        const InoState state = ownership_.StateOfIno(entry->ino);
        if (state.state == ResourceState::kOwned) {
          if (state.parent == request.ino) {
            // Existing child: I4 cached-permission check.
            const ShadowInode* shadow = ShadowInodeOf(pool_, entry->ino);
            if (shadow == nullptr || !shadow->Exists()) {
              return VerifyFail(VerifyErrorClass::kMissingShadow, "I4",
                                "existing child has no shadow inode");
            }
            if (shadow->mode != entry->mode || shadow->uid != entry->uid ||
                shadow->gid != entry->gid) {
              return VerifyFail(VerifyErrorClass::kPermissionMismatch, "I4",
                                "child cached permission differs from shadow inode");
            }
          } else {
            // Owned by another directory: only legal as a rename performed by this writer.
            if (!env_.IsMovePermitted(entry->ino, request.ino, request.writer)) {
              return VerifyFail(VerifyErrorClass::kCrossDirectory, "I2",
                                "child inode belongs to another directory");
            }
            // I4 holds for moved-in children too: a rename carries the cached
            // permissions verbatim, so they must still match the shadow inode. Without
            // this, a writer who legitimately holds both directories can smuggle a
            // chmod/chown inside the rename (AttackMovedInPermissionLift).
            const ShadowInode* shadow = ShadowInodeOf(pool_, entry->ino);
            if (shadow == nullptr || !shadow->Exists()) {
              return VerifyFail(VerifyErrorClass::kMissingShadow, "I4",
                                "moved-in child has no shadow inode");
            }
            if (shadow->mode != entry->mode || shadow->uid != entry->uid ||
                shadow->gid != entry->gid) {
              return VerifyFail(VerifyErrorClass::kPermissionMismatch, "I4",
                                "moved-in child cached permission differs from shadow");
            }
            report.moved_in.push_back(
                MovedInChild{entry->ino, state.parent, page, slot});
          }
        } else if (state.state == ResourceState::kLeased &&
                   state.lessee == request.writer) {
          // Fresh file created in this write session.
          if (entry->uid != request.writer_uid || entry->gid != request.writer_gid) {
            return VerifyFail(VerifyErrorClass::kOwnershipForgery, "I4",
                              "new child not owned by its creator");
          }
          NewChildInfo info;
          info.ino = entry->ino;
          info.dirent_page = page;
          info.dirent_slot = slot;
          info.is_dir = entry->IsDirectory();
          info.mode = entry->mode;
          info.uid = entry->uid;
          info.gid = entry->gid;
          info.first_index_page = entry->first_index_page;
          info.name = std::move(name);
          report.new_children.push_back(std::move(info));
        } else {
          return VerifyFail(VerifyErrorClass::kForeignInode, "I2",
                            "child inode neither existing nor leased to writer");
        }
        return OkStatus();
      });
  TRIO_RETURN_IF_ERROR(scan);

  // I3: diff against the checkpoint to find removed children.
  if (request.checkpoint_children != nullptr) {
    for (const CheckpointChild& child : *request.checkpoint_children) {
      if (present.count(child.ino) != 0) {
        continue;
      }
      report.removed_children.push_back(child.ino);
      if (!child.is_dir) {
        continue;  // Removed files are resolved by the kernel (deleted or renamed away).
      }
      // "The integrity verifier then checks that the deleted child directory is not mapped
      // to any LibFS and has no file under it." (§4.3).
      Status removed = env_.CheckRemovedChildDir(child.ino, request.writer);
      if (!removed.ok() && !VerifyError::IsStructured(removed)) {
        removed = VerifyFail(VerifyErrorClass::kRemovedDirNotEmpty, "I3",
                             removed.message());
      }
      TRIO_RETURN_IF_ERROR(removed);
    }
  }
  return report;
}

}  // namespace trio
