// Bloom filter for SSTable point lookups (double hashing, ~10 bits/key, k=6), as LevelDB
// uses to skip tables that cannot contain a key.

#ifndef SRC_MINILDB_BLOOM_H_
#define SRC_MINILDB_BLOOM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/hash.h"

namespace trio {

class BloomFilter {
 public:
  static constexpr int kBitsPerKey = 10;
  static constexpr int kProbes = 6;

  // Builds the filter bits for a key set.
  static std::string Build(const std::vector<std::string>& keys) {
    size_t bits = keys.size() * kBitsPerKey;
    bits = bits < 64 ? 64 : bits;
    std::string filter((bits + 7) / 8, '\0');
    const size_t total_bits = filter.size() * 8;
    for (const std::string& key : keys) {
      uint64_t h = HashString(key);
      const uint64_t delta = (h >> 33) | (h << 31);
      for (int probe = 0; probe < kProbes; ++probe) {
        const size_t bit = h % total_bits;
        filter[bit / 8] |= static_cast<char>(1 << (bit % 8));
        h += delta;
      }
    }
    return filter;
  }

  static bool MayContain(std::string_view filter, std::string_view key) {
    if (filter.empty()) {
      return true;
    }
    const size_t total_bits = filter.size() * 8;
    uint64_t h = HashBytes(key.data(), key.size());
    const uint64_t delta = (h >> 33) | (h << 31);
    for (int probe = 0; probe < kProbes; ++probe) {
      const size_t bit = h % total_bits;
      if ((filter[bit / 8] & (1 << (bit % 8))) == 0) {
        return false;
      }
      h += delta;
    }
    return true;
  }
};

}  // namespace trio

#endif  // SRC_MINILDB_BLOOM_H_
