// Skiplist memtable backbone for minildb — the in-memory sorted structure LevelDB keeps
// its recent writes in. Single writer at a time (the DB serializes writes, as LevelDB
// does); readers may run concurrently with the writer because nodes are immutable after
// insertion and next-pointers are published with release stores.

#ifndef SRC_MINILDB_SKIPLIST_H_
#define SRC_MINILDB_SKIPLIST_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/common/random.h"

namespace trio {

class SkipList {
 public:
  static constexpr int kMaxHeight = 12;

  SkipList() : rng_(0xdb) {
    head_ = NewNode("", "", kMaxHeight);
    for (int i = 0; i < kMaxHeight; ++i) {
      head_->next[i].store(nullptr, std::memory_order_relaxed);
    }
  }

  ~SkipList() {
    Node* node = head_;
    while (node != nullptr) {
      Node* next = node->next[0].load(std::memory_order_relaxed);
      DeleteNode(node);
      node = next;
    }
  }
  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  // Inserts or overwrites. Returns bytes added (approximate memory accounting).
  size_t Insert(const std::string& key, const std::string& value) {
    Node* prev[kMaxHeight];
    Node* node = FindGreaterOrEqual(key, prev);
    if (node != nullptr && node->key == key) {
      node->value = value;  // In-place overwrite; the DB lock serializes writers.
      return 0;
    }
    const int height = RandomHeight();
    if (height > height_.load(std::memory_order_relaxed)) {
      for (int i = height_.load(std::memory_order_relaxed); i < height; ++i) {
        prev[i] = head_;
      }
      height_.store(height, std::memory_order_relaxed);
    }
    Node* fresh = NewNode(key, value, height);
    for (int i = 0; i < height; ++i) {
      fresh->next[i].store(prev[i]->next[i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
      prev[i]->next[i].store(fresh, std::memory_order_release);
    }
    size_.fetch_add(1, std::memory_order_relaxed);
    return key.size() + value.size() + sizeof(Node);
  }

  bool Lookup(const std::string& key, std::string* value) const {
    Node* node = FindGreaterOrEqual(key, nullptr);
    if (node != nullptr && node->key == key) {
      *value = node->value;
      return true;
    }
    return false;
  }

  size_t Size() const { return size_.load(std::memory_order_relaxed); }

  // In-order traversal (flush path).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (Node* node = head_->next[0].load(std::memory_order_acquire); node != nullptr;
         node = node->next[0].load(std::memory_order_acquire)) {
      fn(node->key, node->value);
    }
  }

 private:
  struct Node {
    std::string key;
    std::string value;
    int height;
    std::atomic<Node*> next[1];  // Over-allocated to `height`.
  };

  static Node* NewNode(const std::string& key, const std::string& value, int height) {
    const size_t bytes = sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1);
    char* memory = new char[bytes];
    Node* node = new (memory) Node{key, value, height, {}};
    for (int i = 1; i < height; ++i) {
      new (&node->next[i]) std::atomic<Node*>(nullptr);
    }
    return node;
  }

  static void DeleteNode(Node* node) {
    node->~Node();  // Extra atomics are trivially destructible.
    delete[] reinterpret_cast<char*>(node);
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && rng_.OneIn(4)) {
      ++height;
    }
    return height;
  }

  Node* FindGreaterOrEqual(const std::string& key, Node** prev) const {
    Node* node = head_;
    int level = height_.load(std::memory_order_relaxed) - 1;
    while (true) {
      Node* next = node->next[level].load(std::memory_order_acquire);
      if (next != nullptr && next->key < key) {
        node = next;
      } else {
        if (prev != nullptr) {
          prev[level] = node;
        }
        if (level == 0) {
          return next;
        }
        --level;
      }
    }
  }

  Node* head_;
  std::atomic<int> height_{1};
  std::atomic<size_t> size_{0};
  Rng rng_;
};

}  // namespace trio

#endif  // SRC_MINILDB_SKIPLIST_H_
