#include "src/minildb/sstable.h"

#include <algorithm>
#include <cstring>

#include "src/minildb/bloom.h"

namespace trio {

namespace {

constexpr uint64_t kTableMagic = 0x4d494e494c444254ull;  // "MINILDBT"
constexpr size_t kTargetBlockSize = 4096;
constexpr uint32_t kDeletedBit = 0x80000000u;

void Append32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void Append64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
uint32_t Read32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t Read64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

struct Footer {
  uint64_t index_offset;
  uint64_t index_size;
  uint64_t bloom_offset;
  uint64_t bloom_size;
  uint64_t entry_count;
  uint64_t magic;
};

}  // namespace

Status SsTableWriter::WriteTable(FsInterface& fs, const std::string& path,
                                 const std::vector<TableEntry>& entries) {
  TRIO_ASSIGN_OR_RETURN(Fd fd, fs.Open(path, OpenFlags::CreateTrunc()));

  std::string block;
  std::string index;
  std::vector<std::string> keys;
  keys.reserve(entries.size());
  uint64_t offset = 0;
  std::string last_key_in_block;

  auto flush_block = [&]() -> Status {
    if (block.empty()) {
      return OkStatus();
    }
    TRIO_ASSIGN_OR_RETURN(size_t n, fs.Pwrite(fd, block.data(), block.size(), offset));
    (void)n;
    Append32(&index, static_cast<uint32_t>(last_key_in_block.size()));
    index.append(last_key_in_block);
    Append64(&index, offset);
    Append32(&index, static_cast<uint32_t>(block.size()));
    offset += block.size();
    block.clear();
    return OkStatus();
  };

  for (const TableEntry& entry : entries) {
    keys.push_back(entry.key);
    Append32(&block, static_cast<uint32_t>(entry.key.size()));
    Append32(&block,
             static_cast<uint32_t>(entry.value.size()) | (entry.deleted ? kDeletedBit : 0));
    block.append(entry.key);
    block.append(entry.value);
    last_key_in_block = entry.key;
    if (block.size() >= kTargetBlockSize) {
      TRIO_RETURN_IF_ERROR(flush_block());
    }
  }
  TRIO_RETURN_IF_ERROR(flush_block());

  Footer footer{};
  footer.index_offset = offset;
  footer.index_size = index.size();
  TRIO_ASSIGN_OR_RETURN(size_t iw, fs.Pwrite(fd, index.data(), index.size(), offset));
  (void)iw;
  offset += index.size();

  const std::string bloom = BloomFilter::Build(keys);
  footer.bloom_offset = offset;
  footer.bloom_size = bloom.size();
  TRIO_ASSIGN_OR_RETURN(size_t bw, fs.Pwrite(fd, bloom.data(), bloom.size(), offset));
  (void)bw;
  offset += bloom.size();

  footer.entry_count = entries.size();
  footer.magic = kTableMagic;
  TRIO_ASSIGN_OR_RETURN(size_t fw, fs.Pwrite(fd, &footer, sizeof(footer), offset));
  (void)fw;
  TRIO_RETURN_IF_ERROR(fs.Fsync(fd));
  return fs.Close(fd);
}

Result<std::unique_ptr<SsTableReader>> SsTableReader::Open(FsInterface& fs,
                                                           const std::string& path) {
  std::unique_ptr<SsTableReader> reader(new SsTableReader(fs, path));
  TRIO_RETURN_IF_ERROR(reader->Load());
  return reader;
}

SsTableReader::~SsTableReader() {
  if (fd_ >= 0) {
    (void)fs_.Close(fd_);
  }
}

Status SsTableReader::Load() {
  TRIO_ASSIGN_OR_RETURN(StatInfo info, fs_.Stat(path_));
  if (info.size < sizeof(Footer)) {
    return Corrupted("table too small");
  }
  TRIO_ASSIGN_OR_RETURN(Fd fd, fs_.Open(path_, OpenFlags::ReadOnly()));
  fd_ = fd;
  Footer footer;
  TRIO_ASSIGN_OR_RETURN(size_t n,
                        fs_.Pread(fd_, &footer, sizeof(footer), info.size - sizeof(footer)));
  if (n != sizeof(footer) || footer.magic != kTableMagic) {
    return Corrupted("bad table footer");
  }
  entry_count_ = footer.entry_count;

  std::string index(footer.index_size, '\0');
  TRIO_ASSIGN_OR_RETURN(size_t in,
                        fs_.Pread(fd_, index.data(), index.size(), footer.index_offset));
  if (in != index.size()) {
    return Corrupted("short index read");
  }
  size_t cursor = 0;
  while (cursor + 16 <= index.size()) {
    const uint32_t key_len = Read32(index.data() + cursor);
    cursor += 4;
    if (cursor + key_len + 12 > index.size()) {
      return Corrupted("index entry overruns");
    }
    IndexEntry entry;
    entry.last_key.assign(index.data() + cursor, key_len);
    cursor += key_len;
    entry.offset = Read64(index.data() + cursor);
    cursor += 8;
    entry.size = Read32(index.data() + cursor);
    cursor += 4;
    index_.push_back(std::move(entry));
  }

  bloom_.resize(footer.bloom_size);
  TRIO_ASSIGN_OR_RETURN(size_t bn,
                        fs_.Pread(fd_, bloom_.data(), bloom_.size(), footer.bloom_offset));
  if (bn != bloom_.size()) {
    return Corrupted("short bloom read");
  }

  if (!index_.empty()) {
    largest_ = index_.back().last_key;
    // Smallest: first key of the first block.
    TRIO_ASSIGN_OR_RETURN(std::vector<TableEntry> first, ReadBlock(index_.front()));
    if (!first.empty()) {
      smallest_ = first.front().key;
    }
  }
  return OkStatus();
}

Result<std::vector<TableEntry>> SsTableReader::ReadBlock(const IndexEntry& index) {
  std::vector<TableEntry> entries;
  std::string block(index.size, '\0');
  TRIO_ASSIGN_OR_RETURN(size_t n, fs_.Pread(fd_, block.data(), block.size(), index.offset));
  if (n != block.size()) {
    return Corrupted("short block read");
  }
  size_t cursor = 0;
  while (cursor + 8 <= block.size()) {
    const uint32_t key_len = Read32(block.data() + cursor);
    const uint32_t raw_value_len = Read32(block.data() + cursor + 4);
    const bool deleted = (raw_value_len & kDeletedBit) != 0;
    const uint32_t value_len = raw_value_len & ~kDeletedBit;
    cursor += 8;
    if (cursor + key_len + value_len > block.size()) {
      return Corrupted("block entry overruns");
    }
    TableEntry entry;
    entry.key.assign(block.data() + cursor, key_len);
    cursor += key_len;
    entry.value.assign(block.data() + cursor, value_len);
    cursor += value_len;
    entry.deleted = deleted;
    entries.push_back(std::move(entry));
  }
  return entries;
}

Result<TableEntry> SsTableReader::Get(const std::string& key) {
  if (!BloomFilter::MayContain(bloom_, key)) {
    return NotFound("bloom miss");
  }
  // Binary search for the first block whose last_key >= key.
  auto it = std::lower_bound(index_.begin(), index_.end(), key,
                             [](const IndexEntry& e, const std::string& k) {
                               return e.last_key < k;
                             });
  if (it == index_.end()) {
    return NotFound("beyond table");
  }
  TRIO_ASSIGN_OR_RETURN(std::vector<TableEntry> entries, ReadBlock(*it));
  auto entry = std::lower_bound(entries.begin(), entries.end(), key,
                                [](const TableEntry& e, const std::string& k) {
                                  return e.key < k;
                                });
  if (entry == entries.end() || entry->key != key) {
    return NotFound(key);
  }
  return *entry;
}

Status SsTableReader::ForEach(const std::function<Status(const TableEntry&)>& fn) {
  for (const IndexEntry& block_index : index_) {
    TRIO_ASSIGN_OR_RETURN(std::vector<TableEntry> entries, ReadBlock(block_index));
    for (const TableEntry& entry : entries) {
      TRIO_RETURN_IF_ERROR(fn(entry));
    }
  }
  return OkStatus();
}

}  // namespace trio
