// db_bench workloads over MiniDb, matching the LevelDB evaluation setup of §6.6:
// one thread, 100-byte values, N objects. Workloads: fillseq, fillsync, fillrandom,
// fill100K (100 KiB values), readrandom, deleterandom — the rows of Table 5.

#ifndef SRC_MINILDB_DB_BENCH_H_
#define SRC_MINILDB_DB_BENCH_H_

#include <string>

#include "src/minildb/db.h"

namespace trio {

enum class DbBenchWorkload {
  kFillSeq,
  kFillSync,
  kFillRandom,
  kFill100K,
  kReadRandom,
  kDeleteRandom,
};

const char* DbBenchName(DbBenchWorkload workload);

struct DbBenchResult {
  uint64_t ops = 0;
  double seconds = 0;
  double ops_per_ms() const { return seconds > 0 ? ops / seconds / 1000.0 : 0; }
};

// Runs `workload` with `num_ops` operations against a DB living on `fs`. Read/delete
// workloads fill the database first (not timed).
Result<DbBenchResult> RunDbBench(FsInterface& fs, DbBenchWorkload workload,
                                 uint64_t num_ops, uint64_t seed = 301);

}  // namespace trio

#endif  // SRC_MINILDB_DB_BENCH_H_
