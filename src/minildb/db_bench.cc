#include "src/minildb/db_bench.h"

#include <chrono>

#include "src/common/random.h"

namespace trio {

namespace {

std::string KeyOf(uint64_t n) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llu", static_cast<unsigned long long>(n));
  return std::string(buf, 16);
}

std::string ValueOf(uint64_t n, size_t size) {
  std::string value(size, 'v');
  const std::string tag = std::to_string(n);
  value.replace(0, std::min(tag.size(), value.size()), tag, 0,
                std::min(tag.size(), value.size()));
  return value;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* DbBenchName(DbBenchWorkload workload) {
  switch (workload) {
    case DbBenchWorkload::kFillSeq:
      return "fillseq";
    case DbBenchWorkload::kFillSync:
      return "fillsync";
    case DbBenchWorkload::kFillRandom:
      return "fillrandom";
    case DbBenchWorkload::kFill100K:
      return "fill100K";
    case DbBenchWorkload::kReadRandom:
      return "readrandom";
    case DbBenchWorkload::kDeleteRandom:
      return "deleterandom";
  }
  return "?";
}

Result<DbBenchResult> RunDbBench(FsInterface& fs, DbBenchWorkload workload,
                                 uint64_t num_ops, uint64_t seed) {
  MiniDbOptions options;
  options.dir = "/dbbench";
  options.sync_wal = workload == DbBenchWorkload::kFillSync;
  if (workload == DbBenchWorkload::kFill100K) {
    options.memtable_bytes = 4 << 20;
  }
  TRIO_ASSIGN_OR_RETURN(std::unique_ptr<MiniDb> db, MiniDb::Open(fs, options));
  Rng rng(seed);
  const size_t value_size = workload == DbBenchWorkload::kFill100K ? 100 * 1024 : 100;

  // Pre-fill for read/delete workloads (db_bench uses an existing database).
  if (workload == DbBenchWorkload::kReadRandom ||
      workload == DbBenchWorkload::kDeleteRandom) {
    for (uint64_t i = 0; i < num_ops; ++i) {
      TRIO_RETURN_IF_ERROR(db->Put(KeyOf(i), ValueOf(i, 100)));
    }
    TRIO_RETURN_IF_ERROR(db->Flush());
  }

  DbBenchResult result;
  const double start = NowSeconds();
  for (uint64_t i = 0; i < num_ops; ++i) {
    switch (workload) {
      case DbBenchWorkload::kFillSeq:
      case DbBenchWorkload::kFillSync:
        TRIO_RETURN_IF_ERROR(db->Put(KeyOf(i), ValueOf(i, value_size)));
        break;
      case DbBenchWorkload::kFillRandom:
        TRIO_RETURN_IF_ERROR(db->Put(KeyOf(rng.Below(num_ops)), ValueOf(i, value_size)));
        break;
      case DbBenchWorkload::kFill100K:
        TRIO_RETURN_IF_ERROR(db->Put(KeyOf(i), ValueOf(i, value_size)));
        break;
      case DbBenchWorkload::kReadRandom: {
        Result<std::string> value = db->Get(KeyOf(rng.Below(num_ops)));
        if (!value.ok() && !value.status().Is(ErrorCode::kNotFound)) {
          return value.status();
        }
        break;
      }
      case DbBenchWorkload::kDeleteRandom:
        TRIO_RETURN_IF_ERROR(db->Delete(KeyOf(rng.Below(num_ops))));
        break;
    }
    ++result.ops;
  }
  result.seconds = NowSeconds() - start;
  return result;
}

}  // namespace trio
