// SSTable: the immutable on-FS sorted table format of minildb.
//
// Layout (all little-endian, lengths are uint32):
//   [data blocks]     repeated (klen vlen key value) entries, ~4 KiB per block
//   [index block]     per data block: (last_key_len last_key offset size)
//   [bloom filter]    BloomFilter bits over every key
//   [footer]          index_offset index_size bloom_offset bloom_size entry_count magic
//
// Writers stream through the FsInterface; readers binary-search the in-memory index and
// read one data block per lookup.

#ifndef SRC_MINILDB_SSTABLE_H_
#define SRC_MINILDB_SSTABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/libfs/fs_interface.h"

namespace trio {

// A (key, value, deletion?) record; SSTables store tombstones so deletions mask older
// tables until compaction drops them.
struct TableEntry {
  std::string key;
  std::string value;
  bool deleted = false;
};

class SsTableWriter {
 public:
  // Entries must arrive in strictly increasing key order.
  static Status WriteTable(FsInterface& fs, const std::string& path,
                           const std::vector<TableEntry>& entries);
};

class SsTableReader {
 public:
  // Loads index + bloom into memory (the auxiliary state of the table).
  static Result<std::unique_ptr<SsTableReader>> Open(FsInterface& fs,
                                                     const std::string& path);
  ~SsTableReader();

  // kNotFound when the key is absent; a found tombstone yields deleted=true.
  Result<TableEntry> Get(const std::string& key);

  // Streams every entry in key order (compaction input).
  Status ForEach(const std::function<Status(const TableEntry&)>& fn);

  const std::string& path() const { return path_; }
  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }
  uint64_t entry_count() const { return entry_count_; }

 private:
  struct IndexEntry {
    std::string last_key;
    uint64_t offset;
    uint32_t size;
  };

  SsTableReader(FsInterface& fs, std::string path) : fs_(fs), path_(std::move(path)) {}
  Status Load();
  Result<std::vector<TableEntry>> ReadBlock(const IndexEntry& index);

  FsInterface& fs_;
  std::string path_;
  Fd fd_ = -1;
  std::vector<IndexEntry> index_;
  std::string bloom_;
  std::string smallest_;
  std::string largest_;
  uint64_t entry_count_ = 0;
};

}  // namespace trio

#endif  // SRC_MINILDB_SSTABLE_H_
