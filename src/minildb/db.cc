#include "src/minildb/db.h"

#include <algorithm>
#include <cstring>
#include <map>

namespace trio {

namespace {
constexpr uint8_t kWalPut = 1;
constexpr uint8_t kWalDelete = 2;
}  // namespace

Result<std::unique_ptr<MiniDb>> MiniDb::Open(FsInterface& fs, MiniDbOptions options) {
  std::unique_ptr<MiniDb> db(new MiniDb(fs, std::move(options)));
  Status made = fs.Mkdir(db->options_.dir);
  if (!made.ok() && !made.Is(ErrorCode::kExists)) {
    return made;
  }
  db->memtable_ = std::make_unique<SkipList>();
  TRIO_RETURN_IF_ERROR(db->Recover());
  return db;
}

MiniDb::~MiniDb() {
  if (wal_fd_ >= 0) {
    (void)fs_.Close(wal_fd_);
  }
}

std::string MiniDb::TablePath(uint64_t number) const {
  return options_.dir + "/sst_" + std::to_string(number);
}
std::string MiniDb::WalPath(uint64_t number) const {
  return options_.dir + "/wal_" + std::to_string(number);
}

Status MiniDb::Recover() {
  // Discover existing tables and WALs from the directory.
  TRIO_ASSIGN_OR_RETURN(std::vector<DirEntryInfo> entries, fs_.ReadDir(options_.dir));
  std::vector<uint64_t> tables;
  std::vector<uint64_t> wals;
  for (const DirEntryInfo& entry : entries) {
    if (entry.name.rfind("sst_", 0) == 0) {
      tables.push_back(std::stoull(entry.name.substr(4)));
    } else if (entry.name.rfind("wal_", 0) == 0) {
      wals.push_back(std::stoull(entry.name.substr(4)));
    }
  }
  std::sort(tables.begin(), tables.end());
  std::sort(wals.begin(), wals.end());
  for (uint64_t number : tables) {
    TRIO_ASSIGN_OR_RETURN(std::unique_ptr<SsTableReader> reader,
                          SsTableReader::Open(fs_, TablePath(number)));
    // Recovered tables all go to L0 ordering by age; newest last in `tables`.
    level0_.push_front(std::move(reader));
    next_file_number_ = std::max(next_file_number_, number + 1);
  }
  for (uint64_t number : wals) {
    TRIO_RETURN_IF_ERROR(ReplayWal(WalPath(number)));
    TRIO_RETURN_IF_ERROR(fs_.Unlink(WalPath(number)));
    next_file_number_ = std::max(next_file_number_, number + 1);
  }
  return RotateWal();
}

Status MiniDb::ReplayWal(const std::string& path) {
  TRIO_ASSIGN_OR_RETURN(StatInfo info, fs_.Stat(path));
  std::string log(info.size, '\0');
  TRIO_ASSIGN_OR_RETURN(Fd fd, fs_.Open(path, OpenFlags::ReadOnly()));
  TRIO_ASSIGN_OR_RETURN(size_t n, fs_.Pread(fd, log.data(), log.size(), 0));
  TRIO_RETURN_IF_ERROR(fs_.Close(fd));
  log.resize(n);
  size_t cursor = 0;
  while (cursor + 9 <= log.size()) {
    const uint8_t type = static_cast<uint8_t>(log[cursor]);
    uint32_t key_len;
    uint32_t value_len;
    std::memcpy(&key_len, log.data() + cursor + 1, 4);
    std::memcpy(&value_len, log.data() + cursor + 5, 4);
    cursor += 9;
    if (cursor + key_len + value_len > log.size()) {
      break;  // Torn tail record: ignore (it never committed).
    }
    const std::string key(log.data() + cursor, key_len);
    cursor += key_len;
    const std::string value(log.data() + cursor, value_len);
    cursor += value_len;
    if (type == kWalPut) {
      memtable_bytes_ += memtable_->Insert(key, std::string(1, kLivePrefix) + value);
    } else if (type == kWalDelete) {
      memtable_bytes_ += memtable_->Insert(key, std::string(1, kTombstonePrefix));
    }
  }
  return OkStatus();
}

Status MiniDb::RotateWal() {
  if (wal_fd_ >= 0) {
    TRIO_RETURN_IF_ERROR(fs_.Close(wal_fd_));
    TRIO_RETURN_IF_ERROR(fs_.Unlink(WalPath(current_wal_)));
  }
  current_wal_ = next_file_number_++;
  TRIO_ASSIGN_OR_RETURN(Fd fd, fs_.Open(WalPath(current_wal_), OpenFlags::CreateTrunc()));
  wal_fd_ = fd;
  wal_offset_ = 0;
  return OkStatus();
}

Status MiniDb::WalAppend(uint8_t type, const std::string& key, const std::string& value) {
  std::string record;
  record.reserve(9 + key.size() + value.size());
  record.push_back(static_cast<char>(type));
  const uint32_t key_len = key.size();
  const uint32_t value_len = value.size();
  record.append(reinterpret_cast<const char*>(&key_len), 4);
  record.append(reinterpret_cast<const char*>(&value_len), 4);
  record.append(key);
  record.append(value);
  TRIO_ASSIGN_OR_RETURN(size_t n, fs_.Pwrite(wal_fd_, record.data(), record.size(),
                                             wal_offset_));
  wal_offset_ += n;
  stats_.wal_bytes += n;
  if (options_.sync_wal) {
    TRIO_RETURN_IF_ERROR(fs_.Fsync(wal_fd_));
  }
  return OkStatus();
}

Status MiniDb::WriteInternal(const std::string& key, const std::string& value,
                             bool deleted) {
  std::lock_guard<std::mutex> guard(mutex_);
  TRIO_RETURN_IF_ERROR(
      WalAppend(deleted ? kWalDelete : kWalPut, key, deleted ? "" : value));
  const std::string stored =
      deleted ? std::string(1, kTombstonePrefix) : std::string(1, kLivePrefix) + value;
  memtable_bytes_ += memtable_->Insert(key, stored);
  return MaybeFlushLocked();
}

Status MiniDb::Put(const std::string& key, const std::string& value) {
  stats_.puts++;
  return WriteInternal(key, value, false);
}

Status MiniDb::Delete(const std::string& key) {
  stats_.deletes++;
  return WriteInternal(key, "", true);
}

Result<std::string> MiniDb::Get(const std::string& key) {
  std::lock_guard<std::mutex> guard(mutex_);
  stats_.gets++;
  std::string stored;
  if (memtable_->Lookup(key, &stored)) {
    if (stored[0] == kTombstonePrefix) {
      return NotFound(key);
    }
    return stored.substr(1);
  }
  for (auto& table : level0_) {
    Result<TableEntry> entry = table->Get(key);
    if (entry.ok()) {
      if (entry->deleted) {
        return NotFound(key);
      }
      return entry->value;
    }
    if (!entry.status().Is(ErrorCode::kNotFound)) {
      return entry.status();
    }
  }
  for (auto& table : level1_) {
    if (key < table->smallest() || key > table->largest()) {
      continue;
    }
    Result<TableEntry> entry = table->Get(key);
    if (entry.ok()) {
      if (entry->deleted) {
        return NotFound(key);
      }
      return entry->value;
    }
    if (!entry.status().Is(ErrorCode::kNotFound)) {
      return entry.status();
    }
  }
  return NotFound(key);
}

Status MiniDb::Flush() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (memtable_->Size() == 0) {
    return OkStatus();
  }
  memtable_bytes_ = options_.memtable_bytes;  // Force.
  return MaybeFlushLocked();
}

Status MiniDb::MaybeFlushLocked() {
  if (memtable_bytes_ < options_.memtable_bytes || memtable_->Size() == 0) {
    return OkStatus();
  }
  std::vector<TableEntry> entries;
  entries.reserve(memtable_->Size());
  memtable_->ForEach([&](const std::string& key, const std::string& stored) {
    TableEntry entry;
    entry.key = key;
    entry.deleted = stored[0] == kTombstonePrefix;
    if (!entry.deleted) {
      entry.value = stored.substr(1);
    }
    entries.push_back(std::move(entry));
  });
  const uint64_t number = next_file_number_++;
  TRIO_RETURN_IF_ERROR(SsTableWriter::WriteTable(fs_, TablePath(number), entries));
  TRIO_ASSIGN_OR_RETURN(std::unique_ptr<SsTableReader> reader,
                        SsTableReader::Open(fs_, TablePath(number)));
  level0_.push_front(std::move(reader));
  memtable_ = std::make_unique<SkipList>();
  memtable_bytes_ = 0;
  stats_.flushes++;
  TRIO_RETURN_IF_ERROR(RotateWal());
  if (level0_.size() >= options_.l0_compaction_trigger) {
    return CompactLocked();
  }
  return OkStatus();
}

Status MiniDb::CompactLocked() {
  stats_.compactions++;
  // Merge every L0 table (newest wins) with the whole of L1 into a fresh sorted run.
  std::map<std::string, TableEntry> merged;
  for (auto& table : level1_) {
    TRIO_RETURN_IF_ERROR(table->ForEach([&](const TableEntry& entry) -> Status {
      merged[entry.key] = entry;
      return OkStatus();
    }));
  }
  for (auto it = level0_.rbegin(); it != level0_.rend(); ++it) {  // Oldest to newest.
    TRIO_RETURN_IF_ERROR((*it)->ForEach([&](const TableEntry& entry) -> Status {
      merged[entry.key] = entry;
      return OkStatus();
    }));
  }

  // Drop tombstones (nothing older than L1 exists) and split into ~2 MiB tables.
  std::vector<std::string> old_paths;
  for (auto& table : level0_) {
    old_paths.push_back(table->path());
  }
  for (auto& table : level1_) {
    old_paths.push_back(table->path());
  }
  level0_.clear();
  level1_.clear();

  std::vector<TableEntry> run;
  size_t run_bytes = 0;
  auto emit_run = [&]() -> Status {
    if (run.empty()) {
      return OkStatus();
    }
    const uint64_t number = next_file_number_++;
    TRIO_RETURN_IF_ERROR(SsTableWriter::WriteTable(fs_, TablePath(number), run));
    TRIO_ASSIGN_OR_RETURN(std::unique_ptr<SsTableReader> reader,
                          SsTableReader::Open(fs_, TablePath(number)));
    level1_.push_back(std::move(reader));
    run.clear();
    run_bytes = 0;
    return OkStatus();
  };
  for (auto& [key, entry] : merged) {
    if (entry.deleted) {
      continue;
    }
    run_bytes += entry.key.size() + entry.value.size();
    run.push_back(std::move(entry));
    if (run_bytes >= (2 << 20)) {
      TRIO_RETURN_IF_ERROR(emit_run());
    }
  }
  TRIO_RETURN_IF_ERROR(emit_run());

  for (const std::string& path : old_paths) {
    TRIO_RETURN_IF_ERROR(fs_.Unlink(path));
  }
  return OkStatus();
}

}  // namespace trio
