// MiniDb: the LSM key-value store standing in for LevelDB in the Table 5 experiments
// (see DESIGN.md "Substitutions"). Same structure as LevelDB: writes append to a WAL and
// land in a skiplist memtable; full memtables flush to L0 SSTables; L0 files (searched
// newest-first) compact into a sorted L1 run when they pile up; reads check memtable ->
// L0 (newest first) -> L1 with bloom filters. Everything persists through an FsInterface,
// so the same database runs over ArckFS or any baseline.

#ifndef SRC_MINILDB_DB_H_
#define SRC_MINILDB_DB_H_

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/minildb/skiplist.h"
#include "src/minildb/sstable.h"

namespace trio {

struct MiniDbOptions {
  std::string dir = "/db";
  size_t memtable_bytes = 1 << 20;  // Flush threshold.
  size_t l0_compaction_trigger = 4;
  bool sync_wal = false;  // fsync the WAL after every write (fillsync).
};

struct MiniDbStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t wal_bytes = 0;
};

class MiniDb {
 public:
  static Result<std::unique_ptr<MiniDb>> Open(FsInterface& fs, MiniDbOptions options);
  ~MiniDb();

  Status Put(const std::string& key, const std::string& value);
  Status Delete(const std::string& key);
  Result<std::string> Get(const std::string& key);

  // Force-flush the memtable (tests + clean shutdown).
  Status Flush();
  const MiniDbStats& stats() const { return stats_; }
  size_t L0Count() const { return level0_.size(); }
  size_t L1Count() const { return level1_.size(); }

 private:
  MiniDb(FsInterface& fs, MiniDbOptions options) : fs_(fs), options_(std::move(options)) {}

  Status Recover();
  Status ReplayWal(const std::string& path);
  Status WalAppend(uint8_t type, const std::string& key, const std::string& value);
  Status RotateWal();
  Status WriteInternal(const std::string& key, const std::string& value, bool deleted);
  Status MaybeFlushLocked();
  Status CompactLocked();
  std::string TablePath(uint64_t number) const;
  std::string WalPath(uint64_t number) const;

  FsInterface& fs_;
  MiniDbOptions options_;
  std::mutex mutex_;
  std::unique_ptr<SkipList> memtable_;
  size_t memtable_bytes_ = 0;
  Fd wal_fd_ = -1;
  uint64_t wal_offset_ = 0;
  uint64_t next_file_number_ = 1;
  uint64_t current_wal_ = 0;
  std::deque<std::unique_ptr<SsTableReader>> level0_;  // Newest first.
  std::vector<std::unique_ptr<SsTableReader>> level1_;  // Sorted, disjoint ranges.
  MiniDbStats stats_;
};

// Tombstone marker kept in the memtable (values never start with '\x01' headers because
// user values are stored with a 1-byte live prefix).
inline constexpr char kLivePrefix = 'L';
inline constexpr char kTombstonePrefix = 'T';

}  // namespace trio

#endif  // SRC_MINILDB_DB_H_
