// Figure 9: Filebench macrobenchmarks (§6.6) — Fileserver and Webserver (data-intensive,
// to 224 threads on eight nodes), Webproxy and Varmail (small-file/metadata-intensive, to
// 16 threads; the paper hits a Filebench fileset bug beyond that).
//
// [model]    transaction mixes assembled from the calibrated per-op profiles (Table 4
//            parameters), solved across the thread sweep;
// [measured] the functional Filebench generator on the real implementations (scaled
//            filesets, two threads, wall clock) as a sanity cross-check of the ordering.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/baselines/fs_factory.h"
#include "src/sim/profiles.h"
#include "src/workloads/workloads.h"

namespace trio {
namespace bench {
namespace {

struct MixItem {
  sim::OpProfile (*build)(const std::string& fs);
  double count;
};

// Table 4 transaction mixes.
std::vector<MixItem> MixFor(FilebenchPersonality personality) {
  using sim::DataOp;
  using sim::MetaKind;
  using sim::MetaOp;
  switch (personality) {
    case FilebenchPersonality::kFileserver:
      // create+write(2MB in 512K I/Os), append 512K, whole-file read (2x1MB), delete,
      // stat. R:W = 1:2.
      return {
          {[](const std::string& f) { return MetaOp(f, MetaKind::kCreate, false); }, 1},
          {[](const std::string& f) { return DataOp(f, 512 << 10, false); }, 5},
          {[](const std::string& f) { return DataOp(f, 1 << 20, true); }, 2},
          {[](const std::string& f) { return MetaOp(f, MetaKind::kUnlink, false); }, 1},
          {[](const std::string& f) { return MetaOp(f, MetaKind::kStat, false); }, 1},
      };
    case FilebenchPersonality::kWebserver:
      // 10 whole-file reads (1MB I/O) : 1 log append (256KB).
      return {
          {[](const std::string& f) { return MetaOp(f, MetaKind::kOpen, false); }, 10},
          {[](const std::string& f) { return DataOp(f, 1 << 20, true); }, 10},
          {[](const std::string& f) { return DataOp(f, 256 << 10, false); }, 1},
      };
    case FilebenchPersonality::kWebproxy:
      // create+append 16KB, 5 small reads, delete; metadata + small data.
      return {
          {[](const std::string& f) { return MetaOp(f, MetaKind::kCreate, false); }, 1},
          {[](const std::string& f) { return DataOp(f, 16 << 10, false); }, 1},
          {[](const std::string& f) { return MetaOp(f, MetaKind::kOpen, false); }, 5},
          {[](const std::string& f) { return DataOp(f, 16 << 10, true); }, 5},
          {[](const std::string& f) { return MetaOp(f, MetaKind::kUnlink, false); }, 1},
      };
    case FilebenchPersonality::kVarmail:
      // delete, create+append+fsync, read, append+fsync, read.
      return {
          {[](const std::string& f) { return MetaOp(f, MetaKind::kUnlink, false); }, 1},
          {[](const std::string& f) { return MetaOp(f, MetaKind::kCreate, false); }, 1},
          {[](const std::string& f) { return DataOp(f, 16 << 10, false); }, 2},
          {[](const std::string& f) { return MetaOp(f, MetaKind::kOpen, false); }, 3},
          {[](const std::string& f) { return DataOp(f, 16 << 10, true); }, 2},
      };
  }
  return {};
}

double MixKopsPerSec(const std::string& fs, FilebenchPersonality personality,
                     int threads, int machine_nodes) {
  sim::MachineModel machine;
  double tx_ops = 0;
  double tx_seconds_per_tx = 0;
  for (const MixItem& item : MixFor(personality)) {
    sim::SolveInput input;
    input.op = item.build(fs);
    input.threads = threads;
    input.nodes = sim::NodesUsed(fs, machine_nodes);
    const double tput = sim::Solve(machine, input).ops_per_sec;
    tx_seconds_per_tx += item.count / tput;
    tx_ops += item.count;
  }
  const double tx_per_sec = 1.0 / tx_seconds_per_tx;
  return tx_per_sec * tx_ops / 1e3;  // Filebench-style kops/s.
}

void ModelSweep(FilebenchPersonality personality, int machine_nodes,
                const std::vector<int>& threads) {
  Table table(std::string("Fig 9 [model] ") + FilebenchName(personality) + ", " +
              std::to_string(machine_nodes) + " NUMA node(s), kops/s");
  std::vector<std::string> header{"system"};
  for (int t : threads) {
    header.push_back(std::to_string(t));
  }
  table.SetHeader(header);
  for (const std::string& fs : sim::DataFigureSystems()) {
    if (machine_nodes == 1 && (fs == "ext4-RAID0" || fs == "ArckFS")) {
      continue;
    }
    if (machine_nodes == 8 && fs == "ArckFS-nd") {
      continue;
    }
    std::vector<std::string> row{fs};
    for (int t : threads) {
      row.push_back(Fmt(MixKopsPerSec(fs, personality, t, machine_nodes), 1));
    }
    table.AddRow(row);
  }
  table.Print();
}

void MeasuredSection() {
  Table table("Fig 9 [measured]: functional Filebench, 2 threads, scaled filesets "
              "(tx-ops/s on emulated NVM)");
  table.SetHeader({"system", "Fileserver", "Webserver", "Webproxy", "Varmail"});
  for (const std::string name : {"ArckFS-nd", "NOVA", "ext4"}) {
    std::vector<std::string> row{name};
    for (FilebenchPersonality personality :
         {FilebenchPersonality::kFileserver, FilebenchPersonality::kWebserver,
          FilebenchPersonality::kWebproxy, FilebenchPersonality::kVarmail}) {
      FsFactoryOptions options;
      options.vfs_trap_cost_ns = 300;  // Model the user->kernel crossing.
      FsInstance instance = MakeFs(name, options);
      FilebenchConfig config;
      config.personality = personality;
      config.scale = 0.002;
      FilebenchWorkload workload(*instance.fs, config);
      TRIO_CHECK_OK(workload.Prepare(2));
      constexpr int kTx = 30;
      uint64_t ops = 0;
      const double start = NowSeconds();
      for (int t = 0; t < 2; ++t) {
        for (int i = 0; i < kTx; ++i) {
          Result<WorkloadStats> stats = workload.Op(t, i);
          TRIO_CHECK(stats.ok()) << stats.status().ToString();
          ops += stats->ops;
        }
      }
      row.push_back(Fmt(ops / (NowSeconds() - start), 0));
    }
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace trio

int main() {
  using namespace trio::bench;
  std::printf("Figure 9 reproduction: Filebench (§6.6)\n");
  ModelSweep(trio::FilebenchPersonality::kFileserver, 1, OneNodeThreads());
  ModelSweep(trio::FilebenchPersonality::kWebserver, 1, OneNodeThreads());
  ModelSweep(trio::FilebenchPersonality::kFileserver, 8, EightNodeThreads());
  ModelSweep(trio::FilebenchPersonality::kWebserver, 8, EightNodeThreads());
  ModelSweep(trio::FilebenchPersonality::kWebproxy, 8, {1, 2, 4, 8, 16});
  ModelSweep(trio::FilebenchPersonality::kVarmail, 8, {1, 2, 4, 8, 16});
  MeasuredSection();
  trio::bench::EmitLayerStats("bench_fig9");
  return 0;
}
