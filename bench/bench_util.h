// Shared helpers for the per-figure benchmark binaries: table printing, timing, and
// common sweep thread counts.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/obs/stats.h"

namespace trio {
namespace bench {

inline double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Thread counts used by the paper's sweeps.
inline std::vector<int> OneNodeThreads() { return {1, 2, 4, 8, 16, 28}; }
inline std::vector<int> EightNodeThreads() {
  return {1, 2, 4, 8, 16, 28, 56, 84, 112, 140, 168, 196, 224};
}

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void SetHeader(const std::vector<std::string>& header) { header_ = header; }
  void AddRow(const std::vector<std::string>& row) { rows_.push_back(row); }

  void Print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::vector<size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& row : rows_) {
      widen(row);
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    for (const auto& row : rows_) {
      print_row(row);
    }
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

// Per-layer StatRegistry breakdown (fences, bytes persisted, kernel crossings, ...),
// emitted by every bench binary before exit. One greppable line —
// "STATS_JSON <bench> <json>" — so runs can be captured and diffed; EXPERIMENTS.md has
// the snapshot-diff recipe.
inline void EmitLayerStats(const char* bench_name) {
  std::printf("\nSTATS_JSON %s %s\n", bench_name,
              obs::StatRegistry::Global().ToJson().c_str());
}

}  // namespace bench
}  // namespace trio

#endif  // BENCH_BENCH_UTIL_H_
