// Fleet-scale controller benchmarks: many LibFS tenants over ONE sharded kernel,
// Zipfian-shared files, with the legacy configuration (controller_shards=1,
// lockfree_lookup=off — every grant lookup funnels through one mutex, the pre-shard
// controller) as the baseline. BM_GrantLookup is the CI-gated pair: the 8-shard
// lock-free configuration must beat the 1-shard legacy one on items_per_second
// (scripts/check_fleet_bench.py). BM_FleetChurn runs the full fleet op mix (Zipfian
// reads + private writes + cross-shard renames) to exercise the two-phase path under
// load and to measure the fast-hit rate.
//
// After the benchmarks the binary calibrates a sim::FleetProfile from the live harness
// (fast-path and locked-path lookup latency, measured hit rate) and prints the
// extrapolation toward millions of clients — the per-shard-cost projection the shard
// refactor is sized against. Run with --benchmark_out=BENCH_fleet.json
// --benchmark_out_format=json to track the trajectory across PRs.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/core_state.h"
#include "src/kernel/controller.h"
#include "src/libfs/arckfs.h"
#include "src/sim/fleet.h"
#include "src/workloads/workloads.h"

namespace trio {
namespace {

constexpr size_t kPoolPages = 1 << 13;
constexpr int kTenants = 8;
constexpr int kSharedFiles = 64;

struct FleetHarness {
  explicit FleetHarness(int shards, bool use_ring = false) {
    pool = std::make_unique<NvmPool>(kPoolPages);
    FormatOptions options;
    options.max_inodes = 4096;
    TRIO_CHECK_OK(Format(*pool, options));
    KernelConfig config;
    config.controller_shards = static_cast<size_t>(shards);
    // shards == 1 is the legacy controller: one lock domain, no lock-free fast path.
    config.lockfree_lookup = shards > 1;
    kernel = std::make_unique<KernelController>(*pool, config);
    TRIO_CHECK_OK(kernel->Mount());

    FleetConfig fleet;
    fleet.tenants = kTenants;
    fleet.shared_files = kSharedFiles;
    fleet.use_ring = use_ring;  // Private writes go through SubmitBurst.
    workload = std::make_unique<FleetWorkload>(*kernel, fleet);
    TRIO_CHECK_OK(workload->Prepare());

    // Resolve the shared inos and warm every tenant's read grant, so LookupGrant has a
    // grant to revalidate (fast path when the cache is on, locked fallback when off).
    for (int f = 0; f < kSharedFiles; ++f) {
      Result<StatInfo> info =
          workload->tenant(0).Stat("/fleet_shared/f" + std::to_string(f));
      TRIO_CHECK_OK(info.status());
      shared_inos.push_back(info->ino);
    }
    for (int t = 0; t < kTenants; ++t) {
      tenant_ids.push_back(workload->tenant(t).id());
      for (int f = 0; f < kSharedFiles; ++f) {
        char byte;
        Result<Fd> fd =
            workload->tenant(t).Open("/fleet_shared/f" + std::to_string(f),
                                     OpenFlags::ReadOnly());
        TRIO_CHECK_OK(fd.status());
        TRIO_CHECK_OK(workload->tenant(t).Pread(*fd, &byte, 1, 0).status());
        TRIO_CHECK_OK(workload->tenant(t).Close(*fd));
      }
    }
  }

  std::unique_ptr<NvmPool> pool;
  std::unique_ptr<KernelController> kernel;
  std::unique_ptr<FleetWorkload> workload;
  std::vector<Ino> shared_inos;
  std::vector<LibFsId> tenant_ids;
};

FleetHarness& HarnessFor(int shards, bool use_ring = false) {
  static std::mutex mu;
  static std::map<std::pair<int, bool>, std::unique_ptr<FleetHarness>> harnesses;
  std::lock_guard<std::mutex> guard(mu);
  std::unique_ptr<FleetHarness>& slot = harnesses[{shards, use_ring}];
  if (slot == nullptr) {
    slot = std::make_unique<FleetHarness>(shards, use_ring);
  }
  return *slot;
}

// ---- The CI-gated pair: grant revalidation throughput, legacy vs sharded ----

void BM_GrantLookup(benchmark::State& state) {
  FleetHarness& harness = HarnessFor(static_cast<int>(state.range(0)));
  const int tenant = state.thread_index() % kTenants;
  Rng rng(123 + static_cast<uint64_t>(tenant));
  Zipfian zipf(kSharedFiles, 0.99);
  for (auto _ : state) {
    const uint64_t rank = zipf.Next(rng);
    Result<MapInfo> grant = harness.kernel->LookupGrant(
        harness.tenant_ids[static_cast<size_t>(tenant)], harness.shared_inos[rank]);
    if (!grant.ok()) {
      state.SkipWithError(("LookupGrant failed: " + grant.status().ToString()).c_str());
      return;
    }
    benchmark::DoNotOptimize(grant);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    KernelStats& stats = harness.kernel->stats();
    state.counters["fast_hits"] =
        static_cast<double>(stats.grant_fast_hits.load());
    state.counters["fast_misses"] =
        static_cast<double>(stats.grant_fast_misses.load());
    state.counters["lock_contended"] =
        static_cast<double>(stats.shard_lock_contended.load());
  }
}
BENCHMARK(BM_GrantLookup)
    ->ArgNames({"shards"})
    ->Arg(1)
    ->Arg(8)
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime();

// ---- Full fleet mix: Zipfian reads + private writes + cross-shard renames ----

void BM_FleetChurn(benchmark::State& state) {
  const bool use_ring = state.range(1) != 0;
  FleetHarness& harness = HarnessFor(static_cast<int>(state.range(0)), use_ring);
  const int tenant = state.thread_index() % kTenants;
  uint64_t i = 0;
  for (auto _ : state) {
    Status status = harness.workload->Op(tenant, i++);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    KernelStats& stats = harness.kernel->stats();
    state.counters["cross_shard_acquires"] =
        static_cast<double>(stats.cross_shard_acquires.load());
    if (use_ring) {
      // Ring-path liveness: private writes must actually flow through the rings.
      uint64_t sqes = 0;
      for (int t = 0; t < kTenants; ++t) {
        OpRingEngine* ring = harness.workload->tenant(t).ring_engine();
        if (ring != nullptr) {
          sqes += ring->stats().submitted.load();
        }
      }
      state.counters["ring_sqes"] = static_cast<double>(sqes);
    }
  }
}
BENCHMARK(BM_FleetChurn)
    ->ArgNames({"shards", "ring"})
    ->Args({1, 0})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Threads(4)
    ->UseRealTime();

// ---- Extrapolation: measured per-shard costs -> millions of clients ----

double MeasureLookupUs(FleetHarness& harness, int iters) {
  Rng rng(7);
  Zipfian zipf(kSharedFiles, 0.99);
  const double t0 = bench::NowSeconds();
  for (int i = 0; i < iters; ++i) {
    benchmark::DoNotOptimize(harness.kernel->LookupGrant(
        harness.tenant_ids[0], harness.shared_inos[zipf.Next(rng)]));
  }
  return (bench::NowSeconds() - t0) * 1e6 / iters;
}

}  // namespace

void PrintFleetExtrapolation() {
  FleetHarness& sharded = HarnessFor(8);
  FleetHarness& legacy = HarnessFor(1);
  const double fast_us = MeasureLookupUs(sharded, 200000);
  // With the cache off every lookup takes the (single) shard mutex, so the whole locked
  // lookup approximates the time under the mutex.
  const double locked_us = MeasureLookupUs(legacy, 50000);

  KernelStats& stats = sharded.kernel->stats();
  const double hits = static_cast<double>(stats.grant_fast_hits.load());
  const double misses = static_cast<double>(stats.grant_fast_misses.load());
  const double hit_rate = hits + misses > 0 ? hits / (hits + misses) : 0.95;

  sim::MachineModel machine;  // The paper's 224-core testbed.
  bench::Table table("Fleet extrapolation (measured per-shard costs, " +
                     std::to_string(machine.cores) + "-core machine model)");
  table.SetHeader({"config", "shards", "clients", "Mops/s", "bound"});
  struct Config {
    const char* name;
    int shards;
    double hit_rate;
  };
  const Config configs[] = {
      {"legacy one-mutex", 1, 0.0},
      {"sharded lock-free", 8, hit_rate},
      {"sharded lock-free", 64, hit_rate},
  };
  for (const Config& config : configs) {
    for (uint64_t clients : {64ull, 4096ull, 65536ull, 1048576ull, 4194304ull}) {
      sim::FleetProfile profile;
      profile.fast_lookup_us = fast_us;
      profile.locked_lookup_us = locked_us;
      profile.fast_hit_rate = config.hit_rate;
      profile.shard_serial_us = locked_us;
      profile.shards = config.shards;
      const sim::FleetPoint point = sim::ExtrapolateFleet(machine, profile, clients);
      char mops[32];
      std::snprintf(mops, sizeof(mops), "%.2f", point.ops_per_sec / 1e6);
      table.AddRow({config.name, std::to_string(config.shards),
                    std::to_string(clients), mops, point.bound});
    }
  }
  table.Print();
  std::printf("calibration: fast=%.3fus locked=%.3fus hit_rate=%.3f\n", fast_us,
              locked_us, hit_rate);
}

}  // namespace trio

int main(int argc, char** argv) {
  // Construct the clock singleton BEFORE the static harness map: function-local statics
  // die in reverse construction order, so a clock born inside harness construction would
  // be destroyed first and harness teardown would call NowNs() through a dead vtable
  // ("pure virtual method called" at exit).
  trio::SystemClock::Instance();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  trio::PrintFleetExtrapolation();
  return 0;
}
