// Figure 8: breakdown of ArckFS's sharing cost (§6.5) — how much of the cross-LibFS
// handoff goes to mapping, unmapping, integrity verification, and rebuilding the
// auxiliary state. Measured from the kernel controller's and LibFS's phase timers during
// the same two workloads as Table 3: 4KB-writes to a large shared file (map/unmap
// dominates) and creates in a shared directory (verification + rebuild dominate).

#include <memory>

#include "bench/bench_util.h"
#include "src/core/core_state.h"
#include "src/kernel/controller.h"
#include "src/libfs/arckfs.h"

namespace trio {
namespace bench {
namespace {

struct Breakdown {
  double map = 0;
  double unmap = 0;
  double verify = 0;
  double checkpoint = 0;
  double rebuild = 0;

  double Total() const { return map + unmap + verify + checkpoint + rebuild; }
};

struct Stack {
  std::unique_ptr<NvmPool> pool;
  std::unique_ptr<KernelController> kernel;
  std::unique_ptr<ArckFs> a;
  std::unique_ptr<ArckFs> b;
};

Stack MakeStack() {
  Stack s;
  s.pool = std::make_unique<NvmPool>(1 << 16);
  FormatOptions format;
  format.max_inodes = 1 << 16;
  TRIO_CHECK_OK(Format(*s.pool, format));
  s.kernel = std::make_unique<KernelController>(*s.pool);
  TRIO_CHECK_OK(s.kernel->Mount());
  s.a = std::make_unique<ArckFs>(*s.kernel);
  s.b = std::make_unique<ArckFs>(*s.kernel);
  return s;
}

Breakdown Capture(const Stack& s) {
  Breakdown b;
  const KernelStats& ks = s.kernel->stats();
  // checkpoint_ns is recorded inside map_ns (the checkpoint happens during the write
  // grant); report it as its own slice.
  b.map = (ks.map_ns.load() - ks.checkpoint_ns.load()) / 1e3;
  b.checkpoint = ks.checkpoint_ns.load() / 1e3;
  b.unmap = (ks.unmap_ns.load() - ks.verify_ns.load()) / 1e3;
  b.verify = ks.verify_ns.load() / 1e3;
  b.rebuild = (s.a->libfs_stats().rebuild_ns.load() +
               s.b->libfs_stats().rebuild_ns.load()) /
              1e3;
  return b;
}

void PrintBreakdown(const char* title, const Breakdown& b, int iterations) {
  Table table(title);
  table.SetHeader({"phase", "us/handoff", "share"});
  const double total = b.Total();
  auto row = [&](const char* name, double us) {
    table.AddRow({name, Fmt(us / iterations, 1),
                  Fmt(total > 0 ? us / total * 100 : 0, 1) + "%"});
  };
  row("map", b.map);
  row("checkpoint", b.checkpoint);
  row("unmap", b.unmap);
  row("verifier", b.verify);
  row("aux-rebuild", b.rebuild);
  table.AddRow({"total", Fmt(total / iterations, 1), "100%"});
  table.Print();
}

void WriteBreakdown() {
  Stack s = MakeStack();
  constexpr uint64_t kFileSize = 64 << 20;  // Stand-in for the paper's 1 GiB.
  {
    Result<Fd> fd = s.a->Open("/big", OpenFlags::CreateTrunc());
    TRIO_CHECK(fd.ok());
    std::string chunk(1 << 20, 'x');
    for (uint64_t off = 0; off < kFileSize; off += chunk.size()) {
      TRIO_CHECK(s.a->Pwrite(*fd, chunk.data(), chunk.size(), off).ok());
    }
    TRIO_CHECK_OK(s.a->Close(*fd));
  }
  s.kernel->stats().Reset();
  s.a->libfs_stats().rebuild_ns = 0;
  s.b->libfs_stats().rebuild_ns = 0;

  constexpr int kIterations = 20;
  char block[4096];
  std::memset(block, 'z', sizeof(block));
  for (int i = 0; i < kIterations; ++i) {
    ArckFs* writer = i % 2 == 0 ? s.a.get() : s.b.get();
    Result<Fd> fd = writer->Open("/big", OpenFlags::ReadWrite());
    TRIO_CHECK(fd.ok());
    TRIO_CHECK(writer->Pwrite(*fd, block, sizeof(block), (i * 53ull) % kFileSize).ok());
    TRIO_CHECK_OK(writer->Close(*fd));
  }
  PrintBreakdown("Fig 8 left: 4KB-write to shared 64MB file — handoff breakdown",
                 Capture(s), kIterations);
}

void CreateBreakdown() {
  Stack s = MakeStack();
  TRIO_CHECK_OK(s.a->Mkdir("/share"));
  for (int i = 0; i < 100; ++i) {
    Result<Fd> fd = s.a->Open("/share/pre" + std::to_string(i), OpenFlags::CreateRw());
    TRIO_CHECK(fd.ok());
    TRIO_CHECK_OK(s.a->Close(*fd));
  }
  TRIO_CHECK_OK(s.a->ReleaseFile("/share"));
  s.kernel->stats().Reset();
  s.a->libfs_stats().rebuild_ns = 0;
  s.b->libfs_stats().rebuild_ns = 0;

  constexpr int kIterations = 20;
  for (int i = 0; i < kIterations; ++i) {
    ArckFs* creator = i % 2 == 0 ? s.a.get() : s.b.get();
    Result<Fd> fd =
        creator->Open("/share/new" + std::to_string(i), OpenFlags::CreateRw());
    TRIO_CHECK(fd.ok());
    TRIO_CHECK_OK(creator->Close(*fd));
  }
  PrintBreakdown("Fig 8 right: create in shared dir of 100 files — handoff breakdown",
                 Capture(s), kIterations);
}

}  // namespace
}  // namespace bench
}  // namespace trio

int main() {
  std::printf("Figure 8 reproduction: sharing-cost breakdown (§6.5) [measured]\n");
  trio::bench::WriteBreakdown();
  trio::bench::CreateBreakdown();
  std::printf("\nExpected shape (paper): map/unmap dominates for the large file; "
              "verification (+rebuild) dominates for the shared-directory creates.\n");
  trio::bench::EmitLayerStats("bench_fig8");
  return 0;
}
