// Figure 5: single-thread performance of common file system operations.
//   (a) 4 KiB read/write throughput      (b) 2 MiB read/write throughput
//   (c) open (read metadata)             (d) create / delete (write metadata)
//
// Two sections are printed:
//   [model]    the calibrated analytic model at 1 thread — the numbers EXPERIMENTS.md
//              compares against the paper's Figure 5;
//   [measured] real wall-clock of the functional implementations on this machine (the
//              substrate is emulated NVM in DRAM, so absolute values differ; the
//              *ordering* should agree with the model).

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/baselines/fs_factory.h"
#include "src/sim/profiles.h"
#include "src/workloads/workloads.h"

namespace trio {
namespace bench {
namespace {

void ModelSection() {
  sim::MachineModel machine;
  Table data("Fig 5a/5b [model]: single-thread data throughput (GiB/s)");
  data.SetHeader({"system", "4K-read", "4K-write", "2M-read", "2M-write"});
  for (const std::string fs :
       {"NOVA", "SplitFS", "OdinFS", "ArckFS-nd", "ArckFS"}) {
    std::vector<std::string> row{fs};
    for (auto [bytes, is_read] : std::vector<std::pair<double, bool>>{
             {4096, true}, {4096, false}, {2 << 20, true}, {2 << 20, false}}) {
      sim::SolveInput input;
      input.op = sim::DataOp(fs, bytes, is_read);
      input.threads = 1;
      input.nodes = sim::NodesUsed(fs, 8);
      row.push_back(Fmt(sim::Solve(machine, input).data_gib_per_sec));
    }
    data.AddRow(row);
  }
  data.Print();

  Table meta("Fig 5c/5d [model]: single-thread metadata throughput (ops/us)");
  meta.SetHeader({"system", "open", "create", "delete"});
  for (const std::string fs : {"NOVA", "Strata", "ext4", "ArckFS"}) {
    std::vector<std::string> row{fs};
    for (sim::MetaKind kind :
         {sim::MetaKind::kOpen, sim::MetaKind::kCreate, sim::MetaKind::kUnlink}) {
      sim::SolveInput input;
      input.op = sim::MetaOp(fs, kind, /*shared=*/false);
      input.threads = 1;
      input.nodes = sim::NodesUsed(fs, 8);
      row.push_back(Fmt(sim::Solve(machine, input).ops_per_sec / 1e6, 3));
    }
    meta.AddRow(row);
  }
  meta.Print();
}

void MeasuredSection() {
  Table data("Fig 5a [measured]: single-thread 4K data ops on emulated NVM (GiB/s)");
  data.SetHeader({"system", "4K-read", "4K-write"});
  for (const std::string name : {"ArckFS-nd", "NOVA", "SplitFS", "ext4", "Strata"}) {
    std::vector<std::string> row{name};
    for (bool is_read : {true, false}) {
      FsFactoryOptions options;
      options.vfs_trap_cost_ns = 300;  // Model the user->kernel crossing on wall clock.
      FsInstance instance = MakeFs(name, options);
      FioConfig config;
      config.file_size = 8 << 20;
      config.block_size = 4096;
      config.is_read = is_read;
      config.random = true;
      FioWorkload fio(*instance.fs, config);
      TRIO_CHECK_OK(fio.Prepare(1));
      constexpr uint64_t kOps = 20000;
      const double start = NowSeconds();
      Result<WorkloadStats> stats = fio.Run(0, kOps);
      const double seconds = NowSeconds() - start;
      TRIO_CHECK(stats.ok());
      row.push_back(Fmt(kOps * 4096.0 / seconds / (1ull << 30)));
    }
    data.AddRow(row);
  }
  data.Print();

  Table meta("Fig 5c/5d [measured]: single-thread metadata ops (ops/us)");
  meta.SetHeader({"system", "open", "create", "delete"});
  for (const std::string name : {"ArckFS-nd", "NOVA", "ext4", "Strata"}) {
    std::vector<std::string> row{name};
    for (FxMarkBench bench :
         {FxMarkBench::kMRPL, FxMarkBench::kMWCL, FxMarkBench::kMWUL}) {
      FsFactoryOptions options;
      options.vfs_trap_cost_ns = 300;
      FsInstance instance = MakeFs(name, options);
      FxMarkWorkload workload(*instance.fs, bench);
      TRIO_CHECK_OK(workload.Prepare(1));
      constexpr uint64_t kOps = 20000;
      const double start = NowSeconds();
      for (uint64_t i = 0; i < kOps; ++i) {
        TRIO_CHECK_OK(workload.Op(0, i));
      }
      const double seconds = NowSeconds() - start;
      row.push_back(Fmt(kOps / (seconds * 1e6), 3));
    }
    meta.AddRow(row);
  }
  meta.Print();
}

}  // namespace
}  // namespace bench
}  // namespace trio

int main() {
  std::printf("Figure 5 reproduction: single-thread performance (§6.2)\n");
  trio::bench::ModelSection();
  trio::bench::MeasuredSection();
  trio::bench::EmitLayerStats("bench_fig5");
  return 0;
}
