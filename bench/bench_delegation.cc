// Delegation v2 microbenchmarks: copy size × application-thread count, comparing the
// batched data path (one ring push and one fence per batch per node) against the
// pre-batch per-chunk path (one Submit + one fence per 4 KiB chunk) and against direct
// inline copies. Run with --benchmark_out=BENCH_delegation.json
// --benchmark_out_format=json to track the trajectory across PRs.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/kernel/delegation.h"
#include "src/nvm/nvm.h"

namespace trio {
namespace {

constexpr int kNodes = 4;
constexpr size_t kPoolPages = 1 << 13;  // 32 MiB: room for 8 threads × 1 MiB per node.

struct Harness {
  Harness() {
    NumaTopology topo;
    topo.num_nodes = kNodes;
    topo.delegation_threads_per_node = 2;
    pool = std::make_unique<NvmPool>(kPoolPages, NvmMode::kFast, topo);
    delegation = std::make_unique<DelegationPool>(*pool);
  }
  std::unique_ptr<NvmPool> pool;
  std::unique_ptr<DelegationPool> delegation;
};

Harness& SharedHarness() {
  static Harness harness;
  return harness;
}

// Each benchmark thread owns a disjoint span of every node's stripe, so threads never
// overlap and every copy is split across all four nodes like a striped file would be.
char* ThreadRegion(NvmPool& pool, int node, int thread_index, size_t bytes_per_node) {
  return pool.base() + static_cast<size_t>(node) * pool.NodeStripeBytes() +
         static_cast<size_t>(thread_index) * bytes_per_node;
}

// ---- Batched: one DelegationBatch per operation, one fence per node ----

void BM_DelegatedWriteBatched(benchmark::State& state) {
  Harness& harness = SharedHarness();
  const size_t bytes = state.range(0);
  const size_t per_node = bytes / kNodes;
  std::vector<char> src(bytes, 'b');
  for (auto _ : state) {
    DelegationBatch batch(*harness.delegation);
    for (int node = 0; node < kNodes; ++node) {
      batch.AddWrite(
          ThreadRegion(*harness.pool, node, state.thread_index(), per_node),
          src.data() + node * per_node, per_node, /*persist=*/true);
    }
    batch.Submit();
    batch.Wait();
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_DelegatedWriteBatched)
    ->ArgNames({"bytes"})
    ->Arg(16 << 10)
    ->Arg(64 << 10)
    ->Arg(256 << 10)
    ->Arg(1 << 20)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// ---- Per-chunk: the seed data path — every 4 KiB chunk is its own self-fencing Submit ----

void BM_DelegatedWritePerChunk(benchmark::State& state) {
  Harness& harness = SharedHarness();
  const size_t bytes = state.range(0);
  const size_t per_node = bytes / kNodes;
  std::vector<char> src(bytes, 'c');
  for (auto _ : state) {
    std::atomic<uint32_t> pending{static_cast<uint32_t>(bytes / kPageSize)};
    for (int node = 0; node < kNodes; ++node) {
      char* dst = ThreadRegion(*harness.pool, node, state.thread_index(), per_node);
      for (size_t off = 0; off < per_node; off += kPageSize) {
        DelegationRequest req;
        req.op = DelegationRequest::Op::kWrite;
        req.nvm = dst + off;
        req.dram = src.data() + node * per_node + off;
        req.len = kPageSize;
        req.pending = &pending;
        harness.delegation->Submit(req);
      }
    }
    harness.delegation->Wait(pending);
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_DelegatedWritePerChunk)
    ->ArgNames({"bytes"})
    ->Arg(16 << 10)
    ->Arg(64 << 10)
    ->Arg(256 << 10)
    ->Arg(1 << 20)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// ---- Direct: the application thread copies and fences itself (no delegation) ----

void BM_DirectWrite(benchmark::State& state) {
  Harness& harness = SharedHarness();
  const size_t bytes = state.range(0);
  const size_t per_node = bytes / kNodes;
  std::vector<char> src(bytes, 'd');
  for (auto _ : state) {
    for (int node = 0; node < kNodes; ++node) {
      char* dst = ThreadRegion(*harness.pool, node, state.thread_index(), per_node);
      harness.pool->Write(dst, src.data() + node * per_node, per_node);
      harness.pool->Persist(dst, per_node);
    }
    harness.pool->Fence();
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_DirectWrite)
    ->ArgNames({"bytes"})
    ->Arg(16 << 10)
    ->Arg(64 << 10)
    ->Arg(256 << 10)
    ->Arg(1 << 20)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// ---- Batched delegated reads ----

void BM_DelegatedReadBatched(benchmark::State& state) {
  Harness& harness = SharedHarness();
  const size_t bytes = state.range(0);
  const size_t per_node = bytes / kNodes;
  std::vector<char> dst(bytes);
  for (auto _ : state) {
    DelegationBatch batch(*harness.delegation);
    for (int node = 0; node < kNodes; ++node) {
      batch.AddRead(dst.data() + node * per_node,
                    ThreadRegion(*harness.pool, node, state.thread_index(), per_node),
                    per_node);
    }
    batch.Submit();
    batch.Wait();
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_DelegatedReadBatched)
    ->ArgNames({"bytes"})
    ->Arg(64 << 10)
    ->Arg(1 << 20)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
}  // namespace trio

// Expanded BENCHMARK_MAIN so the per-layer StatRegistry breakdown rides along with the
// benchmark's own JSON output.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  trio::bench::EmitLayerStats("bench_delegation");
  return 0;
}
