// Absorb-tier benchmarks: datasets larger than NVM, with background digestion to the
// simulated slow backend and the LibFS promote cache faulting hot pages back in.
//
// The CI-gated pair (scripts/check_tier_bench.py):
//   BM_TierSyncWrite mode:1 (absorb tier, dataset 4x NVM) must stay within 1.25x of
//     mode:0 (NVM-only, dataset fits) on items_per_second — syncs always land in NVM,
//     so a dataset that outgrows NVM must not slow the sync path down. Digestion must
//     also be live (digest_pages > 0), or the "absorb" run silently degenerates into an
//     overcommitted NVM-only run.
//   BM_TierHotRead threads:1 must serve >= 90% of its tier lookups from the promote
//     cache (promote_hits / (promote_hits + promote_misses), deltas over the timed
//     run). Reads are Zipfian(0.99) over a hot set strided across the whole 4x dataset
//     — every hot page lives behind a tier entry, so a dead cache fails loudly. A
//     Zipfian over ALL dataset pages cannot concentrate 90% of its mass inside any
//     NVM-sized fast set at bench scale (top-k mass grows like ln k / ln N), so the hot
//     set models the hot-working-set-within-cold-archive shape the absorb tier exists
//     for; hot_rate additionally reports the all-reads no-backend-fault fraction.
//
// mode:2 is the Strata-like baseline point (userspace log + synchronous digestion to a
// kernel FS): its sync path pays log append + digestion stalls, the shape the absorb
// tier exists to avoid. Reported for comparison, not gated.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/baselines/fs_factory.h"
#include "src/core/core_state.h"
#include "src/kernel/controller.h"
#include "src/libfs/arckfs.h"
#include "src/sim/backend.h"
#include "src/workloads/workloads.h"

namespace trio {
namespace {

constexpr size_t kPoolPages = 1 << 12;  // 16 MiB of emulated NVM.
constexpr uint64_t kFilePages = 64;     // 256 KiB per dataset file.
// Absorb-tier dataset: 4x the NVM pool (the ISSUE's >=4x capacity point). NVM-only and
// Strata keep a dataset that fits, because without the tier it has to.
constexpr int kTierFiles = 256;   // 16384 data pages = 4x kPoolPages.
constexpr int kSmallFiles = 24;   // 1536 data pages, comfortably NVM-resident.
constexpr size_t kIoSize = kPageSize;
// Hot-read set: 2048 pages strided across the dataset (every 8th page), so the hot set
// touches every file but is 8x larger than nothing — half of NVM, 1/8 of the dataset.
constexpr uint64_t kDatasetPages = static_cast<uint64_t>(kTierFiles) * kFilePages;
constexpr uint64_t kHotPages = 2048;
constexpr uint64_t kHotStride = kDatasetPages / kHotPages;

enum TierMode { kNvmOnly = 0, kAbsorb = 1, kStrata = 2 };

std::string DataPath(int file) { return "/tier/f" + std::to_string(file); }

Status FillFile(FsInterface& fs, const std::string& path, uint64_t pages) {
  TRIO_ASSIGN_OR_RETURN(Fd fd, fs.Open(path, OpenFlags::CreateRw()));
  const std::string block(kIoSize, 'T');
  for (uint64_t p = 0; p < pages; ++p) {
    Result<size_t> n = fs.Pwrite(fd, block.data(), block.size(), p * kPageSize);
    if (!n.ok()) {
      (void)fs.Close(fd);
      return n.status();
    }
  }
  return fs.Close(fd);
}

struct TierHarness {
  explicit TierHarness(TierMode mode) : mode(mode) {
    if (mode == kStrata) {
      // The factory's kernel-FS layout needs a bigger pool than the 16 MiB tier pools;
      // capacity parity is irrelevant for this point — only the log+digest sync path is.
      strata = MakeFs("Strata", FsFactoryOptions{});
      fs_raw = strata.fs.get();
    } else {
      pool = std::make_unique<NvmPool>(kPoolPages);
      FormatOptions format;
      format.max_inodes = 4096;
      TRIO_CHECK_OK(Format(*pool, format));
      KernelConfig config;
      if (mode == kAbsorb) {
        backend = std::make_unique<SlowBackend>(
            BackendCostModel{/*read_ns_per_page=*/1500, /*write_ns_per_page=*/3000});
        config.tier.backend = backend.get();
        config.tier.high_watermark = 0.55;
        config.tier.low_watermark = 0.35;
        config.tier.batch_pages = 64;
        config.tier.start_digestion = true;
        config.tier.scan_interval_ms = 1;
      }
      kernel = std::make_unique<KernelController>(*pool, config);
      TRIO_CHECK_OK(kernel->Mount());
      ArckFsConfig fs_config;
      if (mode == kAbsorb) {
        fs_config.promote_cache_slots = 1536;  // 6 MiB of NVM re-used as promote cache.
      }
      arckfs = std::make_unique<ArckFs>(*kernel, fs_config);
      fs_raw = arckfs.get();
    }

    FsInterface& fs = *fs_raw;
    const int files = mode == kAbsorb ? kTierFiles : kSmallFiles;
    TRIO_CHECK_OK(fs.Mkdir("/tier"));
    if (arckfs != nullptr) {
      // Register /tier with the kernel: per-file releases below commit the PARENT to
      // reconcile the new child, which is a no-op while the kernel has no record of the
      // directory itself — and unreconciled files are invisible to digestion.
      TRIO_CHECK_OK(arckfs->Commit("/tier"));
    }
    for (int f = 0; f < files; ++f) {
      TRIO_CHECK_OK(FillFile(fs, DataPath(f), kFilePages));
      if (arckfs != nullptr) {
        // Unmap so the file becomes digestible (digestion skips mapped files).
        TRIO_CHECK_OK(arckfs->ReleaseFile(DataPath(f)));
      }
    }
    (void)fs.Mkdir("/work");
    TRIO_CHECK_OK(FillFile(fs, "/work/sync", kFilePages));
    if (mode == kAbsorb) {
      // Drain to the low watermark before timing anything, so the bench starts from the
      // steady state the background thread maintains (instead of mid-stall).
      while (kernel->NvmOccupancy() > config_low_watermark() &&
             kernel->DigestNow(64) > 0) {
      }
      WarmPromoteCache();
    }
  }

  // Pre-populate the promote cache with the Zipfian hot set, so every timed run
  // measures steady-state hit rate instead of compulsory cold misses.
  void WarmPromoteCache() {
    Rng rng(7);
    Zipfian zipf(kHotPages, 0.99);
    std::vector<char> buffer(kIoSize);
    for (int i = 0; i < 30000; ++i) {
      const uint64_t global = zipf.Next(rng) * kHotStride;
      const int file = static_cast<int>(global / kFilePages);
      const uint64_t offset = (global % kFilePages) * kPageSize;
      Result<Fd> fd = arckfs->Open(DataPath(file), OpenFlags::ReadOnly());
      TRIO_CHECK_OK(fd.status());
      TRIO_CHECK_OK(arckfs->Pread(*fd, buffer.data(), buffer.size(), offset).status());
      TRIO_CHECK_OK(arckfs->Close(*fd));
    }
  }

  static double config_low_watermark() { return 0.35; }

  TierMode mode;
  std::unique_ptr<NvmPool> pool;
  std::unique_ptr<SlowBackend> backend;
  std::unique_ptr<KernelController> kernel;
  std::unique_ptr<ArckFs> arckfs;
  FsInstance strata;        // kStrata only.
  FsInterface* fs_raw = nullptr;
};

TierHarness& HarnessFor(TierMode mode) {
  static std::mutex mu;
  static std::map<int, std::unique_ptr<TierHarness>> harnesses;
  std::lock_guard<std::mutex> guard(mu);
  std::unique_ptr<TierHarness>& slot = harnesses[mode];
  if (slot == nullptr) {
    slot = std::make_unique<TierHarness>(mode);
  }
  return *slot;
}

// ---- Gated: sync-path latency must not notice the oversized dataset ----

void BM_TierSyncWrite(benchmark::State& state) {
  TierHarness& harness = HarnessFor(static_cast<TierMode>(state.range(0)));
  FsInterface& fs = *harness.fs_raw;
  Result<Fd> fd = fs.Open("/work/sync", OpenFlags::ReadWrite());
  if (!fd.ok()) {
    state.SkipWithError(("open failed: " + fd.status().ToString()).c_str());
    return;
  }
  Rng rng(41 + static_cast<uint64_t>(state.thread_index()));
  const std::string block(kIoSize, 'S');
  for (auto _ : state) {
    const uint64_t offset = rng.Below(kFilePages) * kPageSize;
    Result<size_t> n = fs.Pwrite(*fd, block.data(), block.size(), offset);
    Status synced = n.ok() ? fs.Fsync(*fd) : n.status();
    if (!synced.ok()) {
      state.SkipWithError(("sync write failed: " + synced.ToString()).c_str());
      (void)fs.Close(*fd);
      return;
    }
  }
  (void)fs.Close(*fd);
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0 && harness.kernel != nullptr) {
    KernelTierStats& tier = harness.kernel->tier_stats();
    state.counters["digest_pages"] = static_cast<double>(tier.digest_pages.load());
    state.counters["watermark_stalls"] =
        static_cast<double>(tier.watermark_stalls.load());
    state.counters["occupancy"] = harness.kernel->NvmOccupancy();
  }
}
BENCHMARK(BM_TierSyncWrite)
    ->ArgNames({"mode"})
    ->Arg(kNvmOnly)
    ->Arg(kAbsorb)
    ->Arg(kStrata)
    ->UseRealTime();

// ---- Gated: hot Zipfian reads over the 4x dataset stay off the backend ----

void BM_TierHotRead(benchmark::State& state) {
  TierHarness& harness = HarnessFor(kAbsorb);
  ArckFs& fs = *harness.arckfs;
  PromoteCacheStats& cache = fs.promote_cache().stats();
  Rng rng(97 + static_cast<uint64_t>(state.thread_index()));
  Zipfian zipf(kHotPages, 0.99);
  std::vector<char> buffer(kIoSize);
  const uint64_t miss0 = cache.promote_misses.load();
  const uint64_t hit0 = cache.promote_hits.load();
  uint64_t reads = 0;
  for (auto _ : state) {
    const uint64_t global = zipf.Next(rng) * kHotStride;
    const int file = static_cast<int>(global / kFilePages);
    const uint64_t offset = (global % kFilePages) * kPageSize;
    Result<Fd> fd = fs.Open(DataPath(file), OpenFlags::ReadOnly());
    Result<size_t> n =
        fd.ok() ? fs.Pread(*fd, buffer.data(), buffer.size(), offset) : fd.status();
    Status closed = fd.ok() ? fs.Close(*fd) : OkStatus();
    if (!n.ok() || !closed.ok()) {
      state.SkipWithError(("hot read failed: " + n.status().ToString()).c_str());
      return;
    }
    ++reads;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0 && reads > 0) {
    // Deltas over this run only. hit_rate is the gated promote-cache hit rate among
    // tier lookups; hot_rate is the all-reads fraction that never faulted to the
    // backend (NVM-resident pages count too).
    const double misses = static_cast<double>(cache.promote_misses.load() - miss0);
    const double hits = static_cast<double>(cache.promote_hits.load() - hit0);
    state.counters["promote_hits"] = hits;
    state.counters["promote_misses"] = misses;
    state.counters["hit_rate"] = hits + misses > 0 ? hits / (hits + misses) : 0.0;
    state.counters["hot_rate"] = 1.0 - misses / static_cast<double>(reads);
  }
}
BENCHMARK(BM_TierHotRead)->Threads(1)->Threads(4)->UseRealTime();

}  // namespace

void PrintTierSummary() {
  TierHarness& harness = HarnessFor(kAbsorb);
  KernelTierStats& tier = harness.kernel->tier_stats();
  PromoteCacheStats& cache = harness.arckfs->promote_cache().stats();
  bench::Table table("Absorb tier (dataset 4x NVM, Zipfian 0.99 reads)");
  table.SetHeader({"metric", "value"});
  auto row = [&](const char* name, uint64_t v) {
    table.AddRow({name, std::to_string(v)});
  };
  row("digest_batches", tier.digest_batches.load());
  row("digest_pages", tier.digest_pages.load());
  row("watermark_stalls", tier.watermark_stalls.load());
  row("promote_reads(kernel)", tier.promote_reads.load());
  row("promote_hits", cache.promote_hits.load());
  row("promote_misses", cache.promote_misses.load());
  row("promote_evictions", cache.promote_evictions.load());
  row("backend_slots_owned", harness.backend->OwnedSlotCount());
  char occupancy[32];
  std::snprintf(occupancy, sizeof(occupancy), "%.3f", harness.kernel->NvmOccupancy());
  table.AddRow({"nvm_occupancy", occupancy});
  table.Print();
}

}  // namespace trio

int main(int argc, char** argv) {
  // Construct the clock singleton BEFORE any static harness: function-local statics die
  // in reverse construction order, so a clock born inside harness construction would be
  // destroyed first and teardown would call NowNs() through a dead vtable.
  trio::SystemClock::Instance();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  trio::PrintTierSummary();
  return 0;
}
