// Table 1: the property matrix of NVM file system architectures. The qualitative rows
// come from the designs; the Trio column is *demonstrated* at runtime on this
// implementation: direct access is shown by counting kernel crossings on warm paths,
// per-application customization by instantiating three different LibFSes on one kernel,
// and metadata integrity by a live attack + detection.

#include <memory>

#include "bench/bench_util.h"
#include "src/attacks/attacks.h"
#include "src/baselines/fs_factory.h"
#include "src/core/core_state.h"
#include "src/fpfs/fpfs.h"
#include "src/kernel/controller.h"
#include "src/kvfs/kvfs.h"

namespace trio {
namespace bench {
namespace {

void PrintMatrix() {
  Table table("Table 1: NVM file system architectures");
  table.SetHeader({"property", "mediation (Aerie/Strata/SplitFS)", "direct (ZoFS/ctFS)",
                   "Trio"});
  table.AddRow({"Direct data access", "yes*", "yes", "yes"});
  table.AddRow({"Direct metadata access", "no", "yes", "yes"});
  table.AddRow({"Unprivileged customization", "no", "yes", "yes"});
  table.AddRow({"Per-application customization", "no", "no", "yes"});
  table.AddRow({"Metadata integrity", "yes", "no", "yes"});
  table.Print();
}

void DemonstrateDirectAccess() {
  NvmPool pool(1 << 14);
  FormatOptions format;
  TRIO_CHECK_OK(Format(pool, format));
  KernelController kernel(pool);
  TRIO_CHECK_OK(kernel.Mount());
  {
    ArckFs fs(kernel);
    Result<Fd> fd = fs.Open("/f", OpenFlags::CreateRw());
    TRIO_CHECK(fd.ok());
    char block[4096] = {};
    TRIO_CHECK(fs.Pwrite(*fd, block, sizeof(block), 0).ok());

    const uint64_t warm = kernel.stats().syscalls.load();
    constexpr int kOps = 1000;
    for (int i = 0; i < kOps; ++i) {
      TRIO_CHECK(fs.Pwrite(*fd, block, sizeof(block), (i % 16) * 4096).ok());
      TRIO_CHECK(fs.Pread(*fd, block, sizeof(block), (i % 16) * 4096).ok());
    }
    const uint64_t data_syscalls = kernel.stats().syscalls.load() - warm;

    const uint64_t warm2 = kernel.stats().syscalls.load();
    for (int i = 0; i < kOps; ++i) {
      Result<Fd> f2 = fs.Open("/meta" + std::to_string(i), OpenFlags::CreateRw());
      TRIO_CHECK(f2.ok());
      TRIO_CHECK_OK(fs.Close(*f2));
    }
    const uint64_t meta_syscalls = kernel.stats().syscalls.load() - warm2;

    std::printf("\nDirect access [demonstrated]: %d data ops -> %llu kernel crossings; "
                "%d creates -> %llu crossings (allocator batch refills only)\n",
                2 * kOps, static_cast<unsigned long long>(data_syscalls), kOps,
                static_cast<unsigned long long>(meta_syscalls));
    TRIO_CHECK(data_syscalls == 0) << "data path must not trap";
    TRIO_CHECK(meta_syscalls < 100) << "metadata path must be trap-free (amortized)";
  }
  TRIO_CHECK_OK(kernel.Unmount());
}

void DemonstrateCustomizationAndIntegrity() {
  NvmPool pool(1 << 14);
  FormatOptions format;
  TRIO_CHECK_OK(Format(pool, format));
  KernelController kernel(pool);
  TRIO_CHECK_OK(kernel.Mount());
  {
    // Three differently customized LibFSes, one trusted entity, no privileges involved.
    ArckFs generic(kernel);
    KvFs kvfs(kernel);
    FpFs fpfs(kernel);
    std::printf("Unprivileged per-app customization [demonstrated]: ArckFS + KVFS + FPFS "
                "registered on one kernel controller (ids %u, %u, %u)\n",
                generic.id(), kvfs.id(), fpfs.id());

    // Metadata integrity: a malicious LibFS corrupts, the verifier catches it.
    MaliciousLibFs attacker(kernel);
    Result<Fd> fd = generic.Open("/victim", OpenFlags::CreateRw());
    TRIO_CHECK(fd.ok());
    TRIO_CHECK(generic.Pwrite(*fd, "data", 4, 0).ok());
    TRIO_CHECK_OK(generic.Close(*fd));
    TRIO_CHECK_OK(generic.ReleaseFile("/victim"));
    TRIO_CHECK_OK(generic.ReleaseFile("/"));
    TRIO_CHECK(attacker.AttackSizeBeyondCapacity("/victim").ok());
    Status detected = attacker.ReleaseTarget("/victim");
    std::printf("Metadata integrity [demonstrated]: attack released -> %s; rollbacks=%llu\n",
                detected.ToString().c_str(),
                static_cast<unsigned long long>(
                    kernel.stats().corruptions_rolled_back.load()));
    TRIO_CHECK(detected.Is(ErrorCode::kCorrupted));
  }
  TRIO_CHECK_OK(kernel.Unmount());
}

}  // namespace
}  // namespace bench
}  // namespace trio

int main() {
  std::printf("Table 1 reproduction: architecture property matrix (§2)\n");
  trio::bench::PrintMatrix();
  trio::bench::DemonstrateDirectAccess();
  trio::bench::DemonstrateCustomizationAndIntegrity();
  trio::bench::EmitLayerStats("bench_properties");
  return 0;
}
