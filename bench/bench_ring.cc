// Op-ring microbenchmarks: 4 KiB writes through the synchronous FsInterface path versus
// the async submission ring at several depths. The NVM cost model charges a realistic
// latency per fence (and per flushed line), so the group-commit epoch's fence coalescing
// shows up as wall-time, not just counter deltas. Each benchmark also exports
// fences_per_op / deferred_per_op counters (from the "libfs" StatRegistry layer), which
// the CI smoke gate compares across depths: a deeper ring must fence strictly less often
// per op. Run with --benchmark_out=BENCH_ring.json --benchmark_out_format=json.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/core_state.h"
#include "src/kernel/controller.h"
#include "src/libfs/arckfs.h"
#include "src/libfs/op_ring.h"

namespace trio {
namespace {

constexpr size_t kPoolPages = 2048;
// The write window: ops rotate over a preallocated file so the working set is fixed and
// the pool never fills, however long the benchmark runs.
constexpr size_t kFilePages = 64;

// Approximate real-NVM costs (clwb ~tens of ns per line, sfence drain ~1 us under
// load). kFast mode alone makes fences free, which would hide exactly the effect this
// bench exists to measure.
NvmCostModel BenchCostModel() {
  NvmCostModel cost;
  cost.fence_ns = 1000;
  cost.flush_ns_per_line = 5;
  return cost;
}

struct FsHarness {
  explicit FsHarness(size_t ring_depth /* 0 = synchronous */) {
    pool = std::make_unique<NvmPool>(kPoolPages, NvmMode::kFast);
    TRIO_CHECK_OK(Format(*pool, FormatOptions{}));
    kernel = std::make_unique<KernelController>(*pool);
    TRIO_CHECK_OK(kernel->Mount());
    ArckFsConfig config;
    if (ring_depth > 0) {
      config.ring.enabled = true;
      config.ring.depth = ring_depth;
    }
    fs = std::make_unique<ArckFs>(*kernel, config);

    // Preallocate the window before arming the cost model, so setup is not billed.
    Result<Fd> opened = fs->Open("/bench", OpenFlags::CreateRw());
    TRIO_CHECK(opened.ok());
    fd = *opened;
    const std::string page(kPageSize, 'w');
    for (size_t i = 0; i < kFilePages; ++i) {
      TRIO_CHECK(fs->Write(fd, page.data(), page.size()).ok());
    }
    pool->set_cost_model(BenchCostModel());
  }

  ~FsHarness() { pool->set_cost_model(NvmCostModel{}); }

  std::unique_ptr<NvmPool> pool;
  std::unique_ptr<KernelController> kernel;
  std::unique_ptr<ArckFs> fs;
  Fd fd = -1;
};

struct FenceProbe {
  FenceProbe()
      : fences(Value("fences")), deferred(Value("deferred_fences")) {}
  static uint64_t Value(const char* counter) {
    return obs::StatRegistry::Global().CounterValue("libfs", counter);
  }
  void Export(benchmark::State& state) const {
    const double ops = static_cast<double>(state.iterations());
    state.counters["fences_per_op"] = static_cast<double>(Value("fences") - fences) / ops;
    state.counters["deferred_per_op"] =
        static_cast<double>(Value("deferred_fences") - deferred) / ops;
  }
  uint64_t fences;
  uint64_t deferred;
};

// ---- Synchronous baseline: every 4 KiB write fences on the submitting thread ----

void BM_SyncWrite4K(benchmark::State& state) {
  FsHarness harness(0);
  const std::string block(kPageSize, 's');
  size_t slot = 0;
  FenceProbe probe;
  for (auto _ : state) {
    const uint64_t offset = (slot++ % kFilePages) * kPageSize;
    const Result<size_t> n =
        harness.fs->Pwrite(harness.fd, block.data(), block.size(), offset);
    TRIO_CHECK(n.ok() && *n == kPageSize);
  }
  probe.Export(state);
  state.SetBytesProcessed(state.iterations() * kPageSize);
}
BENCHMARK(BM_SyncWrite4K)->UseRealTime();

// ---- Ring: bursts of `depth` writes share one drain pass and one epoch fence ----

void BM_RingWrite4K(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  FsHarness harness(depth);
  OpRingEngine* ring = harness.fs->ring_engine();
  const std::string block(kPageSize, 'r');
  std::vector<Sqe> burst(depth);
  size_t pending = 0;
  size_t slot = 0;
  FenceProbe probe;
  for (auto _ : state) {
    Sqe& sqe = burst[pending++];
    sqe.op = Sqe::Op::kPwrite;
    sqe.fd = harness.fd;
    sqe.buf = block.data();
    sqe.len = kPageSize;
    sqe.offset = (slot++ % kFilePages) * kPageSize;
    if (pending == depth) {
      ring->SubmitBurst(burst.data(), pending);
      ring->WaitIdle();
      pending = 0;
    }
  }
  if (pending > 0) {
    ring->SubmitBurst(burst.data(), pending);
    ring->WaitIdle();
  }
  probe.Export(state);
  state.SetBytesProcessed(state.iterations() * kPageSize);
}
BENCHMARK(BM_RingWrite4K)
    ->ArgNames({"depth"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->UseRealTime();

}  // namespace
}  // namespace trio

// Expanded BENCHMARK_MAIN so the per-layer StatRegistry breakdown rides along with the
// benchmark's own JSON output.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  trio::bench::EmitLayerStats("bench_ring");
  return 0;
}
