// §6.5 "Metadata Integrity and Sharing Cost" harness:
//   * runs the eleven handcrafted attacks and the scripted corruption sweep, reporting
//     detection + recovery for each (the paper: "In all the test cases, the integrity
//     verifier can detect the corruption, and the kernel controller can restore the
//     corrupted file to a consistent state");
//   * measures verification latency against file size — the paper reports "several to
//     hundreds of microseconds for medium-sized files".

#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/attacks/attacks.h"
#include "src/baselines/fs_factory.h"
#include "src/kernel/controller.h"

namespace trio {
namespace bench {
namespace {

struct Stack {
  std::unique_ptr<NvmPool> pool;
  std::unique_ptr<KernelController> kernel;
  std::unique_ptr<ArckFs> victim;
  std::unique_ptr<MaliciousLibFs> attacker;
};

Stack MakeStack(size_t pool_pages = 1 << 15) {
  Stack s;
  s.pool = std::make_unique<NvmPool>(pool_pages);
  FormatOptions format;
  format.max_inodes = 1 << 16;
  TRIO_CHECK_OK(Format(*s.pool, format));
  s.kernel = std::make_unique<KernelController>(*s.pool);
  TRIO_CHECK_OK(s.kernel->Mount());
  s.victim = std::make_unique<ArckFs>(*s.kernel);
  s.attacker = std::make_unique<MaliciousLibFs>(*s.kernel);
  return s;
}

void PrepareTarget(Stack& s, const std::string& path, size_t size) {
  Result<Fd> fd = s.victim->Open(path, OpenFlags::CreateTrunc());
  TRIO_CHECK(fd.ok());
  std::string data(size, 'd');
  TRIO_CHECK(s.victim->Pwrite(*fd, data.data(), data.size(), 0).ok());
  TRIO_CHECK_OK(s.victim->Close(*fd));
  TRIO_CHECK_OK(s.victim->ReleaseFile(path));
  TRIO_CHECK_OK(s.victim->ReleaseFile("/"));
}

void AttackSuite() {
  Table table("§6.5: handcrafted malicious-LibFS attacks");
  table.SetHeader({"attack", "applied", "detected", "recovered"});

  struct AttackCase {
    const char* name;
    Status (*run)(Stack&);
  };
  auto run_simple = [](Stack& s, Status applied,
                       const std::string& release_path) -> std::pair<Status, Status> {
    if (!applied.ok()) {
      return {applied, applied};
    }
    return {applied, s.attacker->ReleaseTarget(release_path)};
  };

  const AttackCase cases[] = {
      {"1 index->DRAM pointer", [](Stack& s) { return s.attacker->AttackPointIndexOutside("/t"); }},
      {"3 '/' in file name", [](Stack& s) { return s.attacker->AttackSlashInName("/t"); }},
      {"4 index-page cycle", [](Stack& s) { return s.attacker->AttackIndexCycle("/t"); }},
      {"6 double page reference", [](Stack& s) { return s.attacker->AttackDoubleReference("/t"); }},
      {"7 permission escalation", [](Stack& s) { return s.attacker->AttackPermissionEscalation("/t"); }},
      {"8 size > capacity", [](Stack& s) { return s.attacker->AttackSizeBeyondCapacity("/t"); }},
      {"10 invalid file type", [](Stack& s) { return s.attacker->AttackInvalidType("/t"); }},
      {"11 reserved-bytes payload", [](Stack& s) { return s.attacker->AttackReservedBytes("/t"); }},
  };
  for (const AttackCase& attack : cases) {
    Stack s = MakeStack();
    PrepareTarget(s, "/t", 8192);
    auto [applied, released] = run_simple(s, attack.run(s), "/t");
    const bool recovered = [&] {
      Result<Fd> fd = s.victim->Open("/t", OpenFlags::ReadOnly());
      if (!fd.ok()) {
        return false;
      }
      char buf[8];
      const bool ok = s.victim->Pread(*fd, buf, 8, 0).ok();
      (void)s.victim->Close(*fd);
      return ok;
    }();
    table.AddRow({attack.name, applied.ok() ? "yes" : applied.ToString(),
                  released.Is(ErrorCode::kCorrupted) ? "yes" : "NO",
                  recovered ? "yes" : "NO"});
  }

  // Attacks 2 and 5 target directories; attack 9 needs a foreign file.
  {
    Stack s = MakeStack();
    TRIO_CHECK_OK(s.victim->Mkdir("/dir"));
    PrepareTarget(s, "/dir/child", 128);
    TRIO_CHECK_OK(s.victim->ReleaseFile("/dir"));
    Status applied = s.attacker->AttackRemoveNonEmptyDir("/dir");
    Status released = s.attacker->ReleaseTarget("/");
    table.AddRow({"2 remove non-empty dir", applied.ok() ? "yes" : applied.ToString(),
                  released.Is(ErrorCode::kCorrupted) ? "yes" : "NO",
                  s.victim->Stat("/dir/child").ok() ? "yes" : "NO"});
  }
  {
    Stack s = MakeStack();
    TRIO_CHECK_OK(s.victim->Mkdir("/dups"));
    PrepareTarget(s, "/dups/a", 64);
    PrepareTarget(s, "/dups/b", 64);
    TRIO_CHECK_OK(s.victim->ReleaseFile("/dups"));
    Status applied = s.attacker->AttackDuplicateName("/dups");
    Status released = s.attacker->ReleaseTarget("/dups");
    table.AddRow({"5 duplicate names", applied.ok() ? "yes" : applied.ToString(),
                  released.Is(ErrorCode::kCorrupted) ? "yes" : "NO",
                  s.victim->Stat("/dups/a").ok() && s.victim->Stat("/dups/b").ok()
                      ? "yes"
                      : "NO"});
  }
  {
    Stack s = MakeStack();
    PrepareTarget(s, "/mine", 4096);
    PrepareTarget(s, "/theirs", 4096);
    Result<StatInfo> info = s.victim->Stat("/theirs");
    PageNumber foreign = 0;
    for (PageNumber p = FileRegionStart(*s.pool); p < s.pool->num_pages(); ++p) {
      PageState state = s.kernel->StateOfPage(p);
      if (state.state == ResourceState::kOwned && state.owner == info->ino) {
        foreign = p;
        break;
      }
    }
    Status applied = s.attacker->AttackStealForeignPage("/mine", foreign);
    Status released = s.attacker->ReleaseTarget("/mine");
    table.AddRow({"9 steal foreign page", applied.ok() ? "yes" : applied.ToString(),
                  released.Is(ErrorCode::kCorrupted) ? "yes" : "NO",
                  s.victim->Stat("/theirs").ok() ? "yes" : "NO"});
  }
  table.Print();
}

void ScriptedSweep() {
  int detected = 0;
  int total = 0;
  for (size_t scenario = 0; scenario < CorruptionScenarioCount(); ++scenario) {
    for (uint64_t seed = 0; seed < 8; ++seed) {
      Stack s = MakeStack();
      const std::string name = CorruptionScenarioName(scenario);
      std::string path = "/sweep";
      if (name == "dir_size_nonzero") {
        TRIO_CHECK_OK(s.victim->Mkdir("/sweepdir"));
        PrepareTarget(s, "/sweepdir/x", 64);
        TRIO_CHECK_OK(s.victim->ReleaseFile("/sweepdir"));
        path = "/sweepdir";
      } else {
        PrepareTarget(s, path, 2 * kPageSize);
      }
      if (!ApplyScriptedCorruption(*s.attacker, path, scenario, seed).ok()) {
        continue;
      }
      ++total;
      detected += s.attacker->ReleaseTarget(path).Is(ErrorCode::kCorrupted) ? 1 : 0;
    }
  }
  std::printf("\nScripted corruption sweep: %d/%d scenarios detected and recovered "
              "(paper: 134/134)\n",
              detected, total);
}

void VerifierLatency() {
  Table table("Verification latency vs file size (§6.5: 'several to hundreds of us')");
  table.SetHeader({"file size", "verify us/op"});
  for (size_t size : {4u << 10, 64u << 10, 1u << 20, 16u << 20}) {
    Stack s = MakeStack(1 << 16);
    PrepareTarget(s, "/f", size);
    // Time pure verification via repeated commit of a write-mapped file.
    Result<Fd> fd = s.victim->Open("/f", OpenFlags::ReadWrite());
    TRIO_CHECK(fd.ok());
    char byte = 'x';
    TRIO_CHECK(s.victim->Pwrite(*fd, &byte, 1, 0).ok());
    s.kernel->stats().Reset();
    constexpr int kIterations = 20;
    for (int i = 0; i < kIterations; ++i) {
      TRIO_CHECK_OK(s.victim->Commit("/f"));
    }
    const double us =
        s.kernel->stats().verify_ns.load() / 1e3 /
        std::max<uint64_t>(1, s.kernel->stats().verifications.load());
    table.AddRow({std::to_string(size >> 10) + " KiB", Fmt(us, 1)});
    TRIO_CHECK_OK(s.victim->Close(*fd));
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace trio

int main() {
  std::printf("§6.5 reproduction: metadata integrity under attack [measured]\n");
  trio::bench::AttackSuite();
  trio::bench::ScriptedSweep();
  trio::bench::VerifierLatency();
  trio::bench::EmitLayerStats("bench_integrity");
  return 0;
}
